package dosas_test

import (
	"strings"
	"testing"
	"time"

	"dosas"
	"dosas/internal/workload"
)

func TestClusterDefaults(t *testing.T) {
	c := startCluster(t, dosas.Options{})
	if got := len(c.DataAddrs()); got != 4 {
		t.Fatalf("default data servers = %d, want 4", got)
	}
	if c.MetaAddr() == "" {
		t.Fatal("no metadata address")
	}
}

func TestClusterCloseIsIdempotent(t *testing.T) {
	c, err := dosas.StartCluster(dosas.Options{DataServers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // must not panic or hang
}

func TestClusterTCPBasePort(t *testing.T) {
	c, err := dosas.StartCluster(dosas.Options{DataServers: 2, TCP: true, TCPBasePort: 39100})
	if err != nil {
		t.Skipf("port range busy: %v", err)
	}
	defer c.Close()
	if c.MetaAddr() != "127.0.0.1:39100" {
		t.Errorf("meta addr = %s", c.MetaAddr())
	}
	addrs := c.DataAddrs()
	if addrs[0] != "127.0.0.1:39101" || addrs[1] != "127.0.0.1:39102" {
		t.Errorf("data addrs = %v", addrs)
	}
}

func TestClusterShapedAndPaced(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// A 2 MB transfer through a 10 MB/s shaped link takes ≥ ~0.2 s.
	c := startCluster(t, dosas.Options{DataServers: 1, LinkRate: 10e6})
	fs := connect(t, c, dosas.TS)
	f, err := fs.Create("shaped/x", dosas.CreateOptions{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := workload.RandomBytes(2<<20, 1)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, len(data))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 120*time.Millisecond {
		t.Errorf("2 MB through a 10 MB/s link took only %v", elapsed)
	}
}

func TestClusterEstimatorPeriodOption(t *testing.T) {
	// Just a wiring smoke test: a cluster with a non-default period
	// serves requests normally.
	c := startCluster(t, dosas.Options{DataServers: 1, EstimatorPeriod: 5 * time.Millisecond})
	fs := connect(t, c, dosas.DOSAS)
	f, err := fs.Create("period/x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	res, err := f.ReadEx("sum8", nil, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dosas.SumResult(res.Output) != uint64('a'+'b'+'c') {
		t.Fatal("wrong sum")
	}
}

func TestSchemeAndPolicyStrings(t *testing.T) {
	if dosas.DOSAS.String() != "DOSAS" || dosas.AS.String() != "AS" || dosas.TS.String() != "TS" {
		t.Error("scheme names wrong")
	}
}

func TestTraceDumpMentionsOps(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 1})
	fs := connect(t, c, dosas.AS)
	f, _ := fs.Create("td/x", dosas.CreateOptions{Width: 1})
	f.WriteAt([]byte("xyz"), 0)
	f.ReadEx("histogram", nil, 0, 3)
	dump, err := c.TraceDump(0)
	if err != nil || !strings.Contains(dump, "op=histogram") {
		t.Fatalf("dump = %q, %v", dump, err)
	}
}
