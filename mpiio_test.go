package dosas_test

import (
	"testing"

	"dosas"
	"dosas/internal/workload"
)

func mpiFixture(t *testing.T, size int) (*dosas.FS, *dosas.File, []byte) {
	t.Helper()
	c := startCluster(t, dosas.Options{DataServers: 2})
	fs := connect(t, c, dosas.DOSAS)
	f, err := fs.Create("mpiio/fixture")
	if err != nil {
		t.Fatal(err)
	}
	data := workload.RandomBytes(size, 11)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	g, err := dosas.FileOpen(fs, "mpiio/fixture")
	if err != nil {
		t.Fatal(err)
	}
	return fs, g, data
}

func TestFileReadShortCountAtEOF(t *testing.T) {
	_, f, _ := mpiFixture(t, 1000)
	var st dosas.Status
	buf := make([]byte, 4096)
	// Ask for more elements than remain: MPI semantics report the short
	// count via status, not an error.
	if err := dosas.FileRead(f, buf, 4096, dosas.Byte, &st); err != nil {
		t.Fatal(err)
	}
	if st.Count != 1000 {
		t.Errorf("count = %d, want 1000", st.Count)
	}
}

func TestFileReadBufferTooSmall(t *testing.T) {
	_, f, _ := mpiFixture(t, 100)
	buf := make([]byte, 10)
	if err := dosas.FileRead(f, buf, 100, dosas.Byte, nil); err == nil {
		t.Fatal("undersized buffer accepted")
	}
	if err := dosas.FileWrite(f, buf, 100, dosas.Byte, nil); err == nil {
		t.Fatal("undersized write buffer accepted")
	}
	if err := dosas.FileReadAt(f, 0, buf, 100, dosas.Byte, nil); err == nil {
		t.Fatal("undersized ReadAt buffer accepted")
	}
}

func TestFileReadZeroCount(t *testing.T) {
	_, f, _ := mpiFixture(t, 100)
	var st dosas.Status
	if err := dosas.FileRead(f, nil, 0, dosas.Byte, &st); err != nil {
		t.Fatal(err)
	}
	if st.Count != 0 {
		t.Errorf("count = %d", st.Count)
	}
}

func TestFileReadAtDoesNotMoveCursor(t *testing.T) {
	_, f, data := mpiFixture(t, 2000)
	var st dosas.Status
	buf := make([]byte, 100)
	if err := dosas.FileReadAt(f, 500, buf, 100, dosas.Byte, &st); err != nil {
		t.Fatal(err)
	}
	if st.Count != 100 || buf[0] != data[500] {
		t.Fatalf("ReadAt wrong: count=%d", st.Count)
	}
	// The cursor must still be at 0.
	if err := dosas.FileRead(f, buf, 100, dosas.Byte, &st); err != nil {
		t.Fatal(err)
	}
	if buf[0] != data[0] {
		t.Error("FileReadAt moved the cursor")
	}
}

func TestFileReadExAdvancesCursor(t *testing.T) {
	_, f, data := mpiFixture(t, 4000)
	var result dosas.ExResult
	var st dosas.Status
	if err := dosas.FileReadEx(f, &result, 1000, dosas.Byte, "sum8", nil, &st); err != nil {
		t.Fatal(err)
	}
	if err := dosas.FileReadEx(f, &result, 1000, dosas.Byte, "sum8", nil, &st); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, b := range data[1000:2000] {
		want += uint64(b)
	}
	if got := dosas.SumResult(result.Buf); got != want {
		t.Errorf("second ReadEx sum = %d, want %d (cursor wrong)", got, want)
	}
	if result.Offset != 2000 {
		t.Errorf("offset = %d", result.Offset)
	}
}

func TestFileReadExNilResult(t *testing.T) {
	_, f, _ := mpiFixture(t, 100)
	if err := dosas.FileReadEx(f, nil, 10, dosas.Byte, "sum8", nil, nil); err == nil {
		t.Fatal("nil result accepted")
	}
}

func TestFileReadExFloat64Count(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 1})
	fs := connect(t, c, dosas.AS)
	f, err := fs.Create("mpiio/f64")
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{1, 2, 3, 4, 5}
	if _, err := f.WriteAt(workload.Float64Bytes(vals), 0); err != nil {
		t.Fatal(err)
	}
	fh, _ := dosas.FileOpen(fs, "mpiio/f64")
	var result dosas.ExResult
	var st dosas.Status
	// Only the first 3 elements.
	if err := dosas.FileReadEx(fh, &result, 3, dosas.Float64, "sum64", nil, &st); err != nil {
		t.Fatal(err)
	}
	if got := dosas.Sum64Result(result.Buf); got != 6 {
		t.Errorf("partial sum = %v, want 6", got)
	}
	if st.Count != 3 {
		t.Errorf("status count = %d", st.Count)
	}
}
