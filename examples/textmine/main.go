// Textmine: log analytics inside the storage cluster — grep-style pattern
// counting and word statistics over striped log files, plus 1-D k-means
// clustering of request latencies, all without shipping the logs to the
// client.
//
//	go run ./examples/textmine
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"

	"dosas"
)

const (
	logFiles    = 4
	linesPerLog = 40_000
)

var services = []string{"auth", "billing", "search", "ingest", "gateway"}

// synthLog fabricates one service's log: mostly INFO lines, occasional
// ERRORs, with a per-line latency field.
func synthLog(seed int64) (text []byte, latencies []float64, errors int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < linesPerLog; i++ {
		svc := services[rng.Intn(len(services))]
		level := "INFO"
		if rng.Float64() < 0.03 {
			level = "ERROR"
			errors++
		}
		// Bimodal latency: fast cache hits around 5 ms, slow backend
		// calls around 80 ms.
		var lat float64
		if rng.Float64() < 0.7 {
			lat = 5 + rng.NormFloat64()*1.5
		} else {
			lat = 80 + rng.NormFloat64()*12
		}
		if lat < 0.1 {
			lat = 0.1
		}
		latencies = append(latencies, lat)
		text = append(text, fmt.Sprintf("%s svc=%s req=%06d latency_ms=%.2f msg=handled\n",
			level, svc, i, lat)...)
	}
	return text, latencies, errors
}

func main() {
	log.SetFlags(0)
	cluster, err := dosas.StartCluster(dosas.Options{DataServers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.Connect(dosas.DOSAS)
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	// Ingest logs (striped) and latency columns (width 1, for k-means).
	wantErrors := make([]int, logFiles)
	var totalBytes uint64
	for i := 0; i < logFiles; i++ {
		text, lats, errs := synthLog(int64(i + 1))
		wantErrors[i] = errs
		lf, err := fs.Create(fmt.Sprintf("logs/service-%d.log", i))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := lf.WriteAt(text, 0); err != nil {
			log.Fatal(err)
		}
		totalBytes += uint64(len(text))
		col, err := fs.Create(fmt.Sprintf("logs/service-%d.lat", i), dosas.CreateOptions{Width: 1})
		if err != nil {
			log.Fatal(err)
		}
		raw := make([]byte, len(lats)*8)
		for j, v := range lats {
			binary.LittleEndian.PutUint64(raw[j*8:], math.Float64bits(v))
		}
		if _, err := col.WriteAt(raw, 0); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("ingested %d log files (%.1f MB) plus latency columns\n\n",
		logFiles, float64(totalBytes)/(1<<20))

	// Pattern count: grep -c ERROR, executed next to the data.
	fmt.Printf("%-22s %8s %8s %10s %12s\n", "file", "errors", "want", "words", "shipped")
	for i := 0; i < logFiles; i++ {
		f, err := fs.Open(fmt.Sprintf("logs/service-%d.log", i))
		if err != nil {
			log.Fatal(err)
		}
		errRes, err := f.ReadEx("count", []byte("ERROR"), 0, f.Size())
		if err != nil {
			log.Fatal(err)
		}
		wcRes, err := f.ReadEx("wordcount", nil, 0, f.Size())
		if err != nil {
			log.Fatal(err)
		}
		got := dosas.CountResult(errRes.Output)
		if got != uint64(wantErrors[i]) {
			log.Fatalf("file %d: counted %d errors, want %d", i, got, wantErrors[i])
		}
		fmt.Printf("%-22s %8d %8d %10d %11dB\n",
			fmt.Sprintf("logs/service-%d.log", i), got, wantErrors[i],
			dosas.CountResult(wcRes.Output), errRes.BytesShipped()+wcRes.BytesShipped())
	}

	// Latency clustering: the bimodal shape must fall out of k-means run
	// on the storage node holding each column.
	fmt.Printf("\nlatency clusters (k-means on the storage nodes):\n")
	for i := 0; i < logFiles; i++ {
		f, err := fs.Open(fmt.Sprintf("logs/service-%d.lat", i))
		if err != nil {
			log.Fatal(err)
		}
		res, err := f.ReadEx("kmeans1d", dosas.KMeansParams(2, 0, 120), 0, f.Size())
		if err != nil {
			log.Fatal(err)
		}
		cs, err := dosas.KMeansResult(res.Output)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  service-%d:", i)
		for _, c := range cs {
			fmt.Printf("  %.1fms ×%d", c.Centroid, c.Count)
		}
		fmt.Println()
		if len(cs) == 2 && (math.Abs(cs[0].Centroid-5) > 3 || math.Abs(cs[1].Centroid-80) > 8) {
			log.Fatalf("service-%d clusters off: %+v", i, cs)
		}
	}
	fmt.Println("\nall counts verified against ground truth; logs never left the storage nodes")
}
