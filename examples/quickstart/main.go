// Quickstart: boot an in-process DOSAS cluster, store a dataset, and run
// an analysis kernel where the data lives.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dosas"
)

func main() {
	log.SetFlags(0)

	// A 4-storage-node cluster with dynamic (DOSAS) scheduling.
	cluster, err := dosas.StartCluster(dosas.Options{DataServers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fs, err := cluster.Connect(dosas.DOSAS)
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	// Store 16 MB of data, striped across all four storage nodes.
	const size = 16 << 20
	data := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	f, err := fs.Create("datasets/readings.bin")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d MB across %d storage nodes\n", size>>20, f.StripeWidth())

	// Sum every byte — on the storage nodes, if they have capacity.
	res, err := f.ReadEx("sum8", nil, 0, f.Size())
	if err != nil {
		log.Fatal(err)
	}
	var want uint64
	for _, b := range data {
		want += uint64(b)
	}
	fmt.Printf("sum = %d (expected %d)\n", dosas.SumResult(res.Output), want)
	for _, p := range res.Parts {
		fmt.Printf("  storage node %d processed %5.1f MB %s\n",
			p.Server, float64(p.Bytes)/(1<<20), p.Where)
	}
	fmt.Printf("raw bytes shipped over the network: %d (a traditional read moves %d)\n",
		res.BytesShipped(), size)

	// The same call through the MPI-IO-style interface of the paper.
	fh, err := dosas.FileOpen(fs, "datasets/readings.bin")
	if err != nil {
		log.Fatal(err)
	}
	var result dosas.ExResult
	var status dosas.Status
	if err := dosas.FileReadEx(fh, &result, size, dosas.Byte, "sum8", nil, &status); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MPI_File_read_ex-style call: sum = %d, parts ran %v\n",
		dosas.SumResult(result.Buf), status.Where)
}
