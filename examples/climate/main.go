// Climate: reduce a striped ensemble of climate-model output files inside
// the storage cluster — the data-intensive reduction sweep the paper's
// introduction motivates (climate modelling at 100 TB–10 PB scale, shrunk
// to laptop size).
//
// Each ensemble member is a float64 time series striped across every
// storage node. Per-node partial reductions (moments, min/max, histogram
// of quantised values) are combined by the client, so only a few dozen
// bytes per member cross the network.
//
//	go run ./examples/climate
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"dosas"
)

const (
	members = 6
	samples = 1 << 20 // 1M float64 samples (8 MB) per member
)

// memberSeries synthesises one ensemble member: baseline + warming trend
// + seasonal cycle + AR(1) weather noise.
func memberSeries(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, samples)
	ar := 0.0
	warming := 0.5 + rng.Float64() // degrees per simulated century
	for i := range out {
		t := float64(i)
		ar = 0.92*ar + rng.NormFloat64()*0.6
		out[i] = 14 +
			warming*t/float64(samples) +
			9*math.Sin(2*math.Pi*t/8192) +
			ar
	}
	return out
}

func encode(vals []float64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func main() {
	log.SetFlags(0)
	cluster, err := dosas.StartCluster(dosas.Options{DataServers: 4, StripeSize: 256 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.Connect(dosas.DOSAS)
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	fmt.Printf("writing %d ensemble members × %d samples (%.0f MB total)\n",
		members, samples, float64(members*samples*8)/(1<<20))
	for m := 0; m < members; m++ {
		f, err := fs.Create(fmt.Sprintf("ensemble/member-%02d.f64", m))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.WriteAt(encode(memberSeries(int64(m+100))), 0); err != nil {
			log.Fatal(err)
		}
	}

	names, err := fs.List("ensemble/")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-24s %10s %10s %10s %10s %12s\n",
		"member", "mean", "stddev", "min", "max", "shipped")
	var totalShipped, totalData uint64
	for _, name := range names {
		f, err := fs.Open(name)
		if err != nil {
			log.Fatal(err)
		}
		totalData += f.Size()

		mom, err := f.ReadEx("moments", nil, 0, f.Size())
		if err != nil {
			log.Fatal(err)
		}
		m, err := dosas.MomentsResult(mom.Output)
		if err != nil {
			log.Fatal(err)
		}
		mm, err := f.ReadEx("minmax", nil, 0, f.Size())
		if err != nil {
			log.Fatal(err)
		}
		mn, mx, err := dosas.MinMaxResult(mm.Output)
		if err != nil {
			log.Fatal(err)
		}
		shipped := mom.BytesShipped() + mm.BytesShipped()
		totalShipped += shipped
		fmt.Printf("%-24s %10.3f %10.3f %10.3f %10.3f %10dB\n",
			name, m.Mean(), math.Sqrt(m.Variance()), mn, mx, shipped)
	}

	// Whole-ensemble statistics as one call: ReadExMany fans the moments
	// kernel across every member (and every storage node inside each) and
	// combines the 24-byte partials.
	all, err := fs.ReadExMany(names, "moments", nil)
	if err != nil {
		log.Fatal(err)
	}
	gm, err := dosas.MomentsResult(all.Output)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nensemble-wide: %d samples, mean %.3f ± %.3f (one ReadExMany call, %v)\n",
		gm.Count, gm.Mean(), math.Sqrt(gm.Variance()), all.Elapsed.Round(time.Millisecond))

	// A cross-member detail query: the seasonal swing of member 0 over a
	// subrange, downsampled 4096× on the single node holding it.
	f0, err := fs.Open(names[0])
	if err != nil {
		log.Fatal(err)
	}
	// Downsampling needs byte-order locality, so make a width-1 copy of
	// the slice of interest (a common pattern for layout-sensitive ops).
	slice := make([]byte, 1<<20)
	if _, err := f0.ReadAt(slice, 0); err != nil {
		log.Fatal(err)
	}
	fc, err := fs.Create("derived/member-00-head.f64", dosas.CreateOptions{Width: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fc.WriteAt(slice, 0); err != nil {
		log.Fatal(err)
	}
	ds, err := fc.ReadEx("downsample", dosas.DownsampleParams(4096), 0, fc.Size())
	if err != nil {
		log.Fatal(err)
	}
	coarse := dosas.DownsampleResult(ds.Output)
	fmt.Printf("\ncoarse view of member 00 (first %d samples → %d points):\n", len(slice)/8, len(coarse))
	for i, v := range coarse {
		if i%8 == 0 {
			fmt.Printf("  ")
		}
		fmt.Printf("%6.2f", v)
		if i%8 == 7 {
			fmt.Println()
		}
	}
	fmt.Printf("\n\nwhole-ensemble reductions shipped %d bytes; the raw data is %d bytes (%.0fx saving)\n",
		totalShipped, totalData, float64(totalData)/float64(totalShipped))
}
