// Contention: the paper's Figure 1 scenario live — several applications
// flood one storage node with active I/O, under each of the three
// schemes. Kernels are paced to 15 MB/s per core and the storage node's
// link is shaped to 30 MB/s, putting the active/normal break-even at
// about 2 concurrent requests (the laptop-scale analogue of the paper's
// 80 MB/s kernels on a 118 MB/s network).
//
// Expected outcome: AS wins the light phase, TS wins the storm, DOSAS
// tracks the winner in both.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"dosas"
)

const reqBytes = 2 << 20 // 2 MB per request

func main() {
	log.SetFlags(0)
	dosas.SetRate("sum8", 15e6) // paced kernel rate for this demo
	fmt.Println("phase 1: light load (1 request)         — active storage territory")
	fmt.Println("phase 2: storm (8 concurrent requests)  — traditional storage territory")
	fmt.Println()
	fmt.Printf("%-8s %12s %12s\n", "scheme", "light", "storm")

	type outcome struct{ light, storm time.Duration }
	results := map[dosas.Scheme]outcome{}
	for _, scheme := range []dosas.Scheme{dosas.TS, dosas.AS, dosas.DOSAS} {
		light := runPhase(scheme, 1)
		storm := runPhase(scheme, 8)
		results[scheme] = outcome{light, storm}
		fmt.Printf("%-8s %11.2fs %11.2fs\n", scheme, light.Seconds(), storm.Seconds())
	}
	fmt.Println()
	d := results[dosas.DOSAS]
	a := results[dosas.AS]
	t := results[dosas.TS]
	fmt.Printf("light phase: DOSAS within %.0f%% of the winner (AS)\n",
		100*(d.light.Seconds()-min(a.light, t.light).Seconds())/min(a.light, t.light).Seconds())
	fmt.Printf("storm phase: DOSAS within %.0f%% of the winner (TS)\n",
		100*(d.storm.Seconds()-min(a.storm, t.storm).Seconds())/min(a.storm, t.storm).Seconds())
}

func min(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// runPhase boots a fresh shaped+paced cluster and fires n concurrent
// active sums from n "application" goroutines against one storage node.
func runPhase(scheme dosas.Scheme, n int) time.Duration {
	policy := dosas.Dynamic
	switch scheme {
	case dosas.AS:
		policy = dosas.AlwaysAccept
	case dosas.TS:
		policy = dosas.AlwaysBounce
	}
	cluster, err := dosas.StartCluster(dosas.Options{
		DataServers: 1,
		Policy:      policy,
		LinkRate:    30e6,
		Pace:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.ConnectPaced(scheme)
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	f, err := fs.Create("apps/shared.bin", dosas.CreateOptions{Width: 1})
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, n*reqBytes)
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for app := 0; app < n; app++ {
		wg.Add(1)
		go func(app int) {
			defer wg.Done()
			res, err := f.ReadEx("sum8", nil, uint64(app*reqBytes), reqBytes)
			if err != nil {
				log.Fatalf("app %d: %v", app, err)
			}
			var want uint64
			for _, b := range data[app*reqBytes : (app+1)*reqBytes] {
				want += uint64(b)
			}
			if dosas.SumResult(res.Output) != want {
				log.Fatalf("app %d: wrong sum", app)
			}
		}(app)
	}
	wg.Wait()
	return time.Since(start)
}
