// Imaging: Gaussian-filter a batch of synthetic medical images inside the
// storage cluster — the paper's motivating 2-D Gaussian workload (GIS and
// medical image processing).
//
// Each image is stored whole on one storage node (stripe width 1), so the
// 3×3 convolution sees true row neighbours. Digest mode returns 29 bytes
// per image; full mode returns the filtered image for one sample and
// verifies it against a locally computed reference.
//
//	go run ./examples/imaging
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"dosas"
)

const (
	imgW   = 1024
	imgH   = 512
	nScans = 8
)

// synthScan builds a noisy grayscale "scan": smooth anatomy plus speckle.
func synthScan(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	img := make([]byte, imgW*imgH)
	cx, cy := float64(imgW)/2, float64(imgH)/2
	for y := 0; y < imgH; y++ {
		for x := 0; x < imgW; x++ {
			dx, dy := (float64(x)-cx)/cx, (float64(y)-cy)/cy
			r := math.Sqrt(dx*dx + dy*dy)
			base := 200 * math.Exp(-2*r*r) // a bright blob in the middle
			noisy := base + rng.NormFloat64()*15
			if noisy < 0 {
				noisy = 0
			}
			if noisy > 255 {
				noisy = 255
			}
			img[y*imgW+x] = uint8(noisy)
		}
	}
	return img
}

func main() {
	log.SetFlags(0)
	cluster, err := dosas.StartCluster(dosas.Options{DataServers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.Connect(dosas.AS) // classic active storage for the batch
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	// Ingest the scan batch, one whole image per storage node.
	scans := make([][]byte, nScans)
	for i := range scans {
		scans[i] = synthScan(int64(i + 1))
		f, err := fs.Create(fmt.Sprintf("scans/scan-%02d.raw", i), dosas.CreateOptions{Width: 1})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.WriteAt(scans[i], 0); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("ingested %d scans of %dx%d (%.1f MB total)\n",
		nScans, imgW, imgH, float64(nScans*imgW*imgH)/(1<<20))

	// Filter every scan in place on its storage node; only digests come
	// back.
	digestParams := dosas.GaussianParams(imgW, false)
	var shipped uint64
	for i := 0; i < nScans; i++ {
		f, err := fs.Open(fmt.Sprintf("scans/scan-%02d.raw", i))
		if err != nil {
			log.Fatal(err)
		}
		res, err := f.ReadEx("gaussian2d", digestParams, 0, f.Size())
		if err != nil {
			log.Fatal(err)
		}
		d, err := dosas.GaussianDigestResult(res.Output)
		if err != nil {
			log.Fatal(err)
		}
		shipped += res.BytesShipped()
		fmt.Printf("  scan %02d: filtered mean=%.1f min=%d max=%d (ran %s)\n",
			i, float64(d.Sum)/float64(d.Pixels), d.Min, d.Max, res.Parts[0].Where)
	}
	fmt.Printf("network traffic for the whole batch: %d bytes (raw reads would move %d)\n",
		shipped, nScans*imgW*imgH)

	// Pull one full filtered image and verify against a local reference.
	f, err := fs.Open("scans/scan-00.raw")
	if err != nil {
		log.Fatal(err)
	}
	fullParams := dosas.GaussianParams(imgW, true)
	res, err := f.ReadEx("gaussian2d", fullParams, 0, f.Size())
	if err != nil {
		log.Fatal(err)
	}
	ref := filterLocal(scans[0])
	if !bytes.Equal(res.Output, ref) {
		log.Fatal("storage-side filter disagrees with local reference")
	}
	fmt.Printf("full filtered image (%d bytes) matches the local reference exactly\n", len(res.Output))

	// Active write-back: denoise a scan into a new file on the same
	// storage node. Zero image bytes cross the network in either
	// direction.
	src, err := fs.Open("scans/scan-01.raw")
	if err != nil {
		log.Fatal(err)
	}
	dst, info, err := src.TransformTo("scans/scan-01.denoised", "gaussian2d", fullParams)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write-back transform: %d bytes filtered in place in %v (0 network bytes)\n",
		info.BytesWritten, info.Elapsed.Round(time.Millisecond))
	check, err := dst.ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(check, filterLocal(scans[1])) {
		log.Fatal("write-back output disagrees with local reference")
	}
	fmt.Println("write-back output verified against the local reference")

	// Striped exact filtering: a scan striped across all four storage
	// nodes is filtered band-by-band with one-row halo exchange —
	// bit-exact against the whole-image reference.
	big, err := fs.Create("scans/big-striped.raw", dosas.CreateOptions{StripeSize: imgW * 64})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := big.WriteAt(scans[2], 0); err != nil {
		log.Fatal(err)
	}
	filtered, err := big.FilterImage(imgW)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(filtered, filterLocal(scans[2])) {
		log.Fatal("striped halo filter disagrees with the reference")
	}
	fmt.Printf("striped scan (%d stripes over %d nodes) filtered bit-exactly via halo exchange\n",
		(imgW*imgH+imgW*64-1)/(imgW*64), big.StripeWidth())
}

// filterLocal is an independent 3×3 Gaussian with edge replication, used
// only to check the cluster's answer.
func filterLocal(img []byte) []byte {
	out := make([]byte, len(img))
	at := func(x, y int) uint32 {
		if x < 0 {
			x = 0
		}
		if x >= imgW {
			x = imgW - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= imgH {
			y = imgH - 1
		}
		return uint32(img[y*imgW+x])
	}
	for y := 0; y < imgH; y++ {
		for x := 0; x < imgW; x++ {
			acc := 1*at(x-1, y-1) + 2*at(x, y-1) + 1*at(x+1, y-1) +
				2*at(x-1, y) + 4*at(x, y) + 2*at(x+1, y) +
				1*at(x-1, y+1) + 2*at(x, y+1) + 1*at(x+1, y+1)
			out[y*imgW+x] = uint8(acc / 16)
		}
	}
	return out
}
