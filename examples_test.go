package dosas_test

// Smoke test for the shipped examples: every example must build and run
// to completion. Keeps the documented programs from bit-rotting.

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs example binaries")
	}
	cases := []struct {
		dir     string
		timeout time.Duration
		expect  []string // substrings the output must contain
	}{
		{"./examples/quickstart", 60 * time.Second,
			[]string{"sum =", "raw bytes shipped over the network"}},
		{"./examples/imaging", 120 * time.Second,
			[]string{"matches the local reference exactly", "halo exchange"}},
		{"./examples/climate", 120 * time.Second,
			[]string{"whole-ensemble reductions shipped"}},
		{"./examples/textmine", 120 * time.Second,
			[]string{"all counts verified against ground truth"}},
		// examples/contention runs paced multi-second phases; exercised
		// by `dosas-bench -exp live` instead of every test run.
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", tc.dir)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(tc.timeout):
				cmd.Process.Kill()
				t.Fatalf("%s timed out after %v", tc.dir, tc.timeout)
			}
			if err != nil {
				t.Fatalf("%s: %v\n%s", tc.dir, err, out)
			}
			for _, want := range tc.expect {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", tc.dir, want, out)
				}
			}
		})
	}
}
