package dosas_test

// End-to-end smoke test of the shipped binaries: builds dosas-meta,
// dosas-server and dosasctl, boots a real multi-process cluster over TCP
// loopback, and drives it through the CLI.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// freePort reserves a TCP port and releases it for the child process.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// waitDialable polls until addr accepts connections.
func waitDialable(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s never came up", addr)
}

func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs binaries")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin,
		"./cmd/dosas-meta", "./cmd/dosas-server", "./cmd/dosasctl")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	metaAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	dataAddr0 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	dataAddr1 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	dataList := dataAddr0 + "," + dataAddr1

	startDaemon := func(name string, args ...string) {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}
	pprofAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	startDaemon("dosas-meta", "-addr", metaAddr, "-data-servers", "2",
		"-journal", filepath.Join(t.TempDir(), "meta.wal"))
	startDaemon("dosas-server", "-addr", dataAddr0, "-store", t.TempDir(),
		"-pprof-addr", pprofAddr)
	startDaemon("dosas-server", "-addr", dataAddr1, "-store", t.TempDir())
	waitDialable(t, metaAddr)
	waitDialable(t, dataAddr0)
	waitDialable(t, dataAddr1)

	ctl := func(args ...string) string {
		t.Helper()
		full := append([]string{"-meta", metaAddr, "-data", dataList}, args...)
		out, err := exec.Command(filepath.Join(bin, "dosasctl"), full...).CombinedOutput()
		if err != nil {
			t.Fatalf("dosasctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// put / stat / ls
	local := filepath.Join(t.TempDir(), "payload.bin")
	payload := make([]byte, 300_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := os.WriteFile(local, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	out := ctl("put", local, "e2e/payload.bin")
	if !strings.Contains(out, "stored 300000 bytes") {
		t.Fatalf("put output: %s", out)
	}
	out = ctl("stat", "e2e/payload.bin")
	if !strings.Contains(out, "size:    300000") || !strings.Contains(out, "width:   2") {
		t.Fatalf("stat output: %s", out)
	}
	out = ctl("ls", "e2e/")
	if strings.TrimSpace(out) != "e2e/payload.bin" {
		t.Fatalf("ls output: %q", out)
	}

	// readex: the sum must match, computed where the cluster chooses.
	var want uint64
	for _, b := range payload {
		want += uint64(b)
	}
	out = ctl("readex", "e2e/payload.bin", "sum8")
	if !strings.Contains(out, fmt.Sprintf("sum = %d", want)) {
		t.Fatalf("readex output lacks sum %d: %s", want, out)
	}

	// stats aggregates every node's metrics; the readex shows up as an
	// active arrival on a storage node.
	out = ctl("stats")
	if !strings.Contains(out, "meta (meta)") || !strings.Contains(out, "active.arrivals") {
		t.Fatalf("stats output: %s", out)
	}
	out = ctl("stats", "-json")
	if !strings.Contains(out, `"role": "data"`) || !strings.Contains(out, `"counters"`) {
		t.Fatalf("stats -json output: %s", out)
	}

	// trace stitches the readex's storage-side timeline (each dosasctl run
	// is a fresh client, so its first active request has id 1). The output
	// must carry the node identity and the scheduling decision.
	out = ctl("trace", "1")
	if !strings.Contains(out, "req=1") {
		t.Fatalf("trace output lacks request events: %s", out)
	}
	if !strings.Contains(out, "data@"+dataAddr0) && !strings.Contains(out, "data@"+dataAddr1) {
		t.Fatalf("trace output lacks node identity: %s", out)
	}
	if !strings.Contains(out, "arrive") ||
		(!strings.Contains(out, "admit") && !strings.Contains(out, "reject")) {
		t.Fatalf("trace output lacks scheduling decision: %s", out)
	}

	// explain renders the storage nodes' decision rationale for that same
	// readex: one decision line with the solver's verdict and margin.
	out = ctl("explain")
	if !strings.Contains(out, "decision ") || !strings.Contains(out, "solver=") ||
		!strings.Contains(out, "sum8") || !strings.Contains(out, "margin=") {
		t.Fatalf("explain output: %s", out)
	}
	if !strings.Contains(out, "RUN-ACTIVE") && !strings.Contains(out, "BOUNCE") {
		t.Fatalf("explain output lacks a disposition: %s", out)
	}

	// audit dumps the same log as JSON; whatif -log replays that dump
	// offline under every policy, so the full record→export→replay loop
	// runs over the wire and through a file.
	auditFile := filepath.Join(t.TempDir(), "decisions.json")
	if err := os.WriteFile(auditFile, []byte(ctl("audit")), 0o644); err != nil {
		t.Fatal(err)
	}
	out = ctl("whatif", "-log", auditFile)
	for _, policy := range []string{"recorded", "exhaustive", "maxgain", "all-active", "all-normal"} {
		if !strings.Contains(out, policy) {
			t.Fatalf("whatif output lacks policy %s: %s", policy, out)
		}
	}
	if !strings.Contains(out, "regret=") || !strings.Contains(out, "oracle=") {
		t.Fatalf("whatif output lacks scoring: %s", out)
	}

	// get round-trips the bytes.
	fetched := filepath.Join(t.TempDir(), "fetched.bin")
	ctl("get", "e2e/payload.bin", fetched)
	got, err := os.ReadFile(fetched)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("fetched %d bytes", len(got))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("fetched byte %d differs", i)
		}
	}

	// probe reaches every server.
	out = ctl("probe")
	if !strings.Contains(out, "meta "+metaAddr+": alive") ||
		!strings.Contains(out, "data[0]") || !strings.Contains(out, "data[1]") {
		t.Fatalf("probe output: %s", out)
	}

	// health sweeps every node's readiness checks; an idle cluster is
	// fully ready.
	out = ctl("health")
	if !strings.Contains(out, "meta") || !strings.Contains(out, "ready") ||
		!strings.Contains(out, "data@"+dataAddr0) {
		t.Fatalf("health output: %s", out)
	}
	if strings.Contains(out, "DEGRADED") {
		t.Fatalf("idle cluster reported degraded: %s", out)
	}

	// alerts on an idle cluster: every node's built-in rules are listed,
	// none firing, and the command exits zero.
	out = ctl("alerts")
	if !strings.Contains(out, "bounce-budget-burn") || !strings.Contains(out, "queue-saturation") {
		t.Fatalf("alerts output lacks built-in rules: %s", out)
	}
	if strings.Contains(out, "FIRING") {
		t.Fatalf("idle cluster has firing alerts: %s", out)
	}

	// events tails the merged structured logs: the storage nodes logged
	// their startup, the meta its journal replay.
	out = ctl("events", "-n", "200")
	if !strings.Contains(out, "serving stripes") || !strings.Contains(out, "serving namespace") {
		t.Fatalf("events output lacks startup markers: %s", out)
	}
	if !strings.Contains(out, "data@"+dataAddr0) || !strings.Contains(out, "meta") {
		t.Fatalf("events output lacks node identities: %s", out)
	}

	// The debug endpoint serves the node's OpenMetrics exposition: typed,
	// node-labeled families with the OpenMetrics terminator.
	waitDialable(t, pprofAddr)
	resp, err := http.Get("http://" + pprofAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	om := string(body)
	for _, want := range []string{
		"# TYPE dosas_telemetry gauge",
		"# TYPE dosas_slo_alert gauge",
		`node="data@` + dataAddr0 + `"`,
		`role="data"`,
	} {
		if !strings.Contains(om, want) {
			t.Fatalf("/metrics missing %q:\n%.2000s", want, om)
		}
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatalf("/metrics not terminated with # EOF: %q", om[len(om)-40:])
	}

	// top -once prints a single telemetry frame with per-node series.
	out = ctl("top", "-once", "2s")
	if !strings.Contains(out, "dosas top") || !strings.Contains(out, "queue.depth") ||
		!strings.Contains(out, "meta.ops_per_sec") {
		t.Fatalf("top output: %s", out)
	}

	// A readex with the flight recorder armed at an impossible threshold
	// captures exactly one bundle, which the slow command replays.
	slowDir := filepath.Join(t.TempDir(), "slow")
	slowArgs := []string{"-meta", metaAddr, "-data", dataList,
		"-slow-threshold", "1ns", "-slow-dir", slowDir,
		"readex", "e2e/payload.bin", "sum8"}
	if out, err := exec.Command(filepath.Join(bin, "dosasctl"), slowArgs...).CombinedOutput(); err != nil {
		t.Fatalf("slow readex: %v\n%s", err, out)
	}
	out = ctl("slow", slowDir)
	if !strings.Contains(out, "op=sum8") || !strings.Contains(out, "timeline:") ||
		!strings.Contains(out, "reason=absolute") {
		t.Fatalf("slow output: %s", out)
	}
	if n := strings.Count(out, "trace "); n != 1 {
		t.Fatalf("slow printed %d bundles, want 1: %s", n, out)
	}

	// fsck on a replicated file.
	ctl("put", local, "e2e/replicated.bin", "2", "2")
	out = ctl("fsck", "e2e/replicated.bin", "deep")
	if !strings.Contains(out, "OK") {
		t.Fatalf("fsck output: %s", out)
	}
	out = ctl("repair", "e2e/replicated.bin")
	if !strings.Contains(out, "OK") {
		t.Fatalf("repair output: %s", out)
	}

	// rm removes and ls confirms.
	ctl("rm", "e2e/payload.bin")
	if out := ctl("ls", "e2e/"); !strings.Contains(out, "e2e/replicated.bin") ||
		strings.Contains(out, "payload") {
		t.Fatalf("ls after rm: %q", out)
	}
}

// TestArchiveQueryE2E drives the durable telemetry archive through the
// shipped binaries: a storage node started with -archive-dir persists
// its telemetry, is killed mid-load and restarted, and dosasctl query
// then returns one continuous series spanning the crash — pre-crash
// samples intact. dosasctl report stitches the same window into an
// incident bundle.
func TestArchiveQueryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs binaries")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin,
		"./cmd/dosas-meta", "./cmd/dosas-server", "./cmd/dosasctl")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	metaAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	dataAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	archiveDir := t.TempDir()
	storeDir := t.TempDir()

	startDaemon := func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	serverArgs := []string{"-addr", dataAddr, "-store", storeDir,
		"-archive-dir", archiveDir, "-telemetry-tick", "10ms"}
	startDaemon("dosas-meta", "-addr", metaAddr, "-data-servers", "1",
		"-journal", filepath.Join(t.TempDir(), "meta.wal"))
	srv := startDaemon("dosas-server", serverArgs...)
	waitDialable(t, metaAddr)
	waitDialable(t, dataAddr)

	ctl := func(args ...string) string {
		t.Helper()
		full := append([]string{"-meta", metaAddr, "-data", dataAddr}, args...)
		out, err := exec.Command(filepath.Join(bin, "dosasctl"), full...).CombinedOutput()
		if err != nil {
			t.Fatalf("dosasctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Load the node so queue.depth has something to archive, then let a
	// few ticks land on disk.
	local := filepath.Join(t.TempDir(), "payload.bin")
	if err := os.WriteFile(local, make([]byte, 1<<20), 0o644); err != nil {
		t.Fatal(err)
	}
	ctl("put", local, "arch/payload.bin")
	ctl("readex", "arch/payload.bin", "sum8")
	time.Sleep(500 * time.Millisecond)

	// Crash the storage node mid-run and bring it back on the same
	// archive and store directories.
	srv.Process.Kill()
	srv.Wait()
	restartNano := time.Now().UnixNano()
	startDaemon("dosas-server", serverArgs...)
	waitDialable(t, dataAddr)
	time.Sleep(500 * time.Millisecond)

	out := ctl("query", "queue.depth", "-since", "1h", "-json")
	var res struct {
		Nodes []struct {
			Node   string `json:"node"`
			Points []struct {
				T int64   `json:"t"`
				V float64 `json:"v"`
			} `json:"points"`
			Earliest int64 `json:"earliest"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("query -json: %v\n%s", err, out)
	}
	var before, after int
	for _, n := range res.Nodes {
		if !strings.HasPrefix(n.Node, "data@") {
			continue
		}
		for i, p := range n.Points {
			if i > 0 && p.T < n.Points[i-1].T {
				t.Fatalf("series not continuous at point %d", i)
			}
			if p.T < restartNano {
				before++
			} else {
				after++
			}
		}
	}
	if before == 0 {
		t.Fatalf("no pre-crash samples survived the restart:\n%s", out)
	}
	if after == 0 {
		t.Fatalf("no post-restart samples archived:\n%s", out)
	}

	// The human rendering carries the node table and sparkline line.
	out = ctl("query", "queue.depth", "-since", "1h")
	if !strings.Contains(out, "SERIES queue.depth") || !strings.Contains(out, "data@"+dataAddr) {
		t.Fatalf("query output: %s", out)
	}

	// report stitches the window into an incident bundle with the
	// archived telemetry section.
	out = ctl("report", "-since", "1h", "-series", "queue.depth")
	if !strings.Contains(out, "INCIDENT REPORT") ||
		!strings.Contains(out, "TELEMETRY queue.depth") ||
		!strings.Contains(out, "data@"+dataAddr) {
		t.Fatalf("report output: %s", out)
	}
}

// TestCtlExplainGolden pins dosasctl explain's offline rendering to the
// committed golden transcript: the CLI must print exactly what
// audit.FormatRecords produces for the golden log, byte for byte.
// Regenerate both fixtures with `go test ./internal/audit -run Golden
// -update` after an intentional format change.
func TestCtlExplainGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs binaries")
	}
	bin := filepath.Join(t.TempDir(), "dosasctl")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dosasctl")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	got, err := exec.Command(bin, "explain",
		"-log", filepath.Join("internal", "audit", "testdata", "golden_log.json")).Output()
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	want, err := os.ReadFile(filepath.Join("internal", "audit", "testdata", "golden_explain.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("explain output diverged from golden_explain.txt:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
