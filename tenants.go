package dosas

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dosas/internal/tenant"
	"dosas/internal/wire"
)

// TenantUsage is one tenant's cumulative resource consumption on one
// node (or, after MergeTenantUsage, across the cluster): bytes moved,
// ops by type, kernel CPU, queue wait, bounces and interrupts, plus the
// live queued/inflight gauges.
type TenantUsage = tenant.Usage

// TenantEvicted is the pseudo-tenant row aggregating every tenant
// LRU-evicted from a node's bounded table, so totals stay conserved.
const TenantEvicted = tenant.Evicted

// TenantReport is one storage node's tenant-table snapshot: its usage
// rows plus how many tenants overflowed into the TenantEvicted row.
type TenantReport struct {
	Node    string        `json:"node"`
	Evicted uint64        `json:"evicted,omitempty"`
	Usage   []TenantUsage `json:"usage"`
}

// Tenants returns every storage node's tenant attribution snapshot,
// in layout order. Empty when the cluster was started with
// Options.DisableTenants.
func (c *Cluster) Tenants() []TenantReport {
	var out []TenantReport
	for i, tab := range c.tenantTables {
		if tab == nil {
			continue
		}
		out = append(out, TenantReport{
			Node:    fmt.Sprintf("data-%d", i),
			Evicted: tab.Evictions(),
			Usage:   tab.Snapshot(),
		})
	}
	return out
}

// Tenants fetches every storage node's tenant attribution snapshot over
// the wire, in sweep order. Unreachable nodes and nodes predating the
// tenant plane are skipped (they surface in Health); decode failures
// are reported.
func (fs *FS) Tenants() ([]TenantReport, error) {
	var out []TenantReport
	for _, n := range fs.nodeAddrs() {
		if n.role != "data" {
			continue // only storage nodes account tenants
		}
		resp, err := fs.pc.Pool().Call(n.addr, &wire.TenantStatsReq{})
		if err != nil {
			continue
		}
		ts, ok := resp.(*wire.TenantStatsResp)
		if !ok {
			return out, fmt.Errorf("dosas: unexpected tenant response %v", resp.Type())
		}
		usage, err := tenant.DecodeUsage(ts.Usage)
		if err != nil {
			return out, fmt.Errorf("dosas: %s: %w", n.name, err)
		}
		node := ts.Node
		if node == "" {
			node = n.name
		}
		out = append(out, TenantReport{Node: node, Evicted: ts.Evicted, Usage: usage})
	}
	return out, nil
}

// MergeTenantUsage folds per-node reports into one cluster-wide row per
// tenant, sorted by tenant name.
func MergeTenantUsage(reports []TenantReport) []TenantUsage {
	sets := make([][]TenantUsage, 0, len(reports))
	for _, r := range reports {
		sets = append(sets, r.Usage)
	}
	return tenant.Merge(sets...)
}

// SortTenantUsage orders rows by the given key: "bytes" (total bytes
// moved, descending), "cpu" (kernel nanoseconds, descending), "wait"
// (queue-wait nanoseconds, descending), or anything else for tenant
// name ascending. Ties break by tenant name so output is deterministic.
func SortTenantUsage(rows []TenantUsage, key string) {
	metric := func(u TenantUsage) uint64 {
		switch key {
		case "bytes":
			return u.BytesRead + u.BytesWritten
		case "cpu":
			return u.KernelNanos
		case "wait":
			return u.QueueWaitNanos
		}
		return 0
	}
	sort.SliceStable(rows, func(i, j int) bool {
		mi, mj := metric(rows[i]), metric(rows[j])
		if mi != mj {
			return mi > mj
		}
		return rows[i].Tenant < rows[j].Tenant
	})
}

// FormatTenants renders usage rows as the aligned table dosasctl
// tenants prints: one row per tenant with bytes, op counts, kernel CPU,
// queue wait, and contention counters.
func FormatTenants(rows []TenantUsage) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %10s %10s %7s %7s %7s %10s %10s %7s %7s %6s %6s\n",
		"TENANT", "READ", "WRITTEN", "RDOPS", "WROPS", "ACTIVE", "KERNEL", "WAIT", "BOUNCE", "INTR", "QUEUED", "INFL")
	for _, u := range rows {
		fmt.Fprintf(&sb, "%-20s %10s %10s %7d %7d %7d %10s %10s %7d %7d %6d %6d\n",
			u.Tenant,
			formatBytes(u.BytesRead), formatBytes(u.BytesWritten),
			u.ReadOps, u.WriteOps+u.TruncOps, u.ActiveOps+u.TransformOps,
			formatNanos(u.KernelNanos), formatNanos(u.QueueWaitNanos),
			u.Bounces, u.Interrupts, u.Queued, u.Inflight)
	}
	return sb.String()
}

// formatBytes renders a byte count with a binary-unit suffix, compact
// enough for fixed columns.
func formatBytes(b uint64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := uint64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%cB", float64(b)/float64(div), "KMGTPE"[exp])
}

// formatNanos renders a cumulative nanosecond count as a rounded
// duration.
func formatNanos(ns uint64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	}
	return d.String()
}
