package dosas

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dosas/internal/eventlog"
	"dosas/internal/metrics"
	"dosas/internal/slo"
	"dosas/internal/telemetry"
	"dosas/internal/trace"
	"dosas/internal/wire"
)

// TraceEvent is one recorded lifecycle event: a span of a distributed
// trace, carrying the TraceID minted by the issuing client, the recording
// node's identity, the phase it measures (queue-wait, kernel-execute,
// network-transfer, bounce-decision), its measured duration, and — for
// kernel phases — the Contention Estimator's predicted duration.
type TraceEvent = trace.Event

// StatsSnapshot is a consistent, JSON-encodable copy of one node's
// metric registry, as served by the StatsReq wire message.
type StatsSnapshot = metrics.Snapshot

// TraceEvents returns storage node i's retained lifecycle events in
// chronological order.
func (c *Cluster) TraceEvents(node int) ([]TraceEvent, error) {
	if node < 0 || node >= len(c.runtimes) {
		return nil, fmt.Errorf("dosas: no storage node %d", node)
	}
	return c.runtimes[node].Trace().Snapshot(), nil
}

// Stats returns every node's metric snapshot, keyed by node name
// ("meta", "data-0", …) — the cluster-wide aggregate view of what each
// server has counted.
func (c *Cluster) Stats() map[string]StatsSnapshot {
	out := make(map[string]StatsSnapshot, len(c.runtimes)+1)
	if c.meta != nil {
		out["meta"] = c.meta.Metrics().Snapshot()
	}
	for i, rt := range c.runtimes {
		if i < len(c.dataServers) {
			c.dataServers[i].SyncWireStats()
		}
		out[fmt.Sprintf("data-%d", i)] = rt.Metrics().Snapshot()
	}
	return out
}

// TraceTimeline stitches the storage-side events of one distributed
// trace across every node into a single chronological timeline. Client
// recorders are not visible to the cluster; merge FS.TraceEvents output
// with StitchTimeline for the complete picture.
func (c *Cluster) TraceTimeline(traceID uint64) []TraceEvent {
	sets := make([][]TraceEvent, 0, len(c.runtimes))
	for _, rt := range c.runtimes {
		sets = append(sets, rt.Trace().HistoryTrace(traceID))
	}
	return StitchTimeline(sets...)
}

// TraceEvents returns this client's retained lifecycle events (issues,
// responses, transfers, local kernel executions), in chronological order.
func (fs *FS) TraceEvents() []TraceEvent {
	return fs.asc.Trace().Snapshot()
}

// FilterTrace keeps only the events of one distributed trace.
func FilterTrace(evs []TraceEvent, traceID uint64) []TraceEvent {
	var out []TraceEvent
	for _, e := range evs {
		if e.TraceID == traceID {
			out = append(out, e)
		}
	}
	return out
}

// FilterRequest keeps only the events of one wire-level request id.
func FilterRequest(evs []TraceEvent, reqID uint64) []TraceEvent {
	var out []TraceEvent
	for _, e := range evs {
		if e.ReqID == reqID {
			out = append(out, e)
		}
	}
	return out
}

// StitchTimeline merges per-node event sets into one timeline ordered by
// wall-clock time (ties broken by node, then sequence number). All nodes
// of an in-process or single-host cluster share a clock, so the order is
// faithful; across real hosts it is as good as their clock sync.
func StitchTimeline(sets ...[]TraceEvent) []TraceEvent {
	var out []TraceEvent
	for _, s := range sets {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// FormatTimeline renders a stitched timeline one event per line, with
// the recording node called out so cross-node flow reads top to bottom.
func FormatTimeline(evs []TraceEvent) string {
	var sb strings.Builder
	for _, e := range evs {
		node := e.Node
		if node == "" {
			node = "?"
		}
		fmt.Fprintf(&sb, "%s %-8s%s\n", e.Time.Format("15:04:05.000"), node, trace.FormatEvent(e))
	}
	return sb.String()
}

// DecisionMetrics aggregates the scheduling decisions a cluster's
// storage nodes made — the per-scheme numbers the paper's evaluation
// turns on: how often work bounced back to compute nodes, how often
// running kernels were interrupted, and how accurate the Contention
// Estimator's kernel-cost forecasts were.
type DecisionMetrics struct {
	Arrivals    int64 `json:"arrivals"`
	Completed   int64 `json:"completed"`
	Bounced     int64 `json:"bounced"`
	Interrupted int64 `json:"interrupted"`
	Migrated    int64 `json:"migrated"`
	// BounceRate is Bounced/Arrivals (0 when no arrivals).
	BounceRate float64 `json:"bounce_rate"`
	// InterruptRate is Interrupted/Arrivals (0 when no arrivals).
	InterruptRate float64 `json:"interrupt_rate"`
	// EstimatorSamples counts kernel completions with a forecast.
	EstimatorSamples int64 `json:"estimator_samples"`
	// EstimatorErrPct is the mean |actual−predicted|/predicted error of
	// the estimator's kernel-cost forecasts, in percent, weighted across
	// nodes by sample count.
	EstimatorErrPct float64 `json:"estimator_err_pct"`
	// EstimatorErrPctP99 is the worst node's 99th-percentile error.
	EstimatorErrPctP99 float64 `json:"estimator_err_pct_p99"`
}

// DecisionMetrics aggregates scheduling-decision counters across all
// storage nodes.
func (c *Cluster) DecisionMetrics() DecisionMetrics {
	snaps := make([]StatsSnapshot, 0, len(c.runtimes))
	for _, rt := range c.runtimes {
		snaps = append(snaps, rt.Metrics().Snapshot())
	}
	return AggregateDecisions(snaps)
}

// HealthCheck is one named readiness check inside a node's health
// report (queue saturation, memory pressure, journal, …).
type HealthCheck = telemetry.Check

// HealthReport is one node's liveness and per-resource readiness, as
// served by the HealthReq wire message. Ready is the conjunction of its
// checks.
type HealthReport = telemetry.HealthReport

// SeriesPoint is one sampled (time, value) pair of a telemetry series.
type SeriesPoint = telemetry.Point

// Series is one named telemetry time series — a window of a node's
// ring-buffered samples (queue depth, bounce rate, throughput, …).
type Series = telemetry.Series

// SlowBundle is one slow-request diagnostic capture: the stitched
// cross-node timeline, disposition, and telemetry window of a ReadEx
// that tripped the client's slow detector.
type SlowBundle = telemetry.Bundle

// FormatSlowBundle renders a bundle as the multi-line report dosasctl
// slow prints.
func FormatSlowBundle(b SlowBundle) string { return telemetry.FormatBundle(b) }

// ReadSlowBundles loads the bundles a client persisted under dir (see
// ClientOptions.SlowDir), oldest first — how dosasctl slow inspects
// another process's flight journal.
func ReadSlowBundles(dir string) ([]SlowBundle, error) { return telemetry.ReadBundles(dir) }

// decodeHealthResp unpacks a wire health response into the public
// report form.
func decodeHealthResp(hr *wire.HealthResp) (HealthReport, error) {
	checks, err := telemetry.DecodeChecks(hr.Checks)
	if err != nil {
		return HealthReport{}, err
	}
	return HealthReport{
		Node: hr.Node, Role: hr.Role, Ready: hr.Ready,
		Checks: checks, UptimeNano: hr.UptimeNano,
	}, nil
}

// unreachableReport is the synthetic not-ready report a health sweep
// records for a node that could not be asked.
func unreachableReport(node, role string, err error) HealthReport {
	return HealthReport{
		Node: node, Role: role, Ready: false,
		Checks: []HealthCheck{{Name: "reachable", OK: false, Detail: err.Error()}},
	}
}

// Health reports every node's liveness and per-resource readiness —
// metadata server first, then storage nodes in layout order. It runs
// in-process through the same handlers that serve HealthReq on the
// wire, so the answer matches what dosasctl health sees.
func (c *Cluster) Health() []HealthReport {
	reports := make([]HealthReport, 0, len(c.dataServers)+1)
	if c.meta != nil {
		reports = append(reports, handlerHealth(c.meta, "meta", "meta"))
	}
	for i, ds := range c.dataServers {
		reports = append(reports, handlerHealth(ds, fmt.Sprintf("data-%d", i), "data"))
	}
	return reports
}

// handlerHealth asks one in-process server for its health report.
func handlerHealth(h interface {
	Handle(wire.Message) (wire.Message, error)
}, node, role string) HealthReport {
	resp, err := h.Handle(&wire.HealthReq{})
	if err != nil {
		return unreachableReport(node, role, err)
	}
	hr, ok := resp.(*wire.HealthResp)
	if !ok {
		return unreachableReport(node, role, fmt.Errorf("dosas: unexpected health response %v", resp.Type()))
	}
	rep, err := decodeHealthResp(hr)
	if err != nil {
		return unreachableReport(node, role, err)
	}
	return rep
}

// Series returns the trailing window of every node's telemetry history,
// keyed by node name ("meta", "data-0", …). Nodes without a sampler
// (Options.TelemetryTick < 0) are omitted. window ≤ 0 means the full
// retained history.
func (c *Cluster) Series(window time.Duration) map[string][]Series {
	out := make(map[string][]Series, len(c.runtimes)+1)
	if c.metaTele != nil {
		out["meta"] = c.metaTele.Snapshot(window)
	}
	for i, rt := range c.runtimes {
		if s := rt.Telemetry(); s != nil {
			out[fmt.Sprintf("data-%d", i)] = s.Snapshot(window)
		}
	}
	return out
}

// nodeAddrs enumerates the cluster's nodes as (name, address) pairs in
// sweep order: metadata server first, then storage nodes.
func (fs *FS) nodeAddrs() []struct{ name, role, addr string } {
	out := []struct{ name, role, addr string }{{"meta", "meta", fs.pc.MetaAddr()}}
	for i := 0; i < fs.pc.NumDataServers(); i++ {
		addr, err := fs.pc.DataAddr(uint32(i))
		if err != nil {
			continue
		}
		out = append(out, struct{ name, role, addr string }{fmt.Sprintf("data-%d", i), "data", addr})
	}
	return out
}

// Health sweeps every node of the connected cluster over the wire and
// reports liveness plus per-resource readiness. Unreachable nodes come
// back as not-ready reports with a failing "reachable" check rather
// than an error — a health sweep of a degraded cluster must not itself
// fail.
func (fs *FS) Health() []HealthReport {
	var out []HealthReport
	for _, n := range fs.nodeAddrs() {
		resp, err := fs.pc.Pool().Call(n.addr, &wire.HealthReq{})
		if err != nil {
			out = append(out, unreachableReport(n.name, n.role, err))
			continue
		}
		hr, ok := resp.(*wire.HealthResp)
		if !ok {
			out = append(out, unreachableReport(n.name, n.role, fmt.Errorf("dosas: unexpected health response %v", resp.Type())))
			continue
		}
		rep, err := decodeHealthResp(hr)
		if err != nil {
			out = append(out, unreachableReport(n.name, n.role, err))
			continue
		}
		out = append(out, rep)
	}
	return out
}

// Series fetches the trailing window of every node's telemetry history
// over the wire, keyed by node name. names, when given, restrict the
// fetch to those series. Unreachable nodes are skipped (they surface in
// Health); decode failures are reported.
func (fs *FS) Series(window time.Duration, names ...string) (map[string][]Series, error) {
	out := make(map[string][]Series)
	for _, n := range fs.nodeAddrs() {
		resp, err := fs.pc.Pool().Call(n.addr, &wire.SeriesFetchReq{WindowNano: int64(window), Names: names})
		if err != nil {
			continue
		}
		sf, ok := resp.(*wire.SeriesFetchResp)
		if !ok {
			return out, fmt.Errorf("dosas: unexpected series response %v", resp.Type())
		}
		series, err := telemetry.DecodeSeries(sf.Series)
		if err != nil {
			return out, fmt.Errorf("dosas: %s: %w", n.name, err)
		}
		name := sf.Node
		if name == "" {
			name = n.name
		}
		out[name] = series
	}
	return out, nil
}

// ClientSeries returns the trailing window of this client's own
// telemetry history (pending requests, shipped-bytes rate, bounce
// rate), or nil when client telemetry is disabled.
func (fs *FS) ClientSeries(window time.Duration) []Series {
	if s := fs.asc.Telemetry(); s != nil {
		return s.Snapshot(window)
	}
	return nil
}

// SlowBundles returns the flight recorder's journaled slow-request
// bundles, oldest first. Empty unless the client was connected with
// SlowThreshold or SlowFactor set.
func (fs *FS) SlowBundles() []SlowBundle { return fs.asc.SlowBundles() }

// Event is one structured operational event: a leveled, timestamped
// message with ordered key/value fields, emitted by a node subsystem
// (runtime, meta, slo) into its bounded in-memory ring.
type Event = eventlog.Event

// EventField is one ordered key/value pair of an event's structured
// context.
type EventField = eventlog.Field

// EventLevel is an event's severity (debug, info, warn, error).
type EventLevel = eventlog.Level

// Event severity levels.
const (
	EventDebug = eventlog.Debug
	EventInfo  = eventlog.Info
	EventWarn  = eventlog.Warn
	EventError = eventlog.Error
)

// ParseEventLevel parses a level name ("debug", "info", "warn",
// "error").
func ParseEventLevel(s string) (EventLevel, error) { return eventlog.ParseLevel(s) }

// FormatEvent renders one event as the single line dosasctl events
// prints.
func FormatEvent(ev Event) string { return eventlog.FormatEvent(ev) }

// MergeEvents interleaves per-node event sets into one timeline ordered
// by wall-clock time (ties broken by node, then sequence).
func MergeEvents(byNode ...[]Event) []Event { return eventlog.Merge(byNode...) }

// SLORule is one declarative alert rule (threshold, rate-of-change, or
// multi-window burn-rate) evaluated against a node's telemetry rings.
type SLORule = slo.Rule

// DefaultSLORules returns the built-in rule set every node evaluates
// when no -slo-rules file overrides it.
func DefaultSLORules() []SLORule { return slo.DefaultRules() }

// LoadSLORules reads a JSON rule file (see internal/slo for the
// schema), validating every rule.
func LoadSLORules(path string) ([]SLORule, error) { return slo.LoadRules(path) }

// ParseSLORules parses and validates a JSON rule list.
func ParseSLORules(data []byte) ([]SLORule, error) { return slo.ParseRules(data) }

// Alert is the live state of one rule on one node: inactive, pending
// (breaching but inside its dwell), firing, or resolved.
type Alert = slo.Alert

// AlertState is one rule's lifecycle position.
type AlertState = slo.State

// Alert lifecycle states.
const (
	AlertInactive = slo.StateInactive
	AlertPending  = slo.StatePending
	AlertFiring   = slo.StateFiring
	AlertResolved = slo.StateResolved
)

// FormatAlerts renders alerts as the aligned table dosasctl alerts
// prints.
func FormatAlerts(alerts []Alert) string { return slo.FormatAlerts(alerts) }

// Events returns the cluster's merged event timeline — every node's
// retained events at or above min, interleaved by time. limit > 0 keeps
// only the newest limit events per node before merging.
func (c *Cluster) Events(min EventLevel, limit int) []Event {
	sets := make([][]Event, 0, len(c.events)+1)
	if c.metaEvents != nil {
		sets = append(sets, c.metaEvents.Snapshot(0, min, limit))
	}
	for _, ev := range c.events {
		if ev != nil {
			sets = append(sets, ev.Snapshot(0, min, limit))
		}
	}
	return MergeEvents(sets...)
}

// Alerts returns every node's current alert table, metadata server
// first, then storage nodes in layout order. Nodes without an engine
// (telemetry disabled) contribute nothing.
func (c *Cluster) Alerts() []Alert {
	var out []Alert
	if c.metaSLO != nil {
		out = append(out, c.metaSLO.Alerts()...)
	}
	for _, eng := range c.engines {
		if eng != nil {
			out = append(out, eng.Alerts()...)
		}
	}
	return out
}

// EventsPage is one node's slice of the event tail, with the cursor to
// resume tailing from and how many ring entries have been overwritten
// since the node started. Node is the client layout name, matching the
// key of the since map passed to Events; individual events carry the
// emitting daemon's own node name.
type EventsPage struct {
	Node    string
	Events  []Event
	NextSeq uint64
	Dropped uint64
}

// Events fetches each node's retained events over the wire. since maps
// node name to the sequence cursor returned by a previous sweep (nil or
// a missing key fetches from the start of the ring); min filters by
// level and limit > 0 keeps only the newest limit events per node.
// Unreachable nodes and nodes predating the event plane are skipped
// (they surface in Health); decode failures are reported.
func (fs *FS) Events(since map[string]uint64, min EventLevel, limit int) ([]EventsPage, error) {
	var out []EventsPage
	for _, n := range fs.nodeAddrs() {
		req := &wire.EventFetchReq{MinLevel: uint8(min), Limit: uint64(limit)}
		if since != nil {
			req.SinceSeq = since[n.name]
		}
		resp, err := fs.pc.Pool().Call(n.addr, req)
		if err != nil {
			continue
		}
		ef, ok := resp.(*wire.EventFetchResp)
		if !ok {
			return out, fmt.Errorf("dosas: unexpected event response %v", resp.Type())
		}
		events, err := eventlog.DecodeEvents(ef.Events)
		if err != nil {
			return out, fmt.Errorf("dosas: %s: %w", n.name, err)
		}
		// Key the page by the client layout name — the same key a
		// caller's since map uses — so resume cursors always match even
		// if the daemon was configured with a different node name. The
		// events themselves carry the server-reported name for display.
		out = append(out, EventsPage{Node: n.name, Events: events, NextSeq: ef.NextSeq, Dropped: ef.Dropped})
	}
	return out, nil
}

// Alerts fetches every node's current alert table over the wire, in
// sweep order. Unreachable nodes and nodes predating the alert plane
// are skipped (they surface in Health); decode failures are reported.
func (fs *FS) Alerts() ([]Alert, error) {
	var out []Alert
	for _, n := range fs.nodeAddrs() {
		resp, err := fs.pc.Pool().Call(n.addr, &wire.AlertFetchReq{})
		if err != nil {
			continue
		}
		af, ok := resp.(*wire.AlertFetchResp)
		if !ok {
			return out, fmt.Errorf("dosas: unexpected alert response %v", resp.Type())
		}
		alerts, err := slo.DecodeAlerts(af.Alerts)
		if err != nil {
			return out, fmt.Errorf("dosas: %s: %w", n.name, err)
		}
		for i := range alerts {
			if alerts[i].Node == "" {
				alerts[i].Node = n.name
			}
		}
		out = append(out, alerts...)
	}
	return out, nil
}

// AggregateDecisions computes cluster-wide decision metrics from
// per-node snapshots (local registries or StatsResp payloads alike).
func AggregateDecisions(snaps []StatsSnapshot) DecisionMetrics {
	var m DecisionMetrics
	var errSum float64
	for _, s := range snaps {
		m.Arrivals += s.Counter("active.arrivals")
		m.Completed += s.Counter("active.completed")
		m.Bounced += s.Counter("active.rejected") +
			s.Counter("active.rejected_memory") +
			s.Counter("active.bounced_queued")
		m.Interrupted += s.Counter("active.interrupted")
		m.Migrated += s.Counter("active.migrated")
		if h, ok := s.Histograms["est.kernel_error_pct"]; ok && h.Count > 0 {
			m.EstimatorSamples += h.Count
			errSum += h.Mean * float64(h.Count)
			if h.P99 > m.EstimatorErrPctP99 {
				m.EstimatorErrPctP99 = h.P99
			}
		}
	}
	if m.Arrivals > 0 {
		m.BounceRate = float64(m.Bounced) / float64(m.Arrivals)
		m.InterruptRate = float64(m.Interrupted) / float64(m.Arrivals)
	}
	if m.EstimatorSamples > 0 {
		m.EstimatorErrPct = errSum / float64(m.EstimatorSamples)
	}
	return m
}
