package dosas

import (
	"fmt"
	"sort"
	"strings"

	"dosas/internal/metrics"
	"dosas/internal/trace"
)

// TraceEvent is one recorded lifecycle event: a span of a distributed
// trace, carrying the TraceID minted by the issuing client, the recording
// node's identity, the phase it measures (queue-wait, kernel-execute,
// network-transfer, bounce-decision), its measured duration, and — for
// kernel phases — the Contention Estimator's predicted duration.
type TraceEvent = trace.Event

// StatsSnapshot is a consistent, JSON-encodable copy of one node's
// metric registry, as served by the StatsReq wire message.
type StatsSnapshot = metrics.Snapshot

// TraceEvents returns storage node i's retained lifecycle events in
// chronological order.
func (c *Cluster) TraceEvents(node int) ([]TraceEvent, error) {
	if node < 0 || node >= len(c.runtimes) {
		return nil, fmt.Errorf("dosas: no storage node %d", node)
	}
	return c.runtimes[node].Trace().Snapshot(), nil
}

// Stats returns every node's metric snapshot, keyed by node name
// ("meta", "data-0", …) — the cluster-wide aggregate view of what each
// server has counted.
func (c *Cluster) Stats() map[string]StatsSnapshot {
	out := make(map[string]StatsSnapshot, len(c.runtimes)+1)
	if c.meta != nil {
		out["meta"] = c.meta.Metrics().Snapshot()
	}
	for i, rt := range c.runtimes {
		out[fmt.Sprintf("data-%d", i)] = rt.Metrics().Snapshot()
	}
	return out
}

// TraceTimeline stitches the storage-side events of one distributed
// trace across every node into a single chronological timeline. Client
// recorders are not visible to the cluster; merge FS.TraceEvents output
// with StitchTimeline for the complete picture.
func (c *Cluster) TraceTimeline(traceID uint64) []TraceEvent {
	sets := make([][]TraceEvent, 0, len(c.runtimes))
	for _, rt := range c.runtimes {
		sets = append(sets, rt.Trace().HistoryTrace(traceID))
	}
	return StitchTimeline(sets...)
}

// TraceEvents returns this client's retained lifecycle events (issues,
// responses, transfers, local kernel executions), in chronological order.
func (fs *FS) TraceEvents() []TraceEvent {
	return fs.asc.Trace().Snapshot()
}

// FilterTrace keeps only the events of one distributed trace.
func FilterTrace(evs []TraceEvent, traceID uint64) []TraceEvent {
	var out []TraceEvent
	for _, e := range evs {
		if e.TraceID == traceID {
			out = append(out, e)
		}
	}
	return out
}

// FilterRequest keeps only the events of one wire-level request id.
func FilterRequest(evs []TraceEvent, reqID uint64) []TraceEvent {
	var out []TraceEvent
	for _, e := range evs {
		if e.ReqID == reqID {
			out = append(out, e)
		}
	}
	return out
}

// StitchTimeline merges per-node event sets into one timeline ordered by
// wall-clock time (ties broken by node, then sequence number). All nodes
// of an in-process or single-host cluster share a clock, so the order is
// faithful; across real hosts it is as good as their clock sync.
func StitchTimeline(sets ...[]TraceEvent) []TraceEvent {
	var out []TraceEvent
	for _, s := range sets {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// FormatTimeline renders a stitched timeline one event per line, with
// the recording node called out so cross-node flow reads top to bottom.
func FormatTimeline(evs []TraceEvent) string {
	var sb strings.Builder
	for _, e := range evs {
		node := e.Node
		if node == "" {
			node = "?"
		}
		fmt.Fprintf(&sb, "%s %-8s%s\n", e.Time.Format("15:04:05.000"), node, trace.FormatEvent(e))
	}
	return sb.String()
}

// DecisionMetrics aggregates the scheduling decisions a cluster's
// storage nodes made — the per-scheme numbers the paper's evaluation
// turns on: how often work bounced back to compute nodes, how often
// running kernels were interrupted, and how accurate the Contention
// Estimator's kernel-cost forecasts were.
type DecisionMetrics struct {
	Arrivals    int64 `json:"arrivals"`
	Completed   int64 `json:"completed"`
	Bounced     int64 `json:"bounced"`
	Interrupted int64 `json:"interrupted"`
	Migrated    int64 `json:"migrated"`
	// BounceRate is Bounced/Arrivals (0 when no arrivals).
	BounceRate float64 `json:"bounce_rate"`
	// InterruptRate is Interrupted/Arrivals (0 when no arrivals).
	InterruptRate float64 `json:"interrupt_rate"`
	// EstimatorSamples counts kernel completions with a forecast.
	EstimatorSamples int64 `json:"estimator_samples"`
	// EstimatorErrPct is the mean |actual−predicted|/predicted error of
	// the estimator's kernel-cost forecasts, in percent, weighted across
	// nodes by sample count.
	EstimatorErrPct float64 `json:"estimator_err_pct"`
	// EstimatorErrPctP99 is the worst node's 99th-percentile error.
	EstimatorErrPctP99 float64 `json:"estimator_err_pct_p99"`
}

// DecisionMetrics aggregates scheduling-decision counters across all
// storage nodes.
func (c *Cluster) DecisionMetrics() DecisionMetrics {
	snaps := make([]StatsSnapshot, 0, len(c.runtimes))
	for _, rt := range c.runtimes {
		snaps = append(snaps, rt.Metrics().Snapshot())
	}
	return AggregateDecisions(snaps)
}

// AggregateDecisions computes cluster-wide decision metrics from
// per-node snapshots (local registries or StatsResp payloads alike).
func AggregateDecisions(snaps []StatsSnapshot) DecisionMetrics {
	var m DecisionMetrics
	var errSum float64
	for _, s := range snaps {
		m.Arrivals += s.Counter("active.arrivals")
		m.Completed += s.Counter("active.completed")
		m.Bounced += s.Counter("active.rejected") +
			s.Counter("active.rejected_memory") +
			s.Counter("active.bounced_queued")
		m.Interrupted += s.Counter("active.interrupted")
		m.Migrated += s.Counter("active.migrated")
		if h, ok := s.Histograms["est.kernel_error_pct"]; ok && h.Count > 0 {
			m.EstimatorSamples += h.Count
			errSum += h.Mean * float64(h.Count)
			if h.P99 > m.EstimatorErrPctP99 {
				m.EstimatorErrPctP99 = h.P99
			}
		}
	}
	if m.Arrivals > 0 {
		m.BounceRate = float64(m.Bounced) / float64(m.Arrivals)
		m.InterruptRate = float64(m.Interrupted) / float64(m.Arrivals)
	}
	if m.EstimatorSamples > 0 {
		m.EstimatorErrPct = errSum / float64(m.EstimatorSamples)
	}
	return m
}
