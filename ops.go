package dosas

import (
	"dosas/internal/kernels"
)

// Ops returns the names of every registered processing kernel.
func Ops() []string { return kernels.Names() }

// GaussianParams encodes parameters for the "gaussian2d" kernel: the image
// row width in pixels and whether to return the full filtered image
// (emitFull) or a small digest.
func GaussianParams(width uint32, emitFull bool) []byte {
	return kernels.GaussianParams(width, emitFull)
}

// GaussianParamsHalo is GaussianParams plus explicit one-row halos used
// as the neighbours above and below the band (nil keeps edge replication
// on that side). See File.FilterImage for the high-level striped-image
// filter built on it.
func GaussianParamsHalo(width uint32, emitFull bool, top, bottom []byte) []byte {
	return kernels.GaussianParamsHalo(width, emitFull, top, bottom)
}

// DownsampleParams encodes parameters for the "downsample" kernel.
func DownsampleParams(factor uint32) []byte { return kernels.DownsampleParams(factor) }

// SumResult decodes the output of the "sum8" kernel.
func SumResult(out []byte) uint64 { return kernels.Sum8Result(out) }

// Sum64Result decodes the output of the "sum64" kernel.
func Sum64Result(out []byte) float64 { return kernels.Sum64Result(out) }

// CountResult decodes the output of the "count" and "wordcount" kernels.
func CountResult(out []byte) uint64 { return kernels.CountResult(out) }

// MinMaxResult decodes the output of the "minmax" kernel.
func MinMaxResult(out []byte) (min, max float64, err error) {
	return kernels.MinMaxResult(out)
}

// Moments is the decoded output of the "moments" kernel.
type Moments = kernels.Moments

// MomentsResult decodes the output of the "moments" kernel.
func MomentsResult(out []byte) (Moments, error) { return kernels.MomentsResult(out) }

// GaussianDigest is the decoded digest-mode output of "gaussian2d".
type GaussianDigest = kernels.GaussianDigest

// GaussianDigestResult decodes a digest-mode "gaussian2d" output.
func GaussianDigestResult(out []byte) (GaussianDigest, error) {
	return kernels.DecodeGaussianDigest(out)
}

// DownsampleResult decodes the output of the "downsample" kernel.
func DownsampleResult(out []byte) []float64 { return kernels.DownsampleResult(out) }

// KMeansParams encodes parameters for the "kmeans1d" kernel: k clusters
// with initial centroids spread evenly over [lo, hi].
func KMeansParams(k uint32, lo, hi float64) []byte { return kernels.KMeansParams(k, lo, hi) }

// KMeansCluster is one decoded "kmeans1d" output record.
type KMeansCluster = kernels.KMeansCluster

// KMeansResult decodes the output of the "kmeans1d" kernel.
func KMeansResult(out []byte) ([]KMeansCluster, error) { return kernels.KMeansResult(out) }

// HistogramResult decodes the output of the "histogram" kernel.
func HistogramResult(out []byte) ([256]uint64, error) { return kernels.HistogramResult(out) }

// Calibrate measures the local host's single-core processing rate for op
// (bytes/second) by streaming sampleBytes of synthetic data through its
// kernel, regenerating the paper's Table III for this machine. With store
// set, the measured rate replaces the compiled-in default used by the
// Contention Estimator and by pacing.
func Calibrate(op string, sampleBytes int, store bool) (float64, error) {
	return kernels.Calibrate(op, sampleBytes, store)
}

// RateFor reports the configured per-core processing rate for op in
// bytes/second.
func RateFor(op string) float64 { return kernels.RateFor(op) }

// SetRate overrides the per-core processing rate for op.
func SetRate(op string, bytesPerSecond float64) { kernels.SetRate(op, bytesPerSecond) }
