package dosas

import (
	"reflect"
	"testing"
)

// aggregateNodes matches buckets by timestamp and applies each
// function's definition; nodes missing a bucket don't contribute, and
// "last" lets later sweep-order nodes override earlier ones.
func TestAggregateNodes(t *testing.T) {
	nodes := []NodeSeries{
		{Node: "data-0", Points: []SeriesPoint{{UnixNano: 10, Value: 2}, {UnixNano: 20, Value: 4}}},
		{Node: "data-1", Points: []SeriesPoint{{UnixNano: 10, Value: 6}, {UnixNano: 30, Value: 8}}},
	}
	cases := map[string][]SeriesPoint{
		"avg":  {{UnixNano: 10, Value: 4}, {UnixNano: 20, Value: 4}, {UnixNano: 30, Value: 8}},
		"min":  {{UnixNano: 10, Value: 2}, {UnixNano: 20, Value: 4}, {UnixNano: 30, Value: 8}},
		"max":  {{UnixNano: 10, Value: 6}, {UnixNano: 20, Value: 4}, {UnixNano: 30, Value: 8}},
		"sum":  {{UnixNano: 10, Value: 8}, {UnixNano: 20, Value: 4}, {UnixNano: 30, Value: 8}},
		"last": {{UnixNano: 10, Value: 6}, {UnixNano: 20, Value: 4}, {UnixNano: 30, Value: 8}},
	}
	for agg, want := range cases {
		if got := aggregateNodes(nodes, agg); !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %+v, want %+v", agg, got, want)
		}
	}
	if got := aggregateNodes(nodes, ""); got != nil {
		t.Errorf("no-agg = %+v, want nil", got)
	}
	if got := aggregateNodes(nil, "avg"); got != nil {
		t.Errorf("empty = %+v, want nil", got)
	}
}
