// Command dosasd runs a complete single-host DOSAS cluster — metadata
// server plus N storage nodes — in one process over TCP loopback. It is
// the quickest way to stand up a cluster that dosasctl and external
// clients can talk to.
//
// Usage:
//
//	dosasd [-servers 4] [-base-port 7700] [-policy dosas] [-data DIR]
//	       [-link-rate 0] [-pace]
//
// The metadata server listens on base-port and storage node i on
// base-port+1+i. On startup dosasd prints the exact dosasctl invocation
// for the cluster.
//
// -pprof-addr opens the loopback debug endpoint, which also serves the
// whole cluster's OpenMetrics exposition at /metrics — every node's
// metrics, telemetry, and alert states under node labels.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dosas"
	"dosas/internal/daemonflags"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("dosasd: ")

	servers := flag.Int("servers", 4, "number of storage nodes")
	basePort := flag.Int("base-port", 7700, "metadata server port; storage nodes follow")
	policyName := flag.String("policy", "dosas", "scheduling policy: dosas, as, or ts")
	solverName := flag.String("solver", "", "dynamic-mode scheduling algorithm: exhaustive, maxgain (default), all-active, all-normal")
	dataDir := flag.String("data", "", "durable data directory (empty = in-memory)")
	fsync := flag.Bool("fsync", false, "fsync stores after every write and truncate (default off: page cache absorbs bursts)")
	readPath := flag.String("read-path", "zerocopy", "bulk read serving path: zerocopy (sendfile/writev) or copy (staged through pooled buffers)")
	linkRate := flag.Float64("link-rate", 0, "per-node link shaping in bytes/second (0 = unshaped)")
	pace := flag.Bool("pace", false, "pace kernels at calibrated per-core rates")
	var common daemonflags.Common
	common.RegisterBase(flag.CommandLine)
	common.RegisterTelemetry(flag.CommandLine)
	common.RegisterObservability(flag.CommandLine)
	common.RegisterQoS(flag.CommandLine)
	flag.Parse()

	weights, err := common.TenantWeights()
	if err != nil {
		log.Fatal(err)
	}

	var policy dosas.Policy
	switch *policyName {
	case "dosas":
		policy = dosas.Dynamic
	case "as":
		policy = dosas.AlwaysAccept
	case "ts":
		policy = dosas.AlwaysBounce
	default:
		log.Fatalf("unknown -policy %q (want dosas, as, or ts)", *policyName)
	}

	rules, err := common.Rules()
	if err != nil {
		log.Fatal(err)
	}
	switch *readPath {
	case "zerocopy", "copy":
	default:
		log.Fatalf("unknown -read-path %q (want zerocopy or copy)", *readPath)
	}

	cluster, err := dosas.StartCluster(dosas.Options{
		DataServers:     *servers,
		Policy:          policy,
		Solver:          *solverName,
		TCP:             true,
		TCPBasePort:     *basePort,
		LinkRate:        *linkRate,
		Pace:            *pace,
		DataDir:         *dataDir,
		StoreSync:       *fsync,
		PlainReadPath:   *readPath == "copy",
		TelemetryTick:   common.TelemetryTick,
		DisableMux:      common.NoMux,
		SLORules:        rules,
		EventCapacity:   common.EventCapacity,
		EventMirror:     os.Stderr,
		EventDir:        common.EventDir,
		EventsMaxBytes:  common.EventsMaxBytes,
		ArchiveDir:      common.ArchiveDir,
		ArchiveMaxBytes: common.ArchiveMaxBytes,
		TenantWeights:   weights,
		QoSSlots:        common.QoSSlots,
		DisableQoS:      common.NoQoS,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	if addr, err := common.ServeDebug(cluster.MetricsSources); err != nil {
		log.Fatal(err)
	} else if addr != "" {
		fmt.Printf("debug endpoint:  http://%s/debug/pprof/ and http://%s/metrics\n", addr, addr)
	}

	fmt.Printf("metadata server: %s\n", cluster.MetaAddr())
	for i, addr := range cluster.DataAddrs() {
		fmt.Printf("storage node %d:  %s (policy=%s)\n", i, addr, *policyName)
	}
	fmt.Printf("\nconnect with:\n  dosasctl -meta %s -data %s ls\n",
		cluster.MetaAddr(), strings.Join(cluster.DataAddrs(), ","))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr)
	log.Print("shutting down")
}
