package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"dosas"
	"dosas/internal/workload"
)

// archiveExp is the durable-telemetry-archive experiment: (a) the A/B
// overhead check — the same bulk-read workload timed with the archive
// enabled and disabled, budget <1% — and (b) the crash-continuity
// check: a cluster archives telemetry, is torn down, restarts on the
// same archive directory, and a range query must return one series
// holding both pre- and post-restart samples.
func archiveExp() {
	header("Archive: durable telemetry overhead and restart continuity")

	onSec, offSec := archiveOverhead()
	overheadPct := (onSec - offSec) / offSec * 100
	verdict := "PASS"
	if overheadPct >= 1 {
		verdict = "FAIL"
	}
	fmt.Printf("archive overhead:    on=%.4fs off=%.4fs (%.2f%%; budget 1%%: %s)\n",
		onSec, offSec, overheadPct, verdict)

	pre, post := archiveContinuity()
	contOK := pre > 0 && post > 0
	fmt.Printf("restart continuity:  pre-crash=%d post-restart=%d samples (both >0: %v)\n",
		pre, post, contOK)

	blob, err := json.MarshalIndent(map[string]any{
		"experiment":           "archive",
		"overhead_on_seconds":  onSec,
		"overhead_off_seconds": offSec,
		"overhead_pct":         overheadPct,
		"overhead_budget_pct":  1.0,
		"overhead_pass":        overheadPct < 1,
		"pre_crash_samples":    pre,
		"post_restart_samples": post,
		"continuity_pass":      contOK,
	}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	const out = "BENCH_archive.json"
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote archive report to %s\n", out)
	fmt.Println("(expect the A/B to be in the noise — archiving is a few buffered")
	fmt.Println(" writes per telemetry tick, off the request path — and the restarted")
	fmt.Println(" cluster's series to reach back before the teardown)")
}

// archiveOverhead times the same bulk-read workload with the archive
// hooked to a fast telemetry tick and with it absent (best of several
// runs each). Appends happen on the sampler tick, never on the request
// path, so the difference should be measurement noise.
func archiveOverhead() (onSec, offSec float64) {
	const fileMB = 64
	const runs = 11
	measure := func(dir string) float64 {
		cluster, err := dosas.StartCluster(dosas.Options{
			DataServers:   2,
			Policy:        dosas.AlwaysBounce,
			TelemetryTick: 10 * time.Millisecond,
			ArchiveDir:    dir,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		fs, err := cluster.Connect(dosas.TS)
		if err != nil {
			log.Fatal(err)
		}
		defer fs.Close()
		f, err := fs.Create("archive/bulk", dosas.CreateOptions{Width: 2})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.WriteAt(workload.RandomBytes(fileMB<<20, 9), 0); err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, fileMB<<20)
		if _, err := f.ReadAt(buf, 0); err != nil { // warm caches before timing
			log.Fatal(err)
		}
		best := time.Duration(1<<62 - 1)
		for r := 0; r < runs; r++ {
			start := time.Now()
			if _, err := f.ReadAt(buf, 0); err != nil {
				log.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best.Seconds()
	}
	offSec = measure("")
	dir, err := os.MkdirTemp("", "dosas-bench-archive")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	onSec = measure(dir)
	return onSec, offSec
}

// archiveContinuity archives a burst of telemetry, tears the cluster
// down, restarts it on the same archive directory, and counts the
// queried samples on each side of the restart.
func archiveContinuity() (pre, post int) {
	dir, err := os.MkdirTemp("", "dosas-bench-archive")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	opts := dosas.Options{
		DataServers:   1,
		Policy:        dosas.AlwaysBounce,
		TelemetryTick: 5 * time.Millisecond,
		ArchiveDir:    dir,
	}

	run := func(until func(res dosas.QueryResult) bool) {
		cluster, err := dosas.StartCluster(opts)
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			res, err := cluster.Query(dosas.RangeQuery{Name: "runtime.goroutines"})
			if err != nil {
				log.Fatal(err)
			}
			if until(res) {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		log.Fatal("archive: continuity run never accumulated samples")
	}

	// First life: archive a burst of ticks, then tear down.
	run(func(res dosas.QueryResult) bool {
		n := 0
		for _, ns := range res.Nodes {
			n += len(ns.Points)
		}
		return n >= 50
	})

	// Second life on the same directory: wait until fresh samples land,
	// then split the stitched series at the restart instant.
	restartNano := time.Now().UnixNano()
	run(func(res dosas.QueryResult) bool {
		pre, post = 0, 0
		for _, ns := range res.Nodes {
			for _, p := range ns.Points {
				if p.UnixNano < restartNano {
					pre++
				} else {
					post++
				}
			}
		}
		return pre > 0 && post > 0
	})
	return pre, post
}
