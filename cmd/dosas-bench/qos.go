package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dosas/internal/pfs"
	"dosas/internal/transport"
)

// This file holds the tail-latency isolation experiments:
//
//	qos-isolation  a batch tenant storms one paced disk while a victim
//	               issues large reads; the victim's p99 is measured
//	               uncontended, contended without the QoS gate, and
//	               contended with weighted-fair admission. Acceptance:
//	               the gated contended p99 stays within 25% of the
//	               uncontended baseline.
//	straggler      a replicated file served by two nodes whose "disk"
//	               suffers periodic brownouts; hedged reads must cut the
//	               read p99 at least 2x against the unhedged client while
//	               duplicating under 5% of the bytes. A third phase shows
//	               the latency-tracker routing traffic off a persistently
//	               slow replica.
//
// Both write their numbers into BENCH_qos.json (merging, so either order
// works).

// qosBenchOut is the merged report file both experiments write into.
const qosBenchOut = "BENCH_qos.json"

// mergeQoSReport folds section into BENCH_qos.json, preserving whatever
// the other experiment already wrote there.
func mergeQoSReport(section string, v any) {
	report := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(qosBenchOut); err == nil {
		_ = json.Unmarshal(raw, &report)
	}
	b, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	report[section] = b
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(qosBenchOut, append(out, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  wrote %s (%s)\n", qosBenchOut, section)
}

// pacedStore emulates one disk head: reads serialize on a mutex and cost
// wall-clock time proportional to their size. Writes (setup traffic) pass
// through at memory speed.
type pacedStore struct {
	pfs.Store
	mu  sync.Mutex
	bps float64 // read bandwidth, bytes/second
}

func (s *pacedStore) ReadAt(handle uint64, p []byte, off uint64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.Store.ReadAt(handle, p, off)
	if n > 0 && s.bps > 0 {
		time.Sleep(time.Duration(float64(n) / s.bps * float64(time.Second)))
	}
	return n, err
}

// brownoutStore models device-level interference (a compaction, a scrub,
// a co-located active task hogging the spindle): while a brownout window
// is open every read eats a fixed delay; outside windows the store runs
// at memory speed.
type brownoutStore struct {
	pfs.Store
	until atomic.Int64 // unix nanos; brownout active while now < until
	slow  time.Duration
}

func (s *brownoutStore) ReadAt(handle uint64, p []byte, off uint64) (int, error) {
	if time.Now().UnixNano() < s.until.Load() {
		time.Sleep(s.slow)
	}
	return s.Store.ReadAt(handle, p, off)
}

func (s *brownoutStore) brownout(d time.Duration) {
	s.until.Store(time.Now().Add(d).UnixNano())
}

// qosCluster is an in-process PFS sized for these experiments: one
// metadata server plus caller-provided data-server stores.
type qosCluster struct {
	net   transport.Network
	addrs []string
	datas []*pfs.DataServer
	stop  []func()
}

func (c *qosCluster) Close() {
	for i := len(c.stop) - 1; i >= 0; i-- {
		c.stop[i]()
	}
}

func (c *qosCluster) client(cfg pfs.ClientConfig) *pfs.Client {
	cfg.Net = c.net
	cfg.MetaAddr = "meta"
	cfg.DataAddrs = c.addrs
	cl, err := pfs.NewClient(cfg)
	if err != nil {
		log.Fatal(err)
	}
	c.stop = append(c.stop, cl.Close)
	return cl
}

func startQoSCluster(stores []pfs.Store, qos *pfs.QoSConfig) *qosCluster {
	net := transport.NewInproc()
	c := &qosCluster{net: net}
	meta, err := pfs.NewMetaServer(pfs.MetaConfig{NumDataServers: len(stores)})
	if err != nil {
		log.Fatal(err)
	}
	ml, err := net.Listen("meta")
	if err != nil {
		log.Fatal(err)
	}
	ms := pfs.NewServer(ml, meta)
	ms.Start()
	c.stop = append(c.stop, ms.Close)
	for i, st := range stores {
		ds, err := pfs.NewDataServer(pfs.DataConfig{Store: st, QoS: qos})
		if err != nil {
			log.Fatal(err)
		}
		addr := fmt.Sprintf("data-%d", i)
		dl, err := net.Listen(addr)
		if err != nil {
			log.Fatal(err)
		}
		srv := pfs.NewServer(dl, ds)
		srv.SetFrameStats(ds.WireStats())
		srv.Start()
		c.stop = append(c.stop, srv.Close, ds.Close)
		c.addrs = append(c.addrs, addr)
		c.datas = append(c.datas, ds)
	}
	return c
}

func pctl(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	i := int(p*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// --- qos-isolation ----------------------------------------------------

type isolationPhase struct {
	Label     string  `json:"label"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	Throttled uint64  `json:"gate_throttled"`
}

// runIsolationPhase measures the victim's read latency distribution on a
// fresh single-disk cluster. nAggr goroutines of the "batch" tenant
// saturate the disk with 256 KiB reads while the victim repeatedly pulls
// a 4 MiB file.
func runIsolationPhase(label string, qos *pfs.QoSConfig, nAggr int) isolationPhase {
	const (
		diskBps    = 256 << 20 // one disk, 256 MB/s
		victimSize = 4 << 20
		aggrChunk  = 128 << 10
		aggrFile   = 16 << 20
		samples    = 200
	)
	cl := startQoSCluster([]pfs.Store{&pacedStore{Store: pfs.NewMemStore(), bps: diskBps}}, qos)
	defer cl.Close()

	// One transfer chunk per read: the whole 4 MB is a single gate ticket,
	// so the WDRR round cost is paid once, not per chunk.
	victim := cl.client(pfs.ClientConfig{Tenant: "victim", TransferChunk: victimSize})
	vf, err := victim.Create("qos/victim", victimSize, 1)
	if err != nil {
		log.Fatal(err)
	}
	vbuf := make([]byte, victimSize)
	rand.New(rand.NewSource(7)).Read(vbuf)
	if _, err := vf.WriteAt(vbuf, 0); err != nil {
		log.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	if nAggr > 0 {
		aggr := cl.client(pfs.ClientConfig{Tenant: "batch", TransferChunk: aggrChunk})
		af, err := aggr.Create("qos/batch", aggrFile, 1)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := af.WriteAt(make([]byte, aggrFile), 0); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < nAggr; i++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				buf := make([]byte, aggrChunk)
				for {
					select {
					case <-stop:
						return
					default:
					}
					off := uint64(rng.Intn(aggrFile/aggrChunk)) * aggrChunk
					if _, err := af.ReadAt(buf, off); err != nil {
						return
					}
				}
			}(int64(i))
		}
		time.Sleep(100 * time.Millisecond) // let the storm build its queue
	}

	rbuf := make([]byte, victimSize)
	for i := 0; i < 20; i++ { // warm connections, buffer pools, and the runtime
		if _, err := vf.ReadAt(rbuf, 0); err != nil {
			log.Fatal(err)
		}
	}
	lats := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		t0 := time.Now()
		if _, err := vf.ReadAt(rbuf, 0); err != nil {
			log.Fatal(err)
		}
		lats = append(lats, time.Since(t0))
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	ph := isolationPhase{Label: label, P50Ms: ms(pctl(lats, 0.50)), P99Ms: ms(pctl(lats, 0.99))}
	if g := cl.datas[0].Gate(); g != nil {
		ph.Throttled = g.Stats().Throttled
	}
	fmt.Printf("  %-28s p50 %7.2f ms   p99 %7.2f ms   gate throttled %d\n",
		label, ph.P50Ms, ph.P99Ms, ph.Throttled)
	return ph
}

// qosIsolation runs the weighted-fair admission A/B: does the gate keep a
// victim tenant's large reads near their uncontended latency while a
// batch tenant saturates the same disk?
func qosIsolation() {
	header("QoS isolation: victim 4 MB reads vs a 16-way batch storm on one 256 MB/s disk")
	const nAggr = 16
	// Weight 16 gives the victim a 4 MB grant per WDRR round — one round
	// covers a whole request, so election never waits on banked credit.
	gate := &pfs.QoSConfig{Slots: 1, Weights: map[string]float64{"victim": 16}}

	baseline := runIsolationPhase("uncontended (gate on)", gate, 0)
	ungated := runIsolationPhase("contended, no gate", nil, nAggr)
	gated := runIsolationPhase("contended, gated 16:1", gate, nAggr)

	ratioGated := gated.P99Ms / baseline.P99Ms
	ratioUngated := ungated.P99Ms / baseline.P99Ms
	pass := ratioGated <= 1.25
	fmt.Printf("\n  victim p99 vs uncontended: no gate %.2fx, gated %.2fx (acceptance <= 1.25x: %v)\n",
		ratioUngated, ratioGated, pass)

	mergeQoSReport("qos_isolation", map[string]any{
		"phases":             []isolationPhase{baseline, ungated, gated},
		"victim_p99_ms":      gated.P99Ms,
		"baseline_p99_ms":    baseline.P99Ms,
		"ungated_p99_ms":     ungated.P99Ms,
		"p99_ratio_gated":    ratioGated,
		"p99_ratio_ungated":  ratioUngated,
		"pass_within_25_pct": pass,
	})
}

// --- straggler --------------------------------------------------------

type stragglerPhase struct {
	Label         string  `json:"label"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	HedgeLaunched int64   `json:"hedge_launched"`
	HedgeWins     int64   `json:"hedge_wins"`
	DupBytesPct   float64 `json:"dup_bytes_pct"`
}

// runStragglerPhase measures replicated 1 MB reads (serial 64 KiB chunks,
// so a cancelled primary only drains one in-flight chunk) on a fresh
// two-node cluster whose stores suffer staggered brownout windows.
func runStragglerPhase(label string, hedgeAfter time.Duration) stragglerPhase {
	const (
		readSize = 1 << 20
		samples  = 300
		gap      = 15 * time.Millisecond
		slowPer  = 12 * time.Millisecond // per 64 KiB chunk during a brownout
		window   = 150 * time.Millisecond
	)
	stores := []*brownoutStore{
		{Store: pfs.NewMemStore(), slow: slowPer},
		{Store: pfs.NewMemStore(), slow: slowPer},
	}
	cl := startQoSCluster([]pfs.Store{stores[0], stores[1]}, nil)
	defer cl.Close()

	c := cl.client(pfs.ClientConfig{
		Tenant:        "victim",
		WindowDepth:   1,
		TransferChunk: 64 << 10,
		HedgeAfter:    hedgeAfter,
	})
	f, err := c.CreateReplicated("strag/f", 4<<20, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, readSize)
	rand.New(rand.NewSource(11)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		log.Fatal(err)
	}

	// Staggered brownouts: co-prime periods so the windows drift over the
	// run and (rarely) overlap, like real background-task interference.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, period := range []time.Duration{900 * time.Millisecond, 1300 * time.Millisecond} {
		wg.Add(1)
		go func(st *brownoutStore, period, offset time.Duration) {
			defer wg.Done()
			t := time.NewTimer(offset)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					st.brownout(window)
					t.Reset(period)
				}
			}
		}(stores[i], period, time.Duration(i+1)*200*time.Millisecond)
	}

	rbuf := make([]byte, readSize)
	for i := 0; i < 3; i++ {
		if _, err := f.ReadAt(rbuf, 0); err != nil {
			log.Fatal(err)
		}
	}
	lats := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		t0 := time.Now()
		if _, err := f.ReadAt(rbuf, 0); err != nil {
			log.Fatal(err)
		}
		lats = append(lats, time.Since(t0))
		time.Sleep(gap)
	}
	close(stop)
	wg.Wait()

	reg := c.Pool().Metrics()
	launched := reg.Counter("pool.hedge.launched").Value()
	wins := reg.Counter("pool.hedge.wins").Value()
	dupBytes := reg.Counter("pool.hedge.bytes").Value()
	totalBytes := int64(samples+3) * readSize
	ph := stragglerPhase{
		Label:         label,
		P50Ms:         ms(pctl(lats, 0.50)),
		P99Ms:         ms(pctl(lats, 0.99)),
		HedgeLaunched: launched,
		HedgeWins:     wins,
		DupBytesPct:   100 * float64(dupBytes) / float64(totalBytes),
	}
	fmt.Printf("  %-10s p50 %7.2f ms   p99 %7.2f ms   hedges %d (wins %d)   dup bytes %.2f%%\n",
		label, ph.P50Ms, ph.P99Ms, launched, wins, ph.DupBytesPct)
	return ph
}

// runSelectionPhase shows the other half of straggler handling: with one
// replica persistently slow, per-chunk latency feedback must shift reads
// to the healthy node without any hedging.
func runSelectionPhase() float64 {
	const readSize = 256 << 10
	stores := []*brownoutStore{
		{Store: pfs.NewMemStore(), slow: 5 * time.Millisecond},
		{Store: pfs.NewMemStore(), slow: 5 * time.Millisecond},
	}
	cl := startQoSCluster([]pfs.Store{stores[0], stores[1]}, nil)
	defer cl.Close()
	c := cl.client(pfs.ClientConfig{Tenant: "victim"})
	f, err := c.CreateReplicated("strag/sel", 4<<20, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, readSize)
	if _, err := f.WriteAt(data, 0); err != nil {
		log.Fatal(err)
	}
	slowIdx := int(f.Layout().Servers[0]) // cripple whichever node is primary
	stores[slowIdx].slow = 5 * time.Millisecond
	stores[slowIdx].until.Store(time.Now().Add(time.Hour).UnixNano())

	const samples = 100
	rbuf := make([]byte, readSize)
	before := cl.datas[slowIdx].Metrics().Counter("data.read").Value()
	for i := 0; i < samples; i++ {
		if _, err := f.ReadAt(rbuf, 0); err != nil {
			log.Fatal(err)
		}
	}
	onSlow := cl.datas[slowIdx].Metrics().Counter("data.read").Value() - before
	frac := float64(onSlow) / float64(samples)
	fmt.Printf("  selection: %d/%d reads still hit the persistently slow primary (%.0f%%)\n",
		onSlow, samples, 100*frac)
	return frac
}

// stragglerExp runs the hedged-read A/B plus the replica-selection check.
func stragglerExp() {
	header("Straggler mitigation: replicated 1 MB reads under staggered disk brownouts")
	unhedged := runStragglerPhase("unhedged", 0)
	hedged := runStragglerPhase("hedged", 25*time.Millisecond)
	selSlowFrac := runSelectionPhase()

	cut := unhedged.P99Ms / hedged.P99Ms
	winRate := 0.0
	if hedged.HedgeLaunched > 0 {
		winRate = float64(hedged.HedgeWins) / float64(hedged.HedgeLaunched)
	}
	pass := cut >= 2 && hedged.DupBytesPct < 5
	fmt.Printf("\n  p99 cut %.1fx, hedge win rate %.0f%%, duplicate bytes %.2f%% (acceptance >=2x and <5%%: %v)\n",
		cut, 100*winRate, hedged.DupBytesPct, pass)

	mergeQoSReport("straggler", map[string]any{
		"phases":               []stragglerPhase{unhedged, hedged},
		"p99_cut":              cut,
		"hedge_win_rate":       winRate,
		"dup_bytes_pct":        hedged.DupBytesPct,
		"selection_slow_frac":  selSlowFrac,
		"pass_p99_2x_dup_5pct": pass,
	})
}
