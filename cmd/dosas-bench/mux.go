package main

// The mux experiment (PR 5): control-plane latency under data-plane load.
//
// The contention-aware scheduler depends on timely Probe/Cancel/Ping
// traffic while stripe transfers saturate the link. This experiment pins
// both planes to the same connection budget against one storage node
// behind a 64 MB/s shaped link serving a 32 MB windowed read, and
// measures the round-trip time of control messages issued mid-transfer:
//
//   - ordered: the pre-mux framing. The only way to share a connection
//     is pipelining, so each control message queues behind the window's
//     in-flight bulk chunks and drains strictly in order — textbook
//     head-of-line blocking (depth × chunk / rate ≈ 250 ms).
//   - mux: the negotiated multiplexed framing. Control frames ride the
//     priority lane, preempting bulk between ≤256 KiB segments, so the
//     RTT collapses to roughly one segment's worth of link time.
//
// A second, unshaped pass (250 µs one-way delay, the readpath regime)
// checks bulk throughput did not regress under mux framing.

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"time"

	"dosas/internal/pfs"
	"dosas/internal/transport"
	"dosas/internal/wire"
)

const (
	muxBenchHandle = 1
	muxBenchSizeMB = 32
	muxBenchChunk  = 4 << 20
	muxBenchDepth  = 4
	muxBenchRate   = 64e6 // bytes/second through the shaped link
)

// muxNode is one standalone data server plus a pool dialing it.
type muxNode struct {
	srv  *pfs.Server
	pool *pfs.Pool
	addr string
}

func startMuxNode(net transport.Network, ordered bool) *muxNode {
	store := pfs.NewMemStore()
	data := make([]byte, muxBenchSizeMB<<20)
	rand.New(rand.NewSource(5)).Read(data)
	if _, err := store.WriteAt(muxBenchHandle, data, 0); err != nil {
		log.Fatal(err)
	}
	ds, err := pfs.NewDataServer(pfs.DataConfig{Store: store})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("data-mux")
	if err != nil {
		log.Fatal(err)
	}
	srv := pfs.NewServer(l, ds)
	srv.SetMux(!ordered)
	srv.Start()
	pool := pfs.NewPool(net)
	if ordered {
		pool.DisableMux()
	}
	return &muxNode{srv: srv, pool: pool, addr: "data-mux"}
}

func (n *muxNode) close() {
	n.pool.Close()
	n.srv.Close()
}

type latencyStats struct {
	P50us   float64 `json:"p50_us"`
	P99us   float64 `json:"p99_us"`
	MaxUs   float64 `json:"max_us"`
	Samples int     `json:"samples"`
}

func summarize(rtts []time.Duration) latencyStats {
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(rtts)-1))
		return float64(rtts[i].Microseconds())
	}
	return latencyStats{
		P50us:   pct(0.50),
		P99us:   pct(0.99),
		MaxUs:   float64(rtts[len(rtts)-1].Microseconds()),
		Samples: len(rtts),
	}
}

// muxControlOrdered measures ping RTT on the pre-mux framing with bulk
// and control pipelined on one connection: every ping drains behind the
// window's in-flight chunks.
func muxControlOrdered(pings int) []time.Duration {
	node := startMuxNode(transport.NewShaped(transport.NewInproc(), muxBenchRate), true)
	defer node.close()

	s, err := node.pool.Stream(node.addr)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Release()

	type inflight struct {
		ping bool
		sent time.Time
	}
	var (
		queue []inflight
		rtts  []time.Duration
		off   uint64
		seq   uint64
		sends int
	)
	const total = uint64(muxBenchSizeMB << 20)
	for len(rtts) < pings {
		for len(queue) < muxBenchDepth {
			sends++
			if sends%(muxBenchDepth+1) == 0 {
				seq++
				if err := s.Send(&wire.Ping{Seq: seq}); err != nil {
					log.Fatal(err)
				}
				queue = append(queue, inflight{ping: true, sent: time.Now()})
				continue
			}
			req := &wire.ReadReq{Handle: muxBenchHandle, Offset: off, Length: muxBenchChunk}
			off = (off + muxBenchChunk) % total
			if err := s.Send(req); err != nil {
				log.Fatal(err)
			}
			queue = append(queue, inflight{})
		}
		head := queue[0]
		queue = queue[1:]
		if _, err := s.Recv(); err != nil {
			log.Fatal(err)
		}
		if head.ping {
			rtts = append(rtts, time.Since(head.sent))
		}
	}
	return rtts
}

// muxControlMuxed measures ping RTT over the multiplexed framing while a
// windowed read of the same file loops in the background on the same
// pool (and therefore the same shared connections).
func muxControlMuxed(pings int) []time.Duration {
	node := startMuxNode(transport.NewShaped(transport.NewInproc(), muxBenchRate), false)
	defer node.close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, muxBenchSizeMB<<20)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := node.pool.ReadWindowed(node.addr, muxBenchHandle, buf, 0, muxBenchDepth, muxBenchChunk); err != nil {
				log.Fatal(err)
			}
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the transfer saturate the link

	var rtts []time.Duration
	for seq := uint64(1); len(rtts) < pings; seq++ {
		start := time.Now()
		if _, err := node.pool.Call(node.addr, &wire.Ping{Seq: seq}); err != nil {
			log.Fatal(err)
		}
		rtts = append(rtts, time.Since(start))
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	<-done
	return rtts
}

// muxThroughput measures a 32 MB windowed read in the readpath regime
// (250 µs one-way delay, unshaped) and returns MB/s, best of runs.
func muxThroughput(ordered bool, runs int) float64 {
	node := startMuxNode(transport.NewDelayed(transport.NewInproc(), 250*time.Microsecond), ordered)
	defer node.close()

	buf := make([]byte, muxBenchSizeMB<<20)
	best := time.Duration(1<<62 - 1)
	for r := 0; r < runs; r++ {
		start := time.Now()
		if _, err := node.pool.ReadWindowed(node.addr, muxBenchHandle, buf, 0, muxBenchDepth, 256<<10); err != nil {
			log.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(muxBenchSizeMB<<20) / best.Seconds() / 1e6
}

// muxExp runs the control-latency-under-load comparison and the
// throughput no-regression check, writing BENCH_mux.json.
func muxExp() {
	header("Mux: control-message latency under a 32 MB windowed read (64 MB/s shaped link)")

	ordered := summarize(muxControlOrdered(16))
	muxed := summarize(muxControlMuxed(50))
	speedup := ordered.P99us / muxed.P99us

	fmt.Printf("%-10s %10s %10s %10s %9s\n", "mode", "p50", "p99", "max", "samples")
	fmt.Printf("%-10s %8.1fms %8.1fms %8.1fms %9d\n", "ordered",
		ordered.P50us/1e3, ordered.P99us/1e3, ordered.MaxUs/1e3, ordered.Samples)
	fmt.Printf("%-10s %8.1fms %8.1fms %8.1fms %9d\n", "mux",
		muxed.P50us/1e3, muxed.P99us/1e3, muxed.MaxUs/1e3, muxed.Samples)
	fmt.Printf("\np99 control latency: %.1fx lower under mux\n", speedup)

	const runs = 3
	tputOrdered := muxThroughput(true, runs)
	tputMux := muxThroughput(false, runs)
	ratio := tputMux / tputOrdered
	fmt.Printf("\nreadpath throughput, depth %d (250 µs link): ordered %.1f MB/s, mux %.1f MB/s (%.2fx)\n",
		muxBenchDepth, tputOrdered, tputMux, ratio)

	blob, err := json.MarshalIndent(map[string]any{
		"experiment":     "mux",
		"link_rate_mbps": muxBenchRate / 1e6,
		"bulk": map[string]any{
			"total_mb": muxBenchSizeMB, "chunk_bytes": muxBenchChunk, "depth": muxBenchDepth,
		},
		"control_latency": map[string]latencyStats{"ordered": ordered, "mux": muxed},
		"p99_speedup":     speedup,
		"throughput_mbps": map[string]float64{"ordered": tputOrdered, "mux": tputMux, "ratio": ratio},
	}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	const out = "BENCH_mux.json"
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote control-latency results to %s\n", out)
}
