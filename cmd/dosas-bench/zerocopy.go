package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"dosas"

	"dosas/internal/workload"
)

// readPathZeroCopy measures the serving-side cost of a 32 MB windowed
// read under the three transports the zero-copy work distinguishes:
//
//	sendbuf       disk store, -read-path copy: stripes staged through a
//	              pooled buffer, frame encoded contiguously (the pre-PR
//	              baseline; every byte crosses user space twice)
//	writev        in-memory store, zero-copy framing: the header and the
//	              pooled stripe buffer leave via one vectored write
//	              (one user-space copy, no contiguous staging)
//	sendfile      disk store, zero-copy framing, ordered transport: the
//	              kernel moves extent bytes straight to the socket
//	sendfile+mux  ditto through the mux framing's segmentation
//
// Alongside wall-clock throughput it reports the per-mode accounting the
// data plane keeps: data.bytes_copied + wire.copied_bytes (user-space
// copies of served payload), wire.sendfile_bytes, wire.writev_calls, and
// the Go heap allocated per read, which should stay flat in the
// zero-copy modes regardless of transfer size.
func readPathZeroCopy() {
	header("Read path: user-space copies per served byte (32 MB windowed reads, loopback TCP)")
	const sizeMB = 32
	const runs = 5

	type row struct {
		Mode          string  `json:"mode"`
		Seconds       float64 `json:"seconds"`
		MBps          float64 `json:"mbps"`
		CopiedBytes   int64   `json:"copied_bytes"`
		CopiedPerByte float64 `json:"copied_per_byte"`
		SendfileBytes int64   `json:"sendfile_bytes"`
		WritevCalls   int64   `json:"writev_calls"`
		AllocPerReadB int64   `json:"alloc_per_read_bytes"`
	}
	var rows []row

	copied := func(st dosas.StatsSnapshot) int64 {
		return st.Counter("data.bytes_copied") + st.Counter("wire.copied_bytes")
	}

	measure := func(mode string, opts dosas.Options) {
		cluster, err := dosas.StartCluster(opts)
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		fs, err := cluster.Connect(dosas.TS)
		if err != nil {
			log.Fatal(err)
		}
		defer fs.Close()
		f, err := fs.Create("bench/zerocopy", dosas.CreateOptions{Width: 1, StripeSize: 1 << 20})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.WriteAt(workload.RandomBytes(sizeMB<<20, 7), 0); err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, sizeMB<<20)
		// Warm page cache, fd cache, and connection pool off the clock.
		if _, err := f.ReadAt(buf, 0); err != nil {
			log.Fatal(err)
		}

		before := cluster.Stats()["data-0"]
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		best := time.Duration(1<<62 - 1)
		for r := 0; r < runs; r++ {
			t0 := time.Now()
			if _, err := f.ReadAt(buf, 0); err != nil {
				log.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		runtime.ReadMemStats(&ms1)
		after := cluster.Stats()["data-0"]

		served := int64(runs) * sizeMB << 20
		r := row{
			Mode:          mode,
			Seconds:       best.Seconds(),
			MBps:          float64(sizeMB<<20) / best.Seconds() / 1e6,
			CopiedBytes:   copied(after) - copied(before),
			SendfileBytes: after.Counter("wire.sendfile_bytes") - before.Counter("wire.sendfile_bytes"),
			WritevCalls:   after.Counter("wire.writev_calls") - before.Counter("wire.writev_calls"),
			AllocPerReadB: int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(runs),
		}
		r.CopiedPerByte = float64(r.CopiedBytes) / float64(served)
		rows = append(rows, r)
		fmt.Printf("%-14s %9.2f MB/s   copied/byte %5.2f   sendfile %6d MB   writev %5d   alloc/read %8d KB\n",
			mode, r.MBps, r.CopiedPerByte, r.SendfileBytes>>20, r.WritevCalls, r.AllocPerReadB>>10)
	}

	base := dosas.Options{
		DataServers:   1,
		Policy:        dosas.AlwaysBounce,
		TCP:           true,
		TelemetryTick: -1,
	}

	sendbuf := base
	sendbuf.DataDir = benchTempDir("sendbuf")
	defer os.RemoveAll(sendbuf.DataDir)
	sendbuf.PlainReadPath = true
	measure("sendbuf", sendbuf)

	writev := base
	writev.DisableMux = true // in-memory store: vectored writes need the ordered framing
	measure("writev", writev)

	sendfile := base
	sendfile.DataDir = benchTempDir("sendfile")
	defer os.RemoveAll(sendfile.DataDir)
	sendfile.DisableMux = true
	measure("sendfile", sendfile)

	sendfileMux := base
	sendfileMux.DataDir = benchTempDir("sendfile-mux")
	defer os.RemoveAll(sendfileMux.DataDir)
	measure("sendfile+mux", sendfileMux)

	blob, err := json.MarshalIndent(map[string]any{
		"experiment": "readpath-zerocopy",
		"size_mb":    sizeMB,
		"runs":       runs,
		"results":    rows,
	}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	const out = "BENCH_readpath_zerocopy.json"
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote copy-accounting matrix to %s\n", out)
	fmt.Println("(expect sendbuf ≈ 2 copies/byte, writev ≈ 1, sendfile ≈ 0 with the")
	fmt.Println(" served bytes showing up under sendfile_bytes instead)")
}

// benchTempDir makes a throwaway data directory for one bench cluster.
func benchTempDir(tag string) string {
	dir, err := os.MkdirTemp("", "dosas-bench-"+tag+"-")
	if err != nil {
		log.Fatal(err)
	}
	return dir
}
