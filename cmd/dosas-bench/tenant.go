package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"dosas"
	"dosas/internal/kernels"
	"dosas/internal/workload"
)

// noisyNeighbor is the tenant-attribution experiment: an aggressor
// tenant saturates one storage node's active queue while a victim
// tenant trickles small requests through the same node. The attribution
// plane must (a) pin the queue-wait on the aggressor, (b) fire the
// noisy-neighbor SLO rule naming it in the event log, and (c) cost
// effectively nothing — the closing A/B times the same bulk-read
// workload with the plane enabled and disabled.
func noisyNeighbor() {
	header("Noisy neighbor: per-tenant attribution under an aggressor storm")

	share, victimShare, alert, annotated := tenantStorm()
	fmt.Printf("\nqueue-wait attribution: aggressor=%.1f%% victim=%.1f%%", share*100, victimShare*100)
	verdict := "PASS"
	if share <= 0.9 {
		verdict = "FAIL"
	}
	fmt.Printf("  (>90%% on aggressor: %s)\n", verdict)
	fmt.Printf("noisy-neighbor rule:    fired=%v final=%s annotated=%v\n",
		alert.fired, alert.final, annotated)

	onSec, offSec := tenantOverhead()
	overheadPct := (onSec - offSec) / offSec * 100
	fmt.Printf("attribution overhead:   on=%.4fs off=%.4fs (%.2f%%; budget 1%%)\n",
		onSec, offSec, overheadPct)

	blob, err := json.MarshalIndent(map[string]any{
		"experiment":           "noisy-neighbor",
		"aggressor_wait_share": share,
		"victim_wait_share":    victimShare,
		"rule_fired":           alert.fired,
		"rule_final_state":     alert.final,
		"event_annotated":      annotated,
		"overhead_on_seconds":  onSec,
		"overhead_off_seconds": offSec,
		"overhead_pct":         overheadPct,
	}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	const out = "BENCH_tenant.json"
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote tenant attribution report to %s\n", out)
	fmt.Println("(expect the aggressor to own >90% of queue-wait, the noisy-neighbor")
	fmt.Println(" rule to fire naming it, and the attribution A/B to be in the noise)")
}

// alertOutcome is what the storm observed of the noisy-neighbor rule.
type alertOutcome struct {
	fired bool
	final string
}

// tenantStorm runs the contention phase and returns the aggressor's and
// victim's shares of accumulated queue-wait, the rule outcome, and
// whether any slo event named the aggressor tenant.
func tenantStorm() (share, victimShare float64, alert alertOutcome, annotated bool) {
	const stormDuration = 5 * time.Second
	const aggressors = 12
	const reqBytes = 2 << 20

	// Slow, paced kernels on an always-accept node make the active queue
	// the bottleneck, so queue-wait dominates and the wait-share probe
	// has something to attribute.
	kernels.SetRate("sum8", 20e6)
	defer kernels.ResetRates()
	cluster, err := dosas.StartCluster(dosas.Options{
		DataServers:   1,
		Policy:        dosas.AlwaysAccept,
		Pace:          true,
		TelemetryTick: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	agg, err := cluster.ConnectClient(dosas.ClientOptions{Scheme: dosas.DOSAS, Pace: true, Tenant: "aggressor"})
	if err != nil {
		log.Fatal(err)
	}
	defer agg.Close()
	vic, err := cluster.ConnectClient(dosas.ClientOptions{Scheme: dosas.DOSAS, Pace: true, Tenant: "victim"})
	if err != nil {
		log.Fatal(err)
	}
	defer vic.Close()

	f, err := agg.Create("tenant/hot", dosas.CreateOptions{Width: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteAt(workload.RandomBytes(aggressors*reqBytes, 5), 0); err != nil {
		log.Fatal(err)
	}
	vf, err := vic.Open("tenant/hot")
	if err != nil {
		log.Fatal(err)
	}

	end := time.Now().Add(stormDuration)
	var wg sync.WaitGroup
	for r := 0; r < aggressors; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for time.Now().Before(end) {
				f.ReadEx("sum8", nil, uint64(r*reqBytes), reqBytes) //nolint:errcheck
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(end) {
			vf.ReadEx("sum8", nil, 0, 256<<10) //nolint:errcheck
			time.Sleep(200 * time.Millisecond)
		}
	}()

	// Watch the rule while the storm runs: it should go pending then
	// firing once the wait-share burn sustains past its dwell.
	for time.Now().Before(end) {
		time.Sleep(250 * time.Millisecond)
		if s := ruleState(cluster, "noisy-neighbor"); s == string(dosas.AlertFiring) {
			alert.fired = true
		}
	}
	wg.Wait()

	reports := cluster.Tenants()
	merged := dosas.MergeTenantUsage(reports)
	var total, aggWait, vicWait uint64
	for _, u := range merged {
		total += u.QueueWaitNanos
		switch u.Tenant {
		case "aggressor":
			aggWait = u.QueueWaitNanos
		case "victim":
			vicWait = u.QueueWaitNanos
		}
	}
	if total > 0 {
		share = float64(aggWait) / float64(total)
		victimShare = float64(vicWait) / float64(total)
	}

	// With the storm gone the share probe reads 0, so the rule must let
	// go of the alert.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		alert.final = ruleState(cluster, "noisy-neighbor")
		if alert.final != string(dosas.AlertFiring) {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}

	for _, ev := range cluster.Events(dosas.EventWarn, 0) {
		line := dosas.FormatEvent(ev)
		if strings.Contains(line, "rule=noisy-neighbor") && strings.Contains(line, "tenant=aggressor") {
			annotated = true
			break
		}
	}
	return share, victimShare, alert, annotated
}

// ruleState returns one rule's most significant current state across
// the cluster (firing > pending > resolved > inactive), or "" when no
// node evaluates it. Every node registers the default rules, so nodes
// whose series never posts (the meta server has no tenant table) report
// a perpetual inactive that must not shadow a data node's firing.
func ruleState(cluster *dosas.Cluster, rule string) string {
	rank := map[dosas.AlertState]int{
		dosas.AlertFiring:   3,
		dosas.AlertPending:  2,
		dosas.AlertResolved: 1,
		dosas.AlertInactive: 0,
	}
	best, bestRank := "", -1
	for _, a := range cluster.Alerts() {
		if a.Rule != rule {
			continue
		}
		if r := rank[a.State]; r > bestRank {
			best, bestRank = string(a.State), r
		}
	}
	return best
}

// tenantOverhead times the same bulk-read workload on clusters with the
// attribution plane enabled and disabled (best of several runs each),
// returning the two times in seconds. Attribution is a handful of
// mutex-guarded counter bumps per request, so the difference should be
// measurement noise.
func tenantOverhead() (onSec, offSec float64) {
	const fileMB = 64
	const runs = 11
	measure := func(disable bool) float64 {
		cluster, err := dosas.StartCluster(dosas.Options{
			DataServers:    2,
			Policy:         dosas.AlwaysBounce,
			DisableTenants: disable,
			TelemetryTick:  -1,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		fs, err := cluster.ConnectClient(dosas.ClientOptions{Scheme: dosas.TS, Tenant: "bench"})
		if err != nil {
			log.Fatal(err)
		}
		defer fs.Close()
		f, err := fs.Create("tenant/bulk", dosas.CreateOptions{Width: 2})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.WriteAt(workload.RandomBytes(fileMB<<20, 9), 0); err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, fileMB<<20)
		if _, err := f.ReadAt(buf, 0); err != nil { // warm caches before timing
			log.Fatal(err)
		}
		best := time.Duration(1<<62 - 1)
		for r := 0; r < runs; r++ {
			start := time.Now()
			if _, err := f.ReadAt(buf, 0); err != nil {
				log.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best.Seconds()
	}
	offSec = measure(true)
	onSec = measure(false)
	return onSec, offSec
}
