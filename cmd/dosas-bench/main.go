// Command dosas-bench regenerates every table and figure of the DOSAS
// paper's evaluation (CLUSTER 2012, Section IV).
//
// Usage:
//
//	dosas-bench [-exp all] [-seed 2012] [-runs 10]
//
// Experiments (-exp):
//
//	table3    kernel processing rates (paper Table III)
//	fig2      Gaussian TS vs AS, 128 MB/req (Figures 2 and 4)
//	fig5      Gaussian TS vs AS, 512 MB/req
//	fig6      SUM TS vs AS, 128 MB/req
//	table4    scheduling-algorithm accuracy over all situations
//	fig7      DOSAS vs AS vs TS, 128 MB/req
//	fig8      DOSAS vs AS vs TS, 256 MB/req
//	fig9      DOSAS vs AS vs TS, 512 MB/req
//	fig10     DOSAS vs AS vs TS, 1 GB/req
//	fig11     achieved bandwidth, 256 MB/req
//	fig12     achieved bandwidth, 512 MB/req
//	solvers   ablation: exhaustive vs MaxGain scheduling
//	migrate   ablation: DOSAS with and without interrupt-and-migrate
//	mixed     ablation: heterogeneous request sizes and operations
//	skew      ablation: hot-spot load across a 4-node deployment
//	trace     trace-driven multi-application mixed stream
//	live      live-mode TS/AS/DOSAS on a real in-process cluster
//	ce-period live ablation: Contention Estimator responsiveness
//	readpath  pipelined read path, window vs serial (writes BENCH_pr2.json),
//	          then the zero-copy serving matrix (see readpath-zerocopy)
//	readpath-zerocopy
//	          user-space copies per served byte: sendbuf vs writev vs
//	          sendfile (writes BENCH_readpath_zerocopy.json)
//	whatif    counterfactual replay of a live decision log (writes BENCH_whatif.json)
//	mux       control-message latency under bulk load, mux vs ordered (writes BENCH_mux.json)
//	noisy-neighbor
//	          per-tenant attribution: an aggressor tenant storms one node
//	          while a victim trickles; checks the queue-wait attribution,
//	          the noisy-neighbor alert, and the plane's overhead
//	          (writes BENCH_tenant.json)
//	archive   durable telemetry archive: A/B overhead of archiving every
//	          sampler tick (budget <1%) and restart continuity of the
//	          queried series (writes BENCH_archive.json)
//	qos-isolation
//	          weighted-fair admission: a batch storm vs a victim tenant
//	          on one paced disk, gate on/off vs uncontended baseline
//	          (writes BENCH_qos.json)
//	straggler hedged reads and latency-aware replica selection under
//	          staggered disk brownouts (writes BENCH_qos.json)
//	all       everything simulated (excludes the live experiments)
//
// Simulated experiments run the calibrated discrete-event model at full
// paper scale; `live` runs real kernels over real bytes on a paced,
// link-shaped in-process cluster and reproduces the same orderings at
// laptop scale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"dosas"
	"dosas/internal/core"
	"dosas/internal/daemonflags"
	"dosas/internal/kernels"
	"dosas/internal/sim"
	"dosas/internal/workload"
)

// benchJSONOut is where the live experiment writes its per-scheme
// decision metrics ("" disables). Set from -json-out in main.
var benchJSONOut string

func main() {
	log.SetFlags(0)
	log.SetPrefix("dosas-bench: ")
	exp := flag.String("exp", "all", "experiment id (see -h)")
	seed := flag.Int64("seed", 2012, "base random seed")
	runs := flag.Int("runs", 10, "noisy repetitions for table4")
	jsonOut := flag.String("json-out", "BENCH_live.json",
		"file for the live experiment's per-scheme decision metrics (empty disables)")
	var common daemonflags.Common
	common.RegisterBase(flag.CommandLine)
	flag.Parse()
	benchJSONOut = *jsonOut
	if _, err := common.ServeDebug(nil); err != nil {
		log.Fatal(err)
	}

	all := map[string]func(){
		"table3": table3,
		"fig2": func() {
			executionFigure("Figure 2/4: 2-D Gaussian, TS vs AS, 128 MB/request", "gaussian2d", 128*sim.MB, tsas())
		},
		"fig4": func() {
			executionFigure("Figure 4: 2-D Gaussian, TS vs AS, 128 MB/request", "gaussian2d", 128*sim.MB, tsas())
		},
		"fig5": func() {
			executionFigure("Figure 5: 2-D Gaussian, TS vs AS, 512 MB/request", "gaussian2d", 512*sim.MB, tsas())
		},
		"fig6":   func() { executionFigure("Figure 6: SUM, TS vs AS, 128 MB/request", "sum8", 128*sim.MB, tsas()) },
		"table4": func() { table4(*seed, *runs) },
		"fig7": func() {
			executionFigure("Figure 7: DOSAS vs AS vs TS, 128 MB/request", "gaussian2d", 128*sim.MB, sim.PaperSchemes)
		},
		"fig8": func() {
			executionFigure("Figure 8: DOSAS vs AS vs TS, 256 MB/request", "gaussian2d", 256*sim.MB, sim.PaperSchemes)
		},
		"fig9": func() {
			executionFigure("Figure 9: DOSAS vs AS vs TS, 512 MB/request", "gaussian2d", 512*sim.MB, sim.PaperSchemes)
		},
		"fig10": func() {
			executionFigure("Figure 10: DOSAS vs AS vs TS, 1 GB/request", "gaussian2d", 1024*sim.MB, sim.PaperSchemes)
		},
		"fig11":             func() { bandwidthFigure("Figure 11: achieved bandwidth, 256 MB/request", 256*sim.MB) },
		"fig12":             func() { bandwidthFigure("Figure 12: achieved bandwidth, 512 MB/request", 512*sim.MB) },
		"solvers":           solvers,
		"migrate":           migrate,
		"mixed":             mixed,
		"skew":              skew,
		"trace":             trace,
		"live":              live,
		"ce-period":         cePeriod,
		"readpath":          readPath,
		"readpath-zerocopy": readPathZeroCopy,
		"whatif":            whatif,
		"mux":               muxExp,
		"noisy-neighbor":    noisyNeighbor,
		"archive":           archiveExp,
		"qos-isolation":     qosIsolation,
		"straggler":         stragglerExp,
	}
	order := []string{"table3", "fig2", "fig5", "fig6", "table4",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"solvers", "migrate", "mixed", "skew", "trace"}

	switch *exp {
	case "all":
		for _, id := range order {
			all[id]()
			fmt.Println()
		}
	default:
		fn, ok := all[*exp]
		if !ok {
			log.Printf("unknown experiment %q", *exp)
			fmt.Fprintf(os.Stderr, "known: %s all\n", strings.Join(order, " "))
			os.Exit(2)
		}
		fn()
	}
}

func tsas() []core.Scheme { return []core.Scheme{core.SchemeTS, core.SchemeAS} }

func header(title string) {
	fmt.Println(title)
	fmt.Println(strings.Repeat("-", len(title)))
}

// table3 regenerates Table III: computation complexity is fixed by the
// kernel implementations; the processing rate is measured live on this
// host and shown beside the paper's Discfarm measurement.
func table3() {
	header("Table III: benchmark kernels and processing rates")
	paper := map[string]float64{"sum8": 860e6, "gaussian2d": 80e6}
	fmt.Printf("%-12s %-58s %14s %14s\n", "kernel", "computation complexity", "this host", "paper")
	desc := map[string]string{
		"sum8":       "1 addition per data item",
		"gaussian2d": "9 multiplications, 9 additions, 1 division per pixel",
		"sum64":      "1 addition per float64",
		"minmax":     "2 comparisons per float64",
		"moments":    "2 additions, 1 multiplication per float64",
		"histogram":  "1 increment per byte",
		"count":      "substring scan per byte",
		"wordcount":  "1 classification per byte",
		"downsample": "1 addition per float64, 1 division per group",
	}
	for _, op := range []string{"sum8", "gaussian2d", "sum64", "minmax", "moments", "histogram", "count", "wordcount", "downsample"} {
		rate, err := kernels.Calibrate(op, 32<<20, false)
		if err != nil {
			log.Fatal(err)
		}
		paperCol := "-"
		if p, ok := paper[op]; ok {
			paperCol = fmt.Sprintf("%.0f MB/s", p/1e6)
		}
		fmt.Printf("%-12s %-58s %11.0f MB/s %14s\n", op, desc[op], rate/1e6, paperCol)
	}
}

// executionFigure prints one execution-time figure: seconds per scheme
// across the paper's request scales.
func executionFigure(title, op string, bytes uint64, schemes []core.Scheme) {
	header(title)
	pts, err := sim.Series(op, bytes, schemes, sim.Noise{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	printSeries(pts, func(p sim.Point) string { return fmt.Sprintf("%9.1fs", p.Seconds) })
}

// bandwidthFigure prints one achieved-bandwidth figure.
func bandwidthFigure(title string, bytes uint64) {
	header(title)
	pts, err := sim.Series("gaussian2d", bytes, sim.PaperSchemes, sim.Noise{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	printSeries(pts, func(p sim.Point) string { return fmt.Sprintf("%6.1fMB/s", p.Bandwidth/1e6) })
}

func printSeries(pts []sim.Point, cell func(sim.Point) string) {
	bySchemeN := map[core.Scheme]map[int]sim.Point{}
	var schemes []core.Scheme
	for _, p := range pts {
		if _, ok := bySchemeN[p.Scheme]; !ok {
			bySchemeN[p.Scheme] = map[int]sim.Point{}
			schemes = append(schemes, p.Scheme)
		}
		bySchemeN[p.Scheme][p.Requests] = p
	}
	fmt.Printf("%-22s", "I/Os per storage node")
	for _, n := range sim.PaperScales {
		fmt.Printf("%11d", n)
	}
	fmt.Println()
	for _, s := range schemes {
		fmt.Printf("%-22s", s.String())
		for _, n := range sim.PaperScales {
			fmt.Printf("%11s", cell(bySchemeN[s][n]))
		}
		fmt.Println()
	}
}

// table4 prints the scheduling-algorithm accuracy table, averaged over
// several noisy repetitions, plus one full run's misjudged rows.
func table4(seed int64, runs int) {
	header("Table IV: scheduling algorithm evaluation")
	var accSum float64
	var sample []sim.Situation
	for r := 0; r < runs; r++ {
		sits, err := sim.ScheduleAccuracy(seed + int64(r)*104729)
		if err != nil {
			log.Fatal(err)
		}
		accSum += sim.AccuracyRate(sits)
		if r == 0 {
			sample = sits
		}
	}
	fmt.Printf("%-4s %-12s %6s %9s %10s %10s %9s\n",
		"#", "benchmark", "IOs", "size", "algorithm", "practice", "judgment")
	shown := 0
	for _, s := range sample {
		// Show the boundary neighbourhood plus any misjudgment, like
		// the paper's excerpted table.
		boundary := s.Op == "gaussian2d" && s.Requests >= 2 && s.Requests <= 8
		if !boundary && s.Correct && shown > 18 {
			continue
		}
		verdict := "TRUE"
		if !s.Correct {
			verdict = "FALSE"
		}
		fmt.Printf("%-4d %-12s %6d %7dMB %10s %10s %9s\n",
			s.Index, s.Op, s.Requests, s.Bytes/sim.MB, s.Decision, s.Practice, verdict)
		shown++
	}
	fmt.Printf("\nsituations: %d; mean accuracy over %d noisy runs: %.1f%% (paper: 95%%)\n",
		len(sample), runs, accSum/float64(runs)*100)
}

// solvers compares the paper's exhaustive enumeration with MaxGain on
// decision quality and compute cost.
func solvers() {
	header("Ablation: exhaustive (paper Eq. 9-11) vs MaxGain scheduling")
	env := core.Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 80e6}
	fmt.Printf("%-6s %14s %14s %12s %12s\n", "k", "exhaustive", "maxgain", "t-exh", "t-mg")
	for _, k := range []int{4, 8, 12, 16, 20} {
		reqs := make([]core.Request, k)
		for i := range reqs {
			reqs[i] = core.Request{ID: uint64(i + 1), Bytes: uint64(64+i*37%512) * sim.MB, ResultBytes: 29}
		}
		t0 := time.Now()
		exh := core.Exhaustive{}.Solve(reqs, env)
		tExh := time.Since(t0)
		t0 = time.Now()
		mg := core.MaxGain{}.Solve(reqs, env)
		tMg := time.Since(t0)
		fmt.Printf("%-6d %13.3fs %13.3fs %12s %12s\n",
			k, env.TotalTime(reqs, exh), env.TotalTime(reqs, mg), tExh, tMg)
	}
	fmt.Println("\n(objective values must match; MaxGain time stays flat while 2^k explodes)")
}

// migrate runs the interrupt-and-migrate ablation across scales.
func migrate() {
	header("Ablation: DOSAS with vs without interrupt-and-migrate (Gaussian, 128 MB)")
	fmt.Printf("%-22s", "I/Os per storage node")
	for _, n := range sim.PaperScales {
		fmt.Printf("%11d", n)
	}
	fmt.Println()
	for _, mig := range []bool{true, false} {
		mig := mig
		label := "DOSAS (migrate)"
		if !mig {
			label = "DOSAS (no migrate)"
		}
		fmt.Printf("%-22s", label)
		for _, n := range sim.PaperScales {
			m, err := sim.Run(sim.Config{
				Scheme: core.SchemeDOSAS, Requests: n,
				BytesPerRequest: 128 * sim.MB, Op: "gaussian2d", Migration: &mig,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10.1fs", m.Makespan)
		}
		fmt.Println()
	}
}

// mixed shows the solver finding genuinely mixed schedules on
// heterogeneous queues, against both static baselines.
func mixed() {
	header("Ablation: heterogeneous queue (mixed sizes and operations)")
	env := core.Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 80e6}
	// Two fast SUM requests (whose kernels outrun the network — bouncing
	// never pays) queued behind six large Gaussian requests whose summed
	// bounce gains exceed the parallel compute tail z.
	reqs := []core.Request{
		{ID: 1, Bytes: 128 * sim.MB, ResultBytes: 8, StorageRate: 860e6, ComputeRate: 860e6},
		{ID: 2, Bytes: 128 * sim.MB, ResultBytes: 8, StorageRate: 860e6, ComputeRate: 860e6},
		{ID: 3, Bytes: 1024 * sim.MB, ResultBytes: 29},
		{ID: 4, Bytes: 1024 * sim.MB, ResultBytes: 29},
		{ID: 5, Bytes: 1024 * sim.MB, ResultBytes: 29},
		{ID: 6, Bytes: 1024 * sim.MB, ResultBytes: 29},
		{ID: 7, Bytes: 1024 * sim.MB, ResultBytes: 29},
		{ID: 8, Bytes: 1024 * sim.MB, ResultBytes: 29},
	}
	a := core.MaxGain{}.Solve(reqs, env)
	fmt.Printf("%-4s %10s %14s %10s\n", "req", "size", "op-rate", "placement")
	for i, r := range reqs {
		rate := r.StorageRate
		if rate == 0 {
			rate = env.StorageRate
		}
		place := "bounce"
		if a[i] {
			place = "active"
		}
		fmt.Printf("%-4d %7dMB %11.0fMB/s %10s\n", r.ID, r.Bytes/sim.MB, rate/1e6, place)
	}
	fmt.Printf("\nschedule: %.1fs   all-active: %.1fs   all-normal: %.1fs\n",
		env.TotalTime(reqs, a), env.TimeAllActive(reqs), env.TimeAllNormal(reqs))
}

// skew sweeps hot-spot placement over a 4-node deployment: as more of the
// load lands on node 0, AS collapses on the hot node while DOSAS bounces
// its overflow.
func skew() {
	header("Ablation: load skew across 4 storage nodes (Gaussian, 32 × 128 MB)")
	skews := []float64{0, 0.25, 0.5, 0.75, 0.9}
	fmt.Printf("%-8s", "scheme")
	for _, s := range skews {
		fmt.Printf("%12s", fmt.Sprintf("skew=%.2f", s))
	}
	fmt.Println()
	for _, scheme := range sim.PaperSchemes {
		fmt.Printf("%-8s", scheme)
		for _, s := range skews {
			m, err := sim.Run(sim.Config{
				Scheme: scheme, Requests: 32, BytesPerRequest: 128 * sim.MB,
				Op: "gaussian2d", StorageNodes: 4, Skew: s, Seed: 11,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%11.1fs", m.Makespan)
		}
		fmt.Println()
	}
}

// trace plays a multi-application mixed stream (the paper's Figure 1
// scenario: several applications' normal and active I/O converging on one
// storage node) through the trace-driven simulator under each scheme.
func trace() {
	header("Trace-driven: 4 applications, mixed normal/active I/O, one storage node")
	reqs := workload.Stream(workload.StreamConfig{
		Apps:             4,
		RequestsPerApp:   16,
		ActiveFraction:   0.7,
		Ops:              []string{"gaussian2d", "sum8", "histogram"},
		MeanInterarrival: 0.5,
		MinBytes:         32 * sim.MB,
		MaxBytes:         512 * sim.MB,
		Seed:             42,
	})
	var active, normal int
	var totalBytes uint64
	for _, r := range reqs {
		if r.Active {
			active++
		} else {
			normal++
		}
		totalBytes += r.Bytes
	}
	fmt.Printf("stream: %d requests (%d active, %d normal), %.1f GB total\n\n",
		len(reqs), active, normal, float64(totalBytes)/(1<<30))
	fmt.Printf("%-8s %10s %12s %14s %14s %12s\n",
		"scheme", "makespan", "mean lat", "normal lat", "bytes moved", "accepted")
	for _, scheme := range sim.PaperSchemes {
		m, err := sim.RunStream(sim.StreamConfig{Scheme: scheme, Seed: 42, Noise: sim.DiscfarmNoise()}, reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %9.1fs %11.1fs %13.1fs %11.2fGB %9d/%d\n",
			scheme, m.Makespan, m.MeanLatency, m.MeanNormalLatency,
			float64(m.RawBytesMoved)/(1<<30), m.Accepted, active)
	}
}

// cePeriod is the live Contention Estimator staleness ablation: a kernel
// is running when a normal-I/O storm hits its storage node. A responsive
// CE (short period) interrupts and migrates the kernel quickly; a stale
// one leaves it crawling on the contended node.
func cePeriod() {
	header("Ablation: Contention Estimator period (live; kernel under a normal-I/O storm)")
	kernels.SetRate("sum8", 10e6)
	defer kernels.ResetRates()
	fmt.Printf("%-12s %16s %14s\n", "CE period", "active req time", "migrated")
	for _, period := range []time.Duration{5 * time.Millisecond, 50 * time.Millisecond,
		500 * time.Millisecond, 10 * time.Second} {
		elapsed, migrated, err := cePeriodRun(period)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %15.2fs %14v\n", period, elapsed.Seconds(), migrated)
	}
	fmt.Println("\n(a responsive CE rescues the kernel; a stale one strands it on the hot node)")
}

func cePeriodRun(period time.Duration) (time.Duration, bool, error) {
	const activeBytes = 8 << 20
	const stormReaders = 12
	const stormDuration = 4 * time.Second
	cluster, err := dosas.StartCluster(dosas.Options{
		DataServers:     1,
		Policy:          dosas.Dynamic,
		LinkRate:        100e6,
		Pace:            true,
		EstimatorPeriod: period,
	})
	if err != nil {
		return 0, false, err
	}
	defer cluster.Close()
	fs, err := cluster.ConnectPaced(dosas.DOSAS)
	if err != nil {
		return 0, false, err
	}
	defer fs.Close()
	f, err := fs.Create("ce/data", dosas.CreateOptions{Width: 1})
	if err != nil {
		return 0, false, err
	}
	total := activeBytes * (stormReaders + 1)
	if _, err := f.WriteAt(workload.RandomBytes(total, 3), 0); err != nil {
		return 0, false, err
	}

	// Launch the active request, give it a head start, then sustain a
	// normal-I/O storm for longer than the request could possibly take.
	type out struct {
		res *dosas.Result
		err error
	}
	done := make(chan out, 1)
	start := time.Now()
	go func() {
		res, err := f.ReadEx("sum8", nil, 0, activeBytes)
		done <- out{res, err}
	}()
	time.Sleep(50 * time.Millisecond)
	stormEnd := time.Now().Add(stormDuration)
	var storm sync.WaitGroup
	for r := 0; r < stormReaders; r++ {
		storm.Add(1)
		go func(r int) {
			defer storm.Done()
			buf := make([]byte, 2<<20)
			for time.Now().Before(stormEnd) {
				f.ReadAt(buf, uint64((r+1)*activeBytes)) //nolint:errcheck
			}
		}(r)
	}
	o := <-done
	elapsed := time.Since(start)
	storm.Wait()
	if o.err != nil {
		return 0, false, o.err
	}
	migrated := len(o.res.Parts) > 0 && o.res.Parts[0].Where == dosas.Migrated
	return elapsed, migrated, nil
}

// live reproduces the scheme ordering with real bytes and real kernels on
// an in-process cluster: kernels paced to 20 MB/s against a 30 MB/s
// shaped link put the TS/AS crossover at n = 3.
func live() {
	header("Live mode: real cluster, paced kernels (20 MB/s) vs shaped link (30 MB/s)")
	const d = 4 << 20
	scales := []int{1, 2, 4, 8}
	kernels.SetRate("sum8", 20e6)
	defer kernels.ResetRates()

	// liveEntry is one (scheme, scale) cell with the storage nodes'
	// scheduling-decision metrics for that run.
	type liveEntry struct {
		Requests  int                   `json:"requests"`
		Seconds   float64               `json:"seconds"`
		Decisions dosas.DecisionMetrics `json:"decisions"`
	}
	report := make(map[string][]liveEntry)

	fmt.Printf("%-8s", "scheme")
	for _, n := range scales {
		fmt.Printf("%10s", fmt.Sprintf("n=%d", n))
	}
	fmt.Println()
	for _, scheme := range []dosas.Scheme{dosas.TS, dosas.AS, dosas.DOSAS} {
		fmt.Printf("%-8s", scheme)
		for _, n := range scales {
			elapsed, dm, err := liveRun(scheme, n, d)
			if err != nil {
				log.Fatal(err)
			}
			report[scheme.String()] = append(report[scheme.String()], liveEntry{
				Requests: n, Seconds: elapsed.Seconds(), Decisions: dm,
			})
			fmt.Printf("%9.2fs", elapsed.Seconds())
		}
		fmt.Println()
	}
	fmt.Println("\nper-scheme scheduling decisions (all scales):")
	for _, scheme := range []dosas.Scheme{dosas.TS, dosas.AS, dosas.DOSAS} {
		var agg dosas.DecisionMetrics
		var errSum float64
		for _, e := range report[scheme.String()] {
			agg.Arrivals += e.Decisions.Arrivals
			agg.Completed += e.Decisions.Completed
			agg.Bounced += e.Decisions.Bounced
			agg.Interrupted += e.Decisions.Interrupted
			agg.Migrated += e.Decisions.Migrated
			agg.EstimatorSamples += e.Decisions.EstimatorSamples
			errSum += e.Decisions.EstimatorErrPct * float64(e.Decisions.EstimatorSamples)
		}
		if agg.Arrivals > 0 {
			agg.BounceRate = float64(agg.Bounced) / float64(agg.Arrivals)
			agg.InterruptRate = float64(agg.Interrupted) / float64(agg.Arrivals)
		}
		if agg.EstimatorSamples > 0 {
			agg.EstimatorErrPct = errSum / float64(agg.EstimatorSamples)
		}
		fmt.Printf("  %-8s arrivals=%d bounce=%.0f%% interrupt=%.0f%% migrated=%d estimator-err=%.0f%% (%d samples)\n",
			scheme, agg.Arrivals, agg.BounceRate*100, agg.InterruptRate*100,
			agg.Migrated, agg.EstimatorErrPct, agg.EstimatorSamples)
	}
	if benchJSONOut != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(benchJSONOut, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote per-scheme decision metrics to %s\n", benchJSONOut)
	}
	fmt.Println("\n(expect AS to win for n<3 and TS beyond; DOSAS tracks the winner)")
}

func liveRun(scheme dosas.Scheme, n, reqBytes int) (time.Duration, dosas.DecisionMetrics, error) {
	policy := dosas.Dynamic
	switch scheme {
	case dosas.AS:
		policy = dosas.AlwaysAccept
	case dosas.TS:
		policy = dosas.AlwaysBounce
	}
	cluster, err := dosas.StartCluster(dosas.Options{
		DataServers: 1,
		Policy:      policy,
		LinkRate:    30e6,
		Pace:        true,
	})
	if err != nil {
		return 0, dosas.DecisionMetrics{}, err
	}
	defer cluster.Close()
	fs, err := cluster.ConnectPaced(scheme)
	if err != nil {
		return 0, dosas.DecisionMetrics{}, err
	}
	defer fs.Close()
	f, err := fs.Create("live/data", dosas.CreateOptions{Width: 1})
	if err != nil {
		return 0, dosas.DecisionMetrics{}, err
	}
	if _, err := f.WriteAt(workload.RandomBytes(n*reqBytes, 7), 0); err != nil {
		return 0, dosas.DecisionMetrics{}, err
	}
	start := time.Now()
	done := make(chan error, n)
	for r := 0; r < n; r++ {
		go func(r int) {
			_, err := f.ReadEx("sum8", nil, uint64(r*reqBytes), uint64(reqBytes))
			done <- err
		}(r)
	}
	for r := 0; r < n; r++ {
		if err := <-done; err != nil {
			return 0, dosas.DecisionMetrics{}, err
		}
	}
	return time.Since(start), cluster.DecisionMetrics(), nil
}

// whatif records a live contention run under the Exhaustive solver and
// then replays the resulting decision log under every replay policy,
// scoring each counterfactual against the recorded measured costs. The
// "recorded" and "exhaustive" rows should agree with the log exactly
// (zero regret beyond the oracle's); the static policies show what
// always-accept and always-bounce would have cost on the same arrivals.
func whatif() {
	header("What-if: counterfactual replay of a live Exhaustive-solver decision log")
	const d = 4 << 20
	scales := []int{1, 2, 4, 8}
	kernels.SetRate("sum8", 20e6)
	defer kernels.ResetRates()

	cluster, err := dosas.StartCluster(dosas.Options{
		DataServers: 1,
		Policy:      dosas.Dynamic,
		Solver:      "exhaustive",
		LinkRate:    30e6,
		Pace:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.ConnectPaced(dosas.DOSAS)
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()
	f, err := fs.Create("whatif/data", dosas.CreateOptions{Width: 1})
	if err != nil {
		log.Fatal(err)
	}
	maxN := scales[len(scales)-1]
	if _, err := f.WriteAt(workload.RandomBytes(maxN*d, 7), 0); err != nil {
		log.Fatal(err)
	}
	// The live experiment's contention sweep: lone requests favour the
	// storage node, deep batches favour bouncing, so the log holds both
	// kinds of decision for the replays to disagree over.
	for _, n := range scales {
		done := make(chan error, n)
		for r := 0; r < n; r++ {
			go func(r int) {
				_, err := f.ReadEx("sum8", nil, uint64(r*d), uint64(d))
				done <- err
			}(r)
		}
		for r := 0; r < n; r++ {
			if err := <-done; err != nil {
				log.Fatal(err)
			}
		}
	}

	records := cluster.DecisionLogAll()
	if len(records) == 0 {
		log.Fatal("whatif: the run recorded no decisions")
	}
	fmt.Printf("recorded %d solver invocations on %d arrival(s) sweep %v\n\n",
		len(records), sumInts(scales), scales)

	var reports []dosas.ReplayReport
	fmt.Printf("%-12s %10s %8s %8s %10s %10s %10s\n",
		"policy", "decisions", "bounce", "agree", "total", "oracle", "regret")
	for _, policy := range dosas.ReplayPolicies() {
		rep, err := dosas.ReplayDecisions(records, policy, dosas.ReplayOverrides{})
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, rep)
		fmt.Printf("%-12s %10d %7.0f%% %7.0f%% %9.2fs %9.2fs %9.2fs\n",
			rep.Policy, rep.Decisions, rep.BounceRate*100, rep.AgreementRate*100,
			rep.TotalSeconds, rep.OracleSeconds, rep.RegretSeconds)
	}
	// One perturbed environment alongside the policy sweep: the recorded
	// choices replayed over a 10× faster network, where bouncing is
	// nearly free and always-bounce should close on the oracle.
	fast := dosas.ReplayOverrides{BW: 10 * 118e6}
	for _, policy := range []string{"recorded", "all-normal"} {
		rep, err := dosas.ReplayDecisions(records, policy, fast)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, rep)
		fmt.Printf("%-12s %10d %7.0f%% %7.0f%% %9.2fs %9.2fs %9.2fs  (bw ×10)\n",
			rep.Policy, rep.Decisions, rep.BounceRate*100, rep.AgreementRate*100,
			rep.TotalSeconds, rep.OracleSeconds, rep.RegretSeconds)
	}

	blob, err := dosas.EncodeReplayReports(reports)
	if err != nil {
		log.Fatal(err)
	}
	const out = "BENCH_whatif.json"
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d counterfactual reports to %s\n", len(reports), out)
	fmt.Println("(expect recorded ≡ exhaustive with zero mutual disagreement, and the")
	fmt.Println(" static policies to pay regret on whichever side the sweep stressed)")
}

func sumInts(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// readPath measures the sliding-window data path (PR 2) against the
// serial chunk-at-a-time loop it replaced, on a latency-shaped in-process
// cluster (250 µs one way — a datacenter-fabric hop). One row per
// (range size, stripe width); the window column should approach
// depth × serial on narrow stripes and stay ahead everywhere.
func readPath() {
	header("Read path: pipelined window vs serial transfers (250 µs one-way link delay)")
	const delay = 250 * time.Microsecond
	const chunk = 256 << 10 // latency-bound regime: many small round trips
	const maxMB = 256
	const runs = 3
	sizesMB := []int{1, 4, 16, 64, 256}
	widths := []int{1, 2, 4, 8}

	type cell struct {
		SizeMB  int     `json:"size_mb"`
		Width   int     `json:"width"`
		Depth   int     `json:"depth"`
		Seconds float64 `json:"seconds"`
		MBps    float64 `json:"mbps"`
	}
	var cells []cell

	measure := func(width, depth int) map[int]float64 {
		cluster, err := dosas.StartCluster(dosas.Options{
			DataServers:   width,
			Policy:        dosas.AlwaysBounce,
			LinkDelay:     delay,
			WindowDepth:   depth,
			TransferChunk: chunk,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		fs, err := cluster.Connect(dosas.TS)
		if err != nil {
			log.Fatal(err)
		}
		defer fs.Close()
		f, err := fs.Create("bench/readpath", dosas.CreateOptions{Width: width, StripeSize: 1 << 20})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.WriteAt(workload.RandomBytes(maxMB<<20, 2), 0); err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, maxMB<<20)
		out := make(map[int]float64, len(sizesMB))
		for _, mb := range sizesMB {
			best := time.Duration(1<<62 - 1)
			for r := 0; r < runs; r++ {
				start := time.Now()
				if _, err := f.ReadAt(buf[:mb<<20], 0); err != nil {
					log.Fatal(err)
				}
				if d := time.Since(start); d < best {
					best = d
				}
			}
			out[mb] = best.Seconds()
			cells = append(cells, cell{
				SizeMB: mb, Width: width, Depth: depth,
				Seconds: best.Seconds(),
				MBps:    float64(mb<<20) / best.Seconds() / 1e6,
			})
		}
		return out
	}

	fmt.Printf("%-10s %-7s %12s %12s %9s\n", "range", "width", "serial", "window", "speedup")
	for _, width := range widths {
		serial := measure(width, 1)
		window := measure(width, 0) // 0 = pfs.DefaultWindowDepth
		for _, mb := range sizesMB {
			fmt.Printf("%7dMB %-7d %11.4fs %11.4fs %8.2fx\n",
				mb, width, serial[mb], window[mb], serial[mb]/window[mb])
		}
	}

	blob, err := json.MarshalIndent(map[string]any{
		"experiment":   "readpath",
		"one_way_us":   delay.Microseconds(),
		"chunk_bytes":  chunk,
		"runs_per_pt":  runs,
		"serial_depth": 1,
		"results":      cells,
	}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	const out = "BENCH_pr2.json"
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote window-vs-serial matrix to %s\n", out)

	// The companion measurement: with the pipelining settled, how many
	// user-space copies does each served byte still pay?
	fmt.Println()
	readPathZeroCopy()
}
