// Command dosas-server runs one DOSAS storage node: the pfs data service
// plus the Active I/O Runtime with its Contention Estimator.
//
// Usage:
//
//	dosas-server -addr :7710 [-store /var/dosas/objs] [-policy dosas|as|ts]
//	             [-bw 118e6] [-cores 2] [-reserved 1] [-pace] [-node data-0]
//
// With -store empty, stripes live in memory. The -policy flag selects the
// scheduling behaviour: "dosas" (dynamic), "as" (always run kernels here),
// or "ts" (always bounce). -pace throttles kernels to their calibrated
// rates, useful when emulating the paper's testbed on faster hardware.
//
// -pprof-addr opens the loopback debug endpoint, which also serves the
// node's OpenMetrics exposition at /metrics. -slo-rules overrides the
// built-in alert rules; dosasctl alerts and events read the results.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"dosas/internal/audit"
	"dosas/internal/core"
	"dosas/internal/daemonflags"
	"dosas/internal/metrics"
	"dosas/internal/openmetrics"
	"dosas/internal/pfs"
	"dosas/internal/slo"
	"dosas/internal/tenant"
	"dosas/internal/trace"
	"dosas/internal/transport"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("dosas-server: ")

	addr := flag.String("addr", ":7710", "TCP listen address")
	storeDir := flag.String("store", "", "stripe store directory (empty = in-memory)")
	backend := flag.String("store-backend", "extent", "on-disk store format: extent or file (v0 one-file-per-handle)")
	fsync := flag.Bool("fsync", false, "fsync the store after every write and truncate (default off: page cache absorbs bursts)")
	fdCache := flag.Int("fd-cache", pfs.DefaultFDCacheSize, "max open descriptors cached by the store")
	readPath := flag.String("read-path", "zerocopy", "bulk read serving path: zerocopy (sendfile/writev) or copy (staged through pooled buffers)")
	policy := flag.String("policy", "dosas", "scheduling policy: dosas, as, or ts")
	solverName := flag.String("solver", "", "dynamic-mode scheduling algorithm: exhaustive, maxgain (default), all-active, all-normal")
	bw := flag.Float64("bw", 118e6, "network bandwidth the estimator assumes, bytes/second")
	cores := flag.Int("cores", 2, "storage node core count")
	reserved := flag.Int("reserved", 1, "cores reserved for normal I/O service")
	pace := flag.Bool("pace", false, "pace kernels at calibrated per-core rates")
	node := flag.String("node", "", "node name stamped on stats and trace exports (default data@ADDR)")
	tenantLimit := flag.Int("tenant-limit", tenant.DefaultLimit, "max tenants tracked for resource attribution; 0 disables the tenant plane")
	var common daemonflags.Common
	common.RegisterBase(flag.CommandLine)
	common.RegisterTelemetry(flag.CommandLine)
	common.RegisterObservability(flag.CommandLine)
	common.RegisterQoS(flag.CommandLine)
	flag.Parse()

	weights, err := common.TenantWeights()
	if err != nil {
		log.Fatal(err)
	}
	var qos *pfs.QoSConfig
	if !common.NoQoS {
		qos = &pfs.QoSConfig{Slots: common.QoSSlots, Weights: weights}
	}

	if *node == "" {
		*node = "data@" + *addr
	}

	var mode core.Mode
	switch *policy {
	case "dosas":
		mode = core.ModeDynamic
	case "as":
		mode = core.ModeAlwaysAccept
	case "ts":
		mode = core.ModeAlwaysBounce
	default:
		log.Fatalf("unknown -policy %q (want dosas, as, or ts)", *policy)
	}
	var solver core.Solver
	if *solverName != "" {
		s, err := core.SolverByName(*solverName)
		if err != nil {
			log.Fatal(err)
		}
		solver = s
	}

	var store pfs.Store
	switch {
	case *storeDir == "":
		store = pfs.NewMemStore()
	case *backend == "extent":
		es, err := pfs.NewExtentStore(pfs.ExtentConfig{Dir: *storeDir, Sync: *fsync, FDCacheSize: *fdCache})
		if err != nil {
			log.Fatal(err)
		}
		store = es
	case *backend == "file":
		fs, err := pfs.NewFileStoreConfig(pfs.FileStoreConfig{Dir: *storeDir, Sync: *fsync, FDCacheSize: *fdCache})
		if err != nil {
			log.Fatal(err)
		}
		store = fs
	default:
		log.Fatalf("unknown -store-backend %q (want extent or file)", *backend)
	}
	defer store.Close()

	reg := metrics.NewRegistry()
	tr := trace.NewRecorder(4096)
	tr.SetNode(*node)
	tele := common.Sampler()
	alog := audit.NewLog(4096)
	alog.SetNode(*node)

	// The event log tees to stderr so the daemon console keeps its
	// running commentary while dosasctl events reads the same ring over
	// the wire.
	events, err := common.EventLog(*node, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	defer events.Close()

	// The durable telemetry archive persists every sampler tick; it is
	// deferred before the runtime so it closes after the sampler stops,
	// sealing the final downsample buckets.
	archive, err := common.Archive(*node, tele, events)
	if err != nil {
		log.Fatal(err)
	}
	defer archive.Close()

	// The tenant table feeds per-tenant accounting in the data service
	// and runtime, the dosas_tenant metric families, and the
	// noisy-neighbor alert annotation.
	var tenants *tenant.Table
	if *tenantLimit > 0 {
		tenants = tenant.NewTable(*tenantLimit)
	}

	var engine *slo.Engine
	if tele != nil {
		rules, err := common.Rules()
		if err != nil {
			log.Fatal(err)
		}
		engCfg := slo.Config{
			Rules: rules, Sampler: tele, Events: events, Metrics: reg, Node: *node,
		}
		if tenants != nil {
			engCfg.Annotate = func(rule string) []string {
				if rule != "noisy-neighbor" {
					return nil
				}
				top, share := tenants.TopWait()
				if top == "" {
					return nil
				}
				return []string{"tenant", top, "share", fmt.Sprintf("%.2f", share)}
			}
		}
		engine, err = slo.NewEngine(engCfg)
		if err != nil {
			log.Fatal(err)
		}
		tele.OnTick(engine.Eval)
	}

	if addr, err := common.ServeDebug(func() []openmetrics.Source {
		return []openmetrics.Source{{
			Node: *node, Role: "data",
			Metrics: reg, Telemetry: tele, SLO: engine, Events: events, Tenants: tenants,
		}}
	}); err != nil {
		log.Fatal(err)
	} else if addr != "" {
		events.Info("server", "debug endpoint up", "url", "http://"+addr+"/debug/pprof/", "metrics", "http://"+addr+"/metrics")
	}

	ds, err := pfs.NewDataServer(pfs.DataConfig{
		Store: store, Metrics: reg, Node: *node, Trace: tr,
		Telemetry: tele, Audit: alog, Events: events, SLO: engine, Tenants: tenants,
		Archive: archive, QoS: qos,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()
	rt, err := core.NewRuntime(core.RuntimeConfig{
		Store:  store,
		Mode:   mode,
		Solver: solver,
		Audit:  alog,
		Estimator: core.EstimatorConfig{
			BW:              *bw,
			TotalCores:      *cores,
			IOReservedCores: *reserved,
		},
		Pace:          *pace,
		Metrics:       reg,
		Trace:         tr,
		Node:          *node,
		Telemetry:     tele,
		Events:        events,
		Tenants:       tenants,
		TenantWeights: weights,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	ds.SetActiveHandler(rt)

	l, err := transport.TCP{}.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := pfs.NewServer(l, ds)
	srv.SetMux(!common.NoMux)
	srv.SetFrameStats(ds.WireStats())
	switch *readPath {
	case "zerocopy":
	case "copy":
		ds.SetZeroCopy(false)
		srv.SetPlainWrites(true)
	default:
		log.Fatalf("unknown -read-path %q (want zerocopy or copy)", *readPath)
	}
	events.Info("server", "serving stripes",
		"addr", srv.Addr(), "policy", mode.String(),
		"cores", fmt.Sprint(*cores), "reserved", fmt.Sprint(*reserved),
		"bw_mbps", fmt.Sprintf("%.0f", *bw/1e6), "pace", fmt.Sprint(*pace), "store", *storeDir)

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr)
		events.Info("server", "shutting down")
		log.Printf("final metrics:\n%s", reg.Dump())
		srv.Close()
	}()
	if err := srv.Run(); err != transport.ErrClosed {
		log.Fatal(err)
	}
}
