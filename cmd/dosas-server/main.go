// Command dosas-server runs one DOSAS storage node: the pfs data service
// plus the Active I/O Runtime with its Contention Estimator.
//
// Usage:
//
//	dosas-server -addr :7710 [-store /var/dosas/objs] [-policy dosas|as|ts]
//	             [-bw 118e6] [-cores 2] [-reserved 1] [-pace] [-node data-0]
//
// With -store empty, stripes live in memory. The -policy flag selects the
// scheduling behaviour: "dosas" (dynamic), "as" (always run kernels here),
// or "ts" (always bounce). -pace throttles kernels to their calibrated
// rates, useful when emulating the paper's testbed on faster hardware.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"dosas/internal/audit"
	"dosas/internal/core"
	"dosas/internal/metrics"
	"dosas/internal/pfs"
	"dosas/internal/pprofserve"
	"dosas/internal/telemetry"
	"dosas/internal/trace"
	"dosas/internal/transport"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("dosas-server: ")

	addr := flag.String("addr", ":7710", "TCP listen address")
	storeDir := flag.String("store", "", "stripe store directory (empty = in-memory)")
	policy := flag.String("policy", "dosas", "scheduling policy: dosas, as, or ts")
	solverName := flag.String("solver", "", "dynamic-mode scheduling algorithm: exhaustive, maxgain (default), all-active, all-normal")
	bw := flag.Float64("bw", 118e6, "network bandwidth the estimator assumes, bytes/second")
	cores := flag.Int("cores", 2, "storage node core count")
	reserved := flag.Int("reserved", 1, "cores reserved for normal I/O service")
	pace := flag.Bool("pace", false, "pace kernels at calibrated per-core rates")
	node := flag.String("node", "", "node name stamped on stats and trace exports (default data@ADDR)")
	teleTick := flag.Duration("telemetry-tick", 0, "telemetry sampling interval (0 = 100ms default, negative = disabled)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060; empty = disabled)")
	noMux := flag.Bool("no-mux", false, "decline connection multiplexing; serve ordered per-exchange RPC only")
	flag.Parse()

	if addr, err := pprofserve.Serve(*pprofAddr); err != nil {
		log.Fatal(err)
	} else if addr != "" {
		log.Printf("pprof: http://%s/debug/pprof/", addr)
	}
	if *node == "" {
		*node = "data@" + *addr
	}

	var mode core.Mode
	switch *policy {
	case "dosas":
		mode = core.ModeDynamic
	case "as":
		mode = core.ModeAlwaysAccept
	case "ts":
		mode = core.ModeAlwaysBounce
	default:
		log.Fatalf("unknown -policy %q (want dosas, as, or ts)", *policy)
	}
	var solver core.Solver
	if *solverName != "" {
		s, err := core.SolverByName(*solverName)
		if err != nil {
			log.Fatal(err)
		}
		solver = s
	}

	var store pfs.Store
	if *storeDir == "" {
		store = pfs.NewMemStore()
	} else {
		fs, err := pfs.NewFileStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		store = fs
	}
	defer store.Close()

	reg := metrics.NewRegistry()
	tr := trace.NewRecorder(4096)
	tr.SetNode(*node)
	var tele *telemetry.Sampler
	if *teleTick >= 0 {
		tele = telemetry.NewSampler(telemetry.Config{Interval: *teleTick})
	}
	alog := audit.NewLog(4096)
	alog.SetNode(*node)
	ds, err := pfs.NewDataServer(pfs.DataConfig{Store: store, Metrics: reg, Node: *node, Trace: tr, Telemetry: tele, Audit: alog})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := core.NewRuntime(core.RuntimeConfig{
		Store:  store,
		Mode:   mode,
		Solver: solver,
		Audit:  alog,
		Estimator: core.EstimatorConfig{
			BW:              *bw,
			TotalCores:      *cores,
			IOReservedCores: *reserved,
		},
		Pace:      *pace,
		Metrics:   reg,
		Trace:     tr,
		Node:      *node,
		Telemetry: tele,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	ds.SetActiveHandler(rt)

	l, err := transport.TCP{}.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := pfs.NewServer(l, ds)
	srv.SetMux(!*noMux)
	log.Printf("serving stripes on %s (policy=%s cores=%d reserved=%d bw=%.0fMB/s pace=%v store=%q)",
		srv.Addr(), mode, *cores, *reserved, *bw/1e6, *pace, *storeDir)

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr)
		log.Print("shutting down")
		log.Printf("final metrics:\n%s", reg.Dump())
		srv.Close()
	}()
	if err := srv.Run(); err != transport.ErrClosed {
		log.Fatal(err)
	}
}
