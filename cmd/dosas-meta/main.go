// Command dosas-meta runs a DOSAS metadata server: the namespace and
// stripe-layout service of the parallel file system.
//
// Usage:
//
//	dosas-meta -addr :7700 -data-servers 4 [-journal meta.wal] [-stripe 65536]
//
// SIGHUP compacts the journal in place (snapshot of the live namespace).
//
// The -data-servers count fixes the size of the cluster's data-server
// table; file layouts stripe over indices [0, N). Clients and dosasctl
// must be given the data servers' addresses in the same order everywhere.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"dosas/internal/pfs"
	"dosas/internal/pprofserve"
	"dosas/internal/telemetry"
	"dosas/internal/transport"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("dosas-meta: ")

	addr := flag.String("addr", ":7700", "TCP listen address")
	nData := flag.Int("data-servers", 4, "number of data servers in the cluster")
	stripe := flag.Uint("stripe", pfs.DefaultStripeSize, "default stripe size in bytes")
	journal := flag.String("journal", "", "write-ahead journal path (empty = volatile namespace)")
	teleTick := flag.Duration("telemetry-tick", 0, "telemetry sampling interval (0 = 100ms default, negative = disabled)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060; empty = disabled)")
	noMux := flag.Bool("no-mux", false, "decline connection multiplexing; serve ordered per-exchange RPC only")
	flag.Parse()

	if addr, err := pprofserve.Serve(*pprofAddr); err != nil {
		log.Fatal(err)
	} else if addr != "" {
		log.Printf("pprof: http://%s/debug/pprof/", addr)
	}

	var tele *telemetry.Sampler
	if *teleTick >= 0 {
		tele = telemetry.NewSampler(telemetry.Config{Interval: *teleTick})
	}
	meta, err := pfs.NewMetaServer(pfs.MetaConfig{
		NumDataServers:    *nData,
		DefaultStripeSize: uint32(*stripe),
		JournalPath:       *journal,
		Telemetry:         tele,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer meta.Close()

	l, err := transport.TCP{}.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := pfs.NewServer(l, meta)
	srv.SetMux(!*noMux)
	log.Printf("serving %d-server namespace on %s (journal=%q)", *nData, srv.Addr(), *journal)

	go func() {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		for range hup {
			if err := meta.CompactJournal(); err != nil {
				log.Printf("journal compaction failed: %v", err)
			} else {
				log.Print("journal compacted")
			}
		}
	}()
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr)
		log.Print("shutting down")
		srv.Close()
	}()
	if err := srv.Run(); err != transport.ErrClosed {
		log.Fatal(err)
	}
}
