// Command dosas-meta runs a DOSAS metadata server: the namespace and
// stripe-layout service of the parallel file system.
//
// Usage:
//
//	dosas-meta -addr :7700 -data-servers 4 [-journal meta.wal] [-stripe 65536]
//
// SIGHUP compacts the journal in place (snapshot of the live namespace).
//
// The -data-servers count fixes the size of the cluster's data-server
// table; file layouts stripe over indices [0, N). Clients and dosasctl
// must be given the data servers' addresses in the same order everywhere.
//
// -pprof-addr opens the loopback debug endpoint, which also serves the
// node's OpenMetrics exposition at /metrics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"dosas/internal/daemonflags"
	"dosas/internal/metrics"
	"dosas/internal/openmetrics"
	"dosas/internal/pfs"
	"dosas/internal/slo"
	"dosas/internal/transport"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("dosas-meta: ")

	addr := flag.String("addr", ":7700", "TCP listen address")
	nData := flag.Int("data-servers", 4, "number of data servers in the cluster")
	stripe := flag.Uint("stripe", pfs.DefaultStripeSize, "default stripe size in bytes")
	journal := flag.String("journal", "", "write-ahead journal path (empty = volatile namespace)")
	var common daemonflags.Common
	common.RegisterBase(flag.CommandLine)
	common.RegisterTelemetry(flag.CommandLine)
	common.RegisterObservability(flag.CommandLine)
	common.RegisterQoS(flag.CommandLine)
	flag.Parse()

	weights, err := common.TenantWeights()
	if err != nil {
		log.Fatal(err)
	}
	var qos *pfs.QoSConfig
	if !common.NoQoS {
		qos = &pfs.QoSConfig{Slots: common.QoSSlots, Weights: weights}
	}

	tele := common.Sampler()
	reg := metrics.NewRegistry()

	events, err := common.EventLog("meta", os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	defer events.Close()

	// The durable telemetry archive persists every sampler tick; it is
	// deferred before the meta server so it closes after the sampler
	// stops, sealing the final downsample buckets.
	archive, err := common.Archive("meta", tele, events)
	if err != nil {
		log.Fatal(err)
	}
	defer archive.Close()

	var engine *slo.Engine
	if tele != nil {
		rules, err := common.Rules()
		if err != nil {
			log.Fatal(err)
		}
		engine, err = slo.NewEngine(slo.Config{
			Rules: rules, Sampler: tele, Events: events, Metrics: reg, Node: "meta",
		})
		if err != nil {
			log.Fatal(err)
		}
		tele.OnTick(engine.Eval)
	}

	if addr, err := common.ServeDebug(func() []openmetrics.Source {
		return []openmetrics.Source{{
			Node: "meta", Role: "meta",
			Metrics: reg, Telemetry: tele, SLO: engine, Events: events,
		}}
	}); err != nil {
		log.Fatal(err)
	} else if addr != "" {
		events.Info("meta", "debug endpoint up", "url", "http://"+addr+"/debug/pprof/", "metrics", "http://"+addr+"/metrics")
	}

	meta, err := pfs.NewMetaServer(pfs.MetaConfig{
		NumDataServers:    *nData,
		DefaultStripeSize: uint32(*stripe),
		JournalPath:       *journal,
		Metrics:           reg,
		Telemetry:         tele,
		Events:            events,
		SLO:               engine,
		Archive:           archive,
		QoS:               qos,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer meta.Close()

	l, err := transport.TCP{}.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := pfs.NewServer(l, meta)
	srv.SetMux(!common.NoMux)
	events.Info("meta", "serving namespace",
		"addr", srv.Addr(), "data_servers", fmt.Sprint(*nData), "journal", *journal)

	go func() {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		for range hup {
			if err := meta.CompactJournal(); err != nil {
				log.Printf("journal compaction failed: %v", err)
			}
		}
	}()
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr)
		events.Info("meta", "shutting down")
		srv.Close()
	}()
	if err := srv.Run(); err != transport.ErrClosed {
		log.Fatal(err)
	}
}
