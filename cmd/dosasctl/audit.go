package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"dosas"
)

// runAuditCommand dispatches the decision-audit commands: explain (print
// per-decision rationale), whatif (counterfactual replay) and audit
// (dump the raw log as JSON). Each reads its decision log either from a
// -log FILE — no cluster needed, the offline path the golden tests and
// make replay-determinism use — or by sweeping the connected cluster via
// connect().
func runAuditCommand(args []string, connect func() *dosas.FS) {
	switch args[0] {
	case "explain":
		cmdExplain(args[1:], connect)
	case "whatif":
		cmdWhatif(args[1:], connect)
	case "audit":
		cmdAuditDump(args[1:], connect)
	}
}

// loadDecisions fetches records from file (when set) or from the cluster.
// limit and traceID filter per node on the wire path and in-process on
// the file path, so both paths answer the same question.
func loadDecisions(file string, limit, traceID uint64, connect func() *dosas.FS) []dosas.DecisionRecord {
	if file != "" {
		blob, err := os.ReadFile(file)
		if err != nil {
			log.Fatal(err)
		}
		records, err := dosas.DecodeDecisions(blob)
		if err != nil {
			log.Fatal(err)
		}
		if traceID != 0 {
			records = dosas.FilterDecisionsTrace(records, traceID)
		}
		if limit > 0 {
			records = dosas.LastDecisions(records, int(limit))
		}
		return records
	}
	fs := connect()
	defer fs.Close()
	records, dropped, err := fs.DecisionLog(limit, traceID)
	if err != nil {
		log.Fatal(err)
	}
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "note: %d older decisions already overwritten in the nodes' rings\n", dropped)
	}
	return records
}

func cmdExplain(args []string, connect func() *dosas.FS) {
	fl := flag.NewFlagSet("explain", flag.ExitOnError)
	logFile := fl.String("log", "", "read decisions from this JSON file instead of the cluster")
	fl.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: explain [-log FILE] [last N | TRACEID]")
		fl.PrintDefaults()
	}
	fl.Parse(args)

	var limit, traceID uint64
	switch rest := fl.Args(); {
	case len(rest) == 0:
		// Everything retained.
	case rest[0] == "last":
		if len(rest) != 2 {
			fl.Usage()
			os.Exit(2)
		}
		n, err := strconv.ParseUint(rest[1], 10, 64)
		if err != nil {
			log.Fatalf("bad N %q", rest[1])
		}
		limit = n
	case len(rest) == 1:
		id, err := strconv.ParseUint(rest[0], 0, 64)
		if err != nil {
			log.Fatalf("bad TRACEID %q", rest[0])
		}
		traceID = id
	default:
		fl.Usage()
		os.Exit(2)
	}

	records := loadDecisions(*logFile, limit, traceID, connect)
	if len(records) == 0 {
		fmt.Println("no decisions recorded")
		return
	}
	fmt.Print(dosas.FormatDecisions(records))
}

func cmdWhatif(args []string, connect func() *dosas.FS) {
	fl := flag.NewFlagSet("whatif", flag.ExitOnError)
	logFile := fl.String("log", "", "read decisions from this JSON file instead of the cluster")
	policies := fl.String("policy", strings.Join(dosas.ReplayPolicies(), ","),
		"comma-separated replay policies")
	bw := fl.Float64("bw", 0, "override network bandwidth (bytes/s; 0 = as recorded)")
	storageScale := fl.Float64("storage-scale", 0, "multiply storage rates by this factor (0 = as recorded)")
	computeScale := fl.Float64("compute-scale", 0, "multiply compute rates by this factor (0 = as recorded)")
	asJSON := fl.Bool("json", false, "emit the full reports as JSON")
	fl.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: whatif [-policy p1,p2,...] [-log FILE] [-bw BPS] [-storage-scale X] [-compute-scale X] [-json]")
		fl.PrintDefaults()
	}
	fl.Parse(args)
	if fl.NArg() != 0 {
		fl.Usage()
		os.Exit(2)
	}

	records := loadDecisions(*logFile, 0, 0, connect)
	if len(records) == 0 {
		fmt.Println("no decisions recorded")
		return
	}
	ov := dosas.ReplayOverrides{BW: *bw, StorageScale: *storageScale, ComputeScale: *computeScale}
	var reports []dosas.ReplayReport
	for _, p := range strings.Split(*policies, ",") {
		rep, err := dosas.ReplayDecisions(records, strings.TrimSpace(p), ov)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, rep)
	}
	if *asJSON {
		out, err := dosas.EncodeReplayReports(reports)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
		return
	}
	for _, rep := range reports {
		printWhatif(rep)
	}
}

// printWhatif renders one counterfactual report as a two-line summary.
func printWhatif(rep dosas.ReplayReport) {
	fmt.Printf("%-11s decisions=%d accept=%d bounce=%d (%.1f%%)  agree=%.1f%%\n",
		rep.Policy, rep.Decisions, rep.Accepted, rep.Bounced,
		100*rep.BounceRate, 100*rep.AgreementRate)
	fmt.Printf("            total=%.3fs oracle=%.3fs regret=%.3fs (mean %.3fs",
		rep.TotalSeconds, rep.OracleSeconds, rep.RegretSeconds, rep.MeanRegret)
	if rep.MaxRegret > 0 {
		fmt.Printf(", max %.3fs", rep.MaxRegret)
		if rep.MaxRegretTrace != 0 {
			fmt.Printf(" trace=%#x", rep.MaxRegretTrace)
		} else if rep.MaxRegretReq != 0 {
			fmt.Printf(" req=%d", rep.MaxRegretReq)
		}
	}
	fmt.Println(")")
}

func cmdAuditDump(args []string, connect func() *dosas.FS) {
	fl := flag.NewFlagSet("audit", flag.ExitOnError)
	logFile := fl.String("log", "", "read decisions from this JSON file instead of the cluster")
	limit := fl.Uint64("limit", 0, "keep only the trailing N decisions per node (0 = all)")
	traceID := fl.Uint64("trace", 0, "restrict to decisions involving this trace id (0 = all)")
	fl.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: audit [-log FILE] [-limit N] [-trace ID]   (JSON to stdout; save for later whatif -log)")
		fl.PrintDefaults()
	}
	fl.Parse(args)
	if fl.NArg() != 0 {
		fl.Usage()
		os.Exit(2)
	}
	records := loadDecisions(*logFile, *limit, *traceID, connect)
	out, err := dosas.EncodeDecisions(records)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(out)
	fmt.Println()
}
