// Command dosasctl is the operator CLI for a running DOSAS cluster.
//
// Usage:
//
//	dosasctl -meta HOST:PORT -data HOST:PORT[,HOST:PORT...] [-scheme dosas]
//	         [-tenant ID] [-slow-threshold 50ms -slow-dir DIR] COMMAND ...
//
// Commands:
//
//	ls [PREFIX]                      list files
//	stat NAME                        show file metadata
//	put LOCAL NAME [WIDTH [REPLICAS]] upload a local file (WIDTH storage nodes; 0 = all)
//	get NAME LOCAL                   download a file
//	rm NAME                          remove a file
//	readex NAME OP [OFF LEN]         run a kernel over a file range
//	fsck NAME [deep]                 verify stripe/replica consistency
//	repair NAME                      restore damaged replicas from intact copies
//	ops                              list available kernels
//	calibrate OP                     measure this host's kernel rate (Table III style)
//	probe                            dump every storage node's load status
//	stats [-json]                    dump every node's metric snapshot
//	trace ID                         stitch the cross-node timeline of one request
//	                                 (ID is a request id or a distributed trace id)
//	health                           per-node liveness and resource readiness
//	alerts [-json]                   every node's SLO alert table (exit 1 if any
//	                                 rule is firing)
//	events [-follow] [-level L] [-n N] merged cluster event timeline; -follow
//	                                 tails new events, -level filters
//	                                 (debug|info|warn|error), -n keeps the
//	                                 newest N per node
//	top [-once] [WINDOW]             refreshing cluster-wide telemetry view
//	                                 (-once prints a single frame; WINDOW like 10s)
//	query SERIES [-since 1h] [-until 5m] [-step 10s] [-agg avg|min|max|sum|last]
//	      [-node NAME] [-json]       range-query the durable telemetry archives
//	                                 (-archive-dir on the daemons): per-node
//	                                 table and sparklines, -agg merges nodes
//	report [-alert RULE | -since 1h [-until 5m]] [-step 10s] [-series a,b] [-json]
//	                                 stitch alert transitions, events, and
//	                                 archived telemetry into one incident
//	                                 bundle (-alert centers it on a rule)
//	tenants [-sort bytes|cpu|wait] [-json] [-per-node]
//	                                 per-tenant resource attribution: bytes, ops,
//	                                 kernel CPU, and queue wait by tenant ID,
//	                                 merged cluster-wide (or per node)
//	slow DIR                         print the slow-request flight bundles a client
//	                                 persisted under DIR (ClientOptions.SlowDir)
//	explain [-log FILE] [last N|ID]  print each scheduling decision's rationale:
//	                                 predicted vs actual costs, margin to the
//	                                 decision boundary, env at decision time
//	whatif [-policy p1,p2] [-log FILE] replay the decision log under alternative
//	                                 policies/environments and score the regret
//	audit [-log FILE]                dump the decision log as JSON (save the
//	                                 output for later explain/whatif -log)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dosas"
	"dosas/internal/daemonflags"
	"dosas/internal/pfs"
	"dosas/internal/trace"
	"dosas/internal/transport"
	"dosas/internal/wire"
)

// ctlNoMux mirrors the -no-mux flag for the subcommands that build their
// own raw pools (stats, trace, probe) rather than a full client.
var ctlNoMux bool

// newCtlPool builds a TCP connection pool honouring -no-mux.
func newCtlPool() *pfs.Pool {
	pool := pfs.NewPool(transport.TCP{})
	if ctlNoMux {
		pool.DisableMux()
	}
	return pool
}

func usageExit() {
	fmt.Fprintln(os.Stderr, "usage: dosasctl -meta ADDR -data ADDR[,ADDR...] [-scheme dosas|as|ts] COMMAND ...")
	fmt.Fprintln(os.Stderr, "commands: ls, stat, put, get, rm, readex, fsck, repair, ops, calibrate, probe, stats, trace, health, alerts, events, top, query, report, tenants, slow, explain, whatif, audit")
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dosasctl: ")

	meta := flag.String("meta", "127.0.0.1:7700", "metadata server address")
	data := flag.String("data", "", "comma-separated data server addresses, in cluster order")
	schemeName := flag.String("scheme", "dosas", "client scheme for readex: dosas, as, or ts")
	tenantID := flag.String("tenant", "", "tenant ID stamped on every request for per-tenant resource attribution (empty = default)")
	slowThreshold := flag.Duration("slow-threshold", 0, "flag readex calls slower than this and capture a flight bundle (0 = off)")
	slowDir := flag.String("slow-dir", "", "directory to persist captured flight bundles (see the slow command)")
	var common daemonflags.Common
	common.RegisterBase(flag.CommandLine)
	common.RegisterHedge(flag.CommandLine)
	flag.Parse()
	ctlNoMux = common.NoMux
	if _, err := common.ServeDebug(nil); err != nil {
		log.Fatal(err)
	}
	args := flag.Args()
	if len(args) == 0 {
		usageExit()
	}

	var scheme dosas.Scheme
	switch *schemeName {
	case "dosas":
		scheme = dosas.DOSAS
	case "as":
		scheme = dosas.AS
	case "ts":
		scheme = dosas.TS
	default:
		log.Fatalf("unknown -scheme %q", *schemeName)
	}

	// Local commands that need no cluster.
	switch args[0] {
	case "ops":
		for _, op := range dosas.Ops() {
			fmt.Printf("%-12s %8.1f MB/s/core (calibrated default)\n", op, dosas.RateFor(op)/1e6)
		}
		return
	case "calibrate":
		if len(args) != 2 {
			log.Fatal("usage: calibrate OP")
		}
		rate, err := dosas.Calibrate(args[1], 64<<20, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %.1f MB/s per core on this host\n", args[1], rate/1e6)
		return
	case "slow":
		// Reads a client's persisted flight journal from disk; needs no
		// cluster connection.
		if len(args) != 2 {
			log.Fatal("usage: slow DIR")
		}
		bundles, err := dosas.ReadSlowBundles(args[1])
		if err != nil {
			log.Fatal(err)
		}
		if len(bundles) == 0 {
			fmt.Println("no slow-request bundles")
			return
		}
		for _, b := range bundles {
			fmt.Print(dosas.FormatSlowBundle(b))
		}
		return
	}

	// Decision-audit commands connect lazily: with -log FILE they run
	// entirely offline.
	switch args[0] {
	case "explain", "whatif", "audit":
		runAuditCommand(args, func() *dosas.FS {
			addrs := strings.Split(*data, ",")
			if *data == "" || len(addrs) == 0 {
				log.Fatal("need -data with at least one storage server address (or -log FILE)")
			}
			fs, err := dosas.Connect(dosas.ClientOptions{MetaAddr: *meta, DataAddrs: addrs, Scheme: scheme, Tenant: *tenantID, DisableMux: ctlNoMux})
			if err != nil {
				log.Fatal(err)
			}
			return fs
		})
		return
	}

	dataAddrs := strings.Split(*data, ",")
	if *data == "" || len(dataAddrs) == 0 {
		log.Fatal("need -data with at least one storage server address")
	}
	fs, err := dosas.Connect(dosas.ClientOptions{
		MetaAddr:      *meta,
		DataAddrs:     dataAddrs,
		Scheme:        scheme,
		Tenant:        *tenantID,
		SlowThreshold: *slowThreshold,
		SlowDir:       *slowDir,
		DisableMux:    ctlNoMux,
		HedgeAfter:    common.HedgeAfter,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()

	switch args[0] {
	case "ls":
		prefix := ""
		if len(args) > 1 {
			prefix = args[1]
		}
		names, err := fs.List(prefix)
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case "stat":
		if len(args) != 2 {
			log.Fatal("usage: stat NAME")
		}
		fi, err := fs.Stat(args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("name:    %s\nsize:    %d bytes\nstripe:  %d bytes\nwidth:   %d servers\nreplicas: %d\nmtime:   %s\n",
			fi.Name, fi.Size, fi.StripeSize, fi.Width, fi.Replicas, fi.ModTime.Format("2006-01-02 15:04:05"))
	case "put":
		if len(args) < 3 {
			log.Fatal("usage: put LOCAL NAME [WIDTH [REPLICAS]]")
		}
		width, replicas := 0, 0
		if len(args) > 3 {
			w, err := strconv.Atoi(args[3])
			if err != nil {
				log.Fatalf("bad WIDTH %q", args[3])
			}
			width = w
		}
		if len(args) > 4 {
			r, err := strconv.Atoi(args[4])
			if err != nil {
				log.Fatalf("bad REPLICAS %q", args[4])
			}
			replicas = r
		}
		blob, err := os.ReadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		f, err := fs.Create(args[2], dosas.CreateOptions{Width: width, Replicas: replicas})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.WriteAt(blob, 0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stored %d bytes as %s over %d server(s), %d replica(s)\n",
			len(blob), args[2], f.StripeWidth(), f.Replicas())
	case "get":
		if len(args) != 3 {
			log.Fatal("usage: get NAME LOCAL")
		}
		f, err := fs.Open(args[1])
		if err != nil {
			log.Fatal(err)
		}
		blob, err := f.ReadAll()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(args[2], blob, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fetched %d bytes\n", len(blob))
	case "rm":
		if len(args) != 2 {
			log.Fatal("usage: rm NAME")
		}
		if err := fs.Remove(args[1]); err != nil {
			log.Fatal(err)
		}
	case "readex":
		if len(args) < 3 {
			log.Fatal("usage: readex NAME OP [OFF LEN]")
		}
		f, err := fs.Open(args[1])
		if err != nil {
			log.Fatal(err)
		}
		off, length := uint64(0), f.Size()
		if len(args) >= 5 {
			o, err1 := strconv.ParseUint(args[3], 10, 64)
			l, err2 := strconv.ParseUint(args[4], 10, 64)
			if err1 != nil || err2 != nil {
				log.Fatal("bad OFF/LEN")
			}
			off, length = o, l
		}
		res, err := f.ReadEx(args[2], opParams(args[2]), off, length)
		if err != nil {
			log.Fatal(err)
		}
		printResult(args[2], res)
	case "fsck":
		if len(args) < 2 {
			log.Fatal("usage: fsck NAME [deep]")
		}
		deep := len(args) > 2 && args[2] == "deep"
		rep, err := fs.Verify(args[1], deep)
		if err != nil {
			log.Fatal(err)
		}
		printReport(rep)
		if !rep.OK() {
			os.Exit(1)
		}
	case "repair":
		if len(args) != 2 {
			log.Fatal("usage: repair NAME")
		}
		rep, err := fs.Repair(args[1])
		if err != nil {
			log.Fatal(err)
		}
		printReport(rep)
		if !rep.OK() {
			os.Exit(1)
		}
	case "probe":
		probeAll(*meta, dataAddrs)
	case "health":
		if !healthAll(fs) {
			os.Exit(1)
		}
	case "alerts":
		asJSON := len(args) > 1 && args[1] == "-json"
		if !alertsAll(fs, asJSON) {
			os.Exit(1)
		}
	case "events":
		follow := false
		min := dosas.EventDebug
		limit := 0
		rest := args[1:]
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case "-follow":
				follow = true
			case "-level":
				i++
				if i >= len(rest) {
					log.Fatal("usage: events [-follow] [-level debug|info|warn|error] [-n N]")
				}
				lv, err := dosas.ParseEventLevel(rest[i])
				if err != nil {
					log.Fatal(err)
				}
				min = lv
			case "-n":
				i++
				if i >= len(rest) {
					log.Fatal("usage: events [-follow] [-level debug|info|warn|error] [-n N]")
				}
				n, err := strconv.Atoi(rest[i])
				if err != nil || n < 0 {
					log.Fatalf("bad -n %q", rest[i])
				}
				limit = n
			default:
				log.Fatalf("unknown events option %q", rest[i])
			}
		}
		eventsLoop(fs, min, limit, follow)
	case "top":
		once := false
		window := 10 * time.Second
		for _, a := range args[1:] {
			if a == "-once" {
				once = true
				continue
			}
			d, err := time.ParseDuration(a)
			if err != nil {
				log.Fatalf("bad WINDOW %q", a)
			}
			window = d
		}
		topLoop(fs, window, once)
	case "query":
		runQuery(fs, args[1:])
	case "report":
		runReport(fs, args[1:])
	case "tenants":
		sortKey := ""
		asJSON, perNode := false, false
		rest := args[1:]
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case "-json":
				asJSON = true
			case "-per-node":
				perNode = true
			case "-sort":
				i++
				if i >= len(rest) {
					log.Fatal("usage: tenants [-sort bytes|cpu|wait] [-json] [-per-node]")
				}
				switch rest[i] {
				case "bytes", "cpu", "wait", "name":
					sortKey = rest[i]
				default:
					log.Fatalf("bad -sort %q (want bytes, cpu, wait, or name)", rest[i])
				}
			default:
				log.Fatalf("unknown tenants option %q", rest[i])
			}
		}
		tenantsAll(fs, sortKey, asJSON, perNode)
	case "stats":
		asJSON := len(args) > 1 && args[1] == "-json"
		statsAll(*meta, dataAddrs, asJSON)
	case "trace":
		if len(args) != 2 {
			log.Fatal("usage: trace ID  (request id or trace id)")
		}
		id, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			log.Fatalf("bad ID %q", args[1])
		}
		traceOne(dataAddrs, id)
	default:
		usageExit()
	}
}

// opParams supplies sensible CLI defaults for parameterised kernels.
func opParams(op string) []byte {
	switch op {
	case "gaussian2d":
		return dosas.GaussianParams(1024, false)
	case "count":
		return []byte("data")
	case "downsample":
		return dosas.DownsampleParams(16)
	case "kmeans1d":
		return dosas.KMeansParams(4, 0, 256)
	default:
		return nil
	}
}

func printResult(op string, res *dosas.Result) {
	fmt.Printf("elapsed: %v, shipped %d raw bytes\n", res.Elapsed, res.BytesShipped())
	for _, p := range res.Parts {
		fmt.Printf("  server %d: %d bytes ran %s\n", p.Server, p.Bytes, p.Where)
	}
	switch op {
	case "sum8":
		fmt.Printf("sum = %d\n", dosas.SumResult(res.Output))
	case "sum64":
		fmt.Printf("sum = %g\n", dosas.Sum64Result(res.Output))
	case "count", "wordcount":
		fmt.Printf("count = %d\n", dosas.CountResult(res.Output))
	case "minmax":
		mn, mx, err := dosas.MinMaxResult(res.Output)
		if err == nil {
			fmt.Printf("min = %g, max = %g\n", mn, mx)
		}
	case "moments":
		if m, err := dosas.MomentsResult(res.Output); err == nil {
			fmt.Printf("count = %d, mean = %g, variance = %g\n", m.Count, m.Mean(), m.Variance())
		}
	case "kmeans1d":
		if cs, err := dosas.KMeansResult(res.Output); err == nil {
			for _, c := range cs {
				fmt.Printf("centroid %.4f: %d samples\n", c.Centroid, c.Count)
			}
		}
	case "gaussian2d":
		if d, err := dosas.GaussianDigestResult(res.Output); err == nil {
			fmt.Printf("pixels = %d, mean = %.2f, min = %d, max = %d\n",
				d.Pixels, float64(d.Sum)/float64(d.Pixels), d.Min, d.Max)
		}
	default:
		fmt.Printf("result: %d bytes\n", len(res.Output))
	}
}

func printReport(rep *dosas.VerifyReport) {
	if rep.OK() {
		fmt.Printf("%s: OK (%d bytes deep-checked)\n", rep.Name, rep.BytesChecked)
		return
	}
	fmt.Printf("%s: %d issue(s)\n", rep.Name, len(rep.Issues))
	for _, is := range rep.Issues {
		fmt.Printf("  %s\n", is)
	}
}

// statsAll dumps every node's metric snapshot, human-readable or as one
// JSON object keyed by node name.
func statsAll(meta string, dataAddrs []string, asJSON bool) {
	pool := newCtlPool()
	defer pool.Close()
	type nodeStats struct {
		Addr  string          `json:"addr"`
		Role  string          `json:"role"`
		Mode  string          `json:"mode,omitempty"`
		Stats json.RawMessage `json:"stats"`
	}
	collected := make(map[string]nodeStats)
	var order []string
	fetch := func(fallbackName, addr string) {
		resp, err := pool.Call(addr, &wire.StatsReq{})
		if err != nil {
			log.Printf("%s %s: unreachable: %v", fallbackName, addr, err)
			return
		}
		sr, ok := resp.(*wire.StatsResp)
		if !ok {
			log.Printf("%s %s: unexpected response %v", fallbackName, addr, resp.Type())
			return
		}
		name := sr.Node
		if name == "" {
			name = fallbackName
		}
		collected[name] = nodeStats{Addr: addr, Role: sr.Role, Mode: sr.Mode, Stats: sr.Stats}
		order = append(order, name)
	}
	fetch("meta", meta)
	for i, addr := range dataAddrs {
		fetch(fmt.Sprintf("data-%d", i), addr)
	}
	if asJSON {
		out, err := json.MarshalIndent(collected, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	for _, name := range order {
		ns := collected[name]
		head := fmt.Sprintf("%s (%s", name, ns.Role)
		if ns.Mode != "" {
			head += ", mode " + ns.Mode
		}
		fmt.Printf("%s) @ %s\n", head, ns.Addr)
		var snap dosas.StatsSnapshot
		if err := json.Unmarshal(ns.Stats, &snap); err != nil {
			log.Printf("  bad stats payload: %v", err)
			continue
		}
		printSnapshot(snap)
	}
}

// printSnapshot renders one node's metrics in sorted "name value" lines.
func printSnapshot(s dosas.StatsSnapshot) {
	var lines []string
	for n, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("  counter %-28s %d", n, v))
	}
	for n, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("  gauge   %-28s %d", n, v))
	}
	for n, v := range s.Meters {
		lines = append(lines, fmt.Sprintf("  meter   %-28s %.3f/s", n, v))
	}
	for n, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("  hist    %-28s count=%d mean=%.2f p50=%.2f p99=%.2f",
			n, h.Count, h.Mean, h.P50, h.P99))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

// traceOne fetches one request's events from every storage node and
// prints the stitched cross-node timeline. The ID is tried first as a
// wire-level request id, then as a distributed trace id.
func traceOne(dataAddrs []string, id uint64) {
	pool := newCtlPool()
	defer pool.Close()
	fetch := func(req *wire.TraceFetchReq) []dosas.TraceEvent {
		var sets [][]dosas.TraceEvent
		for i, addr := range dataAddrs {
			resp, err := pool.Call(addr, req)
			if err != nil {
				log.Printf("data[%d] %s: unreachable: %v", i, addr, err)
				continue
			}
			tr, ok := resp.(*wire.TraceFetchResp)
			if !ok {
				log.Printf("data[%d] %s: unexpected response %v", i, addr, resp.Type())
				continue
			}
			evs, err := trace.DecodeEvents(tr.Events)
			if err != nil {
				log.Printf("data[%d] %s: bad trace payload: %v", i, addr, err)
				continue
			}
			sets = append(sets, evs)
		}
		return dosas.StitchTimeline(sets...)
	}
	evs := fetch(&wire.TraceFetchReq{ReqID: id})
	if len(evs) == 0 {
		evs = fetch(&wire.TraceFetchReq{TraceID: id})
	}
	if len(evs) == 0 {
		log.Fatalf("no events recorded for id %d on any storage node", id)
	}
	fmt.Print(dosas.FormatTimeline(evs))
}

// healthAll prints every node's health report and returns whether the
// whole cluster is ready.
func healthAll(fs *dosas.FS) bool {
	ready := true
	for _, r := range fs.Health() {
		status := "ready"
		if !r.Ready {
			status = "DEGRADED"
			ready = false
		}
		fmt.Printf("%-8s %-5s %-8s uptime=%s\n",
			r.Node, r.Role, status, time.Duration(r.UptimeNano).Round(time.Second))
		for _, c := range r.Checks {
			mark := "ok"
			if !c.OK {
				mark = "FAIL"
			}
			fmt.Printf("  %-4s %-12s %s\n", mark, c.Name, c.Detail)
		}
	}
	return ready
}

// alertsAll prints every node's SLO alert table and returns whether no
// rule is currently firing.
func alertsAll(fs *dosas.FS, asJSON bool) bool {
	alerts, err := fs.Alerts()
	if err != nil {
		log.Fatal(err)
	}
	firing := 0
	for _, a := range alerts {
		if a.State == "firing" {
			firing++
		}
	}
	if asJSON {
		out, err := json.MarshalIndent(alerts, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return firing == 0
	}
	fmt.Print(dosas.FormatAlerts(alerts))
	return firing == 0
}

// tenantsAll prints per-tenant resource attribution: the cluster-wide
// merged table by default, one table per storage node with -per-node,
// and the raw node reports as JSON with -json.
func tenantsAll(fs *dosas.FS, sortKey string, asJSON, perNode bool) {
	reports, err := fs.Tenants()
	if err != nil {
		log.Fatal(err)
	}
	if asJSON {
		out, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	if perNode {
		for _, r := range reports {
			fmt.Printf("%s (evicted=%d)\n", r.Node, r.Evicted)
			dosas.SortTenantUsage(r.Usage, sortKey)
			fmt.Print(dosas.FormatTenants(r.Usage))
		}
		return
	}
	merged := dosas.MergeTenantUsage(reports)
	if len(merged) == 0 {
		fmt.Println("no tenant usage recorded")
		return
	}
	dosas.SortTenantUsage(merged, sortKey)
	fmt.Print(dosas.FormatTenants(merged))
	var evicted uint64
	for _, r := range reports {
		evicted += r.Evicted
	}
	if evicted > 0 {
		fmt.Printf("(%d tenant(s) folded into %s across nodes)\n", evicted, dosas.TenantEvicted)
	}
}

// eventsLoop prints the cluster's merged event timeline once, or — with
// follow — keeps tailing each node from its sequence cursor.
func eventsLoop(fs *dosas.FS, min dosas.EventLevel, limit int, follow bool) {
	cursors := make(map[string]uint64)
	printPages := func(pages []dosas.EventsPage) {
		sets := make([][]dosas.Event, 0, len(pages))
		for _, p := range pages {
			sets = append(sets, p.Events)
			// Snapshot cursors are exclusive: feed back NextSeq-1 so
			// the next event logged (Seq == NextSeq) is not skipped.
			if p.NextSeq >= 1 {
				cursors[p.Node] = p.NextSeq - 1
			}
		}
		for _, ev := range dosas.MergeEvents(sets...) {
			fmt.Println(dosas.FormatEvent(ev))
		}
	}
	pages, err := fs.Events(nil, min, limit)
	if err != nil {
		log.Fatal(err)
	}
	printPages(pages)
	for follow {
		time.Sleep(time.Second)
		pages, err := fs.Events(cursors, min, 0)
		if err != nil {
			log.Fatal(err)
		}
		printPages(pages)
	}
}

// topLoop renders the cluster-wide telemetry view: one frame with -once,
// else refreshing in place every two seconds until interrupted.
func topLoop(fs *dosas.FS, window time.Duration, once bool) {
	for {
		frame := renderTop(fs, window)
		if !once {
			fmt.Print("\033[H\033[2J") // clear screen, cursor home
		}
		fmt.Print(frame)
		if once {
			return
		}
		time.Sleep(2 * time.Second)
	}
}

// renderTop formats one frame: per node, each telemetry series with its
// latest value, window maximum, and a sparkline of the window.
func renderTop(fs *dosas.FS, window time.Duration) string {
	byNode, err := fs.Series(window)
	var sb strings.Builder
	fmt.Fprintf(&sb, "dosas top — %d node(s), window %v\n", len(byNode), window)
	if err != nil {
		fmt.Fprintf(&sb, "  series fetch: %v\n", err)
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		fmt.Fprintf(&sb, "%s\n", node)
		for _, s := range byNode[node] {
			fmt.Fprintf(&sb, "  %-18s last=%10.2f max=%10.2f %s\n",
				s.Name, s.Last().Value, s.Max(), sparkline(s, 32))
		}
	}
	return sb.String()
}

// sparkline draws a series' points as a fixed-width bar strip scaled to
// the window maximum.
func sparkline(s dosas.Series, width int) string {
	if len(s.Points) == 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	pts := s.Points
	if len(pts) > width {
		pts = pts[len(pts)-width:]
	}
	max := s.Max()
	out := make([]rune, len(pts))
	for i, p := range pts {
		if max <= 0 {
			out[i] = bars[0]
			continue
		}
		idx := int(p.Value / max * float64(len(bars)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(bars) {
			idx = len(bars) - 1
		}
		out[i] = bars[idx]
	}
	return string(out)
}

// probeAll dumps every storage node's estimator snapshot.
func probeAll(meta string, dataAddrs []string) {
	pool := newCtlPool()
	defer pool.Close()
	if _, err := pool.Call(meta, &wire.Ping{Seq: 1}); err != nil {
		log.Printf("meta %s: unreachable: %v", meta, err)
	} else {
		fmt.Printf("meta %s: alive\n", meta)
	}
	for i, addr := range dataAddrs {
		resp, err := pool.Call(addr, &wire.ProbeReq{})
		if err != nil {
			log.Printf("data[%d] %s: unreachable: %v", i, addr, err)
			continue
		}
		p, ok := resp.(*wire.ProbeResp)
		if !ok {
			log.Printf("data[%d] %s: unexpected response", i, addr)
			continue
		}
		fmt.Printf("data[%d] %s: queue normal=%d active=%d, cores busy=%.1f/%d, queued=%d bytes\n",
			i, addr, p.QueueLen, p.ActiveQueueLen, p.BusyCores, p.TotalCores, p.BytesQueued)
	}
}
