package main

import (
	"encoding/json"
	"fmt"
	"log"
	"strings"
	"time"

	"dosas"
)

const queryUsage = "usage: query SERIES [-since 1h] [-until 5m] [-step 10s] [-agg avg|min|max|sum|last] [-node NAME] [-json]"
const reportUsage = "usage: report [-alert RULE | -since 1h [-until 5m]] [-step 10s] [-series a,b] [-json]"

// optVal returns the value following option i, advancing the index.
func optVal(rest []string, i *int, usage string) string {
	*i++
	if *i >= len(rest) {
		log.Fatal(usage)
	}
	return rest[*i]
}

// optDur parses the value following option i as a duration.
func optDur(rest []string, i *int, usage string) time.Duration {
	v := optVal(rest, i, usage)
	d, err := time.ParseDuration(v)
	if err != nil {
		log.Fatalf("bad duration %q: %v", v, err)
	}
	return d
}

// runQuery answers dosasctl query: a range query over the cluster's
// durable telemetry archives, printed as a per-node table with
// sparklines (plus the aggregated cluster series when -agg is given),
// or as JSON.
func runQuery(fs *dosas.FS, rest []string) {
	if len(rest) == 0 || strings.HasPrefix(rest[0], "-") {
		log.Fatal(queryUsage)
	}
	now := time.Now()
	q := dosas.RangeQuery{Name: rest[0], From: now.Add(-time.Hour)}
	asJSON := false
	rest = rest[1:]
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case "-json":
			asJSON = true
		case "-since":
			q.From = now.Add(-optDur(rest, &i, queryUsage))
		case "-until":
			q.Until = now.Add(-optDur(rest, &i, queryUsage))
		case "-step":
			q.Step = optDur(rest, &i, queryUsage)
		case "-agg":
			q.Agg = optVal(rest, &i, queryUsage)
		case "-node":
			q.Node = optVal(rest, &i, queryUsage)
		default:
			log.Fatalf("unknown query option %q\n%s", rest[i], queryUsage)
		}
	}
	res, err := fs.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	if asJSON {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Printf("SERIES %s\n", res.Name)
	if len(res.Nodes) == 0 {
		fmt.Println("no nodes answered (archives need -archive-dir on the daemons)")
		return
	}
	for _, ns := range res.Nodes {
		printNodeSeries(ns.Node, ns.Points, ns.EarliestNano)
	}
	if res.Agg != "" {
		printNodeSeries("cluster/"+res.Agg, res.Aggregated, 0)
	}
}

// printNodeSeries renders one node's archived window as a stats line
// with a sparkline, noting the retention horizon when the archive has
// one.
func printNodeSeries(name string, points []dosas.SeriesPoint, earliestNano int64) {
	if len(points) == 0 {
		fmt.Printf("%-14s (no archived data)\n", name)
		return
	}
	min, max, sum := points[0].Value, points[0].Value, 0.0
	for _, p := range points {
		if p.Value < min {
			min = p.Value
		}
		if p.Value > max {
			max = p.Value
		}
		sum += p.Value
	}
	span := fmt.Sprintf("%s .. %s",
		time.Unix(0, points[0].UnixNano).Format("15:04:05"),
		time.Unix(0, points[len(points)-1].UnixNano).Format("15:04:05"))
	fmt.Printf("%-14s n=%-5d %s  min=%-8.3g mean=%-8.3g max=%-8.3g %s\n",
		name, len(points), span, min, sum/float64(len(points)), max,
		sparkline(dosas.Series{Points: points}, 32))
	if earliestNano > 0 {
		fmt.Printf("%-14s history reaches back to %s\n",
			"", time.Unix(0, earliestNano).Format("2006-01-02 15:04:05"))
	}
}

// runReport answers dosasctl report: the stitched incident bundle —
// alert transitions, event timeline, and archived telemetry — as text
// or JSON.
func runReport(fs *dosas.FS, rest []string) {
	now := time.Now()
	var o dosas.ReportOptions
	asJSON := false
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case "-json":
			asJSON = true
		case "-alert":
			o.Alert = optVal(rest, &i, reportUsage)
		case "-since":
			o.Since = now.Add(-optDur(rest, &i, reportUsage))
		case "-until":
			o.Until = now.Add(-optDur(rest, &i, reportUsage))
		case "-step":
			o.Step = optDur(rest, &i, reportUsage)
		case "-series":
			o.Series = strings.Split(optVal(rest, &i, reportUsage), ",")
		default:
			log.Fatalf("unknown report option %q\n%s", rest[i], reportUsage)
		}
	}
	rep, err := fs.Report(o)
	if err != nil {
		log.Fatal(err)
	}
	if asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Print(dosas.FormatIncidentReport(rep))
}
