package dosas_test

// Acceptance tests for the durable telemetry archive plane: range
// queries answered from on-disk chunk files must span a cluster
// restart (pre-crash samples intact), sweep the wire with the same
// skip-unreachable discipline as the other observability sweeps, and
// stitch into a deterministic, golden-tested incident report.

import (
	"encoding/json"
	"testing"
	"time"

	"dosas"
)

// waitArchived polls until the archives answer a range query for
// series with at least min points, or the deadline passes. nodes,
// when given, names the nodes that must reach min (series like
// queue.depth exist only on storage nodes); empty means every swept
// node.
func waitArchived(t *testing.T, c *dosas.Cluster, series string, min int, nodes ...string) dosas.QueryResult {
	t.Helper()
	must := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		must[n] = true
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		res, err := c.Query(dosas.RangeQuery{Name: series})
		if err != nil {
			t.Fatal(err)
		}
		enough := len(res.Nodes) > 0
		for _, ns := range res.Nodes {
			if len(must) > 0 && !must[ns.Node] {
				continue
			}
			if len(ns.Points) < min {
				enough = false
			}
		}
		if enough {
			return res
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("archives never accumulated %d points of %s", min, series)
	return dosas.QueryResult{}
}

// The tentpole acceptance check: a range query spans a cluster restart.
// Samples archived by the first incarnation must come back from the
// second one's query plane, continuous with its fresh samples.
func TestQuerySpansRestart(t *testing.T) {
	opts := dosas.Options{
		DataServers:   2,
		TelemetryTick: 2 * time.Millisecond,
		ArchiveDir:    t.TempDir(),
		DataDir:       t.TempDir(),
	}
	c, err := dosas.StartCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := c.Connect(dosas.DOSAS)
	if err != nil {
		c.Close()
		t.Fatal(err)
	}
	writeTestFile(t, fs, "restart.bin", 1<<20)
	waitArchived(t, c, "queue.depth", 10, "data-0", "data-1")
	fs.Close()
	c.Close() // crash boundary: flush and seal the first incarnation
	restart := time.Now()

	c2 := startCluster(t, opts)
	// The pre-crash history alone satisfies a point count, so poll
	// until fresh post-restart samples join it.
	var res dosas.QueryResult
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		r, err := c2.Query(dosas.RangeQuery{Name: "queue.depth"})
		if err != nil {
			t.Fatal(err)
		}
		fresh := 0
		for _, ns := range r.Nodes {
			for _, p := range ns.Points {
				if p.UnixNano > restart.UnixNano() {
					fresh++
					break
				}
			}
		}
		if fresh >= 2 {
			res = r
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	if len(res.Nodes) != 3 { // meta + 2 data nodes
		t.Fatalf("restarted archives never produced fresh samples; swept %d nodes, want 3", len(res.Nodes))
	}
	for _, ns := range res.Nodes {
		if ns.Node == "meta" {
			continue // meta has no queue.depth probe
		}
		var before, after int
		for i, p := range ns.Points {
			if i > 0 && p.UnixNano < ns.Points[i-1].UnixNano {
				t.Fatalf("%s: points not in time order at %d", ns.Node, i)
			}
			if p.UnixNano < restart.UnixNano() {
				before++
			} else {
				after++
			}
		}
		if before == 0 {
			t.Errorf("%s: no pre-restart samples survived (%d points total)", ns.Node, len(ns.Points))
		}
		if after == 0 {
			t.Errorf("%s: no post-restart samples archived", ns.Node)
		}
	}
}

// Step reduction and cross-node aggregation: a stepped query yields
// epoch-aligned buckets, and each aggregation function merges the
// per-node series per its definition.
func TestQueryStepAndAggregate(t *testing.T) {
	c := startCluster(t, dosas.Options{
		DataServers:   2,
		TelemetryTick: 2 * time.Millisecond,
		ArchiveDir:    t.TempDir(),
	})
	waitArchived(t, c, "runtime.goroutines", 20)

	step := 50 * time.Millisecond
	res, err := c.Query(dosas.RangeQuery{Name: "runtime.goroutines", Step: step, Agg: "sum"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aggregated) == 0 {
		t.Fatal("aggregated series empty")
	}
	for _, p := range res.Aggregated {
		if p.UnixNano%int64(step) != 0 {
			t.Fatalf("bucket %d not aligned to step", p.UnixNano)
		}
	}
	// Every node runs at least one goroutine, so the cluster sum must
	// strictly exceed any single node's value in a shared bucket.
	maxRes, err := c.Query(dosas.RangeQuery{Name: "runtime.goroutines", Step: step, Agg: "max"})
	if err != nil {
		t.Fatal(err)
	}
	maxAt := map[int64]float64{}
	for _, p := range maxRes.Aggregated {
		maxAt[p.UnixNano] = p.Value
	}
	for _, p := range res.Aggregated {
		if m, ok := maxAt[p.UnixNano]; ok && p.Value <= m {
			t.Fatalf("sum %v at %d not above per-node max %v (3 nodes reporting)", p.Value, p.UnixNano, m)
		}
	}

	// Node restriction keeps the sweep to one archive.
	one, err := c.Query(dosas.RangeQuery{Name: "runtime.goroutines", Node: "data-1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Nodes) != 1 || one.Nodes[0].Node != "data-1" {
		t.Fatalf("node-restricted query swept %+v", one.Nodes)
	}

	// Unknown aggregation is rejected up front.
	if _, err := c.Query(dosas.RangeQuery{Name: "x", Agg: "median"}); err == nil {
		t.Fatal("unknown aggregation accepted")
	}
}

// The wire sweep skips unreachable nodes deterministically: a dead
// address in the data-server table costs that node's series, nothing
// else.
func TestFSQuerySkipsUnreachableNodes(t *testing.T) {
	c := startCluster(t, dosas.Options{
		DataServers:   1,
		TCP:           true,
		TelemetryTick: 2 * time.Millisecond,
		ArchiveDir:    t.TempDir(),
	})
	waitArchived(t, c, "runtime.goroutines", 5)
	fs, err := dosas.Connect(dosas.ClientOptions{
		MetaAddr:  c.MetaAddr(),
		DataAddrs: []string{c.DataAddrs()[0], deadAddr(t)},
		Scheme:    dosas.DOSAS,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Close)

	res, err := fs.Query(dosas.RangeQuery{Name: "runtime.goroutines", Step: 10 * time.Millisecond, Agg: "avg"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("sweep returned %d nodes, want 2 (meta + live data node)", len(res.Nodes))
	}
	for _, ns := range res.Nodes {
		if ns.Node == "data-1" {
			t.Fatal("dead node present in sweep")
		}
		if len(ns.Points) == 0 {
			t.Errorf("%s: no archived points over the wire", ns.Node)
		}
		if ns.EarliestNano == 0 {
			t.Errorf("%s: no retention horizon reported", ns.Node)
		}
	}
	if len(res.Aggregated) == 0 {
		t.Fatal("aggregation over partial sweep empty")
	}
}

// reportFixture builds the canned incident inputs the golden test and
// the JSON round-trip share: a firing noisy-neighbor alert naming its
// aggressor tenant, a second pending alert, events inside and outside
// the window, and archived series served by a query double.
func reportFixture() (dosas.ReportOptions, []dosas.Alert, []dosas.Event, func(dosas.RangeQuery) (dosas.QueryResult, error)) {
	base := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	fired := base.Add(10 * time.Second)
	now := base.Add(30 * time.Second)

	alerts := []dosas.Alert{
		{Rule: "queue-depth-high", Series: "queue.depth", State: dosas.AlertPending,
			Severity: "warn", Node: "data-1", Value: 12, Detail: "queue deep",
			SinceUnixNano: base.Add(20 * time.Second).UnixNano()},
		{Rule: "noisy-neighbor", Series: "tenant.wait.share", State: dosas.AlertFiring,
			Severity: "page", Node: "data-0", Value: 0.82, Detail: "tenant hog dominates queue wait",
			SinceUnixNano: fired.UnixNano(), FiredUnixNano: fired.UnixNano()},
		{Rule: "latency-slo", Series: "read.p99", State: dosas.AlertInactive,
			Severity: "page", Node: "data-0"}, // inactive: excluded
	}
	events := []dosas.Event{
		{Seq: 1, UnixNano: base.Add(-time.Minute).UnixNano(), Level: "info",
			Node: "data-0", Sub: "runtime", Msg: "before the window"}, // clipped
		{Seq: 2, UnixNano: fired.UnixNano(), Level: "warn", Node: "data-0", Sub: "slo",
			Msg: "alert firing", Fields: []dosas.EventField{
				{K: "rule", V: "noisy-neighbor"}, {K: "tenant", V: "hog"}, {K: "share", V: "0.82"}}},
		{Seq: 3, UnixNano: base.Add(12 * time.Second).UnixNano(), Level: "info",
			Node: "data-0", Sub: "runtime", Msg: "request bounced"},
	}
	series := map[string][]float64{
		"queue.depth":       {1, 5, 9, 12},
		"tenant.wait.share": {0.1, 0.4, 0.8, 0.82},
	}
	query := func(q dosas.RangeQuery) (dosas.QueryResult, error) {
		vals := series[q.Name]
		points := make([]dosas.SeriesPoint, len(vals))
		for i, v := range vals {
			points[i] = dosas.SeriesPoint{UnixNano: fired.Add(time.Duration(i) * time.Second).UnixNano(), Value: v}
		}
		return dosas.QueryResult{Name: q.Name, Nodes: []dosas.NodeSeries{
			{Node: "meta"},
			{Node: "data-0", Points: points, EarliestNano: base.UnixNano()},
		}}, nil
	}
	return dosas.ReportOptions{Alert: "noisy-neighbor", Now: now}, alerts, events, query
}

// The incident-report formatter is golden-tested: canned inputs shaped
// like a noisy-neighbor storm must render byte-for-byte this bundle —
// naming the aggressor tenant, the firing alert, and the telemetry
// window.
func TestIncidentReportGolden(t *testing.T) {
	opts, alerts, events, query := reportFixture()
	rep, err := dosas.BuildIncidentReport(opts, alerts, events, query)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `INCIDENT REPORT  rule=noisy-neighbor
window  2026-08-08 09:59:40.000 .. 2026-08-08 10:01:00.000 (1m20s)

ALERTS
NODE     RULE                 STATE     SEV   VALUE      DETAIL
data-0   noisy-neighbor       FIRING    page  0.82       tenant hog dominates queue wait
data-1   queue-depth-high     PENDING   warn  12         queue deep

EVENTS (2)
10:00:10.000 WARN  data-0/slo alert firing rule=noisy-neighbor tenant=hog share=0.82
10:00:12.000 INFO  data-0/runtime request bounced

TELEMETRY queue.depth
  meta     (no archived data)
  data-0   n=4    min=1        mean=6.75     max=12       ▁▃▆█

TELEMETRY tenant.wait.share
  meta     (no archived data)
  data-0   n=4    min=0.1      mean=0.53     max=0.82     ▁▄▇█
`
	got := dosas.FormatIncidentReport(rep)
	if got != golden {
		t.Fatalf("report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

// The JSON form round-trips with the same contents the text shows.
func TestIncidentReportJSON(t *testing.T) {
	opts, alerts, events, query := reportFixture()
	rep, err := dosas.BuildIncidentReport(opts, alerts, events, query)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back dosas.IncidentReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rule != "noisy-neighbor" || len(back.Alerts) != 2 || len(back.Events) != 2 || len(back.Series) != 2 {
		t.Fatalf("round-trip = %+v", back)
	}
	if back.Alerts[0].State != dosas.AlertFiring || back.Alerts[0].Node != "data-0" {
		t.Fatalf("focus alert not first: %+v", back.Alerts[0])
	}
	if back.Events[0].Fields[1].V != "hog" {
		t.Fatalf("aggressor tenant lost: %+v", back.Events[0])
	}

	// A rule with no recorded transitions is an error, not an empty
	// report.
	if _, err := dosas.BuildIncidentReport(dosas.ReportOptions{Alert: "no-such-rule"}, alerts, events, query); err == nil {
		t.Fatal("unknown rule accepted")
	}
}

// An explicit-window report (no focus rule) clips events and includes
// every non-inactive alert.
func TestIncidentReportExplicitWindow(t *testing.T) {
	_, alerts, events, query := reportFixture()
	base := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	rep, err := dosas.BuildIncidentReport(dosas.ReportOptions{
		Since: base.Add(11 * time.Second), Until: base.Add(20 * time.Second),
		Series: []string{"queue.depth"},
	}, alerts, events, query)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rule != "" || len(rep.Alerts) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Events) != 1 || rep.Events[0].Msg != "request bounced" {
		t.Fatalf("window clipping wrong: %+v", rep.Events)
	}
	if len(rep.Series) != 1 || rep.Series[0].Name != "queue.depth" {
		t.Fatalf("series override ignored: %+v", rep.Series)
	}
}

// A live cluster report assembles end to end through Cluster.Report.
func TestClusterReportLive(t *testing.T) {
	c := startCluster(t, dosas.Options{
		DataServers:   1,
		TelemetryTick: 2 * time.Millisecond,
		ArchiveDir:    t.TempDir(),
	})
	waitArchived(t, c, "runtime.goroutines", 5)
	rep, err := c.Report(dosas.ReportOptions{
		Since:  time.Now().Add(-time.Minute),
		Series: []string{"runtime.goroutines"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 1 || len(rep.Series[0].Nodes) != 2 {
		t.Fatalf("live report series = %+v", rep.Series)
	}
	for _, ns := range rep.Series[0].Nodes {
		if len(ns.Points) == 0 {
			t.Errorf("%s: live report has no archived points", ns.Node)
		}
	}
	out := dosas.FormatIncidentReport(rep)
	if out == "" {
		t.Fatal("empty formatted report")
	}
}
