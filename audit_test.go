package dosas_test

import (
	"strings"
	"testing"

	"dosas"
)

// TestDecisionLogEndToEnd is the tentpole acceptance path: a dynamic
// cluster records every solver invocation, the log is fetchable over the
// wire, renders as a human-readable rationale, and replays under
// alternative policies with per-request regret.
func TestDecisionLogEndToEnd(t *testing.T) {
	c := startCluster(t, dosas.Options{DataServers: 2, Policy: dosas.Dynamic, Solver: "exhaustive"})
	fs := connect(t, c, dosas.DOSAS)
	f := writeTestFile(t, fs, "audit/data", 300_000)

	res, err := f.ReadEx("sum8", nil, 0, f.Size())
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == 0 {
		t.Fatal("result carries no TraceID")
	}

	// In-process view: every stripe-holding node decided something.
	local := c.DecisionLogAll()
	if len(local) == 0 {
		t.Fatal("dynamic cluster recorded no decisions")
	}
	for _, r := range local {
		if r.Solver != "exhaustive" {
			t.Fatalf("Options.Solver not plumbed: record solver %q", r.Solver)
		}
	}

	// Wire view: the sweep fetches the same decisions, stamped per node.
	records, dropped, err := fs.DecisionLog(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(local) || dropped != 0 {
		t.Fatalf("wire sweep: %d records (dropped %d), local %d", len(records), dropped, len(local))
	}
	nc := records[0].Newcomer()
	if nc == nil || nc.Op != "sum8" || nc.PredActive <= 0 {
		t.Fatalf("first decision's newcomer: %+v", nc)
	}
	if records[0].Outcome == nil {
		t.Fatal("completed request left its decision unresolved")
	}

	// The trace filter narrows to this request's decisions only.
	traced, _, err := fs.DecisionLog(0, res.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) == 0 {
		t.Fatal("trace filter lost the request's decisions")
	}
	for _, r := range traced {
		if nc := r.Newcomer(); nc != nil && nc.TraceID != res.TraceID {
			t.Fatalf("foreign trace in filtered log: %+v", nc)
		}
	}

	// Rendering: the rationale names the op, the verdict and the costs.
	text := dosas.FormatDecisions(records)
	for _, want := range []string{"sum8", "solver=exhaustive", "RUN-ACTIVE", "x=", "margin="} {
		if !strings.Contains(text, want) {
			t.Errorf("explain output lacks %q:\n%s", want, text)
		}
	}

	// Counterfactuals: every policy replays, the recorded log is a fixed
	// point, and regret bookkeeping holds.
	for _, policy := range dosas.ReplayPolicies() {
		rep, err := dosas.ReplayDecisions(records, policy, dosas.ReplayOverrides{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Decisions == 0 {
			t.Fatalf("%s: no decisions replayed", policy)
		}
		if rep.RegretSeconds < 0 || rep.TotalSeconds < rep.OracleSeconds-1e-9 {
			t.Fatalf("%s: regret bookkeeping broken: %+v", policy, rep)
		}
		if policy == "recorded" && rep.AgreementRate != 1 {
			t.Fatalf("recorded policy is not a fixed point: %+v", rep)
		}
	}

	if _, err := dosas.ReplayDecisions(records, "bogus", dosas.ReplayOverrides{}); err == nil {
		t.Error("unknown replay policy accepted")
	}
	if _, err := c.DecisionLog(99); err == nil {
		t.Error("out-of-range node accepted")
	}
}

// TestClusterRejectsUnknownSolver: Options.Solver failures surface at
// startup, not as silent fallback.
func TestClusterRejectsUnknownSolver(t *testing.T) {
	if _, err := dosas.StartCluster(dosas.Options{Solver: "nope"}); err == nil ||
		!strings.Contains(err.Error(), "unknown solver") {
		t.Fatalf("err = %v, want unknown-solver", err)
	}
}
