// Package eventlog is the structured event log every DOSAS daemon
// writes operational events to: leveled, key-value, JSON-line records
// kept in a bounded in-memory ring (tailed over the wire by dosasctl
// events) and optionally mirrored to a file sink and a human-readable
// writer. It replaces ad-hoc log.Printf calls so that "what happened on
// node 3" has one queryable answer.
//
// The ring is a fixed-capacity overwrite buffer like the trace and
// telemetry rings: appends never block and never allocate beyond the
// ring, and a cumulative Dropped counter records how many events were
// overwritten before anyone fetched them. Every event carries a
// node-local sequence number so remote tails can resume from a cursor
// (Snapshot(sinceSeq, ...)) without re-reading history.
package eventlog

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Level orders event severities. The zero value is Debug, so a zero
// MinLevel keeps everything.
type Level uint8

// Severity levels, least to most severe.
const (
	Debug Level = iota
	Info
	Warn
	Error
)

var levelNames = [...]string{"debug", "info", "warn", "error"}

// String renders the canonical lower-case level name.
func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// ParseLevel is the inverse of String, accepting any case.
func ParseLevel(s string) (Level, error) {
	for i, name := range levelNames {
		if strings.EqualFold(s, name) {
			return Level(i), nil
		}
	}
	return Debug, fmt.Errorf("eventlog: unknown level %q", s)
}

// Field is one key-value pair attached to an event. Fields are a slice,
// not a map, so their order is the order the caller gave them and
// encoding is deterministic.
type Field struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Event is one structured log record.
type Event struct {
	// Seq is the node-local sequence number, monotonically increasing
	// from 1. Gaps between consecutively fetched events mean the ring
	// overwrote the missing ones.
	Seq uint64 `json:"seq"`
	// UnixNano is the wall-clock time the event was logged.
	UnixNano int64 `json:"t"`
	// Level is the canonical level name ("debug".."error").
	Level string `json:"level"`
	// Node names the emitting node ("data-0", "meta").
	Node string `json:"node,omitempty"`
	// Sub is the emitting subsystem ("runtime", "slo", "journal").
	Sub string `json:"sub"`
	// Msg is the human-readable message, stable across occurrences so
	// it can be grouped; variation goes in Fields.
	Msg string `json:"msg"`
	// Fields carries the structured context, in logging order.
	Fields []Field `json:"fields,omitempty"`
}

// Config configures a Log. The zero value is usable: a 1024-event ring
// keeping Debug and up, with no node name, mirror, or file sink.
type Config struct {
	// Node names the emitting node on every event.
	Node string
	// Capacity bounds the in-memory ring (default 1024).
	Capacity int
	// MinLevel drops events below this level before they reach the
	// ring, mirror, or sink.
	MinLevel Level
	// Mirror, when set, receives every retained event as one
	// human-readable line (daemons point it at stderr to keep their
	// console output).
	Mirror io.Writer
	// Path, when set, appends every retained event as one JSON line to
	// this file (the optional durable sink).
	Path string
	// MaxBytes caps the file sink's on-disk footprint across the live
	// file and its one rotated predecessor (Path + ".1"). When the live
	// file reaches half the cap it is renamed onto the predecessor —
	// dropping the oldest half of the retained history, like the flight
	// recorder's DirMaxBytes pruning — and a fresh file is started, so
	// the sink never grows without bound. 0 takes DefaultSinkMaxBytes;
	// negative means unbounded (the pre-rotation behavior).
	MaxBytes int64
	// Now overrides the clock for tests.
	Now func() time.Time
}

// DefaultSinkMaxBytes bounds the JSONL file sink at 64 MiB — roughly a
// million events across the live file and its rotated predecessor.
const DefaultSinkMaxBytes = 64 << 20

// Log is a leveled, bounded, concurrency-safe event log. A nil *Log is
// a valid no-op: every method works and logging is discarded, so
// components can take an optional log without nil checks.
type Log struct {
	mu      sync.Mutex
	cfg     Config
	ring    []Event
	next    int
	full    bool
	seq     uint64
	dropped uint64
	now     func() time.Time

	// The file sink has its own lock so a slow disk stalls only other
	// file writers, never the ring or the mirror.
	fileMu   sync.Mutex
	file     *os.File
	fileSize int64
	maxBytes int64
}

// New creates a Log. It fails only when Config.Path cannot be opened
// for append.
func New(cfg Config) (*Log, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	l := &Log{cfg: cfg, ring: make([]Event, cfg.Capacity), now: now}
	switch {
	case cfg.MaxBytes == 0:
		l.maxBytes = DefaultSinkMaxBytes
	case cfg.MaxBytes < 0:
		l.maxBytes = 0 // unbounded
	default:
		l.maxBytes = cfg.MaxBytes
	}
	if cfg.Path != "" {
		f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("eventlog: open sink: %w", err)
		}
		l.file = f
		if info, err := f.Stat(); err == nil {
			l.fileSize = info.Size()
		}
	}
	return l, nil
}

// Close flushes and closes the file sink, if any.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	if l.file == nil {
		return nil
	}
	err := l.file.Close()
	l.file = nil
	return err
}

// Debug logs at Debug level. kv is alternating keys and values; a
// trailing key without a value gets "".
func (l *Log) Debug(sub, msg string, kv ...string) { l.emit(Debug, sub, msg, kv) }

// Info logs at Info level.
func (l *Log) Info(sub, msg string, kv ...string) { l.emit(Info, sub, msg, kv) }

// Warn logs at Warn level.
func (l *Log) Warn(sub, msg string, kv ...string) { l.emit(Warn, sub, msg, kv) }

// Error logs at Error level.
func (l *Log) Error(sub, msg string, kv ...string) { l.emit(Error, sub, msg, kv) }

func (l *Log) emit(level Level, sub, msg string, kv []string) {
	if l == nil || level < l.cfg.MinLevel {
		return
	}
	var fields []Field
	for i := 0; i < len(kv); i += 2 {
		f := Field{K: kv[i]}
		if i+1 < len(kv) {
			f.V = kv[i+1]
		}
		fields = append(fields, f)
	}
	l.mu.Lock()
	l.seq++
	ev := Event{
		Seq:      l.seq,
		UnixNano: l.now().UnixNano(),
		Level:    level.String(),
		Node:     l.cfg.Node,
		Sub:      sub,
		Msg:      msg,
		Fields:   fields,
	}
	if l.full {
		l.dropped++
	}
	l.ring[l.next] = ev
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	mirror := l.cfg.Mirror
	l.mu.Unlock()
	// Sinks are written outside the ring lock: a slow disk or pipe must
	// not stall concurrent loggers. Per-sink interleaving is acceptable —
	// the ring is the ordered record.
	if mirror != nil {
		io.WriteString(mirror, FormatEvent(ev)+"\n")
	}
	l.writeSink(ev)
}

// writeSink appends one event to the JSONL file, rotating first when
// the live file has reached half the byte budget: the previous rotated
// file (the oldest half of retained history) is dropped, the live file
// becomes the rotated one, and a fresh live file is started — so live
// plus predecessor never exceed the budget while the newest events are
// always retained.
func (l *Log) writeSink(ev Event) {
	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	if l.file == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	b = append(b, '\n')
	if l.maxBytes > 0 && l.fileSize > 0 && l.fileSize+int64(len(b)) > l.maxBytes/2 {
		l.file.Close()
		prev := l.cfg.Path + ".1"
		os.Remove(prev)
		os.Rename(l.cfg.Path, prev)
		f, err := os.OpenFile(l.cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			l.file = nil
			return
		}
		l.file = f
		l.fileSize = 0
	}
	if n, err := l.file.Write(b); err == nil {
		l.fileSize += int64(n)
	}
}

// Snapshot returns retained events with Seq > sinceSeq and level >= min,
// oldest first, at most limit (limit <= 0 means all). Use NextSeq-style
// cursors from the last returned Seq to tail incrementally.
func (l *Log) Snapshot(sinceSeq uint64, min Level, limit int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.ring)
	}
	out := make([]Event, 0, n)
	start := 0
	if l.full {
		start = l.next
	}
	for i := 0; i < n; i++ {
		ev := l.ring[(start+i)%len(l.ring)]
		if ev.Seq <= sinceSeq {
			continue
		}
		if lv, err := ParseLevel(ev.Level); err == nil && lv < min {
			continue
		}
		out = append(out, ev)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// NextSeq returns the sequence number the next event will get. Passing
// NextSeq()-1 as a Snapshot cursor yields only events logged afterwards.
func (l *Log) NextSeq() uint64 {
	if l == nil {
		return 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq + 1
}

// Dropped reports how many events the ring has overwritten since the
// log was created.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// EncodeEvents marshals events as the canonical JSON array carried by
// EventFetchResp.
func EncodeEvents(events []Event) ([]byte, error) {
	if len(events) == 0 {
		return []byte("[]"), nil
	}
	return json.Marshal(events)
}

// DecodeEvents is the inverse of EncodeEvents.
func DecodeEvents(data []byte) ([]Event, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var out []Event
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("eventlog: decode events: %w", err)
	}
	return out, nil
}

// FormatEvent renders one event as the human-readable line dosasctl
// events prints and Mirror writers receive:
//
//	15:04:05.000 WARN  data-0/slo rule pending rule=bounce-burn value=0.12
func FormatEvent(ev Event) string {
	var b strings.Builder
	b.WriteString(time.Unix(0, ev.UnixNano).Format("15:04:05.000"))
	fmt.Fprintf(&b, " %-5s ", strings.ToUpper(ev.Level))
	if ev.Node != "" {
		b.WriteString(ev.Node)
		b.WriteByte('/')
	}
	b.WriteString(ev.Sub)
	b.WriteByte(' ')
	b.WriteString(ev.Msg)
	for _, f := range ev.Fields {
		fmt.Fprintf(&b, " %s=%s", f.K, f.V)
	}
	return b.String()
}

// Merge interleaves per-node event slices into one timeline ordered by
// time, with ties broken by node then sequence — the same convention as
// the trace timeline and decision-log merges.
func Merge(byNode ...[]Event) []Event {
	var out []Event
	for _, evs := range byNode {
		out = append(out, evs...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].UnixNano != out[j].UnixNano {
			return out[i].UnixNano < out[j].UnixNano
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
