package eventlog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock yields deterministic, strictly increasing timestamps.
func fixedClock() func() time.Time {
	t := time.Unix(1000, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestNilLogIsNoOp(t *testing.T) {
	var l *Log
	l.Info("sub", "msg", "k", "v")
	l.Error("sub", "boom")
	if got := l.Snapshot(0, Debug, 0); got != nil {
		t.Fatalf("nil Snapshot = %v, want nil", got)
	}
	if l.Dropped() != 0 || l.NextSeq() != 1 {
		t.Fatal("nil counters wrong")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestRingBoundAndDropped(t *testing.T) {
	l, err := New(Config{Node: "data-0", Capacity: 4, Now: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Info("test", "event")
	}
	got := l.Snapshot(0, Debug, 0)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	// Oldest first, and only the last 4 survive.
	for i, ev := range got {
		if want := uint64(7 + i); ev.Seq != want {
			t.Errorf("event %d Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if l.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", l.Dropped())
	}
	if l.NextSeq() != 11 {
		t.Errorf("NextSeq = %d, want 11", l.NextSeq())
	}
}

func TestLevelFilterAndCursor(t *testing.T) {
	l, err := New(Config{Capacity: 16, MinLevel: Info, Now: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("s", "dropped before ring") // below MinLevel
	l.Info("s", "a")
	l.Warn("s", "b")
	l.Error("s", "c")
	if got := l.Snapshot(0, Debug, 0); len(got) != 3 {
		t.Fatalf("all levels: len = %d, want 3", len(got))
	}
	warnUp := l.Snapshot(0, Warn, 0)
	if len(warnUp) != 2 || warnUp[0].Msg != "b" || warnUp[1].Msg != "c" {
		t.Fatalf("warn+ = %+v", warnUp)
	}
	// Cursor: resume after the first retained event.
	first := l.Snapshot(0, Debug, 0)[0]
	rest := l.Snapshot(first.Seq, Debug, 0)
	if len(rest) != 2 || rest[0].Msg != "b" {
		t.Fatalf("cursor resume = %+v", rest)
	}
	// Limit keeps the newest events.
	last := l.Snapshot(0, Debug, 1)
	if len(last) != 1 || last[0].Msg != "c" {
		t.Fatalf("limit = %+v", last)
	}
}

func TestFieldsOrderAndCodec(t *testing.T) {
	l, err := New(Config{Capacity: 4, Now: fixedClock(), Node: "meta"})
	if err != nil {
		t.Fatal(err)
	}
	l.Warn("slo", "rule pending", "rule", "bounce-burn", "value", "0.12", "odd")
	ev := l.Snapshot(0, Debug, 0)[0]
	if len(ev.Fields) != 3 || ev.Fields[0].K != "rule" || ev.Fields[1].V != "0.12" ||
		ev.Fields[2].K != "odd" || ev.Fields[2].V != "" {
		t.Fatalf("fields = %+v", ev.Fields)
	}
	enc, err := EncodeEvents([]Event{ev})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeEvents(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 1 || dec[0].Seq != ev.Seq || dec[0].Fields[0].V != "bounce-burn" {
		t.Fatalf("decode = %+v", dec)
	}
	line := FormatEvent(ev)
	for _, want := range []string{"WARN", "meta/slo", "rule pending", "rule=bounce-burn"} {
		if !strings.Contains(line, want) {
			t.Errorf("FormatEvent %q missing %q", line, want)
		}
	}
	// Empty set round-trips as the canonical empty array.
	enc, _ = EncodeEvents(nil)
	if string(enc) != "[]" {
		t.Errorf("empty encode = %q", enc)
	}
	if evs, err := DecodeEvents(nil); err != nil || evs != nil {
		t.Errorf("empty decode = %v, %v", evs, err)
	}
}

func TestFileSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	var mirror strings.Builder
	l, err := New(Config{Capacity: 8, Path: path, Mirror: &mirror, Now: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	l.Info("boot", "listening", "addr", "127.0.0.1:9")
	l.Error("boot", "bind failed")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink lines = %d, want 2\n%s", len(lines), data)
	}
	evs, err := DecodeEvents([]byte("[" + strings.Join(lines, ",") + "]"))
	if err != nil {
		t.Fatalf("sink lines not JSON events: %v", err)
	}
	if evs[1].Level != "error" || evs[1].Msg != "bind failed" {
		t.Fatalf("sink event = %+v", evs[1])
	}
	if !strings.Contains(mirror.String(), "listening addr=127.0.0.1:9") {
		t.Errorf("mirror = %q", mirror.String())
	}
}

func TestParseLevel(t *testing.T) {
	for want, name := range map[Level]string{Debug: "debug", Info: "INFO", Warn: "Warn", Error: "error"} {
		got, err := ParseLevel(name)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseLevel("fatal"); err == nil {
		t.Error("ParseLevel(fatal) should fail")
	}
}

func TestMerge(t *testing.T) {
	a := []Event{{Seq: 1, UnixNano: 10, Node: "data-0"}, {Seq: 2, UnixNano: 30, Node: "data-0"}}
	b := []Event{{Seq: 1, UnixNano: 20, Node: "data-1"}, {Seq: 2, UnixNano: 10, Node: "data-1"}}
	got := Merge(a, b)
	order := make([]string, len(got))
	for i, ev := range got {
		order[i] = ev.Node
	}
	want := []string{"data-0", "data-1", "data-1", "data-0"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("merge order = %v, want %v", order, want)
		}
	}
}

func TestConcurrentLogging(t *testing.T) {
	l, err := New(Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Info("stress", "event", "g", "x")
				l.Snapshot(0, Debug, 8)
			}
		}()
	}
	wg.Wait()
	if l.NextSeq() != 801 {
		t.Fatalf("NextSeq = %d, want 801", l.NextSeq())
	}
	if l.Dropped() != 800-64 {
		t.Fatalf("Dropped = %d, want %d", l.Dropped(), 800-64)
	}
}

// The file sink rotates at half its byte budget, keeping at most the
// live file plus one predecessor — newest events always survive, total
// footprint stays under the cap.
func TestFileSinkRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	l, err := New(Config{Capacity: 8, Path: path, MaxBytes: 4 << 10, Now: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 100)
	for i := 0; i < 200; i++ {
		l.Info("spam", "filler", "i", fmt.Sprint(i), "pad", pad)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	live, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("rotation never happened: %v", err)
	}
	if total := len(live) + len(prev); total > 4<<10 {
		t.Fatalf("sink footprint %d exceeds 4KiB budget", total)
	}
	// The newest event must be the last line of the live file.
	lines := strings.Split(strings.TrimSpace(string(live)), "\n")
	if !strings.Contains(lines[len(lines)-1], `"v":"199"`) {
		t.Fatalf("newest event missing from live file: %q", lines[len(lines)-1])
	}
	// And the two files are contiguous: first line of live follows the
	// last line of the predecessor with no gap in the padded counter.
	prevLines := strings.Split(strings.TrimSpace(string(prev)), "\n")
	var a, b Event
	if err := json.Unmarshal([]byte(prevLines[len(prevLines)-1]), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[0]), &b); err != nil {
		t.Fatal(err)
	}
	if b.Seq != a.Seq+1 {
		t.Fatalf("rotation dropped events: ...%d | %d...", a.Seq, b.Seq)
	}
}

// A negative MaxBytes disables rotation entirely.
func TestFileSinkUnbounded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	l, err := New(Config{Capacity: 8, Path: path, MaxBytes: -1, Now: fixedClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		l.Info("spam", "filler", "pad", strings.Repeat("y", 200))
	}
	l.Close()
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatalf("unbounded sink rotated: %v", err)
	}
}
