// Package pprofserve starts the standard net/http/pprof debug endpoint
// for the DOSAS daemons. Profiling is opt-in (the daemons' -pprof-addr
// flag, empty by default) and meant for loopback use: the endpoint
// exposes goroutine dumps, heap profiles and symbol tables, so binding
// it to a public interface would leak internals of the storage node.
//
// The same mux carries the daemons' operational endpoints (notably the
// OpenMetrics exposition at /metrics) so one flag opens the whole debug
// plane.
package pprofserve

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Endpoint is one extra handler mounted on the debug mux next to the
// pprof handlers — e.g. {"/metrics", openmetrics.Handler(...)}.
type Endpoint struct {
	Path    string
	Handler http.Handler
}

// Serve binds addr (e.g. "127.0.0.1:6060"; empty port picks one) and
// serves the net/http/pprof handlers — plus any extra endpoints — on it
// from a background goroutine, returning the bound address. An empty
// addr is a no-op returning "". Non-loopback hosts are refused —
// profiling a remote node should go through an SSH tunnel, not an open
// port.
func Serve(addr string, extra ...Endpoint) (string, error) {
	if addr == "" {
		return "", nil
	}
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("pprofserve: bad address %q: %w", addr, err)
	}
	if !loopback(host) {
		return "", fmt.Errorf("pprofserve: refusing non-loopback address %q (profiles expose process internals; tunnel in instead)", addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("pprofserve: %w", err)
	}
	// A dedicated mux: the daemons must not inherit whatever else the
	// process registered on http.DefaultServeMux.
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extra {
		if e.Path == "" || e.Handler == nil {
			continue
		}
		mux.Handle(e.Path, e.Handler)
	}
	go http.Serve(ln, mux) //nolint:errcheck // dies with the process
	return ln.Addr().String(), nil
}

// loopback reports whether host names the local machine only.
func loopback(host string) bool {
	if strings.EqualFold(host, "localhost") {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}
