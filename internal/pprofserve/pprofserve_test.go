package pprofserve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEmptyAddrIsNoop(t *testing.T) {
	addr, err := Serve("")
	if err != nil || addr != "" {
		t.Fatalf("Serve(\"\") = %q, %v", addr, err)
	}
}

func TestServeRefusesNonLoopback(t *testing.T) {
	for _, addr := range []string{"0.0.0.0:0", "10.1.2.3:6060", "example.com:6060", "garbage"} {
		if got, err := Serve(addr); err == nil {
			t.Errorf("Serve(%q) = %q, want refusal", addr, got)
		}
	}
}

func TestServeServesPprofIndex(t *testing.T) {
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d, body %.120s", resp.StatusCode, body)
	}
}
