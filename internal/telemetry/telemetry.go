// Package telemetry turns the instantaneous signals the other layers
// already expose (metrics counters and gauges, queue occupancy, estimator
// state) into continuous per-node histories. Every DOSAS node — the
// metadata server, each storage node, and the client file system — runs a
// Sampler that ticks on a fixed interval and appends one point per
// registered probe into a fixed-capacity ring, so operators can see how
// contention, bounce rate, and estimator error evolve over a run instead
// of a single point-in-time snapshot. The package also defines the
// health-probe report types served over the wire and the slow-request
// flight recorder the client uses to journal diagnostic bundles.
package telemetry

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// Defaults for Sampler configuration.
const (
	// DefaultInterval is the sampler tick. At 10 Hz a probe set of ~8
	// series costs well under 0.1% of a core.
	DefaultInterval = 100 * time.Millisecond
	// DefaultCapacity retains one minute of history at DefaultInterval.
	DefaultCapacity = 600
)

// Point is one sample: the probe's value at a wall-clock instant. Mono
// is the monotonic offset (nanoseconds since the sampler started) of the
// same instant: wall time is what aligns archived windows across nodes,
// mono is what keeps one node's points ordered across a clock step. It
// is omitted from JSON when zero so pre-existing payloads round-trip.
type Point struct {
	UnixNano int64   `json:"t"`
	Value    float64 `json:"v"`
	Mono     int64   `json:"m,omitempty"`
}

// Sample is one named value from a tick, the unit handed to OnSamples
// listeners (the telemetry archive appends these to disk).
type Sample struct {
	Name  string
	Value float64
}

// Series is the retained history of one metric, oldest point first. It is
// the JSON payload unit of wire.SeriesFetchResp.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Last returns the most recent point (zero when the series is empty).
func (s Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// Max returns the largest value in the series (0 when empty).
func (s Series) Max() float64 {
	var max float64
	for i, p := range s.Points {
		if i == 0 || p.Value > max {
			max = p.Value
		}
	}
	return max
}

// EncodeSeries marshals series to the JSON array format used on the wire.
func EncodeSeries(series []Series) ([]byte, error) {
	if series == nil {
		series = []Series{}
	}
	return json.Marshal(series)
}

// DecodeSeries parses the JSON array format produced by EncodeSeries. An
// empty payload decodes to no series.
func DecodeSeries(b []byte) ([]Series, error) {
	if len(b) == 0 {
		return nil, nil
	}
	var series []Series
	if err := json.Unmarshal(b, &series); err != nil {
		return nil, err
	}
	return series, nil
}

// Downsample reduces points to one mean point per step bucket, stamped
// at the bucket start. Buckets are aligned to the Unix epoch, so two
// nodes downsampling the same window produce directly comparable
// grids. step <= 0 returns points unchanged.
func Downsample(points []Point, stepNano int64) []Point {
	if stepNano <= 0 || len(points) == 0 {
		return points
	}
	align := func(t int64) int64 {
		b := t - t%stepNano
		if t < 0 && t%stepNano != 0 {
			b -= stepNano
		}
		return b
	}
	var out []Point
	var bucket int64
	var sum float64
	var n int
	flush := func() {
		if n > 0 {
			out = append(out, Point{UnixNano: bucket, Value: sum / float64(n)})
		}
		sum, n = 0, 0
	}
	for _, p := range points {
		b := align(p.UnixNano)
		if n > 0 && b != bucket {
			flush()
		}
		bucket = b
		sum += p.Value
		n++
	}
	flush()
	return out
}

// Probe reads one instantaneous value. Probes run on the sampler
// goroutine and must be cheap and non-blocking (atomic loads, short
// mutexed snapshots).
type Probe func() float64

// Config parameterises a Sampler.
type Config struct {
	// Interval between ticks; 0 takes DefaultInterval.
	Interval time.Duration
	// Capacity is the per-series ring size; 0 takes DefaultCapacity.
	Capacity int
	// Now overrides the clock, for tests.
	Now func() time.Time
}

// Sampler records registered probes into per-metric rings on a fixed
// tick. A nil *Sampler is valid and records nothing, so call sites need
// no nil checks. Start launches the tick loop; tests drive Tick directly.
type Sampler struct {
	interval time.Duration
	capacity int
	now      func() time.Time

	epoch time.Time

	mu              sync.Mutex
	probes          []probeEntry
	rings           map[string]*ring
	ticks           uint64
	dropped         uint64
	listeners       []func()
	sampleListeners []func(wallNano, monoNano int64, samples []Sample)

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

type probeEntry struct {
	name  string
	probe Probe
}

// ring is a fixed-capacity point buffer.
type ring struct {
	pts  []Point
	next int
	full bool
}

func (r *ring) add(p Point) {
	r.pts[r.next] = p
	r.next++
	if r.next == len(r.pts) {
		r.next = 0
		r.full = true
	}
}

// snapshot returns retained points oldest-first, filtered to t >= since.
func (r *ring) snapshot(since int64) []Point {
	var out []Point
	emit := func(p Point) {
		if p.UnixNano >= since {
			out = append(out, p)
		}
	}
	if r.full {
		for _, p := range r.pts[r.next:] {
			emit(p)
		}
	}
	for _, p := range r.pts[:r.next] {
		emit(p)
	}
	return out
}

// NewSampler returns a sampler; Register probes, then Start it.
func NewSampler(cfg Config) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Sampler{
		interval: cfg.Interval,
		capacity: cfg.Capacity,
		now:      cfg.Now,
		epoch:    cfg.Now(),
		rings:    make(map[string]*ring),
		stop:     make(chan struct{}),
	}
}

// Interval returns the sampler's tick interval (0 on a nil sampler).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// Register adds a named probe. Registering an existing name replaces its
// probe but keeps the recorded history. Safe before or after Start.
func (s *Sampler) Register(name string, p Probe) {
	if s == nil || p == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.probes {
		if s.probes[i].name == name {
			s.probes[i].probe = p
			return
		}
	}
	s.probes = append(s.probes, probeEntry{name: name, probe: p})
	if _, ok := s.rings[name]; !ok {
		s.rings[name] = &ring{pts: make([]Point, s.capacity)}
	}
}

// Start launches the tick loop. Safe on nil and idempotent.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.startOnce.Do(func() {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// Schedule ticks on absolute deadlines (start + n*interval)
			// rather than a free-running Ticker: a Tick that runs long
			// shortens the following sleep instead of pushing every later
			// tick back, so archived sample times stay on the same grid
			// across nodes under load. When a tick overruns by more than a
			// whole interval, skip forward on the grid rather than firing
			// a catch-up burst.
			next := time.Now().Add(s.interval)
			t := time.NewTimer(s.interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.Tick()
					next = next.Add(s.interval)
					d := time.Until(next)
					if d <= 0 {
						behind := (-d)/s.interval + 1
						next = next.Add(behind * s.interval)
						if d = time.Until(next); d <= 0 {
							d = time.Nanosecond
						}
					}
					t.Reset(d)
				}
			}
		}()
	})
}

// Close stops the tick loop. Safe on nil, idempotent, and fine to call on
// a sampler that was never started.
func (s *Sampler) Close() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// Tick samples every registered probe once. The tick loop calls it on
// the interval; tests call it directly for determinism.
func (s *Sampler) Tick() {
	if s == nil {
		return
	}
	s.mu.Lock()
	probes := make([]probeEntry, len(s.probes))
	copy(probes, s.probes)
	s.mu.Unlock()
	// Probes run outside the sampler lock: a probe that reads a metrics
	// registry must not be able to deadlock against a concurrent Snapshot.
	wall := s.now()
	now := wall.UnixNano()
	mono := wall.Sub(s.epoch).Nanoseconds()
	vals := make([]float64, len(probes))
	for i, pe := range probes {
		vals[i] = pe.probe()
	}
	s.mu.Lock()
	s.ticks++
	for i, pe := range probes {
		if r, ok := s.rings[pe.name]; ok {
			if r.full {
				s.dropped++
			}
			r.add(Point{UnixNano: now, Value: vals[i], Mono: mono})
		}
	}
	listeners := s.listeners
	sampleListeners := s.sampleListeners
	s.mu.Unlock()
	// Listeners run after the tick's points land, outside the lock for
	// the same reason probes do: the SLO engine's evaluation reads the
	// rings back through Get and must not deadlock.
	if len(sampleListeners) > 0 {
		samples := make([]Sample, len(probes))
		for i, pe := range probes {
			samples[i] = Sample{Name: pe.name, Value: vals[i]}
		}
		for _, f := range sampleListeners {
			f(now, mono, samples)
		}
	}
	for _, f := range listeners {
		f()
	}
}

// OnTick registers f to run at the end of every Tick, after the tick's
// samples have been recorded. The SLO engine hooks rule evaluation here
// so alerts are judged against the freshest window. Listeners must not
// block; they run on the sampler goroutine.
func (s *Sampler) OnTick(f func()) {
	if s == nil || f == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Copy-on-write so Tick can release the lock before invoking.
	ls := make([]func(), len(s.listeners), len(s.listeners)+1)
	copy(ls, s.listeners)
	s.listeners = append(ls, f)
}

// OnSamples registers f to receive every tick's materialized samples —
// the tick's wall and monotonic stamps plus one (name, value) pair per
// probe. The telemetry archive hooks its appender here. Like OnTick
// listeners, f runs on the sampler goroutine and must not block.
func (s *Sampler) OnSamples(f func(wallNano, monoNano int64, samples []Sample)) {
	if s == nil || f == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := make([]func(wallNano, monoNano int64, samples []Sample),
		len(s.sampleListeners), len(s.sampleListeners)+1)
	copy(ls, s.sampleListeners)
	s.sampleListeners = append(ls, f)
}

// Dropped reports how many samples the rings have overwritten since the
// sampler was created — non-zero means fetched series are a suffix of
// the node's true history, mirroring the trace ring's dropped counter.
func (s *Sampler) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Ticks reports how many times the sampler has fired.
func (s *Sampler) Ticks() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

// Snapshot returns every series, sorted by name, restricted to points
// within the trailing window (window <= 0 returns everything retained).
func (s *Sampler) Snapshot(window time.Duration) []Series {
	if s == nil {
		return nil
	}
	since := int64(0)
	if window > 0 {
		since = s.now().Add(-window).UnixNano()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Series, 0, len(s.rings))
	for name, r := range s.rings {
		out = append(out, Series{Name: name, Points: r.snapshot(since)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns one named series within the trailing window.
func (s *Sampler) Get(name string, window time.Duration) (Series, bool) {
	if s == nil {
		return Series{}, false
	}
	since := int64(0)
	if window > 0 {
		since = s.now().Add(-window).UnixNano()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rings[name]
	if !ok {
		return Series{}, false
	}
	return Series{Name: name, Points: r.snapshot(since)}, true
}

// WindowMax returns the largest value of a named series over the trailing
// window — the readiness checks use it so a saturation spike between two
// probes is still visible to the next health probe.
func (s *Sampler) WindowMax(name string, window time.Duration) (float64, bool) {
	ser, ok := s.Get(name, window)
	if !ok || len(ser.Points) == 0 {
		return 0, false
	}
	return ser.Max(), true
}

// DeltaProbe wraps a cumulative reading (a counter value) into a probe
// reporting the increase since the previous tick, clamped at zero so a
// reset counter yields 0 rather than a negative spike.
func DeltaProbe(f func() float64) Probe {
	var prev float64
	var primed bool
	return func() float64 {
		cur := f()
		if !primed {
			primed = true
			prev = cur
			return 0
		}
		d := cur - prev
		prev = cur
		if d < 0 {
			return 0
		}
		return d
	}
}

// RateProbe is DeltaProbe scaled to units per second at the given tick
// interval — how "bytes moved" counters become throughput series.
func RateProbe(f func() float64, interval time.Duration) Probe {
	if interval <= 0 {
		interval = DefaultInterval
	}
	delta := DeltaProbe(f)
	per := interval.Seconds()
	return func() float64 { return delta() / per }
}

// RatioProbe reports num()/den(), 0 while den is zero — cumulative
// fractions like bounced/arrivals, which rise under contention and hold
// steady when idle (a windowed ratio would collapse to 0 between bursts).
func RatioProbe(num, den func() float64) Probe {
	return func() float64 {
		d := den()
		if d <= 0 {
			return 0
		}
		return num() / d
	}
}
