package telemetry

import (
	"math"
	"runtime/metrics"
	"testing"
	"time"
)

// The runtime probes must produce live, sane values through a normal
// tick: at least one goroutine, a non-trivial heap, a non-negative
// pause percentile.
func TestRuntimeProbes(t *testing.T) {
	s := NewSampler(Config{Interval: time.Hour})
	RegisterRuntimeProbes(s)
	s.Tick()
	snap := s.Snapshot(0)
	got := map[string]float64{}
	for _, ser := range snap {
		got[ser.Name] = ser.Last().Value
	}
	if got[SeriesGoroutines] < 1 {
		t.Fatalf("%s = %v, want >= 1", SeriesGoroutines, got[SeriesGoroutines])
	}
	if got[SeriesHeapInuse] <= 0 {
		t.Fatalf("%s = %v, want > 0", SeriesHeapInuse, got[SeriesHeapInuse])
	}
	if p := got[SeriesGCPauseP99]; p < 0 || math.IsNaN(p) {
		t.Fatalf("%s = %v", SeriesGCPauseP99, p)
	}
	RegisterRuntimeProbes(nil) // must not panic
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 90, 9, 1},
		Buckets: []float64{math.Inf(-1), 1, 2, 3, math.Inf(1)},
	}
	if got := histQuantile(h, 0.5); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := histQuantile(h, 0.99); got != 3 {
		t.Fatalf("p99 = %v, want 3", got)
	}
	// The top bucket's +Inf edge falls back to its finite lower edge.
	if got := histQuantile(h, 1.0); got != 3 {
		t.Fatalf("p100 = %v, want 3", got)
	}
	if got := histQuantile(&metrics.Float64Histogram{}, 0.99); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}
