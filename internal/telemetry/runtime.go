package telemetry

import (
	"math"
	"runtime/metrics"
)

// Runtime health series registered by RegisterRuntimeProbes. They ride
// the normal probe path, so they land in the rings, the archive, and
// the dosas_telemetry OpenMetrics family like any other series.
const (
	SeriesGoroutines = "runtime.goroutines"
	SeriesHeapInuse  = "runtime.heap.inuse"
	SeriesGCPauseP99 = "runtime.gc.pause.p99.ms"
)

// RegisterRuntimeProbes adds Go runtime health probes to s: live
// goroutine count, heap bytes occupied by objects, and the p99 GC
// pause (milliseconds, over the process lifetime). All three read the
// runtime/metrics fast path — no stop-the-world, safe at tick rate.
// Safe on a nil sampler.
func RegisterRuntimeProbes(s *Sampler) {
	if s == nil {
		return
	}
	s.Register(SeriesGoroutines, runtimeGauge("/sched/goroutines:goroutines"))
	s.Register(SeriesHeapInuse, runtimeGauge("/memory/classes/heap/objects:bytes"))
	s.Register(SeriesGCPauseP99, runtimePauseP99("/sched/pauses/total/gc:seconds"))
}

// runtimeGauge reads one scalar runtime metric per tick. An unknown
// metric name (an older runtime) reads as 0 rather than failing.
func runtimeGauge(name string) Probe {
	sample := []metrics.Sample{{Name: name}}
	return func() float64 {
		metrics.Read(sample)
		switch sample[0].Value.Kind() {
		case metrics.KindUint64:
			return float64(sample[0].Value.Uint64())
		case metrics.KindFloat64:
			return sample[0].Value.Float64()
		}
		return 0
	}
}

// runtimePauseP99 reads a runtime pause histogram and reports its 99th
// percentile in milliseconds.
func runtimePauseP99(name string) Probe {
	sample := []metrics.Sample{{Name: name}}
	return func() float64 {
		metrics.Read(sample)
		if sample[0].Value.Kind() != metrics.KindFloat64Histogram {
			return 0
		}
		return histQuantile(sample[0].Value.Float64Histogram(), 0.99) * 1e3
	}
}

// histQuantile returns the upper edge of the bucket holding quantile q
// of a runtime/metrics histogram (0 when empty). Edges can be ±Inf at
// the extremes; the finite neighbor is reported instead.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			edge := h.Buckets[i+1]
			if math.IsInf(edge, 1) {
				edge = h.Buckets[i]
			}
			if math.IsInf(edge, -1) {
				edge = 0
			}
			return edge
		}
	}
	return 0
}
