package telemetry

import "encoding/json"

// Check is one named readiness probe inside a HealthReport. OK=false
// marks the resource degraded; Detail says why (or gives the healthy
// reading, so operators see the margin as well as the verdict).
type Check struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// HealthReport is a node's liveness plus per-resource readiness — the
// decoded form of wire.HealthResp. Ready is the conjunction of all
// checks: a node that answers at all is live, but a saturated queue or
// missing Contention Estimator degrades it.
type HealthReport struct {
	Node       string  `json:"node"`
	Role       string  `json:"role"`
	Ready      bool    `json:"ready"`
	Checks     []Check `json:"checks"`
	UptimeNano int64   `json:"uptime_nano,omitempty"`
}

// Summarize sets Ready from the conjunction of the checks and returns
// the report for chaining.
func (h HealthReport) Summarize() HealthReport {
	h.Ready = true
	for _, c := range h.Checks {
		if !c.OK {
			h.Ready = false
			break
		}
	}
	return h
}

// Failing returns the names of the degraded checks.
func (h HealthReport) Failing() []string {
	var out []string
	for _, c := range h.Checks {
		if !c.OK {
			out = append(out, c.Name)
		}
	}
	return out
}

// EncodeChecks marshals checks to the JSON payload carried in
// wire.HealthResp.Checks.
func EncodeChecks(checks []Check) ([]byte, error) {
	if checks == nil {
		checks = []Check{}
	}
	return json.Marshal(checks)
}

// DecodeChecks parses the payload produced by EncodeChecks. An empty
// payload decodes to no checks.
func DecodeChecks(b []byte) ([]Check, error) {
	if len(b) == 0 {
		return nil, nil
	}
	var checks []Check
	if err := json.Unmarshal(b, &checks); err != nil {
		return nil, err
	}
	return checks, nil
}
