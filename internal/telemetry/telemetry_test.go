package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dosas/internal/trace"
)

// fakeClock steps a deterministic clock by a fixed interval per read.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func TestSamplerRecordsAndWindows(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0), step: 100 * time.Millisecond}
	s := NewSampler(Config{Capacity: 8, Now: clk.now})
	v := 0.0
	s.Register("q.depth", func() float64 { v++; return v })

	for i := 0; i < 5; i++ {
		s.Tick()
	}
	ser, ok := s.Get("q.depth", 0)
	if !ok || len(ser.Points) != 5 {
		t.Fatalf("got %d points, want 5", len(ser.Points))
	}
	for i, p := range ser.Points {
		if p.Value != float64(i+1) {
			t.Fatalf("point %d = %v, want %v (oldest-first order)", i, p.Value, i+1)
		}
	}
	if got := ser.Last().Value; got != 5 {
		t.Fatalf("Last = %v, want 5", got)
	}

	// A trailing window should exclude the older points. Each Tick and
	// each window computation consumes one clock step; ask for a window
	// that covers roughly the last two samples.
	ser, _ = s.Get("q.depth", 250*time.Millisecond)
	if len(ser.Points) == 0 || len(ser.Points) >= 5 {
		t.Fatalf("windowed fetch returned %d points, want a strict subset", len(ser.Points))
	}
}

func TestSamplerRingWraps(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0), step: time.Millisecond}
	s := NewSampler(Config{Capacity: 4, Now: clk.now})
	v := 0.0
	s.Register("x", func() float64 { v++; return v })
	for i := 0; i < 10; i++ {
		s.Tick()
	}
	ser, _ := s.Get("x", 0)
	if len(ser.Points) != 4 {
		t.Fatalf("got %d points, want capacity 4", len(ser.Points))
	}
	// Oldest retained is tick 7 (10 ticks, capacity 4).
	want := []float64{7, 8, 9, 10}
	for i, p := range ser.Points {
		if p.Value != want[i] {
			t.Fatalf("point %d = %v, want %v", i, p.Value, want[i])
		}
	}
	if max := ser.Max(); max != 10 {
		t.Fatalf("Max = %v, want 10", max)
	}
}

func TestSamplerSnapshotSorted(t *testing.T) {
	s := NewSampler(Config{Capacity: 4})
	s.Register("z.last", func() float64 { return 1 })
	s.Register("a.first", func() float64 { return 2 })
	s.Register("m.mid", func() float64 { return 3 })
	s.Tick()
	snap := s.Snapshot(0)
	if len(snap) != 3 {
		t.Fatalf("got %d series, want 3", len(snap))
	}
	if snap[0].Name != "a.first" || snap[1].Name != "m.mid" || snap[2].Name != "z.last" {
		t.Fatalf("series not sorted by name: %v %v %v", snap[0].Name, snap[1].Name, snap[2].Name)
	}
}

func TestNilSamplerIsSafe(t *testing.T) {
	var s *Sampler
	s.Register("x", func() float64 { return 1 })
	s.Start()
	s.Tick()
	if got := s.Snapshot(0); got != nil {
		t.Fatalf("nil sampler Snapshot = %v, want nil", got)
	}
	if _, ok := s.Get("x", 0); ok {
		t.Fatal("nil sampler Get ok = true")
	}
	s.Close()
}

func TestSamplerStartClose(t *testing.T) {
	s := NewSampler(Config{Interval: time.Millisecond, Capacity: 16})
	s.Register("x", func() float64 { return 1 })
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for s.Ticks() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Ticks() == 0 {
		t.Fatal("sampler never ticked")
	}
	s.Close()
	s.Close() // idempotent
}

func TestDeltaAndRateProbes(t *testing.T) {
	v := 0.0
	d := DeltaProbe(func() float64 { return v })
	if got := d(); got != 0 {
		t.Fatalf("first delta = %v, want 0 (priming)", got)
	}
	v = 10
	if got := d(); got != 10 {
		t.Fatalf("delta = %v, want 10", got)
	}
	v = 4 // counter reset
	if got := d(); got != 0 {
		t.Fatalf("delta after reset = %v, want clamped 0", got)
	}

	v = 0
	r := RateProbe(func() float64 { return v }, 100*time.Millisecond)
	r() // prime
	v = 50
	if got := r(); got != 500 {
		t.Fatalf("rate = %v, want 500/s (50 per 100ms)", got)
	}
}

func TestRatioProbe(t *testing.T) {
	num, den := 0.0, 0.0
	p := RatioProbe(func() float64 { return num }, func() float64 { return den })
	if got := p(); got != 0 {
		t.Fatalf("ratio with zero denominator = %v, want 0", got)
	}
	num, den = 3, 4
	if got := p(); got != 0.75 {
		t.Fatalf("ratio = %v, want 0.75", got)
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	in := []Series{
		{Name: "q.depth", Points: []Point{{UnixNano: 1, Value: 2.5}, {UnixNano: 2, Value: 3}}},
		{Name: "bounce.rate", Points: nil},
	}
	b, err := EncodeSeries(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSeries(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "q.depth" || len(out[0].Points) != 2 || out[0].Points[0].Value != 2.5 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if got, err := DecodeSeries(nil); err != nil || got != nil {
		t.Fatalf("empty payload = %v, %v; want nil, nil", got, err)
	}
}

func TestHealthReportSummarize(t *testing.T) {
	h := HealthReport{Node: "data-0", Role: "data", Checks: []Check{
		{Name: "store", OK: true},
		{Name: "queue", OK: true},
	}}.Summarize()
	if !h.Ready {
		t.Fatal("all-ok report not Ready")
	}
	h.Checks = append(h.Checks, Check{Name: "memory", OK: false, Detail: "pressure 0.97"})
	h = h.Summarize()
	if h.Ready {
		t.Fatal("report with failing check still Ready")
	}
	if f := h.Failing(); len(f) != 1 || f[0] != "memory" {
		t.Fatalf("Failing = %v, want [memory]", f)
	}
}

func TestChecksJSONRoundTrip(t *testing.T) {
	in := []Check{{Name: "queue", OK: false, Detail: "depth 9 >= 8"}}
	b, err := EncodeChecks(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeChecks(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestSlowDetector(t *testing.T) {
	// Absolute threshold only.
	d := NewSlowDetector(10*time.Millisecond, 0, 8)
	if slow, _, _ := d.Observe(5 * time.Millisecond); slow {
		t.Fatal("fast request flagged slow")
	}
	slow, _, reason := d.Observe(20 * time.Millisecond)
	if !slow || reason != "absolute" {
		t.Fatalf("slow=%v reason=%q, want true/absolute", slow, reason)
	}

	// Factor-of-median: prime the history, then spike.
	d = NewSlowDetector(0, 3, 8)
	for i := 0; i < 6; i++ {
		if slow, _, _ := d.Observe(time.Millisecond); slow {
			t.Fatal("baseline request flagged slow")
		}
	}
	slow, median, reason := d.Observe(10 * time.Millisecond)
	if !slow || reason != "factor" || median != time.Millisecond {
		t.Fatalf("slow=%v median=%v reason=%q, want true/1ms/factor", slow, median, reason)
	}
	if !d.Enabled() {
		t.Fatal("detector with factor not Enabled")
	}
	if NewSlowDetector(0, 0, 0).Enabled() {
		t.Fatal("zero-criteria detector Enabled")
	}
}

func TestFlightRecorderBoundsAndDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "slow")
	fr, err := NewFlightRecorder(FlightConfig{Capacity: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		b := Bundle{
			TraceID: uint64(i),
			Op:      "wordcount",
			Elapsed: time.Duration(i) * time.Millisecond,
			Reason:  "absolute",
			Timeline: []trace.Event{
				{Seq: 1, Kind: trace.KindIssue, TraceID: uint64(i), Node: "client"},
			},
			Series: []Series{{Name: "pending", Points: []Point{{UnixNano: 1, Value: 1}}}},
		}
		if err := fr.Capture(b); err != nil {
			t.Fatal(err)
		}
	}
	if fr.Len() != 2 {
		t.Fatalf("in-memory journal holds %d, want capacity 2", fr.Len())
	}
	got := fr.Bundles()
	if got[0].TraceID != 2 || got[1].TraceID != 3 {
		t.Fatalf("retained traces %d,%d; want oldest evicted (2,3)", got[0].TraceID, got[1].TraceID)
	}

	disk, err := ReadBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(disk) != 2 || disk[0].TraceID != 2 || disk[1].TraceID != 3 {
		t.Fatalf("disk journal %+v, want pruned to traces 2,3", disk)
	}
	if len(disk[0].Timeline) != 1 || disk[0].Timeline[0].Kind != trace.KindIssue {
		t.Fatalf("timeline did not survive disk round trip: %+v", disk[0].Timeline)
	}

	// Missing directory reads as empty.
	if got, err := ReadBundles(filepath.Join(t.TempDir(), "nope")); err != nil || len(got) != 0 {
		t.Fatalf("missing dir = %v, %v; want empty, nil", got, err)
	}
}

func TestNilFlightRecorderIsSafe(t *testing.T) {
	var fr *FlightRecorder
	if err := fr.Capture(Bundle{TraceID: 1}); err != nil {
		t.Fatal(err)
	}
	if fr.Len() != 0 || fr.Bundles() != nil {
		t.Fatal("nil recorder retained something")
	}
}

func TestFormatBundle(t *testing.T) {
	b := Bundle{
		TraceID:     7,
		Op:          "grep",
		Bytes:       1024,
		Elapsed:     42 * time.Millisecond,
		Median:      4 * time.Millisecond,
		Reason:      "factor",
		Disposition: "bounced",
		Timeline:    []trace.Event{{Seq: 1, Kind: trace.KindIssue, Node: "client", Op: "grep"}},
		Series:      []Series{{Name: "asc.pending", Points: []Point{{UnixNano: 1, Value: 2}}}},
	}
	out := FormatBundle(b)
	for _, want := range []string{"trace 7", "op=grep", "reason=factor", "disposition=bounced", "timeline:", "telemetry window:", "asc.pending"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatBundle output missing %q:\n%s", want, out)
		}
	}
}

func TestSamplerDroppedCountsOverwrites(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0), step: time.Millisecond}
	s := NewSampler(Config{Capacity: 4, Now: clk.now})
	s.Register("a", func() float64 { return 1 })
	s.Register("b", func() float64 { return 2 })
	for i := 0; i < 4; i++ {
		s.Tick()
	}
	if s.Dropped() != 0 {
		t.Fatalf("Dropped before wrap = %d, want 0", s.Dropped())
	}
	for i := 0; i < 3; i++ {
		s.Tick()
	}
	// Each wrapped tick overwrites one point in each of the two rings.
	if s.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", s.Dropped())
	}
	var nilSampler *Sampler
	if nilSampler.Dropped() != 0 {
		t.Fatal("nil Dropped should be 0")
	}
}

func TestSamplerOnTick(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0), step: time.Millisecond}
	s := NewSampler(Config{Capacity: 4, Now: clk.now})
	s.Register("x", func() float64 { return 1 })
	var calls int
	var sawPoints int
	s.OnTick(func() {
		calls++
		// The tick's sample must already be visible to listeners.
		ser, _ := s.Get("x", 0)
		sawPoints = len(ser.Points)
	})
	s.Tick()
	s.Tick()
	if calls != 2 || sawPoints != 2 {
		t.Fatalf("calls = %d points = %d, want 2 and 2", calls, sawPoints)
	}
	var nilSampler *Sampler
	nilSampler.OnTick(func() {}) // must not panic
	s.OnTick(nil)                // ignored
	s.Tick()
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestFlightRecorderByteBudget(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "slow")
	clk := &fakeClock{t: time.Unix(2000, 0), step: time.Second}
	// Large capacity so only the byte budget prunes. Each bundle's JSON
	// is ~300 bytes with the padded op below.
	fr, err := NewFlightRecorder(FlightConfig{Capacity: 100, Dir: dir, DirMaxBytes: 1000, Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 200)
	for i := 0; i < 8; i++ {
		if err := fr.Capture(Bundle{TraceID: uint64(i + 1), Op: pad}); err != nil {
			t.Fatal(err)
		}
	}
	files, _ := filepath.Glob(filepath.Join(dir, "slow-*.json"))
	var total int64
	for _, f := range files {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	if total > 1000 {
		t.Fatalf("journal size = %d bytes, want <= 1000", total)
	}
	if len(files) == 0 {
		t.Fatal("budget pruning removed every bundle; newest must survive")
	}
	// The survivors are the newest bundles.
	got, err := ReadBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got[len(got)-1].TraceID != 8 {
		t.Fatalf("newest bundle = trace %d, want 8", got[len(got)-1].TraceID)
	}
	// In-memory journal is untouched by disk pruning.
	if fr.Len() != 8 {
		t.Fatalf("in-memory Len = %d, want 8", fr.Len())
	}
}

func TestFlightRecorderNegativeBudgetUnbounded(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "slow")
	fr, err := NewFlightRecorder(FlightConfig{Capacity: 100, Dir: dir, DirMaxBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("y", 200)
	for i := 0; i < 5; i++ {
		if err := fr.Capture(Bundle{TraceID: uint64(i + 1), Op: pad}); err != nil {
			t.Fatal(err)
		}
	}
	files, _ := filepath.Glob(filepath.Join(dir, "slow-*.json"))
	if len(files) != 5 {
		t.Fatalf("unbounded journal kept %d files, want 5", len(files))
	}
}
