package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dosas/internal/trace"
)

// Bundle is one slow-request diagnostic capture: everything an operator
// needs to answer "why was trace N slow" after the fact — the stitched
// cross-node timeline, the storage node's disposition, and the client's
// telemetry window surrounding the request.
type Bundle struct {
	TraceID  uint64        `json:"trace_id"`
	Op       string        `json:"op"`
	Tenant   string        `json:"tenant,omitempty"`
	Bytes    uint64        `json:"bytes,omitempty"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Median   time.Duration `json:"median_ns,omitempty"`
	Captured time.Time     `json:"captured"`
	// Reason says which threshold fired: "absolute" or "factor".
	Reason string `json:"reason"`
	// Disposition is the storage-side outcome summary (e.g.
	// "completed-on-storage", "bounced").
	Disposition string `json:"disposition,omitempty"`
	// Timeline is the stitched cross-node trace for this TraceID.
	Timeline []trace.Event `json:"timeline,omitempty"`
	// Series is the client sampler's window around the request.
	Series []Series `json:"series,omitempty"`
}

// FlightConfig parameterises a FlightRecorder.
type FlightConfig struct {
	// Capacity bounds the in-memory journal (default 16).
	Capacity int
	// Dir, when set, additionally persists each bundle as
	// slow-<traceid>.json under this directory so other processes
	// (dosasctl slow) can read them; the directory is pruned to Capacity
	// files, oldest first.
	Dir string
	// DirMaxBytes bounds the total size of the on-disk journal (default
	// DefaultDirMaxBytes; negative disables the byte budget). Oldest
	// bundles are pruned first, so a long contention storm rotates the
	// journal instead of filling the disk.
	DirMaxBytes int64
	// Now overrides the clock, for tests.
	Now func() time.Time
}

// DefaultDirMaxBytes is the default on-disk flight-journal byte budget.
const DefaultDirMaxBytes = 64 << 20

// FlightRecorder is the bounded slow-request journal. A nil
// *FlightRecorder is valid and drops every capture.
type FlightRecorder struct {
	capacity int
	dir      string
	maxBytes int64
	now      func() time.Time

	mu      sync.Mutex
	bundles []Bundle
}

// NewFlightRecorder returns a recorder journaling at most cfg.Capacity
// bundles in memory (and on disk, when cfg.Dir is set).
func NewFlightRecorder(cfg FlightConfig) (*FlightRecorder, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 16
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.DirMaxBytes == 0 {
		cfg.DirMaxBytes = DefaultDirMaxBytes
	}
	if cfg.DirMaxBytes < 0 {
		cfg.DirMaxBytes = 0 // negative means unbounded
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("telemetry: flight dir: %w", err)
		}
	}
	return &FlightRecorder{capacity: cfg.Capacity, dir: cfg.Dir, maxBytes: cfg.DirMaxBytes, now: cfg.Now}, nil
}

// Capture journals one bundle, evicting the oldest past capacity. Disk
// write failures are reported but the in-memory journal still retains
// the bundle.
func (fr *FlightRecorder) Capture(b Bundle) error {
	if fr == nil {
		return nil
	}
	if b.Captured.IsZero() {
		b.Captured = fr.now()
	}
	fr.mu.Lock()
	fr.bundles = append(fr.bundles, b)
	if len(fr.bundles) > fr.capacity {
		fr.bundles = fr.bundles[len(fr.bundles)-fr.capacity:]
	}
	fr.mu.Unlock()
	if fr.dir == "" {
		return nil
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	name := filepath.Join(fr.dir, fmt.Sprintf("slow-%016x-%d.json", b.TraceID, b.Captured.UnixNano()))
	if err := os.WriteFile(name, data, 0o644); err != nil {
		return err
	}
	return fr.pruneDir()
}

// pruneDir removes the oldest slow-*.json files until both the file
// count is within capacity and the total size is within the byte
// budget. File names embed the capture nanos, so lexical order is
// capture order; the newest bundle is always kept even when it alone
// exceeds the budget.
func (fr *FlightRecorder) pruneDir() error {
	files, err := filepath.Glob(filepath.Join(fr.dir, "slow-*.json"))
	if err != nil {
		return err
	}
	sort.Strings(files)
	var total int64
	sizes := make([]int64, len(files))
	for i, f := range files {
		if fi, err := os.Stat(f); err == nil {
			sizes[i] = fi.Size()
			total += fi.Size()
		}
	}
	var firstErr error
	remove := func(i int) {
		if err := os.Remove(files[i]); err != nil && !os.IsNotExist(err) && firstErr == nil {
			firstErr = err
		}
		total -= sizes[i]
	}
	keepFrom := 0
	if n := len(files) - fr.capacity; n > 0 {
		for i := 0; i < n; i++ {
			remove(i)
		}
		keepFrom = n
	}
	for i := keepFrom; i < len(files)-1 && fr.maxBytes > 0 && total > fr.maxBytes; i++ {
		remove(i)
	}
	return firstErr
}

// Bundles returns the journaled bundles, oldest first.
func (fr *FlightRecorder) Bundles() []Bundle {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return append([]Bundle(nil), fr.bundles...)
}

// Len reports how many bundles are journaled in memory.
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return len(fr.bundles)
}

// ReadBundles loads the slow-*.json bundles persisted under dir, oldest
// first — how dosasctl slow reads another process's journal. A missing
// directory reads as empty.
func ReadBundles(dir string) ([]Bundle, error) {
	files, err := filepath.Glob(filepath.Join(dir, "slow-*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var out []Bundle
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return out, err
		}
		var b Bundle
		if err := json.Unmarshal(data, &b); err != nil {
			return out, fmt.Errorf("telemetry: %s: %w", filepath.Base(f), err)
		}
		out = append(out, b)
	}
	return out, nil
}

// FormatBundle renders a bundle as the multi-line report dosasctl slow
// prints: header, stitched timeline, then the latest value of each
// captured series.
func FormatBundle(b Bundle) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %d op=%s bytes=%d elapsed=%v", b.TraceID, b.Op, b.Bytes, b.Elapsed.Round(time.Microsecond))
	if b.Tenant != "" {
		fmt.Fprintf(&sb, " tenant=%s", b.Tenant)
	}
	if b.Median > 0 {
		fmt.Fprintf(&sb, " median=%v", b.Median.Round(time.Microsecond))
	}
	fmt.Fprintf(&sb, " reason=%s", b.Reason)
	if b.Disposition != "" {
		fmt.Fprintf(&sb, " disposition=%s", b.Disposition)
	}
	sb.WriteString("\n")
	if len(b.Timeline) > 0 {
		sb.WriteString("  timeline:\n")
		for _, e := range b.Timeline {
			fmt.Fprintf(&sb, "    %s %s@%s\n", e.Time.Format("15:04:05.000000"), strings.TrimSpace(trace.FormatEvent(e)), e.Node)
		}
	}
	if len(b.Series) > 0 {
		sb.WriteString("  telemetry window:\n")
		for _, s := range b.Series {
			fmt.Fprintf(&sb, "    %-24s points=%d last=%.3f max=%.3f\n", s.Name, len(s.Points), s.Last().Value, s.Max())
		}
	}
	return sb.String()
}

// SlowDetector decides whether a finished request was slow: elapsed past
// an absolute Threshold, or past Factor×median of the recent latency
// history. Zero-valued criteria are disabled; with both zero nothing is
// ever slow.
type SlowDetector struct {
	threshold time.Duration
	factor    float64

	mu      sync.Mutex
	history []time.Duration // ring of recent latencies for the median
	next    int
	full    bool
}

// NewSlowDetector builds a detector; historySize bounds the median
// window (default 64).
func NewSlowDetector(threshold time.Duration, factor float64, historySize int) *SlowDetector {
	if historySize <= 0 {
		historySize = 64
	}
	return &SlowDetector{threshold: threshold, factor: factor, history: make([]time.Duration, historySize)}
}

// Enabled reports whether any criterion is active.
func (d *SlowDetector) Enabled() bool {
	return d != nil && (d.threshold > 0 || d.factor > 0)
}

// Observe records one finished request's latency and reports whether it
// was slow, plus the median it was judged against and which criterion
// fired. The latency enters the history either way, so a persistent
// slowdown shifts the median instead of flagging every request forever.
func (d *SlowDetector) Observe(elapsed time.Duration) (slow bool, median time.Duration, reason string) {
	if d == nil {
		return false, 0, ""
	}
	d.mu.Lock()
	median = d.medianLocked()
	d.history[d.next] = elapsed
	d.next++
	if d.next == len(d.history) {
		d.next = 0
		d.full = true
	}
	d.mu.Unlock()

	if d.threshold > 0 && elapsed > d.threshold {
		return true, median, "absolute"
	}
	if d.factor > 0 && median > 0 && float64(elapsed) > d.factor*float64(median) {
		return true, median, "factor"
	}
	return false, median, ""
}

// medianLocked computes the median of the recorded history (0 when
// empty). Called with d.mu held.
func (d *SlowDetector) medianLocked() time.Duration {
	n := d.next
	if d.full {
		n = len(d.history)
	}
	if n == 0 {
		return 0
	}
	sorted := make([]time.Duration, n)
	copy(sorted, d.history[:n])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[n/2]
}
