// Package tsdb is the per-node durable telemetry archive: every sampler
// tick is appended to CRC-framed, append-only chunk files so the
// histories the in-memory rings overwrite after a minute survive
// restarts and crashes. The design follows the extent store's recovery
// philosophy — there is no journal to replay and no metadata to trust:
// an archive directory is reopened by rescanning it, a torn tail on the
// active chunk is truncated away, and a conf file pins the format
// parameters chosen at creation so a reopen with different flags cannot
// silently reinterpret existing chunks.
//
// Alongside the raw tier the archive maintains two downsampled tiers —
// 10 s and 1 m buckets holding min/max/sum/count per series — so range
// queries over hours stay cheap after byte/age retention has pruned the
// raw chunks. Queries stitch the tiers: raw points where retained,
// bucket means for the older range each coarser tier still covers.
package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dosas/internal/telemetry"
)

// Format and retention defaults.
const (
	// DefaultChunkBytes rotates chunks at 1 MiB: small enough that
	// pruning is fine-grained, large enough that a directory holds few
	// files.
	DefaultChunkBytes = 1 << 20
	// DefaultMaxBytes caps an archive directory at 64 MiB across all
	// tiers — about a day of 10 Hz raw history for a typical probe set,
	// and far more once the raw tier has been pruned down to aggregates.
	DefaultMaxBytes = 64 << 20
	// maxRecordBytes bounds a single record frame; a length prefix
	// beyond it is treated as tail corruption, not an allocation order.
	maxRecordBytes = 4 << 20

	confName = "archive.conf"
	chunkExt = ".tsc"
)

// The downsampling tiers. Tier 0 is raw ticks; coarser tiers aggregate
// into fixed wall-clock buckets so the same bucket boundaries land on
// every node regardless of when its sampler started.
const (
	tierRaw = iota
	tier10s
	tier1m
	numTiers
)

var tierWidth = [numTiers]int64{
	tierRaw: 0,
	tier10s: int64(10 * time.Second),
	tier1m:  int64(time.Minute),
}

// Record kinds inside a chunk frame.
const (
	recRaw = 1 // one sampler tick: wall+mono stamp, n (name, value) pairs
	recAgg = 2 // one flushed bucket: tier, bucket start, n (name, min/max/sum/count)
)

// Config parameterises an Archive. The zero value of every field takes
// a default; only Dir is required.
type Config struct {
	// Dir is the archive directory, created if absent. One directory
	// belongs to one node.
	Dir string
	// ChunkBytes is the chunk rotation threshold; 0 takes
	// DefaultChunkBytes. Pinned by archive.conf at first creation:
	// reopening an existing directory always uses the pinned value.
	ChunkBytes int64
	// MaxBytes is the total retention budget across all tiers; 0 takes
	// DefaultMaxBytes, negative is unbounded. Pruning removes the
	// oldest raw chunks first so coarse history outlives fine history.
	MaxBytes int64
	// MaxAge drops chunks wholly older than the horizon; 0 keeps
	// everything the byte budget allows.
	MaxAge time.Duration
	// Now overrides the clock, for tests.
	Now func() time.Time
}

// chunk is one on-disk file of a tier. firstNano is embedded in the
// filename so age ordering and pruning never need to read chunk bodies.
type chunk struct {
	seq       uint64
	firstNano int64
	path      string
	size      int64
}

// tierState is the mutable state of one tier: its chunks oldest-first,
// the last being the active one the open file appends to (nil until the
// tier's first record after open).
type tierState struct {
	chunks  []chunk
	f       *os.File
	nextSeq uint64
}

// aggCell accumulates one series within one open downsample bucket.
type aggCell struct {
	min, max, sum float64
	count         uint32
}

// Archive is a durable telemetry store for one node. A nil *Archive is
// valid, records nothing and answers every query empty, so call sites
// need no nil checks. All methods are safe for concurrent use.
type Archive struct {
	dir        string
	chunkBytes int64
	maxBytes   int64
	maxAge     time.Duration
	now        func() time.Time

	mu          sync.Mutex
	tiers       [numTiers]tierState
	buckets     [numTiers]map[string]*aggCell
	bucketStart [numTiers]int64
	appends     uint64
	prunedFiles uint64
	closed      bool
}

// Open creates or reopens the archive at cfg.Dir. Reopening rescans the
// directory: chunk sets are adopted as found, and the active chunk of
// each tier is validated record by record with everything after the
// first bad CRC or short frame truncated away — the crash-recovery
// contract. An existing archive.conf pins ChunkBytes; a conf that does
// not parse or names another format version is an error, not a guess.
func Open(cfg Config) (*Archive, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("tsdb: empty archive dir")
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = DefaultChunkBytes
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	chunkBytes, err := pinConf(cfg.Dir, cfg.ChunkBytes)
	if err != nil {
		return nil, err
	}
	a := &Archive{
		dir:        cfg.Dir,
		chunkBytes: chunkBytes,
		maxBytes:   cfg.MaxBytes,
		maxAge:     cfg.MaxAge,
		now:        cfg.Now,
	}
	for t := 0; t < numTiers; t++ {
		if err := a.openTier(t); err != nil {
			a.Close()
			return nil, err
		}
	}
	return a, nil
}

// pinConf writes archive.conf on first creation and verifies it on
// reopen, returning the pinned chunk size. Like extent.conf, the pinned
// value wins over the configured one: chunks already on disk were cut
// at the pinned size.
func pinConf(dir string, chunkBytes int64) (int64, error) {
	path := filepath.Join(dir, confName)
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		line := fmt.Sprintf("v1 chunk=%d tiers=raw,10s,1m\n", chunkBytes)
		if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
			return 0, fmt.Errorf("tsdb: %w", err)
		}
		return chunkBytes, nil
	}
	if err != nil {
		return 0, fmt.Errorf("tsdb: %w", err)
	}
	fields := strings.Fields(string(b))
	if len(fields) != 3 || fields[0] != "v1" || fields[2] != "tiers=raw,10s,1m" {
		return 0, fmt.Errorf("tsdb: %s: unrecognized format %q", path, strings.TrimSpace(string(b)))
	}
	n, err := strconv.ParseInt(strings.TrimPrefix(fields[1], "chunk="), 10, 64)
	if err != nil || !strings.HasPrefix(fields[1], "chunk=") || n <= 0 {
		return 0, fmt.Errorf("tsdb: %s: bad chunk size %q", path, fields[1])
	}
	return n, nil
}

// openTier scans one tier's chunk files, truncates the active chunk to
// its valid record prefix, and reopens it for appending.
func (a *Archive) openTier(tier int) error {
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	ts := &a.tiers[tier]
	ts.nextSeq = 1
	for _, e := range entries {
		seq, firstNano, ok := parseChunkName(e.Name(), tier)
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return fmt.Errorf("tsdb: %w", err)
		}
		ts.chunks = append(ts.chunks, chunk{
			seq:       seq,
			firstNano: firstNano,
			path:      filepath.Join(a.dir, e.Name()),
			size:      info.Size(),
		})
		if seq >= ts.nextSeq {
			ts.nextSeq = seq + 1
		}
	}
	sort.Slice(ts.chunks, func(i, j int) bool { return ts.chunks[i].seq < ts.chunks[j].seq })
	if len(ts.chunks) == 0 {
		return nil
	}
	// Only the chunk that was being appended to can have a torn tail;
	// older chunks were sealed by a completed rotation.
	active := &ts.chunks[len(ts.chunks)-1]
	data, err := os.ReadFile(active.path)
	if err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	valid := scanRecords(data, nil)
	f, err := os.OpenFile(active.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	if int64(valid) < active.size {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return fmt.Errorf("tsdb: %w", err)
		}
		active.size = int64(valid)
	}
	if _, err := f.Seek(active.size, 0); err != nil {
		f.Close()
		return fmt.Errorf("tsdb: %w", err)
	}
	ts.f = f
	return nil
}

// chunkName encodes tier, sequence, and first-record wall time:
// t0-00000007-01700000000000000000.tsc. Sequence gives append order,
// the embedded time gives age pruning without reading bodies.
func chunkName(tier int, seq uint64, firstNano int64) string {
	return fmt.Sprintf("t%d-%08d-%020d%s", tier, seq, firstNano, chunkExt)
}

func parseChunkName(name string, tier int) (seq uint64, firstNano int64, ok bool) {
	prefix := fmt.Sprintf("t%d-", tier)
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, chunkExt) {
		return 0, 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, prefix), chunkExt)
	dash := strings.IndexByte(body, '-')
	if dash < 0 {
		return 0, 0, false
	}
	s, err1 := strconv.ParseUint(body[:dash], 10, 64)
	t, err2 := strconv.ParseInt(body[dash+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return s, t, true
}

// Append persists one sampler tick to the raw tier and folds it into
// the open downsample buckets, flushing any bucket the tick has moved
// past. It is the Sampler.OnSamples hook target: one buffered write on
// the sampler goroutine, no fsync (crash durability is "recover the
// valid prefix", not "never lose a tick").
func (a *Archive) Append(wallNano, monoNano int64, samples []telemetry.Sample) error {
	if a == nil || len(samples) == 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return fmt.Errorf("tsdb: archive closed")
	}
	a.appends++
	payload := encodeRaw(wallNano, monoNano, samples)
	if err := a.writeRecord(tierRaw, wallNano, payload); err != nil {
		return err
	}
	for t := tier10s; t < numTiers; t++ {
		bucket := bucketStart(wallNano, tierWidth[t])
		if a.bucketStart[t] != 0 && a.bucketStart[t] != bucket {
			if err := a.flushBucket(t); err != nil {
				return err
			}
		}
		if a.buckets[t] == nil {
			a.buckets[t] = make(map[string]*aggCell)
		}
		a.bucketStart[t] = bucket
		for _, s := range samples {
			c := a.buckets[t][s.Name]
			if c == nil {
				a.buckets[t][s.Name] = &aggCell{min: s.Value, max: s.Value, sum: s.Value, count: 1}
				continue
			}
			if s.Value < c.min {
				c.min = s.Value
			}
			if s.Value > c.max {
				c.max = s.Value
			}
			c.sum += s.Value
			c.count++
		}
	}
	return nil
}

// bucketStart aligns t down to the bucket grid. Buckets are aligned to
// the Unix epoch so every node cuts them at the same wall instants.
func bucketStart(t, width int64) int64 {
	b := t - t%width
	if t < 0 && t%width != 0 {
		b -= width
	}
	return b
}

// flushBucket writes tier t's open bucket as one agg record and resets
// it. Partial buckets (flushed at Close, or re-opened after a restart
// lands in the same wall bucket) simply coexist on disk: queries merge
// cells for the same bucket start, and min/max/sum/count merge exactly.
func (a *Archive) flushBucket(t int) error {
	if len(a.buckets[t]) == 0 {
		a.bucketStart[t] = 0
		return nil
	}
	payload := encodeAgg(t, a.bucketStart[t], a.buckets[t])
	start := a.bucketStart[t]
	a.buckets[t] = nil
	a.bucketStart[t] = 0
	return a.writeRecord(t, start, payload)
}

// writeRecord frames payload with a length and CRC32 and appends it to
// the tier's active chunk, rotating (and then pruning) when the chunk
// is full. Callers hold a.mu.
func (a *Archive) writeRecord(tier int, firstNano int64, payload []byte) error {
	ts := &a.tiers[tier]
	if ts.f == nil || (len(ts.chunks) > 0 && ts.chunks[len(ts.chunks)-1].size+int64(len(payload))+8 > a.chunkBytes) {
		if err := a.rotate(tier, firstNano); err != nil {
			return err
		}
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := ts.f.Write(frame); err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	ts.chunks[len(ts.chunks)-1].size += int64(len(frame))
	return nil
}

// rotate seals the tier's active chunk and opens a fresh one stamped
// with the time of the record that forced the rotation.
func (a *Archive) rotate(tier int, firstNano int64) error {
	ts := &a.tiers[tier]
	if ts.f != nil {
		ts.f.Close()
		ts.f = nil
	}
	c := chunk{seq: ts.nextSeq, firstNano: firstNano}
	c.path = filepath.Join(a.dir, chunkName(tier, c.seq, firstNano))
	f, err := os.OpenFile(c.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	ts.nextSeq++
	ts.f = f
	ts.chunks = append(ts.chunks, c)
	a.prune()
	return nil
}

// prune enforces the age horizon and the byte budget. A chunk is
// age-pruned only when the next chunk's first record is already past
// the horizon — i.e. the whole chunk is older. The byte budget removes
// oldest chunks finest-tier-first, so an archive over budget degrades
// to coarser history rather than forgetting the incident entirely. The
// active chunk of a tier is never pruned. Callers hold a.mu.
func (a *Archive) prune() {
	if a.maxAge > 0 {
		cutoff := a.now().Add(-a.maxAge).UnixNano()
		for t := 0; t < numTiers; t++ {
			ts := &a.tiers[t]
			for len(ts.chunks) > 1 && ts.chunks[1].firstNano <= cutoff {
				a.removeOldest(ts)
			}
		}
	}
	if a.maxBytes <= 0 {
		return
	}
	total := int64(0)
	for t := 0; t < numTiers; t++ {
		for _, c := range a.tiers[t].chunks {
			total += c.size
		}
	}
	for t := 0; t < numTiers && total > a.maxBytes; t++ {
		ts := &a.tiers[t]
		for len(ts.chunks) > 1 && total > a.maxBytes {
			total -= ts.chunks[0].size
			a.removeOldest(ts)
		}
	}
}

func (a *Archive) removeOldest(ts *tierState) {
	os.Remove(ts.chunks[0].path)
	ts.chunks = ts.chunks[1:]
	a.prunedFiles++
}

// Flush writes the open downsample buckets to disk without waiting for
// their wall buckets to elapse. Close calls it; a crash simply loses
// the open buckets from the coarse tiers while the raw tier still holds
// every tick.
func (a *Archive) Flush() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	var first error
	for t := tier10s; t < numTiers; t++ {
		if err := a.flushBucket(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close flushes open buckets and closes chunk files. Safe on nil and
// idempotent.
func (a *Archive) Close() error {
	if a == nil {
		return nil
	}
	err := a.Flush()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	for t := 0; t < numTiers; t++ {
		if f := a.tiers[t].f; f != nil {
			f.Close()
			a.tiers[t].f = nil
		}
	}
	return err
}

// Size reports the archive's current on-disk bytes across all tiers.
func (a *Archive) Size() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var total int64
	for t := 0; t < numTiers; t++ {
		for _, c := range a.tiers[t].chunks {
			total += c.size
		}
	}
	return total
}

// Appends reports how many ticks have been persisted since Open.
func (a *Archive) Appends() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.appends
}

// PrunedFiles reports how many chunk files retention has removed.
func (a *Archive) PrunedFiles() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.prunedFiles
}

// Earliest returns the wall time of the oldest record any tier still
// retains, 0 when the archive is empty — what a range-query response
// reports so clients can tell "no data" from "pruned".
func (a *Archive) Earliest() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var earliest int64
	for t := 0; t < numTiers; t++ {
		if cs := a.tiers[t].chunks; len(cs) > 0 {
			if earliest == 0 || cs[0].firstNano < earliest {
				earliest = cs[0].firstNano
			}
		}
	}
	return earliest
}

// Query returns the named series' points with wall times in
// [fromNano, toNano], oldest first. The tiers are stitched: the raw
// tier serves the part of the window it still retains; the part pruned
// from raw is served from the 10 s tier as bucket means, and likewise
// the 1 m tier backstops the 10 s tier. Bucket points are stamped with
// the bucket start.
func (a *Archive) Query(name string, fromNano, toNano int64) ([]telemetry.Point, error) {
	if a == nil || fromNano > toNano {
		return nil, nil
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, fmt.Errorf("tsdb: archive closed")
	}
	// Snapshot the chunk lists; file reads happen outside the lock. An
	// append racing a read of the active chunk at worst leaves a short
	// tail the scanner skips, exactly like crash recovery.
	var tiers [numTiers][]chunk
	for t := 0; t < numTiers; t++ {
		tiers[t] = append([]chunk(nil), a.tiers[t].chunks...)
	}
	a.mu.Unlock()

	// Each tier serves [cut(t), cut(t-1)): the raw tier from its
	// earliest retained record up to the window end, each coarser tier
	// the older remainder the finer tier no longer covers.
	cut := toNano + 1
	var out []telemetry.Point
	starts := [numTiers]int64{}
	for t := 0; t < numTiers; t++ {
		if len(tiers[t]) > 0 {
			starts[t] = tiers[t][0].firstNano
		}
	}
	for t := 0; t < numTiers; t++ {
		lo := fromNano
		if starts[t] != 0 && starts[t] > lo {
			lo = starts[t]
		}
		if len(tiers[t]) == 0 || lo >= cut {
			continue
		}
		pts, err := scanTier(t, tiers[t], name, lo, cut)
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
		cut = lo
		if cut <= fromNano {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UnixNano < out[j].UnixNano })
	return out, nil
}

// scanTier reads one tier's chunks and extracts the named series'
// points with wall time in [lo, hi). Coarse tiers merge duplicate
// bucket records (partial buckets from a flush-at-close plus the
// post-restart remainder) before emitting means.
func scanTier(tier int, chunks []chunk, name string, lo, hi int64) ([]telemetry.Point, error) {
	var out []telemetry.Point
	var merged map[int64]*aggCell
	for i, c := range chunks {
		// A chunk is skippable when it ends before the range starts —
		// its end is bounded by the next chunk's first record — or
		// starts after the range ends.
		if i+1 < len(chunks) && chunks[i+1].firstNano < lo {
			continue
		}
		if c.firstNano >= hi {
			break
		}
		data, err := os.ReadFile(c.path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // pruned between snapshot and read
			}
			return nil, fmt.Errorf("tsdb: %w", err)
		}
		scanRecords(data, func(kind byte, payload []byte) {
			switch kind {
			case recRaw:
				if tier != tierRaw {
					return
				}
				wall, mono, v, ok := decodeRawSample(payload, name)
				if ok && wall >= lo && wall < hi {
					out = append(out, telemetry.Point{UnixNano: wall, Value: v, Mono: mono})
				}
			case recAgg:
				t, start, cell, ok := decodeAggSample(payload, name)
				if !ok || t != tier || start < lo || start >= hi {
					return
				}
				if merged == nil {
					merged = make(map[int64]*aggCell)
				}
				if c := merged[start]; c != nil {
					if cell.min < c.min {
						c.min = cell.min
					}
					if cell.max > c.max {
						c.max = cell.max
					}
					c.sum += cell.sum
					c.count += cell.count
				} else {
					cc := cell
					merged[start] = &cc
				}
			}
		})
	}
	for start, c := range merged {
		out = append(out, telemetry.Point{UnixNano: start, Value: c.sum / float64(c.count)})
	}
	return out, nil
}

// --- record encoding ---

// encodeRaw lays out one tick: kind, wall, mono, n, then n length-
// prefixed names each followed by the value's float64 bits.
func encodeRaw(wallNano, monoNano int64, samples []telemetry.Sample) []byte {
	size := 1 + 8 + 8 + 4
	for _, s := range samples {
		size += 2 + len(s.Name) + 8
	}
	b := make([]byte, 0, size)
	b = append(b, recRaw)
	b = binary.LittleEndian.AppendUint64(b, uint64(wallNano))
	b = binary.LittleEndian.AppendUint64(b, uint64(monoNano))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(samples)))
	for _, s := range samples {
		b = appendName(b, s.Name)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Value))
	}
	return b
}

// encodeAgg lays out one flushed bucket: kind, tier, bucket start, n,
// then n names each with min/max/sum/count. Names are sorted so the
// encoding is deterministic.
func encodeAgg(tier int, start int64, cells map[string]*aggCell) []byte {
	names := make([]string, 0, len(cells))
	for n := range cells {
		names = append(names, n)
	}
	sort.Strings(names)
	size := 1 + 1 + 8 + 4
	for _, n := range names {
		size += 2 + len(n) + 8*3 + 4
	}
	b := make([]byte, 0, size)
	b = append(b, recAgg)
	b = append(b, byte(tier))
	b = binary.LittleEndian.AppendUint64(b, uint64(start))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cells)))
	for _, n := range names {
		c := cells[n]
		b = appendName(b, n)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.min))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.max))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.sum))
		b = binary.LittleEndian.AppendUint32(b, c.count)
	}
	return b
}

func appendName(b []byte, name string) []byte {
	if len(name) > math.MaxUint16 {
		name = name[:math.MaxUint16]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(name)))
	return append(b, name...)
}

// decodeRawSample scans a raw record for one series, returning the
// tick's stamps and the series' value when present.
func decodeRawSample(p []byte, name string) (wall, mono int64, value float64, ok bool) {
	d := recReader{b: p, off: 1}
	wall = int64(d.u64())
	mono = int64(d.u64())
	n := d.u32()
	for i := uint32(0); i < n && !d.bad; i++ {
		nm := d.name()
		v := math.Float64frombits(d.u64())
		if nm == name && !d.bad {
			return wall, mono, v, true
		}
	}
	return 0, 0, 0, false
}

// decodeAggSample extracts one series' cell from an agg record.
func decodeAggSample(p []byte, name string) (tier int, start int64, cell aggCell, ok bool) {
	d := recReader{b: p, off: 1}
	tier = int(d.u8())
	start = int64(d.u64())
	n := d.u32()
	for i := uint32(0); i < n && !d.bad; i++ {
		nm := d.name()
		c := aggCell{
			min: math.Float64frombits(d.u64()),
			max: math.Float64frombits(d.u64()),
			sum: math.Float64frombits(d.u64()),
		}
		c.count = d.u32()
		if nm == name && !d.bad && c.count > 0 {
			return tier, start, c, true
		}
	}
	return 0, 0, aggCell{}, false
}

// recReader is a minimal sticky-error cursor over a record payload.
type recReader struct {
	b   []byte
	off int
	bad bool
}

func (d *recReader) take(n int) []byte {
	if d.bad || d.off+n > len(d.b) {
		d.bad = true
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *recReader) u8() byte {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *recReader) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *recReader) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *recReader) u16() uint16 {
	s := d.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (d *recReader) name() string {
	n := int(d.u16())
	if d.bad {
		return ""
	}
	return string(d.take(n))
}

// scanRecords walks the frames in a chunk image, invoking fn (when
// non-nil) for each intact record, and returns the byte length of the
// valid prefix — everything from the first short frame, oversized
// length, or CRC mismatch onward is a torn tail.
func scanRecords(data []byte, fn func(kind byte, payload []byte)) int {
	off := 0
	for {
		if len(data)-off < 8 {
			return off
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxRecordBytes || off+8+n > len(data) {
			return off
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return off
		}
		if fn != nil {
			fn(payload[0], payload)
		}
		off += 8 + n
	}
}
