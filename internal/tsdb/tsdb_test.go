package tsdb

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dosas/internal/telemetry"
)

// testClock is a deterministic wall clock advancing a fixed step per
// call site, so buckets and retention horizons are reproducible.
type testClock struct{ t time.Time }

func newClock() *testClock {
	return &testClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) now() time.Time { return c.t }

func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func openTest(t *testing.T, dir string, clk *testClock, mutate func(*Config)) *Archive {
	t.Helper()
	cfg := Config{Dir: dir, Now: clk.now}
	if mutate != nil {
		mutate(&cfg)
	}
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func appendTicks(t *testing.T, a *Archive, clk *testClock, n int, step time.Duration, f func(i int) float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		samples := []telemetry.Sample{
			{Name: "queue.depth", Value: f(i)},
			{Name: "est.error", Value: float64(i % 7)},
		}
		if err := a.Append(clk.now().UnixNano(), int64(i), samples); err != nil {
			t.Fatal(err)
		}
		clk.advance(step)
	}
}

func TestAppendQueryRoundTrip(t *testing.T) {
	clk := newClock()
	a := openTest(t, t.TempDir(), clk, nil)
	defer a.Close()

	start := clk.now().UnixNano()
	appendTicks(t, a, clk, 100, 100*time.Millisecond, func(i int) float64 { return float64(i) })

	pts, err := a.Query("queue.depth", start, clk.now().UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 100 {
		t.Fatalf("got %d points, want 100", len(pts))
	}
	for i, p := range pts {
		if p.Value != float64(i) {
			t.Fatalf("point %d: value %v, want %d", i, p.Value, i)
		}
		if i > 0 && p.UnixNano <= pts[i-1].UnixNano {
			t.Fatalf("points not strictly ordered at %d", i)
		}
	}
	// A sub-window query honors both bounds.
	sub, err := a.Query("queue.depth", pts[10].UnixNano, pts[19].UnixNano)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 10 || sub[0].Value != 10 || sub[9].Value != 19 {
		t.Fatalf("sub-window: got %d points [%v..%v]", len(sub), sub[0].Value, sub[len(sub)-1].Value)
	}
	if got, _ := a.Query("no.such.series", start, clk.now().UnixNano()); len(got) != 0 {
		t.Fatalf("unknown series returned %d points", len(got))
	}
	if e := a.Earliest(); e != start {
		t.Fatalf("Earliest = %d, want %d", e, start)
	}
}

// Reopening an archive after a clean close sees every persisted tick —
// the restart half of the crash-recovery contract.
func TestReopenKeepsHistory(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	a := openTest(t, dir, clk, nil)
	start := clk.now().UnixNano()
	appendTicks(t, a, clk, 50, 100*time.Millisecond, func(i int) float64 { return float64(i) })
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	a = openTest(t, dir, clk, nil)
	defer a.Close()
	appendTicks(t, a, clk, 50, 100*time.Millisecond, func(i int) float64 { return float64(50 + i) })
	pts, err := a.Query("queue.depth", start, clk.now().UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 100 {
		t.Fatalf("after reopen: %d points, want 100", len(pts))
	}
	for i, p := range pts {
		if p.Value != float64(i) {
			t.Fatalf("after reopen point %d = %v", i, p.Value)
		}
	}
}

// A torn tail — the partial frame a crash mid-write leaves behind — is
// truncated on reopen, and appending resumes where the valid prefix
// ends. Property-tested over many cut positions.
func TestCrashTruncatedTail(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		clk := newClock()
		a := openTest(t, dir, clk, nil)
		start := clk.now().UnixNano()
		appendTicks(t, a, clk, 30, 100*time.Millisecond, func(i int) float64 { return float64(i) })
		a.Close()

		// Simulate the crash: chop the active raw chunk at an arbitrary
		// byte offset (possibly mid-frame), or corrupt a tail byte.
		chunks, err := filepath.Glob(filepath.Join(dir, "t0-*"+chunkExt))
		if err != nil || len(chunks) == 0 {
			t.Fatalf("trial %d: no raw chunks (%v)", trial, err)
		}
		active := chunks[len(chunks)-1]
		data, err := os.ReadFile(active)
		if err != nil {
			t.Fatal(err)
		}
		if trial%2 == 0 {
			cut := rng.Intn(len(data)) + 1
			if err := os.WriteFile(active, data[:len(data)-cut], 0o644); err != nil {
				t.Fatal(err)
			}
		} else {
			data[len(data)-1-rng.Intn(8)] ^= 0xFF
			if err := os.WriteFile(active, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		a = openTest(t, dir, clk, nil)
		pts, err := a.Query("queue.depth", start, clk.now().UnixNano())
		if err != nil {
			t.Fatal(err)
		}
		// The surviving prefix must be exactly the first k ticks for
		// some k < 30 — never a gap, never a corrupt value.
		if len(pts) >= 30 {
			t.Fatalf("trial %d: corruption lost nothing (%d points)", trial, len(pts))
		}
		for i, p := range pts {
			if p.Value != float64(i) {
				t.Fatalf("trial %d: survivor %d has value %v", trial, i, p.Value)
			}
		}
		// Appends after recovery land after the survivors.
		preRecovery := len(pts)
		appendTicks(t, a, clk, 5, 100*time.Millisecond, func(i int) float64 { return float64(1000 + i) })
		pts, err = a.Query("queue.depth", start, clk.now().UnixNano())
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != preRecovery+5 {
			t.Fatalf("trial %d: post-recovery %d points, want %d", trial, len(pts), preRecovery+5)
		}
		a.Close()
	}
}

// The 10 s and 1 m tiers hold exact min/max/sum/count per bucket;
// queries over a pruned raw range serve the bucket means.
func TestDownsampleTiers(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	// Align the clock to a minute boundary so buckets are predictable.
	clk.t = clk.t.Truncate(time.Minute)
	a := openTest(t, dir, clk, nil)
	defer a.Close()

	start := clk.now().UnixNano()
	// 120 ticks at 1 s: 12 full 10 s buckets per minute, 2 full minutes.
	appendTicks(t, a, clk, 121, time.Second, func(i int) float64 { return float64(i % 10) })
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}

	// Count agg records via a direct tier scan: values 0..9 repeating
	// per 10 s bucket give mean 4.5 exactly.
	chunks, _ := filepath.Glob(filepath.Join(dir, "t1-*"+chunkExt))
	if len(chunks) == 0 {
		t.Fatal("no 10s-tier chunks written")
	}
	var buckets []telemetry.Point
	for _, path := range chunks {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		scanRecords(data, func(kind byte, payload []byte) {
			if kind != recAgg {
				t.Fatalf("raw record in 10s tier")
			}
			tier, bstart, cell, ok := decodeAggSample(payload, "queue.depth")
			if !ok || tier != tier10s {
				return
			}
			if cell.count == 10 && (cell.min != 0 || cell.max != 9 || cell.sum != 45) {
				t.Fatalf("full bucket %d: min=%v max=%v sum=%v", bstart, cell.min, cell.max, cell.sum)
			}
			buckets = append(buckets, telemetry.Point{UnixNano: bstart, Value: cell.sum / float64(cell.count)})
		})
	}
	if len(buckets) < 12 {
		t.Fatalf("only %d 10s buckets", len(buckets))
	}
	for _, b := range buckets {
		if (b.UnixNano-start)%int64(10*time.Second) != 0 {
			t.Fatalf("bucket %d not on the 10s grid", b.UnixNano)
		}
	}
}

// When the byte budget prunes raw chunks, queries transparently fall
// back to the coarser tiers for the pruned range.
func TestRetentionFallsBackToCoarseTiers(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	clk.t = clk.t.Truncate(time.Minute)
	a := openTest(t, dir, clk, func(c *Config) {
		c.ChunkBytes = 4 << 10 // rotate often so pruning has granularity
		c.MaxBytes = 24 << 10  // keep only a few raw chunks
	})
	defer a.Close()

	start := clk.now().UnixNano()
	appendTicks(t, a, clk, 600, time.Second, func(i int) float64 { return 5 })
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if a.PrunedFiles() == 0 {
		t.Fatal("expected retention to prune raw chunks")
	}
	pts, err := a.Query("queue.depth", start, clk.now().UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points at all after pruning")
	}
	// The window head must still be covered — by 10 s/1 m bucket means
	// (value 5 everywhere, so any tier agrees) — within one coarse
	// bucket of the start.
	if gap := pts[0].UnixNano - start; gap > int64(time.Minute) {
		t.Fatalf("pruning opened a %v gap at the window head", time.Duration(gap))
	}
	for _, p := range pts {
		if p.Value != 5 {
			t.Fatalf("point at %d has value %v, want 5", p.UnixNano, p.Value)
		}
	}
	// And the whole window is dense: no hole larger than a coarse bucket.
	for i := 1; i < len(pts); i++ {
		if d := pts[i].UnixNano - pts[i-1].UnixNano; d > int64(time.Minute) {
			t.Fatalf("gap of %v inside the stitched window", time.Duration(d))
		}
	}
}

// MaxAge drops whole chunks past the horizon on rotation.
func TestAgeRetention(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	a := openTest(t, dir, clk, func(c *Config) {
		c.ChunkBytes = 4 << 10
		c.MaxAge = 30 * time.Second
	})
	defer a.Close()

	start := clk.now().UnixNano()
	appendTicks(t, a, clk, 300, time.Second, func(i int) float64 { return 1 })
	pts, err := a.Query("queue.depth", start, clk.now().UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("age retention removed everything")
	}
	if age := clk.now().UnixNano() - pts[0].UnixNano; age > int64(5*time.Minute) {
		t.Fatalf("oldest retained point is %v old, horizon 30s", time.Duration(age))
	}
}

// archive.conf pins the chunk size: a reopen with a different configured
// size adopts the pinned one, and a corrupt conf is an error.
func TestConfPinning(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	a := openTest(t, dir, clk, func(c *Config) { c.ChunkBytes = 8 << 10 })
	appendTicks(t, a, clk, 10, time.Second, func(i int) float64 { return 0 })
	a.Close()

	a = openTest(t, dir, clk, func(c *Config) { c.ChunkBytes = 64 << 10 })
	if a.chunkBytes != 8<<10 {
		t.Fatalf("reopen took configured chunk size %d over pinned 8KiB", a.chunkBytes)
	}
	a.Close()

	if err := os.WriteFile(filepath.Join(dir, confName), []byte("v9 what\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, Now: clk.now}); err == nil {
		t.Fatal("corrupt archive.conf did not fail Open")
	}
}

// A nil archive is inert: every method is a no-op, so daemons without
// -archive-dir need no branches.
func TestNilArchive(t *testing.T) {
	var a *Archive
	if err := a.Append(1, 1, []telemetry.Sample{{Name: "x", Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if pts, err := a.Query("x", 0, 1<<62); err != nil || pts != nil {
		t.Fatalf("nil query: %v %v", pts, err)
	}
	if a.Earliest() != 0 || a.Size() != 0 || a.Appends() != 0 {
		t.Fatal("nil archive reported state")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}
