// Package metrics provides the lightweight instrumentation DOSAS servers
// use to account for their own load: atomic counters and gauges, windowed
// rate meters, and log-bucketed latency histograms. The Contention
// Estimator reads these instead of OS counters, which keeps scheduling
// decisions deterministic and testable.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomic float64 gauge (stored as bits).
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta using a CAS loop.
func (g *FloatGauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Meter measures an event rate (e.g. bytes/second) over a sliding window
// of fixed-width slots. It is cheap enough for the per-read fast path.
type Meter struct {
	mu        sync.Mutex
	slotWidth time.Duration
	slots     []float64
	head      int       // slot index for 'headTime'
	headTime  time.Time // start of the head slot
	now       func() time.Time
}

// NewMeter returns a meter averaging over window, divided into 16 slots.
func NewMeter(window time.Duration) *Meter {
	if window <= 0 {
		window = time.Second
	}
	slotWidth := window / 16
	if slotWidth <= 0 {
		// Windows shorter than 16 ns would make slotWidth zero and
		// advanceLocked divide by it; clamp to the finest resolution.
		slotWidth = 1
	}
	return &Meter{
		slotWidth: slotWidth,
		slots:     make([]float64, 16),
		now:       time.Now,
	}
}

// Mark records n units of the measured quantity at the current time.
func (m *Meter) Mark(n float64) {
	m.mu.Lock()
	m.advanceLocked(m.now())
	m.slots[m.head] += n
	m.mu.Unlock()
}

// Rate returns the average rate in units/second over the window.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advanceLocked(m.now())
	var sum float64
	for _, s := range m.slots {
		sum += s
	}
	window := m.slotWidth * time.Duration(len(m.slots))
	return sum / window.Seconds()
}

// advanceLocked rotates the slot ring forward to cover 'now', zeroing any
// slots that have fallen out of the window.
func (m *Meter) advanceLocked(now time.Time) {
	if m.headTime.IsZero() {
		m.headTime = now
		return
	}
	steps := int(now.Sub(m.headTime) / m.slotWidth)
	if steps <= 0 {
		return
	}
	if steps >= len(m.slots) {
		for i := range m.slots {
			m.slots[i] = 0
		}
		m.head = 0
		m.headTime = now
		return
	}
	for i := 0; i < steps; i++ {
		m.head = (m.head + 1) % len(m.slots)
		m.slots[m.head] = 0
	}
	m.headTime = m.headTime.Add(time.Duration(steps) * m.slotWidth)
}

// Histogram accumulates observations into exponentially sized buckets
// (powers of two in microseconds when used for latencies). It keeps exact
// count, sum, min and max alongside the buckets.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]int64
	count   int64
	sum     float64
	min     float64
	max     float64
}

// Observe records v (must be non-negative; negative values clamp to 0).
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	b := bucketFor(v)
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

func bucketFor(v float64) int {
	if v < 1 {
		return 0
	}
	b := int(math.Log2(v)) + 1
	if b >= 64 {
		b = 63
	}
	return b
}

// HistogramSnapshot is a consistent copy of a Histogram's state.
type HistogramSnapshot struct {
	Count    int64
	Sum      float64
	Min, Max float64
	Buckets  [64]int64
}

// Snapshot returns a copy of the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Buckets: h.buckets}
}

// Mean returns the arithmetic mean of observed values, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) using the
// bucket upper bounds. Exact for min (q=0) and max (q=1).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	target := int64(q * float64(s.Count))
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum > target {
			if i == 0 {
				return 1
			}
			return math.Exp2(float64(i)) // upper bound of bucket i
		}
	}
	return s.Max
}

// Registry is a named collection of metrics, used by servers to expose a
// status dump.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	meters map[string]*Meter
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		meters: make(map[string]*Meter),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = new(Counter)
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Meter returns the named meter (1 s window), creating it on first use.
func (r *Registry) Meter(name string) *Meter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.meters[name]
	if !ok {
		m = NewMeter(time.Second)
		r.meters[name] = m
	}
	return m
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// HistogramStats is the JSON-friendly digest of one histogram, as
// exported in Snapshot.
type HistogramStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a consistent, JSON-encodable copy of a registry's state —
// the structured export behind wire.StatsResp and dosasctl stats. Its
// JSON encoding is deterministic: encoding/json emits map keys in sorted
// order, so two snapshots of the same state encode byte-identically and
// `dosasctl stats -json` output is diffable across runs (locked in by
// TestSnapshotJSONDeterministic).
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Meters     map[string]float64        `json:"meters,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Counter reads a counter from the snapshot (0 when absent), sparing
// callers the nil-map check.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Snapshot captures every registered metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counts) > 0 {
		s.Counters = make(map[string]int64, len(r.counts))
		for n, c := range r.counts {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.meters) > 0 {
		s.Meters = make(map[string]float64, len(r.meters))
		for n, m := range r.meters {
			s.Meters[n] = m.Rate()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(r.hists))
		for n, h := range r.hists {
			hs := h.Snapshot()
			s.Histograms[n] = HistogramStats{
				Count: hs.Count,
				Mean:  hs.Mean(),
				Min:   hs.Min,
				Max:   hs.Max,
				P50:   hs.Quantile(0.5),
				P90:   hs.Quantile(0.9),
				P99:   hs.Quantile(0.99),
			}
		}
	}
	return s
}

// Dump renders all metrics as "name value" lines in sorted order.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for n, c := range r.counts {
		lines = append(lines, fmt.Sprintf("counter %s %d", n, c.Value()))
	}
	for n, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %d", n, g.Value()))
	}
	for n, m := range r.meters {
		lines = append(lines, fmt.Sprintf("meter %s %.3f/s", n, m.Rate()))
	}
	for n, h := range r.hists {
		s := h.Snapshot()
		lines = append(lines, fmt.Sprintf("hist %s count=%d mean=%.3f p99=%.3f", n, s.Count, s.Mean(), s.Quantile(0.99)))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
