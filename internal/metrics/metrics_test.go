package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("value = %d", g.Value())
	}
}

func TestFloatGauge(t *testing.T) {
	var g FloatGauge
	g.Set(1.5)
	g.Add(0.25)
	if g.Value() != 1.75 {
		t.Fatalf("value = %v", g.Value())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 801.75 {
		t.Fatalf("concurrent adds = %v", g.Value())
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter(time.Second)
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }
	m.Mark(500)
	now = now.Add(100 * time.Millisecond)
	m.Mark(500)
	// 1000 units in a 1 s window → 1000/s.
	if r := m.Rate(); r < 900 || r > 1100 {
		t.Fatalf("rate = %v", r)
	}
	// After the window fully rotates, the rate decays to zero.
	now = now.Add(2 * time.Second)
	if r := m.Rate(); r != 0 {
		t.Fatalf("decayed rate = %v", r)
	}
}

func TestMeterPartialDecay(t *testing.T) {
	m := NewMeter(time.Second)
	now := time.Unix(2000, 0)
	m.now = func() time.Time { return now }
	m.Mark(1600)
	// Half a window later, the marks are still inside the window.
	now = now.Add(500 * time.Millisecond)
	if r := m.Rate(); r < 1500 {
		t.Fatalf("rate after half-window = %v", r)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 4, 8, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if mean := s.Mean(); mean != 203 {
		t.Fatalf("mean = %v", mean)
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 1000 {
		t.Fatalf("q1 = %v", q)
	}
	if q := s.Quantile(0.5); q < 2 || q > 16 {
		t.Fatalf("median estimate = %v", q)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(-5) // clamps to 0
	if s := h.Snapshot(); s.Min != 0 {
		t.Fatalf("min = %v", s.Min)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(3)
	if r.Counter("ops").Value() != 3 {
		t.Fatal("counter identity lost")
	}
	r.Gauge("depth").Set(2)
	r.Meter("bytes").Mark(10)
	r.Histogram("lat").Observe(5)
	dump := r.Dump()
	for _, want := range []string{"counter ops 3", "gauge depth 2", "meter bytes", "hist lat"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Meter("m").Mark(1)
				r.Histogram("h").Observe(1)
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 800 {
		t.Fatalf("counter = %d", r.Counter("c").Value())
	}
}

func TestMeterTinyWindowDoesNotPanic(t *testing.T) {
	// Windows under 16 ns used to make the slot width zero and crash
	// advance with a divide-by-zero; they must clamp to 1 ns instead.
	for _, w := range []time.Duration{1, 15, 16} {
		m := NewMeter(w)
		m.Mark(10)
		if r := m.Rate(); math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("window %d: rate = %v", w, r)
		}
	}
}

func TestMeterIdleGapRotation(t *testing.T) {
	m := NewMeter(time.Second)
	now := time.Unix(3000, 0)
	m.now = func() time.Time { return now }
	m.Mark(1000)

	// An idle gap longer than the whole window must zero every slot and
	// reset the ring, not walk it slot by slot.
	now = now.Add(5 * time.Second)
	if r := m.Rate(); r != 0 {
		t.Fatalf("rate after idle gap = %v, want 0", r)
	}

	// The meter must keep working after the reset.
	m.Mark(800)
	if r := m.Rate(); r < 700 {
		t.Fatalf("rate after restart = %v", r)
	}

	// A partial rotation (less than a full window) keeps in-window marks.
	now = now.Add(500 * time.Millisecond)
	if r := m.Rate(); r < 700 {
		t.Fatalf("rate after partial rotation = %v", r)
	}
}

func TestHistogramQuantileBucketBoundaries(t *testing.T) {
	// Sub-1 values land in bucket 0, whose quantile estimate is 1.
	var h Histogram
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(0.75)
	if q := h.Snapshot().Quantile(0.5); q != 1 {
		t.Fatalf("bucket-0 median = %v, want 1", q)
	}

	// A single observation reports its bucket's upper bound for interior
	// quantiles, and exact min/max at the edges.
	var h2 Histogram
	h2.Observe(1000) // bucket 10: (512, 1024]
	s := h2.Snapshot()
	if q := s.Quantile(0.5); q != 1024 {
		t.Fatalf("median = %v, want bucket upper bound 1024", q)
	}
	if s.Quantile(0) != 1000 || s.Quantile(1) != 1000 {
		t.Fatalf("edge quantiles = %v, %v, want exact value", s.Quantile(0), s.Quantile(1))
	}

	// Power-of-two observations map to successive buckets: interior
	// quantile estimates are non-decreasing in q (the edges q=0 and q=1
	// report exact min/max, which bucket upper bounds may overshoot).
	var h3 Histogram
	for _, v := range []float64{1, 2, 4, 8, 16} {
		h3.Observe(v)
	}
	s3 := h3.Snapshot()
	prev := 0.0
	for _, q := range []float64{0.2, 0.4, 0.6, 0.8} {
		v := s3.Quantile(q)
		if v < prev {
			t.Fatalf("quantile(%v) = %v < quantile at smaller q (%v)", q, v, prev)
		}
		prev = v
	}
	if s3.Quantile(0) != 1 || s3.Quantile(1) != 16 {
		t.Fatalf("edges = %v, %v, want exact min/max", s3.Quantile(0), s3.Quantile(1))
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("active.arrivals").Add(7)
	r.Gauge("depth").Set(3)
	r.Meter("bytes").Mark(100)
	r.Histogram("lat").Observe(50)

	s := r.Snapshot()
	if s.Counter("active.arrivals") != 7 {
		t.Fatalf("counter = %d", s.Counter("active.arrivals"))
	}
	if s.Counter("no.such.counter") != 0 {
		t.Fatal("missing counter should read 0")
	}
	if s.Gauges["depth"] != 3 {
		t.Fatalf("gauge = %d", s.Gauges["depth"])
	}
	h, ok := s.Histograms["lat"]
	if !ok || h.Count != 1 || h.Min != 50 || h.Max != 50 {
		t.Fatalf("histogram stats = %+v", h)
	}

	// The snapshot must be JSON-encodable and round-trip its contents.
	js, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("active.arrivals") != 7 || back.Histograms["lat"].Count != 1 {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}

	// An empty registry snapshots to empty (omitted) maps, not a panic.
	var empty Snapshot = NewRegistry().Snapshot()
	if empty.Counter("x") != 0 {
		t.Fatal("empty snapshot counter should read 0")
	}
}

// Golden test: the JSON encoding of a Snapshot is deterministic (sorted
// map keys, stable field order), so dosasctl stats -json is diffable
// across runs. If this test breaks, the stats export format changed.
func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		// Register in an order unlike the sorted output, to prove sorting.
		r.Counter("zeta.count").Add(9)
		r.Counter("active.arrivals").Add(7)
		r.Counter("data.bytes_read").Add(4096)
		r.Gauge("queue.depth").Set(3)
		r.Gauge("data.inflight").Set(1)
		r.Histogram("lat").Observe(50)
		return r.Snapshot()
	}
	const golden = `{"counters":{"active.arrivals":7,"data.bytes_read":4096,"zeta.count":9},` +
		`"gauges":{"data.inflight":1,"queue.depth":3},` +
		`"histograms":{"lat":{"count":1,"mean":50,"min":50,"max":50,"p50":64,"p90":64,"p99":64}}}`
	first, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != golden {
		t.Fatalf("snapshot JSON drifted from golden:\n got %s\nwant %s", first, golden)
	}
	for i := 0; i < 10; i++ {
		again, err := json.Marshal(build())
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("snapshot JSON not deterministic:\n %s\n vs\n %s", first, again)
		}
	}
}
