package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("value = %d", g.Value())
	}
}

func TestFloatGauge(t *testing.T) {
	var g FloatGauge
	g.Set(1.5)
	g.Add(0.25)
	if g.Value() != 1.75 {
		t.Fatalf("value = %v", g.Value())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 801.75 {
		t.Fatalf("concurrent adds = %v", g.Value())
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter(time.Second)
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }
	m.Mark(500)
	now = now.Add(100 * time.Millisecond)
	m.Mark(500)
	// 1000 units in a 1 s window → 1000/s.
	if r := m.Rate(); r < 900 || r > 1100 {
		t.Fatalf("rate = %v", r)
	}
	// After the window fully rotates, the rate decays to zero.
	now = now.Add(2 * time.Second)
	if r := m.Rate(); r != 0 {
		t.Fatalf("decayed rate = %v", r)
	}
}

func TestMeterPartialDecay(t *testing.T) {
	m := NewMeter(time.Second)
	now := time.Unix(2000, 0)
	m.now = func() time.Time { return now }
	m.Mark(1600)
	// Half a window later, the marks are still inside the window.
	now = now.Add(500 * time.Millisecond)
	if r := m.Rate(); r < 1500 {
		t.Fatalf("rate after half-window = %v", r)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 4, 8, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if mean := s.Mean(); mean != 203 {
		t.Fatalf("mean = %v", mean)
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 1000 {
		t.Fatalf("q1 = %v", q)
	}
	if q := s.Quantile(0.5); q < 2 || q > 16 {
		t.Fatalf("median estimate = %v", q)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(-5) // clamps to 0
	if s := h.Snapshot(); s.Min != 0 {
		t.Fatalf("min = %v", s.Min)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(3)
	if r.Counter("ops").Value() != 3 {
		t.Fatal("counter identity lost")
	}
	r.Gauge("depth").Set(2)
	r.Meter("bytes").Mark(10)
	r.Histogram("lat").Observe(5)
	dump := r.Dump()
	for _, want := range []string{"counter ops 3", "gauge depth 2", "meter bytes", "hist lat"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Meter("m").Mark(1)
				r.Histogram("h").Observe(1)
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 800 {
		t.Fatalf("counter = %d", r.Counter("c").Value())
	}
}
