package kernels

import (
	"testing"
)

func TestRateDefaultsMatchPaper(t *testing.T) {
	ResetRates()
	if RateFor("sum8") != 860e6 {
		t.Errorf("sum8 rate = %v, want the paper's 860 MB/s", RateFor("sum8"))
	}
	if RateFor("gaussian2d") != 80e6 {
		t.Errorf("gaussian2d rate = %v, want the paper's 80 MB/s", RateFor("gaussian2d"))
	}
	if RateFor("no-such-op") != 0 {
		t.Error("unknown op should report 0")
	}
	// Every registered kernel must have a calibrated default, or the
	// scheduler cannot cost it.
	for _, op := range Names() {
		if RateFor(op) <= 0 {
			t.Errorf("kernel %q has no default rate", op)
		}
	}
}

func TestSetRateAndReset(t *testing.T) {
	ResetRates()
	SetRate("sum8", 123e6)
	if RateFor("sum8") != 123e6 {
		t.Fatal("override ignored")
	}
	ResetRates()
	if RateFor("sum8") != 860e6 {
		t.Fatal("reset did not restore the default")
	}
}

func TestCalibrateAllKernels(t *testing.T) {
	// Every registered kernel must be calibratable with its default
	// params over arbitrary synthetic data.
	for _, op := range Names() {
		rate, err := Calibrate(op, 1<<20, false)
		if err != nil {
			t.Errorf("%s: %v", op, err)
			continue
		}
		if rate <= 0 {
			t.Errorf("%s: rate = %v", op, rate)
		}
	}
}

func TestCalibrateStoreInstallsRate(t *testing.T) {
	ResetRates()
	defer ResetRates()
	rate, err := Calibrate("sum8", 1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	if RateFor("sum8") != rate {
		t.Fatalf("stored %v but RateFor gives %v", rate, RateFor("sum8"))
	}
}

func TestCalibrateUnknownOp(t *testing.T) {
	if _, err := Calibrate("bogus", 1024, false); err == nil {
		t.Fatal("unknown op calibrated")
	}
}

// ResultSize drives the scheduler's h(x) term; pin each kernel's contract.
func TestResultSizeContracts(t *testing.T) {
	const x = 1 << 20
	cases := []struct {
		op     string
		params []byte
		want   uint64
	}{
		{"sum8", nil, 8},
		{"sum64", nil, 8},
		{"minmax", nil, 16},
		{"moments", nil, 24},
		{"histogram", nil, 2048},
		{"count", []byte("z"), 8},
		{"wordcount", nil, 8},
		{"downsample", DownsampleParams(16), x / 16},
		{"kmeans1d", KMeansParams(4, 0, 1), 64},
		{"gaussian2d", GaussianParams(64, false), 29},
		{"gaussian2d", GaussianParams(64, true), x},
	}
	for _, tc := range cases {
		k, err := New(tc.op)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Configure(tc.params); err != nil {
			t.Fatal(err)
		}
		if got := k.ResultSize(x); got != tc.want {
			t.Errorf("%s: ResultSize(%d) = %d, want %d", tc.op, x, got, tc.want)
		}
	}
}
