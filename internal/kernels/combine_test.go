package kernels

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// splitRun processes data split across n independent kernel instances and
// combines the partial results — what the ASC does when a request spans n
// storage nodes.
func splitRun(t *testing.T, op string, params, data []byte, n int) []byte {
	t.Helper()
	if n < 1 {
		n = 1
	}
	parts := make([][]byte, 0, n)
	per := (len(data) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * per
		if lo > len(data) {
			lo = len(data)
		}
		hi := lo + per
		if hi > len(data) {
			hi = len(data)
		}
		parts = append(parts, runWhole(t, op, params, data[lo:hi]))
	}
	out, err := Combine(op, parts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// Property: for every decomposable reduction, computing on shards and
// combining equals computing on the whole stream. (Shard boundaries are
// element-aligned, as stripe boundaries are in practice for 8-byte data.)
func TestCombineEquivalenceProperty(t *testing.T) {
	cases := []struct {
		op     string
		params []byte
		align  int
		float  bool // generate finite float64 data; compare tolerantly
	}{
		{"sum8", nil, 1, false},
		{"sum64", nil, 8, true},
		{"minmax", nil, 8, true},
		{"moments", nil, 8, true},
		{"histogram", nil, 1, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.op, func(t *testing.T) {
			f := func(seed int64, nData uint16, shards uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				n := (int(nData)%2048 + tc.align) / tc.align * tc.align
				var data []byte
				if tc.float {
					vals := make([]float64, n/8)
					for i := range vals {
						vals[i] = rng.NormFloat64() * 1e3
					}
					data = floatStream(vals)
					n = len(data)
				} else {
					data = make([]byte, n)
					rng.Read(data)
				}
				want := runWhole(t, tc.op, tc.params, data)
				// Shard on aligned boundaries.
				k := int(shards)%4 + 1
				per := (n/tc.align + k - 1) / k * tc.align
				if per == 0 {
					per = tc.align
				}
				var parts [][]byte
				for lo := 0; lo < n; lo += per {
					hi := lo + per
					if hi > n {
						hi = n
					}
					parts = append(parts, runWhole(t, tc.op, tc.params, data[lo:hi]))
				}
				if len(parts) == 0 {
					parts = [][]byte{runWhole(t, tc.op, tc.params, nil)}
				}
				got, err := Combine(tc.op, parts)
				if err != nil {
					return false
				}
				if tc.float {
					// Float addition reassociates across shards:
					// compare decoded values tolerantly.
					return floatsClose(t, tc.op, got, want)
				}
				return bytes.Equal(got, want)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// floatsClose compares two float-valued kernel outputs with relative
// tolerance.
func floatsClose(t *testing.T, op string, got, want []byte) bool {
	t.Helper()
	close := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return math.IsNaN(a) == math.IsNaN(b)
		}
		return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b))
	}
	switch op {
	case "sum64":
		return close(Sum64Result(got), Sum64Result(want))
	case "minmax":
		gmn, gmx, _ := MinMaxResult(got)
		wmn, wmx, _ := MinMaxResult(want)
		return close(gmn, wmn) && close(gmx, wmx)
	case "moments":
		g, _ := MomentsResult(got)
		w, _ := MomentsResult(want)
		return g.Count == w.Count && close(g.Sum, w.Sum) && close(g.SumSq, w.SumSq)
	default:
		return bytes.Equal(got, want)
	}
}

func TestCombineCount(t *testing.T) {
	// Combination is per-shard counting: matches inside shards add up
	// (cross-shard matches are the documented striping caveat).
	data := []byte("xxabxx")
	got := splitRun(t, "count", []byte("ab"), data, 3)
	if CountResult(got) != 1 {
		t.Errorf("count = %d", CountResult(got))
	}
}

func TestCombineGaussianDigest(t *testing.T) {
	a := runWhole(t, "gaussian2d", GaussianParams(8, false), bytes.Repeat([]byte{10}, 64))
	b := runWhole(t, "gaussian2d", GaussianParams(8, false), bytes.Repeat([]byte{200}, 64))
	out, err := Combine("gaussian2d", [][]byte{a, b})
	if err != nil {
		t.Fatal(err)
	}
	dig, err := DecodeGaussianDigest(out)
	if err != nil {
		t.Fatal(err)
	}
	if dig.Pixels != 128 || dig.Min != 10 || dig.Max != 200 {
		t.Errorf("combined digest = %+v", dig)
	}
	if dig.Sum != 64*10+64*200 {
		t.Errorf("combined sum = %d", dig.Sum)
	}
}

func TestCombineSinglePartPassthrough(t *testing.T) {
	// Even uncombinable ops pass through a single part.
	out, err := Combine("downsample", [][]byte{{1, 2, 3}})
	if err != nil || !bytes.Equal(out, []byte{1, 2, 3}) {
		t.Fatalf("single part: %v %v", out, err)
	}
}

func TestCombineUncombinableFails(t *testing.T) {
	if _, err := Combine("downsample", [][]byte{{1}, {2}}); err == nil {
		t.Fatal("downsample multi-part combine should fail")
	}
	if CanCombine("downsample") {
		t.Error("downsample must not advertise a combiner")
	}
	if !CanCombine("sum8") {
		t.Error("sum8 must advertise a combiner")
	}
}

func TestCombineMinMaxSkipsEmptyShards(t *testing.T) {
	full := runWhole(t, "minmax", nil, floatStream([]float64{5, -3}))
	empty := runWhole(t, "minmax", nil, nil)
	out, err := Combine("minmax", [][]byte{empty, full, empty})
	if err != nil {
		t.Fatal(err)
	}
	mn, mx, err := MinMaxResult(out)
	if err != nil || mn != -3 || mx != 5 {
		t.Errorf("minmax with empty shards = %v %v %v", mn, mx, err)
	}
}

func TestCombineShortPartFails(t *testing.T) {
	for _, op := range []string{"sum8", "sum64", "minmax", "moments", "histogram", "gaussian2d"} {
		if _, err := Combine(op, [][]byte{{1}, {2}}); err == nil {
			t.Errorf("%s: short partial accepted", op)
		}
	}
}
