package kernels

import (
	"errors"
	"fmt"

	"dosas/internal/wire"
)

// State is the checkpoint container kernels serialise themselves into. The
// paper specifies that an interrupted kernel writes its status as a list of
// ⟨variable name, variable type, value⟩ records into shared memory; State
// is exactly that, encoded with the wire codec so checkpoints can travel in
// ActiveReadResp messages unchanged.
type State struct {
	vars  map[string]stateVar
	order []string // insertion order, for deterministic encoding
}

type stateVar struct {
	typ uint8
	i   int64
	f   float64
	b   []byte
}

// Variable type tags; on-the-wire values.
const (
	stInt64 uint8 = iota + 1
	stFloat64
	stBytes
)

// State errors.
var (
	ErrStateMissing = errors.New("kernels: checkpoint variable missing")
	ErrStateType    = errors.New("kernels: checkpoint variable has wrong type")
	ErrStateCorrupt = errors.New("kernels: corrupt checkpoint")
)

// NewState returns an empty checkpoint container.
func NewState() *State {
	return &State{vars: make(map[string]stateVar)}
}

func (s *State) put(name string, v stateVar) {
	if _, ok := s.vars[name]; !ok {
		s.order = append(s.order, name)
	}
	s.vars[name] = v
}

// PutInt64 records an integer variable.
func (s *State) PutInt64(name string, v int64) { s.put(name, stateVar{typ: stInt64, i: v}) }

// PutFloat64 records a float variable.
func (s *State) PutFloat64(name string, v float64) { s.put(name, stateVar{typ: stFloat64, f: v}) }

// PutBytes records a byte-slice variable (copied).
func (s *State) PutBytes(name string, v []byte) {
	b := make([]byte, len(v))
	copy(b, v)
	s.put(name, stateVar{typ: stBytes, b: b})
}

// Int64 fetches an integer variable.
func (s *State) Int64(name string) (int64, error) {
	v, ok := s.vars[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrStateMissing, name)
	}
	if v.typ != stInt64 {
		return 0, fmt.Errorf("%w: %q", ErrStateType, name)
	}
	return v.i, nil
}

// Float64 fetches a float variable.
func (s *State) Float64(name string) (float64, error) {
	v, ok := s.vars[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrStateMissing, name)
	}
	if v.typ != stFloat64 {
		return 0, fmt.Errorf("%w: %q", ErrStateType, name)
	}
	return v.f, nil
}

// Bytes fetches a byte-slice variable.
func (s *State) Bytes(name string) ([]byte, error) {
	v, ok := s.vars[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrStateMissing, name)
	}
	if v.typ != stBytes {
		return nil, fmt.Errorf("%w: %q", ErrStateType, name)
	}
	return v.b, nil
}

// Encode serialises the state, prefixed with the owning kernel's name so a
// mismatched Restore fails loudly instead of silently corrupting results.
func (s *State) Encode(kernelName string) ([]byte, error) {
	var e wire.Encoder
	e.PutString(kernelName)
	e.PutU32(uint32(len(s.order)))
	for _, name := range s.order {
		v := s.vars[name]
		e.PutString(name)
		e.PutU8(v.typ)
		switch v.typ {
		case stInt64:
			e.PutI64(v.i)
		case stFloat64:
			e.PutF64(v.f)
		case stBytes:
			e.PutBytes(v.b)
		}
	}
	if err := e.Err(); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

// DecodeState parses a checkpoint, verifying it belongs to kernelName.
func DecodeState(kernelName string, raw []byte) (*State, error) {
	d := wire.NewDecoder(raw)
	owner := d.String()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStateCorrupt, err)
	}
	if owner != kernelName {
		return nil, fmt.Errorf("%w: checkpoint belongs to %q, not %q", ErrStateType, owner, kernelName)
	}
	n := int(d.U32())
	s := NewState()
	for i := 0; i < n; i++ {
		name := d.String()
		typ := d.U8()
		switch typ {
		case stInt64:
			s.put(name, stateVar{typ: stInt64, i: d.I64()})
		case stFloat64:
			s.put(name, stateVar{typ: stFloat64, f: d.F64()})
		case stBytes:
			b := d.Bytes()
			cp := make([]byte, len(b))
			copy(cp, b)
			s.put(name, stateVar{typ: stBytes, b: cp})
		default:
			return nil, fmt.Errorf("%w: unknown variable type %d", ErrStateCorrupt, typ)
		}
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrStateCorrupt, err)
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStateCorrupt, err)
	}
	return s, nil
}
