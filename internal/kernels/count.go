package kernels

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

func init() {
	Register("count", func() Kernel { return &patternCount{} })
	Register("wordcount", func() Kernel { return &wordCount{} })
}

// patternCount counts occurrences of a byte pattern (grep -c for a fixed
// string), handling matches that straddle chunk boundaries by carrying the
// last len(pattern)-1 bytes between calls. Result: count as uint64.
// Parameters: the raw pattern bytes.
type patternCount struct {
	pattern []byte
	tail    []byte
	count   uint64
}

func (*patternCount) Name() string             { return "count" }
func (*patternCount) ResultSize(uint64) uint64 { return 8 }

func (k *patternCount) Configure(params []byte) error {
	if len(params) == 0 {
		return fmt.Errorf("kernels: count requires a non-empty pattern")
	}
	k.pattern = append([]byte(nil), params...)
	return nil
}

func (k *patternCount) Process(chunk []byte) error {
	if len(k.pattern) == 0 {
		return fmt.Errorf("kernels: count not configured")
	}
	buf := chunk
	if len(k.tail) > 0 {
		buf = append(append([]byte(nil), k.tail...), chunk...)
	}
	// Count overlapping matches that END inside the new bytes. Matches
	// fully contained in the carried tail were counted in a prior call
	// (the tail is shorter than the pattern, so none can be).
	for i := 0; ; {
		j := bytes.Index(buf[i:], k.pattern)
		if j < 0 {
			break
		}
		k.count++
		i += j + 1
	}
	// Carry the last len(pattern)-1 bytes for boundary matches.
	keep := len(k.pattern) - 1
	if keep > len(buf) {
		keep = len(buf)
	}
	k.tail = append(k.tail[:0], buf[len(buf)-keep:]...)
	return nil
}

func (k *patternCount) Checkpoint() ([]byte, error) {
	s := NewState()
	s.PutBytes("pattern", k.pattern)
	s.PutBytes("tail", k.tail)
	s.PutInt64("count", int64(k.count))
	return s.Encode(k.Name())
}

func (k *patternCount) Restore(state []byte) error {
	s, err := DecodeState(k.Name(), state)
	if err != nil {
		return err
	}
	pat, err := s.Bytes("pattern")
	if err != nil {
		return err
	}
	tail, err := s.Bytes("tail")
	if err != nil {
		return err
	}
	count, err := s.Int64("count")
	if err != nil {
		return err
	}
	k.pattern = append([]byte(nil), pat...)
	k.tail = append([]byte(nil), tail...)
	k.count = uint64(count)
	return nil
}

func (k *patternCount) Result() ([]byte, error) {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, k.count)
	return out, nil
}

// CountResult decodes a count or wordcount kernel output.
func CountResult(out []byte) uint64 {
	if len(out) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(out)
}

// wordCount counts whitespace-separated words in a byte stream. Result:
// count as uint64.
type wordCount struct {
	count  uint64
	inWord bool
}

func (*wordCount) Name() string             { return "wordcount" }
func (*wordCount) Configure([]byte) error   { return nil }
func (*wordCount) ResultSize(uint64) uint64 { return 8 }

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\v' || b == '\f'
}

func (k *wordCount) Process(chunk []byte) error {
	in := k.inWord
	var n uint64
	for _, b := range chunk {
		if isSpace(b) {
			in = false
		} else if !in {
			in = true
			n++
		}
	}
	k.inWord = in
	k.count += n
	return nil
}

func (k *wordCount) Checkpoint() ([]byte, error) {
	s := NewState()
	s.PutInt64("count", int64(k.count))
	if k.inWord {
		s.PutInt64("inWord", 1)
	} else {
		s.PutInt64("inWord", 0)
	}
	return s.Encode(k.Name())
}

func (k *wordCount) Restore(state []byte) error {
	s, err := DecodeState(k.Name(), state)
	if err != nil {
		return err
	}
	count, err := s.Int64("count")
	if err != nil {
		return err
	}
	inWord, err := s.Int64("inWord")
	if err != nil {
		return err
	}
	k.count = uint64(count)
	k.inWord = inWord != 0
	return nil
}

func (k *wordCount) Result() ([]byte, error) {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, k.count)
	return out, nil
}
