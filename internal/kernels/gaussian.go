package kernels

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"dosas/internal/wire"
)

func init() {
	Register("gaussian2d", func() Kernel { return &gaussian2d{} })
}

// GaussianParams encodes parameters for the gaussian2d kernel: the image
// row width in pixels, and whether to emit the full filtered image (true)
// or only a 29-byte digest (false). Digest mode is what the scheduling
// experiments use — active storage only pays off when h(x) ≪ x, and the
// paper's cost model assumes a small result transfer g(h(x)).
func GaussianParams(width uint32, emitFull bool) []byte {
	var e wire.Encoder
	e.PutU32(width)
	e.PutBool(emitFull)
	return e.Bytes()
}

// GaussianParamsHalo is GaussianParams plus explicit halo rows: top is
// used as the row above the band's first row and bottom as the row below
// its last (instead of edge replication). Halos let a band of rows be
// filtered in isolation yet bit-exactly match the same rows of a whole-
// image filter — the mechanism behind exact Gaussian filtering of striped
// images. Either halo may be nil to keep replication on that edge.
func GaussianParamsHalo(width uint32, emitFull bool, top, bottom []byte) []byte {
	var e wire.Encoder
	e.PutU32(width)
	e.PutBool(emitFull)
	e.PutBytes(top)
	e.PutBytes(bottom)
	return e.Bytes()
}

// gaussian2d applies the paper's 2-D Gaussian filter benchmark: a 3×3
// convolution with kernel [[1,2,1],[2,4,2],[1,2,1]]/16 over an 8-bit
// grayscale image — 9 multiplications, 9 additions and 1 division per
// pixel, the computation complexity of paper Table III.
//
// The stream is rows of width pixels, one byte each. Border pixels are
// handled by edge replication. In digest mode the result is
// ⟨rows u64, sum u64, min u8, max u8, crc32 u32⟩ of the filtered interior;
// in full mode the filtered image itself.
type gaussian2d struct {
	width    int
	emitFull bool
	topHalo  []byte // optional explicit neighbour above the first row
	botHalo  []byte // optional explicit neighbour below the last row

	rowPartial []byte // bytes of the row currently being assembled
	prev, cur  []byte // last two complete rows
	rows       uint64 // complete rows consumed

	// Digest accumulators over filtered pixels.
	fSum    uint64
	fMin    uint8
	fMax    uint8
	fCRC    uint32
	fPixels uint64
	full    []byte // filtered image when emitFull
	haveMin bool
}

func (*gaussian2d) Name() string { return "gaussian2d" }

func (k *gaussian2d) ResultSize(inputBytes uint64) uint64 {
	if k.emitFull {
		return inputBytes
	}
	return 29
}

func (k *gaussian2d) Configure(params []byte) error {
	if len(params) == 0 {
		return fmt.Errorf("kernels: gaussian2d requires GaussianParams")
	}
	d := wire.NewDecoder(params)
	w := d.U32()
	k.emitFull = d.Bool()
	if err := d.Err(); err != nil {
		return fmt.Errorf("kernels: gaussian2d params: %w", err)
	}
	if w < 3 {
		return fmt.Errorf("kernels: gaussian2d width %d below minimum 3", w)
	}
	k.width = int(w)
	// Optional halo rows (GaussianParamsHalo).
	if d.Remaining() > 0 {
		top := d.Bytes()
		bottom := d.Bytes()
		if err := d.Err(); err != nil {
			return fmt.Errorf("kernels: gaussian2d halo params: %w", err)
		}
		if len(top) > 0 {
			if len(top) != k.width {
				return fmt.Errorf("kernels: gaussian2d top halo has %d bytes, want %d", len(top), k.width)
			}
			k.topHalo = append([]byte(nil), top...)
		}
		if len(bottom) > 0 {
			if len(bottom) != k.width {
				return fmt.Errorf("kernels: gaussian2d bottom halo has %d bytes, want %d", len(bottom), k.width)
			}
			k.botHalo = append([]byte(nil), bottom...)
		}
	}
	return nil
}

func (k *gaussian2d) Process(chunk []byte) error {
	if k.width == 0 {
		return fmt.Errorf("kernels: gaussian2d not configured")
	}
	for len(chunk) > 0 {
		need := k.width - len(k.rowPartial)
		if need > len(chunk) {
			k.rowPartial = append(k.rowPartial, chunk...)
			return nil
		}
		row := append(k.rowPartial, chunk[:need]...)
		chunk = chunk[need:]
		k.rowPartial = k.rowPartial[:0]
		k.pushRow(row)
	}
	return nil
}

// pushRow advances the 3-row window: arrival of row N lets row N-1 be
// filtered (above = row N-2, replicated at the top edge). The final row is
// flushed by Result with a replicated row below.
func (k *gaussian2d) pushRow(row []byte) {
	k.rows++
	r := append([]byte(nil), row...)
	if k.cur == nil {
		k.cur = r
		return
	}
	above := k.prev
	if above == nil {
		above = k.topHalo // halo from the band above, when supplied
		if above == nil {
			above = k.cur // top edge: replicate the first row upward
		}
	}
	k.filterRow(above, k.cur, r)
	k.prev = k.cur
	k.cur = r
}

// filterRow convolves the middle row using rows above and below, with
// column edge replication, and feeds the filtered pixels to the digest.
func (k *gaussian2d) filterRow(above, mid, below []byte) {
	w := k.width
	out := make([]byte, w)
	for x := 0; x < w; x++ {
		xl, xr := x-1, x+1
		if xl < 0 {
			xl = 0
		}
		if xr >= w {
			xr = w - 1
		}
		// Written as explicit multiplies so the per-pixel cost matches the
		// paper's "9 multiplications, 9 additions, 1 division" accounting.
		acc := 1*uint32(above[xl]) + 2*uint32(above[x]) + 1*uint32(above[xr]) +
			2*uint32(mid[xl]) + 4*uint32(mid[x]) + 2*uint32(mid[xr]) +
			1*uint32(below[xl]) + 2*uint32(below[x]) + 1*uint32(below[xr])
		out[x] = uint8(acc / 16)
	}
	k.absorb(out)
}

func (k *gaussian2d) absorb(out []byte) {
	for _, p := range out {
		k.fSum += uint64(p)
		if !k.haveMin || p < k.fMin {
			k.fMin = p
			k.haveMin = true
		}
		if p > k.fMax {
			k.fMax = p
		}
	}
	k.fPixels += uint64(len(out))
	k.fCRC = crc32.Update(k.fCRC, crc32.IEEETable, out)
	if k.emitFull {
		k.full = append(k.full, out...)
	}
}

func (k *gaussian2d) Checkpoint() ([]byte, error) {
	s := NewState()
	s.PutInt64("width", int64(k.width))
	if k.emitFull {
		s.PutInt64("emitFull", 1)
	} else {
		s.PutInt64("emitFull", 0)
	}
	s.PutBytes("topHalo", k.topHalo)
	s.PutBytes("botHalo", k.botHalo)
	s.PutBytes("rowPartial", k.rowPartial)
	s.PutBytes("prev", k.prev)
	s.PutBytes("cur", k.cur)
	s.PutInt64("rows", int64(k.rows))
	s.PutInt64("fSum", int64(k.fSum))
	s.PutInt64("fMin", int64(k.fMin))
	s.PutInt64("fMax", int64(k.fMax))
	s.PutInt64("fCRC", int64(k.fCRC))
	s.PutInt64("fPixels", int64(k.fPixels))
	if k.haveMin {
		s.PutInt64("haveMin", 1)
	} else {
		s.PutInt64("haveMin", 0)
	}
	s.PutBytes("full", k.full)
	return s.Encode(k.Name())
}

func (k *gaussian2d) Restore(state []byte) error {
	s, err := DecodeState(k.Name(), state)
	if err != nil {
		return err
	}
	geti := func(name string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = s.Int64(name)
		return v
	}
	getb := func(name string) []byte {
		if err != nil {
			return nil
		}
		var v []byte
		v, err = s.Bytes(name)
		return append([]byte(nil), v...)
	}
	k.width = int(geti("width"))
	k.emitFull = geti("emitFull") != 0
	topHalo := getb("topHalo")
	botHalo := getb("botHalo")
	k.rowPartial = getb("rowPartial")
	prev := getb("prev")
	cur := getb("cur")
	k.rows = uint64(geti("rows"))
	k.fSum = uint64(geti("fSum"))
	k.fMin = uint8(geti("fMin"))
	k.fMax = uint8(geti("fMax"))
	k.fCRC = uint32(geti("fCRC"))
	k.fPixels = uint64(geti("fPixels"))
	k.haveMin = geti("haveMin") != 0
	k.full = getb("full")
	if err != nil {
		return err
	}
	// Empty slices round-trip as nil rows.
	if len(prev) == 0 {
		prev = nil
	}
	if len(cur) == 0 {
		cur = nil
	}
	if len(topHalo) == 0 {
		topHalo = nil
	}
	if len(botHalo) == 0 {
		botHalo = nil
	}
	k.prev, k.cur = prev, cur
	k.topHalo, k.botHalo = topHalo, botHalo
	return nil
}

func (k *gaussian2d) Result() ([]byte, error) {
	// Flush the final row: filter cur against the bottom halo when
	// supplied, else a replicated row below.
	if k.cur != nil {
		above := k.prev
		if above == nil {
			above = k.topHalo
			if above == nil {
				above = k.cur // single-row band with no halo
			}
		}
		below := k.botHalo
		if below == nil {
			below = k.cur
		}
		k.filterRow(above, k.cur, below)
	}
	k.prev, k.cur = nil, nil
	if k.emitFull {
		return k.full, nil
	}
	out := make([]byte, 29)
	binary.LittleEndian.PutUint64(out[0:8], k.fPixels)
	binary.LittleEndian.PutUint64(out[8:16], k.fSum)
	out[16] = k.fMin
	out[17] = k.fMax
	binary.LittleEndian.PutUint32(out[18:22], k.fCRC)
	// Bytes 22..29 reserved (row count) for forward compatibility.
	binary.LittleEndian.PutUint32(out[22:26], uint32(k.rows))
	return out, nil
}

// GaussianDigest is the decoded digest-mode result of gaussian2d.
type GaussianDigest struct {
	Pixels   uint64
	Sum      uint64
	Min, Max uint8
	CRC      uint32
	Rows     uint32
}

// DecodeGaussianDigest parses a digest-mode gaussian2d output.
func DecodeGaussianDigest(out []byte) (GaussianDigest, error) {
	if len(out) < 29 {
		return GaussianDigest{}, fmt.Errorf("kernels: gaussian digest too short (%d bytes)", len(out))
	}
	return GaussianDigest{
		Pixels: binary.LittleEndian.Uint64(out[0:8]),
		Sum:    binary.LittleEndian.Uint64(out[8:16]),
		Min:    out[16],
		Max:    out[17],
		CRC:    binary.LittleEndian.Uint32(out[18:22]),
		Rows:   binary.LittleEndian.Uint32(out[22:26]),
	}, nil
}
