package kernels

import (
	"encoding/binary"
	"fmt"
	"math"

	"dosas/internal/wire"
)

func init() {
	Register("kmeans1d", func() Kernel { return &kmeans1d{} })
}

// KMeansParams encodes parameters for the kmeans1d kernel: the cluster
// count k and the initial centroid range [lo, hi] (centroids start evenly
// spaced across it).
func KMeansParams(k uint32, lo, hi float64) []byte {
	var e wire.Encoder
	e.PutU32(k)
	e.PutF64(lo)
	e.PutF64(hi)
	return e.Bytes()
}

// kmeans1d clusters a float64 stream with sequential (online) k-means:
// each sample moves its nearest centroid by the running-mean update
// c += (x − c)/n. One pass, deterministic given the parameters — the
// classic active-storage data-mining kernel (Riedel et al.; Son et al.).
// The result is k records of ⟨centroid f64, count u64⟩ sorted by centroid.
// Order-dependent, so it has no combiner: restrict requests to one
// storage node (stripe width 1).
type kmeans1d struct {
	centroids []float64
	counts    []uint64
	c         carry
}

func (*kmeans1d) Name() string { return "kmeans1d" }

func (k *kmeans1d) ResultSize(uint64) uint64 { return uint64(len(k.centroids)) * 16 }

func (k *kmeans1d) Configure(params []byte) error {
	if len(params) == 0 {
		return fmt.Errorf("kernels: kmeans1d requires KMeansParams")
	}
	d := wire.NewDecoder(params)
	kk := d.U32()
	lo := d.F64()
	hi := d.F64()
	if err := d.Err(); err != nil {
		return fmt.Errorf("kernels: kmeans1d params: %w", err)
	}
	if kk == 0 || kk > 1<<16 {
		return fmt.Errorf("kernels: kmeans1d cluster count %d out of range", kk)
	}
	if !(lo < hi) {
		return fmt.Errorf("kernels: kmeans1d range [%g, %g] is empty", lo, hi)
	}
	k.centroids = make([]float64, kk)
	k.counts = make([]uint64, kk)
	if kk == 1 {
		k.centroids[0] = (lo + hi) / 2
	} else {
		step := (hi - lo) / float64(kk-1)
		for i := range k.centroids {
			k.centroids[i] = lo + float64(i)*step
		}
	}
	k.c = carry{elem: 8}
	return nil
}

func (k *kmeans1d) Process(chunk []byte) error {
	if len(k.centroids) == 0 {
		return fmt.Errorf("kernels: kmeans1d not configured")
	}
	k.c.feed(chunk, func(whole []byte) {
		for i := 0; i+8 <= len(whole); i += 8 {
			x := f64le(whole[i:])
			if math.IsNaN(x) {
				continue
			}
			best := 0
			bestD := math.Abs(x - k.centroids[0])
			for j := 1; j < len(k.centroids); j++ {
				if d := math.Abs(x - k.centroids[j]); d < bestD {
					best, bestD = j, d
				}
			}
			k.counts[best]++
			k.centroids[best] += (x - k.centroids[best]) / float64(k.counts[best])
		}
	})
	return nil
}

func (k *kmeans1d) Checkpoint() ([]byte, error) {
	s := NewState()
	raw := make([]byte, len(k.centroids)*16)
	for i := range k.centroids {
		binary.LittleEndian.PutUint64(raw[i*16:], math.Float64bits(k.centroids[i]))
		binary.LittleEndian.PutUint64(raw[i*16+8:], k.counts[i])
	}
	s.PutBytes("clusters", raw)
	s.PutBytes("carry", k.c.buf)
	return s.Encode(k.Name())
}

func (k *kmeans1d) Restore(state []byte) error {
	s, err := DecodeState(k.Name(), state)
	if err != nil {
		return err
	}
	raw, err := s.Bytes("clusters")
	if err != nil {
		return err
	}
	if len(raw)%16 != 0 || len(raw) == 0 {
		return fmt.Errorf("%w: kmeans1d clusters have %d bytes", ErrStateCorrupt, len(raw))
	}
	n := len(raw) / 16
	k.centroids = make([]float64, n)
	k.counts = make([]uint64, n)
	for i := 0; i < n; i++ {
		k.centroids[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16:]))
		k.counts[i] = binary.LittleEndian.Uint64(raw[i*16+8:])
	}
	cb, err := s.Bytes("carry")
	if err != nil {
		return err
	}
	k.c = carry{elem: 8, buf: append([]byte(nil), cb...)}
	return nil
}

func (k *kmeans1d) Result() ([]byte, error) {
	// Sort by centroid for a canonical output.
	type cluster struct {
		c float64
		n uint64
	}
	cs := make([]cluster, len(k.centroids))
	for i := range cs {
		cs[i] = cluster{k.centroids[i], k.counts[i]}
	}
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].c < cs[j-1].c; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	out := make([]byte, len(cs)*16)
	for i, c := range cs {
		binary.LittleEndian.PutUint64(out[i*16:], math.Float64bits(c.c))
		binary.LittleEndian.PutUint64(out[i*16+8:], c.n)
	}
	return out, nil
}

// KMeansCluster is one decoded kmeans1d output record.
type KMeansCluster struct {
	Centroid float64
	Count    uint64
}

// KMeansResult decodes a kmeans1d kernel output.
func KMeansResult(out []byte) ([]KMeansCluster, error) {
	if len(out)%16 != 0 {
		return nil, fmt.Errorf("kernels: kmeans result has %d bytes", len(out))
	}
	cs := make([]KMeansCluster, len(out)/16)
	for i := range cs {
		cs[i].Centroid = math.Float64frombits(binary.LittleEndian.Uint64(out[i*16:]))
		cs[i].Count = binary.LittleEndian.Uint64(out[i*16+8:])
	}
	return cs, nil
}
