package kernels

import (
	"fmt"
	"sync"
	"time"
)

// Default per-core processing rates in bytes/second for each kernel. The
// sum8 and gaussian2d values are the paper's Table III measurements on the
// Discfarm cluster (860 MB/s and 80 MB/s per core); the rest are rough
// single-core estimates in the same spirit. Calibrate measures the true
// rate on the local host and can overwrite these.
var defaultRates = map[string]float64{
	"sum8":       860e6,
	"sum64":      860e6,
	"gaussian2d": 80e6,
	"minmax":     800e6,
	"moments":    600e6,
	"histogram":  700e6,
	"count":      400e6,
	"wordcount":  500e6,
	"downsample": 700e6,
	"kmeans1d":   300e6,
}

var (
	rateMu sync.RWMutex
	rates  = func() map[string]float64 {
		m := make(map[string]float64, len(defaultRates))
		for k, v := range defaultRates {
			m[k] = v
		}
		return m
	}()
)

// RateFor returns the configured per-core processing rate (bytes/second)
// for the named operation, or 0 if unknown. The Contention Estimator uses
// this as the max value of S_{C,op} in the paper's notation.
func RateFor(op string) float64 {
	rateMu.RLock()
	defer rateMu.RUnlock()
	return rates[op]
}

// SetRate overrides the per-core processing rate for op.
func SetRate(op string, bytesPerSecond float64) {
	rateMu.Lock()
	rates[op] = bytesPerSecond
	rateMu.Unlock()
}

// ResetRates restores the compiled-in default rates (used by tests).
func ResetRates() {
	rateMu.Lock()
	defer rateMu.Unlock()
	rates = make(map[string]float64, len(defaultRates))
	for k, v := range defaultRates {
		rates[k] = v
	}
}

// defaultParamsFor returns parameters that make the named kernel runnable
// over an arbitrary byte stream, for calibration.
func defaultParamsFor(op string, sample int) []byte {
	switch op {
	case "gaussian2d":
		w := sample / 64
		if w < 3 {
			w = 3
		}
		return GaussianParams(uint32(w), false)
	case "count":
		return []byte("needle")
	case "downsample":
		return DownsampleParams(16)
	case "kmeans1d":
		return KMeansParams(4, 0, 256)
	default:
		return nil
	}
}

// Calibrate measures the actual single-core processing rate of the named
// kernel on this host by streaming sampleBytes of synthetic data through
// it, and returns bytes/second. Pass store=true to install the measured
// rate for subsequent RateFor calls (this is how a deployment regenerates
// the paper's Table III for its own hardware).
func Calibrate(op string, sampleBytes int, store bool) (float64, error) {
	if sampleBytes <= 0 {
		sampleBytes = 32 << 20
	}
	k, err := New(op)
	if err != nil {
		return 0, err
	}
	if err := k.Configure(defaultParamsFor(op, sampleBytes)); err != nil {
		return 0, err
	}
	const chunk = 1 << 20
	data := make([]byte, chunk)
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	start := time.Now()
	var done int
	for done < sampleBytes {
		n := sampleBytes - done
		if n > chunk {
			n = chunk
		}
		if err := k.Process(data[:n]); err != nil {
			return 0, fmt.Errorf("kernels: calibrate %s: %w", op, err)
		}
		done += n
	}
	if _, err := k.Result(); err != nil {
		return 0, fmt.Errorf("kernels: calibrate %s: %w", op, err)
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	rate := float64(sampleBytes) / elapsed
	if store {
		SetRate(op, rate)
	}
	return rate, nil
}
