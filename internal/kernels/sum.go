package kernels

import (
	"encoding/binary"
)

func init() {
	Register("sum8", func() Kernel { return &sum8{} })
	Register("sum64", func() Kernel { return &sum64{} })
}

// sum8 is the paper's SUM benchmark: one addition per data item, where an
// item is a byte. Result: the total as a little-endian uint64.
type sum8 struct {
	total     uint64
	processed uint64
}

func (*sum8) Name() string             { return "sum8" }
func (*sum8) Configure([]byte) error   { return nil }
func (*sum8) ResultSize(uint64) uint64 { return 8 }

func (k *sum8) Process(chunk []byte) error {
	var t uint64
	for _, b := range chunk {
		t += uint64(b)
	}
	k.total += t
	k.processed += uint64(len(chunk))
	return nil
}

func (k *sum8) Checkpoint() ([]byte, error) {
	s := NewState()
	s.PutInt64("total", int64(k.total))
	s.PutInt64("processed", int64(k.processed))
	return s.Encode(k.Name())
}

func (k *sum8) Restore(state []byte) error {
	s, err := DecodeState(k.Name(), state)
	if err != nil {
		return err
	}
	total, err := s.Int64("total")
	if err != nil {
		return err
	}
	processed, err := s.Int64("processed")
	if err != nil {
		return err
	}
	k.total = uint64(total)
	k.processed = uint64(processed)
	return nil
}

func (k *sum8) Result() ([]byte, error) {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, k.total)
	return out, nil
}

// Sum8Result decodes a sum8 kernel output.
func Sum8Result(out []byte) uint64 {
	if len(out) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(out)
}

// sum64 sums a stream of little-endian float64 elements. Result: the total
// as 8 bytes. Elements split across chunks are carried.
type sum64 struct {
	total     float64
	processed uint64
	c         carry
}

func (*sum64) Name() string             { return "sum64" }
func (*sum64) ResultSize(uint64) uint64 { return 8 }

func (k *sum64) Configure([]byte) error {
	k.c = carry{elem: 8}
	return nil
}

func (k *sum64) Process(chunk []byte) error {
	if k.c.elem == 0 {
		k.c = carry{elem: 8}
	}
	k.c.feed(chunk, func(whole []byte) {
		for i := 0; i+8 <= len(whole); i += 8 {
			k.total += f64le(whole[i:])
		}
	})
	k.processed += uint64(len(chunk))
	return nil
}

func (k *sum64) Checkpoint() ([]byte, error) {
	s := NewState()
	s.PutFloat64("total", k.total)
	s.PutInt64("processed", int64(k.processed))
	s.PutBytes("carry", k.c.buf)
	return s.Encode(k.Name())
}

func (k *sum64) Restore(state []byte) error {
	s, err := DecodeState(k.Name(), state)
	if err != nil {
		return err
	}
	if k.total, err = s.Float64("total"); err != nil {
		return err
	}
	processed, err := s.Int64("processed")
	if err != nil {
		return err
	}
	k.processed = uint64(processed)
	cb, err := s.Bytes("carry")
	if err != nil {
		return err
	}
	k.c = carry{elem: 8, buf: append([]byte(nil), cb...)}
	return nil
}

func (k *sum64) Result() ([]byte, error) {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, f64bits(k.total))
	return out, nil
}

// Sum64Result decodes a sum64 kernel output.
func Sum64Result(out []byte) float64 {
	if len(out) < 8 {
		return 0
	}
	return f64le(out)
}
