package kernels

import (
	"encoding/binary"
	"fmt"
	"math"
)

func init() {
	Register("minmax", func() Kernel { return &minmax{} })
	Register("moments", func() Kernel { return &moments{} })
}

// minmax tracks the minimum and maximum of a little-endian float64 stream.
// Result: 16 bytes ⟨min f64, max f64⟩; NaNs when the stream was empty.
type minmax struct {
	min, max float64
	seen     bool
	c        carry
}

func (*minmax) Name() string             { return "minmax" }
func (*minmax) ResultSize(uint64) uint64 { return 16 }

func (k *minmax) Configure([]byte) error {
	k.c = carry{elem: 8}
	return nil
}

func (k *minmax) Process(chunk []byte) error {
	if k.c.elem == 0 {
		k.c = carry{elem: 8}
	}
	k.c.feed(chunk, func(whole []byte) {
		for i := 0; i+8 <= len(whole); i += 8 {
			v := f64le(whole[i:])
			if !k.seen {
				k.min, k.max = v, v
				k.seen = true
				continue
			}
			if v < k.min {
				k.min = v
			}
			if v > k.max {
				k.max = v
			}
		}
	})
	return nil
}

func (k *minmax) Checkpoint() ([]byte, error) {
	s := NewState()
	s.PutFloat64("min", k.min)
	s.PutFloat64("max", k.max)
	if k.seen {
		s.PutInt64("seen", 1)
	} else {
		s.PutInt64("seen", 0)
	}
	s.PutBytes("carry", k.c.buf)
	return s.Encode(k.Name())
}

func (k *minmax) Restore(state []byte) error {
	s, err := DecodeState(k.Name(), state)
	if err != nil {
		return err
	}
	if k.min, err = s.Float64("min"); err != nil {
		return err
	}
	if k.max, err = s.Float64("max"); err != nil {
		return err
	}
	seen, err := s.Int64("seen")
	if err != nil {
		return err
	}
	k.seen = seen != 0
	cb, err := s.Bytes("carry")
	if err != nil {
		return err
	}
	k.c = carry{elem: 8, buf: append([]byte(nil), cb...)}
	return nil
}

func (k *minmax) Result() ([]byte, error) {
	mn, mx := k.min, k.max
	if !k.seen {
		mn, mx = math.NaN(), math.NaN()
	}
	out := putF64(nil, mn)
	return putF64(out, mx), nil
}

// MinMaxResult decodes a minmax kernel output.
func MinMaxResult(out []byte) (min, max float64, err error) {
	if len(out) < 16 {
		return 0, 0, fmt.Errorf("kernels: minmax result too short (%d bytes)", len(out))
	}
	return f64le(out[0:8]), f64le(out[8:16]), nil
}

// moments accumulates count, sum, and sum of squares of a float64 stream —
// enough to derive mean and variance on the client from a 24-byte result:
// ⟨count u64, sum f64, sumsq f64⟩.
type moments struct {
	count      uint64
	sum, sumsq float64
	c          carry
}

func (*moments) Name() string             { return "moments" }
func (*moments) ResultSize(uint64) uint64 { return 24 }

func (k *moments) Configure([]byte) error {
	k.c = carry{elem: 8}
	return nil
}

func (k *moments) Process(chunk []byte) error {
	if k.c.elem == 0 {
		k.c = carry{elem: 8}
	}
	k.c.feed(chunk, func(whole []byte) {
		for i := 0; i+8 <= len(whole); i += 8 {
			v := f64le(whole[i:])
			k.count++
			k.sum += v
			k.sumsq += v * v
		}
	})
	return nil
}

func (k *moments) Checkpoint() ([]byte, error) {
	s := NewState()
	s.PutInt64("count", int64(k.count))
	s.PutFloat64("sum", k.sum)
	s.PutFloat64("sumsq", k.sumsq)
	s.PutBytes("carry", k.c.buf)
	return s.Encode(k.Name())
}

func (k *moments) Restore(state []byte) error {
	s, err := DecodeState(k.Name(), state)
	if err != nil {
		return err
	}
	count, err := s.Int64("count")
	if err != nil {
		return err
	}
	k.count = uint64(count)
	if k.sum, err = s.Float64("sum"); err != nil {
		return err
	}
	if k.sumsq, err = s.Float64("sumsq"); err != nil {
		return err
	}
	cb, err := s.Bytes("carry")
	if err != nil {
		return err
	}
	k.c = carry{elem: 8, buf: append([]byte(nil), cb...)}
	return nil
}

func (k *moments) Result() ([]byte, error) {
	out := make([]byte, 8, 24)
	binary.LittleEndian.PutUint64(out, k.count)
	out = putF64(out, k.sum)
	return putF64(out, k.sumsq), nil
}

// Moments is the decoded result of the moments kernel.
type Moments struct {
	Count uint64
	Sum   float64
	SumSq float64
}

// Mean returns the arithmetic mean (0 when empty).
func (m Moments) Mean() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}

// Variance returns the population variance (0 when empty).
func (m Moments) Variance() float64 {
	if m.Count == 0 {
		return 0
	}
	mean := m.Mean()
	return m.SumSq/float64(m.Count) - mean*mean
}

// MomentsResult decodes a moments kernel output.
func MomentsResult(out []byte) (Moments, error) {
	if len(out) < 24 {
		return Moments{}, fmt.Errorf("kernels: moments result too short (%d bytes)", len(out))
	}
	return Moments{
		Count: binary.LittleEndian.Uint64(out[0:8]),
		Sum:   f64le(out[8:16]),
		SumSq: f64le(out[16:24]),
	}, nil
}
