// Package kernels implements the Processing Kernels (PKs) component of the
// DOSAS architecture: a registry of predefined analysis kernels deployed on
// both storage nodes and compute nodes. Each kernel consumes a byte stream
// incrementally and can checkpoint its internal state at any chunk
// boundary, so the Active I/O Runtime can interrupt a kernel running on an
// overloaded storage node and the Active Storage Client can resume it on
// the compute node — the migration mechanism of paper Section III-E.
package kernels

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Kernel is one analysis operation. Usage protocol:
//
//	k := kernels.New(op)
//	k.Configure(params)        // once, before any data
//	k.Process(chunk) ...       // zero or more times, in stream order
//	state := k.Checkpoint()    // optionally, between Process calls
//	k2 := kernels.New(op); k2.Configure(params); k2.Restore(state)
//	out := k.Result()          // finalize
//
// Implementations are not safe for concurrent use; the runtime gives each
// request its own instance.
type Kernel interface {
	// Name returns the registry name of the operation.
	Name() string
	// Configure applies the request's kernel parameters. A nil or empty
	// params selects defaults.
	Configure(params []byte) error
	// Process consumes the next chunk of the input stream. Chunks may be
	// any size, including sizes that split logical elements; kernels
	// carry partial elements across calls.
	Process(chunk []byte) error
	// Checkpoint serialises the kernel's full internal state.
	Checkpoint() ([]byte, error)
	// Restore replaces the kernel's state with a prior checkpoint taken
	// from a kernel of the same name and configuration.
	Restore(state []byte) error
	// Result finalises processing and returns the output bytes.
	Result() ([]byte, error)
	// ResultSize estimates h(x): the output size for an x-byte input,
	// used by the scheduler to cost result transfers.
	ResultSize(inputBytes uint64) uint64
}

// Factory creates a fresh, unconfigured kernel instance.
type Factory func() Kernel

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// ErrUnknown reports an operation name with no registered kernel.
var ErrUnknown = errors.New("kernels: unknown operation")

// Register adds a kernel factory under name. It panics on duplicates, as
// registration happens from init functions.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[name]; ok {
		panic(fmt.Sprintf("kernels: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New returns a fresh kernel for the named operation.
func New(name string) (Kernel, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	return f(), nil
}

// Names returns all registered operation names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// carry buffers the tail of a chunk that splits a fixed-size element, so
// element-oriented kernels see whole elements regardless of chunking.
type carry struct {
	elem int // element size in bytes
	buf  []byte
}

// feed appends chunk to any carried bytes and calls fn with the longest
// whole-element prefix; the remainder is carried to the next call.
func (c *carry) feed(chunk []byte, fn func(whole []byte)) {
	if len(c.buf) > 0 {
		need := c.elem - len(c.buf)
		if need > len(chunk) {
			c.buf = append(c.buf, chunk...)
			return
		}
		c.buf = append(c.buf, chunk[:need]...)
		fn(c.buf)
		c.buf = c.buf[:0]
		chunk = chunk[need:]
	}
	n := len(chunk) / c.elem * c.elem
	if n > 0 {
		fn(chunk[:n])
	}
	if n < len(chunk) {
		c.buf = append(c.buf, chunk[n:]...)
	}
}
