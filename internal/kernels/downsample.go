package kernels

import (
	"fmt"

	"dosas/internal/wire"
)

func init() {
	Register("downsample", func() Kernel { return &downsample{} })
}

// DownsampleParams encodes parameters for the downsample kernel: the
// decimation factor (every group of factor consecutive float64 elements is
// replaced by its mean).
func DownsampleParams(factor uint32) []byte {
	var e wire.Encoder
	e.PutU32(factor)
	return e.Bytes()
}

// downsample reduces a float64 stream by averaging consecutive groups of
// `factor` elements. Unlike the scalar reductions, its output grows with
// the input — h(x) = x/factor — which exercises the scheduler's result-
// transfer term g(h(x)) at intermediate ratios.
type downsample struct {
	factor   uint32
	groupSum float64
	groupN   uint32
	out      []byte
	c        carry
}

func (*downsample) Name() string { return "downsample" }

func (k *downsample) ResultSize(inputBytes uint64) uint64 {
	if k.factor == 0 {
		return inputBytes
	}
	return inputBytes / uint64(k.factor)
}

func (k *downsample) Configure(params []byte) error {
	if len(params) == 0 {
		return fmt.Errorf("kernels: downsample requires DownsampleParams")
	}
	d := wire.NewDecoder(params)
	f := d.U32()
	if err := d.Err(); err != nil {
		return fmt.Errorf("kernels: downsample params: %w", err)
	}
	if f == 0 {
		return fmt.Errorf("kernels: downsample factor must be positive")
	}
	k.factor = f
	k.c = carry{elem: 8}
	return nil
}

func (k *downsample) Process(chunk []byte) error {
	if k.factor == 0 {
		return fmt.Errorf("kernels: downsample not configured")
	}
	k.c.feed(chunk, func(whole []byte) {
		for i := 0; i+8 <= len(whole); i += 8 {
			k.groupSum += f64le(whole[i:])
			k.groupN++
			if k.groupN == k.factor {
				k.out = putF64(k.out, k.groupSum/float64(k.factor))
				k.groupSum = 0
				k.groupN = 0
			}
		}
	})
	return nil
}

func (k *downsample) Checkpoint() ([]byte, error) {
	s := NewState()
	s.PutInt64("factor", int64(k.factor))
	s.PutFloat64("groupSum", k.groupSum)
	s.PutInt64("groupN", int64(k.groupN))
	s.PutBytes("out", k.out)
	s.PutBytes("carry", k.c.buf)
	return s.Encode(k.Name())
}

func (k *downsample) Restore(state []byte) error {
	s, err := DecodeState(k.Name(), state)
	if err != nil {
		return err
	}
	factor, err := s.Int64("factor")
	if err != nil {
		return err
	}
	k.factor = uint32(factor)
	if k.groupSum, err = s.Float64("groupSum"); err != nil {
		return err
	}
	groupN, err := s.Int64("groupN")
	if err != nil {
		return err
	}
	k.groupN = uint32(groupN)
	out, err := s.Bytes("out")
	if err != nil {
		return err
	}
	k.out = append([]byte(nil), out...)
	cb, err := s.Bytes("carry")
	if err != nil {
		return err
	}
	k.c = carry{elem: 8, buf: append([]byte(nil), cb...)}
	return nil
}

func (k *downsample) Result() ([]byte, error) {
	// A trailing partial group averages over the elements it has.
	if k.groupN > 0 {
		k.out = putF64(k.out, k.groupSum/float64(k.groupN))
		k.groupSum = 0
		k.groupN = 0
	}
	return k.out, nil
}

// DownsampleResult decodes a downsample output into float64 samples.
func DownsampleResult(out []byte) []float64 {
	vs := make([]float64, 0, len(out)/8)
	for i := 0; i+8 <= len(out); i += 8 {
		vs = append(vs, f64le(out[i:]))
	}
	return vs
}
