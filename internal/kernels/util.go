package kernels

import (
	"encoding/binary"
	"math"
)

// f64le reads a little-endian float64 from the first 8 bytes of b.
func f64le(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// f64bits returns the IEEE-754 bits of v.
func f64bits(v float64) uint64 { return math.Float64bits(v) }

// putF64 appends v to out as little-endian bytes.
func putF64(out []byte, v float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	return append(out, tmp[:]...)
}
