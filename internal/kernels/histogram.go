package kernels

import (
	"encoding/binary"
	"fmt"
)

func init() {
	Register("histogram", func() Kernel { return &histogram{} })
}

// histogram counts byte-value occurrences into 256 bins. Result: 2048
// bytes of little-endian uint64 counts — a constant-size output regardless
// of input size, the classic active-storage-friendly shape.
type histogram struct {
	bins      [256]uint64
	processed uint64
}

func (*histogram) Name() string             { return "histogram" }
func (*histogram) Configure([]byte) error   { return nil }
func (*histogram) ResultSize(uint64) uint64 { return 256 * 8 }

func (k *histogram) Process(chunk []byte) error {
	for _, b := range chunk {
		k.bins[b]++
	}
	k.processed += uint64(len(chunk))
	return nil
}

func (k *histogram) Checkpoint() ([]byte, error) {
	raw := make([]byte, 256*8)
	for i, v := range k.bins {
		binary.LittleEndian.PutUint64(raw[i*8:], v)
	}
	s := NewState()
	s.PutBytes("bins", raw)
	s.PutInt64("processed", int64(k.processed))
	return s.Encode(k.Name())
}

func (k *histogram) Restore(state []byte) error {
	s, err := DecodeState(k.Name(), state)
	if err != nil {
		return err
	}
	raw, err := s.Bytes("bins")
	if err != nil {
		return err
	}
	if len(raw) != 256*8 {
		return fmt.Errorf("%w: histogram bins have %d bytes", ErrStateCorrupt, len(raw))
	}
	for i := range k.bins {
		k.bins[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	processed, err := s.Int64("processed")
	if err != nil {
		return err
	}
	k.processed = uint64(processed)
	return nil
}

func (k *histogram) Result() ([]byte, error) {
	out := make([]byte, 256*8)
	for i, v := range k.bins {
		binary.LittleEndian.PutUint64(out[i*8:], v)
	}
	return out, nil
}

// HistogramResult decodes a histogram kernel output into 256 bin counts.
func HistogramResult(out []byte) ([256]uint64, error) {
	var bins [256]uint64
	if len(out) < 256*8 {
		return bins, fmt.Errorf("kernels: histogram result too short (%d bytes)", len(out))
	}
	for i := range bins {
		bins[i] = binary.LittleEndian.Uint64(out[i*8:])
	}
	return bins, nil
}
