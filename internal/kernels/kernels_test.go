package kernels

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// runWhole streams data through a fresh kernel in one Process call.
func runWhole(t *testing.T, op string, params, data []byte) []byte {
	t.Helper()
	k, err := New(op)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Configure(params); err != nil {
		t.Fatal(err)
	}
	if err := k.Process(data); err != nil {
		t.Fatal(err)
	}
	out, err := k.Result()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runChunked streams data in pieces of the given sizes (cycled).
func runChunked(t *testing.T, op string, params, data []byte, sizes []int) []byte {
	t.Helper()
	k, err := New(op)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Configure(params); err != nil {
		t.Fatal(err)
	}
	i := 0
	for len(data) > 0 {
		n := sizes[i%len(sizes)]
		i++
		if n <= 0 {
			n = 1
		}
		if n > len(data) {
			n = len(data)
		}
		if err := k.Process(data[:n]); err != nil {
			t.Fatal(err)
		}
		data = data[n:]
	}
	out, err := k.Result()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runWithMigration processes data up to splitAt, checkpoints, restores into
// a fresh kernel (the compute-node side of a migration), and finishes.
func runWithMigration(t *testing.T, op string, params, data []byte, splitAt int) []byte {
	t.Helper()
	k1, err := New(op)
	if err != nil {
		t.Fatal(err)
	}
	if err := k1.Configure(params); err != nil {
		t.Fatal(err)
	}
	if splitAt > len(data) {
		splitAt = len(data)
	}
	if err := k1.Process(data[:splitAt]); err != nil {
		t.Fatal(err)
	}
	state, err := k1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := New(op)
	if err != nil {
		t.Fatal(err)
	}
	if err := k2.Configure(params); err != nil {
		t.Fatal(err)
	}
	if err := k2.Restore(state); err != nil {
		t.Fatal(err)
	}
	if err := k2.Process(data[splitAt:]); err != nil {
		t.Fatal(err)
	}
	out, err := k2.Result()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func floatStream(vals []float64) []byte {
	out := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		out = append(out, b[:]...)
	}
	return out
}

func TestSum8Correctness(t *testing.T) {
	data := []byte{1, 2, 3, 250, 255}
	out := runWhole(t, "sum8", nil, data)
	if got := Sum8Result(out); got != 1+2+3+250+255 {
		t.Errorf("sum8 = %d", got)
	}
}

func TestSum64Correctness(t *testing.T) {
	vals := []float64{1.5, -2.25, 1e12, 0.125}
	out := runWhole(t, "sum64", nil, floatStream(vals))
	want := 1.5 - 2.25 + 1e12 + 0.125
	if got := Sum64Result(out); got != want {
		t.Errorf("sum64 = %v, want %v", got, want)
	}
}

func TestMinMaxCorrectness(t *testing.T) {
	out := runWhole(t, "minmax", nil, floatStream([]float64{3, -7, 22, 0}))
	mn, mx, err := MinMaxResult(out)
	if err != nil || mn != -7 || mx != 22 {
		t.Errorf("minmax = %v, %v, %v", mn, mx, err)
	}
}

func TestMinMaxEmptyStreamIsNaN(t *testing.T) {
	out := runWhole(t, "minmax", nil, nil)
	mn, mx, err := MinMaxResult(out)
	if err != nil || !math.IsNaN(mn) || !math.IsNaN(mx) {
		t.Errorf("empty minmax = %v, %v, %v", mn, mx, err)
	}
}

func TestMomentsCorrectness(t *testing.T) {
	out := runWhole(t, "moments", nil, floatStream([]float64{2, 4, 6}))
	m, err := MomentsResult(out)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 3 || m.Mean() != 4 {
		t.Errorf("moments = %+v mean=%v", m, m.Mean())
	}
	if want := (4.0 + 0 + 4) / 3; math.Abs(m.Variance()-want) > 1e-12 {
		t.Errorf("variance = %v, want %v", m.Variance(), want)
	}
}

func TestHistogramCorrectness(t *testing.T) {
	data := []byte{0, 0, 7, 255, 7, 7}
	out := runWhole(t, "histogram", nil, data)
	bins, err := HistogramResult(out)
	if err != nil {
		t.Fatal(err)
	}
	if bins[0] != 2 || bins[7] != 3 || bins[255] != 1 {
		t.Errorf("bins = %d %d %d", bins[0], bins[7], bins[255])
	}
}

func TestPatternCountCorrectness(t *testing.T) {
	data := []byte("abXabXXab")
	out := runWhole(t, "count", []byte("ab"), data)
	if got := CountResult(out); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
}

func TestPatternCountOverlapping(t *testing.T) {
	out := runWhole(t, "count", []byte("aa"), []byte("aaaa"))
	if got := CountResult(out); got != 3 {
		t.Errorf("overlapping count = %d, want 3", got)
	}
}

func TestPatternCountAcrossChunks(t *testing.T) {
	// The match straddles the chunk boundary.
	out := runChunked(t, "count", []byte("needle"), []byte("xxneedlexx"), []int{5})
	if got := CountResult(out); got != 1 {
		t.Errorf("boundary count = %d, want 1", got)
	}
}

func TestWordCountCorrectness(t *testing.T) {
	out := runWhole(t, "wordcount", nil, []byte("  the quick\nbrown\tfox  "))
	if got := CountResult(out); got != 4 {
		t.Errorf("wordcount = %d, want 4", got)
	}
}

func TestWordCountAcrossChunks(t *testing.T) {
	// "hello" split across chunks must count once.
	out := runChunked(t, "wordcount", nil, []byte("hel lo wor ld"), []int{3})
	if got := CountResult(out); got != 4 {
		t.Errorf("wordcount = %d, want 4", got)
	}
}

func TestDownsampleCorrectness(t *testing.T) {
	out := runWhole(t, "downsample", DownsampleParams(2), floatStream([]float64{1, 3, 5, 7, 10}))
	got := DownsampleResult(out)
	want := []float64{2, 6, 10} // trailing partial group averages itself
	if len(got) != len(want) {
		t.Fatalf("downsample = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	// Two tight blobs around 10 and 100 must yield centroids near them.
	rng := rand.New(rand.NewSource(6))
	var vals []float64
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			vals = append(vals, 10+rng.NormFloat64())
		} else {
			vals = append(vals, 100+rng.NormFloat64())
		}
	}
	out := runWhole(t, "kmeans1d", KMeansParams(2, 0, 120), floatStream(vals))
	cs, err := KMeansResult(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("clusters = %+v", cs)
	}
	if math.Abs(cs[0].Centroid-10) > 2 || math.Abs(cs[1].Centroid-100) > 2 {
		t.Errorf("centroids = %v, %v", cs[0].Centroid, cs[1].Centroid)
	}
	if cs[0].Count+cs[1].Count != 2000 {
		t.Errorf("counts = %d + %d", cs[0].Count, cs[1].Count)
	}
}

func TestKMeansRejectsBadParams(t *testing.T) {
	k, _ := New("kmeans1d")
	if err := k.Configure(nil); err == nil {
		t.Error("nil params accepted")
	}
	if err := k.Configure(KMeansParams(0, 0, 1)); err == nil {
		t.Error("k=0 accepted")
	}
	if err := k.Configure(KMeansParams(3, 5, 5)); err == nil {
		t.Error("empty range accepted")
	}
	if err := k.Process([]byte{1}); err == nil {
		t.Error("process before configure accepted")
	}
}

func TestGaussianSmoothsConstantImage(t *testing.T) {
	// A constant image must filter to itself (kernel sums to 16/16).
	const w, h = 16, 8
	img := bytes.Repeat([]byte{100}, w*h)
	out := runWhole(t, "gaussian2d", GaussianParams(w, true), img)
	if len(out) != w*h {
		t.Fatalf("output size = %d, want %d", len(out), w*h)
	}
	for i, p := range out {
		if p != 100 {
			t.Fatalf("pixel %d = %d, want 100", i, p)
		}
	}
}

func TestGaussianDigestMatchesFullImage(t *testing.T) {
	const w, h = 32, 16
	img := make([]byte, w*h)
	rng := rand.New(rand.NewSource(3))
	rng.Read(img)
	full := runWhole(t, "gaussian2d", GaussianParams(w, true), img)
	dig, err := DecodeGaussianDigest(runWhole(t, "gaussian2d", GaussianParams(w, false), img))
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	mn, mx := full[0], full[0]
	for _, p := range full {
		sum += uint64(p)
		if p < mn {
			mn = p
		}
		if p > mx {
			mx = p
		}
	}
	if dig.Pixels != uint64(len(full)) || dig.Sum != sum || dig.Min != mn || dig.Max != mx {
		t.Errorf("digest %+v disagrees with full image (sum=%d min=%d max=%d)", dig, sum, mn, mx)
	}
	if dig.Rows != h {
		t.Errorf("rows = %d, want %d", dig.Rows, h)
	}
}

func TestGaussianReferenceConvolution(t *testing.T) {
	// 3×3 interior check against the hand-computed convolution.
	img := []byte{
		10, 20, 30,
		40, 50, 60,
		70, 80, 90,
	}
	out := runWhole(t, "gaussian2d", GaussianParams(3, true), img)
	// Centre pixel: (1*10+2*20+1*30 + 2*40+4*50+2*60 + 1*70+2*80+1*90)/16 = 800/16 = 50.
	if out[4] != 50 {
		t.Errorf("centre = %d, want 50", out[4])
	}
}

func TestGaussianRejectsBadParams(t *testing.T) {
	k, _ := New("gaussian2d")
	if err := k.Configure(nil); err == nil {
		t.Error("nil params accepted")
	}
	if err := k.Configure(GaussianParams(2, false)); err == nil {
		t.Error("width 2 accepted")
	}
	if err := k.Process([]byte{1}); err == nil {
		t.Error("process before configure accepted")
	}
}

func TestUnknownKernel(t *testing.T) {
	if _, err := New("no-such-op"); err == nil {
		t.Fatal("expected error")
	}
}

func TestNamesIncludesAllRegistered(t *testing.T) {
	names := Names()
	want := []string{"count", "downsample", "gaussian2d", "histogram", "kmeans1d", "minmax", "moments", "sum8", "sum64", "wordcount"}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("registry missing %q", w)
		}
	}
}

// kernelCases enumerates every kernel with params usable over arbitrary
// byte streams, for the cross-cutting properties below.
func kernelCases() []struct {
	op     string
	params []byte
} {
	return []struct {
		op     string
		params []byte
	}{
		{"sum8", nil},
		{"sum64", nil},
		{"minmax", nil},
		{"moments", nil},
		{"histogram", nil},
		{"count", []byte{0xAB, 0xCD}},
		{"wordcount", nil},
		{"downsample", DownsampleParams(4)},
		{"kmeans1d", KMeansParams(3, -1000, 1000)},
		{"gaussian2d", GaussianParams(16, false)},
		{"gaussian2d", GaussianParams(16, true)},
		{"gaussian2d", GaussianParamsHalo(16, true,
			bytes.Repeat([]byte{40}, 16), bytes.Repeat([]byte{200}, 16))},
	}
}

// Property: chunking must never change any kernel's result.
func TestChunkingInvarianceProperty(t *testing.T) {
	for _, tc := range kernelCases() {
		tc := tc
		t.Run(tc.op, func(t *testing.T) {
			f := func(seed int64, nData uint16, s1, s2, s3 uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				data := make([]byte, int(nData)%2048+1)
				rng.Read(data)
				want := runWhole(t, tc.op, tc.params, data)
				sizes := []int{int(s1)%97 + 1, int(s2)%13 + 1, int(s3)%512 + 1}
				got := runChunked(t, tc.op, tc.params, data, sizes)
				return bytes.Equal(want, got)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: interrupting at any point and resuming from the checkpoint in
// a fresh kernel must reproduce the uninterrupted result — the invariant
// DOSAS migration relies on.
func TestCheckpointMigrationProperty(t *testing.T) {
	for _, tc := range kernelCases() {
		tc := tc
		t.Run(tc.op, func(t *testing.T) {
			f := func(seed int64, nData uint16, cut uint16) bool {
				rng := rand.New(rand.NewSource(seed))
				data := make([]byte, int(nData)%2048+1)
				rng.Read(data)
				want := runWhole(t, tc.op, tc.params, data)
				got := runWithMigration(t, tc.op, tc.params, data, int(cut)%(len(data)+1))
				return bytes.Equal(want, got)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRestoreRejectsForeignCheckpoint(t *testing.T) {
	k1, _ := New("sum8")
	k1.Configure(nil)
	k1.Process([]byte{1, 2, 3})
	state, err := k1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := New("wordcount")
	k2.Configure(nil)
	if err := k2.Restore(state); err == nil {
		t.Fatal("foreign checkpoint accepted")
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := NewState()
	s.PutInt64("i", -5)
	s.PutFloat64("f", 2.5)
	s.PutBytes("b", []byte{9, 8})
	raw, err := s.Encode("k")
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeState("k", raw)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Int64("i"); v != -5 {
		t.Errorf("i = %d", v)
	}
	if v, _ := got.Float64("f"); v != 2.5 {
		t.Errorf("f = %v", v)
	}
	if v, _ := got.Bytes("b"); !bytes.Equal(v, []byte{9, 8}) {
		t.Errorf("b = %v", v)
	}
	if _, err := got.Int64("missing"); err == nil {
		t.Error("missing variable fetch succeeded")
	}
	if _, err := got.Float64("i"); err == nil {
		t.Error("wrong-type fetch succeeded")
	}
	if _, err := DecodeState("other", raw); err == nil {
		t.Error("foreign owner accepted")
	}
}
