package kernels

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// CombineFunc merges per-storage-node partial results of one operation
// into the final result, in server order. Only decomposable (associative)
// operations have combiners; operations whose output depends on global
// byte order (e.g. downsample over a striped file) do not, and the Active
// Storage Client restricts those to single-server ranges.
type CombineFunc func(parts [][]byte) ([]byte, error)

var (
	combMu    sync.RWMutex
	combiners = make(map[string]CombineFunc)
)

// RegisterCombiner installs the combiner for op. Panics on duplicates.
func RegisterCombiner(op string, f CombineFunc) {
	combMu.Lock()
	defer combMu.Unlock()
	if _, ok := combiners[op]; ok {
		panic(fmt.Sprintf("kernels: duplicate combiner for %q", op))
	}
	combiners[op] = f
}

// CanCombine reports whether op has a registered combiner.
func CanCombine(op string) bool {
	combMu.RLock()
	defer combMu.RUnlock()
	_, ok := combiners[op]
	return ok
}

// Combine merges parts with op's combiner. A single part passes through
// untouched regardless of registration.
func Combine(op string, parts [][]byte) ([]byte, error) {
	if len(parts) == 1 {
		return parts[0], nil
	}
	combMu.RLock()
	f, ok := combiners[op]
	combMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("kernels: operation %q has no combiner; restrict the request to one storage node", op)
	}
	return f(parts)
}

func init() {
	sumU64 := func(parts [][]byte) ([]byte, error) {
		var total uint64
		for _, p := range parts {
			if len(p) < 8 {
				return nil, fmt.Errorf("kernels: combine: short partial result (%d bytes)", len(p))
			}
			total += binary.LittleEndian.Uint64(p)
		}
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, total)
		return out, nil
	}
	RegisterCombiner("sum8", sumU64)
	RegisterCombiner("count", sumU64)
	RegisterCombiner("wordcount", sumU64) // upper bound: words split at stripe joints count twice

	RegisterCombiner("sum64", func(parts [][]byte) ([]byte, error) {
		var total float64
		for _, p := range parts {
			if len(p) < 8 {
				return nil, fmt.Errorf("kernels: combine: short partial result (%d bytes)", len(p))
			}
			total += f64le(p)
		}
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, math.Float64bits(total))
		return out, nil
	})

	RegisterCombiner("minmax", func(parts [][]byte) ([]byte, error) {
		mn, mx := math.NaN(), math.NaN()
		for _, p := range parts {
			pmn, pmx, err := MinMaxResult(p)
			if err != nil {
				return nil, err
			}
			if math.IsNaN(pmn) {
				continue // empty partial stream
			}
			if math.IsNaN(mn) || pmn < mn {
				mn = pmn
			}
			if math.IsNaN(mx) || pmx > mx {
				mx = pmx
			}
		}
		out := putF64(nil, mn)
		return putF64(out, mx), nil
	})

	RegisterCombiner("moments", func(parts [][]byte) ([]byte, error) {
		var total Moments
		for _, p := range parts {
			m, err := MomentsResult(p)
			if err != nil {
				return nil, err
			}
			total.Count += m.Count
			total.Sum += m.Sum
			total.SumSq += m.SumSq
		}
		out := make([]byte, 8, 24)
		binary.LittleEndian.PutUint64(out, total.Count)
		out = putF64(out, total.Sum)
		return putF64(out, total.SumSq), nil
	})

	RegisterCombiner("histogram", func(parts [][]byte) ([]byte, error) {
		var total [256]uint64
		for _, p := range parts {
			bins, err := HistogramResult(p)
			if err != nil {
				return nil, err
			}
			for i, v := range bins {
				total[i] += v
			}
		}
		out := make([]byte, 256*8)
		for i, v := range total {
			binary.LittleEndian.PutUint64(out[i*8:], v)
		}
		return out, nil
	})

	// gaussian2d digests combine component-wise. Each storage node filters
	// its local stripe stream as an independent image (the "partial striped
	// file support" compromise of Piernas et al.); the CRC of a multi-part
	// digest is not meaningful and is zeroed.
	RegisterCombiner("gaussian2d", func(parts [][]byte) ([]byte, error) {
		var total GaussianDigest
		first := true
		for _, p := range parts {
			d, err := DecodeGaussianDigest(p)
			if err != nil {
				return nil, err
			}
			total.Pixels += d.Pixels
			total.Sum += d.Sum
			total.Rows += d.Rows
			if first || d.Min < total.Min {
				total.Min = d.Min
			}
			if first || d.Max > total.Max {
				total.Max = d.Max
			}
			first = false
		}
		out := make([]byte, 29)
		binary.LittleEndian.PutUint64(out[0:8], total.Pixels)
		binary.LittleEndian.PutUint64(out[8:16], total.Sum)
		out[16] = total.Min
		out[17] = total.Max
		binary.LittleEndian.PutUint32(out[18:22], 0)
		binary.LittleEndian.PutUint32(out[22:26], total.Rows)
		return out, nil
	})
}
