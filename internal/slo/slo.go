// Package slo is the judgement layer over the telemetry the nodes
// already collect: declarative alert rules — simple thresholds,
// rates-of-change, and SRE-style multi-window burn rates over explicit
// objectives — evaluated against a node's telemetry rings on every
// sampler tick. Rule state machines move inactive → pending → firing →
// resolved; every transition is recorded as a structured event, the
// firing/pending totals are exported as metrics, and the current alert
// table is served over the wire for dosasctl alerts and folded into the
// node's health report.
//
// Burn-rate semantics follow the multi-window error-budget convention:
// for an objective O (the tolerable bad/total ratio), the burn over a
// window is (bad/total)/O — 1× means exactly spending the budget. A
// rule breaches only when both a short and a long window burn at ≥
// Factor×, so brief blips (short window recovers) and stale history
// (long window alone) cannot fire on their own.
package slo

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dosas/internal/eventlog"
	"dosas/internal/metrics"
	"dosas/internal/telemetry"
)

// Kind names a rule's evaluation semantics.
type Kind string

// Rule kinds.
const (
	// KindThreshold compares the windowed average of a series against
	// Threshold.
	KindThreshold Kind = "threshold"
	// KindRateOfChange compares the series' slope (units per second
	// across Window) against Threshold — drift detection.
	KindRateOfChange Kind = "rate_of_change"
	// KindBurnRate compares short- and long-window error-budget burn
	// against Factor; see the package comment for the math.
	KindBurnRate Kind = "burn_rate"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("500ms", "3s") and unmarshals from either a string or nanoseconds —
// the format rule files use.
type Duration time.Duration

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "3s"-style strings or raw nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("slo: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("slo: bad duration %s", b)
	}
	*d = Duration(n)
	return nil
}

// Rule is one declarative alert rule. Unused fields for a kind are
// ignored; Validate fills defaults.
type Rule struct {
	// Name identifies the rule in alerts, events, and metrics.
	Name string `json:"name"`
	// Series is the telemetry series the rule watches (the burn-rate
	// numerator — per-tick bad-event counts).
	Series string `json:"series"`
	// Kind selects the evaluation semantics.
	Kind Kind `json:"kind"`
	// Op is the comparison for threshold/rate_of_change rules: ">"
	// (default) or "<".
	Op string `json:"op,omitempty"`
	// Threshold is the comparison bound for threshold/rate_of_change.
	Threshold float64 `json:"threshold,omitempty"`
	// Window is the averaging window for threshold/rate_of_change
	// (default 2s).
	Window Duration `json:"window,omitempty"`
	// Denom, for burn_rate rules, names the total-events series (the
	// denominator, per-tick counts). Empty means the burn is computed
	// from the windowed average of Series alone.
	Denom string `json:"denom,omitempty"`
	// Objective is the burn-rate error budget: the tolerable bad/total
	// ratio (e.g. 0.02 = 2% of requests may bounce).
	Objective float64 `json:"objective,omitempty"`
	// ShortWindow and LongWindow are the two burn windows (defaults 3s
	// and 15s — sized to the telemetry ring, which retains one minute).
	ShortWindow Duration `json:"short_window,omitempty"`
	LongWindow  Duration `json:"long_window,omitempty"`
	// Factor is the burn multiple both windows must reach to breach
	// (default 2: spending the budget twice as fast as allowed).
	Factor float64 `json:"factor,omitempty"`
	// For is how long a breach must persist before pending becomes
	// firing (0 fires on the first evaluated breach).
	For Duration `json:"for,omitempty"`
	// Severity labels the alert: "info", "warn" (default) or "page".
	Severity string `json:"severity,omitempty"`
}

// Validate checks required fields and fills kind-appropriate defaults.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("slo: rule with no name")
	}
	if r.Series == "" {
		return fmt.Errorf("slo: rule %q: no series", r.Name)
	}
	switch r.Kind {
	case KindThreshold, KindRateOfChange:
		if r.Window <= 0 {
			r.Window = Duration(2 * time.Second)
		}
	case KindBurnRate:
		if r.Objective <= 0 {
			return fmt.Errorf("slo: rule %q: burn_rate needs a positive objective", r.Name)
		}
		if r.ShortWindow <= 0 {
			r.ShortWindow = Duration(3 * time.Second)
		}
		if r.LongWindow <= 0 {
			r.LongWindow = Duration(15 * time.Second)
		}
		if r.LongWindow < r.ShortWindow {
			return fmt.Errorf("slo: rule %q: long_window %v < short_window %v",
				r.Name, time.Duration(r.LongWindow), time.Duration(r.ShortWindow))
		}
		if r.Factor <= 0 {
			r.Factor = 2
		}
	default:
		return fmt.Errorf("slo: rule %q: unknown kind %q", r.Name, r.Kind)
	}
	switch r.Op {
	case "":
		r.Op = ">"
	case ">", "<":
	default:
		return fmt.Errorf("slo: rule %q: op must be \">\" or \"<\", got %q", r.Name, r.Op)
	}
	switch r.Severity {
	case "":
		r.Severity = "warn"
	case "info", "warn", "page":
	default:
		return fmt.Errorf("slo: rule %q: unknown severity %q", r.Name, r.Severity)
	}
	return nil
}

// LoadRules reads a JSON rule file: an array of Rule objects. Every
// rule is validated (and defaulted) before any is returned.
func LoadRules(path string) ([]Rule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("slo: rules file: %w", err)
	}
	return ParseRules(data)
}

// ParseRules decodes and validates a JSON rule array.
func ParseRules(data []byte) ([]Rule, error) {
	var rules []Rule
	if err := json.Unmarshal(data, &rules); err != nil {
		return nil, fmt.Errorf("slo: parse rules: %w", err)
	}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			return nil, err
		}
	}
	return rules, nil
}

// DefaultRules is the built-in rule set every node evaluates when no
// -slo-rules file overrides it: queue saturation, memory pressure,
// estimator drift, and the bounce error-budget burn rate. Thresholds
// track the defaults in core (queue saturation 8, admission memory
// guard at high pressure).
func DefaultRules() []Rule {
	rules := []Rule{
		{
			Name: "queue-saturation", Series: "queue.depth", Kind: KindThreshold,
			Threshold: 6, Window: Duration(2 * time.Second),
			For: Duration(time.Second), Severity: "warn",
		},
		{
			Name: "memory-pressure", Series: "mem.pressure", Kind: KindThreshold,
			Threshold: 0.9, Window: Duration(2 * time.Second),
			For: Duration(time.Second), Severity: "warn",
		},
		{
			Name: "estimator-drift", Series: "est.error.pct", Kind: KindRateOfChange,
			Threshold: 5, Window: Duration(10 * time.Second),
			For: Duration(2 * time.Second), Severity: "info",
		},
		{
			Name: "bounce-budget-burn", Series: "bounce.delta", Denom: "arrivals.delta",
			Kind: KindBurnRate, Objective: 0.02, Factor: 2,
			ShortWindow: Duration(3 * time.Second), LongWindow: Duration(10 * time.Second),
			For: Duration(500 * time.Millisecond), Severity: "page",
		},
		{
			// One tenant owning ≥75% of per-tick queue wait over both burn
			// windows. The series is 0 on single-tenant nodes (a lone
			// tenant is not a neighbor) and absent on nodes without a
			// tenant table, so the rule abstains there. Factor 1 is
			// explicit: the objective IS the share bound, and the default
			// factor of 2 would demand an impossible 150% share.
			Name: "noisy-neighbor", Series: "tenant.wait.share", Kind: KindBurnRate,
			Objective: 0.75, Factor: 1,
			ShortWindow: Duration(3 * time.Second), LongWindow: Duration(10 * time.Second),
			For: Duration(500 * time.Millisecond), Severity: "warn",
		},
	}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			panic(err) // built-ins are validated by tests
		}
	}
	return rules
}

// State is a rule's alert state.
type State string

// Alert states.
const (
	// StateInactive: the rule has never breached (or recovered before
	// its For dwell and was cancelled).
	StateInactive State = "inactive"
	// StatePending: breaching, waiting out the For dwell.
	StatePending State = "pending"
	// StateFiring: breached for at least For.
	StateFiring State = "firing"
	// StateResolved: was firing, no longer breaching.
	StateResolved State = "resolved"
)

// Alert is one rule's current status — the unit dosasctl alerts
// displays and AlertFetchResp carries.
type Alert struct {
	Rule     string `json:"rule"`
	Series   string `json:"series"`
	Kind     Kind   `json:"kind"`
	State    State  `json:"state"`
	Severity string `json:"severity"`
	Node     string `json:"node,omitempty"`
	// Value is the last evaluated rule value: the windowed average
	// (threshold), slope per second (rate_of_change), or short-window
	// burn multiple (burn_rate).
	Value float64 `json:"value"`
	// Detail is a human-readable evaluation summary.
	Detail string `json:"detail,omitempty"`
	// SinceUnixNano is when the current state was entered.
	SinceUnixNano int64 `json:"since,omitempty"`
	// FiredUnixNano / ResolvedUnixNano are the most recent firing and
	// resolution instants (0 if never).
	FiredUnixNano    int64 `json:"fired,omitempty"`
	ResolvedUnixNano int64 `json:"resolved,omitempty"`
}

// Config parameterises an Engine.
type Config struct {
	// Rules to evaluate (each must already Validate).
	Rules []Rule
	// Sampler is the telemetry source the rules read.
	Sampler *telemetry.Sampler
	// Events receives transition events (optional).
	Events *eventlog.Log
	// Metrics receives slo.firing / slo.pending gauges and the
	// slo.transitions counter (optional).
	Metrics *metrics.Registry
	// Node labels emitted alerts and events.
	Node string
	// Annotate, when set, contributes extra key/value pairs (flat
	// alternating list) to every transition event of the named rule — the
	// hook through which the tenant plane names the dominant tenant on
	// noisy-neighbor transitions. Optional.
	Annotate func(rule string) []string
	// Now overrides the clock, for tests.
	Now func() time.Time
}

// Engine evaluates a rule set against one node's telemetry. Hook Eval
// onto the sampler with Sampler.OnTick. A nil *Engine is valid and
// holds no alerts.
type Engine struct {
	cfg Config
	now func() time.Time

	mu     sync.Mutex
	states []ruleState
	evals  uint64
}

type ruleState struct {
	rule        Rule
	state       State
	since       time.Time // entered current state
	breachSince time.Time // first tick of the current breach streak
	firedAt     time.Time
	resolvedAt  time.Time
	value       float64
	detail      string
}

// NewEngine validates the rules and returns an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	e := &Engine{cfg: cfg, now: cfg.Now}
	for _, r := range cfg.Rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		e.states = append(e.states, ruleState{rule: r, state: StateInactive})
	}
	sort.Slice(e.states, func(i, j int) bool { return e.states[i].rule.Name < e.states[j].rule.Name })
	return e, nil
}

// Eval evaluates every rule once against the sampler's current rings
// and advances the alert state machines. Designed to run on the
// sampler tick; safe on nil.
func (e *Engine) Eval() {
	if e == nil {
		return
	}
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evals++
	for i := range e.states {
		st := &e.states[i]
		value, detail, breach, ok := evalRule(e.cfg.Sampler, st.rule)
		if !ok {
			// The rule abstained (too few points in the window, e.g. a
			// telemetry stall). Missing data is neither a breach nor a
			// recovery: hold the current state so a firing alert does
			// not auto-resolve on a gap.
			continue
		}
		st.value, st.detail = value, detail
		switch {
		case breach && (st.state == StateInactive || st.state == StateResolved):
			st.state, st.since, st.breachSince = StatePending, now, now
			e.transition(st, "alert pending", eventlog.Warn)
		case !breach && st.state == StatePending:
			// Recovered inside the dwell: cancel silently back to
			// inactive — the alert never fired, so no resolved event.
			st.state, st.since = StateInactive, now
		case !breach && st.state == StateFiring:
			st.state, st.since, st.resolvedAt = StateResolved, now, now
			e.transition(st, "alert resolved", eventlog.Info)
		}
		if breach && st.state == StatePending &&
			now.Sub(st.breachSince) >= time.Duration(st.rule.For) {
			st.state, st.since, st.firedAt = StateFiring, now, now
			e.transition(st, "alert firing", eventlog.Error)
		}
	}
	if m := e.cfg.Metrics; m != nil {
		m.Gauge("slo.firing").Set(int64(e.countLocked(StateFiring)))
		m.Gauge("slo.pending").Set(int64(e.countLocked(StatePending)))
	}
}

// transition records one state change as an event and a metric. Called
// with e.mu held; the event log has its own lock and never calls back.
func (e *Engine) transition(st *ruleState, msg string, level eventlog.Level) {
	if m := e.cfg.Metrics; m != nil {
		m.Counter("slo.transitions").Inc()
	}
	ev := e.cfg.Events
	if ev == nil {
		return
	}
	kv := []string{
		"rule", st.rule.Name,
		"series", st.rule.Series,
		"state", string(st.state),
		"severity", st.rule.Severity,
		"value", FormatValue(st.value),
	}
	if st.detail != "" {
		kv = append(kv, "detail", st.detail)
	}
	if a := e.cfg.Annotate; a != nil {
		kv = append(kv, a(st.rule.Name)...)
	}
	switch level {
	case eventlog.Error:
		ev.Error("slo", msg, kv...)
	case eventlog.Warn:
		ev.Warn("slo", msg, kv...)
	default:
		ev.Info("slo", msg, kv...)
	}
}

func (e *Engine) countLocked(s State) int {
	n := 0
	for i := range e.states {
		if e.states[i].state == s {
			n++
		}
	}
	return n
}

// Alerts returns every rule's current status, sorted by rule name.
func (e *Engine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.states))
	for i := range e.states {
		st := &e.states[i]
		a := Alert{
			Rule: st.rule.Name, Series: st.rule.Series, Kind: st.rule.Kind,
			State: st.state, Severity: st.rule.Severity, Node: e.cfg.Node,
			Value: st.value, Detail: st.detail,
		}
		if !st.since.IsZero() {
			a.SinceUnixNano = st.since.UnixNano()
		}
		if !st.firedAt.IsZero() {
			a.FiredUnixNano = st.firedAt.UnixNano()
		}
		if !st.resolvedAt.IsZero() {
			a.ResolvedUnixNano = st.resolvedAt.UnixNano()
		}
		out = append(out, a)
	}
	return out
}

// Firing reports how many rules are currently firing.
func (e *Engine) Firing() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.countLocked(StateFiring)
}

// Evals reports how many times Eval has run.
func (e *Engine) Evals() uint64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evals
}

// Checks renders the engine's status as health checks, so firing
// alerts fail the node's readiness report: one aggregate "alerts"
// check plus one check per firing rule. Info-severity rules are
// surfaced but never degrade readiness — they exist to annotate
// transients (the estimator-drift rule trips for one slope window
// after a cold boot's first request, which is worth seeing in health
// output but is not an operator page).
func (e *Engine) Checks() []telemetry.Check {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	firing := e.countLocked(StateFiring)
	info := 0
	for i := range e.states {
		st := &e.states[i]
		if st.state == StateFiring && st.rule.Severity == "info" {
			info++
		}
	}
	detail := fmt.Sprintf("%d firing of %d rules", firing, len(e.states))
	if info > 0 {
		detail = fmt.Sprintf("%s (%d info-only)", detail, info)
	}
	out := []telemetry.Check{{
		Name: "alerts", OK: firing == info, Detail: detail,
	}}
	for i := range e.states {
		st := &e.states[i]
		if st.state == StateFiring {
			out = append(out, telemetry.Check{
				Name: "alert:" + st.rule.Name, OK: st.rule.Severity == "info",
				Detail: st.detail,
			})
		}
	}
	return out
}

// evalRule computes one rule against the sampler. ok is false when the
// series has too few points in the window to judge (the rule abstains:
// no breach, previous value retained).
func evalRule(s *telemetry.Sampler, r Rule) (value float64, detail string, breach, ok bool) {
	if s == nil {
		return 0, "", false, false
	}
	switch r.Kind {
	case KindThreshold:
		avg, n := windowAvg(s, r.Series, time.Duration(r.Window))
		if n == 0 {
			return 0, "", false, false
		}
		breach = compare(avg, r.Op, r.Threshold)
		detail = fmt.Sprintf("avg(%s,%v)=%s %s %s", r.Series, time.Duration(r.Window),
			FormatValue(avg), r.Op, FormatValue(r.Threshold))
		return avg, detail, breach, true
	case KindRateOfChange:
		slope, n := windowSlope(s, r.Series, time.Duration(r.Window))
		if n < 2 {
			return 0, "", false, false
		}
		breach = compare(slope, r.Op, r.Threshold)
		detail = fmt.Sprintf("slope(%s,%v)=%s/s %s %s", r.Series, time.Duration(r.Window),
			FormatValue(slope), r.Op, FormatValue(r.Threshold))
		return slope, detail, breach, true
	case KindBurnRate:
		burnShort, okS := burn(s, r, time.Duration(r.ShortWindow))
		burnLong, okL := burn(s, r, time.Duration(r.LongWindow))
		if !okS || !okL {
			return 0, "", false, false
		}
		breach = burnShort >= r.Factor && burnLong >= r.Factor
		detail = fmt.Sprintf("burn short=%sx long=%sx objective=%s factor=%s",
			FormatValue(burnShort), FormatValue(burnLong),
			FormatValue(r.Objective), FormatValue(r.Factor))
		return burnShort, detail, breach, true
	}
	return 0, "", false, false
}

// burn computes the error-budget burn multiple over one window: the
// bad/total ratio (sums of the numerator and denominator series, or
// the numerator's windowed average when no denominator is named)
// divided by the objective.
func burn(s *telemetry.Sampler, r Rule, window time.Duration) (float64, bool) {
	var ratio float64
	if r.Denom == "" {
		avg, n := windowAvg(s, r.Series, window)
		if n == 0 {
			return 0, false
		}
		ratio = avg
	} else {
		num, n1 := windowSum(s, r.Series, window)
		den, n2 := windowSum(s, r.Denom, window)
		if n1 == 0 || n2 == 0 {
			return 0, false
		}
		if den <= 0 {
			return 0, true // no traffic: nothing is burning
		}
		ratio = num / den
	}
	return ratio / r.Objective, true
}

func windowAvg(s *telemetry.Sampler, name string, window time.Duration) (float64, int) {
	sum, n := windowSum(s, name, window)
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

func windowSum(s *telemetry.Sampler, name string, window time.Duration) (float64, int) {
	ser, ok := s.Get(name, window)
	if !ok {
		return 0, 0
	}
	var sum float64
	for _, p := range ser.Points {
		sum += p.Value
	}
	return sum, len(ser.Points)
}

func windowSlope(s *telemetry.Sampler, name string, window time.Duration) (float64, int) {
	ser, ok := s.Get(name, window)
	if !ok || len(ser.Points) < 2 {
		return 0, len(ser.Points)
	}
	first, last := ser.Points[0], ser.Points[len(ser.Points)-1]
	dt := time.Duration(last.UnixNano - first.UnixNano).Seconds()
	if dt <= 0 {
		return 0, len(ser.Points)
	}
	return (last.Value - first.Value) / dt, len(ser.Points)
}

func compare(v float64, op string, threshold float64) bool {
	if op == "<" {
		return v < threshold
	}
	return v > threshold
}

// FormatValue renders a float compactly and deterministically for
// events, details, and the alerts table.
func FormatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// EncodeAlerts marshals alerts as the canonical JSON array carried by
// AlertFetchResp.
func EncodeAlerts(alerts []Alert) ([]byte, error) {
	if len(alerts) == 0 {
		return []byte("[]"), nil
	}
	return json.Marshal(alerts)
}

// DecodeAlerts is the inverse of EncodeAlerts.
func DecodeAlerts(data []byte) ([]Alert, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var out []Alert
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("slo: decode alerts: %w", err)
	}
	return out, nil
}

// FormatAlerts renders the table dosasctl alerts prints: one row per
// rule, sorted node-major then rule, states upper-cased so FIRING
// stands out.
func FormatAlerts(alerts []Alert) string {
	sorted := append([]Alert(nil), alerts...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Node != sorted[j].Node {
			return sorted[i].Node < sorted[j].Node
		}
		return sorted[i].Rule < sorted[j].Rule
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-20s %-9s %-5s %-10s %s\n", "NODE", "RULE", "STATE", "SEV", "VALUE", "DETAIL")
	for _, a := range sorted {
		fmt.Fprintf(&b, "%-8s %-20s %-9s %-5s %-10s %s\n",
			a.Node, a.Rule, strings.ToUpper(string(a.State)), a.Severity,
			FormatValue(a.Value), a.Detail)
	}
	return b.String()
}
