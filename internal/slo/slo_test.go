package slo

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dosas/internal/eventlog"
	"dosas/internal/metrics"
	"dosas/internal/telemetry"
)

// manualClock only moves when told to, so windows and dwell times are
// exact.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock { return &manualClock{t: time.Unix(1000, 0)} }

func (c *manualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// rig wires a sampler, event log, metrics registry, and engine to one
// manual clock.
type rig struct {
	clk     *manualClock
	sampler *telemetry.Sampler
	events  *eventlog.Log
	reg     *metrics.Registry
	engine  *Engine
}

func newRig(t *testing.T, rules []Rule) *rig {
	t.Helper()
	clk := newManualClock()
	s := telemetry.NewSampler(telemetry.Config{Capacity: 256, Now: clk.now})
	ev, err := eventlog.New(eventlog.Config{Capacity: 64, Node: "data-0", Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	e, err := NewEngine(Config{
		Rules: rules, Sampler: s, Events: ev, Metrics: reg,
		Node: "data-0", Now: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clk: clk, sampler: s, events: ev, reg: reg, engine: e}
}

// step advances the clock one tick, samples, and evaluates — one
// sampler tick with the engine hooked on.
func (r *rig) step(d time.Duration) {
	r.clk.advance(d)
	r.sampler.Tick()
	r.engine.Eval()
}

func stateOf(t *testing.T, e *Engine, rule string) Alert {
	t.Helper()
	for _, a := range e.Alerts() {
		if a.Rule == rule {
			return a
		}
	}
	t.Fatalf("rule %q not in Alerts()", rule)
	return Alert{}
}

func TestThresholdLifecycle(t *testing.T) {
	rules := []Rule{{
		Name: "queue-sat", Series: "queue.depth", Kind: KindThreshold,
		Threshold: 5, Window: Duration(2 * time.Second),
		For: Duration(300 * time.Millisecond), Severity: "page",
	}}
	r := newRig(t, rules)
	depth := 1.0
	r.sampler.Register("queue.depth", func() float64 { return depth })

	for i := 0; i < 5; i++ {
		r.step(100 * time.Millisecond)
	}
	if a := stateOf(t, r.engine, "queue-sat"); a.State != StateInactive {
		t.Fatalf("steady state = %v, want inactive", a.State)
	}

	depth = 50
	r.step(100 * time.Millisecond)
	if a := stateOf(t, r.engine, "queue-sat"); a.State != StatePending {
		t.Fatalf("after breach = %v, want pending", a.State)
	}
	r.step(100 * time.Millisecond)
	r.step(100 * time.Millisecond)
	r.step(100 * time.Millisecond) // 300ms dwell reached
	a := stateOf(t, r.engine, "queue-sat")
	if a.State != StateFiring {
		t.Fatalf("after dwell = %v, want firing", a.State)
	}
	if a.FiredUnixNano == 0 || a.Value <= 5 {
		t.Fatalf("firing alert = %+v", a)
	}
	if r.engine.Firing() != 1 {
		t.Fatalf("Firing() = %d, want 1", r.engine.Firing())
	}
	if got := r.reg.Gauge("slo.firing").Value(); got != 1 {
		t.Fatalf("slo.firing gauge = %d, want 1", got)
	}
	checks := r.engine.Checks()
	if len(checks) != 2 || checks[0].OK || checks[1].Name != "alert:queue-sat" {
		t.Fatalf("Checks = %+v", checks)
	}

	// Recover: drop the depth and age the breach out of the window.
	depth = 0
	for i := 0; i < 25; i++ {
		r.step(100 * time.Millisecond)
	}
	a = stateOf(t, r.engine, "queue-sat")
	if a.State != StateResolved || a.ResolvedUnixNano == 0 {
		t.Fatalf("after recovery = %+v, want resolved", a)
	}
	if r.engine.Firing() != 0 {
		t.Fatal("still firing after recovery")
	}

	// The transitions were recorded as events: pending, firing, resolved.
	evs := r.events.Snapshot(0, eventlog.Debug, 0)
	var msgs []string
	for _, ev := range evs {
		if ev.Sub == "slo" {
			msgs = append(msgs, ev.Level+":"+ev.Msg)
		}
	}
	want := []string{"warn:alert pending", "error:alert firing", "info:alert resolved"}
	if len(msgs) != len(want) {
		t.Fatalf("events = %v, want %v", msgs, want)
	}
	for i := range want {
		if msgs[i] != want[i] {
			t.Fatalf("events = %v, want %v", msgs, want)
		}
	}
	if got := r.reg.Counter("slo.transitions").Value(); got != 3 {
		t.Fatalf("slo.transitions = %d, want 3", got)
	}
}

func TestPendingCancelsWithoutFiring(t *testing.T) {
	rules := []Rule{{
		Name: "queue-sat", Series: "queue.depth", Kind: KindThreshold,
		Threshold: 5, Window: Duration(300 * time.Millisecond),
		For: Duration(time.Second),
	}}
	r := newRig(t, rules)
	depth := 10.0
	r.sampler.Register("queue.depth", func() float64 { return depth })
	r.step(100 * time.Millisecond)
	if a := stateOf(t, r.engine, "queue-sat"); a.State != StatePending {
		t.Fatalf("state = %v, want pending", a.State)
	}
	depth = 0
	for i := 0; i < 5; i++ {
		r.step(100 * time.Millisecond)
	}
	if a := stateOf(t, r.engine, "queue-sat"); a.State != StateInactive {
		t.Fatalf("state = %v, want inactive (cancelled)", a.State)
	}
	// Only the pending event — a cancelled dwell never fires or resolves.
	evs := r.events.Snapshot(0, eventlog.Debug, 0)
	if len(evs) != 1 || evs[0].Msg != "alert pending" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestBurnRateLifecycle(t *testing.T) {
	rules := []Rule{{
		Name: "bounce-burn", Series: "bounce.delta", Denom: "arrivals.delta",
		Kind: KindBurnRate, Objective: 0.02, Factor: 2,
		ShortWindow: Duration(time.Second), LongWindow: Duration(3 * time.Second),
		For: Duration(200 * time.Millisecond), Severity: "page",
	}}
	r := newRig(t, rules)
	var bounce, arrivals float64
	r.sampler.Register("bounce.delta", func() float64 { return bounce })
	r.sampler.Register("arrivals.delta", func() float64 { return arrivals })

	// Healthy traffic: 100 arrivals/tick, 1 bounce/tick = 1% < 2%.
	arrivals, bounce = 100, 1
	for i := 0; i < 40; i++ {
		r.step(100 * time.Millisecond)
	}
	if a := stateOf(t, r.engine, "bounce-burn"); a.State != StateInactive {
		t.Fatalf("healthy burn state = %v (%s), want inactive", a.State, a.Detail)
	}

	// Storm: 30% bounce rate = 15x the objective. The long window (3s)
	// still averages in the healthy history, so the breach arrives only
	// once both windows burn past 2x — then fires after the dwell.
	bounce = 30
	sawPending := false
	for i := 0; i < 60; i++ {
		r.step(100 * time.Millisecond)
		if stateOf(t, r.engine, "bounce-burn").State == StatePending {
			sawPending = true
		}
		if stateOf(t, r.engine, "bounce-burn").State == StateFiring {
			break
		}
	}
	a := stateOf(t, r.engine, "bounce-burn")
	if !sawPending || a.State != StateFiring {
		t.Fatalf("storm: pending seen=%v state=%v (%s)", sawPending, a.State, a.Detail)
	}
	if a.Value < 2 {
		t.Fatalf("firing burn value = %v, want >= factor 2", a.Value)
	}

	// Storm ends; the short window recovers first and the breach clears.
	bounce = 0
	for i := 0; i < 40; i++ {
		r.step(100 * time.Millisecond)
	}
	if a := stateOf(t, r.engine, "bounce-burn"); a.State != StateResolved {
		t.Fatalf("after storm = %v (%s), want resolved", a.State, a.Detail)
	}
}

func TestBurnRateNoTrafficDoesNotFire(t *testing.T) {
	rules := []Rule{{
		Name: "bounce-burn", Series: "bounce.delta", Denom: "arrivals.delta",
		Kind: KindBurnRate, Objective: 0.02,
		ShortWindow: Duration(time.Second), LongWindow: Duration(2 * time.Second),
	}}
	r := newRig(t, rules)
	r.sampler.Register("bounce.delta", func() float64 { return 0 })
	r.sampler.Register("arrivals.delta", func() float64 { return 0 })
	for i := 0; i < 30; i++ {
		r.step(100 * time.Millisecond)
	}
	if a := stateOf(t, r.engine, "bounce-burn"); a.State != StateInactive {
		t.Fatalf("idle cluster burn = %v, want inactive", a.State)
	}
}

func TestRateOfChange(t *testing.T) {
	rules := []Rule{{
		Name: "est-drift", Series: "est.error.pct", Kind: KindRateOfChange,
		Threshold: 5, Window: Duration(time.Second),
	}}
	r := newRig(t, rules)
	errPct := 10.0
	r.sampler.Register("est.error.pct", func() float64 { return errPct })
	for i := 0; i < 15; i++ {
		r.step(100 * time.Millisecond)
	}
	if a := stateOf(t, r.engine, "est-drift"); a.State != StateInactive {
		t.Fatalf("flat series = %v, want inactive", a.State)
	}
	// Ramp at 10 units/second (1 per 100ms tick) > threshold 5/s.
	for i := 0; i < 15; i++ {
		errPct++
		r.step(100 * time.Millisecond)
	}
	a := stateOf(t, r.engine, "est-drift")
	if a.State != StateFiring {
		t.Fatalf("ramp = %v (%s), want firing (For=0 fires on first breach)", a.State, a.Detail)
	}
}

func TestMissingSeriesAbstains(t *testing.T) {
	rules := []Rule{{
		Name: "ghost", Series: "no.such.series", Kind: KindThreshold, Threshold: 0,
	}}
	r := newRig(t, rules)
	for i := 0; i < 5; i++ {
		r.step(100 * time.Millisecond)
	}
	if a := stateOf(t, r.engine, "ghost"); a.State != StateInactive {
		t.Fatalf("missing series = %v, want inactive", a.State)
	}
}

func TestAbstainHoldsFiringState(t *testing.T) {
	rules := []Rule{{
		Name: "queue-sat", Series: "queue.depth", Kind: KindThreshold,
		Threshold: 5, Window: Duration(time.Second), Severity: "page",
	}}
	r := newRig(t, rules)
	depth := 50.0
	r.sampler.Register("queue.depth", func() float64 { return depth })
	for i := 0; i < 5; i++ {
		r.step(100 * time.Millisecond)
	}
	if a := stateOf(t, r.engine, "queue-sat"); a.State != StateFiring {
		t.Fatalf("breach = %v, want firing (For=0 fires on first breach)", a.State)
	}

	// Telemetry stalls: the clock advances past the window with no new
	// samples, so every evaluation abstains. A firing page alert must
	// hold its state, not auto-resolve on missing data.
	for i := 0; i < 30; i++ {
		r.clk.advance(100 * time.Millisecond)
		r.engine.Eval()
	}
	if a := stateOf(t, r.engine, "queue-sat"); a.State != StateFiring {
		t.Fatalf("after telemetry stall = %v, want still firing", a.State)
	}

	// Sampling resumes with healthy values: only now does it resolve.
	depth = 0
	for i := 0; i < 15; i++ {
		r.step(100 * time.Millisecond)
	}
	if a := stateOf(t, r.engine, "queue-sat"); a.State != StateResolved {
		t.Fatalf("after recovery = %v, want resolved", a.State)
	}
}

func TestValidateAndDefaults(t *testing.T) {
	r := Rule{Name: "x", Series: "s", Kind: KindThreshold}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Op != ">" || r.Severity != "warn" || time.Duration(r.Window) != 2*time.Second {
		t.Fatalf("defaults not applied: %+v", r)
	}
	bad := []Rule{
		{Series: "s", Kind: KindThreshold},                             // no name
		{Name: "x", Kind: KindThreshold},                               // no series
		{Name: "x", Series: "s", Kind: "bogus"},                        // bad kind
		{Name: "x", Series: "s", Kind: KindThreshold, Op: ">="},        // bad op
		{Name: "x", Series: "s", Kind: KindBurnRate},                   // no objective
		{Name: "x", Series: "s", Kind: KindThreshold, Severity: "moo"}, // bad severity
		{Name: "x", Series: "s", Kind: KindBurnRate, Objective: 0.1, // long < short
			ShortWindow: Duration(5 * time.Second), LongWindow: Duration(time.Second)},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad rule %d validated: %+v", i, r)
		}
	}
}

func TestLoadRules(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.json")
	body := `[
	  {"name": "q", "series": "queue.depth", "kind": "threshold", "threshold": 6, "window": "2s", "for": "1s"},
	  {"name": "b", "series": "bounce.delta", "denom": "arrivals.delta", "kind": "burn_rate",
	   "objective": 0.02, "short_window": "3s", "long_window": "10s", "factor": 2, "severity": "page"}
	]`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	rules, err := LoadRules(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || time.Duration(rules[0].Window) != 2*time.Second ||
		time.Duration(rules[0].For) != time.Second || rules[1].Severity != "page" {
		t.Fatalf("rules = %+v", rules)
	}
	if _, err := LoadRules(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := ParseRules([]byte(`[{"name":"x"}]`)); err == nil {
		t.Error("invalid rule should fail")
	}
	if _, err := ParseRules([]byte(`{`)); err == nil {
		t.Error("bad JSON should fail")
	}
	// Duration round-trips through JSON as a string.
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"1500ms"`)); err != nil || time.Duration(d) != 1500*time.Millisecond {
		t.Fatalf("duration parse = %v, %v", d, err)
	}
	b, _ := Duration(2 * time.Second).MarshalJSON()
	if string(b) != `"2s"` {
		t.Fatalf("duration marshal = %s", b)
	}
}

func TestDefaultRulesValidate(t *testing.T) {
	rules := DefaultRules()
	if len(rules) == 0 {
		t.Fatal("no default rules")
	}
	hasBurn := false
	for _, r := range rules {
		if r.Kind == KindBurnRate {
			hasBurn = true
		}
	}
	if !hasBurn {
		t.Fatal("default rules must include a burn-rate rule")
	}
}

func TestAlertsCodec(t *testing.T) {
	in := []Alert{{
		Rule: "q", Series: "queue.depth", Kind: KindThreshold, State: StateFiring,
		Severity: "page", Node: "data-0", Value: 12.5, Detail: "avg over",
		SinceUnixNano: 5, FiredUnixNano: 5,
	}}
	enc, err := EncodeAlerts(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAlerts(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round trip = %+v", out)
	}
	if b, _ := EncodeAlerts(nil); string(b) != "[]" {
		t.Errorf("empty encode = %s", b)
	}
	if a, err := DecodeAlerts(nil); err != nil || a != nil {
		t.Errorf("empty decode = %v, %v", a, err)
	}
	if _, err := DecodeAlerts([]byte(`{`)); err == nil {
		t.Error("bad JSON should fail")
	}
}

func TestFormatAlertsTable(t *testing.T) {
	alerts := []Alert{
		{Node: "data-1", Rule: "b", State: StateInactive, Severity: "warn", Value: 0},
		{Node: "data-0", Rule: "a", State: StateFiring, Severity: "page", Value: 3.25, Detail: "x"},
	}
	got := FormatAlerts(alerts)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "NODE") {
		t.Fatalf("table = %q", got)
	}
	// Sorted node-major; firing rendered upper-case.
	if !strings.Contains(lines[1], "data-0") || !strings.Contains(lines[1], "FIRING") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "data-1") || !strings.Contains(lines[2], "INACTIVE") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	e.Eval()
	if e.Alerts() != nil || e.Firing() != 0 || e.Checks() != nil || e.Evals() != 0 {
		t.Fatal("nil engine must be inert")
	}
}

func TestEngineOnSamplerTick(t *testing.T) {
	r := newRig(t, []Rule{{
		Name: "q", Series: "queue.depth", Kind: KindThreshold, Threshold: 5,
		Window: Duration(time.Second),
	}})
	r.sampler.Register("queue.depth", func() float64 { return 10 })
	r.sampler.OnTick(r.engine.Eval)
	r.clk.advance(100 * time.Millisecond)
	r.sampler.Tick()
	if r.engine.Evals() != 1 {
		t.Fatalf("Evals = %d, want 1 (hooked on sampler tick)", r.engine.Evals())
	}
	if a := stateOf(t, r.engine, "q"); a.State != StateFiring {
		t.Fatalf("state = %v, want firing", a.State)
	}
}

// TestInfoSeverityDoesNotDegradeHealth checks a firing info-severity
// rule is surfaced in Checks without failing readiness: boot-time
// transients (the estimator warm-up slope) annotate health output,
// they don't flip a node to DEGRADED.
func TestInfoSeverityDoesNotDegradeHealth(t *testing.T) {
	rules := []Rule{{
		Name: "drift", Series: "est.error.pct", Kind: KindThreshold,
		Threshold: 5, Window: Duration(2 * time.Second),
		For: Duration(100 * time.Millisecond), Severity: "info",
	}}
	r := newRig(t, rules)
	r.sampler.Register("est.error.pct", func() float64 { return 50 })
	for i := 0; i < 5; i++ {
		r.step(100 * time.Millisecond)
	}
	if a := stateOf(t, r.engine, "drift"); a.State != StateFiring {
		t.Fatalf("state = %v, want firing", a.State)
	}
	checks := r.engine.Checks()
	if len(checks) != 2 {
		t.Fatalf("Checks = %+v", checks)
	}
	if !checks[0].OK || !strings.Contains(checks[0].Detail, "1 info-only") {
		t.Fatalf("aggregate check = %+v, want OK with info-only note", checks[0])
	}
	if checks[1].Name != "alert:drift" || !checks[1].OK {
		t.Fatalf("per-rule check = %+v, want informational OK", checks[1])
	}
}

var update = flag.Bool("update", false, "rewrite golden files")

// TestFormatAlertsGolden pins the table dosasctl alerts prints, byte for
// byte. Regenerate with `go test ./internal/slo -run Golden -update`
// after an intentional format change.
func TestFormatAlertsGolden(t *testing.T) {
	alerts := []Alert{
		{Node: "meta", Rule: "queue-saturation", Series: "queue.depth", Kind: KindThreshold,
			State: StateInactive, Severity: "warn"},
		{Node: "data-0", Rule: "bounce-budget-burn", Series: "bounce.delta", Kind: KindBurnRate,
			State: StateFiring, Severity: "page", Value: 37.5,
			Detail: "burn short=37.5x long=12x objective=0.02 factor=2"},
		{Node: "data-0", Rule: "estimator-drift", Series: "est.error.pct", Kind: KindRateOfChange,
			State: StatePending, Severity: "info", Value: 6.25,
			Detail: "slope(est.error.pct,10s)=6.25/s > 5"},
		{Node: "data-1", Rule: "bounce-budget-burn", Series: "bounce.delta", Kind: KindBurnRate,
			State: StateResolved, Severity: "page", Value: 0.5,
			Detail: "burn short=0.5x long=1.2x objective=0.02 factor=2"},
	}
	got := FormatAlerts(alerts)
	golden := filepath.Join("testdata", "alerts.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("alert table drifted from golden (run with -update if intended):\n got:\n%s\nwant:\n%s", got, want)
	}
	// Determinism: formatting the same input twice is byte-identical.
	if again := FormatAlerts(alerts); again != got {
		t.Fatal("FormatAlerts is not deterministic")
	}
}
