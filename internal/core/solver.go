package core

import (
	"sort"
)

// Solver decides, for a queue of active requests, which run on the storage
// node (true) and which bounce to their compute nodes (false), minimising
// the paper's objective Eq. 4.
type Solver interface {
	// Name identifies the solver in logs and benchmarks.
	Name() string
	// Solve returns the accept/bounce assignment for reqs under env. The
	// returned slice has len(reqs) entries.
	Solve(reqs []Request, env Env) []bool
}

// Exhaustive is the paper's reference algorithm: enumerate all 2^k
// assignments (the A-matrix of Eq. 9–11) and pick the minimum. Exponential;
// used as the oracle in tests and for small queues. Queues larger than
// MaxExact fall back to MaxGain, which computes the same optimum.
type Exhaustive struct{}

// MaxExact bounds the queue size Exhaustive will enumerate.
const MaxExact = 20

// Name implements Solver.
func (Exhaustive) Name() string { return "exhaustive" }

// Solve implements Solver.
func (Exhaustive) Solve(reqs []Request, env Env) []bool {
	k := len(reqs)
	if k == 0 {
		return nil
	}
	if k > MaxExact {
		return MaxGain{}.Solve(reqs, env)
	}
	best := make([]bool, k)
	cur := make([]bool, k)
	bestT := env.TimeAllNormal(reqs)
	for mask := uint64(1); mask < 1<<k; mask++ {
		for i := 0; i < k; i++ {
			cur[i] = mask&(1<<i) != 0
		}
		if t := env.TotalTime(reqs, cur); t < bestT {
			bestT = t
			copy(best, cur)
		}
	}
	return best
}

// MaxGain solves the assignment exactly in O(k log k) by exploiting the
// objective's structure. Bouncing set B changes the cost relative to
// all-active by −Σ_{i∈B}(x_i−y_i) + max_{i∈B} d_i/C_i, so the optimum
// maximises Σ gains − z. Fix which request contributes z (the bounced
// request with the largest client-side cost): the best B then adds every
// request with positive gain and no larger client cost. Trying each
// request as that maximum covers all optima. This replaces the paper's
// "general constraint programming solver" with a closed-form method that
// scales to arbitrary queue depths.
type MaxGain struct{}

// Name implements Solver.
func (MaxGain) Name() string { return "maxgain" }

// Solve implements Solver.
func (MaxGain) Solve(reqs []Request, env Env) []bool {
	k := len(reqs)
	accept := make([]bool, k)
	for i := range accept {
		accept[i] = true
	}
	if k == 0 {
		return accept
	}
	// Order by client-side cost ascending; prefix sums of positive gains
	// let each candidate maximum be evaluated in O(1).
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return env.ClientCost(reqs[idx[a]]) < env.ClientCost(reqs[idx[b]])
	})
	posGain := make([]float64, k+1) // posGain[j]: Σ positive gains among idx[:j]
	for j, id := range idx {
		g := env.Gain(reqs[id])
		posGain[j+1] = posGain[j]
		if g > 0 {
			posGain[j+1] += g
		}
	}
	bestBenefit := 0.0 // B = ∅ baseline: all active
	bestM := -1
	for j, id := range idx {
		r := reqs[id]
		g := env.Gain(r)
		// Candidate: r has the (weakly) largest client cost in B. B then
		// contains r plus every positive-gain request among idx[:j+1]
		// (all have client cost ≤ r's by the sort order).
		benefit := posGain[j+1] - env.ClientCost(r)
		if g <= 0 {
			// r's own non-positive gain is not in posGain, but r is
			// forced into B as the maximum; price it in.
			benefit += g
		}
		if benefit > bestBenefit {
			bestBenefit = benefit
			bestM = j
		}
	}
	if bestM < 0 {
		return accept // keeping everything active is optimal
	}
	for j := 0; j <= bestM; j++ {
		id := idx[j]
		if env.Gain(reqs[id]) > 0 {
			accept[id] = false
		}
	}
	// The chosen maximum bounces even when its own gain is non-positive
	// (it was priced into the benefit above).
	accept[idx[bestM]] = false
	return accept
}

// AllActive is the static AS baseline: every request runs on the storage
// node (classic active storage).
type AllActive struct{}

// Name implements Solver.
func (AllActive) Name() string { return "all-active" }

// Solve implements Solver.
func (AllActive) Solve(reqs []Request, _ Env) []bool {
	accept := make([]bool, len(reqs))
	for i := range accept {
		accept[i] = true
	}
	return accept
}

// AllNormal is the static TS baseline: every request bounces to its
// compute node (traditional storage).
type AllNormal struct{}

// Name implements Solver.
func (AllNormal) Name() string { return "all-normal" }

// Solve implements Solver.
func (AllNormal) Solve(reqs []Request, _ Env) []bool {
	return make([]bool, len(reqs))
}
