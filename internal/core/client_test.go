package core

import (
	"strings"
	"testing"
	"time"

	"dosas/internal/kernels"
	"dosas/internal/pfs"
)

func TestLocalRangesContiguityAndCoverage(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 3, mode: ModeAlwaysAccept, scheme: SchemeAS})
	// 10 stripes of 64 KiB over 3 servers.
	f, _ := writeFile(t, c.fs, "lr/x", 10*64<<10, 3)

	cases := []struct {
		off, length uint64
	}{
		{0, f.Size()},    // whole file
		{0, 64 << 10},    // exactly one stripe
		{1000, 64 << 10}, // crosses one stripe boundary
		{3 * 64 << 10, 128 << 10},
		{5000, 5*64<<10 + 1234}, // messy interior range
	}
	for _, tc := range cases {
		ranges := localRanges(f, tc.off, tc.length)
		var total uint64
		seen := map[uint32]bool{}
		for _, lr := range ranges {
			if seen[lr.server] {
				t.Errorf("range [%d,%d): server %d appears twice", tc.off, tc.off+tc.length, lr.server)
			}
			seen[lr.server] = true
			total += lr.length
			// Every byte the range claims must be covered by segments of
			// the same request on that server: the local range must equal
			// [min, max) over that server's segments.
			var lo, hi uint64
			first := true
			for _, seg := range pfs.Segments(f.Layout(), tc.off, tc.length) {
				if seg.Server != lr.server {
					continue
				}
				if first || seg.LocalOffset < lo {
					lo = seg.LocalOffset
				}
				if end := seg.LocalOffset + seg.Length; first || end > hi {
					hi = end
				}
				first = false
			}
			if lr.offset != lo || lr.offset+lr.length != hi {
				t.Errorf("range [%d,%d) server %d: local [%d,%d), want [%d,%d)",
					tc.off, tc.off+tc.length, lr.server, lr.offset, lr.offset+lr.length, lo, hi)
			}
		}
		if total != tc.length {
			t.Errorf("range [%d,%d): local ranges cover %d bytes", tc.off, tc.off+tc.length, total)
		}
	}
}

func TestActiveReadSurvivesOneKilledServerAsError(t *testing.T) {
	// Killing the storage node mid-request must surface as an error, not
	// a hang or a wrong answer.
	c := startActiveCluster(t, clusterOpts{
		nData: 1, mode: ModeAlwaysAccept, scheme: SchemeAS,
		rate: 1e6, pace: true,
	})
	f, _ := writeFile(t, c.fs, "kill/x", 512<<10, 1)
	done := make(chan error, 1)
	go func() {
		_, err := c.asc.ActiveRead(f, 0, f.Size(), "sum8", nil)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	c.servers[0].Close() // the only data server
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("active read succeeded after its server died mid-kernel")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("active read hung after server death")
	}
}

func TestActiveReadFailsOverToReplica(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 3, mode: ModeAlwaysAccept, scheme: SchemeAS})
	f, err := c.fs.CreateReplicated("rep/active", 64<<10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 9*64<<10)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, b := range data {
		want += uint64(b)
	}

	// Healthy cluster first.
	res, err := c.asc.ActiveRead(f, 0, f.Size(), "sum8", nil)
	if err != nil {
		t.Fatal(err)
	}
	if kernels.Sum8Result(res.Output) != want {
		t.Fatal("healthy replicated sum wrong")
	}

	// Kill one storage node; every part it owned must fail over and the
	// result stay exact.
	c.servers[1].Close()
	res, err = c.asc.ActiveRead(f, 0, f.Size(), "sum8", nil)
	if err != nil {
		t.Fatalf("active read after node death: %v", err)
	}
	if kernels.Sum8Result(res.Output) != want {
		t.Fatal("degraded replicated sum wrong")
	}
	if c.asc.Metrics().Counter("asc.replica_failover").Value() == 0 {
		t.Error("failover not counted")
	}
}

func TestTransformOnReplicatedFileRejected(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 2, mode: ModeAlwaysAccept, scheme: SchemeAS})
	f, err := c.fs.CreateReplicated("rep/xform", 64<<10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 1024), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.asc.Transform(f, "rep/xform-out", "gaussian2d", kernels.GaussianParams(32, true)); err == nil {
		t.Fatal("transform of replicated file accepted")
	}
}

func TestClientSchemeAccessors(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 1, mode: ModeDynamic, scheme: SchemeDOSAS})
	if c.asc.Scheme() != SchemeDOSAS {
		t.Error("scheme accessor wrong")
	}
	if c.asc.Metrics() == nil {
		t.Error("metrics accessor nil")
	}
	if c.asc.Pending() != 0 {
		t.Error("pending should be zero at rest")
	}
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil || !strings.Contains(err.Error(), "pfs.Client") {
		t.Fatalf("err = %v", err)
	}
}

// localRanges edge cases: width-1 coalescing, mid-stripe starts, and
// single-byte tails must each produce exactly one contiguous local range
// per touched server, with correct local offsets.
func TestLocalRangesEdgeCases(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 3, mode: ModeAlwaysAccept, scheme: SchemeAS})

	// Width 1: everything coalesces to a single range whose local offset
	// equals the file offset.
	f1, _ := writeFile(t, c.fs, "lre/w1", 5*64<<10+1, 1)
	for _, tc := range []struct{ off, length uint64 }{
		{0, f1.Size()}, {17, 3 * 64 << 10}, {5 * 64 << 10, 1},
	} {
		ranges := localRanges(f1, tc.off, tc.length)
		if len(ranges) != 1 {
			t.Fatalf("width 1 [%d,%d): %d ranges", tc.off, tc.off+tc.length, len(ranges))
		}
		if lr := ranges[0]; lr.offset != tc.off || lr.length != tc.length {
			t.Fatalf("width 1 [%d,%d): local [%d,%d)", tc.off, tc.off+tc.length, lr.offset, lr.offset+lr.length)
		}
	}

	// Single-byte tail on a striped file: one 1-byte range on the slot
	// that owns the tail stripe.
	f3, _ := writeFile(t, c.fs, "lre/w3", 3*64<<10+1, 3)
	tail := localRanges(f3, 3*64<<10, 1)
	if len(tail) != 1 || tail[0].length != 1 || tail[0].slot != 0 || tail[0].offset != 64<<10 {
		t.Fatalf("tail ranges = %+v", tail)
	}

	// Mid-stripe start crossing servers: each server gets one range and
	// the first keeps its intra-stripe offset.
	mid := localRanges(f3, 1000, 64<<10)
	if len(mid) != 2 {
		t.Fatalf("mid-stripe ranges = %+v", mid)
	}
	if mid[0].slot != 0 || mid[0].offset != 1000 || mid[0].length != 64<<10-1000 {
		t.Fatalf("mid-stripe first range = %+v", mid[0])
	}
	if mid[1].slot != 1 || mid[1].offset != 0 || mid[1].length != 1000 {
		t.Fatalf("mid-stripe second range = %+v", mid[1])
	}

	// Replicated layout: localRanges describes the primary copy, so the
	// ranges are identical to the unreplicated case.
	fr, err := c.fs.CreateReplicated("lre/rep", 64<<10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*64<<10+1)
	if _, err := fr.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	repRanges := localRanges(fr, 1000, 64<<10)
	if len(repRanges) != len(mid) {
		t.Fatalf("replicated ranges = %+v", repRanges)
	}
	// Server identities differ (the metadata server rotates placement per
	// file); the slot-relative geometry must not.
	for i := range mid {
		got, want := repRanges[i], mid[i]
		if got.slot != want.slot || got.offset != want.offset || got.length != want.length {
			t.Fatalf("replicated range %d = %+v, want geometry of %+v", i, got, want)
		}
	}
}
