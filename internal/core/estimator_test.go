package core

import (
	"testing"

	"dosas/internal/ioqueue"
	"dosas/internal/metrics"
)

func testEstimator(cfg EstimatorConfig) (*Estimator, *ioqueue.Queue, *metrics.Registry) {
	q := ioqueue.New()
	reg := metrics.NewRegistry()
	e, err := NewEstimator(cfg, q, reg)
	if err != nil {
		panic(err)
	}
	return e, q, reg
}

func TestEstimatorDefaults(t *testing.T) {
	e, _, _ := testEstimator(EstimatorConfig{BW: 118e6})
	cfg := e.Config()
	if cfg.TotalCores != 2 || cfg.IOReservedCores != 1 || cfg.ComputeCores != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Period <= 0 || cfg.LoadAlpha != 1 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestEstimatorEnvUsesCalibratedRate(t *testing.T) {
	e, _, _ := testEstimator(EstimatorConfig{
		BW:      118e6,
		RateFor: func(string) float64 { return 80e6 },
	})
	env := e.Env("gaussian2d")
	// 2 cores, 1 reserved for I/O → S = 1 × 80 MB/s; compute node = 80 MB/s.
	if env.StorageRate != 80e6 {
		t.Errorf("S = %v", env.StorageRate)
	}
	if env.ComputeRate != 80e6 {
		t.Errorf("C = %v", env.ComputeRate)
	}
	if env.BW != 118e6 {
		t.Errorf("BW = %v", env.BW)
	}
}

func TestEstimatorDiscountsForNormalIOPressure(t *testing.T) {
	e, _, reg := testEstimator(EstimatorConfig{
		BW:      118e6,
		RateFor: func(string) float64 { return 80e6 },
	})
	base := e.Env("gaussian2d").StorageRate
	reg.Gauge("data.inflight").Set(4) // heavy normal I/O on a 2-core node
	loaded := e.Env("gaussian2d").StorageRate
	if loaded >= base {
		t.Fatalf("S under load (%v) must drop below idle S (%v)", loaded, base)
	}
	// load = 4/2 = 2, alpha = 1 → S = 80/(1+2).
	if want := base / 3; loaded != want {
		t.Errorf("S = %v, want %v", loaded, want)
	}
	reg.Gauge("data.inflight").Set(0)
	if got := e.Env("gaussian2d").StorageRate; got != base {
		t.Errorf("S after pressure clears = %v, want %v", got, base)
	}
}

func TestEstimatorMoreCoresMoreThroughput(t *testing.T) {
	rate := func(string) float64 { return 100e6 }
	small, _, _ := testEstimator(EstimatorConfig{BW: 1, TotalCores: 2, RateFor: rate})
	big, _, _ := testEstimator(EstimatorConfig{BW: 1, TotalCores: 8, RateFor: rate})
	if big.Env("x").StorageRate <= small.Env("x").StorageRate {
		t.Fatalf("8-core S (%v) should exceed 2-core S (%v)",
			big.Env("x").StorageRate, small.Env("x").StorageRate)
	}
}

func TestEstimatorProbeReflectsState(t *testing.T) {
	e, q, _ := testEstimator(EstimatorConfig{BW: 118e6})
	q.Push(ioqueue.Item{ID: 1, Class: ioqueue.Active, Bytes: 100})
	q.Push(ioqueue.Item{ID: 2, Class: ioqueue.Normal, Bytes: 50})
	e.KernelStarted()
	e.MemReserve(4096)
	p := e.Probe()
	if p.ActiveQueueLen != 1 || p.QueueLen != 1 {
		t.Errorf("queue lens = %d, %d", p.ActiveQueueLen, p.QueueLen)
	}
	if p.BusyCores != 1 || p.TotalCores != 2 {
		t.Errorf("cores = %v / %d", p.BusyCores, p.TotalCores)
	}
	if p.MemUsed != 4096 || p.BytesQueued != 150 {
		t.Errorf("mem = %d, queued = %d", p.MemUsed, p.BytesQueued)
	}
	e.KernelFinished()
	e.MemRelease(4096)
	p = e.Probe()
	if p.BusyCores != 0 || p.MemUsed != 0 {
		t.Errorf("after release: %+v", p)
	}
	// Releases and finishes never go negative.
	e.KernelFinished()
	e.MemRelease(10)
	p = e.Probe()
	if p.BusyCores != 0 || p.MemUsed != 0 {
		t.Errorf("floor violated: %+v", p)
	}
}

func TestEstimatorUnknownOpInvalidEnv(t *testing.T) {
	e, _, _ := testEstimator(EstimatorConfig{BW: 118e6, RateFor: func(string) float64 { return 0 }})
	if e.Env("mystery").Valid() {
		t.Fatal("uncalibrated op should produce an invalid env")
	}
}
