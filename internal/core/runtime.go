package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dosas/internal/audit"
	"dosas/internal/eventlog"
	"dosas/internal/ioqueue"
	"dosas/internal/kernels"
	"dosas/internal/metrics"
	"dosas/internal/pfs"
	"dosas/internal/telemetry"
	"dosas/internal/tenant"
	"dosas/internal/trace"
	"dosas/internal/wire"
)

// Mode selects the server-side scheduling behaviour of a storage node.
type Mode int

// Runtime modes.
const (
	// ModeDynamic is DOSAS: every arrival and every estimator period the
	// solver decides which requests run here and which bounce.
	ModeDynamic Mode = iota
	// ModeAlwaysAccept is the AS baseline: kernels always run on the
	// storage node.
	ModeAlwaysAccept
	// ModeAlwaysBounce rejects every active request (a TS-only server).
	ModeAlwaysBounce
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeDynamic:
		return "dosas"
	case ModeAlwaysAccept:
		return "as"
	case ModeAlwaysBounce:
		return "ts"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// RuntimeConfig configures the Active I/O Runtime on one storage node.
type RuntimeConfig struct {
	// Store is the node's local stripe store (shared with its pfs data
	// server); required.
	Store pfs.Store
	// Estimator parameterises the node's Contention Estimator.
	Estimator EstimatorConfig
	// Mode selects dynamic scheduling or a static baseline.
	Mode Mode
	// Solver picks the scheduling algorithm for ModeDynamic; defaults to
	// MaxGain.
	Solver Solver
	// ActiveCores is the kernel worker-pool size; defaults to
	// TotalCores − IOReservedCores.
	ActiveCores int
	// ChunkSize is the granularity at which kernels consume stripe data
	// and at which interruption is detected. Defaults to 1 MiB.
	ChunkSize int
	// Pace throttles kernel execution to the calibrated per-core rate
	// (kernels.RateFor × ActiveCores sharing), so a fast development host
	// reproduces the Discfarm cluster's timing in live experiments.
	Pace bool
	// InterruptMargin is the minimum relative improvement (e.g. 1.15 =
	// 15 %) the policy must predict before a *running* kernel is
	// interrupted and migrated; prevents thrash near the break-even
	// point. Defaults to 1.15.
	InterruptMargin float64
	// MemHighWater is the fraction of the estimator's memory budget
	// above which dynamic scheduling bounces new active requests
	// (memory is one of the paper's three CE inputs). Defaults to 0.9.
	MemHighWater float64
	// Metrics receives runtime counters; shared with the pfs data server
	// so the estimator sees normal-I/O pressure. Optional.
	Metrics *metrics.Registry
	// Trace receives request lifecycle events; a default 1024-event ring
	// is created when nil.
	Trace *trace.Recorder
	// Audit receives one decision record per solver invocation (the
	// input to counterfactual replay); a default 4096-record ring is
	// created when nil. Usually shared with the pfs data server, which
	// serves it over the wire.
	Audit *audit.Log
	// Node is this storage node's identity, stamped on trace events
	// (e.g. "data-0"). Optional.
	Node string
	// Telemetry, when set, is the node's time-series sampler. The runtime
	// registers its load probes on it, starts it, and owns it from then
	// on: Close stops it. Usually shared with the pfs data server, which
	// serves its history over the wire. Optional — nil disables sampling.
	Telemetry *telemetry.Sampler
	// QueueSat is the queue depth at or above which the node's health
	// report marks the "queue" check degraded. Defaults to 8.
	QueueSat int
	// Events, when set, receives the runtime's structured lifecycle
	// events (start, shutdown). Usually shared with the pfs data server,
	// which serves the ring over the wire. Optional.
	Events *eventlog.Log
	// Tenants, when set, is the node's per-tenant usage table. The
	// runtime attributes kernel CPU time, bounces, interrupts, and queue
	// wait to the requesting tenant, and registers the tenant.wait.share
	// probe on the sampler. Usually shared with the pfs data server,
	// which serves it via TenantStatsReq. Optional — nil disables
	// attribution.
	Tenants *tenant.Table
	// TenantWeights are the active queue's weighted-fair scheduling
	// weights: a weight-2 tenant's active requests earn credit twice as
	// fast as a weight-1 tenant's. Absent tenants weigh 1; nil means
	// equal weights.
	TenantWeights map[string]float64
	// QueueQuantum overrides the active queue's per-round WDRR credit in
	// bytes (0 = ioqueue.DefaultQuantum).
	QueueQuantum int
}

// Runtime is the Active I/O Runtime (R): it queues active requests,
// executes kernels over local stripe data with a bounded worker pool, and
// — under the Contention Estimator's policy — bounces or interrupts work
// back to compute nodes.
type Runtime struct {
	cfg   RuntimeConfig
	est   *Estimator
	queue *ioqueue.Queue
	reg   *metrics.Registry

	mu      sync.Mutex
	running map[uint64]*task // internal id → running task
	queued  map[uint64]*task

	nextID    atomic.Uint64
	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// task is one accepted active request moving through the runtime:
// either an active read (req set) or an active transform (xform set).
type task struct {
	id        uint64
	req       *wire.ActiveReadReq
	xform     *wire.TransformReq
	resp      chan taskResult // buffered, capacity 1
	interrupt atomic.Bool
	processed atomic.Uint64 // bytes consumed so far
	op        string
	tenant    string
	traceID   uint64
	arrived   time.Time     // when the task entered the queue
	predicted time.Duration // estimator's forecast kernel time
	auditSeq  uint64        // decision record awaiting this task's outcome (0 = none)
}

// length returns the task's input size in bytes.
func (t *task) length() uint64 {
	if t.xform != nil {
		return t.xform.Length
	}
	return t.req.Length
}

// clientReqID returns the task's client-visible request id.
func (t *task) clientReqID() uint64 {
	if t.xform != nil {
		return t.xform.RequestID
	}
	return t.req.RequestID
}

type taskResult struct {
	resp wire.Message
	err  error
}

// NewRuntime builds and starts a runtime. Call Close to stop its workers.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("core: runtime needs a store")
	}
	if cfg.Solver == nil {
		cfg.Solver = MaxGain{}
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 1 << 20
	}
	if cfg.InterruptMargin <= 1 {
		cfg.InterruptMargin = 1.15
	}
	if cfg.MemHighWater <= 0 || cfg.MemHighWater > 1 {
		cfg.MemHighWater = 0.9
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.QueueSat <= 0 {
		cfg.QueueSat = 8
	}
	if cfg.Trace == nil {
		cfg.Trace = trace.NewRecorder(1024)
	}
	if cfg.Node != "" && cfg.Trace.Node() == "" {
		cfg.Trace.SetNode(cfg.Node)
	}
	if cfg.Audit == nil {
		cfg.Audit = audit.NewLog(4096)
	}
	if cfg.Node != "" && cfg.Audit.Node() == "" {
		cfg.Audit.SetNode(cfg.Node)
	}
	if cfg.Estimator.BW == 0 {
		// A zero-value RuntimeConfig must keep working: zero means "the
		// Discfarm default" here, while NewEstimator rejects it outright.
		cfg.Estimator.BW = 118e6
	}
	q := ioqueue.New()
	q.SetTenants(cfg.Tenants)
	q.SetWeights(cfg.TenantWeights)
	if cfg.QueueQuantum > 0 {
		q.SetQuantum(cfg.QueueQuantum)
	}
	est, err := NewEstimator(cfg.Estimator, q, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	if cfg.ActiveCores <= 0 {
		c := est.Config()
		cfg.ActiveCores = c.TotalCores - c.IOReservedCores
		if cfg.ActiveCores < 1 {
			cfg.ActiveCores = 1
		}
	}
	rt := &Runtime{
		cfg:     cfg,
		est:     est,
		queue:   q,
		reg:     cfg.Metrics,
		running: make(map[uint64]*task),
		queued:  make(map[uint64]*task),
		stop:    make(chan struct{}),
	}
	for i := 0; i < cfg.ActiveCores; i++ {
		rt.wg.Add(1)
		go rt.worker()
	}
	if cfg.Mode == ModeDynamic {
		rt.wg.Add(1)
		go rt.policyLoop()
	}
	rt.registerProbes()
	cfg.Telemetry.Start()
	cfg.Events.Info("runtime", "active runtime started",
		"mode", cfg.Mode.String(),
		"cores", fmt.Sprint(cfg.ActiveCores),
		"solver", cfg.Solver.Name())
	return rt, nil
}

// registerProbes wires the runtime's load signals into its telemetry
// sampler: the continuous histories behind SeriesFetchReq and the
// readiness margins behind HealthReq. No-op when no sampler is attached.
func (rt *Runtime) registerProbes() {
	s := rt.cfg.Telemetry
	if s == nil {
		return
	}
	s.Register("queue.depth", func() float64 {
		st := rt.queue.Stats()
		return float64(st.NormalLen + st.ActiveLen)
	})
	s.Register("inflight", func() float64 {
		return float64(rt.reg.Gauge("data.inflight").Value())
	})
	bytesMoved := func() float64 {
		return float64(rt.reg.Counter("data.bytes_read").Value() +
			rt.reg.Counter("data.bytes_written").Value() +
			rt.reg.Counter("active.bytes_processed").Value())
	}
	s.Register("throughput.bps", telemetry.RateProbe(bytesMoved, s.Interval()))
	bounced := func() float64 {
		return float64(rt.reg.Counter("active.rejected").Value() +
			rt.reg.Counter("active.rejected_memory").Value() +
			rt.reg.Counter("active.bounced_queued").Value())
	}
	arrivals := func() float64 { return float64(rt.reg.Counter("active.arrivals").Value()) }
	s.Register("bounce.rate", telemetry.RatioProbe(bounced, arrivals))
	s.Register("interrupt.rate", telemetry.RatioProbe(func() float64 {
		return float64(rt.reg.Counter("active.interrupted").Value())
	}, arrivals))
	// Per-tick deltas feed the SLO engine's burn-rate windows: unlike the
	// cumulative ratios above, a window sum over deltas goes back to zero
	// once a storm passes, so alerts can resolve.
	s.Register("bounce.delta", telemetry.DeltaProbe(bounced))
	s.Register("arrivals.delta", telemetry.DeltaProbe(arrivals))
	s.Register("interrupt.delta", telemetry.DeltaProbe(func() float64 {
		return float64(rt.reg.Counter("active.interrupted").Value())
	}))
	s.Register("est.error.pct", func() float64 {
		return rt.reg.Histogram("est.kernel_error_pct").Snapshot().Mean()
	})
	s.Register("mem.pressure", func() float64 { return rt.est.MemPressure() })
	if tab := rt.cfg.Tenants; tab != nil {
		// The dominant tenant's share of this tick's queue-wait delta:
		// 0 unless at least two tenants contended. One fixed series —
		// per-tenant granularity lives in the tenant table itself
		// (TenantStatsReq, /metrics), not in the ring, so a cardinality
		// bomb cannot grow the sampler.
		s.Register("tenant.wait.share", func() float64 {
			share, _ := tab.WaitShare()
			return share
		})
	}
}

// QoSStats exposes the active queue's occupancy and weighted-fair
// counters. The pfs data server (which sees this runtime only as an
// ActiveHandler) folds them into the node's qos.* telemetry.
func (rt *Runtime) QoSStats() ioqueue.Stats { return rt.queue.Stats() }

// Close stops workers; queued requests are bounced. Safe to call more
// than once.
func (rt *Runtime) Close() {
	rt.closeOnce.Do(func() {
		rt.cfg.Events.Info("runtime", "active runtime stopping",
			"mode", rt.cfg.Mode.String())
		close(rt.stop)
		rt.queue.Close()
		rt.cfg.Telemetry.Close()
	})
	rt.wg.Wait()
	// Anything still queued bounces so clients are not stranded.
	for _, it := range rt.queue.DrainActive() {
		t := it.Payload.(*task)
		rt.cfg.Audit.Resolve(t.auditSeq, audit.Outcome{Disposition: audit.DispShutdown})
		if t.xform != nil {
			rt.respond(t, nil, fmt.Errorf("%w: runtime shutting down", pfs.ErrUnsupported))
			continue
		}
		rt.respond(t, &wire.ActiveReadResp{
			RequestID:   t.req.RequestID,
			Disposition: wire.ActiveRejected,
			TraceID:     t.traceID,
		}, nil)
	}
}

// Estimator exposes the node's Contention Estimator.
func (rt *Runtime) Estimator() *Estimator { return rt.est }

// Trace exposes the node's lifecycle-event recorder.
func (rt *Runtime) Trace() *trace.Recorder { return rt.cfg.Trace }

// Audit exposes the node's decision audit log.
func (rt *Runtime) Audit() *audit.Log { return rt.cfg.Audit }

// Mode returns the runtime's scheduling mode.
func (rt *Runtime) Mode() Mode { return rt.cfg.Mode }

// ModeName names the scheduling mode ("dosas", "as", "ts"). The pfs data
// server discovers it through an anonymous interface assertion, so the
// name — not the core.Mode type — is what crosses the package boundary.
func (rt *Runtime) ModeName() string { return rt.cfg.Mode.String() }

// Metrics exposes the runtime's metrics registry (shared with the pfs
// data server when configured that way).
func (rt *Runtime) Metrics() *metrics.Registry { return rt.reg }

// Telemetry exposes the node's time-series sampler (nil when disabled).
func (rt *Runtime) Telemetry() *telemetry.Sampler { return rt.cfg.Telemetry }

// healthWindow is how far back the queue readiness check looks in the
// sampler history: a saturation spike between two health probes still
// degrades the next report instead of vanishing between ticks.
const healthWindow = 2 * time.Second

// HealthChecks reports the runtime's per-resource readiness. The pfs data
// server discovers it through an anonymous interface assertion (the
// ModeName pattern), so []telemetry.Check — not core types — crosses the
// package boundary.
func (rt *Runtime) HealthChecks() []telemetry.Check {
	checks := []telemetry.Check{
		{Name: "estimator", OK: true, Detail: fmt.Sprintf("mode %s", rt.cfg.Mode)},
	}
	st := rt.queue.Stats()
	depth := float64(st.NormalLen + st.ActiveLen)
	// Prefer the recent-window maximum so a burst the queue has already
	// drained is still visible to an operator probing after the fact.
	if m, ok := rt.cfg.Telemetry.WindowMax("queue.depth", healthWindow); ok && m > depth {
		depth = m
	}
	qc := telemetry.Check{
		Name: "queue", OK: depth < float64(rt.cfg.QueueSat),
		Detail: fmt.Sprintf("depth %.0f (saturation %d)", depth, rt.cfg.QueueSat),
	}
	checks = append(checks, qc)
	p := rt.est.MemPressure()
	checks = append(checks, telemetry.Check{
		Name: "memory", OK: p < rt.cfg.MemHighWater,
		Detail: fmt.Sprintf("pressure %.0f%% (high water %.0f%%)", p*100, rt.cfg.MemHighWater*100),
	})
	return checks
}

// HandleActive implements pfs.ActiveHandler: the arrival path of an active
// I/O request.
func (rt *Runtime) HandleActive(req *wire.ActiveReadReq) (*wire.ActiveReadResp, error) {
	rt.reg.Counter("active.arrivals").Inc()
	rt.cfg.Tenants.Account(req.Tenant, func(s *tenant.Stats) { s.ActiveOps++ })
	rt.cfg.Trace.RecordEvent(trace.Event{
		Kind: trace.KindArrive, TraceID: req.TraceID,
		ReqID: req.RequestID, Op: req.Op, Bytes: req.Length, Tenant: req.Tenant,
	})
	if _, err := kernels.New(req.Op); err != nil {
		return nil, fmt.Errorf("%w: %v", pfs.ErrInvalid, err)
	}
	reject := func(counter, note string, decided time.Duration) *wire.ActiveReadResp {
		rt.reg.Counter(counter).Inc()
		rt.cfg.Tenants.Account(req.Tenant, func(s *tenant.Stats) { s.Bounces++ })
		rt.cfg.Trace.RecordEvent(trace.Event{
			Kind: trace.KindReject, TraceID: req.TraceID,
			ReqID: req.RequestID, Op: req.Op, Bytes: req.Length, Tenant: req.Tenant,
			Phase: trace.PhaseDecision, Dur: decided, Note: note,
		})
		return &wire.ActiveReadResp{
			RequestID: req.RequestID, Disposition: wire.ActiveRejected, TraceID: req.TraceID,
		}
	}
	decisionStart := time.Now()
	var admitNote string
	var auditSeq uint64
	switch rt.cfg.Mode {
	case ModeAlwaysBounce:
		return reject("active.rejected", "static ts policy", time.Since(decisionStart)), nil
	case ModeAlwaysAccept:
		admitNote = "static as policy"
	case ModeDynamic:
		if p := rt.est.MemPressure(); p >= rt.cfg.MemHighWater {
			return reject("active.rejected_memory",
				fmt.Sprintf("memory pressure %.0f%%", p*100), time.Since(decisionStart)), nil
		}
		ok, note, seq := rt.admit(req)
		admitNote = note
		auditSeq = seq
		if !ok {
			rt.cfg.Audit.Resolve(seq, audit.Outcome{Disposition: audit.DispBounced})
			return reject("active.rejected", note, time.Since(decisionStart)), nil
		}
	}
	rt.cfg.Trace.RecordEvent(trace.Event{
		Kind: trace.KindAdmit, TraceID: req.TraceID,
		ReqID: req.RequestID, Op: req.Op, Bytes: req.Length, Tenant: req.Tenant,
		Phase: trace.PhaseDecision, Dur: time.Since(decisionStart),
		Predicted: rt.predictKernel(req.Op, req.Length), Note: admitNote,
	})
	t := &task{
		id:        rt.nextID.Add(1),
		req:       req,
		resp:      make(chan taskResult, 1),
		op:        req.Op,
		tenant:    req.Tenant,
		traceID:   req.TraceID,
		arrived:   time.Now(),
		predicted: rt.predictKernel(req.Op, req.Length),
		auditSeq:  auditSeq,
	}
	rt.mu.Lock()
	rt.queued[t.id] = t
	rt.mu.Unlock()
	err := rt.queue.Push(ioqueue.Item{
		ID:      t.id,
		Class:   ioqueue.Active,
		Op:      req.Op,
		Bytes:   req.Length,
		Tenant:  req.Tenant,
		Payload: t,
	})
	if err != nil {
		rt.mu.Lock()
		delete(rt.queued, t.id)
		rt.mu.Unlock()
		rt.cfg.Audit.Resolve(auditSeq, audit.Outcome{Disposition: audit.DispShutdown})
		return &wire.ActiveReadResp{
			RequestID: req.RequestID, Disposition: wire.ActiveRejected, TraceID: req.TraceID,
		}, nil
	}
	res := <-t.resp
	if res.err != nil {
		return nil, res.err
	}
	ar, ok := res.resp.(*wire.ActiveReadResp)
	if !ok {
		return nil, fmt.Errorf("core: internal: %T answered an active read", res.resp)
	}
	return ar, nil
}

// HandleTransform implements pfs.ActiveHandler: active write-back. The
// transform queues behind other active work (it occupies a kernel core)
// but is never bounced — its entire purpose is that neither its input nor
// its output crosses the network.
func (rt *Runtime) HandleTransform(req *wire.TransformReq) (*wire.TransformResp, error) {
	rt.reg.Counter("transform.arrivals").Inc()
	rt.cfg.Tenants.Account(req.Tenant, func(s *tenant.Stats) { s.TransformOps++ })
	if _, err := kernels.New(req.Op); err != nil {
		return nil, fmt.Errorf("%w: %v", pfs.ErrInvalid, err)
	}
	t := &task{
		id:      rt.nextID.Add(1),
		xform:   req,
		resp:    make(chan taskResult, 1),
		op:      req.Op,
		tenant:  req.Tenant,
		traceID: req.TraceID,
		arrived: time.Now(),
	}
	rt.mu.Lock()
	rt.queued[t.id] = t
	rt.mu.Unlock()
	err := rt.queue.Push(ioqueue.Item{
		ID:      t.id,
		Class:   ioqueue.Active,
		Op:      req.Op,
		Bytes:   req.Length,
		Tenant:  req.Tenant,
		Payload: t,
	})
	if err != nil {
		rt.mu.Lock()
		delete(rt.queued, t.id)
		rt.mu.Unlock()
		return nil, fmt.Errorf("%w: runtime shutting down", pfs.ErrUnsupported)
	}
	res := <-t.resp
	if res.err != nil {
		return nil, res.err
	}
	tr, ok := res.resp.(*wire.TransformResp)
	if !ok {
		return nil, fmt.Errorf("core: internal: %T answered a transform", res.resp)
	}
	return tr, nil
}

// executeTransform streams the local source range through the kernel and
// writes the output back to the local destination stream.
func (rt *Runtime) executeTransform(t *task) (wire.Message, error) {
	req := t.xform
	rt.est.KernelStarted()
	defer rt.est.KernelFinished()
	rt.est.MemReserve(req.Length) // output is buffered until Result
	defer rt.est.MemRelease(req.Length)

	k, err := kernels.New(req.Op)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", pfs.ErrInvalid, err)
	}
	if err := k.Configure(req.Params); err != nil {
		return nil, fmt.Errorf("%w: %v", pfs.ErrInvalid, err)
	}
	buf := wire.GetBuf(rt.cfg.ChunkSize) // pooled; kernels must not retain chunk slices
	defer wire.PutBuf(buf)
	var done uint64
	for done < req.Length {
		chunkStart := time.Now()
		if t.interrupt.Load() {
			return nil, fmt.Errorf("%w: transform cancelled", pfs.ErrInvalid)
		}
		n := uint64(len(buf))
		if req.Length-done < n {
			n = req.Length - done
		}
		read, rerr := rt.cfg.Store.ReadAt(req.SrcHandle, buf[:n], req.Offset+done)
		if rerr != nil {
			return nil, rerr
		}
		if read == 0 {
			return nil, fmt.Errorf("%w: transform beyond local data (handle %d offset %d)",
				pfs.ErrInvalid, req.SrcHandle, req.Offset+done)
		}
		if err := k.Process(buf[:read]); err != nil {
			return nil, err
		}
		done += uint64(read)
		t.processed.Store(done)
		if rt.cfg.Pace {
			rt.paceChunk(req.Op, read, chunkStart)
		}
	}
	out, err := k.Result()
	if err != nil {
		return nil, err
	}
	if _, err := rt.cfg.Store.WriteAt(req.DstHandle, out, req.DstOffset); err != nil {
		return nil, err
	}
	rt.reg.Counter("transform.completed").Inc()
	rt.reg.Counter("transform.bytes_written").Add(int64(len(out)))
	rt.cfg.Trace.RecordEvent(trace.Event{
		Kind: trace.KindTransform, TraceID: t.traceID,
		ReqID: req.RequestID, Op: req.Op, Bytes: req.Length,
		Phase: trace.PhaseKernel, Dur: time.Since(t.arrived),
		Note: fmt.Sprintf("wrote %d bytes locally", len(out)),
	})
	return &wire.TransformResp{RequestID: req.RequestID, Written: uint64(len(out))}, nil
}

// admit runs the scheduling algorithm over the node's current active set
// plus the newcomer and reports whether the newcomer should run here,
// along with the estimator's reasoning for the trace and the sequence
// number of the decision's audit record (0 when no solver ran).
func (rt *Runtime) admit(req *wire.ActiveReadReq) (bool, string, uint64) {
	newReq, reqs := rt.schedulerView(req)
	if len(reqs) == 0 {
		return true, "empty active set", 0
	}
	env := rt.est.Env(req.Op)
	if !env.Valid() {
		return true, "no calibration", 0 // behave like plain active storage
	}
	assignment := rt.cfg.Solver.Solve(reqs, env)
	seq := rt.recordDecision(audit.TriggerAdmit, env, reqs, assignment, newReq, req)
	for i, r := range reqs {
		if r.ID == newReq {
			// The estimator's reasoning: serve actively here (x) vs
			// ship raw and compute on the client (y), over k requests.
			note := fmt.Sprintf("x=%.3fs y=%.3fs gain=%.3fs k=%d",
				env.XCost(r), env.YCost(r), env.Gain(r), len(reqs))
			return assignment[i], note, seq
		}
	}
	return true, "newcomer not in scheduler view", seq
}

// flipDeltaMax bounds the batch size for which per-request decision
// margins are computed: each margin costs one extra objective evaluation,
// so a pathological queue does not turn recording into O(k²) work.
const flipDeltaMax = 64

// recordDecision appends one solver invocation to the audit log: the env
// snapshot, every request's feature vector with predicted costs and its
// margin to the decision boundary, and the three objective values the
// policy weighed. newcomer/newReq identify the arriving request on admit
// decisions (0/nil on reevaluation sweeps). Returns the record's seq.
func (rt *Runtime) recordDecision(trigger string, env Env, reqs []Request, assignment []bool, newcomer uint64, newReq *wire.ActiveReadReq) uint64 {
	if rt.cfg.Audit == nil {
		return 0
	}
	// Map scheduler ids back to client-visible identities, and capture
	// the queue depths the decision was made against.
	type ident struct {
		reqID, traceID uint64
		tenant         string
	}
	rt.mu.Lock()
	ids := make(map[uint64]ident, len(rt.queued)+len(rt.running))
	for id, t := range rt.queued {
		ids[id] = ident{reqID: t.clientReqID(), traceID: t.traceID, tenant: t.tenant}
	}
	for id, t := range rt.running {
		ids[id] = ident{reqID: t.clientReqID(), traceID: t.traceID, tenant: t.tenant}
	}
	queued, running := len(rt.queued), len(rt.running)
	rt.mu.Unlock()

	chosen := env.TotalTime(reqs, assignment)
	feats := make([]audit.Feature, len(reqs))
	for i, r := range reqs {
		f := audit.Feature{
			SchedID:     r.ID,
			Op:          r.Op,
			Bytes:       r.Bytes,
			ResultBytes: r.ResultBytes,
			StorageRate: r.StorageRate,
			ComputeRate: r.ComputeRate,
			PredActive:  env.XCost(r),
			PredNormal:  env.YCost(r),
			PredClient:  env.ClientCost(r),
			Gain:        env.Gain(r),
			Accept:      assignment[i],
		}
		if len(reqs) <= flipDeltaMax {
			assignment[i] = !assignment[i]
			f.FlipDelta = env.TotalTime(reqs, assignment) - chosen
			assignment[i] = !assignment[i]
		}
		if newcomer != 0 && r.ID == newcomer && newReq != nil {
			f.Newcomer = true
			f.ReqID = newReq.RequestID
			f.TraceID = newReq.TraceID
			f.Tenant = newReq.Tenant
		} else if id, ok := ids[r.ID]; ok {
			f.ReqID = id.reqID
			f.TraceID = id.traceID
			f.Tenant = id.tenant
		}
		feats[i] = f
	}
	return rt.cfg.Audit.Append(audit.Record{
		Solver:        rt.cfg.Solver.Name(),
		Trigger:       trigger,
		Env:           audit.Env{BW: env.BW, StorageRate: env.StorageRate, ComputeRate: env.ComputeRate},
		Queued:        queued,
		Running:       running,
		Reqs:          feats,
		PredChosen:    chosen,
		PredAllActive: env.TimeAllActive(reqs),
		PredAllNormal: env.TimeAllNormal(reqs),
	})
}

// predictKernel is the estimator's forecast of storage-side kernel time
// for one request: bytes over the currently discounted storage rate
// (S_{C,op}). Zero when the node has no calibration for op.
func (rt *Runtime) predictKernel(op string, bytes uint64) time.Duration {
	env := rt.est.Env(op)
	if env.StorageRate <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / env.StorageRate * float64(time.Second))
}

// schedulerView snapshots the runtime's active set as scheduler Requests:
// running tasks by remaining bytes, queued tasks in full, plus (when
// newcomer != nil) the arriving request. It returns the newcomer's
// scheduler ID and the request list.
func (rt *Runtime) schedulerView(newcomer *wire.ActiveReadReq) (uint64, []Request) {
	var reqs []Request
	rt.mu.Lock()
	for _, t := range rt.running {
		remaining := t.length() - t.processed.Load()
		if remaining == 0 || t.interrupt.Load() {
			continue
		}
		reqs = append(reqs, rt.requestFor(t.id, t.op, remaining))
	}
	for _, t := range rt.queued {
		reqs = append(reqs, rt.requestFor(t.id, t.op, t.length()))
	}
	rt.mu.Unlock()
	var newID uint64
	if newcomer != nil {
		newID = rt.nextID.Add(1) + 1<<62 // ephemeral id, distinct from tasks
		reqs = append(reqs, rt.requestFor(newID, newcomer.Op, newcomer.Length))
	}
	return newID, reqs
}

// requestFor builds one scheduler Request with per-op rates.
func (rt *Runtime) requestFor(id uint64, op string, bytes uint64) Request {
	env := rt.est.Env(op)
	k, err := kernels.New(op)
	var result uint64
	if err == nil {
		result = k.ResultSize(bytes)
	}
	return Request{
		ID:          id,
		Bytes:       bytes,
		ResultBytes: result,
		StorageRate: env.StorageRate,
		ComputeRate: env.ComputeRate,
		Op:          op,
	}
}

// policyLoop is the CE's periodic re-evaluation: it recomputes the optimal
// assignment over queued and running work and bounces or interrupts
// whatever no longer belongs on the storage node.
func (rt *Runtime) policyLoop() {
	defer rt.wg.Done()
	period := rt.est.Config().Period
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.reevaluate()
		}
	}
}

// reevaluate applies the current policy to in-flight work. Queued requests
// assigned "bounce" are rejected immediately; running requests are
// interrupted only when the predicted improvement clears InterruptMargin.
func (rt *Runtime) reevaluate() {
	_, reqs := rt.schedulerView(nil)
	if len(reqs) == 0 {
		return
	}
	env := rt.est.Env(reqs0Op(rt))
	if !env.Valid() {
		return
	}
	assignment := rt.cfg.Solver.Solve(reqs, env)
	rt.recordDecision(audit.TriggerReevaluate, env, reqs, assignment, 0, nil)
	allActive := env.TimeAllActive(reqs)
	chosen := env.TotalTime(reqs, assignment)
	for i, r := range reqs {
		if assignment[i] {
			continue
		}
		rt.mu.Lock()
		if t, ok := rt.queued[r.ID]; ok {
			if t.xform != nil {
				// Transforms cannot bounce: their whole point is that
				// neither input nor output crosses the network.
				rt.mu.Unlock()
				continue
			}
			if _, found := rt.queue.Remove(t.id); found {
				delete(rt.queued, t.id)
				rt.mu.Unlock()
				rt.reg.Counter("active.bounced_queued").Inc()
				rt.cfg.Tenants.Account(t.tenant, func(s *tenant.Stats) { s.Bounces++ })
				rt.cfg.Trace.RecordEvent(trace.Event{
					Kind: trace.KindReject, TraceID: t.traceID,
					ReqID: t.req.RequestID, Op: t.op, Bytes: r.Bytes, Tenant: t.tenant,
					Phase: trace.PhaseDecision,
					Note:  fmt.Sprintf("bounced from queue at re-evaluation, gain %.2fx", allActive/chosen),
				})
				rt.cfg.Audit.Resolve(t.auditSeq, audit.Outcome{Disposition: audit.DispBouncedQueued})
				rt.respond(t, &wire.ActiveReadResp{
					RequestID:   t.req.RequestID,
					Disposition: wire.ActiveRejected,
					TraceID:     t.traceID,
				}, nil)
				continue
			}
			rt.mu.Unlock()
			continue
		}
		if t, ok := rt.running[r.ID]; ok {
			// Interrupt running work only when the policy's win is
			// decisive (paper: "record and interrupt current active I/O
			// being serviced"). Transforms are never migrated.
			if t.xform == nil && allActive > chosen*rt.cfg.InterruptMargin {
				if t.interrupt.CompareAndSwap(false, true) {
					rt.reg.Counter("active.interrupted").Inc()
					rt.cfg.Trace.RecordEvent(trace.Event{
						Kind: trace.KindInterrupt, TraceID: t.traceID,
						ReqID: t.req.RequestID, Op: t.op, Bytes: r.Bytes,
						Phase: trace.PhaseDecision,
						Note:  fmt.Sprintf("policy gain %.2fx", allActive/chosen),
					})
				}
			}
		}
		rt.mu.Unlock()
	}
}

// reqs0Op returns the op of any current task, for the base Env (each
// request carries its own rates; the base just supplies BW).
func reqs0Op(rt *Runtime) string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, t := range rt.queued {
		return t.op
	}
	for _, t := range rt.running {
		return t.op
	}
	return "sum8"
}

// worker executes queued active requests, one kernel per core.
func (rt *Runtime) worker() {
	defer rt.wg.Done()
	for {
		item, err := rt.queue.Pop()
		if err != nil {
			return
		}
		t := item.Payload.(*task)
		rt.mu.Lock()
		delete(rt.queued, t.id)
		rt.running[t.id] = t
		rt.mu.Unlock()
		rt.cfg.Tenants.Account(t.tenant, func(s *tenant.Stats) { s.Inflight++ })
		kernelStart := time.Now()
		var resp wire.Message
		var rerr error
		if t.xform != nil {
			resp, rerr = rt.executeTransform(t)
		} else {
			resp, rerr = rt.execute(t)
		}
		kernelElapsed := time.Since(kernelStart)
		rt.cfg.Tenants.Account(t.tenant, func(s *tenant.Stats) {
			s.Inflight--
			s.KernelNanos += uint64(kernelElapsed)
		})
		rt.mu.Lock()
		delete(rt.running, t.id)
		rt.mu.Unlock()
		if rerr != nil {
			rt.cfg.Audit.Resolve(t.auditSeq, audit.Outcome{Disposition: audit.DispError})
		}
		rt.respond(t, resp, rerr)
	}
}

func (rt *Runtime) respond(t *task, resp wire.Message, err error) {
	select {
	case t.resp <- taskResult{resp: resp, err: err}:
	default: // already answered (e.g. cancelled)
	}
}

// execute streams local stripe data through the request's kernel,
// checkpointing out if the interrupt flag is raised between chunks.
func (rt *Runtime) execute(t *task) (*wire.ActiveReadResp, error) {
	req := t.req
	var queueWait time.Duration
	if !t.arrived.IsZero() {
		queueWait = time.Since(t.arrived)
	}
	execStart := time.Now()
	rt.cfg.Trace.RecordEvent(trace.Event{
		Kind: trace.KindStart, TraceID: t.traceID,
		ReqID: req.RequestID, Op: req.Op, Bytes: req.Length, Tenant: t.tenant,
		Phase: trace.PhaseQueueWait, Dur: queueWait, Predicted: t.predicted,
	})
	rt.reg.Histogram("active.queue_wait_us").Observe(float64(queueWait.Microseconds()))
	rt.est.KernelStarted()
	defer rt.est.KernelFinished()
	rt.est.MemReserve(uint64(rt.cfg.ChunkSize))
	defer rt.est.MemRelease(uint64(rt.cfg.ChunkSize))

	k, err := kernels.New(req.Op)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", pfs.ErrInvalid, err)
	}
	if err := k.Configure(req.Params); err != nil {
		return nil, fmt.Errorf("%w: %v", pfs.ErrInvalid, err)
	}
	if len(req.ResumeState) > 0 {
		if err := k.Restore(req.ResumeState); err != nil {
			return nil, fmt.Errorf("%w: %v", pfs.ErrInvalid, err)
		}
	}

	buf := wire.GetBuf(rt.cfg.ChunkSize) // pooled; kernels must not retain chunk slices
	defer wire.PutBuf(buf)
	var done uint64
	for done < req.Length {
		chunkStart := time.Now()
		if t.interrupt.Load() {
			state, cerr := k.Checkpoint()
			if cerr != nil {
				return nil, cerr
			}
			rt.reg.Counter("active.migrated").Inc()
			rt.cfg.Tenants.Account(t.tenant, func(s *tenant.Stats) { s.Interrupts++ })
			rt.cfg.Trace.RecordEvent(trace.Event{
				Kind: trace.KindMigrate, TraceID: t.traceID,
				ReqID: req.RequestID, Op: req.Op, Bytes: req.Length - done, Tenant: t.tenant,
				Phase: trace.PhaseKernel, Dur: time.Since(execStart), Predicted: t.predicted,
				Note: fmt.Sprintf("checkpointed after %d bytes", done),
			})
			// The realized disposition of an accepted-then-interrupted
			// request: it bounced after partial kernel work here.
			rt.cfg.Audit.Resolve(t.auditSeq, audit.Outcome{
				Disposition: audit.DispInterrupted,
				KernelNS:    time.Since(execStart).Nanoseconds(),
				QueueWaitNS: queueWait.Nanoseconds(),
				Processed:   done,
			})
			return &wire.ActiveReadResp{
				RequestID:   req.RequestID,
				Disposition: wire.ActiveInterrupted,
				State:       state,
				Processed:   done,
				TraceID:     t.traceID,
			}, nil
		}
		n := uint64(len(buf))
		if req.Length-done < n {
			n = req.Length - done
		}
		read, rerr := rt.cfg.Store.ReadAt(req.Handle, buf[:n], req.Offset+done)
		if rerr != nil {
			return nil, rerr
		}
		if read == 0 {
			return nil, fmt.Errorf("%w: active read beyond local data (handle %d offset %d)",
				pfs.ErrInvalid, req.Handle, req.Offset+done)
		}
		if err := k.Process(buf[:read]); err != nil {
			return nil, err
		}
		done += uint64(read)
		t.processed.Store(done)
		rt.reg.Counter("active.bytes_processed").Add(int64(read))
		if rt.cfg.Pace {
			rt.paceChunk(req.Op, read, chunkStart)
		}
	}
	out, err := k.Result()
	if err != nil {
		return nil, err
	}
	rt.reg.Counter("active.completed").Inc()
	elapsed := time.Since(execStart)
	var note string
	if t.predicted > 0 {
		// Predicted-vs-actual kernel cost is a first-class metric: the
		// estimator's whole job is making this forecast accurate.
		errPct := 100 * (elapsed - t.predicted).Abs().Seconds() / t.predicted.Seconds()
		rt.reg.Histogram("est.kernel_error_pct").Observe(errPct)
		note = fmt.Sprintf("estimator error %.0f%%", errPct)
	}
	rt.cfg.Trace.RecordEvent(trace.Event{
		Kind: trace.KindComplete, TraceID: t.traceID,
		ReqID: req.RequestID, Op: req.Op, Bytes: req.Length, Tenant: t.tenant,
		Phase: trace.PhaseKernel, Dur: elapsed, Predicted: t.predicted,
		Note: note,
	})
	// Close the audit loop: the decision record now carries the measured
	// kernel cost next to the prediction it was made on.
	rt.cfg.Audit.Resolve(t.auditSeq, audit.Outcome{
		Disposition: audit.DispDone,
		KernelNS:    elapsed.Nanoseconds(),
		QueueWaitNS: queueWait.Nanoseconds(),
		Processed:   done,
	})
	return &wire.ActiveReadResp{
		RequestID:   req.RequestID,
		Disposition: wire.ActiveDone,
		Result:      out,
		Processed:   done,
		TraceID:     t.traceID,
	}, nil
}

// paceChunk sleeps so the chunk just processed took at least bytes/rate
// seconds of wall time, emulating the calibrated per-core kernel rate of
// the paper's hardware on faster hosts. The rate is discounted by current
// normal-I/O pressure with the same law the Contention Estimator assumes
// (S = maxS/(1 + α·load)), so in live experiments normal I/O storms
// really do slow storage-side kernels — the physical contention the paper
// measures.
func (rt *Runtime) paceChunk(op string, bytes int, start time.Time) {
	rate := rt.est.cfg.RateFor(op)
	if rate <= 0 {
		return
	}
	if load := rt.est.normalLoad(); load > 0 {
		rate /= 1 + rt.est.cfg.LoadAlpha*load
	}
	want := time.Duration(float64(bytes) / rate * float64(time.Second))
	if elapsed := time.Since(start); want > elapsed {
		time.Sleep(want - elapsed)
	}
}

// HandleProbe implements pfs.ActiveHandler.
func (rt *Runtime) HandleProbe() (*wire.ProbeResp, error) {
	return rt.est.Probe(), nil
}

// HandleCancel implements pfs.ActiveHandler: it withdraws a queued request
// or interrupts a running one, matching on the client's RequestID.
func (rt *Runtime) HandleCancel(req *wire.CancelReq) (*wire.CancelResp, error) {
	rt.mu.Lock()
	for id, t := range rt.queued {
		// Transforms (t.req == nil) are not cancellable: their caller
		// has nothing to fall back to.
		if t.req != nil && t.req.RequestID == req.RequestID {
			if _, found := rt.queue.Remove(id); found {
				delete(rt.queued, id)
				rt.mu.Unlock()
				rt.cfg.Trace.RecordEvent(trace.Event{
					Kind: trace.KindCancel, TraceID: t.traceID,
					ReqID: req.RequestID, Op: t.op, Note: "withdrawn from queue",
				})
				rt.cfg.Audit.Resolve(t.auditSeq, audit.Outcome{Disposition: audit.DispCancelled})
				rt.respond(t, &wire.ActiveReadResp{
					RequestID:   req.RequestID,
					Disposition: wire.ActiveRejected,
					TraceID:     t.traceID,
				}, nil)
				return &wire.CancelResp{Found: true}, nil
			}
		}
	}
	for _, t := range rt.running {
		if t.req != nil && t.req.RequestID == req.RequestID {
			t.interrupt.Store(true)
			rt.mu.Unlock()
			rt.cfg.Trace.RecordEvent(trace.Event{
				Kind: trace.KindCancel, TraceID: t.traceID,
				ReqID: req.RequestID, Op: t.op, Note: "running kernel flagged",
			})
			return &wire.CancelResp{Found: true}, nil
		}
	}
	rt.mu.Unlock()
	return &wire.CancelResp{Found: false}, nil
}

var _ pfs.ActiveHandler = (*Runtime)(nil)
