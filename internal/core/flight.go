package core

import (
	"sort"
	"time"

	"dosas/internal/telemetry"
	"dosas/internal/trace"
	"dosas/internal/wire"
)

// registerProbes wires the client's sampler probes. Runs once from
// NewClient; a nil sampler registers nothing.
func (c *Client) registerProbes() {
	s := c.cfg.Telemetry
	if s == nil {
		return
	}
	s.Register("asc.pending", func() float64 { return float64(c.Pending()) })
	s.Register("asc.ship.bps", telemetry.RateProbe(func() float64 {
		return float64(c.reg.Counter("asc.bytes_shipped").Value())
	}, s.Interval()))
	s.Register("asc.bounce.rate", telemetry.RatioProbe(
		func() float64 { return float64(c.reg.Counter("asc.bounced").Value()) },
		func() float64 {
			return float64(c.reg.Counter("asc.bounced").Value() +
				c.reg.Counter("asc.completed_on_storage").Value() +
				c.reg.Counter("asc.migrated").Value())
		},
	))
	// Connection-pool health: how multiplexed the transport is (streams in
	// flight, priority-lane queue depth) and how often it has to dial.
	pool := c.cfg.FS.Pool().Metrics()
	s.Register("pool.mux.streams", func() float64 {
		return float64(pool.Gauge("pool.mux.streams").Value())
	})
	s.Register("pool.mux.queue", func() float64 {
		return float64(pool.Gauge("pool.mux.queue.control").Value() +
			pool.Gauge("pool.mux.queue.bulk").Value())
	})
	s.Register("pool.dial.rate", telemetry.RateProbe(func() float64 {
		return float64(pool.Counter("pool.dials").Value())
	}, s.Interval()))
}

// Telemetry exposes the client's time-series sampler (nil when disabled).
func (c *Client) Telemetry() *telemetry.Sampler { return c.cfg.Telemetry }

// FlightRecorder exposes the slow-request journal (nil when slow
// detection is disabled).
func (c *Client) FlightRecorder() *telemetry.FlightRecorder { return c.flight }

// SlowBundles returns the journaled slow-request bundles, oldest first.
func (c *Client) SlowBundles() []telemetry.Bundle { return c.flight.Bundles() }

// observeSlow feeds one finished active read into the slow detector and,
// when it fires, captures a flight bundle synchronously — by the time
// ActiveRead returns, the bundle is journaled (and on disk when SlowDir
// is set), so "read returned slow" and "bundle retrievable" are never
// racing.
func (c *Client) observeSlow(res *Result, op string, length uint64) {
	if !c.slow.Enabled() {
		return
	}
	slow, median, reason := c.slow.Observe(res.Elapsed)
	if !slow {
		return
	}
	c.reg.Counter("asc.slow_captured").Inc()
	c.flight.Capture(telemetry.Bundle{
		TraceID:     res.TraceID,
		Op:          op,
		Tenant:      c.cfg.Tenant,
		Bytes:       length,
		Elapsed:     res.Elapsed,
		Median:      median,
		Reason:      reason,
		Disposition: summarizeParts(res.Parts),
		Timeline:    c.stitchTimeline(res.TraceID),
		Series:      c.telemetryWindow(res.Elapsed),
	})
}

// summarizeParts folds per-part execution sites into one disposition
// label: uniform outcomes name the site ("storage", "compute",
// "migrated"); mixed outcomes read "mixed".
func summarizeParts(parts []PartInfo) string {
	if len(parts) == 0 {
		return ""
	}
	first := parts[0].Where
	for _, p := range parts[1:] {
		if p.Where != first {
			return "mixed"
		}
	}
	return first.String()
}

// stitchTimeline merges this trace's events from the client's own ring
// with those fetched from every data server, ordered by wall-clock time
// — the cross-node story of one request. Fetch errors skip that node
// rather than failing the capture: a partial timeline from a degraded
// cluster is exactly when the operator wants the bundle most.
func (c *Client) stitchTimeline(traceID uint64) []trace.Event {
	evs := c.cfg.Trace.HistoryTrace(traceID)
	for i := 0; i < c.cfg.FS.NumDataServers(); i++ {
		addr, err := c.cfg.FS.DataAddr(uint32(i))
		if err != nil {
			continue
		}
		resp, err := c.cfg.FS.Pool().Call(addr, &wire.TraceFetchReq{TraceID: traceID})
		if err != nil {
			continue
		}
		tf, ok := resp.(*wire.TraceFetchResp)
		if !ok {
			continue
		}
		remote, err := trace.DecodeEvents(tf.Events)
		if err != nil {
			continue
		}
		evs = append(evs, remote...)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
	return evs
}

// telemetryWindow snapshots the client sampler around a request that
// took elapsed: the request's own span plus some margin for the ticks
// before it began.
func (c *Client) telemetryWindow(elapsed time.Duration) []telemetry.Series {
	if c.cfg.Telemetry == nil {
		return nil
	}
	return c.cfg.Telemetry.Snapshot(elapsed + 2*time.Second)
}
