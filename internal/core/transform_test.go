package core

import (
	"bytes"
	"testing"

	"dosas/internal/kernels"
)

func TestTransformSingleServerExactGaussian(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 2, mode: ModeDynamic, scheme: SchemeDOSAS})
	const w, h = 128, 64
	f, data := writeFile(t, c.fs, "xf/src", w*h, 1)

	params := kernels.GaussianParams(w, true)
	dst, res, err := c.asc.Transform(f, "xf/dst", "gaussian2d", params)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesWritten != uint64(len(data)) {
		t.Errorf("wrote %d, want %d", res.BytesWritten, len(data))
	}
	if dst.Size() != uint64(len(data)) {
		t.Errorf("dst size = %d", dst.Size())
	}

	// The destination must hold exactly what a local filter produces.
	k, _ := kernels.New("gaussian2d")
	k.Configure(params)
	k.Process(data)
	want, _ := k.Result()
	got, err := dst.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("transform output disagrees with local reference")
	}

	// Layouts must be identical (co-location).
	if f.Layout().Servers[0] != dst.Layout().Servers[0] {
		t.Error("destination placed on a different server than the source")
	}
}

func TestTransformStripedFile(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 3, mode: ModeAlwaysAccept, scheme: SchemeAS})
	const w = 256
	// 768 rows = 192 KiB = exactly three 64 KiB stripes, one per server.
	f, data := writeFile(t, c.fs, "xf/striped", w*768, 3)

	dst, res, err := c.asc.Transform(f, "xf/striped-out", "gaussian2d", kernels.GaussianParams(w, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesWritten != uint64(len(data)) || dst.Size() != uint64(len(data)) {
		t.Errorf("written=%d size=%d want %d", res.BytesWritten, dst.Size(), len(data))
	}
	if len(res.Parts) != 3 {
		t.Errorf("parts = %d", len(res.Parts))
	}
	// Per-node semantics: each node's local output equals a local filter
	// of its local input stream.
	for slot, srv := range f.Layout().Servers {
		store := c.runtimes[srv].cfg.Store
		localLen := store.Size(f.Handle())
		in := make([]byte, localLen)
		if _, err := store.ReadAt(f.Handle(), in, 0); err != nil {
			t.Fatal(err)
		}
		k, _ := kernels.New("gaussian2d")
		k.Configure(kernels.GaussianParams(w, true))
		k.Process(in)
		want, _ := k.Result()
		out := make([]byte, store.Size(dst.Handle()))
		if _, err := store.ReadAt(dst.Handle(), out, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, want) {
			t.Errorf("slot %d: node-local output mismatch", slot)
		}
	}
}

func TestTransformRejectsNonSizePreserving(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 1, mode: ModeAlwaysAccept, scheme: SchemeAS})
	f, _ := writeFile(t, c.fs, "xf/bad", 10_000, 1)
	if _, _, err := c.asc.Transform(f, "xf/bad-out", "sum8", nil); err == nil {
		t.Fatal("sum8 transform accepted")
	}
	if _, _, err := c.asc.Transform(f, "xf/bad-out2", "gaussian2d", kernels.GaussianParams(64, false)); err == nil {
		t.Fatal("digest-mode gaussian transform accepted")
	}
}

func TestTransformRejectsUnknownOpAndEmptyFile(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 1, mode: ModeAlwaysAccept, scheme: SchemeAS})
	f, _ := writeFile(t, c.fs, "xf/src2", 1000, 1)
	if _, _, err := c.asc.Transform(f, "xf/x", "bogus", nil); err == nil {
		t.Fatal("unknown op accepted")
	}
	empty, err := c.fs.Create("xf/empty", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.asc.Transform(empty, "xf/e-out", "gaussian2d", kernels.GaussianParams(64, true)); err == nil {
		t.Fatal("empty-file transform accepted")
	}
}

func TestTransformQueuesBehindActiveWork(t *testing.T) {
	// A transform and active reads share the kernel core pool; both must
	// complete under concurrency.
	c := startActiveCluster(t, clusterOpts{nData: 1, mode: ModeAlwaysAccept, scheme: SchemeAS})
	const w = 64
	f, data := writeFile(t, c.fs, "xf/busy", w*64, 1)
	done := make(chan error, 4)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := c.asc.ActiveRead(f, 0, uint64(len(data)), "sum8", nil)
			done <- err
		}()
	}
	go func() {
		_, _, err := c.asc.Transform(f, "xf/busy-out", "gaussian2d", kernels.GaussianParams(w, true))
		done <- err
	}()
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCreatePlacedHonoursLayout(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 4, mode: ModeAlwaysAccept, scheme: SchemeAS})
	f, err := c.fs.CreatePlaced("placed/x", 4096, []uint32{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	servers := f.Layout().Servers
	if len(servers) != 2 || servers[0] != 3 || servers[1] != 1 {
		t.Fatalf("layout = %v", servers)
	}
	if _, err := c.fs.CreatePlaced("placed/bad", 4096, []uint32{9}); err == nil {
		t.Fatal("out-of-range placement accepted")
	}
}
