package core

import (
	"bytes"
	"math/rand"
	"testing"

	"dosas/internal/kernels"
)

// refFilter is an independent whole-image 3×3 Gaussian with edge
// replication, the ground truth for the striped band filter.
func refFilter(img []byte, w int) []byte {
	h := len(img) / w
	out := make([]byte, len(img))
	at := func(x, y int) uint32 {
		if x < 0 {
			x = 0
		}
		if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= h {
			y = h - 1
		}
		return uint32(img[y*w+x])
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			acc := 1*at(x-1, y-1) + 2*at(x, y-1) + 1*at(x+1, y-1) +
				2*at(x-1, y) + 4*at(x, y) + 2*at(x+1, y) +
				1*at(x-1, y+1) + 2*at(x, y+1) + 1*at(x+1, y+1)
			out[y*w+x] = uint8(acc / 16)
		}
	}
	return out
}

func TestGaussianHaloBandMatchesWholeImage(t *testing.T) {
	// Kernel-level check: filtering the middle band with halos must equal
	// the same rows of the whole-image filter.
	const w, h = 16, 12
	img := make([]byte, w*h)
	rand.New(rand.NewSource(4)).Read(img)
	want := refFilter(img, w)

	const bandStart, bandRows = 4, 4
	top := img[(bandStart-1)*w : bandStart*w]
	bottom := img[(bandStart+bandRows)*w : (bandStart+bandRows+1)*w]
	k, err := kernels.New("gaussian2d")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Configure(kernels.GaussianParamsHalo(w, true, top, bottom)); err != nil {
		t.Fatal(err)
	}
	if err := k.Process(img[bandStart*w : (bandStart+bandRows)*w]); err != nil {
		t.Fatal(err)
	}
	got, err := k.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[bandStart*w:(bandStart+bandRows)*w]) {
		t.Fatal("halo band disagrees with whole-image filter")
	}
}

func TestFilteredImageStripedExact(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 3, mode: ModeAlwaysAccept, scheme: SchemeAS})
	const w = 256
	const h = 7 * 256 // 7 stripes of 64 KiB (w*256 rows each) spread over 3 nodes
	img := make([]byte, w*h)
	rand.New(rand.NewSource(9)).Read(img)
	f, err := c.fs.Create("img/striped", 64<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(img, 0); err != nil {
		t.Fatal(err)
	}
	got, err := c.asc.FilteredImage(f, w)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refFilter(img, w)) {
		t.Fatal("striped filtered image disagrees with whole-image reference")
	}
}

func TestFilteredImagePartialLastStripe(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 2, mode: ModeAlwaysAccept, scheme: SchemeAS})
	const w = 128
	// 2.5 stripes: the last band is partial.
	rows := (64<<10)/w*5/2 + 3
	img := make([]byte, w*rows)
	rand.New(rand.NewSource(10)).Read(img)
	f, err := c.fs.Create("img/partial", 64<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(img, 0); err != nil {
		t.Fatal(err)
	}
	got, err := c.asc.FilteredImage(f, w)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refFilter(img, w)) {
		t.Fatal("partial-stripe filtered image disagrees with reference")
	}
}

func TestFilteredImageWorksUnderBounce(t *testing.T) {
	// Even when every band bounces to the client, the result must be
	// identical — the halo mechanism is placement-independent.
	c := startActiveCluster(t, clusterOpts{nData: 2, mode: ModeAlwaysBounce, scheme: SchemeDOSAS})
	const w = 128
	img := make([]byte, w*1024)
	rand.New(rand.NewSource(11)).Read(img)
	f, err := c.fs.Create("img/bounced", 64<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(img, 0); err != nil {
		t.Fatal(err)
	}
	got, err := c.asc.FilteredImage(f, w)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refFilter(img, w)) {
		t.Fatal("bounced filtered image disagrees with reference")
	}
}

func TestFilteredImageValidation(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 1, mode: ModeAlwaysAccept, scheme: SchemeAS})
	f, _ := writeFile(t, c.fs, "img/bad", 64<<10, 1) // stripe 64 KiB
	// Width not dividing the stripe size.
	if _, err := c.asc.FilteredImage(f, 1000); err == nil {
		t.Error("unaligned stripe size accepted")
	}
	// Width below minimum.
	if _, err := c.asc.FilteredImage(f, 2); err == nil {
		t.Error("width 2 accepted")
	}
	// Size not a multiple of the width.
	g, _ := writeFile(t, c.fs, "img/badsize", 64<<10+7, 1)
	if _, err := c.asc.FilteredImage(g, 128); err == nil {
		t.Error("ragged image size accepted")
	}
	// Empty file.
	e, err := c.fs.Create("img/empty", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.asc.FilteredImage(e, 128); err == nil {
		t.Error("empty image accepted")
	}
}

func TestGaussianHaloRejectsBadSizes(t *testing.T) {
	k, _ := kernels.New("gaussian2d")
	if err := k.Configure(kernels.GaussianParamsHalo(16, true, make([]byte, 5), nil)); err == nil {
		t.Error("short top halo accepted")
	}
	if err := k.Configure(kernels.GaussianParamsHalo(16, true, nil, make([]byte, 17))); err == nil {
		t.Error("long bottom halo accepted")
	}
}
