package core

import (
	"fmt"
	"strings"

	"dosas/internal/audit"
)

// replayPolicy adapts a real Solver to the audit replay engine's Policy
// interface, converting audit features back into scheduler Requests. The
// point is fidelity: a counterfactual replay runs the production solver
// code, not a restatement of it.
type replayPolicy struct{ s Solver }

// ReplayPolicy wraps a solver for use with audit.Replay.
func ReplayPolicy(s Solver) audit.Policy { return replayPolicy{s: s} }

// Name implements audit.Policy.
func (p replayPolicy) Name() string { return p.s.Name() }

// Decide implements audit.Policy.
func (p replayPolicy) Decide(reqs []audit.Feature, env audit.Env) []bool {
	creqs := make([]Request, len(reqs))
	for i, f := range reqs {
		creqs[i] = Request{
			ID:          f.SchedID,
			Op:          f.Op,
			Bytes:       f.Bytes,
			ResultBytes: f.ResultBytes,
			StorageRate: f.StorageRate,
			ComputeRate: f.ComputeRate,
		}
	}
	return p.s.Solve(creqs, Env{BW: env.BW, StorageRate: env.StorageRate, ComputeRate: env.ComputeRate})
}

// SolverByName maps a policy name to a solver: "exhaustive", "maxgain",
// "all-active", "all-normal". The names double as the -policy vocabulary
// of dosasctl whatif and the -solver vocabulary of the daemons.
func SolverByName(name string) (Solver, error) {
	switch strings.ToLower(name) {
	case "exhaustive":
		return Exhaustive{}, nil
	case "maxgain", "max-gain":
		return MaxGain{}, nil
	case "all-active", "allactive":
		return AllActive{}, nil
	case "all-normal", "allnormal":
		return AllNormal{}, nil
	default:
		return nil, fmt.Errorf("core: unknown solver %q (want exhaustive, maxgain, all-active or all-normal)", name)
	}
}

// PolicyByName maps a replay policy name to an audit Policy: any solver
// name accepted by SolverByName, plus "recorded" (replay the log's own
// decisions).
func PolicyByName(name string) (audit.Policy, error) {
	if strings.EqualFold(name, "recorded") {
		return audit.Recorded{}, nil
	}
	s, err := SolverByName(name)
	if err != nil {
		return nil, err
	}
	return ReplayPolicy(s), nil
}
