package core

import (
	"fmt"

	"dosas/internal/kernels"
	"dosas/internal/pfs"
)

// maxConcurrentBands bounds how many stripe bands are filtered at once.
const maxConcurrentBands = 8

// FilteredImage runs a bit-exact 3×3 Gaussian filter over a striped 8-bit
// image of the given row width. This solves the striped-file problem of
// active storage (cf. Piernas et al.): each stripe holds whole rows (the
// stripe size must be a multiple of the row width), so every stripe band
// is filtered on the storage node that owns it, with one-row halos
// fetched from the neighbouring bands — two rows of network traffic per
// stripe instead of the whole image. The filtered bands are exact: their
// concatenation equals a whole-image filter.
//
// The result is the full filtered image, so this call ships the output
// back (h(x) = x); pair it with Transform-style write-back workflows when
// the output should stay in the cluster.
func (c *Client) FilteredImage(f *pfs.File, width uint32) ([]byte, error) {
	size := f.Size()
	if size == 0 {
		return nil, fmt.Errorf("core: filtered image of empty file %q", f.Name())
	}
	if width < 3 {
		return nil, fmt.Errorf("core: image width %d below minimum 3", width)
	}
	ss := uint64(f.Layout().StripeSize)
	if ss%uint64(width) != 0 {
		return nil, fmt.Errorf("core: stripe size %d is not a multiple of row width %d; "+
			"recreate the file with an aligned stripe size", ss, width)
	}
	if size%uint64(width) != 0 {
		return nil, fmt.Errorf("core: image size %d is not a multiple of row width %d", size, width)
	}

	numStripes := int((size + ss - 1) / ss)
	out := make([]byte, size)
	sem := make(chan struct{}, maxConcurrentBands)
	errs := make(chan error, numStripes)
	for g := 0; g < numStripes; g++ {
		sem <- struct{}{}
		go func(g int) {
			defer func() { <-sem }()
			errs <- c.filterBand(f, width, uint64(g)*ss, ss, size, out)
		}(g)
	}
	var first error
	for g := 0; g < numStripes; g++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	return out, nil
}

// filterBand filters the band starting at file offset off (at most ss
// bytes) and writes the result into out at the same offset.
func (c *Client) filterBand(f *pfs.File, width uint32, off, ss, size uint64, out []byte) error {
	length := ss
	if off+length > size {
		length = size - off
	}
	// Halo rows from the neighbouring bands.
	var top, bottom []byte
	if off > 0 {
		top = make([]byte, width)
		if _, err := f.ReadAt(top, off-uint64(width)); err != nil {
			return fmt.Errorf("core: top halo at %d: %w", off-uint64(width), err)
		}
	}
	if end := off + length; end < size {
		bottom = make([]byte, width)
		if _, err := f.ReadAt(bottom, end); err != nil {
			return fmt.Errorf("core: bottom halo at %d: %w", end, err)
		}
	}
	params := kernels.GaussianParamsHalo(width, true, top, bottom)
	res, err := c.ActiveRead(f, off, length, "gaussian2d", params)
	if err != nil {
		return err
	}
	if uint64(len(res.Output)) != length {
		return fmt.Errorf("core: band at %d: filtered %d bytes, want %d", off, len(res.Output), length)
	}
	copy(out[off:off+length], res.Output)
	return nil
}
