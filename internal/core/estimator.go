package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"dosas/internal/ioqueue"
	"dosas/internal/kernels"
	"dosas/internal/metrics"
	"dosas/internal/wire"
)

// EstimatorConfig tunes the Contention Estimator.
type EstimatorConfig struct {
	// BW is the measured storage→compute network bandwidth in
	// bytes/second (the paper's bw; 118 MB/s on Discfarm).
	BW float64
	// TotalCores is the storage node's core count (2 in the paper's
	// simulated storage nodes).
	TotalCores int
	// IOReservedCores are cores kept for normal I/O service and never
	// counted toward kernel capacity. Defaults to 1, which reproduces
	// the paper's observed behaviour: of the 2-core storage node,
	// effectively one core's worth of throughput serves active I/O.
	// Set to -1 to reserve no cores.
	IOReservedCores int
	// ComputeCores is how many cores one compute node dedicates to a
	// bounced request (1 per requesting process in the paper).
	ComputeCores int
	// LoadAlpha scales how strongly normal-I/O pressure discounts the
	// storage rate: S = maxS / (1 + LoadAlpha · normalLoad). Defaults
	// to 1.
	LoadAlpha float64
	// Period is how often the CE re-probes and refreshes its cached
	// environment (and how often the runtime re-evaluates its policy).
	// Defaults to 50 ms.
	Period time.Duration
	// RateFor overrides the per-core kernel rate lookup; defaults to
	// kernels.RateFor. Tests inject synthetic rates here.
	RateFor func(op string) float64
	// MemBudget bounds the kernel working memory the runtime may hold at
	// once; above MemHighWater of it, dynamic scheduling bounces new
	// active requests. Defaults to 1 GiB.
	MemBudget uint64
}

// Validate rejects configurations that would make the estimator silently
// misbehave: a zero or negative bandwidth turns every cost formula into
// nonsense (Env.Valid() only catches it after the fact, per decision),
// and negative core counts or thresholds are always caller bugs. Zero
// values for the other fields mean "use the default" and stay legal.
// Validate is called on the raw config, before defaults are applied.
func (c EstimatorConfig) Validate() error {
	if c.BW <= 0 || math.IsNaN(c.BW) || math.IsInf(c.BW, 0) {
		return fmt.Errorf("core: estimator BW must be a positive bandwidth in bytes/s, got %v", c.BW)
	}
	if c.TotalCores < 0 {
		return fmt.Errorf("core: estimator TotalCores must not be negative, got %d", c.TotalCores)
	}
	if c.IOReservedCores < -1 {
		return fmt.Errorf("core: estimator IOReservedCores must be >= -1, got %d", c.IOReservedCores)
	}
	if c.ComputeCores < 0 {
		return fmt.Errorf("core: estimator ComputeCores must not be negative, got %d", c.ComputeCores)
	}
	if c.LoadAlpha < 0 || math.IsNaN(c.LoadAlpha) {
		return fmt.Errorf("core: estimator LoadAlpha must not be negative, got %v", c.LoadAlpha)
	}
	if c.Period < 0 {
		return fmt.Errorf("core: estimator Period must not be negative, got %v", c.Period)
	}
	return nil
}

func (c *EstimatorConfig) applyDefaults() {
	if c.TotalCores <= 0 {
		c.TotalCores = 2
	}
	switch {
	case c.IOReservedCores < 0:
		c.IOReservedCores = 0
	case c.IOReservedCores == 0:
		c.IOReservedCores = 1
	}
	if c.IOReservedCores >= c.TotalCores {
		c.IOReservedCores = c.TotalCores - 1
	}
	if c.ComputeCores <= 0 {
		c.ComputeCores = 1
	}
	if c.LoadAlpha == 0 {
		c.LoadAlpha = 1
	}
	if c.Period <= 0 {
		c.Period = 50 * time.Millisecond
	}
	if c.RateFor == nil {
		c.RateFor = kernels.RateFor
	}
	if c.MemBudget == 0 {
		c.MemBudget = 1 << 30
	}
}

// Estimator is the Contention Estimator (CE): it monitors the storage
// node's I/O queue, core occupancy and memory use, and converts them into
// the Env the scheduling algorithm consumes. The value of S_{C,op} is
// derived from the kernel's calibrated maximum rate discounted by the
// current system environment, as in paper Section III-D.
type Estimator struct {
	cfg   EstimatorConfig
	queue *ioqueue.Queue
	reg   *metrics.Registry

	mu        sync.Mutex
	busyCores float64 // cores currently running kernels
	memUsed   uint64  // kernel working-set bytes in use
	memBudget uint64
}

// NewEstimator builds a CE over the node's queue and metrics registry.
// The registry's "data.inflight" gauge (maintained by the pfs data server)
// supplies normal-I/O pressure. The configuration is validated first; a
// nonsensical config (zero bandwidth, negative cores) is an error here
// rather than silent mis-scheduling later.
func NewEstimator(cfg EstimatorConfig, q *ioqueue.Queue, reg *metrics.Registry) (*Estimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Estimator{cfg: cfg, queue: q, reg: reg, memBudget: cfg.MemBudget}, nil
}

// Config returns the estimator's effective (defaulted) configuration.
func (e *Estimator) Config() EstimatorConfig { return e.cfg }

// KernelStarted accounts a kernel occupying one core.
func (e *Estimator) KernelStarted() {
	e.mu.Lock()
	e.busyCores++
	e.mu.Unlock()
}

// KernelFinished releases the core accounting of KernelStarted.
func (e *Estimator) KernelFinished() {
	e.mu.Lock()
	if e.busyCores > 0 {
		e.busyCores--
	}
	e.mu.Unlock()
}

// MemReserve accounts kernel working memory.
func (e *Estimator) MemReserve(n uint64) {
	e.mu.Lock()
	e.memUsed += n
	e.mu.Unlock()
}

// MemRelease undoes MemReserve.
func (e *Estimator) MemRelease(n uint64) {
	e.mu.Lock()
	if e.memUsed >= n {
		e.memUsed -= n
	} else {
		e.memUsed = 0
	}
	e.mu.Unlock()
}

// MemPressure reports the fraction of the kernel memory budget in use
// (may exceed 1 when a transform's output buffer overshoots the budget).
func (e *Estimator) MemPressure() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.memBudget == 0 {
		return 0
	}
	return float64(e.memUsed) / float64(e.memBudget)
}

// normalLoad is the normal-I/O pressure signal: in-flight normal requests
// per storage-node core.
func (e *Estimator) normalLoad() float64 {
	inflight := float64(e.reg.Gauge("data.inflight").Value())
	if inflight < 0 {
		inflight = 0
	}
	return inflight / float64(e.cfg.TotalCores)
}

// Env produces the scheduling environment for one operation, applying the
// paper's estimation rule: S_{C,op} starts from the kernel's calibrated
// maximum (activeCores × per-core rate) and is discounted by current
// normal-I/O pressure.
func (e *Estimator) Env(op string) Env {
	maxRate := e.cfg.RateFor(op)
	activeCores := e.cfg.TotalCores - e.cfg.IOReservedCores
	if activeCores < 1 {
		activeCores = 1
	}
	s := maxRate * float64(activeCores)
	if load := e.normalLoad(); load > 0 {
		s /= 1 + e.cfg.LoadAlpha*load
	}
	return Env{
		BW:          e.cfg.BW,
		StorageRate: s,
		ComputeRate: maxRate * float64(e.cfg.ComputeCores),
	}
}

// Probe snapshots the node state in the wire format served to remote
// probes (and recorded by the benchmarks).
func (e *Estimator) Probe() *wire.ProbeResp {
	st := e.queue.Stats()
	e.mu.Lock()
	busy := e.busyCores
	mem := e.memUsed
	budget := e.memBudget
	e.mu.Unlock()
	return &wire.ProbeResp{
		QueueLen:       uint32(st.NormalLen),
		ActiveQueueLen: uint32(st.ActiveLen),
		BusyCores:      busy,
		TotalCores:     uint32(e.cfg.TotalCores),
		MemUsed:        mem,
		MemTotal:       budget,
		BytesQueued:    st.NormalBytes + st.ActiveBytes,
	}
}
