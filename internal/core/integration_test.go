package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dosas/internal/kernels"
	"dosas/internal/metrics"
	"dosas/internal/pfs"
	"dosas/internal/transport"
	"dosas/internal/wire"
)

// activeCluster is a full in-process DOSAS deployment: metadata server,
// data servers with active runtimes attached, and an ASC.
type activeCluster struct {
	fs       *pfs.Client
	asc      *Client
	runtimes []*Runtime
	servers  []*pfs.Server
}

type clusterOpts struct {
	nData  int
	mode   Mode
	scheme Scheme
	rate   float64 // injected kernel rate for estimation AND pacing
	pace   bool
	bw     float64
	period time.Duration
}

func startActiveCluster(t *testing.T, o clusterOpts) *activeCluster {
	t.Helper()
	if o.nData == 0 {
		o.nData = 1
	}
	if o.bw == 0 {
		o.bw = 118e6
	}
	net := transport.NewInproc()
	meta, err := pfs.NewMetaServer(pfs.MetaConfig{NumDataServers: o.nData})
	if err != nil {
		t.Fatal(err)
	}
	ml, _ := net.Listen("meta")
	ms := pfs.NewServer(ml, meta)
	ms.Start()
	t.Cleanup(ms.Close)

	rateFor := kernels.RateFor
	if o.rate > 0 {
		rateFor = func(string) float64 { return o.rate }
	}

	var dataAddrs []string
	var runtimes []*Runtime
	var servers []*pfs.Server
	for i := 0; i < o.nData; i++ {
		reg := metrics.NewRegistry()
		store := pfs.NewMemStore()
		ds, err := pfs.NewDataServer(pfs.DataConfig{Store: store, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := NewRuntime(RuntimeConfig{
			Store: store,
			Mode:  o.mode,
			Estimator: EstimatorConfig{
				BW:      o.bw,
				RateFor: rateFor,
				Period:  o.period,
			},
			ChunkSize: 64 << 10,
			Pace:      o.pace,
			Metrics:   reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		ds.SetActiveHandler(rt)
		addr := fmt.Sprintf("data-%d", i)
		dl, _ := net.Listen(addr)
		srv := pfs.NewServer(dl, ds)
		srv.Start()
		t.Cleanup(srv.Close)
		dataAddrs = append(dataAddrs, addr)
		runtimes = append(runtimes, rt)
		servers = append(servers, srv)
	}

	fs, err := pfs.NewClient(pfs.ClientConfig{Net: net, MetaAddr: "meta", DataAddrs: dataAddrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Close)
	asc, err := NewClient(ClientConfig{FS: fs, Scheme: o.scheme, ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return &activeCluster{fs: fs, asc: asc, runtimes: runtimes, servers: servers}
}

// writeFile creates a striped file with deterministic pseudo-random bytes.
func writeFile(t *testing.T, fs *pfs.Client, name string, size int, width int) (*pfs.File, []byte) {
	t.Helper()
	f, err := fs.Create(name, 64<<10, width)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(42)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	return f, data
}

func byteSum(data []byte) uint64 {
	var s uint64
	for _, b := range data {
		s += uint64(b)
	}
	return s
}

func TestActiveReadOnStorageAS(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 1, mode: ModeAlwaysAccept, scheme: SchemeAS})
	f, data := writeFile(t, c.fs, "as/sum", 300_000, 1)
	res, err := c.asc.ActiveRead(f, 0, uint64(len(data)), "sum8", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := kernels.Sum8Result(res.Output); got != byteSum(data) {
		t.Errorf("sum = %d, want %d", got, byteSum(data))
	}
	if len(res.Parts) != 1 || res.Parts[0].Where != OnStorage {
		t.Errorf("parts = %+v, want storage execution", res.Parts)
	}
	// Active storage's whole point: only the 8-byte result moved.
	if res.BytesShipped() != 8 {
		t.Errorf("shipped %d bytes, want 8", res.BytesShipped())
	}
}

func TestActiveReadMultiServerCombines(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 4, mode: ModeAlwaysAccept, scheme: SchemeAS})
	f, data := writeFile(t, c.fs, "as/striped", 1_000_000, 4)
	res, err := c.asc.ActiveRead(f, 0, uint64(len(data)), "sum8", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := kernels.Sum8Result(res.Output); got != byteSum(data) {
		t.Errorf("striped sum = %d, want %d", got, byteSum(data))
	}
	if len(res.Parts) != 4 {
		t.Errorf("parts = %d, want 4", len(res.Parts))
	}
	for _, p := range res.Parts {
		if p.Where != OnStorage {
			t.Errorf("part on server %d ran %v", p.Server, p.Where)
		}
	}
}

func TestActiveReadSubrange(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 2, mode: ModeAlwaysAccept, scheme: SchemeAS})
	f, data := writeFile(t, c.fs, "as/subrange", 500_000, 2)
	off, n := uint64(123_456), uint64(100_000)
	res, err := c.asc.ActiveRead(f, off, n, "sum8", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := kernels.Sum8Result(res.Output), byteSum(data[off:off+n]); got != want {
		t.Errorf("subrange sum = %d, want %d", got, want)
	}
}

func TestTSSchemeComputesLocally(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 2, mode: ModeAlwaysAccept, scheme: SchemeTS})
	f, data := writeFile(t, c.fs, "ts/sum", 400_000, 2)
	res, err := c.asc.ActiveRead(f, 0, uint64(len(data)), "sum8", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := kernels.Sum8Result(res.Output); got != byteSum(data) {
		t.Errorf("sum = %d, want %d", got, byteSum(data))
	}
	for _, p := range res.Parts {
		if p.Where != OnCompute {
			t.Errorf("TS part ran %v", p.Where)
		}
	}
	// TS ships all raw bytes.
	if res.BytesShipped() != uint64(len(data)) {
		t.Errorf("shipped %d, want %d", res.BytesShipped(), len(data))
	}
}

func TestServerBounceFallsBackTransparently(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 1, mode: ModeAlwaysBounce, scheme: SchemeDOSAS})
	f, data := writeFile(t, c.fs, "bounce/sum", 200_000, 1)
	res, err := c.asc.ActiveRead(f, 0, uint64(len(data)), "sum8", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := kernels.Sum8Result(res.Output); got != byteSum(data) {
		t.Errorf("sum = %d, want %d", got, byteSum(data))
	}
	if res.Parts[0].Where != OnCompute {
		t.Errorf("bounced part ran %v", res.Parts[0].Where)
	}
}

func TestGaussianActiveMatchesLocal(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 1, mode: ModeAlwaysAccept, scheme: SchemeAS})
	const w, h = 256, 128
	f, data := writeFile(t, c.fs, "as/img", w*h, 1)
	params := kernels.GaussianParams(w, false)
	res, err := c.asc.ActiveRead(f, 0, uint64(len(data)), "gaussian2d", params)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: run the kernel directly over the same bytes.
	k, _ := kernels.New("gaussian2d")
	k.Configure(params)
	k.Process(data)
	want, _ := k.Result()
	if !bytes.Equal(res.Output, want) {
		t.Error("storage-side gaussian digest disagrees with local reference")
	}
}

func TestDownsampleMultiServerRejected(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 2, mode: ModeAlwaysAccept, scheme: SchemeAS})
	f, _ := writeFile(t, c.fs, "as/ds", 400_000, 2)
	_, err := c.asc.ActiveRead(f, 0, f.Size(), "downsample", kernels.DownsampleParams(4))
	if err == nil {
		t.Fatal("uncombinable op over 2 servers must fail fast")
	}
}

func TestDownsampleSingleServerWorks(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 2, mode: ModeAlwaysAccept, scheme: SchemeAS})
	vals := make([]float64, 10_000)
	for i := range vals {
		vals[i] = float64(i)
	}
	raw := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		raw = append(raw, b[:]...)
	}
	f, err := c.fs.Create("as/ds1", 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(raw, 0); err != nil {
		t.Fatal(err)
	}
	res, err := c.asc.ActiveRead(f, 0, f.Size(), "downsample", kernels.DownsampleParams(100))
	if err != nil {
		t.Fatal(err)
	}
	got := kernels.DownsampleResult(res.Output)
	if len(got) != 100 {
		t.Fatalf("samples = %d", len(got))
	}
	if got[0] != 49.5 { // mean of 0..99
		t.Errorf("first sample = %v", got[0])
	}
}

func TestDynamicBouncesUnderContention(t *testing.T) {
	// Slow kernels (2 MB/s) against a fast network: the solver should
	// accept the first request and bounce the pile-up, as in Figure 1's
	// contention scenario.
	c := startActiveCluster(t, clusterOpts{
		nData: 1, mode: ModeDynamic, scheme: SchemeDOSAS,
		rate: 2e6, pace: true, period: 10 * time.Millisecond,
	})
	const size = 256 << 10
	const n = 6
	files := make([]*pfs.File, n)
	datas := make([][]byte, n)
	for i := range files {
		files[i], datas[i] = writeFile(t, c.fs, fmt.Sprintf("dyn/%d", i), size, 1)
	}
	var wg sync.WaitGroup
	wheres := make([]Where, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.asc.ActiveRead(files[i], 0, size, "sum8", nil)
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			if got := kernels.Sum8Result(res.Output); got != byteSum(datas[i]) {
				t.Errorf("req %d: wrong sum", i)
			}
			wheres[i] = res.Parts[0].Where
		}(i)
	}
	wg.Wait()
	var onCompute int
	for _, w := range wheres {
		if w == OnCompute || w == Migrated {
			onCompute++
		}
	}
	if onCompute == 0 {
		t.Errorf("no request was bounced under contention: %v", wheres)
	}
}

func TestCancelMigratesRunningKernel(t *testing.T) {
	// A slow paced kernel is cancelled mid-flight; the ASC must finish it
	// locally from the checkpoint with a correct result.
	c := startActiveCluster(t, clusterOpts{
		nData: 1, mode: ModeAlwaysAccept, scheme: SchemeDOSAS,
		rate: 1e6, pace: true, period: time.Hour, // no policy interference
	})
	const size = 512 << 10 // ~0.5 s at 1 MB/s
	f, data := writeFile(t, c.fs, "cancel/sum", size, 1)

	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.asc.ActiveRead(f, 0, size, "sum8", nil)
		done <- out{res, err}
	}()
	// Let the kernel get partway, then cancel server-side.
	time.Sleep(150 * time.Millisecond)
	addr, _ := c.fs.DataAddr(0)
	resp, err := c.fs.Pool().Call(addr, &wire.CancelReq{RequestID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.(*wire.CancelResp).Found {
		t.Log("cancel raced completion; treating as flaky-tolerant")
	}
	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if got := kernels.Sum8Result(o.res.Output); got != byteSum(data) {
		t.Errorf("migrated sum = %d, want %d", got, byteSum(data))
	}
}

func TestProbeOverWire(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 1, mode: ModeDynamic, scheme: SchemeDOSAS})
	addr, _ := c.fs.DataAddr(0)
	resp, err := c.fs.Pool().Call(addr, &wire.ProbeReq{})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := resp.(*wire.ProbeResp)
	if !ok {
		t.Fatalf("resp = %T", resp)
	}
	if p.TotalCores != 2 {
		t.Errorf("cores = %d", p.TotalCores)
	}
}

func TestActiveReadValidation(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 1, mode: ModeAlwaysAccept, scheme: SchemeAS})
	f, _ := writeFile(t, c.fs, "val/x", 1000, 1)
	if _, err := c.asc.ActiveRead(f, 0, 0, "sum8", nil); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := c.asc.ActiveRead(f, 0, 2000, "sum8", nil); err == nil {
		t.Error("read beyond EOF accepted")
	}
	if _, err := c.asc.ActiveRead(f, 0, 1000, "no-such-kernel", nil); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestUnknownOpRejectedByRuntime(t *testing.T) {
	c := startActiveCluster(t, clusterOpts{nData: 1, mode: ModeAlwaysAccept, scheme: SchemeAS})
	f, _ := writeFile(t, c.fs, "unk/x", 100, 1)
	addr, _ := c.fs.DataAddr(0)
	_, err := c.fs.Pool().Call(addr, &wire.ActiveReadReq{
		Handle: f.Handle(), Length: 100, Op: "bogus",
	})
	if err == nil {
		t.Fatal("runtime accepted unknown op")
	}
}
