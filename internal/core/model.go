// Package core implements the DOSAS architecture itself: the scheduling
// cost model and solvers (paper Section III-D), the Contention Estimator,
// the Active I/O Runtime that executes or bounces kernels on storage
// nodes, and the Active Storage Client that issues active I/O and finishes
// bounced work on compute nodes.
package core

// Env is the system environment the Contention Estimator supplies to the
// scheduling algorithm — the paper's S_{C,op}, C_{C,op} and bw (Table II).
// All rates are bytes/second.
type Env struct {
	// BW is the storage→compute network bandwidth (the paper's bw,
	// 118 MB/s on Discfarm).
	BW float64
	// StorageRate is S_{C,op}: the rate at which this storage node can
	// currently execute the operation, already discounted for normal-I/O
	// pressure and core availability.
	StorageRate float64
	// ComputeRate is C_{C,op}: the rate at which one compute node
	// executes the operation on bounced data.
	ComputeRate float64
}

// Valid reports whether the environment has usable (positive) rates.
func (e Env) Valid() bool {
	return e.BW > 0 && e.StorageRate > 0 && e.ComputeRate > 0
}

// Request is one active I/O request as the scheduler sees it: its
// remaining data size d_i and its estimated result size h(d_i). The
// optional per-request rates support mixed-operation queues, where each
// request's kernel has its own S and C; zero fields fall back to Env.
type Request struct {
	ID          uint64
	Bytes       uint64 // d_i: bytes still to process
	ResultBytes uint64 // h(d_i): bytes shipped back if processed actively
	StorageRate float64
	ComputeRate float64
	// Op names the request's kernel. Informational: solvers ignore it,
	// but the decision audit log records it so replayed feature vectors
	// stay attributable to an operation.
	Op string
}

func (e Env) storageRate(r Request) float64 {
	if r.StorageRate > 0 {
		return r.StorageRate
	}
	return e.StorageRate
}

func (e Env) computeRate(r Request) float64 {
	if r.ComputeRate > 0 {
		return r.ComputeRate
	}
	return e.ComputeRate
}

// XCost is x_i (Eq. 5): the time to serve request r as active I/O —
// process d_i bytes on the storage node and ship the h(d_i)-byte result.
func (e Env) XCost(r Request) float64 {
	return float64(r.Bytes)/e.storageRate(r) + float64(r.ResultBytes)/e.BW
}

// YCost is y_i (Eq. 6): the time to ship request r's raw data to the
// compute node when it is bounced to normal I/O.
func (e Env) YCost(r Request) float64 {
	return float64(r.Bytes) / e.BW
}

// ClientCost is request r's contribution to z (Eq. 7): the time its
// compute node needs to process the bounced data. Bounced requests compute
// in parallel, so z is the maximum ClientCost over the bounced set.
func (e Env) ClientCost(r Request) float64 {
	return float64(r.Bytes) / e.computeRate(r)
}

// Gain is x_i − y_i: how much serial storage-node time bouncing request r
// saves (positive when the network ships its bytes faster than the storage
// node can process them).
func (e Env) Gain(r Request) float64 {
	return e.XCost(r) - e.YCost(r)
}

// TotalTime evaluates the paper's objective (Eq. 4) for an assignment:
// accept[i] == true means request i runs as active I/O on the storage
// node, false means it is bounced. Storage-node processing and transfers
// serialise on the node (Σ terms); bounced requests then compute in
// parallel on their own compute nodes (max term).
func (e Env) TotalTime(reqs []Request, accept []bool) float64 {
	var t, z float64
	for i, r := range reqs {
		if accept[i] {
			t += e.XCost(r)
		} else {
			t += e.YCost(r)
			if c := e.ClientCost(r); c > z {
				z = c
			}
		}
	}
	return t + z
}

// TimeAllActive is T_A (Eq. 1) restricted to the active queue (D_N = 0):
// every request processed on the storage node.
func (e Env) TimeAllActive(reqs []Request) float64 {
	accept := make([]bool, len(reqs))
	for i := range accept {
		accept[i] = true
	}
	return e.TotalTime(reqs, accept)
}

// TimeAllNormal is T_N (Eq. 3): every request shipped raw and processed in
// parallel on the compute nodes.
func (e Env) TimeAllNormal(reqs []Request) float64 {
	return e.TotalTime(reqs, make([]bool, len(reqs)))
}
