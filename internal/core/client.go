package core

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dosas/internal/kernels"
	"dosas/internal/metrics"
	"dosas/internal/pfs"
	"dosas/internal/telemetry"
	"dosas/internal/trace"
	"dosas/internal/wire"
)

// Scheme selects how the client issues analysis reads — the three schemes
// the paper evaluates (Section IV-A3).
type Scheme int

// Analysis schemes.
const (
	// SchemeDOSAS requests active I/O and lets the storage node's
	// dynamic policy accept, bounce, or interrupt it.
	SchemeDOSAS Scheme = iota
	// SchemeAS requests active I/O unconditionally (classic active
	// storage); a refusing server is still honoured by local fallback.
	SchemeAS
	// SchemeTS never requests active I/O: raw data is read and the
	// kernel runs on the compute node (traditional storage).
	SchemeTS
)

// String names the scheme as the paper abbreviates it.
func (s Scheme) String() string {
	switch s {
	case SchemeDOSAS:
		return "DOSAS"
	case SchemeAS:
		return "AS"
	case SchemeTS:
		return "TS"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// ClientConfig configures an Active Storage Client.
type ClientConfig struct {
	// FS is the parallel file system client; required.
	FS *pfs.Client
	// Scheme selects TS / AS / DOSAS behaviour. Default SchemeDOSAS.
	Scheme Scheme
	// Tenant identifies this client's workload on every active request it
	// issues; storage nodes attribute the resources the request consumes
	// (queue wait, kernel CPU, bounces) to it. Empty means the default
	// tenant and keeps the wire format byte-identical to pre-tenant
	// clients.
	Tenant string
	// ChunkSize is the read granularity for client-side kernel
	// execution. Defaults to 1 MiB.
	ChunkSize int
	// WindowDepth is how many chunk reads the transfer phase of local
	// (bounced/migrated) computation keeps in flight per server. 0 takes
	// pfs.DefaultWindowDepth. The pipelining stays strictly inside the
	// transfer phase: transfer and computation remain serial, as the
	// Contention Estimator's workload model requires.
	WindowDepth int
	// Pace throttles client-side kernel execution to the calibrated
	// per-core rate, emulating the paper's compute nodes on fast hosts.
	Pace bool
	// RateFor overrides the kernel rate lookup used for pacing; defaults
	// to kernels.RateFor.
	RateFor func(op string) float64
	// Metrics receives client counters; optional.
	Metrics *metrics.Registry
	// Trace receives client-side lifecycle events (issue, response,
	// transfer, local execution); a default 1024-event ring stamped with
	// node "client" is created when nil.
	Trace *trace.Recorder
	// Telemetry is the client's time-series sampler. The client registers
	// its probes (pending requests, shipped-bytes rate, bounce rate) on
	// it, starts it, and owns it: Close stops it. Nil disables client
	// telemetry.
	Telemetry *telemetry.Sampler
	// SlowThreshold flags any active read slower than this absolute bound
	// for flight capture. Zero disables the absolute criterion.
	SlowThreshold time.Duration
	// SlowFactor flags any active read slower than SlowFactor× the median
	// of recent reads. Zero disables the relative criterion. With both
	// criteria zero the flight recorder never captures.
	SlowFactor float64
	// SlowDir, when set, persists captured flight bundles as JSON files
	// under this directory so dosasctl slow can read them from another
	// process.
	SlowDir string
	// SlowDirBytes caps the total size of persisted flight bundles in
	// SlowDir; oldest bundles are pruned past it. Zero takes
	// telemetry.DefaultDirMaxBytes; negative disables the cap.
	SlowDirBytes int64
	// FlightCapacity bounds the slow-request journal (default 16).
	FlightCapacity int
}

// Client is the Active Storage Client (ASC): it runs on compute nodes,
// offers the active I/O entry point, and completes requests locally when a
// storage node bounces or interrupts them — without application
// involvement, as in paper Section III-B.
type Client struct {
	cfg       ClientConfig
	reg       *metrics.Registry
	nextID    atomic.Uint64
	traceSeed uint64 // random high bits distinguishing this client process
	nextTrace atomic.Uint64
	slow      *telemetry.SlowDetector
	flight    *telemetry.FlightRecorder
	closeOnce sync.Once

	mu      sync.Mutex
	pending map[uint64]pendingReq // the paper's local registration table
}

// pendingReq mirrors the paper's ASC-side registration of each active I/O:
// operation, I/O size, and file handle.
type pendingReq struct {
	op     string
	bytes  uint64
	handle uint64
}

// NewClient builds an ASC over an existing pfs client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.FS == nil {
		return nil, fmt.Errorf("core: client needs a pfs.Client")
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 1 << 20
	}
	if cfg.RateFor == nil {
		cfg.RateFor = kernels.RateFor
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Trace == nil {
		cfg.Trace = trace.NewRecorder(1024)
	}
	if cfg.Trace.Node() == "" {
		cfg.Trace.SetNode("client")
	}
	var seed [4]byte
	_, _ = crand.Read(seed[:]) // on failure the counter alone keeps IDs nonzero
	c := &Client{
		cfg:       cfg,
		reg:       cfg.Metrics,
		traceSeed: uint64(binary.LittleEndian.Uint32(seed[:])) << 32,
		pending:   make(map[uint64]pendingReq),
	}
	if cfg.SlowThreshold > 0 || cfg.SlowFactor > 0 {
		c.slow = telemetry.NewSlowDetector(cfg.SlowThreshold, cfg.SlowFactor, 0)
		fr, err := telemetry.NewFlightRecorder(telemetry.FlightConfig{
			Capacity: cfg.FlightCapacity, Dir: cfg.SlowDir,
			DirMaxBytes: cfg.SlowDirBytes,
		})
		if err != nil {
			return nil, err
		}
		c.flight = fr
	}
	c.registerProbes()
	cfg.Telemetry.Start()
	return c, nil
}

// Close stops the client's telemetry sampler. Safe to call more than
// once; a client built without telemetry needs no Close but tolerates
// one.
func (c *Client) Close() error {
	c.closeOnce.Do(func() { c.cfg.Telemetry.Close() })
	return nil
}

// mintTraceID returns a new cluster-unique distributed trace id: random
// per-process high bits plus a local counter, never zero (zero means
// "untraced" on the wire).
func (c *Client) mintTraceID() uint64 {
	return c.traceSeed | uint64(c.nextTrace.Add(1))
}

// Trace exposes the client-side lifecycle-event recorder.
func (c *Client) Trace() *trace.Recorder { return c.cfg.Trace }

// Scheme returns the client's configured scheme.
func (c *Client) Scheme() Scheme { return c.cfg.Scheme }

// Metrics returns the client's metric registry.
func (c *Client) Metrics() *metrics.Registry { return c.reg }

// Where records where the work of one per-server part was executed.
type Where uint8

// Execution sites.
const (
	// OnStorage: the kernel ran fully on the storage node.
	OnStorage Where = iota
	// OnCompute: the request was bounced and the kernel ran here.
	OnCompute
	// Migrated: the kernel started on the storage node, was interrupted,
	// and finished here from its checkpoint.
	Migrated
)

// String names the execution site.
func (w Where) String() string {
	switch w {
	case OnStorage:
		return "storage"
	case OnCompute:
		return "compute"
	case Migrated:
		return "migrated"
	default:
		return fmt.Sprintf("where(%d)", int(w))
	}
}

// PartInfo describes one per-storage-node part of an active read.
type PartInfo struct {
	Server        uint32
	Bytes         uint64 // input bytes the part covered
	Where         Where
	BytesShipped  uint64 // raw bytes moved over the network for this part
	ServerElapsed time.Duration
}

// Result is what an active read returns: the paper's struct result plus
// execution provenance. Completed is always true by the time the call
// returns — the ASC transparently finishes bounced work — and mirrors the
// paper's completed flag after ASC post-processing.
type Result struct {
	Completed bool
	Output    []byte
	Parts     []PartInfo
	Elapsed   time.Duration
	// TraceID is the distributed trace id minted for this read; every
	// client- and storage-side event it produced carries it.
	TraceID uint64
}

// BytesShipped totals raw data movement across parts.
func (r *Result) BytesShipped() uint64 {
	var n uint64
	for _, p := range r.Parts {
		n += p.BytesShipped
	}
	return n
}

// ActiveRead runs operation op (with kernel parameters params) over the
// file range [off, off+length) and returns the combined result. Per the
// configured scheme it either ships the computation to the storage nodes
// holding the range's stripes, reads raw data and computes locally, or
// lets DOSAS decide per storage node.
func (c *Client) ActiveRead(f *pfs.File, off, length uint64, op string, params []byte) (*Result, error) {
	if length == 0 {
		return nil, fmt.Errorf("core: zero-length active read")
	}
	if size := f.Size(); off+length > size {
		return nil, fmt.Errorf("core: active read [%d,%d) beyond file size %d", off, off+length, size)
	}
	ranges := localRanges(f, off, length)
	if len(ranges) > 1 && !kernels.CanCombine(op) {
		return nil, fmt.Errorf("core: operation %q spans %d storage nodes but is not combinable", op, len(ranges))
	}
	traceID := c.mintTraceID()
	start := time.Now()
	type partOut struct {
		idx  int
		info PartInfo
		out  []byte
		err  error
	}
	results := make(chan partOut, len(ranges))
	for i, lr := range ranges {
		go func(i int, lr localRange) {
			info, out, err := c.processRange(f, lr, op, params, traceID)
			results <- partOut{idx: i, info: info, out: out, err: err}
		}(i, lr)
	}
	parts := make([][]byte, len(ranges))
	infos := make([]PartInfo, len(ranges))
	var firstErr error
	for range ranges {
		po := <-results
		if po.err != nil && firstErr == nil {
			firstErr = po.err
		}
		parts[po.idx] = po.out
		infos[po.idx] = po.info
	}
	if firstErr != nil {
		return nil, firstErr
	}
	combined, err := kernels.Combine(op, parts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Completed: true,
		Output:    combined,
		Parts:     infos,
		Elapsed:   time.Since(start),
		TraceID:   traceID,
	}
	c.observeSlow(res, op, length)
	return res, nil
}

// ActiveReadMany runs the same combinable operation over several whole
// files concurrently and combines all per-file outputs into one result —
// the ensemble/sweep pattern (e.g. global statistics over every member of
// a dataset directory) as a single call.
func (c *Client) ActiveReadMany(files []*pfs.File, op string, params []byte) (*Result, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("core: no files to read")
	}
	if !kernels.CanCombine(op) {
		return nil, fmt.Errorf("core: operation %q is not combinable across files", op)
	}
	start := time.Now()
	type out struct {
		idx int
		res *Result
		err error
	}
	results := make(chan out, len(files))
	for i, f := range files {
		go func(i int, f *pfs.File) {
			res, err := c.ActiveRead(f, 0, f.Size(), op, params)
			results <- out{idx: i, res: res, err: err}
		}(i, f)
	}
	parts := make([][]byte, len(files))
	combined := &Result{Completed: true}
	var firstErr error
	for range files {
		o := <-results
		if o.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: %s: %w", files[o.idx].Name(), o.err)
			}
			continue
		}
		parts[o.idx] = o.res.Output
		combined.Parts = append(combined.Parts, o.res.Parts...)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	output, err := kernels.Combine(op, parts)
	if err != nil {
		return nil, err
	}
	combined.Output = output
	combined.Elapsed = time.Since(start)
	return combined, nil
}

// localRange is the contiguous server-local byte range a file range
// occupies on one storage node (slot identifies the layout position, from
// which each replica's server follows).
type localRange struct {
	slot   int
	server uint32
	offset uint64
	length uint64
}

// localRanges groups the stripe segments of [off, off+length) by server.
// Because round-robin striping maps consecutive owned stripes to
// consecutive local stripes, each server's share of a contiguous file
// range is itself contiguous in local space.
func localRanges(f *pfs.File, off, length uint64) []localRange {
	segs := pfs.Segments(f.Layout(), off, length)
	byServer := make(map[uint32]*localRange)
	var order []uint32
	for _, seg := range segs {
		lr, ok := byServer[seg.Server]
		if !ok {
			byServer[seg.Server] = &localRange{slot: seg.Slot, server: seg.Server, offset: seg.LocalOffset, length: seg.Length}
			order = append(order, seg.Server)
			continue
		}
		if seg.LocalOffset < lr.offset {
			lr.length += lr.offset - seg.LocalOffset
			lr.offset = seg.LocalOffset
		}
		if end := seg.LocalOffset + seg.Length; end > lr.offset+lr.length {
			lr.length = end - lr.offset
		}
	}
	out := make([]localRange, 0, len(order))
	for _, s := range order {
		out = append(out, *byServer[s])
	}
	return out
}

// processRange handles one storage node's share of an active read
// according to the scheme: offload, fall back, or compute locally. When
// the file is replicated and a replica's server fails, the part retries
// on the next replica (same local offsets, by chained placement).
func (c *Client) processRange(f *pfs.File, lr localRange, op string, params []byte, traceID uint64) (PartInfo, []byte, error) {
	layout := f.Layout()
	var lastInfo PartInfo
	var lastErr error
	for r := 0; r < layout.ReplicaCount(); r++ {
		server := pfs.ReplicaServer(layout, lr.slot, r)
		info, out, err := c.processRangeReplica(f, lr, server, pfs.ReplicaHandle(f.Handle(), r), op, params, traceID)
		if err == nil {
			return info, out, nil
		}
		if r+1 < layout.ReplicaCount() {
			c.reg.Counter("asc.replica_failover").Inc()
		}
		lastInfo, lastErr = info, err
	}
	return lastInfo, nil, lastErr
}

// processRangeReplica runs one part against a specific replica.
func (c *Client) processRangeReplica(f *pfs.File, lr localRange, server uint32, handle uint64, op string, params []byte, traceID uint64) (PartInfo, []byte, error) {
	info := PartInfo{Server: server, Bytes: lr.length}
	addr, err := c.cfg.FS.DataAddr(server)
	if err != nil {
		return info, nil, err
	}
	if c.cfg.Scheme == SchemeTS {
		info.Where = OnCompute
		out, shipped, err := c.computeLocally(addr, handle, lr.offset, lr.length, op, params, nil, traceID, 0)
		info.BytesShipped = shipped
		return info, out, err
	}

	reqID := c.nextID.Add(1)
	c.register(reqID, op, lr.length, handle)
	defer c.unregister(reqID)

	c.cfg.Trace.RecordEvent(trace.Event{
		Kind: trace.KindIssue, TraceID: traceID,
		ReqID: reqID, Op: op, Bytes: lr.length, Tenant: c.cfg.Tenant,
		Note: fmt.Sprintf("server %d", server),
	})
	serverStart := time.Now()
	resp, err := c.cfg.FS.Pool().Call(addr, &wire.ActiveReadReq{
		RequestID: reqID,
		Handle:    handle,
		Offset:    lr.offset,
		Length:    lr.length,
		Op:        op,
		Params:    params,
		TraceID:   traceID,
		Tenant:    c.cfg.Tenant,
	})
	info.ServerElapsed = time.Since(serverStart)
	if err != nil {
		var re *pfs.RemoteError
		if errors.As(err, &re) && re.Code == wire.StatusUnsupported {
			// Plain data server with no active runtime: degrade to TS.
			info.Where = OnCompute
			out, shipped, lerr := c.computeLocally(addr, handle, lr.offset, lr.length, op, params, nil, traceID, reqID)
			info.BytesShipped = shipped
			return info, out, lerr
		}
		return info, nil, err
	}
	ar, ok := resp.(*wire.ActiveReadResp)
	if !ok {
		return info, nil, fmt.Errorf("core: active read: unexpected response %v", resp.Type())
	}
	c.cfg.Trace.RecordEvent(trace.Event{
		Kind: trace.KindRespond, TraceID: traceID,
		ReqID: reqID, Op: op, Bytes: lr.length,
		Dur:  info.ServerElapsed,
		Note: fmt.Sprintf("disposition %s", dispositionName(ar.Disposition)),
	})
	switch ar.Disposition {
	case wire.ActiveDone:
		c.reg.Counter("asc.completed_on_storage").Inc()
		info.Where = OnStorage
		info.BytesShipped = uint64(len(ar.Result))
		return info, ar.Result, nil
	case wire.ActiveRejected:
		c.reg.Counter("asc.bounced").Inc()
		info.Where = OnCompute
		out, shipped, err := c.computeLocally(addr, handle, lr.offset, lr.length, op, params, nil, traceID, reqID)
		info.BytesShipped = shipped
		return info, out, err
	case wire.ActiveInterrupted:
		c.reg.Counter("asc.migrated").Inc()
		info.Where = Migrated
		out, shipped, err := c.computeLocally(addr, handle, lr.offset+ar.Processed, lr.length-ar.Processed, op, params, ar.State, traceID, reqID)
		info.BytesShipped = shipped
		return info, out, err
	default:
		return info, nil, fmt.Errorf("core: active read: unknown disposition %d", ar.Disposition)
	}
}

// dispositionName names an ActiveReadResp disposition for trace notes.
func dispositionName(d uint8) string {
	switch d {
	case wire.ActiveDone:
		return "done"
	case wire.ActiveRejected:
		return "rejected"
	case wire.ActiveInterrupted:
		return "interrupted"
	default:
		return fmt.Sprintf("disposition(%d)", d)
	}
}

// computeLocally reads [offset, offset+length) of the server's local
// stream for handle into a buffer and then runs the kernel on the compute
// node, optionally resuming from a checkpoint. It returns the kernel
// output and the raw bytes shipped.
//
// Transfer and computation are deliberately NOT pipelined: this is the
// paper's workload model ("the workload of an application consists of two
// separate parts: computation ... and data movement"), matching what an
// MPI_File_read followed by a local kernel does — read into the user
// buffer, then process. The crossover behaviour the scheduler reasons
// about depends on these phases being serial.
func (c *Client) computeLocally(addr string, handle, offset, length uint64, op string, params, resumeState []byte, traceID, reqID uint64) ([]byte, uint64, error) {
	k, err := kernels.New(op)
	if err != nil {
		return nil, 0, err
	}
	if err := k.Configure(params); err != nil {
		return nil, 0, err
	}
	if len(resumeState) > 0 {
		if err := k.Restore(resumeState); err != nil {
			return nil, 0, err
		}
	}
	// Phase 1: data movement, pipelined inside the phase: up to
	// WindowDepth chunk reads ride the wire concurrently, but the kernel
	// does not start until the last byte lands.
	xferStart := time.Now()
	buf := wire.GetBuf(int(length))
	defer wire.PutBuf(buf)
	n, err := c.cfg.FS.Pool().ReadWindowed(addr, handle, buf, offset, c.cfg.WindowDepth, c.cfg.ChunkSize)
	done := uint64(n)
	c.reg.Counter("asc.bytes_shipped").Add(int64(n))
	if err != nil {
		return nil, done, fmt.Errorf("core: local compute read: %w", err)
	}
	c.cfg.Trace.RecordEvent(trace.Event{
		Kind: trace.KindTransfer, TraceID: traceID,
		ReqID: reqID, Op: op, Bytes: done,
		Phase: trace.PhaseTransfer, Dur: time.Since(xferStart),
	})
	// Phase 2: computation.
	start := time.Now()
	var processed uint64
	for processed < length {
		n := uint64(c.cfg.ChunkSize)
		if length-processed < n {
			n = length - processed
		}
		if err := k.Process(buf[processed : processed+n]); err != nil {
			return nil, done, err
		}
		processed += n
		if c.cfg.Pace {
			c.pace(op, processed, start)
		}
	}
	out, err := k.Result()
	if err != nil {
		return nil, done, err
	}
	c.reg.Counter("asc.completed_on_compute").Inc()
	note := "computed on client"
	if len(resumeState) > 0 {
		note = "resumed from checkpoint on client"
	}
	c.cfg.Trace.RecordEvent(trace.Event{
		Kind: trace.KindComplete, TraceID: traceID,
		ReqID: reqID, Op: op, Bytes: length,
		Phase: trace.PhaseKernel, Dur: time.Since(start),
		Note: note,
	})
	return out, done, nil
}

// pace mirrors the runtime's pacing for client-side kernel execution.
func (c *Client) pace(op string, done uint64, start time.Time) {
	rate := c.cfg.RateFor(op)
	if rate <= 0 {
		return
	}
	want := time.Duration(float64(done) / rate * float64(time.Second))
	if elapsed := time.Since(start); want > elapsed {
		time.Sleep(want - elapsed)
	}
}

func (c *Client) register(id uint64, op string, bytes, handle uint64) {
	c.mu.Lock()
	c.pending[id] = pendingReq{op: op, bytes: bytes, handle: handle}
	c.mu.Unlock()
}

func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Pending reports how many active requests this client is waiting on.
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// TransformResult reports one completed active transform.
type TransformResult struct {
	// BytesWritten is the total output written across storage nodes.
	BytesWritten uint64
	// Parts records per-node input sizes.
	Parts   []PartInfo
	Elapsed time.Duration
}

// Transform runs a size-preserving operation over all of src on its
// storage nodes, writing the output to a freshly created file dstName
// with the same stripe layout — active write-back: neither the input nor
// the output ever crosses the network. Only operations with
// h(x) = x (e.g. full-image gaussian2d) qualify; others return an error.
func (c *Client) Transform(src *pfs.File, dstName, op string, params []byte) (*pfs.File, *TransformResult, error) {
	k, err := kernels.New(op)
	if err != nil {
		return nil, nil, err
	}
	if err := k.Configure(params); err != nil {
		return nil, nil, err
	}
	for _, probe := range []uint64{1 << 12, 1 << 20, 3 << 19} {
		if k.ResultSize(probe) != probe {
			return nil, nil, fmt.Errorf("core: transform requires a size-preserving operation; %q maps %d bytes to %d",
				op, probe, k.ResultSize(probe))
		}
	}
	size := src.Size()
	if size == 0 {
		return nil, nil, fmt.Errorf("core: transform of empty file %q", src.Name())
	}
	layout := src.Layout()
	if layout.ReplicaCount() > 1 {
		return nil, nil, fmt.Errorf("core: transform of replicated file %q is not supported "+
			"(the output would exist on one replica only)", src.Name())
	}
	dst, err := c.cfg.FS.CreatePlaced(dstName, layout.StripeSize, layout.Servers)
	if err != nil {
		return nil, nil, err
	}

	traceID := c.mintTraceID()
	start := time.Now()
	ranges := localRanges(src, 0, size)
	type partOut struct {
		idx     int
		info    PartInfo
		written uint64
		err     error
	}
	results := make(chan partOut, len(ranges))
	for i, lr := range ranges {
		go func(i int, lr localRange) {
			po := partOut{idx: i, info: PartInfo{Server: lr.server, Bytes: lr.length, Where: OnStorage}}
			addr, err := c.cfg.FS.DataAddr(lr.server)
			if err != nil {
				po.err = err
				results <- po
				return
			}
			resp, err := c.cfg.FS.Pool().Call(addr, &wire.TransformReq{
				RequestID: c.nextID.Add(1),
				SrcHandle: src.Handle(),
				Offset:    lr.offset,
				Length:    lr.length,
				Op:        op,
				Params:    params,
				DstHandle: dst.Handle(),
				DstOffset: lr.offset, // identical layouts: local offsets line up
				TraceID:   traceID,
				Tenant:    c.cfg.Tenant,
			})
			if err != nil {
				po.err = err
				results <- po
				return
			}
			tr, ok := resp.(*wire.TransformResp)
			if !ok {
				po.err = fmt.Errorf("core: transform: unexpected response %v", resp.Type())
				results <- po
				return
			}
			po.written = tr.Written
			results <- po
		}(i, lr)
	}
	res := &TransformResult{Parts: make([]PartInfo, len(ranges))}
	var firstErr error
	for range ranges {
		po := <-results
		if po.err != nil && firstErr == nil {
			firstErr = po.err
		}
		res.Parts[po.idx] = po.info
		res.BytesWritten += po.written
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err := dst.SetSize(size); err != nil {
		return nil, nil, err
	}
	res.Elapsed = time.Since(start)
	c.reg.Counter("asc.transforms").Inc()
	return dst, res, nil
}
