package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperEnv is the Discfarm environment for the Gaussian benchmark: one
// effective storage core at 80 MB/s, compute nodes at 80 MB/s, network at
// 118 MB/s (paper Section IV-A).
func paperEnv(rate float64) Env {
	return Env{BW: 118e6, StorageRate: rate, ComputeRate: rate}
}

const mb = 1 << 20

func homogeneous(n int, bytes uint64, result uint64) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{ID: uint64(i + 1), Bytes: bytes, ResultBytes: result}
	}
	return reqs
}

func countAccepted(a []bool) int {
	n := 0
	for _, v := range a {
		if v {
			n++
		}
	}
	return n
}

// The paper's headline boundary: for the Gaussian kernel at 128 MB per
// request, active wins up to 3 concurrent requests per storage node and
// traditional storage wins from 4 (Figures 2, 4).
func TestGaussianCrossoverAtFourRequests(t *testing.T) {
	env := paperEnv(80e6)
	for n := 1; n <= 8; n++ {
		reqs := homogeneous(n, 128*mb, 29)
		ta := env.TimeAllActive(reqs)
		tn := env.TimeAllNormal(reqs)
		if n <= 3 && ta >= tn {
			t.Errorf("n=%d: active %.2fs should beat normal %.2fs", n, ta, tn)
		}
		if n >= 4 && tn >= ta {
			t.Errorf("n=%d: normal %.2fs should beat active %.2fs", n, tn, ta)
		}
	}
}

// SUM's 860 MB/s per core dwarfs the 118 MB/s network: active storage must
// win at every scale (Figure 6).
func TestSumAlwaysPrefersActive(t *testing.T) {
	env := paperEnv(860e6)
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		reqs := homogeneous(n, 128*mb, 8)
		a := MaxGain{}.Solve(reqs, env)
		if countAccepted(a) != n {
			t.Errorf("n=%d: solver bounced %d SUM requests", n, n-countAccepted(a))
		}
	}
}

func TestSolverMatchesSchemeExtremes(t *testing.T) {
	env := paperEnv(80e6)
	// Small queue: everything should run on the storage node.
	a := MaxGain{}.Solve(homogeneous(2, 128*mb, 29), env)
	if countAccepted(a) != 2 {
		t.Errorf("small queue: accepted %d of 2", countAccepted(a))
	}
	// Deep queue: everything should bounce.
	a = MaxGain{}.Solve(homogeneous(16, 128*mb, 29), env)
	if countAccepted(a) != 0 {
		t.Errorf("deep queue: accepted %d of 16", countAccepted(a))
	}
}

func TestExhaustiveEmptyAndSingle(t *testing.T) {
	env := paperEnv(80e6)
	if got := (Exhaustive{}).Solve(nil, env); got != nil {
		t.Errorf("empty queue: %v", got)
	}
	a := Exhaustive{}.Solve(homogeneous(1, 128*mb, 29), env)
	if !a[0] {
		t.Error("single gaussian request should run actively")
	}
}

func TestStaticSolvers(t *testing.T) {
	reqs := homogeneous(5, mb, 8)
	env := paperEnv(80e6)
	if countAccepted(AllActive{}.Solve(reqs, env)) != 5 {
		t.Error("AllActive must accept everything")
	}
	if countAccepted(AllNormal{}.Solve(reqs, env)) != 0 {
		t.Error("AllNormal must bounce everything")
	}
}

// Property: MaxGain achieves exactly the exhaustive optimum's objective
// value on random mixed workloads (sizes, result sizes, and per-request
// rates all varying).
func TestMaxGainMatchesExhaustiveProperty(t *testing.T) {
	f := func(seed int64, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(k8)%10 + 1 // 1..10 requests: exhaustive stays cheap
		reqs := make([]Request, k)
		for i := range reqs {
			bytes := uint64(rng.Intn(1<<28) + 1)
			reqs[i] = Request{
				ID:          uint64(i + 1),
				Bytes:       bytes,
				ResultBytes: uint64(rng.Intn(int(bytes) + 1)),
				StorageRate: float64(rng.Intn(900)+20) * 1e6,
				ComputeRate: float64(rng.Intn(900)+20) * 1e6,
			}
		}
		env := Env{BW: float64(rng.Intn(200)+50) * 1e6, StorageRate: 80e6, ComputeRate: 80e6}
		want := env.TotalTime(reqs, Exhaustive{}.Solve(reqs, env))
		got := env.TotalTime(reqs, MaxGain{}.Solve(reqs, env))
		return math.Abs(got-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the solver's chosen assignment never loses to either static
// baseline.
func TestSolverDominatesBaselinesProperty(t *testing.T) {
	f := func(seed int64, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(k8)%30 + 1
		reqs := make([]Request, k)
		for i := range reqs {
			bytes := uint64(rng.Intn(1<<30) + 1)
			reqs[i] = Request{ID: uint64(i + 1), Bytes: bytes, ResultBytes: 29}
		}
		env := Env{
			BW:          float64(rng.Intn(200)+50) * 1e6,
			StorageRate: float64(rng.Intn(900)+20) * 1e6,
			ComputeRate: float64(rng.Intn(900)+20) * 1e6,
		}
		chosen := env.TotalTime(reqs, MaxGain{}.Solve(reqs, env))
		eps := 1e-9 * math.Max(1, chosen)
		return chosen <= env.TimeAllActive(reqs)+eps && chosen <= env.TimeAllNormal(reqs)+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Mixed operations produce genuinely mixed schedules: SUM requests (whose
// kernels outrun the network, so bouncing never pays) stay active while a
// pile of Gaussian requests bounces.
func TestMixedAssignmentOnHeterogeneousOps(t *testing.T) {
	env := Env{BW: 118e6, StorageRate: 80e6, ComputeRate: 80e6}
	sum := func(id uint64) Request {
		return Request{ID: id, Bytes: 128 * mb, ResultBytes: 8, StorageRate: 860e6, ComputeRate: 860e6}
	}
	gauss := func(id uint64) Request {
		return Request{ID: id, Bytes: 512 * mb, ResultBytes: 29, StorageRate: 80e6, ComputeRate: 80e6}
	}
	reqs := []Request{sum(1), gauss(2), gauss(3), gauss(4), gauss(5), sum(6)}
	a := Exhaustive{}.Solve(reqs, env)
	if !a[0] || !a[5] {
		t.Errorf("SUM requests should stay active: %v", a)
	}
	bouncedGauss := 0
	for i := 1; i < 5; i++ {
		if !a[i] {
			bouncedGauss++
		}
	}
	if bouncedGauss == 0 {
		t.Errorf("expected Gaussian requests bounced: %v", a)
	}
	// MaxGain must agree with the oracle's objective.
	if got, want := env.TotalTime(reqs, MaxGain{}.Solve(reqs, env)), env.TotalTime(reqs, a); math.Abs(got-want) > 1e-9 {
		t.Errorf("maxgain %.4f vs exhaustive %.4f", got, want)
	}
}

func TestExhaustiveFallsBackBeyondMaxExact(t *testing.T) {
	env := paperEnv(80e6)
	reqs := homogeneous(MaxExact+5, 128*mb, 29)
	a := Exhaustive{}.Solve(reqs, env)
	if len(a) != len(reqs) {
		t.Fatalf("assignment length %d", len(a))
	}
}

func TestEnvCostIdentities(t *testing.T) {
	env := Env{BW: 100e6, StorageRate: 50e6, ComputeRate: 200e6}
	r := Request{Bytes: 100 * mb, ResultBytes: 10 * mb}
	x := env.XCost(r)
	wantX := float64(100*mb)/50e6 + float64(10*mb)/100e6
	if math.Abs(x-wantX) > 1e-9 {
		t.Errorf("XCost = %v, want %v", x, wantX)
	}
	if y := env.YCost(r); math.Abs(y-float64(100*mb)/100e6) > 1e-9 {
		t.Errorf("YCost = %v", y)
	}
	if c := env.ClientCost(r); math.Abs(c-float64(100*mb)/200e6) > 1e-9 {
		t.Errorf("ClientCost = %v", c)
	}
	// Per-request overrides beat the env rates.
	r2 := Request{Bytes: 100 * mb, StorageRate: 25e6, ComputeRate: 100e6}
	if math.Abs(env.XCost(r2)-float64(100*mb)/25e6) > 1e-9 {
		t.Error("StorageRate override ignored")
	}
	if math.Abs(env.ClientCost(r2)-float64(100*mb)/100e6) > 1e-9 {
		t.Error("ComputeRate override ignored")
	}
}

func TestEnvValid(t *testing.T) {
	if (Env{}).Valid() {
		t.Error("zero env should be invalid")
	}
	if !(Env{BW: 1, StorageRate: 1, ComputeRate: 1}).Valid() {
		t.Error("positive env should be valid")
	}
}
