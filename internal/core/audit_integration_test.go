package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"dosas/internal/audit"
	"dosas/internal/wire"
)

// TestRuntimeRecordsAcceptedDecision: a dynamic-mode runtime must append
// an admit record for an accepted request and resolve it with the
// measured kernel outcome once the request completes.
func TestRuntimeRecordsAcceptedDecision(t *testing.T) {
	rt, _ := newTestRuntime(t, RuntimeConfig{
		Mode: ModeDynamic,
		Node: "data-7",
		Estimator: EstimatorConfig{
			BW:      118e6,
			RateFor: func(string) float64 { return 860e6 }, // fast: accept
		},
	}, 10_000)
	resp, err := rt.HandleActive(&wire.ActiveReadReq{
		RequestID: 7, TraceID: 0xfeed, Handle: 1, Length: 10_000, Op: "sum8",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Disposition != wire.ActiveDone {
		t.Fatalf("disposition = %d, want done", resp.Disposition)
	}

	snap := rt.Audit().Snapshot()
	if len(snap) != 1 {
		t.Fatalf("audit records = %d, want 1", len(snap))
	}
	r := snap[0]
	if r.Trigger != audit.TriggerAdmit || r.Solver != "maxgain" || r.Node != "data-7" {
		t.Errorf("record header: %+v", r)
	}
	if r.Env.BW != 118e6 || r.Env.StorageRate <= 0 || r.Env.ComputeRate <= 0 {
		t.Errorf("env not snapshotted: %+v", r.Env)
	}
	nc := r.Newcomer()
	if nc == nil {
		t.Fatal("admit record has no newcomer")
	}
	if nc.ReqID != 7 || nc.TraceID != 0xfeed || nc.Op != "sum8" || nc.Bytes != 10_000 {
		t.Errorf("newcomer identity: %+v", nc)
	}
	if !nc.Accept {
		t.Error("accepted request recorded as bounced")
	}
	if nc.PredActive <= 0 || nc.PredNormal <= 0 || nc.PredClient <= 0 {
		t.Errorf("predicted costs missing: %+v", nc)
	}
	if nc.FlipDelta == 0 {
		t.Error("single-request batch should carry a decision margin")
	}
	if r.PredChosen <= 0 || r.PredAllActive <= 0 || r.PredAllNormal <= 0 {
		t.Errorf("objective values missing: %+v", r)
	}
	if r.Outcome == nil {
		t.Fatal("completed request left its record unresolved")
	}
	if r.Outcome.Disposition != audit.DispDone {
		t.Errorf("disposition = %q, want done", r.Outcome.Disposition)
	}
	if r.Outcome.KernelNS <= 0 || r.Outcome.Processed != 10_000 {
		t.Errorf("measured outcome: %+v", r.Outcome)
	}
}

// TestRuntimeRecordsBouncedDecision: a rejected arrival must leave an
// admit record whose newcomer is marked bounced, resolved immediately.
func TestRuntimeRecordsBouncedDecision(t *testing.T) {
	rt, _ := newTestRuntime(t, RuntimeConfig{
		Mode: ModeDynamic,
		Estimator: EstimatorConfig{
			// Slow storage kernel against many compute cores: shipping the
			// raw bytes is clearly cheaper, so the solver bounces even a
			// lone arrival.
			BW:           118e6,
			RateFor:      func(string) float64 { return 1e6 },
			ComputeCores: 8,
		},
	}, 100_000)
	resp, err := rt.HandleActive(&wire.ActiveReadReq{
		RequestID: 9, TraceID: 0xbee, Handle: 1, Length: 100_000, Op: "sum8",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Disposition != wire.ActiveRejected {
		t.Fatalf("disposition = %d, want rejected", resp.Disposition)
	}
	snap := rt.Audit().Snapshot()
	if len(snap) == 0 {
		t.Fatal("bounce left no audit record")
	}
	r := snap[0]
	nc := r.Newcomer()
	if nc == nil || nc.Accept {
		t.Fatalf("bounced newcomer recorded as accepted: %+v", nc)
	}
	if r.Outcome == nil || r.Outcome.Disposition != audit.DispBounced {
		t.Fatalf("outcome = %+v, want bounced", r.Outcome)
	}
	// The recorded log must replay: the recorded policy is a fixed point
	// and the production solver reproduces its own choice.
	rep := audit.Replay(snap, audit.Recorded{}, audit.Overrides{})
	if rep.Decisions != 1 || rep.AgreementRate != 1 {
		t.Errorf("recorded replay: %+v", rep)
	}
	same := audit.Replay(snap, ReplayPolicy(MaxGain{}), audit.Overrides{})
	if same.Agreements != 1 {
		t.Errorf("production solver disagrees with its own recording: %+v", same)
	}
}

// TestRuntimeStaticModesRecordNothing: the audit log captures solver
// invocations; the always-accept/always-bounce baselines never consult
// one, so their logs stay empty.
func TestRuntimeStaticModesRecordNothing(t *testing.T) {
	for _, mode := range []Mode{ModeAlwaysAccept, ModeAlwaysBounce} {
		rt, _ := newTestRuntime(t, RuntimeConfig{Mode: mode}, 100)
		if _, err := rt.HandleActive(&wire.ActiveReadReq{RequestID: 1, Handle: 1, Length: 100, Op: "sum8"}); err != nil {
			t.Fatal(err)
		}
		if n := rt.Audit().Len(); n != 0 {
			t.Errorf("%v: %d audit records, want 0", mode, n)
		}
	}
}

// TestSolverAndPolicyByName pins the CLI-facing name lookups.
func TestSolverAndPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"exhaustive": "exhaustive",
		"maxgain":    "maxgain",
		"max-gain":   "maxgain",
		"All-Active": "all-active",
		"allnormal":  "all-normal",
	} {
		s, err := SolverByName(name)
		if err != nil {
			t.Fatalf("SolverByName(%q): %v", name, err)
		}
		if s.Name() != want {
			t.Errorf("SolverByName(%q) = %q", name, s.Name())
		}
	}
	if _, err := SolverByName("nope"); err == nil || !strings.Contains(err.Error(), "exhaustive") {
		t.Errorf("unknown solver error should list valid names, got %v", err)
	}
	p, err := PolicyByName("recorded")
	if err != nil || p.Name() != "recorded" {
		t.Errorf("PolicyByName(recorded) = %v, %v", p, err)
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestEstimatorConfigValidate(t *testing.T) {
	valid := EstimatorConfig{BW: 118e6}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []EstimatorConfig{
		{BW: 0},
		{BW: -1},
		{BW: math.NaN()},
		{BW: math.Inf(1)},
		{BW: 1, TotalCores: -2},
		{BW: 1, IOReservedCores: -2},
		{BW: 1, ComputeCores: -1},
		{BW: 1, LoadAlpha: -0.5},
		{BW: 1, LoadAlpha: math.NaN()},
		{BW: 1, Period: -time.Second},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
		if _, err := NewEstimator(cfg, nil, nil); err == nil {
			t.Errorf("NewEstimator accepted bad config %d", i)
		}
	}
	// NewRuntime surfaces the validation error rather than panicking.
	if _, err := NewRuntime(RuntimeConfig{Estimator: EstimatorConfig{BW: math.NaN()}}); err == nil {
		t.Error("NewRuntime accepted a NaN bandwidth")
	}
}
