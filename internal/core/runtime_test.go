package core

import (
	"testing"
	"time"

	"dosas/internal/kernels"
	"dosas/internal/metrics"
	"dosas/internal/pfs"
	"dosas/internal/wire"
)

// newTestRuntime builds a runtime over an in-memory store pre-loaded with
// data under handle 1.
func newTestRuntime(t *testing.T, cfg RuntimeConfig, dataLen int) (*Runtime, *metrics.Registry) {
	t.Helper()
	store := pfs.NewMemStore()
	data := make([]byte, dataLen)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := store.WriteAt(1, data, 0); err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, cfg.Metrics
}

func TestRuntimeExecutesActiveRead(t *testing.T) {
	rt, _ := newTestRuntime(t, RuntimeConfig{Mode: ModeAlwaysAccept}, 10_000)
	resp, err := rt.HandleActive(&wire.ActiveReadReq{
		RequestID: 1, Handle: 1, Offset: 0, Length: 10_000, Op: "sum8",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Disposition != wire.ActiveDone {
		t.Fatalf("disposition = %d", resp.Disposition)
	}
	var want uint64
	for i := 0; i < 10_000; i++ {
		want += uint64(byte(i))
	}
	if got := le64(resp.Result); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if resp.Processed != 10_000 {
		t.Errorf("processed = %d", resp.Processed)
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func TestRuntimeAlwaysBounceRejects(t *testing.T) {
	rt, reg := newTestRuntime(t, RuntimeConfig{Mode: ModeAlwaysBounce}, 100)
	resp, err := rt.HandleActive(&wire.ActiveReadReq{RequestID: 1, Handle: 1, Length: 100, Op: "sum8"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Disposition != wire.ActiveRejected {
		t.Fatalf("disposition = %d", resp.Disposition)
	}
	if reg.Counter("active.rejected").Value() != 1 {
		t.Error("rejection not counted")
	}
}

func TestRuntimeRejectsUnknownOp(t *testing.T) {
	rt, _ := newTestRuntime(t, RuntimeConfig{Mode: ModeAlwaysAccept}, 100)
	if _, err := rt.HandleActive(&wire.ActiveReadReq{RequestID: 1, Handle: 1, Length: 100, Op: "nope"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestRuntimeReadBeyondLocalDataFails(t *testing.T) {
	rt, _ := newTestRuntime(t, RuntimeConfig{Mode: ModeAlwaysAccept}, 100)
	if _, err := rt.HandleActive(&wire.ActiveReadReq{RequestID: 1, Handle: 1, Offset: 50, Length: 100, Op: "sum8"}); err == nil {
		t.Fatal("read past local stream accepted")
	}
}

func TestRuntimeResumeFromCheckpoint(t *testing.T) {
	rt, _ := newTestRuntime(t, RuntimeConfig{Mode: ModeAlwaysAccept}, 1000)
	// First half on one "node"...
	first, err := rt.HandleActive(&wire.ActiveReadReq{RequestID: 1, Handle: 1, Length: 500, Op: "sum8"})
	if err != nil {
		t.Fatal(err)
	}
	// ...then hand-build a sum8 checkpoint carrying that partial total and
	// re-issue the second half with ResumeState. (Exercises the wire-level
	// resume path the ASC uses when re-offloading.)
	st := kernels.NewState()
	st.PutInt64("total", int64(le64(first.Result)))
	st.PutInt64("processed", 500)
	state, err := st.Encode("sum8")
	if err != nil {
		t.Fatal(err)
	}
	second, err := rt.HandleActive(&wire.ActiveReadReq{
		RequestID: 2, Handle: 1, Offset: 500, Length: 500, Op: "sum8", ResumeState: state,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 0; i < 1000; i++ {
		want += uint64(byte(i))
	}
	if got := le64(second.Result); got != want {
		t.Errorf("resumed sum = %d, want %d", got, want)
	}
}

func TestRuntimeInterruptsUnderNormalIOPressure(t *testing.T) {
	// A slow paced kernel is running; normal I/O pressure then spikes,
	// the CE's estimate of S collapses, and the policy loop must
	// interrupt the kernel and hand back a checkpoint.
	reg := metrics.NewRegistry()
	rt, _ := newTestRuntime(t, RuntimeConfig{
		Mode:    ModeDynamic,
		Metrics: reg,
		Estimator: EstimatorConfig{
			BW:      118e6,
			RateFor: func(string) float64 { return 1e6 }, // 1 MB/s: slow
			Period:  5 * time.Millisecond,
		},
		ChunkSize: 16 << 10,
		Pace:      true,
	}, 512<<10)

	type out struct {
		resp *wire.ActiveReadResp
		err  error
	}
	done := make(chan out, 1)
	go func() {
		resp, err := rt.HandleActive(&wire.ActiveReadReq{
			RequestID: 1, Handle: 1, Length: 512 << 10, Op: "sum8",
		})
		done <- out{resp, err}
	}()
	time.Sleep(100 * time.Millisecond) // let the kernel start and make progress
	// Normal-I/O storm: 16 in-flight reads on a 2-core node.
	reg.Gauge("data.inflight").Set(16)

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.resp.Disposition != wire.ActiveInterrupted {
			t.Fatalf("disposition = %d, want interrupted", o.resp.Disposition)
		}
		if len(o.resp.State) == 0 {
			t.Error("interrupted response lacks a checkpoint")
		}
		if o.resp.Processed == 0 || o.resp.Processed >= 512<<10 {
			t.Errorf("processed = %d", o.resp.Processed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("policy loop never interrupted the running kernel")
	}
	if reg.Counter("active.interrupted").Value() == 0 {
		t.Error("interruption not counted")
	}
}

func TestRuntimeBouncesUnderMemoryPressure(t *testing.T) {
	rt, _ := newTestRuntime(t, RuntimeConfig{
		Mode: ModeDynamic,
		Estimator: EstimatorConfig{
			BW:        118e6,
			RateFor:   func(string) float64 { return 860e6 },
			MemBudget: 1 << 20,
		},
	}, 1000)
	// Fill the memory budget past the high-water mark.
	rt.Estimator().MemReserve(950 << 10)
	resp, err := rt.HandleActive(&wire.ActiveReadReq{RequestID: 1, Handle: 1, Length: 1000, Op: "sum8"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Disposition != wire.ActiveRejected {
		t.Fatalf("disposition = %d, want rejected under memory pressure", resp.Disposition)
	}
	// Releasing the memory restores admission (sum8 is always
	// profitable to accept).
	rt.Estimator().MemRelease(950 << 10)
	resp, err = rt.HandleActive(&wire.ActiveReadReq{RequestID: 2, Handle: 1, Length: 1000, Op: "sum8"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Disposition != wire.ActiveDone {
		t.Fatalf("disposition = %d after pressure cleared", resp.Disposition)
	}
}

func TestEstimatorMemPressure(t *testing.T) {
	e, _, _ := testEstimator(EstimatorConfig{BW: 1, MemBudget: 1000})
	if e.MemPressure() != 0 {
		t.Fatal("fresh estimator under pressure")
	}
	e.MemReserve(500)
	if got := e.MemPressure(); got != 0.5 {
		t.Fatalf("pressure = %v", got)
	}
	e.MemReserve(1000)
	if got := e.MemPressure(); got != 1.5 {
		t.Fatalf("overshoot pressure = %v", got)
	}
}

func TestRuntimeCloseBouncesQueued(t *testing.T) {
	rt, _ := newTestRuntime(t, RuntimeConfig{
		Mode:        ModeAlwaysAccept,
		ActiveCores: 1,
		Estimator:   EstimatorConfig{BW: 118e6, RateFor: func(string) float64 { return 1e6 }},
		ChunkSize:   16 << 10,
		Pace:        true,
	}, 256<<10)
	// Occupy the single core, then queue another request.
	results := make(chan *wire.ActiveReadResp, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			resp, err := rt.HandleActive(&wire.ActiveReadReq{
				RequestID: uint64(i + 1), Handle: 1, Length: 256 << 10, Op: "sum8",
			})
			if err == nil {
				results <- resp
			} else {
				results <- &wire.ActiveReadResp{Disposition: wire.ActiveRejected}
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	go rt.Close()
	for i := 0; i < 2; i++ {
		select {
		case <-results:
		case <-time.After(5 * time.Second):
			t.Fatal("request stranded across Close")
		}
	}
}

func TestRuntimeCancelQueuedRequest(t *testing.T) {
	rt, _ := newTestRuntime(t, RuntimeConfig{
		Mode:        ModeAlwaysAccept,
		ActiveCores: 1,
		Estimator:   EstimatorConfig{BW: 118e6, RateFor: func(string) float64 { return 1e6 }},
		ChunkSize:   16 << 10,
		Pace:        true,
	}, 256<<10)
	// Fill the core with request 1, queue request 2, cancel request 2.
	done := make(chan uint8, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			resp, err := rt.HandleActive(&wire.ActiveReadReq{
				RequestID: uint64(i + 1), Handle: 1, Length: 256 << 10, Op: "sum8",
			})
			if err != nil {
				done <- 99
				return
			}
			done <- resp.Disposition
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	cr, err := rt.HandleCancel(&wire.CancelReq{RequestID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Found {
		t.Log("request 2 was not queued when cancelled (timing); tolerated")
	}
	a, b := <-done, <-done
	if a != wire.ActiveDone && b != wire.ActiveDone {
		t.Errorf("no request completed: %d, %d", a, b)
	}
	// Cancel of an unknown id reports not-found.
	cr, err = rt.HandleCancel(&wire.CancelReq{RequestID: 777})
	if err != nil || cr.Found {
		t.Errorf("phantom cancel = %+v, %v", cr, err)
	}
}

func TestRuntimeProbeCountsBusyCores(t *testing.T) {
	rt, _ := newTestRuntime(t, RuntimeConfig{
		Mode:      ModeAlwaysAccept,
		Estimator: EstimatorConfig{BW: 118e6, RateFor: func(string) float64 { return 1e6 }},
		ChunkSize: 16 << 10,
		Pace:      true,
	}, 128<<10)
	go rt.HandleActive(&wire.ActiveReadReq{RequestID: 1, Handle: 1, Length: 128 << 10, Op: "sum8"}) //nolint:errcheck
	time.Sleep(50 * time.Millisecond)
	p, err := rt.HandleProbe()
	if err != nil {
		t.Fatal(err)
	}
	if p.BusyCores < 1 {
		t.Errorf("busy cores = %v during execution", p.BusyCores)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeDynamic.String() != "dosas" || ModeAlwaysAccept.String() != "as" || ModeAlwaysBounce.String() != "ts" {
		t.Error("mode names wrong")
	}
	if SchemeDOSAS.String() != "DOSAS" || SchemeAS.String() != "AS" || SchemeTS.String() != "TS" {
		t.Error("scheme names wrong")
	}
	if OnStorage.String() != "storage" || OnCompute.String() != "compute" || Migrated.String() != "migrated" {
		t.Error("where names wrong")
	}
}
