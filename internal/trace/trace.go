// Package trace records per-request lifecycle events on DOSAS storage
// nodes: arrival, scheduling decision, kernel start, interruption,
// migration, completion. The recorder is a fixed-capacity ring so it can
// stay enabled in production; operators dump it to reconstruct exactly
// why the Contention Estimator bounced or migrated a request.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind classifies a lifecycle event.
type Kind uint8

// Event kinds.
const (
	// KindArrive: an active request reached the node.
	KindArrive Kind = iota + 1
	// KindAdmit: the policy accepted it for storage-side execution.
	KindAdmit
	// KindReject: the policy bounced it at arrival.
	KindReject
	// KindStart: a kernel began executing.
	KindStart
	// KindInterrupt: the policy interrupted a running kernel.
	KindInterrupt
	// KindMigrate: the interrupted kernel's checkpoint left the node.
	KindMigrate
	// KindComplete: the kernel finished on this node.
	KindComplete
	// KindCancel: the client withdrew the request.
	KindCancel
	// KindTransform: an active write-back completed.
	KindTransform
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindArrive:
		return "arrive"
	case KindAdmit:
		return "admit"
	case KindReject:
		return "reject"
	case KindStart:
		return "start"
	case KindInterrupt:
		return "interrupt"
	case KindMigrate:
		return "migrate"
	case KindComplete:
		return "complete"
	case KindCancel:
		return "cancel"
	case KindTransform:
		return "transform"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded lifecycle step.
type Event struct {
	Seq   uint64
	Time  time.Time
	Kind  Kind
	ReqID uint64
	Op    string
	Bytes uint64
	Note  string
}

// Recorder is a fixed-capacity ring of events. A nil *Recorder is valid
// and records nothing, so callers need no nil checks at call sites.
type Recorder struct {
	mu   sync.Mutex
	ring []Event
	next int
	full bool
	seq  uint64
	now  func() time.Time
}

// NewRecorder returns a recorder keeping the last capacity events
// (minimum 16).
func NewRecorder(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	return &Recorder{ring: make([]Event, capacity), now: time.Now}
}

// Record appends an event, evicting the oldest when full.
func (r *Recorder) Record(kind Kind, reqID uint64, op string, bytes uint64, note string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	r.ring[r.next] = Event{
		Seq:   r.seq,
		Time:  r.now(),
		Kind:  kind,
		ReqID: reqID,
		Op:    op,
		Bytes: bytes,
		Note:  note,
	}
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained events in chronological order.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	if r.full {
		out = append(out, r.ring[r.next:]...)
	}
	out = append(out, r.ring[:r.next]...)
	// Trim zero entries (not yet written when !full).
	trimmed := out[:0]
	for _, e := range out {
		if e.Seq != 0 {
			trimmed = append(trimmed, e)
		}
	}
	return trimmed
}

// Len reports how many events are retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.ring)
	}
	return r.next
}

// WriteTo dumps the retained events as one line each.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range r.Snapshot() {
		n, err := fmt.Fprintf(w, "%s seq=%d req=%d %-9s op=%s bytes=%d %s\n",
			e.Time.Format("15:04:05.000"), e.Seq, e.ReqID, e.Kind, e.Op, e.Bytes, e.Note)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// History reconstructs one request's event sequence.
func (r *Recorder) History(reqID uint64) []Event {
	var out []Event
	for _, e := range r.Snapshot() {
		if e.ReqID == reqID {
			out = append(out, e)
		}
	}
	return out
}
