// Package trace records per-request lifecycle events on DOSAS nodes —
// storage-side (arrival, scheduling decision, kernel start, interruption,
// migration, completion) and client-side (issue, response, transfer,
// local execution). Events carry a distributed TraceID and the recording
// node's identity, so the per-node rings can be stitched into one
// cross-cluster timeline. The recorder is a fixed-capacity ring so it can
// stay enabled in production; operators dump it to reconstruct exactly
// why the Contention Estimator bounced or migrated a request.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind classifies a lifecycle event.
type Kind uint8

// Event kinds. Wire-stable: append only, never renumber.
const (
	// KindArrive: an active request reached the node.
	KindArrive Kind = iota + 1
	// KindAdmit: the policy accepted it for storage-side execution.
	KindAdmit
	// KindReject: the policy bounced it at arrival.
	KindReject
	// KindStart: a kernel began executing.
	KindStart
	// KindInterrupt: the policy interrupted a running kernel.
	KindInterrupt
	// KindMigrate: the interrupted kernel's checkpoint left the node.
	KindMigrate
	// KindComplete: the kernel finished on this node.
	KindComplete
	// KindCancel: the client withdrew the request.
	KindCancel
	// KindTransform: an active write-back completed.
	KindTransform
	// KindIssue: the client sent an active request to a storage node.
	KindIssue
	// KindRespond: the client received the storage node's disposition.
	KindRespond
	// KindTransfer: raw data was shipped over the network to the client.
	KindTransfer
)

var kindNames = map[Kind]string{
	KindArrive:    "arrive",
	KindAdmit:     "admit",
	KindReject:    "reject",
	KindStart:     "start",
	KindInterrupt: "interrupt",
	KindMigrate:   "migrate",
	KindComplete:  "complete",
	KindCancel:    "cancel",
	KindTransform: "transform",
	KindIssue:     "issue",
	KindRespond:   "respond",
	KindTransfer:  "transfer",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its string name, so JSON exports stay
// readable and stable across kind renumbering bugs.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses either a kind name or the kind(N) fallback form.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for kind, name := range kindNames {
		if name == s {
			*k = kind
			return nil
		}
	}
	var n uint8
	if _, err := fmt.Sscanf(s, "kind(%d)", &n); err == nil {
		*k = Kind(n)
		return nil
	}
	return fmt.Errorf("trace: unknown kind %q", s)
}

// Phases of a traced request, carried in Event.Phase on span-style events
// (those with a Dur). They name the four measured stages of an active
// read's life: waiting in the storage node's I/O queue, executing the
// kernel (storage- or client-side), moving raw bytes over the network,
// and the scheduler deciding where the work runs.
const (
	PhaseQueueWait = "queue-wait"
	PhaseKernel    = "kernel-execute"
	PhaseTransfer  = "network-transfer"
	PhaseDecision  = "bounce-decision"
)

// Event is one recorded lifecycle step. Timing fields make it a span:
// Dur is how long the phase took ending at Time, and Predicted is what
// the Contention Estimator forecast for it (0 when not applicable), so
// predicted-vs-actual error is recorded at the source.
type Event struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Kind    Kind      `json:"kind"`
	TraceID uint64    `json:"trace_id,omitempty"`
	Node    string    `json:"node,omitempty"`
	ReqID   uint64    `json:"req_id"`
	Op      string    `json:"op,omitempty"`
	Bytes   uint64    `json:"bytes,omitempty"`
	// Tenant attributes the event to the requesting tenant ("" = default).
	Tenant string `json:"tenant,omitempty"`
	// Phase names the measured stage for span events (Phase* constants).
	Phase string `json:"phase,omitempty"`
	// Dur is the measured duration of the phase ending at Time.
	Dur time.Duration `json:"dur_ns,omitempty"`
	// Predicted is the estimator's forecast duration for the phase.
	Predicted time.Duration `json:"predicted_ns,omitempty"`
	Note      string        `json:"note,omitempty"`
}

// Recorder is a fixed-capacity ring of events. A nil *Recorder is valid
// and records nothing, so callers need no nil checks at call sites.
type Recorder struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	full    bool
	seq     uint64
	dropped uint64 // events overwritten after the ring wrapped
	node    string
	now     func() time.Time
}

// NewRecorder returns a recorder keeping the last capacity events
// (minimum 16).
func NewRecorder(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	return &Recorder{ring: make([]Event, capacity), now: time.Now}
}

// SetNode stamps all subsequently recorded events with the node identity
// (e.g. "data-0", "meta", "client"). Safe on a nil recorder.
func (r *Recorder) SetNode(node string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.node = node
	r.mu.Unlock()
}

// Node returns the recorder's node identity.
func (r *Recorder) Node() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.node
}

// Record appends a plain (non-span) event, evicting the oldest when full.
func (r *Recorder) Record(kind Kind, reqID uint64, op string, bytes uint64, note string) {
	r.RecordEvent(Event{Kind: kind, ReqID: reqID, Op: op, Bytes: bytes, Note: note})
}

// RecordEvent appends ev, filling in Seq, Time, and Node. It is the
// general entry point for span events carrying TraceID, Phase, Dur, and
// Predicted.
func (r *Recorder) RecordEvent(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	if ev.Time.IsZero() {
		ev.Time = r.now()
	}
	if ev.Node == "" {
		ev.Node = r.node
	}
	if r.full {
		// The slot being written still holds the oldest retained event;
		// overwriting it loses history.
		r.dropped++
	}
	r.ring[r.next] = ev
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Dropped reports how many events were evicted because the ring wrapped —
// non-zero means Snapshot's timeline is incomplete. Safe on nil.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot returns the retained events in chronological order.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	if r.full {
		out = append(out, r.ring[r.next:]...)
	}
	out = append(out, r.ring[:r.next]...)
	// Trim zero entries (not yet written when !full).
	trimmed := out[:0]
	for _, e := range out {
		if e.Seq != 0 {
			trimmed = append(trimmed, e)
		}
	}
	return trimmed
}

// Len reports how many events are retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.ring)
	}
	return r.next
}

// WriteTo dumps the retained events as one line each, with a trailer
// noting any events the ring evicted (an incomplete timeline).
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range r.Snapshot() {
		n, err := fmt.Fprintf(w, "%s%s\n", e.Time.Format("15:04:05.000"), FormatEvent(e))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	if d := r.Dropped(); d > 0 {
		n, err := fmt.Fprintf(w, "... %d older events dropped (ring wrapped)\n", d)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// FormatEvent renders one event's fields (everything after the timestamp)
// in the canonical single-line form shared by WriteTo and dosasctl.
func FormatEvent(e Event) string {
	s := fmt.Sprintf(" seq=%d req=%d %-9s op=%s bytes=%d", e.Seq, e.ReqID, e.Kind, e.Op, e.Bytes)
	if e.Tenant != "" {
		s += fmt.Sprintf(" tenant=%s", e.Tenant)
	}
	if e.Phase != "" {
		s += fmt.Sprintf(" phase=%s", e.Phase)
	}
	if e.Dur > 0 {
		s += fmt.Sprintf(" dur=%v", e.Dur.Round(time.Microsecond))
	}
	if e.Predicted > 0 {
		s += fmt.Sprintf(" predicted=%v", e.Predicted.Round(time.Microsecond))
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}

// WriteJSON dumps the retained events as one JSON array — the structured
// sibling of WriteTo, and the payload format of wire.TraceFetchResp.
func (r *Recorder) WriteJSON(w io.Writer) error {
	evs := r.Snapshot()
	if evs == nil {
		evs = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

// EncodeEvents marshals events to the JSON array format used on the wire.
func EncodeEvents(evs []Event) ([]byte, error) {
	if evs == nil {
		evs = []Event{}
	}
	return json.Marshal(evs)
}

// DecodeEvents parses the JSON array format produced by EncodeEvents /
// WriteJSON. An empty payload decodes to no events.
func DecodeEvents(b []byte) ([]Event, error) {
	if len(b) == 0 {
		return nil, nil
	}
	var evs []Event
	if err := json.Unmarshal(b, &evs); err != nil {
		return nil, err
	}
	return evs, nil
}

// History reconstructs one request's event sequence.
func (r *Recorder) History(reqID uint64) []Event {
	var out []Event
	for _, e := range r.Snapshot() {
		if e.ReqID == reqID {
			out = append(out, e)
		}
	}
	return out
}

// HistoryTrace reconstructs one distributed trace's event sequence.
func (r *Recorder) HistoryTrace(traceID uint64) []Event {
	var out []Event
	for _, e := range r.Snapshot() {
		if e.TraceID == traceID {
			out = append(out, e)
		}
	}
	return out
}
