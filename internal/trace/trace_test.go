package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndSnapshot(t *testing.T) {
	r := NewRecorder(64)
	r.Record(KindArrive, 1, "sum8", 100, "")
	r.Record(KindAdmit, 1, "sum8", 100, "")
	r.Record(KindComplete, 1, "sum8", 100, "ok")
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != KindArrive || evs[2].Kind != KindComplete {
		t.Errorf("order wrong: %v, %v", evs[0].Kind, evs[2].Kind)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Error("sequence numbers not increasing")
		}
	}
	if r.Len() != 3 {
		t.Errorf("len = %d", r.Len())
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 40; i++ {
		r.Record(KindArrive, uint64(i), "op", 1, "")
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("retained %d, want 16", len(evs))
	}
	if evs[0].ReqID != 24 || evs[15].ReqID != 39 {
		t.Errorf("retained window [%d, %d]", evs[0].ReqID, evs[15].ReqID)
	}
}

func TestDroppedCountsEvictions(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 16; i++ {
		r.Record(KindArrive, uint64(i), "op", 1, "")
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d before the ring wrapped, want 0", r.Dropped())
	}
	for i := 16; i < 40; i++ {
		r.Record(KindArrive, uint64(i), "op", 1, "")
	}
	if r.Dropped() != 24 {
		t.Fatalf("dropped = %d, want 24 (40 recorded, 16 retained)", r.Dropped())
	}
	var nr *Recorder
	if nr.Dropped() != 0 {
		t.Error("nil recorder Dropped != 0")
	}
	// WriteTo surfaces the eviction so operators see incompleteness.
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "24 older events dropped") {
		t.Errorf("WriteTo output missing dropped trailer:\n%s", sb.String())
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(KindArrive, 1, "x", 0, "") // must not panic
	if r.Snapshot() != nil || r.Len() != 0 {
		t.Error("nil recorder should be empty")
	}
}

func TestHistoryFiltersByRequest(t *testing.T) {
	r := NewRecorder(64)
	r.Record(KindArrive, 1, "a", 0, "")
	r.Record(KindArrive, 2, "b", 0, "")
	r.Record(KindComplete, 1, "a", 0, "")
	h := r.History(1)
	if len(h) != 2 || h[0].Kind != KindArrive || h[1].Kind != KindComplete {
		t.Fatalf("history = %+v", h)
	}
}

func TestWriteTo(t *testing.T) {
	r := NewRecorder(16)
	r.now = func() time.Time { return time.Unix(0, 0) }
	r.Record(KindInterrupt, 7, "gaussian2d", 1024, "policy flip")
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"req=7", "interrupt", "op=gaussian2d", "bytes=1024", "policy flip"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindArrive, KindAdmit, KindReject, KindStart,
		KindInterrupt, KindMigrate, KindComplete, KindCancel, KindTransform}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(KindArrive, uint64(g), "op", 1, "")
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 128 {
		t.Errorf("len = %d", r.Len())
	}
	evs := r.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("snapshot not in sequence order after concurrent writes")
		}
	}
}

func TestRecordEventFillsIdentity(t *testing.T) {
	r := NewRecorder(16)
	r.SetNode("data-3")
	if r.Node() != "data-3" {
		t.Fatalf("node = %q", r.Node())
	}
	r.RecordEvent(Event{
		Kind: KindStart, TraceID: 0xBEEF, ReqID: 5, Op: "sum8", Bytes: 4096,
		Phase: PhaseQueueWait, Dur: 3 * time.Millisecond, Predicted: 2 * time.Millisecond,
	})
	evs := r.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	e := evs[0]
	if e.Seq == 0 || e.Time.IsZero() {
		t.Errorf("seq/time not filled: %+v", e)
	}
	if e.Node != "data-3" || e.TraceID != 0xBEEF || e.Phase != PhaseQueueWait {
		t.Errorf("identity fields wrong: %+v", e)
	}
	// An explicit Node wins over the recorder's.
	r.RecordEvent(Event{Kind: KindIssue, Node: "client", ReqID: 6})
	if got := r.Snapshot()[1].Node; got != "client" {
		t.Errorf("explicit node overridden: %q", got)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	r.SetNode("data-0")
	r.RecordEvent(Event{
		Kind: KindComplete, TraceID: 7, ReqID: 1, Op: "gaussian2d", Bytes: 1 << 20,
		Phase: PhaseKernel, Dur: 10 * time.Millisecond, Predicted: 9 * time.Millisecond,
		Note: "estimator error 11%",
	})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Kind must render as its name, not a bare number.
	if !strings.Contains(buf.String(), `"kind":"complete"`) {
		t.Fatalf("kind not a string name:\n%s", buf.String())
	}
	evs, err := DecodeEvents(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("decoded %d events", len(evs))
	}
	want := r.Snapshot()[0]
	got := evs[0]
	// time.Time loses monotonic clock reading through JSON; compare instants.
	if !got.Time.Equal(want.Time) {
		t.Errorf("time = %v, want %v", got.Time, want.Time)
	}
	got.Time = want.Time
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestEncodeDecodeEvents(t *testing.T) {
	// nil encodes as an empty array, not JSON null.
	js, err := EncodeEvents(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(js) != "[]" {
		t.Fatalf("nil encoded as %q", js)
	}
	evs, err := DecodeEvents(js)
	if err != nil || len(evs) != 0 {
		t.Fatalf("decode empty array: %v, %d events", err, len(evs))
	}
	// An empty payload (absent field) decodes to no events.
	if evs, err := DecodeEvents(nil); err != nil || evs != nil {
		t.Fatalf("decode nil payload: %v, %v", err, evs)
	}
	if _, err := DecodeEvents([]byte("{not json")); err == nil {
		t.Fatal("garbage payload accepted")
	}
}

func TestHistoryTraceFiltersByTraceID(t *testing.T) {
	r := NewRecorder(64)
	r.RecordEvent(Event{Kind: KindArrive, TraceID: 1, ReqID: 10})
	r.RecordEvent(Event{Kind: KindArrive, TraceID: 2, ReqID: 11})
	r.RecordEvent(Event{Kind: KindComplete, TraceID: 1, ReqID: 10})
	h := r.HistoryTrace(1)
	if len(h) != 2 || h[0].Kind != KindArrive || h[1].Kind != KindComplete {
		t.Fatalf("history = %+v", h)
	}
	if got := r.HistoryTrace(99); len(got) != 0 {
		t.Fatalf("unknown trace returned %d events", len(got))
	}
}

func TestNilRecorderObservability(t *testing.T) {
	var r *Recorder
	r.SetNode("x") // must not panic
	if r.Node() != "" {
		t.Error("nil recorder node should be empty")
	}
	r.RecordEvent(Event{Kind: KindStart, TraceID: 1}) // must not panic
	if got := r.HistoryTrace(1); got != nil {
		t.Errorf("nil recorder history = %v", got)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("nil recorder JSON = %q, want []", buf.String())
	}
}

func TestKindJSONRoundTrip(t *testing.T) {
	for k := range kindNames {
		js, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(js, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("kind %v round-tripped to %v", k, back)
		}
	}
	// Unregistered kinds survive via the kind(N) fallback.
	js, err := json.Marshal(Kind(200))
	if err != nil {
		t.Fatal(err)
	}
	var back Kind
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back != Kind(200) {
		t.Errorf("fallback kind = %v", back)
	}
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &back); err == nil {
		t.Error("unknown kind name accepted")
	}
}
