package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndSnapshot(t *testing.T) {
	r := NewRecorder(64)
	r.Record(KindArrive, 1, "sum8", 100, "")
	r.Record(KindAdmit, 1, "sum8", 100, "")
	r.Record(KindComplete, 1, "sum8", 100, "ok")
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != KindArrive || evs[2].Kind != KindComplete {
		t.Errorf("order wrong: %v, %v", evs[0].Kind, evs[2].Kind)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Error("sequence numbers not increasing")
		}
	}
	if r.Len() != 3 {
		t.Errorf("len = %d", r.Len())
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 40; i++ {
		r.Record(KindArrive, uint64(i), "op", 1, "")
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("retained %d, want 16", len(evs))
	}
	if evs[0].ReqID != 24 || evs[15].ReqID != 39 {
		t.Errorf("retained window [%d, %d]", evs[0].ReqID, evs[15].ReqID)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(KindArrive, 1, "x", 0, "") // must not panic
	if r.Snapshot() != nil || r.Len() != 0 {
		t.Error("nil recorder should be empty")
	}
}

func TestHistoryFiltersByRequest(t *testing.T) {
	r := NewRecorder(64)
	r.Record(KindArrive, 1, "a", 0, "")
	r.Record(KindArrive, 2, "b", 0, "")
	r.Record(KindComplete, 1, "a", 0, "")
	h := r.History(1)
	if len(h) != 2 || h[0].Kind != KindArrive || h[1].Kind != KindComplete {
		t.Fatalf("history = %+v", h)
	}
}

func TestWriteTo(t *testing.T) {
	r := NewRecorder(16)
	r.now = func() time.Time { return time.Unix(0, 0) }
	r.Record(KindInterrupt, 7, "gaussian2d", 1024, "policy flip")
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"req=7", "interrupt", "op=gaussian2d", "bytes=1024", "policy flip"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindArrive, KindAdmit, KindReject, KindStart,
		KindInterrupt, KindMigrate, KindComplete, KindCancel, KindTransform}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(KindArrive, uint64(g), "op", 1, "")
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 128 {
		t.Errorf("len = %d", r.Len())
	}
	evs := r.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("snapshot not in sequence order after concurrent writes")
		}
	}
}
