package openmetrics

import (
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dosas/internal/eventlog"
	"dosas/internal/metrics"
	"dosas/internal/slo"
	"dosas/internal/telemetry"
	"dosas/internal/tenant"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildSources assembles a fully deterministic two-node exposition
// input: fixed clocks, fixed metric values, and an SLO engine driven to
// a firing state.
func buildSources(t *testing.T) []Source {
	t.Helper()
	now := time.Unix(1000, 0)
	clock := func() time.Time { now = now.Add(100 * time.Millisecond); return now }

	reg := metrics.NewRegistry()
	reg.Counter("active.arrivals").Add(42)
	reg.Counter("active.rejected").Add(3)
	reg.Gauge("data.inflight").Set(2)
	reg.Meter("rpc.frames") // never marked: rate 0, deterministic
	h := reg.Histogram("est.kernel_error_pct")
	for _, v := range []float64{1, 2, 4, 8} {
		h.Observe(v)
	}

	s := telemetry.NewSampler(telemetry.Config{Capacity: 8, Now: clock})
	depth := 0.0
	s.Register("queue.depth", func() float64 { depth += 10; return depth })
	s.Register("bounce.rate", func() float64 { return 0.25 })
	for i := 0; i < 3; i++ {
		s.Tick()
	}

	engine, err := slo.NewEngine(slo.Config{
		Rules: []slo.Rule{
			{Name: "queue-sat", Series: "queue.depth", Kind: slo.KindThreshold,
				Threshold: 5, Window: slo.Duration(10 * time.Second), Severity: "page"},
			{Name: "idle-rule", Series: "no.series", Kind: slo.KindThreshold, Threshold: 1},
		},
		Sampler: s, Node: "data-0", Now: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Eval() // queue-sat fires (For=0), idle-rule abstains

	ev, err := eventlog.New(eventlog.Config{Capacity: 2, Now: clock, Node: "data-0"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ev.Info("test", "event") // 3 overwrites
	}

	metaReg := metrics.NewRegistry()
	metaReg.Counter("meta.opens").Add(7)

	// Tenant table with hostile names: label values containing every
	// character the exposition format escapes, plus enough tenants to
	// trigger one eviction (limit 3 keeps app-a, app-b, and the dirty
	// name; "victim" folds into the (evicted) row).
	tab := tenant.NewTable(3)
	tab.Account("victim", func(st *tenant.Stats) { st.ReadOps = 1; st.BytesRead = 512 })
	tab.Account("app-a", func(st *tenant.Stats) {
		st.BytesRead = 4096
		st.ReadOps = 4
		st.ActiveOps = 2
		st.KernelNanos = 1500000
		st.QueueWaitNanos = 250000
		st.Inflight = 1
	})
	tab.Account("app-b", func(st *tenant.Stats) { st.WriteOps = 3; st.BytesWritten = 9000; st.Bounces = 1 })
	tab.Account("we\"ird\\te\nnant", func(st *tenant.Stats) { st.TruncOps = 2 })

	return []Source{
		{Node: "data-0", Role: "data", Metrics: reg, Telemetry: s, SLO: engine, Events: ev, Tenants: tab},
		{Node: "meta", Role: "meta", Metrics: metaReg},
	}
}

func TestRenderGolden(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, buildSources(t)); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("rendering drifted from golden (run with -update if intended):\n got:\n%s\nwant:\n%s", got, want)
	}
	// Determinism: a second render is byte-identical.
	var b2 strings.Builder
	if err := Render(&b2, buildSources(t)); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Error("two renders of identical state differ")
	}
}

// TestRenderIsValidOpenMetrics checks the structural rules a scraper
// relies on: one TYPE per family, every sample belongs to a declared
// family with legal suffix and sorted placement, labels are well formed,
// and the exposition ends with # EOF.
func TestRenderIsValidOpenMetrics(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, buildSources(t)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(b.String(), "\n")
	if len(lines) < 2 || lines[len(lines)-1] != "" || lines[len(lines)-2] != "# EOF" {
		t.Fatal("exposition must end with a final \"# EOF\" line")
	}
	types := map[string]string{}
	current := ""
	for _, line := range lines[:len(lines)-2] {
		if line == "" {
			t.Fatal("blank line inside exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			name, typ := parts[2], parts[3]
			if _, dup := types[name]; dup {
				t.Fatalf("family %s declared twice", name)
			}
			if typ != "counter" && typ != "gauge" && typ != "summary" {
				t.Fatalf("family %s has unknown type %q", name, typ)
			}
			if name <= current {
				t.Fatalf("families not sorted: %s after %s", name, current)
			}
			types[name], current = typ, name
			continue
		}
		// Sample line: name{labels} value
		brace := strings.IndexByte(line, '{')
		sp := strings.LastIndexByte(line, ' ')
		if brace < 0 || sp < brace {
			t.Fatalf("unparseable sample %q", line)
		}
		name := line[:brace]
		base := name
		for _, suffix := range []string{"_total", "_sum", "_count"} {
			if s := strings.TrimSuffix(name, suffix); s != name && types[s] != "" {
				base = s
			}
		}
		typ, ok := types[base]
		if !ok {
			t.Fatalf("sample %q has no TYPE declaration", line)
		}
		if base != current {
			t.Fatalf("sample %q outside its family block (current %s)", line, current)
		}
		if typ == "counter" && !strings.HasSuffix(name, "_total") {
			t.Fatalf("counter sample %q must use _total", line)
		}
		labelPart := line[brace:sp]
		if !strings.HasPrefix(labelPart, "{") || !strings.HasSuffix(labelPart, "}") {
			t.Fatalf("bad labels in %q", line)
		}
		if !strings.Contains(labelPart, `node="`) || !strings.Contains(labelPart, `role="`) {
			t.Fatalf("sample %q missing node/role labels", line)
		}
		var f float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &f); err != nil {
			t.Fatalf("sample %q has non-numeric value: %v", line, err)
		}
	}
	// Telemetry gauges present with node labels (acceptance criterion).
	out := b.String()
	if !strings.Contains(out, `dosas_telemetry{node="data-0",role="data",series="queue.depth"}`) {
		t.Error("telemetry series gauge with node label missing")
	}
	if !strings.Contains(out, `dosas_slo_alert{node="data-0",role="data",rule="queue-sat",severity="page"} 2`) {
		t.Error("firing slo alert gauge missing")
	}
	if !strings.Contains(out, `dosas_events_dropped_total{node="data-0",role="data"} 3`) {
		t.Error("event drop counter missing")
	}
	// Tenant usage family: resource-labelled samples, with hostile tenant
	// names escaped per the exposition spec.
	if !strings.Contains(out, `dosas_tenant{node="data-0",role="data",tenant="app-a",resource="bytes_read"} 4096`) {
		t.Error("tenant bytes_read sample missing")
	}
	if !strings.Contains(out, `dosas_tenant{node="data-0",role="data",tenant="we\"ird\\te\nnant",resource="trunc_ops"} 2`) {
		t.Error("escaped dirty tenant name sample missing")
	}
	if !strings.Contains(out, `tenant="(evicted)"`) {
		t.Error("evicted fold row missing from tenant family")
	}
	if !strings.Contains(out, `dosas_tenant_evicted_total{node="data-0",role="data"} 1`) {
		t.Error("tenant eviction counter missing")
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(Handler(func() []Source { return buildSources(t) }))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(body), "# EOF\n") {
		t.Error("served exposition missing # EOF terminator")
	}
}

func TestMetricName(t *testing.T) {
	cases := map[string]string{
		"active.arrivals":  "dosas_active_arrivals",
		"est-error":        "dosas_est_error",
		"rpc.frames_total": "dosas_rpc_frames_total",
	}
	for in, want := range cases {
		if got := metricName(in); got != want {
			t.Errorf("metricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("escapeLabel = %q", got)
	}
}
