// Package openmetrics renders the repo's internal metrics registries,
// telemetry rings, and SLO alert states as the OpenMetrics/Prometheus
// text exposition format, served on /metrics from every daemon's
// pprofserve mux. Rendering is byte-deterministic for a given input —
// families and samples are emitted in sorted order — so the format is
// golden-tested and scrape diffs are meaningful.
//
// Naming: every family is prefixed dosas_ and internal dotted names map
// to underscores (active.arrivals → dosas_active_arrivals_total).
// Counters get the _total suffix, meters export their 1s-window rate as
// a gauge with a _rate suffix, histograms export as summaries (quantile
// samples plus _sum and _count). Every sample carries node and role
// labels; the latest telemetry-ring samples are one dosas_telemetry
// family keyed by a series label.
package openmetrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"dosas/internal/eventlog"
	"dosas/internal/metrics"
	"dosas/internal/slo"
	"dosas/internal/telemetry"
	"dosas/internal/tenant"
)

// ContentType is the OpenMetrics media type served on /metrics.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Source is one node's exposable state. Nil fields are skipped, so a
// daemon exposes whatever subset it has.
type Source struct {
	// Node and Role label every sample ("data-0"/"data", "meta"/"meta",
	// "client"/"client").
	Node string
	Role string
	// Metrics is the node's counter/gauge/meter/histogram registry.
	Metrics *metrics.Registry
	// Telemetry contributes each ring's latest sample and the rings'
	// cumulative overwrite count.
	Telemetry *telemetry.Sampler
	// SLO contributes per-rule alert-state gauges.
	SLO *slo.Engine
	// Events contributes the event ring's overwrite count.
	Events *eventlog.Log
	// Tenants contributes the dosas_tenant{tenant,resource} usage family
	// and the tenant-table eviction count. Label cardinality is bounded
	// by the table itself (LRU-evicted past its limit).
	Tenants *tenant.Table
}

// family is one metric family: a TYPE declaration plus sorted samples.
type family struct {
	typ     string // "counter", "gauge", "summary"
	help    string
	samples []sample
}

type sample struct {
	// suffix is appended to the family name ("_total", "_sum", "").
	suffix string
	labels string // rendered "{k=\"v\",...}" form, sort key within a family
	value  string
}

// Render writes the exposition of every source, terminated by the
// required "# EOF" line.
func Render(w io.Writer, sources []Source) error {
	fams := make(map[string]*family)
	add := func(name, typ, help string, s sample) {
		f, ok := fams[name]
		if !ok {
			f = &family{typ: typ, help: help}
			fams[name] = f
		}
		f.samples = append(f.samples, s)
	}
	for _, src := range sources {
		collect(src, add)
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		sort.SliceStable(f.samples, func(i, j int) bool {
			if f.samples[i].labels != f.samples[j].labels {
				return f.samples[i].labels < f.samples[j].labels
			}
			return f.samples[i].suffix < f.samples[j].suffix
		})
		for _, s := range f.samples {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", name, s.suffix, s.labels, s.value); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func collect(src Source, add func(name, typ, help string, s sample)) {
	base := labels{{"node", src.Node}, {"role", src.Role}}
	if src.Metrics != nil {
		snap := src.Metrics.Snapshot()
		for name, v := range snap.Counters {
			add(metricName(name), "counter", "", sample{
				suffix: "_total", labels: base.render(), value: strconv.FormatInt(v, 10)})
		}
		for name, v := range snap.Gauges {
			add(metricName(name), "gauge", "", sample{
				labels: base.render(), value: strconv.FormatInt(v, 10)})
		}
		for name, v := range snap.Meters {
			add(metricName(name)+"_rate", "gauge", "", sample{
				labels: base.render(), value: formatFloat(v)})
		}
		for name, h := range snap.Histograms {
			fam := metricName(name)
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
				add(fam, "summary", "", sample{
					labels: base.with("quantile", q.q).render(), value: formatFloat(q.v)})
			}
			add(fam, "summary", "", sample{suffix: "_count",
				labels: base.render(), value: strconv.FormatInt(h.Count, 10)})
			add(fam, "summary", "", sample{suffix: "_sum",
				labels: base.render(), value: formatFloat(h.Mean * float64(h.Count))})
		}
	}
	if src.Telemetry != nil {
		for _, ser := range src.Telemetry.Snapshot(0) {
			if len(ser.Points) == 0 {
				continue
			}
			add("dosas_telemetry", "gauge",
				"Latest sample of each per-node telemetry series.", sample{
					labels: base.with("series", ser.Name).render(),
					value:  formatFloat(ser.Last().Value)})
		}
		add("dosas_telemetry_dropped", "counter",
			"Telemetry ring samples overwritten before being fetched.", sample{
				suffix: "_total", labels: base.render(),
				value: strconv.FormatUint(src.Telemetry.Dropped(), 10)})
	}
	if src.SLO != nil {
		for _, a := range src.SLO.Alerts() {
			add("dosas_slo_alert", "gauge",
				"Alert rule state: 0 inactive, 1 pending, 2 firing, 3 resolved.", sample{
					labels: base.with("rule", a.Rule).with("severity", a.Severity).render(),
					value:  strconv.Itoa(stateCode(a.State))})
		}
		add("dosas_slo_firing", "gauge", "Number of alert rules currently firing.", sample{
			labels: base.render(), value: strconv.Itoa(src.SLO.Firing())})
	}
	if src.Events != nil {
		add("dosas_events_dropped", "counter",
			"Event-ring entries overwritten before being fetched.", sample{
				suffix: "_total", labels: base.render(),
				value: strconv.FormatUint(src.Events.Dropped(), 10)})
	}
	if src.Tenants != nil {
		for _, u := range src.Tenants.Snapshot() {
			tl := base.with("tenant", u.Tenant)
			for _, r := range []struct {
				resource string
				value    uint64
			}{
				{"bytes_read", u.BytesRead},
				{"bytes_written", u.BytesWritten},
				{"read_ops", u.ReadOps},
				{"write_ops", u.WriteOps},
				{"trunc_ops", u.TruncOps},
				{"active_ops", u.ActiveOps},
				{"transform_ops", u.TransformOps},
				{"kernel_ns", u.KernelNanos},
				{"bounces", u.Bounces},
				{"interrupts", u.Interrupts},
				{"queue_wait_ns", u.QueueWaitNanos},
			} {
				if r.value == 0 {
					continue // keep the exposition to resources the tenant touched
				}
				add("dosas_tenant", "gauge",
					"Per-tenant cumulative resource usage, by resource label.", sample{
						labels: tl.with("resource", r.resource).render(),
						value:  strconv.FormatUint(r.value, 10)})
			}
			for _, g := range []struct {
				resource string
				value    int64
			}{{"queued", u.Queued}, {"inflight", u.Inflight}} {
				if g.value == 0 {
					continue
				}
				add("dosas_tenant", "gauge",
					"Per-tenant cumulative resource usage, by resource label.", sample{
						labels: tl.with("resource", g.resource).render(),
						value:  strconv.FormatInt(g.value, 10)})
			}
		}
		add("dosas_tenant_evicted", "counter",
			"Tenants folded into the (evicted) aggregate when the table overflowed.", sample{
				suffix: "_total", labels: base.render(),
				value: strconv.FormatUint(src.Tenants.Evictions(), 10)})
	}
}

func stateCode(s slo.State) int {
	switch s {
	case slo.StatePending:
		return 1
	case slo.StateFiring:
		return 2
	case slo.StateResolved:
		return 3
	}
	return 0
}

// labels is an ordered label list; with() copies so bases are reusable.
type labels []struct{ k, v string }

func (l labels) with(k, v string) labels {
	out := make(labels, len(l), len(l)+1)
	copy(out, l)
	return append(out, struct{ k, v string }{k, v})
}

func (l labels) render() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range l {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// metricName maps an internal dotted metric name to its exposition
// family name: dosas_ prefix, dots and dashes to underscores.
func metricName(name string) string {
	var b strings.Builder
	b.WriteString("dosas_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders sample values deterministically; integral floats
// render without an exponent or trailing zeros.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the exposition of sources() with the OpenMetrics
// content type — the /metrics endpoint.
func Handler(sources func() []Source) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		Render(w, sources())
	})
}
