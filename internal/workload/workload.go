// Package workload generates the synthetic datasets and request streams
// the examples and benchmarks run against. The paper's evaluation uses
// opaque benchmark data; these generators produce data with realistic
// structure for each kernel's domain — smooth grayscale imagery for the
// Gaussian filter (medical imaging / GIS, per the paper's motivation),
// autocorrelated float series for climate-style reductions, and word-like
// text for the counting kernels.
package workload

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
)

// SyntheticImage produces a w×h 8-bit grayscale image: a smooth
// low-frequency field (tissue/terrain) with additive noise, the kind of
// input a 2-D Gaussian filter exists to denoise.
func SyntheticImage(w, h int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	img := make([]byte, w*h)
	// Random low-frequency components.
	fx := 2 * math.Pi / float64(w) * (1 + rng.Float64()*3)
	fy := 2 * math.Pi / float64(h) * (1 + rng.Float64()*3)
	px := rng.Float64() * 2 * math.Pi
	py := rng.Float64() * 2 * math.Pi
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := 128 +
				60*math.Sin(float64(x)*fx+px)*math.Cos(float64(y)*fy+py) +
				20*math.Sin(float64(x+y)*fx*0.5)
			noisy := base + rng.NormFloat64()*12
			if noisy < 0 {
				noisy = 0
			}
			if noisy > 255 {
				noisy = 255
			}
			img[y*w+x] = uint8(noisy)
		}
	}
	return img
}

// FloatSeries produces n float64 samples of an autocorrelated signal —
// trend + seasonal cycle + AR(1) noise — resembling a climate-model
// variable (e.g. surface temperature anomalies).
func FloatSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	ar := 0.0
	trend := rng.Float64() * 0.001
	season := 2 * math.Pi / (365.25)
	for i := range out {
		ar = 0.9*ar + rng.NormFloat64()*0.5
		out[i] = 15 + trend*float64(i) + 8*math.Sin(float64(i)*season) + ar
	}
	return out
}

// Float64Bytes encodes samples as the little-endian stream the float
// kernels consume.
func Float64Bytes(samples []float64) []byte {
	out := make([]byte, len(samples)*8)
	for i, v := range samples {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// wordStems are combined into pseudo-words for TextCorpus.
var wordStems = []string{
	"data", "node", "storage", "active", "kernel", "stripe", "queue",
	"filter", "gauss", "sum", "flux", "grid", "mesh", "tile", "block",
	"shard", "probe", "trace", "event", "cycle", "phase", "epoch",
}

// TextCorpus produces roughly size bytes of whitespace-separated
// word-like text for the count/wordcount kernels.
func TextCorpus(size int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, size+16)
	for len(out) < size {
		stem := wordStems[rng.Intn(len(wordStems))]
		out = append(out, stem...)
		if rng.Intn(4) == 0 {
			out = append(out, wordStems[rng.Intn(len(wordStems))]...)
		}
		if rng.Intn(12) == 0 {
			out = append(out, '\n')
		} else {
			out = append(out, ' ')
		}
	}
	return out[:size]
}

// RandomBytes produces size bytes of seeded pseudo-random data.
func RandomBytes(size int, seed int64) []byte {
	out := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(out)
	return out
}

// Request is one element of a generated request stream.
type Request struct {
	// ArrivalOffset is the request's arrival time relative to stream
	// start, in seconds.
	ArrivalOffset float64
	// Active marks an active I/O request (vs a plain read).
	Active bool
	// Op is the kernel for active requests.
	Op string
	// Bytes is the request size.
	Bytes uint64
	// App identifies which simulated application issued it.
	App int
}

// StreamConfig parameterises a multi-application request mix — the
// scenario of the paper's Figure 1, where several applications' normal
// and active I/O converge on the same storage node.
type StreamConfig struct {
	// Apps is the number of concurrent applications.
	Apps int
	// RequestsPerApp is how many requests each application issues.
	RequestsPerApp int
	// ActiveFraction is the probability a request is active I/O.
	ActiveFraction float64
	// Ops is the kernel population for active requests (uniform draw).
	Ops []string
	// MeanInterarrival is the per-app exponential inter-arrival mean in
	// seconds (0 = all requests at time zero).
	MeanInterarrival float64
	// MinBytes/MaxBytes bound uniformly drawn request sizes.
	MinBytes, MaxBytes uint64
	// Seed makes the stream reproducible.
	Seed int64
}

// Stream generates the merged, arrival-ordered request stream.
func Stream(cfg StreamConfig) []Request {
	if cfg.Apps <= 0 {
		cfg.Apps = 1
	}
	if cfg.RequestsPerApp <= 0 {
		cfg.RequestsPerApp = 1
	}
	if len(cfg.Ops) == 0 {
		cfg.Ops = []string{"sum8"}
	}
	if cfg.MinBytes == 0 {
		cfg.MinBytes = 1 << 20
	}
	if cfg.MaxBytes < cfg.MinBytes {
		cfg.MaxBytes = cfg.MinBytes
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Request
	for app := 0; app < cfg.Apps; app++ {
		t := 0.0
		for i := 0; i < cfg.RequestsPerApp; i++ {
			if cfg.MeanInterarrival > 0 {
				t += rng.ExpFloat64() * cfg.MeanInterarrival
			}
			span := cfg.MaxBytes - cfg.MinBytes
			var size uint64
			if span == 0 {
				size = cfg.MinBytes
			} else {
				size = cfg.MinBytes + uint64(rng.Int63n(int64(span+1)))
			}
			out = append(out, Request{
				ArrivalOffset: t,
				Active:        rng.Float64() < cfg.ActiveFraction,
				Op:            cfg.Ops[rng.Intn(len(cfg.Ops))],
				Bytes:         size,
				App:           app,
			})
		}
	}
	// Merge the per-app streams by arrival time.
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].ArrivalOffset < out[j].ArrivalOffset
	})
	return out
}
