package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSyntheticImageShapeAndDeterminism(t *testing.T) {
	a := SyntheticImage(64, 32, 7)
	if len(a) != 64*32 {
		t.Fatalf("len = %d", len(a))
	}
	b := SyntheticImage(64, 32, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different images")
		}
	}
	c := SyntheticImage(64, 32, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}

func TestSyntheticImageHasStructure(t *testing.T) {
	// A structured image is smoother than white noise: neighbouring
	// pixels must correlate.
	const w, h = 128, 128
	img := SyntheticImage(w, h, 1)
	var diffSum, n float64
	for y := 0; y < h; y++ {
		for x := 1; x < w; x++ {
			d := float64(img[y*w+x]) - float64(img[y*w+x-1])
			diffSum += d * d
			n++
		}
	}
	rmsStep := math.Sqrt(diffSum / n)
	// White noise over [0,255] would give an RMS step of ~100; the
	// generator must sit far below that.
	if rmsStep > 40 {
		t.Errorf("RMS neighbour step = %.1f, image looks like white noise", rmsStep)
	}
}

func TestFloatSeries(t *testing.T) {
	s := FloatSeries(10_000, 3)
	if len(s) != 10_000 {
		t.Fatalf("len = %d", len(s))
	}
	var sum float64
	for _, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite sample")
		}
		sum += v
	}
	mean := sum / float64(len(s))
	// Centred around the 15-degree baseline.
	if mean < 5 || mean > 25 {
		t.Errorf("mean = %.2f, expected near 15", mean)
	}
}

func TestFloat64BytesRoundTrip(t *testing.T) {
	raw := Float64Bytes([]float64{1.5, -2.5})
	if len(raw) != 16 {
		t.Fatalf("len = %d", len(raw))
	}
}

func TestTextCorpus(t *testing.T) {
	text := TextCorpus(10_000, 5)
	if len(text) != 10_000 {
		t.Fatalf("len = %d", len(text))
	}
	spaces := 0
	for _, b := range text {
		if b == ' ' || b == '\n' {
			spaces++
		}
	}
	if spaces == 0 {
		t.Fatal("corpus has no separators")
	}
	// Word-like: separators are a modest fraction, not the majority.
	if frac := float64(spaces) / float64(len(text)); frac > 0.5 {
		t.Errorf("separator fraction = %.2f", frac)
	}
}

func TestStreamProperties(t *testing.T) {
	f := func(seed int64, apps8, per8 uint8, frac uint8) bool {
		cfg := StreamConfig{
			Apps:             int(apps8)%5 + 1,
			RequestsPerApp:   int(per8)%20 + 1,
			ActiveFraction:   float64(frac%101) / 100,
			Ops:              []string{"sum8", "gaussian2d"},
			MeanInterarrival: 0.5,
			MinBytes:         1 << 10,
			MaxBytes:         1 << 20,
			Seed:             seed,
		}
		reqs := Stream(cfg)
		if len(reqs) != cfg.Apps*cfg.RequestsPerApp {
			return false
		}
		for i, r := range reqs {
			if i > 0 && r.ArrivalOffset < reqs[i-1].ArrivalOffset {
				return false // must be arrival-ordered
			}
			if r.Bytes < cfg.MinBytes || r.Bytes > cfg.MaxBytes {
				return false
			}
			if r.App < 0 || r.App >= cfg.Apps {
				return false
			}
			if r.Op != "sum8" && r.Op != "gaussian2d" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamActiveFractionExtremes(t *testing.T) {
	all := Stream(StreamConfig{Apps: 2, RequestsPerApp: 50, ActiveFraction: 1, Seed: 1})
	for _, r := range all {
		if !r.Active {
			t.Fatal("ActiveFraction=1 produced a normal request")
		}
	}
	none := Stream(StreamConfig{Apps: 2, RequestsPerApp: 50, ActiveFraction: 0, Seed: 1})
	for _, r := range none {
		if r.Active {
			t.Fatal("ActiveFraction=0 produced an active request")
		}
	}
}

func TestStreamZeroInterarrivalIsSimultaneous(t *testing.T) {
	reqs := Stream(StreamConfig{Apps: 3, RequestsPerApp: 4, Seed: 2})
	for _, r := range reqs {
		if r.ArrivalOffset != 0 {
			t.Fatalf("offset = %v", r.ArrivalOffset)
		}
	}
}

func TestStreamDefaults(t *testing.T) {
	reqs := Stream(StreamConfig{Seed: 9})
	if len(reqs) != 1 || reqs[0].Op != "sum8" || reqs[0].Bytes != 1<<20 {
		t.Fatalf("defaults = %+v", reqs)
	}
}
