package transport

import (
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// pipeBufSize is the per-direction buffer of an in-process pipe. Writes
// beyond it block until the reader drains, which preserves backpressure —
// important because the shaper and the pfs flow control both rely on it.
const pipeBufSize = 256 << 10

// Pipe returns the two ends of a buffered, full-duplex in-memory
// connection. Unlike net.Pipe it is asynchronous: writes complete as soon
// as they fit in the buffer, which matches socket semantics closely enough
// for protocol code to be tested against it.
func Pipe(addr string) (client, server net.Conn) {
	ab := newHalf()
	ba := newHalf()
	c := &pipeConn{rd: ba, wr: ab, local: pipeAddr("client->" + addr), remote: pipeAddr(addr)}
	s := &pipeConn{rd: ab, wr: ba, local: pipeAddr(addr), remote: pipeAddr("client->" + addr)}
	return c, s
}

// half is one direction of a pipe: a ring buffer with blocking reads and
// writes, close semantics, and per-direction deadlines.
type half struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte
	start    int // index of first unread byte
	n        int // bytes buffered
	wclosed  bool
	rclosed  bool
	deadline time.Time // read deadline (set on the reading side)
	wdead    time.Time // write deadline (set on the writing side)
}

func newHalf() *half {
	h := &half{buf: make([]byte, pipeBufSize)}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *half) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for h.n == 0 {
		if h.rclosed {
			return 0, io.ErrClosedPipe
		}
		if h.wclosed {
			return 0, io.EOF
		}
		if !h.deadline.IsZero() && !time.Now().Before(h.deadline) {
			return 0, os.ErrDeadlineExceeded
		}
		h.waitLocked(h.deadline)
	}
	n := copy(p, h.window())
	h.start = (h.start + n) % len(h.buf)
	h.n -= n
	h.cond.Broadcast()
	return n, nil
}

// window returns the contiguous readable region starting at start.
func (h *half) window() []byte {
	end := h.start + h.n
	if end > len(h.buf) {
		end = len(h.buf)
	}
	return h.buf[h.start:end]
}

func (h *half) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var written int
	for len(p) > 0 {
		if h.wclosed || h.rclosed {
			return written, io.ErrClosedPipe
		}
		if !h.wdead.IsZero() && !time.Now().Before(h.wdead) {
			return written, os.ErrDeadlineExceeded
		}
		free := len(h.buf) - h.n
		if free == 0 {
			h.waitLocked(h.wdead)
			continue
		}
		// Copy into at most two contiguous regions of the ring.
		pos := (h.start + h.n) % len(h.buf)
		span := len(h.buf) - pos
		if span > free {
			span = free
		}
		k := copy(h.buf[pos:pos+span], p)
		h.n += k
		p = p[k:]
		written += k
		h.cond.Broadcast()
	}
	return written, nil
}

// waitLocked blocks on the condition variable, waking early when a deadline
// is set. The extra goroutine per timed wait is acceptable: deadlines are
// rare on the in-process transport (tests only).
func (h *half) waitLocked(deadline time.Time) {
	if deadline.IsZero() {
		h.cond.Wait()
		return
	}
	t := time.AfterFunc(time.Until(deadline), func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	h.cond.Wait()
	t.Stop()
}

func (h *half) closeWrite() {
	h.mu.Lock()
	h.wclosed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *half) closeRead() {
	h.mu.Lock()
	h.rclosed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *half) setReadDeadline(t time.Time) {
	h.mu.Lock()
	h.deadline = t
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *half) setWriteDeadline(t time.Time) {
	h.mu.Lock()
	h.wdead = t
	h.cond.Broadcast()
	h.mu.Unlock()
}

type pipeConn struct {
	rd, wr        *half
	local, remote pipeAddr
	closeOnce     sync.Once
}

func (c *pipeConn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *pipeConn) Write(p []byte) (int, error) { return c.wr.write(p) }

func (c *pipeConn) Close() error {
	c.closeOnce.Do(func() {
		c.wr.closeWrite()
		c.rd.closeRead()
	})
	return nil
}

func (c *pipeConn) LocalAddr() net.Addr  { return c.local }
func (c *pipeConn) RemoteAddr() net.Addr { return c.remote }

func (c *pipeConn) SetDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	c.wr.setWriteDeadline(t)
	return nil
}

func (c *pipeConn) SetReadDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	return nil
}

func (c *pipeConn) SetWriteDeadline(t time.Time) error {
	c.wr.setWriteDeadline(t)
	return nil
}

type pipeAddr string

func (pipeAddr) Network() string  { return "inproc" }
func (a pipeAddr) String() string { return string(a) }
