package transport

import (
	"fmt"
	"net"
	"sync"
)

// Inproc is an in-process Network: every Listen registers a name in a
// shared table and Dial connects through a buffered duplex pipe. It lets an
// entire DOSAS cluster — metadata server, storage servers, many clients —
// run inside one test binary with no sockets, which keeps integration tests
// hermetic and fast.
//
// The zero value is ready to use; distinct Inproc values are distinct
// networks.
type Inproc struct {
	mu     sync.Mutex
	tab    map[string]*inprocListener
	nextID int
}

// NewInproc returns an empty in-process network.
func NewInproc() *Inproc { return &Inproc{} }

// Listen registers addr. An empty addr picks a fresh unique name.
func (n *Inproc) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.tab == nil {
		n.tab = make(map[string]*inprocListener)
	}
	if addr == "" {
		n.nextID++
		addr = fmt.Sprintf("inproc-%d", n.nextID)
	}
	if _, ok := n.tab[addr]; ok {
		return nil, fmt.Errorf("transport: inproc address %q already bound", addr)
	}
	l := &inprocListener{
		net:     n,
		addr:    addr,
		backlog: make(chan net.Conn, 64),
		done:    make(chan struct{}),
	}
	n.tab[addr] = l
	return l, nil
}

// Dial connects to a registered addr.
func (n *Inproc) Dial(addr string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.tab[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: inproc dial %q: no listener", addr)
	}
	client, server := Pipe(addr)
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (n *Inproc) unbind(addr string) {
	n.mu.Lock()
	delete(n.tab, addr)
	n.mu.Unlock()
}

type inprocListener struct {
	net     *Inproc
	addr    string
	backlog chan net.Conn
	done    chan struct{}
	once    sync.Once
}

func (l *inprocListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.unbind(l.addr)
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }
