package transport

import (
	"io"
	"net"
	"testing"
)

// benchPipe measures raw throughput of the in-process buffered pipe.
func BenchmarkPipeThroughput(b *testing.B) {
	c, s := Pipe("bench")
	defer c.Close()
	const chunk = 64 << 10
	go func() {
		buf := make([]byte, chunk)
		for {
			if _, err := s.Read(buf); err != nil {
				return
			}
		}
	}()
	payload := make([]byte, chunk)
	b.SetBytes(chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInprocDialRoundTrip(b *testing.B) {
	n := NewInproc()
	l, err := n.Listen("bench-server")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				io.Copy(c, c)
				c.Close()
			}(c)
		}
	}()
	msg := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := n.Dial("bench-server")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Write(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(c, msg); err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

func BenchmarkShapedOverhead(b *testing.B) {
	// Shaping at an effectively unlimited rate measures the shaper's
	// bookkeeping cost alone.
	n := NewShaped(NewInproc(), 1e12)
	l, err := n.Listen("shaped-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 64<<10)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	c, err := n.Dial("shaped-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
}
