package transport

import (
	"io"
	"sync"
	"testing"
	"time"
)

// echoAccept runs a one-shot echo server on l.
func echoAccept(t *testing.T, l Listener) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 256)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	return &wg
}

func TestDelayedEchoCorrectness(t *testing.T) {
	net := NewDelayed(NewInproc(), time.Millisecond)
	l, err := net.Listen("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	wg := echoAccept(t, l)
	c, err := net.Dial("echo")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		msg := []byte("ping-pong payload")
		if _, err := c.Write(msg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(c, got); err != nil {
			t.Fatal(err)
		}
		if string(got) != string(msg) {
			t.Fatalf("round %d: echoed %q", i, got)
		}
	}
	c.Close()
	wg.Wait()
}

// Each request/response round trip must cost at least two one-way delays;
// that is the physics the windowed data path amortises.
func TestDelayedRoundTripCostsTwoDelays(t *testing.T) {
	const oneWay = 5 * time.Millisecond
	net := NewDelayed(NewInproc(), oneWay)
	l, err := net.Listen("rtt")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	wg := echoAccept(t, l)
	c, err := net.Dial("rtt")
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 4
	start := time.Now()
	one := []byte{0x42}
	for i := 0; i < rounds; i++ {
		if _, err := c.Write(one); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(c, one); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if min := rounds * 2 * oneWay; elapsed < min {
		t.Fatalf("%d serial round trips took %v, want >= %v", rounds, elapsed, min)
	}
	c.Close()
	wg.Wait()
}

// Write must copy its argument: the wire layer recycles frame buffers the
// moment WriteMessage returns, while the delayed conn is still holding
// the bytes in its queue.
func TestDelayedWriteCopiesBuffer(t *testing.T) {
	net := NewDelayed(NewInproc(), 3*time.Millisecond)
	l, err := net.Listen("copy")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	wg := echoAccept(t, l)
	c, err := net.Dial("copy")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("original-bytes")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	copy(msg, "CLOBBERED!!!!!") // caller reuses its buffer immediately
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "original-bytes" {
		t.Fatalf("delayed write leaked caller buffer reuse: got %q", got)
	}
	c.Close()
	wg.Wait()
}

func TestDelayedZeroDelayPassesThrough(t *testing.T) {
	inner := NewInproc()
	net := NewDelayed(inner, 0)
	l, err := net.Listen("zero")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	wg := echoAccept(t, l)
	c, err := net.Dial("zero")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*delayedConn); ok {
		t.Fatal("zero delay should not wrap the conn")
	}
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := io.ReadFull(c, one); err != nil {
		t.Fatal(err)
	}
	c.Close()
	wg.Wait()
}

func TestDelayedWriteAfterCloseFails(t *testing.T) {
	net := NewDelayed(NewInproc(), time.Millisecond)
	l, err := net.Listen("closed")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go l.Accept() //nolint:errcheck
	c, err := net.Dial("closed")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Write([]byte("late")); err == nil {
		t.Fatal("write after close succeeded")
	}
}
