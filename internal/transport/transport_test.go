package transport

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestInprocDialListen(t *testing.T) {
	n := NewInproc()
	l, err := n.Listen("node-a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := n.Dial("node-a")
		if err != nil {
			t.Error(err)
			return
		}
		c.Write([]byte("hi"))
		c.Close()
	}()
	s, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hi" {
		t.Fatalf("got %q", buf)
	}
}

func TestInprocDialUnknownFails(t *testing.T) {
	n := NewInproc()
	if _, err := n.Dial("ghost"); err == nil {
		t.Fatal("expected error")
	}
}

func TestInprocDuplicateBindFails(t *testing.T) {
	n := NewInproc()
	l, err := n.Listen("dup")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := n.Listen("dup"); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
}

func TestInprocCloseUnbinds(t *testing.T) {
	n := NewInproc()
	l, _ := n.Listen("x")
	l.Close()
	if _, err := n.Dial("x"); err == nil {
		t.Fatal("dial after close succeeded")
	}
	// Rebinding a closed address must work.
	l2, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
}

func TestInprocAutoName(t *testing.T) {
	n := NewInproc()
	l1, _ := n.Listen("")
	l2, _ := n.Listen("")
	if l1.Addr() == l2.Addr() || l1.Addr() == "" {
		t.Fatalf("auto names: %q, %q", l1.Addr(), l2.Addr())
	}
}

func TestAcceptAfterCloseFails(t *testing.T) {
	n := NewInproc()
	l, _ := n.Listen("y")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	l.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// Property: any byte sequence survives a pipe transfer, under any chunking.
func TestPipeDataIntegrityProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%(3*pipeBufSize/2)+1)
		rng.Read(data)
		c, s := Pipe("t")
		go func() {
			rest := data
			for len(rest) > 0 {
				k := rng.Intn(len(rest)) + 1
				if _, err := c.Write(rest[:k]); err != nil {
					return
				}
				rest = rest[k:]
			}
			c.Close()
		}()
		got, err := io.ReadAll(s)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeBackpressure(t *testing.T) {
	c, s := Pipe("bp")
	big := make([]byte, pipeBufSize*2)
	wrote := make(chan struct{})
	go func() {
		c.Write(big)
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("write of 2x buffer completed without a reader")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := io.ReadFull(s, make([]byte, len(big))); err != nil {
		t.Fatal(err)
	}
	<-wrote
}

func TestPipeCloseGivesEOF(t *testing.T) {
	c, s := Pipe("eof")
	c.Write([]byte("tail"))
	c.Close()
	got, err := io.ReadAll(s)
	if err != nil || string(got) != "tail" {
		t.Fatalf("got %q, %v", got, err)
	}
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

func TestPipeReadDeadline(t *testing.T) {
	_, s := Pipe("dl")
	s.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := s.Read(make([]byte, 1))
	if err != os.ErrDeadlineExceeded {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline massively overshot")
	}
	// Clearing the deadline restores normal blocking reads.
	s.SetReadDeadline(time.Time{})
}

func TestShapedRateIsEnforced(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const rate = 4 << 20 // 4 MB/s
	n := NewShaped(NewInproc(), rate)
	l, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const payload = 2 << 20 // 2 MB → ≥ ~0.5 s at 4 MB/s
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		c.Write(make([]byte, payload))
		c.Close()
	}()
	c, err := n.Dial("server")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := io.ReadAll(c)
	if err != nil || len(got) != payload {
		t.Fatalf("read %d, %v", len(got), err)
	}
	elapsed := time.Since(start).Seconds()
	ideal := float64(payload) / rate
	if elapsed < ideal*0.6 {
		t.Errorf("transfer took %.3fs, faster than the %.3fs the shaper should allow", elapsed, ideal)
	}
	if elapsed > ideal*3 {
		t.Errorf("transfer took %.3fs, far slower than ideal %.3fs", elapsed, ideal)
	}
}

func TestShapedLinkIsSharedAcrossConns(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const rate = 8 << 20
	const payload = 1 << 20
	const clients = 4
	n := NewShaped(NewInproc(), rate)
	l, err := n.Listen("shared")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				c.Write(make([]byte, payload))
				c.Close()
			}(c)
		}
	}()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := n.Dial("shared")
			if err != nil {
				t.Error(err)
				return
			}
			io.ReadAll(c)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	// 4 MB total through an 8 MB/s shared link ≥ ~0.5 s. If each conn had
	// its own bucket it would finish in ~0.125 s.
	if elapsed < 0.3 {
		t.Errorf("4 clients finished in %.3fs: the link bucket is not shared", elapsed)
	}
}

func TestTCPTransport(t *testing.T) {
	var n TCP
	l, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(c, c)
		c.Close()
	}()
	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("echo me")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q", buf)
	}
}
