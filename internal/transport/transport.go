// Package transport abstracts how DOSAS nodes reach each other. The pfs and
// core layers speak wire messages over net.Conn values obtained here, so a
// cluster can run over real TCP between processes, over an in-process
// network inside one test binary, or over either of those wrapped in a
// token-bucket shaper that emulates a slower physical link (the paper's
// 118 MB/s Gigabit Ethernet).
package transport

import (
	"errors"
	"net"
)

// ErrClosed is returned by operations on a closed listener or network.
var ErrClosed = errors.New("transport: closed")

// Listener accepts inbound connections for one node address.
type Listener interface {
	// Accept blocks until a peer connects or the listener closes.
	Accept() (net.Conn, error)
	// Close releases the address. Pending Accepts fail with ErrClosed.
	Close() error
	// Addr returns the bound address in the network's own format.
	Addr() string
}

// Network creates listeners and dials peers. Implementations must be safe
// for concurrent use.
type Network interface {
	// Listen binds addr. For TCP, addr is host:port (":0" picks a port,
	// recoverable from Addr). For the in-process network, addr is any
	// non-empty string key ("" picks a fresh unique name).
	Listen(addr string) (Listener, error)
	// Dial connects to a listening addr.
	Dial(addr string) (net.Conn, error)
}

// TCP is the production transport: plain TCP sockets.
type TCP struct{}

// Listen binds a TCP address.
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{l}, nil
}

// Dial connects to a TCP address.
func (TCP) Dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}

type tcpListener struct{ net.Listener }

func (l tcpListener) Addr() string { return l.Listener.Addr().String() }
