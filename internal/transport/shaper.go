package transport

import (
	"net"
	"sync"
	"time"
)

// Shaped wraps an inner Network so that all traffic through each listening
// node's connections shares a token bucket of rate bytes/second. This
// emulates the physical NIC of a storage node: when 16 clients pull stripes
// from one server concurrently, they split the server's link — exactly the
// contention the paper measures on its 1 GbE Discfarm network (118 MB/s).
//
// Shaping is applied on the listener side in both directions, because the
// experiments' bottleneck link is always the storage node's NIC (many
// compute nodes per storage node); the dialing side passes through
// unshaped.
type Shaped struct {
	inner Network
	rate  float64 // bytes per second per listening node
	burst float64 // bucket capacity in bytes

	mu      sync.Mutex
	buckets map[string]*bucket // one per listener address
}

// NewShaped wraps inner with per-listener shaping at rate bytes/second.
// Rate must be positive.
func NewShaped(inner Network, rate float64) *Shaped {
	if rate <= 0 {
		panic("transport: non-positive shaping rate")
	}
	return &Shaped{
		inner: inner,
		rate:  rate,
		// A ~20 ms burst keeps small control messages cheap while bulk
		// transfers converge to the configured rate quickly.
		burst:   rate * 0.02,
		buckets: make(map[string]*bucket),
	}
}

// Rate returns the configured per-node link rate in bytes/second.
func (s *Shaped) Rate() float64 { return s.rate }

// Listen binds addr on the inner network and attaches a shared bucket.
func (s *Shaped) Listen(addr string) (Listener, error) {
	l, err := s.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	b, ok := s.buckets[l.Addr()]
	if !ok {
		b = newBucket(s.rate, s.burst)
		s.buckets[l.Addr()] = b
	}
	s.mu.Unlock()
	return &shapedListener{Listener: l, b: b}, nil
}

// Dial connects through the inner network; the dialing direction is not
// additionally shaped (the listener end already limits the shared link).
func (s *Shaped) Dial(addr string) (net.Conn, error) {
	return s.inner.Dial(addr)
}

type shapedListener struct {
	Listener
	b *bucket
}

func (l *shapedListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &shapedConn{Conn: c, b: l.b}, nil
}

// shapedConn charges every byte read or written against the node bucket.
type shapedConn struct {
	net.Conn
	b *bucket
}

// shapeChunk bounds how many bytes are charged to the bucket at once, so
// concurrent connections interleave fairly instead of one large transfer
// monopolising the link.
const shapeChunk = 64 << 10

func (c *shapedConn) Read(p []byte) (int, error) {
	if len(p) > shapeChunk {
		p = p[:shapeChunk]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.b.take(float64(n))
	}
	return n, err
}

func (c *shapedConn) Write(p []byte) (int, error) {
	var written int
	for len(p) > 0 {
		chunk := p
		if len(chunk) > shapeChunk {
			chunk = chunk[:shapeChunk]
		}
		c.b.take(float64(len(chunk)))
		n, err := c.Conn.Write(chunk)
		written += n
		if err != nil {
			return written, err
		}
		p = p[n:]
	}
	return written, nil
}

// bucket is a blocking token bucket. take(n) debits n tokens, sleeping
// until the refill (rate tokens/second, capacity burst) covers the debt.
// It tolerates short negative balances so a single oversized request
// cannot deadlock; the sleep brings the balance back before the next take.
type bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64) *bucket {
	return &bucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

func (b *bucket) take(n float64) {
	b.mu.Lock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	b.tokens -= n
	var wait time.Duration
	if b.tokens < 0 {
		wait = time.Duration(-b.tokens / b.rate * float64(time.Second))
	}
	b.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}
