package transport

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Delayed wraps an inner Network so every byte takes an extra one-way
// propagation delay to arrive, in both directions. Where Shaped models a
// link's bandwidth, Delayed models its latency: each request/response
// round trip costs two one-way delays, which is what makes serial
// chunk-at-a-time transfers slow and pipelined (windowed) transfers fast.
// It emulates a datacenter fabric or cross-rack hop on the in-process
// transport, the regime where the sliding-window data path earns its keep.
type Delayed struct {
	inner Network
	delay time.Duration
}

// NewDelayed wraps inner with a one-way propagation delay per direction.
// A zero or negative delay passes conns through untouched.
func NewDelayed(inner Network, oneWay time.Duration) *Delayed {
	return &Delayed{inner: inner, delay: oneWay}
}

// Delay returns the configured one-way delay.
func (d *Delayed) Delay() time.Duration { return d.delay }

// Listen binds addr on the inner network; accepted conns delay their
// writes (the server→client direction).
func (d *Delayed) Listen(addr string) (Listener, error) {
	l, err := d.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &delayedListener{Listener: l, delay: d.delay}, nil
}

// Dial connects through the inner network; the returned conn delays its
// writes (the client→server direction).
func (d *Delayed) Dial(addr string) (net.Conn, error) {
	c, err := d.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return newDelayedConn(c, d.delay), nil
}

type delayedListener struct {
	Listener
	delay time.Duration
}

func (l *delayedListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return newDelayedConn(c, l.delay), nil
}

// delayedConn releases each written chunk to the inner conn only after the
// one-way delay has elapsed since the Write call. A single drain goroutine
// preserves write order; Write copies its argument, so callers may recycle
// their buffers immediately (the wire layer's pooled frame buffers rely on
// this). Chunks still queued when the conn closes are dropped — the same
// fate in-flight bytes meet on a real severed link.
type delayedConn struct {
	net.Conn
	delay time.Duration
	q     chan delayedChunk
	stop  chan struct{}
	once  sync.Once
	werr  atomic.Value // error from the drain goroutine, if any
}

type delayedChunk struct {
	due time.Time
	p   []byte
}

func newDelayedConn(c net.Conn, delay time.Duration) net.Conn {
	if delay <= 0 {
		return c
	}
	dc := &delayedConn{
		Conn:  c,
		delay: delay,
		q:     make(chan delayedChunk, 64),
		stop:  make(chan struct{}),
	}
	go dc.drain()
	return dc
}

func (c *delayedConn) drain() {
	for {
		select {
		case <-c.stop:
			return
		case ch := <-c.q:
			if wait := time.Until(ch.due); wait > 0 {
				time.Sleep(wait)
			}
			if _, err := c.Conn.Write(ch.p); err != nil {
				c.werr.Store(err)
				c.once.Do(func() { close(c.stop) }) // unblock pending Writes
				return
			}
		}
	}
}

func (c *delayedConn) Write(p []byte) (int, error) {
	select {
	case <-c.stop: // closed or drain failed; don't race the queue send
		if err, ok := c.werr.Load().(error); ok {
			return 0, err
		}
		return 0, ErrClosed
	default:
	}
	ch := delayedChunk{due: time.Now().Add(c.delay), p: append([]byte(nil), p...)}
	select {
	case c.q <- ch:
		return len(p), nil
	case <-c.stop:
		if err, ok := c.werr.Load().(error); ok {
			return 0, err
		}
		return 0, ErrClosed
	}
}

func (c *delayedConn) Close() error {
	c.once.Do(func() { close(c.stop) })
	return c.Conn.Close()
}
