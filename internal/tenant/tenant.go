// Package tenant is the per-tenant resource attribution plane. Every
// client stamps its requests with a tenant ID (an opaque string,
// defaulting to "default"); each storage node folds the resources those
// requests consume — bytes moved, ops by type, kernel CPU, queue wait,
// bounces and interrupts — into a bounded Table keyed by tenant. The
// table is pure observation: it never throttles anything, it only
// answers "which app is consuming this node" for dosasctl tenants, the
// OpenMetrics dosas_tenant families, and the noisy-neighbor SLO rule.
//
// The table is bounded with LRU eviction so a client minting a fresh
// tenant ID per request (a cardinality bomb, malicious or buggy) cannot
// grow a node's memory without limit: past the cap the least-recently
// active tenant's counters fold into a pinned "(evicted)" aggregate row
// and an eviction counter ticks. Tenants with in-flight or queued work
// are never evicted, so gauges cannot go negative under churn.
package tenant

import (
	"container/list"
	"encoding/json"
	"sort"
	"sync"
)

// Default is the tenant every unlabelled request is attributed to. An
// empty tenant string on the wire means Default: pre-tenant peers and
// unconfigured clients land here.
const Default = "default"

// Evicted is the pinned pseudo-tenant aggregating every evicted
// tenant's counters, so totals stay conserved across evictions.
const Evicted = "(evicted)"

// DefaultLimit bounds the table when NewTable is given no cap.
const DefaultLimit = 256

// Canonical maps the wire encoding of a tenant ID to its accounting
// key: the empty string is the default tenant.
func Canonical(id string) string {
	if id == "" {
		return Default
	}
	return id
}

// Stats is one tenant's cumulative resource consumption on one node.
// All mutation happens under the owning Table's lock; snapshots are
// consistent.
type Stats struct {
	BytesRead    uint64
	BytesWritten uint64
	ReadOps      uint64
	WriteOps     uint64
	TruncOps     uint64
	ActiveOps    uint64
	TransformOps uint64
	// KernelNanos is CPU time active kernels burned for this tenant.
	KernelNanos uint64
	// Bounces counts active requests pushed back to the client (static
	// policy, solver decision, or memory pressure).
	Bounces uint64
	// Interrupts counts running kernels interrupted out from under this
	// tenant.
	Interrupts uint64
	// QueueWaitNanos accumulates time this tenant's items spent queued
	// before dispatch.
	QueueWaitNanos uint64
	// Queued and Inflight are live gauges: items waiting in queue and
	// requests currently executing.
	Queued   int64
	Inflight int64

	// lastWait is QueueWaitNanos at the previous WaitShare call — the
	// per-tick delta base for the tenant.wait.share probe.
	lastWait uint64
}

// Usage is the JSON snapshot row served by TenantStatsResp and rendered
// by dosasctl tenants.
type Usage struct {
	Tenant         string `json:"tenant"`
	BytesRead      uint64 `json:"bytes_read,omitempty"`
	BytesWritten   uint64 `json:"bytes_written,omitempty"`
	ReadOps        uint64 `json:"read_ops,omitempty"`
	WriteOps       uint64 `json:"write_ops,omitempty"`
	TruncOps       uint64 `json:"trunc_ops,omitempty"`
	ActiveOps      uint64 `json:"active_ops,omitempty"`
	TransformOps   uint64 `json:"transform_ops,omitempty"`
	KernelNanos    uint64 `json:"kernel_ns,omitempty"`
	Bounces        uint64 `json:"bounces,omitempty"`
	Interrupts     uint64 `json:"interrupts,omitempty"`
	QueueWaitNanos uint64 `json:"queue_wait_ns,omitempty"`
	Queued         int64  `json:"queued,omitempty"`
	Inflight       int64  `json:"inflight,omitempty"`
}

// add folds s into u.
func (u *Usage) add(s *Stats) {
	u.BytesRead += s.BytesRead
	u.BytesWritten += s.BytesWritten
	u.ReadOps += s.ReadOps
	u.WriteOps += s.WriteOps
	u.TruncOps += s.TruncOps
	u.ActiveOps += s.ActiveOps
	u.TransformOps += s.TransformOps
	u.KernelNanos += s.KernelNanos
	u.Bounces += s.Bounces
	u.Interrupts += s.Interrupts
	u.QueueWaitNanos += s.QueueWaitNanos
	u.Queued += s.Queued
	u.Inflight += s.Inflight
}

// Merge folds usage rows from several nodes into one row per tenant,
// sorted by tenant name — the cluster-total view.
func Merge(sets ...[]Usage) []Usage {
	byTenant := make(map[string]*Usage)
	for _, set := range sets {
		for _, u := range set {
			t, ok := byTenant[u.Tenant]
			if !ok {
				t = &Usage{Tenant: u.Tenant}
				byTenant[u.Tenant] = t
			}
			row := u
			t.BytesRead += row.BytesRead
			t.BytesWritten += row.BytesWritten
			t.ReadOps += row.ReadOps
			t.WriteOps += row.WriteOps
			t.TruncOps += row.TruncOps
			t.ActiveOps += row.ActiveOps
			t.TransformOps += row.TransformOps
			t.KernelNanos += row.KernelNanos
			t.Bounces += row.Bounces
			t.Interrupts += row.Interrupts
			t.QueueWaitNanos += row.QueueWaitNanos
			t.Queued += row.Queued
			t.Inflight += row.Inflight
		}
	}
	out := make([]Usage, 0, len(byTenant))
	for _, u := range byTenant {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// EncodeUsage marshals a usage snapshot to the JSON array carried by
// wire.TenantStatsResp.
func EncodeUsage(rows []Usage) ([]byte, error) {
	if rows == nil {
		rows = []Usage{}
	}
	return json.Marshal(rows)
}

// DecodeUsage parses the JSON array produced by EncodeUsage. An empty
// payload decodes to no rows.
func DecodeUsage(b []byte) ([]Usage, error) {
	if len(b) == 0 {
		return nil, nil
	}
	var rows []Usage
	if err := json.Unmarshal(b, &rows); err != nil {
		return nil, err
	}
	return rows, nil
}

type entry struct {
	name  string
	stats Stats
	elem  *list.Element
}

// Table is one node's bounded tenant accounting table. A nil *Table is
// valid and records nothing, so attribution can be disabled without
// nil checks at every call site.
type Table struct {
	mu      sync.Mutex
	limit   int
	entries map[string]*entry
	lru     *list.List // front = most recently active
	evicted uint64
	folded  Stats // pinned aggregate of evicted tenants
	// last WaitShare result, for the SLO annotation hook.
	lastTop   string
	lastShare float64
}

// NewTable builds a table evicting past limit live tenants (0 takes
// DefaultLimit).
func NewTable(limit int) *Table {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Table{
		limit:   limit,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
}

// Account looks up (creating and LRU-touching) the canonical tenant and
// applies f to its counters under the table lock. f must be cheap and
// must not call back into the table.
func (t *Table) Account(id string, f func(*Stats)) {
	if t == nil {
		return
	}
	id = Canonical(id)
	t.mu.Lock()
	e := t.entries[id]
	if e == nil {
		e = &entry{name: id}
		e.elem = t.lru.PushFront(e)
		t.entries[id] = e
		t.evictLocked()
	} else {
		t.lru.MoveToFront(e.elem)
	}
	f(&e.stats)
	t.mu.Unlock()
}

// evictLocked folds least-recently-active tenants into the pinned
// aggregate until the table is back within its limit. Tenants with live
// queued or in-flight work are skipped: their gauges must keep a row to
// decrement, so under pathological churn the table can exceed the limit
// by at most the number of concurrently active tenants.
func (t *Table) evictLocked() {
	for len(t.entries) > t.limit {
		victim := (*entry)(nil)
		for el := t.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if e.stats.Queued == 0 && e.stats.Inflight == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return
		}
		t.lru.Remove(victim.elem)
		delete(t.entries, victim.name)
		t.folded.BytesRead += victim.stats.BytesRead
		t.folded.BytesWritten += victim.stats.BytesWritten
		t.folded.ReadOps += victim.stats.ReadOps
		t.folded.WriteOps += victim.stats.WriteOps
		t.folded.TruncOps += victim.stats.TruncOps
		t.folded.ActiveOps += victim.stats.ActiveOps
		t.folded.TransformOps += victim.stats.TransformOps
		t.folded.KernelNanos += victim.stats.KernelNanos
		t.folded.Bounces += victim.stats.Bounces
		t.folded.Interrupts += victim.stats.Interrupts
		t.folded.QueueWaitNanos += victim.stats.QueueWaitNanos
		// lastWait folds too so the share probe's delta base survives.
		t.folded.lastWait += victim.stats.lastWait
		t.evicted++
	}
}

// Evictions reports how many tenants have been folded out of the table
// since the node started.
func (t *Table) Evictions() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// Len reports how many live tenants the table holds.
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Snapshot returns every live tenant's usage sorted by tenant name,
// with the evicted aggregate appended as the "(evicted)" row when any
// eviction has happened.
func (t *Table) Snapshot() []Usage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Usage, 0, len(t.entries)+1)
	for _, e := range t.entries {
		u := Usage{Tenant: e.name}
		u.add(&e.stats)
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	if t.evicted > 0 {
		u := Usage{Tenant: Evicted}
		u.add(&t.folded)
		out = append(out, u)
	}
	return out
}

// WaitShare advances the queue-wait share probe one tick: it computes
// each tenant's QueueWaitNanos delta since the previous call and
// returns the largest tenant's share of the total, naming that tenant.
// A tenant counts as a contender when it accrued wait this tick OR is
// queued right now — wait only posts at dequeue, so a victim stuck
// behind a long queue contends for many ticks before its first delta
// lands. With fewer than two contenders the share is 0: a single-tenant
// node is by definition not a noisy-neighbor situation, and the SLO
// rule must not fire on it. Call it from exactly one sampler probe;
// concurrent callers would split the deltas.
func (t *Table) WaitShare() (share float64, top string) {
	if t == nil {
		return 0, ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var total, max uint64
	var contenders int
	for _, e := range t.entries {
		d := e.stats.QueueWaitNanos - e.stats.lastWait
		e.stats.lastWait = e.stats.QueueWaitNanos
		if d == 0 {
			if e.stats.Queued > 0 {
				contenders++
			}
			continue
		}
		contenders++
		total += d
		if d > max || (d == max && (top == "" || e.name < top)) {
			max = d
			top = e.name
		}
	}
	// The folded aggregate advances its base too, but never competes.
	t.folded.lastWait = t.folded.QueueWaitNanos
	if contenders < 2 {
		t.lastTop, t.lastShare = "", 0
		return 0, ""
	}
	if total == 0 {
		// Contention persists (two-plus tenants queued) but no wait
		// posted this tick — waits post at dequeue, which is coarser
		// than the sampling tick. Carry the last measurement forward
		// rather than reporting a spurious all-clear — but only while
		// the carried dominant tenant is still part of the contention.
		// Once it has drained its queue, pinning its old share would
		// hold a resolved noisy-neighbor alert firing forever.
		if e := t.entries[t.lastTop]; e != nil && e.stats.Queued > 0 {
			return t.lastShare, t.lastTop
		}
		t.lastTop, t.lastShare = "", 0
		return 0, ""
	}
	share = float64(max) / float64(total)
	t.lastTop, t.lastShare = top, share
	return share, top
}

// TopWait returns the most recent WaitShare result — the tenant (and
// its share) the noisy-neighbor alert names via the SLO annotation
// hook. Empty until WaitShare has seen contention.
func (t *Table) TopWait() (string, float64) {
	if t == nil {
		return "", 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastTop, t.lastShare
}
