package tenant

import (
	"fmt"
	"sync"
	"testing"
)

func TestCanonical(t *testing.T) {
	if Canonical("") != Default {
		t.Errorf("Canonical(\"\") = %q, want %q", Canonical(""), Default)
	}
	if Canonical("app-a") != "app-a" {
		t.Errorf("Canonical(app-a) = %q", Canonical("app-a"))
	}
}

func TestNilTableIsSafe(t *testing.T) {
	var tab *Table
	tab.Account("x", func(s *Stats) { s.BytesRead++ })
	if tab.Snapshot() != nil || tab.Len() != 0 || tab.Evictions() != 0 {
		t.Error("nil table must record nothing")
	}
	if share, top := tab.WaitShare(); share != 0 || top != "" {
		t.Error("nil table WaitShare must be zero")
	}
}

func TestAccountAndSnapshot(t *testing.T) {
	tab := NewTable(8)
	tab.Account("a", func(s *Stats) { s.BytesRead += 100; s.ReadOps++ })
	tab.Account("", func(s *Stats) { s.BytesWritten += 50; s.WriteOps++ })
	tab.Account("a", func(s *Stats) { s.KernelNanos += 7 })

	rows := tab.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2: %+v", len(rows), rows)
	}
	// Sorted: "a" < "default".
	if rows[0].Tenant != "a" || rows[0].BytesRead != 100 || rows[0].ReadOps != 1 || rows[0].KernelNanos != 7 {
		t.Errorf("row a = %+v", rows[0])
	}
	if rows[1].Tenant != Default || rows[1].BytesWritten != 50 || rows[1].WriteOps != 1 {
		t.Errorf("row default = %+v", rows[1])
	}
}

func TestEvictionFoldsAndCounts(t *testing.T) {
	tab := NewTable(4)
	for i := 0; i < 10; i++ {
		tab.Account(fmt.Sprintf("bomb-%d", i), func(s *Stats) { s.BytesRead += 10 })
	}
	if n := tab.Len(); n != 4 {
		t.Errorf("table len = %d, want 4", n)
	}
	if ev := tab.Evictions(); ev != 6 {
		t.Errorf("evictions = %d, want 6", ev)
	}
	rows := tab.Snapshot()
	last := rows[len(rows)-1]
	if last.Tenant != Evicted || last.BytesRead != 60 {
		t.Errorf("evicted aggregate = %+v, want 60 bytes under %q", last, Evicted)
	}
	// Totals are conserved: live rows plus the fold equal everything
	// ever accounted.
	var total uint64
	for _, r := range rows {
		total += r.BytesRead
	}
	if total != 100 {
		t.Errorf("total bytes = %d, want 100", total)
	}
}

func TestEvictionSkipsTenantsWithLiveWork(t *testing.T) {
	tab := NewTable(2)
	tab.Account("busy", func(s *Stats) { s.Inflight++ })
	tab.Account("idle-1", func(s *Stats) { s.ReadOps++ })
	// "busy" is now LRU-oldest but has inflight work; the next insert
	// must evict idle-1 instead.
	tab.Account("idle-2", func(s *Stats) { s.ReadOps++ })
	rows := tab.Snapshot()
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Tenant] = true
	}
	if !names["busy"] {
		t.Errorf("busy tenant was evicted with inflight work: %+v", rows)
	}
	if names["idle-1"] {
		t.Errorf("idle-1 should have been the victim: %+v", rows)
	}
	// Releasing the gauge makes it evictable again.
	tab.Account("busy", func(s *Stats) { s.Inflight-- })
	tab.Account("idle-3", func(s *Stats) { s.ReadOps++ })
	tab.Account("idle-4", func(s *Stats) { s.ReadOps++ })
	if n := tab.Len(); n != 2 {
		t.Errorf("table len = %d after release, want 2", n)
	}
}

func TestWaitShare(t *testing.T) {
	tab := NewTable(8)
	// Single tenant accruing wait: never a noisy-neighbor signal.
	tab.Account("a", func(s *Stats) { s.QueueWaitNanos += 1000 })
	if share, top := tab.WaitShare(); share != 0 || top != "" {
		t.Errorf("single-tenant share = %v/%q, want 0", share, top)
	}
	// Two tenants, 9:1 split this tick.
	tab.Account("a", func(s *Stats) { s.QueueWaitNanos += 900 })
	tab.Account("b", func(s *Stats) { s.QueueWaitNanos += 100 })
	share, top := tab.WaitShare()
	if top != "a" || share != 0.9 {
		t.Errorf("share = %v/%q, want 0.9/a", share, top)
	}
	if cachedTop, cachedShare := tab.TopWait(); cachedTop != "a" || cachedShare != 0.9 {
		t.Errorf("TopWait = %q/%v", cachedTop, cachedShare)
	}
	// No new wait: share falls back to 0 (deltas, not cumulative).
	if share, _ := tab.WaitShare(); share != 0 {
		t.Errorf("quiet-tick share = %v, want 0", share)
	}
	// A queued tenant contends even before its wait posts: wait only
	// accrues at dequeue, so a victim stuck behind a deep queue would
	// otherwise never register while the aggressor hogs the node.
	tab.Account("a", func(s *Stats) { s.QueueWaitNanos += 500 })
	tab.Account("b", func(s *Stats) { s.Queued++ })
	share, top = tab.WaitShare()
	if top != "a" || share != 1.0 {
		t.Errorf("queued-contender share = %v/%q, want 1.0/a", share, top)
	}
	// Two tenants still queued with no wait posted this tick: the last
	// measurement carries forward (dequeues are coarser than ticks).
	tab.Account("a", func(s *Stats) { s.Queued++ })
	share, top = tab.WaitShare()
	if top != "a" || share != 1.0 {
		t.Errorf("carried share = %v/%q, want 1.0/a", share, top)
	}
	// But a lone tenant with queued items is still not a contention
	// signal.
	tab.Account("b", func(s *Stats) { s.Queued-- })
	tab.Account("a", func(s *Stats) { s.QueueWaitNanos += 500 })
	if share, _ := tab.WaitShare(); share != 0 {
		t.Errorf("lone-queued share = %v, want 0", share)
	}
}

func TestUsageCodecAndMerge(t *testing.T) {
	a := []Usage{{Tenant: "a", BytesRead: 10, QueueWaitNanos: 5}}
	b := []Usage{{Tenant: "a", BytesRead: 1}, {Tenant: "b", WriteOps: 2}}
	blob, err := EncodeUsage(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeUsage(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != a[0] {
		t.Errorf("decode = %+v", back)
	}
	if rows, err := DecodeUsage(nil); err != nil || rows != nil {
		t.Errorf("empty decode = %+v, %v", rows, err)
	}
	merged := Merge(a, b)
	if len(merged) != 2 || merged[0].Tenant != "a" || merged[0].BytesRead != 11 || merged[1].WriteOps != 2 {
		t.Errorf("merge = %+v", merged)
	}
}

func TestTableConcurrency(t *testing.T) {
	tab := NewTable(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("t-%d", g%4)
			for i := 0; i < 1000; i++ {
				tab.Account(name, func(s *Stats) { s.BytesRead++ })
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, r := range tab.Snapshot() {
		total += r.BytesRead
	}
	if total != 8000 {
		t.Errorf("total = %d, want 8000", total)
	}
}

// The carried-forward noisy-neighbor share must clear once the dominant
// tenant drains its queue, even while other tenants keep contending.
// Before the fix, a tick with contention but no posted wait pinned the
// stale top/share forever and the resolved alert never cleared.
func TestWaitShareCarryForwardClearsWhenTopDrains(t *testing.T) {
	tab := NewTable(8)
	tab.Account("a", func(s *Stats) { s.QueueWaitNanos += 900 })
	tab.Account("b", func(s *Stats) { s.QueueWaitNanos += 100 })
	if share, top := tab.WaitShare(); top != "a" || share != 0.9 {
		t.Fatalf("setup share = %v/%q, want 0.9/a", share, top)
	}

	// Quiet tick, dominant tenant still queued: the measurement carries.
	tab.Account("a", func(s *Stats) { s.Queued++ })
	tab.Account("b", func(s *Stats) { s.Queued++ })
	if share, top := tab.WaitShare(); top != "a" || share != 0.9 {
		t.Fatalf("carried share = %v/%q, want 0.9/a", share, top)
	}

	// The aggressor drains; two other tenants still contend, no wait
	// posts this tick. The stale share must not be pinned.
	tab.Account("a", func(s *Stats) { s.Queued-- })
	tab.Account("c", func(s *Stats) { s.Queued++ })
	if share, top := tab.WaitShare(); share != 0 || top != "" {
		t.Errorf("post-drain share = %v/%q, want 0/\"\"", share, top)
	}

	// And it stays clear on subsequent quiet ticks.
	if share, top := tab.WaitShare(); share != 0 || top != "" {
		t.Errorf("steady-state share = %v/%q, want 0/\"\"", share, top)
	}
}
