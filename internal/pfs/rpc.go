// Package pfs implements the parallel file system DOSAS runs on: a PVFS2-
// style design with one metadata server (namespace and stripe layout), N
// data servers (stripe storage plus, when wrapped by the core package,
// active-storage processing), and a striping client that converts file
// ranges into parallel per-server transfers.
package pfs

import (
	"errors"
	"fmt"

	"net"
	"sync"

	"dosas/internal/transport"
	"dosas/internal/wire"
)

// RemoteError is a failure reported by a peer over the wire.
type RemoteError struct {
	Code   uint32
	Op     string
	Detail string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("pfs: remote %s: code=%d %s", e.Op, e.Code, e.Detail)
}

// IsNotFound reports whether err is a not-found failure, local or remote.
func IsNotFound(err error) bool {
	if errors.Is(err, ErrNotFound) {
		return true
	}
	var re *RemoteError
	return errors.As(err, &re) && re.Code == wire.StatusNotFound
}

// IsExists reports whether err is an already-exists failure, local or
// remote.
func IsExists(err error) bool {
	if errors.Is(err, ErrExists) {
		return true
	}
	var re *RemoteError
	return errors.As(err, &re) && re.Code == wire.StatusExists
}

// Pool is a client-side connection pool. Each in-flight Call owns one
// connection (requests and responses are strictly paired per connection, as
// in HTTP/1.1), so concurrency is bounded only by how many connections the
// peer accepts.
type Pool struct {
	Net transport.Network

	mu     sync.Mutex
	idle   map[string][]net.Conn
	closed bool
}

// NewPool returns a pool dialing through n.
func NewPool(n transport.Network) *Pool {
	return &Pool{Net: n, idle: make(map[string][]net.Conn)}
}

// maxIdlePerAddr bounds how many spare connections are kept per peer.
const maxIdlePerAddr = 8

// Call sends req to addr and waits for the response. A wire.ErrorMsg
// response is converted into a *RemoteError. When a pooled connection
// turns out to be stale (its server restarted since it was idled), the
// call transparently retries once on a fresh dial; a failure on a fresh
// connection is reported as-is.
func (p *Pool) Call(addr string, req wire.Message) (wire.Message, error) {
	for {
		c, pooled, err := p.get(addr)
		if err != nil {
			return nil, err
		}
		resp, err := p.roundTrip(c, req)
		if err != nil {
			c.Close()
			if pooled {
				continue // stale idle connection: retry on a fresh dial
			}
			return nil, fmt.Errorf("pfs: call %s %v: %w", addr, req.Type(), err)
		}
		p.put(addr, c)
		if em, ok := resp.(*wire.ErrorMsg); ok {
			return nil, &RemoteError{Code: em.Code, Op: em.Op, Detail: em.Detail}
		}
		return resp, nil
	}
}

func (p *Pool) roundTrip(c net.Conn, req wire.Message) (wire.Message, error) {
	if err := wire.WriteMessage(c, req); err != nil {
		return nil, err
	}
	return wire.ReadMessage(c)
}

func (p *Pool) get(addr string) (net.Conn, bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, transport.ErrClosed
	}
	conns := p.idle[addr]
	if n := len(conns); n > 0 {
		c := conns[n-1]
		p.idle[addr] = conns[:n-1]
		p.mu.Unlock()
		return c, true, nil
	}
	p.mu.Unlock()
	c, err := p.Net.Dial(addr)
	return c, false, err
}

func (p *Pool) put(addr string, c net.Conn) {
	p.mu.Lock()
	if !p.closed && len(p.idle[addr]) < maxIdlePerAddr {
		p.idle[addr] = append(p.idle[addr], c)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	c.Close()
}

// Close drops all idle connections. In-flight calls are unaffected.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, conns := range p.idle {
		for _, c := range conns {
			c.Close()
		}
	}
	p.idle = make(map[string][]net.Conn)
}

// Handler processes one request message and returns the response. Returning
// an error sends a wire.ErrorMsg built with ToErrorMsg.
type Handler interface {
	Handle(m wire.Message) (wire.Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m wire.Message) (wire.Message, error)

// Handle calls f(m).
func (f HandlerFunc) Handle(m wire.Message) (wire.Message, error) { return f(m) }

// PostWriter is implemented by handlers that need a callback after the
// response has been written to the connection. The data server uses it to
// keep a request counted as in flight for the full service time — handler
// plus response transfer — which is what the Contention Estimator's
// normal-I/O pressure signal must reflect on slow (shaped) links.
type PostWriter interface {
	PostWrite(req, resp wire.Message)
}

// ToErrorMsg converts err into the wire error response for operation op,
// preserving the code of a RemoteError being relayed.
func ToErrorMsg(op string, err error) *wire.ErrorMsg {
	var re *RemoteError
	if errors.As(err, &re) {
		return &wire.ErrorMsg{Code: re.Code, Op: op, Detail: re.Detail}
	}
	code := wire.StatusInternal
	switch {
	case errors.Is(err, ErrNotFound):
		code = wire.StatusNotFound
	case errors.Is(err, ErrExists):
		code = wire.StatusExists
	case errors.Is(err, ErrInvalid):
		code = wire.StatusInvalid
	case errors.Is(err, ErrUnsupported):
		code = wire.StatusUnsupported
	}
	return &wire.ErrorMsg{Code: code, Op: op, Detail: err.Error()}
}

// Sentinel errors mapped onto wire status codes.
var (
	ErrNotFound    = errors.New("pfs: not found")
	ErrExists      = errors.New("pfs: already exists")
	ErrInvalid     = errors.New("pfs: invalid argument")
	ErrUnsupported = errors.New("pfs: unsupported operation")
)

// Server accepts connections on a listener and dispatches each request to
// a Handler, one goroutine per connection.
type Server struct {
	l       transport.Listener
	h       Handler
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool
	done    chan struct{}
}

// NewServer returns a server ready to Run.
func NewServer(l transport.Listener, h Handler) *Server {
	return &Server{l: l, h: h, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
}

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.l.Addr() }

// Run accepts connections until Close is called. It always returns a
// non-nil error; after Close the error is transport.ErrClosed.
func (s *Server) Run() error {
	defer close(s.done)
	for {
		c, err := s.l.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return transport.ErrClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			c.Close()
			return transport.ErrClosed
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// Start runs the server in a new goroutine and returns immediately.
func (s *Server) Start() { go s.Run() } //nolint:errcheck // accept-loop errors surface via Close

func (s *Server) serveConn(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	pw, _ := s.h.(PostWriter)
	for {
		req, err := wire.ReadMessage(c)
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		resp, herr := s.h.Handle(req)
		if herr != nil {
			resp = ToErrorMsg(req.Type().String(), herr)
		}
		if resp == nil {
			return
		}
		werr := wire.WriteMessage(c, resp)
		if pw != nil {
			pw.PostWrite(req, resp)
		}
		if werr != nil {
			return
		}
	}
}

// Close stops accepting, closes all live connections, and waits for the
// accept loop to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closing = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.l.Close()
	<-s.done
}
