// Package pfs implements the parallel file system DOSAS runs on: a PVFS2-
// style design with one metadata server (namespace and stripe layout), N
// data servers (stripe storage plus, when wrapped by the core package,
// active-storage processing), and a striping client that converts file
// ranges into parallel per-server transfers.
package pfs

import (
	"errors"
	"fmt"

	"net"
	"sync"

	"dosas/internal/transport"
	"dosas/internal/wire"
)

// RemoteError is a failure reported by a peer over the wire.
type RemoteError struct {
	Code   uint32
	Op     string
	Detail string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("pfs: remote %s: code=%d %s", e.Op, e.Code, e.Detail)
}

// IsNotFound reports whether err is a not-found failure, local or remote.
func IsNotFound(err error) bool {
	if errors.Is(err, ErrNotFound) {
		return true
	}
	var re *RemoteError
	return errors.As(err, &re) && re.Code == wire.StatusNotFound
}

// IsExists reports whether err is an already-exists failure, local or
// remote.
func IsExists(err error) bool {
	if errors.Is(err, ErrExists) {
		return true
	}
	var re *RemoteError
	return errors.As(err, &re) && re.Code == wire.StatusExists
}

// Pool is a client-side connection pool. Each in-flight Call or Stream
// owns one connection (requests and responses are strictly paired per
// connection, as in HTTP/1.1 — including pipelined streams, where the
// server answers in request order), so concurrency is bounded only by how
// many connections the peer accepts.
type Pool struct {
	Net transport.Network

	mu     sync.Mutex
	idle   map[string][]*poolConn
	closed bool
}

// poolConn pairs a connection with its frame reader, so the reader's
// pooled decode buffer survives across the calls that reuse the conn.
type poolConn struct {
	c  net.Conn
	fr *wire.FrameReader
}

func (pc *poolConn) close() {
	pc.c.Close()
	pc.fr.Close()
}

// NewPool returns a pool dialing through n.
func NewPool(n transport.Network) *Pool {
	return &Pool{Net: n, idle: make(map[string][]*poolConn)}
}

// maxIdlePerAddr bounds how many spare connections are kept per peer.
const maxIdlePerAddr = 8

// Call sends req to addr and waits for the response. A wire.ErrorMsg
// response is converted into a *RemoteError. When a pooled connection
// turns out to be stale (its server restarted since it was idled), the
// call transparently retries once on a fresh dial; a failure on a fresh
// connection is reported as-is. The response is detached (wire.Own) from
// the connection's decode buffer, so callers may retain it freely; bulk
// transfers that want to avoid that copy use Stream instead.
func (p *Pool) Call(addr string, req wire.Message) (wire.Message, error) {
	for {
		pc, pooled, err := p.get(addr)
		if err != nil {
			return nil, err
		}
		resp, err := p.roundTrip(pc, req)
		if err != nil {
			pc.close()
			if pooled {
				continue // stale idle connection: retry on a fresh dial
			}
			return nil, fmt.Errorf("pfs: call %s %v: %w", addr, req.Type(), err)
		}
		wire.Own(resp) // detach before the conn (and its buffer) is shared
		p.put(addr, pc)
		if em, ok := resp.(*wire.ErrorMsg); ok {
			return nil, &RemoteError{Code: em.Code, Op: em.Op, Detail: em.Detail}
		}
		return resp, nil
	}
}

func (p *Pool) roundTrip(pc *poolConn, req wire.Message) (wire.Message, error) {
	if err := wire.WriteMessage(pc.c, req); err != nil {
		return nil, err
	}
	return pc.fr.Read()
}

func (p *Pool) get(addr string) (*poolConn, bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, transport.ErrClosed
	}
	conns := p.idle[addr]
	if n := len(conns); n > 0 {
		pc := conns[n-1]
		p.idle[addr] = conns[:n-1]
		p.mu.Unlock()
		return pc, true, nil
	}
	p.mu.Unlock()
	c, err := p.Net.Dial(addr)
	if err != nil {
		return nil, false, err
	}
	return &poolConn{c: c, fr: wire.NewFrameReader(c)}, false, nil
}

func (p *Pool) put(addr string, pc *poolConn) {
	p.mu.Lock()
	if !p.closed && len(p.idle[addr]) < maxIdlePerAddr {
		p.idle[addr] = append(p.idle[addr], pc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	pc.close()
}

// Close drops all idle connections. In-flight calls are unaffected.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, conns := range p.idle {
		for _, pc := range conns {
			pc.close()
		}
	}
	p.idle = make(map[string][]*poolConn)
}

// Stream is a pipelined exchange on one pooled connection: the caller may
// Send several requests before Recving their responses, which the server
// answers strictly in request order. This is how the sliding-window data
// path keeps multiple chunks in flight per server. A Stream is not safe
// for concurrent use.
type Stream struct {
	p      *Pool
	addr   string
	pc     *poolConn
	pooled bool // conn came from the idle set (may be stale)
	sent   int  // responses still owed by the server
	broken bool
}

// Stream opens a pipelined exchange with addr, reusing an idle pooled
// connection when one is available. The caller must finish with Release.
func (p *Pool) Stream(addr string) (*Stream, error) {
	pc, pooled, err := p.get(addr)
	if err != nil {
		return nil, err
	}
	return &Stream{p: p, addr: addr, pc: pc, pooled: pooled}, nil
}

// Pooled reports whether the stream rides a previously idle connection —
// callers use it to decide whether a transport failure warrants one retry
// on a fresh dial (the connection may simply have gone stale).
func (s *Stream) Pooled() bool { return s.pooled }

// Send writes one request frame without waiting for its response.
func (s *Stream) Send(req wire.Message) error {
	if err := wire.WriteMessage(s.pc.c, req); err != nil {
		s.broken = true
		return err
	}
	s.sent++
	return nil
}

// Recv reads the next response in request order. A wire.ErrorMsg is
// converted to *RemoteError (the stream stays usable: the server keeps
// answering pipelined requests after an error response). The returned
// message may alias the stream's decode buffer and is valid only until
// the next Recv or Release; callers that retain it must wire.Own it.
func (s *Stream) Recv() (wire.Message, error) {
	resp, err := s.pc.fr.Read()
	if err != nil {
		s.broken = true
		return nil, err
	}
	s.sent--
	if em, ok := resp.(*wire.ErrorMsg); ok {
		return nil, &RemoteError{Code: em.Code, Op: em.Op, Detail: em.Detail}
	}
	return resp, nil
}

// Release finishes the stream. A healthy, fully drained connection (every
// Send matched by a Recv) returns to the idle pool; anything else — a
// transport error or responses still in flight — closes it, because the
// next user could not tell stale responses from its own.
func (s *Stream) Release() {
	if s.broken || s.sent != 0 {
		s.pc.close()
		return
	}
	s.p.put(s.addr, s.pc)
}

// Handler processes one request message and returns the response. Returning
// an error sends a wire.ErrorMsg built with ToErrorMsg.
type Handler interface {
	Handle(m wire.Message) (wire.Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m wire.Message) (wire.Message, error)

// Handle calls f(m).
func (f HandlerFunc) Handle(m wire.Message) (wire.Message, error) { return f(m) }

// PostWriter is implemented by handlers that need a callback after the
// response has been written to the connection. The data server uses it to
// keep a request counted as in flight for the full service time — handler
// plus response transfer — which is what the Contention Estimator's
// normal-I/O pressure signal must reflect on slow (shaped) links.
type PostWriter interface {
	PostWrite(req, resp wire.Message)
}

// ToErrorMsg converts err into the wire error response for operation op,
// preserving the code of a RemoteError being relayed.
func ToErrorMsg(op string, err error) *wire.ErrorMsg {
	var re *RemoteError
	if errors.As(err, &re) {
		return &wire.ErrorMsg{Code: re.Code, Op: op, Detail: re.Detail}
	}
	code := wire.StatusInternal
	switch {
	case errors.Is(err, ErrNotFound):
		code = wire.StatusNotFound
	case errors.Is(err, ErrExists):
		code = wire.StatusExists
	case errors.Is(err, ErrInvalid):
		code = wire.StatusInvalid
	case errors.Is(err, ErrUnsupported):
		code = wire.StatusUnsupported
	}
	return &wire.ErrorMsg{Code: code, Op: op, Detail: err.Error()}
}

// Sentinel errors mapped onto wire status codes.
var (
	ErrNotFound    = errors.New("pfs: not found")
	ErrExists      = errors.New("pfs: already exists")
	ErrInvalid     = errors.New("pfs: invalid argument")
	ErrUnsupported = errors.New("pfs: unsupported operation")
)

// Server accepts connections on a listener and dispatches each request to
// a Handler, one goroutine per connection.
type Server struct {
	l       transport.Listener
	h       Handler
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool
	done    chan struct{}
}

// NewServer returns a server ready to Run.
func NewServer(l transport.Listener, h Handler) *Server {
	return &Server{l: l, h: h, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
}

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.l.Addr() }

// Run accepts connections until Close is called. It always returns a
// non-nil error; after Close the error is transport.ErrClosed.
func (s *Server) Run() error {
	defer close(s.done)
	for {
		c, err := s.l.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return transport.ErrClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			c.Close()
			return transport.ErrClosed
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// Start runs the server in a new goroutine and returns immediately.
func (s *Server) Start() { go s.Run() } //nolint:errcheck // accept-loop errors surface via Close

func (s *Server) serveConn(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	pw, _ := s.h.(PostWriter)
	fr := wire.NewFrameReader(c)
	defer fr.Close()
	for {
		// The request may alias fr's pooled buffer; that is safe because
		// every handler finishes with the request before returning, and the
		// next fr.Read happens only after the response is written.
		req, err := fr.Read()
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		var werr error
		resp, herr := s.h.Handle(req)
		if herr != nil {
			resp = ToErrorMsg(req.Type().String(), herr)
		}
		if resp != nil {
			werr = wire.WriteMessage(c, resp)
		}
		if pw != nil {
			// Always fires once per handled request — even when the handler
			// returned nil or the write failed — so per-request accounting
			// (the data.inflight gauge, pooled read buffers) stays balanced.
			pw.PostWrite(req, resp)
		}
		if resp == nil || werr != nil {
			return
		}
	}
}

// Close stops accepting, closes all live connections, and waits for the
// accept loop to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closing = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.l.Close()
	<-s.done
}
