// Package pfs implements the parallel file system DOSAS runs on: a PVFS2-
// style design with one metadata server (namespace and stripe layout), N
// data servers (stripe storage plus, when wrapped by the core package,
// active-storage processing), and a striping client that converts file
// ranges into parallel per-server transfers.
package pfs

import (
	"errors"
	"fmt"
	"os"
	"time"

	"net"
	"sync"
	"sync/atomic"

	"dosas/internal/metrics"
	"dosas/internal/transport"
	"dosas/internal/wire"
)

// RemoteError is a failure reported by a peer over the wire.
type RemoteError struct {
	Code   uint32
	Op     string
	Detail string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("pfs: remote %s: code=%d %s", e.Op, e.Code, e.Detail)
}

// IsNotFound reports whether err is a not-found failure, local or remote.
func IsNotFound(err error) bool {
	if errors.Is(err, ErrNotFound) {
		return true
	}
	var re *RemoteError
	return errors.As(err, &re) && re.Code == wire.StatusNotFound
}

// IsExists reports whether err is an already-exists failure, local or
// remote.
func IsExists(err error) bool {
	if errors.Is(err, ErrExists) {
		return true
	}
	var re *RemoteError
	return errors.As(err, &re) && re.Code == wire.StatusExists
}

// IsCancelled reports whether err means the request was withdrawn by a
// CancelReq, local or remote — the expected outcome for a hedged read's
// losing replica, not a failure.
func IsCancelled(err error) bool {
	if errors.Is(err, ErrCancelled) {
		return true
	}
	var re *RemoteError
	return errors.As(err, &re) && re.Code == wire.StatusCancelled
}

// Pool is the client-side connection manager. Against mux-capable peers
// (negotiated per address by a HelloReq/HelloResp handshake, see mux.go)
// all calls and streams share a small fixed set of multiplexed
// connections per peer, responses complete out of order, and control
// messages preempt in-flight bulk transfers on the wire. Against peers
// that decline — or predate — the handshake, the pool falls back to the
// classic mode: one strictly ordered exchange per connection, idle
// connections cached per address.
type Pool struct {
	Net transport.Network

	mu     sync.Mutex
	idle   map[string][]idleConn
	peers  map[string]*muxPeer
	plain  map[string]bool // peers that declined or failed the mux handshake
	closed bool
	noMux  bool
	tenant string // stamped on windowed bulk transfers (read/write chunks)

	reg        *metrics.Registry
	idleTTL    time.Duration // ordered conns idle longer are dropped
	probeAfter time.Duration // ordered conns idle longer are liveness-probed

	// lat scores per-server chunk latency for replica selection and
	// hedge-delay derivation; reqIDs mints HedgeIDBit-tagged ids for
	// cancellable windowed reads.
	lat    *LatencyTracker
	reqIDs atomic.Uint64
}

// idleConn is an ordered-mode connection cached for reuse.
type idleConn struct {
	pc    *poolConn
	since time.Time
}

// poolConn pairs a connection with its frame reader, so the reader's
// pooled decode buffer survives across the calls that reuse the conn.
type poolConn struct {
	c  net.Conn
	fr *wire.FrameReader
}

func (pc *poolConn) close() {
	pc.c.Close()
	pc.fr.Close()
}

// alive cheaply checks whether an idle ordered connection is still open:
// a 1 ms read must time out with nothing delivered. Any byte (a stale
// frame?) or any other outcome (EOF, reset) means the conn is unusable.
func (pc *poolConn) alive() bool {
	if err := pc.c.SetReadDeadline(time.Now().Add(time.Millisecond)); err != nil {
		return false
	}
	var b [1]byte
	n, err := pc.c.Read(b[:])
	pc.c.SetReadDeadline(time.Time{}) //nolint:errcheck // best effort reset
	return n == 0 && errors.Is(err, os.ErrDeadlineExceeded)
}

// Idle-reaping defaults. A connection idle past defaultIdleTTL is assumed
// dead (servers restart, NATs expire); one idle past defaultProbeAfter is
// probed before reuse so the first call after a server restart does not
// eat a failed round trip plus redial.
const (
	defaultIdleTTL    = 60 * time.Second
	defaultProbeAfter = 1 * time.Second
)

// NewPool returns a pool dialing through n.
func NewPool(n transport.Network) *Pool {
	p := &Pool{
		Net:        n,
		idle:       make(map[string][]idleConn),
		peers:      make(map[string]*muxPeer),
		plain:      make(map[string]bool),
		reg:        metrics.NewRegistry(),
		idleTTL:    defaultIdleTTL,
		probeAfter: defaultProbeAfter,
		lat:        NewLatencyTracker(),
	}
	// Seed the read-id counter so ids from distinct client pools hitting
	// the same server registry are disjoint in practice.
	p.reqIDs.Store(uint64(time.Now().UnixNano()))
	return p
}

// Latency exposes the pool's per-server latency tracker (replica scoring,
// hedge delays, tests).
func (p *Pool) Latency() *LatencyTracker { return p.lat }

// nextReqID mints a cluster-unique, HedgeIDBit-tagged request id for a
// cancellable windowed read.
func (p *Pool) nextReqID() uint64 { return p.reqIDs.Add(1) | HedgeIDBit }

// DisableMux pins the pool to ordered mode: no handshake is attempted and
// every exchange owns its connection. Call before the first use.
func (p *Pool) DisableMux() {
	p.mu.Lock()
	p.noMux = true
	p.mu.Unlock()
}

// SetTenant stamps every subsequent windowed bulk transfer (read and
// write chunks) with the tenant id, so data servers attribute normal-I/O
// bytes to the issuing workload. Empty (the default) keeps frames
// byte-identical to pre-tenant clients. Call before the first transfer.
func (p *Pool) SetTenant(tenant string) {
	p.mu.Lock()
	p.tenant = tenant
	p.mu.Unlock()
}

// Tenant returns the pool's configured tenant id.
func (p *Pool) Tenant() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tenant
}

// Metrics exposes the pool's counters (pool.dials, pool.idle.reuse,
// pool.stale.retries, pool.mux.* — see DESIGN.md §10).
func (p *Pool) Metrics() *metrics.Registry { return p.reg }

// SetIdleTTL overrides the idle-connection reaping knobs (tests).
func (p *Pool) SetIdleTTL(ttl, probeAfter time.Duration) {
	p.mu.Lock()
	p.idleTTL, p.probeAfter = ttl, probeAfter
	p.mu.Unlock()
}

// maxIdlePerAddr bounds how many spare ordered connections are kept per
// peer.
const maxIdlePerAddr = 8

// Call sends req to addr and waits for the response. A wire.ErrorMsg
// response is converted into a *RemoteError. When a shared mux connection
// or a pooled ordered connection turns out to be stale (its server
// restarted since it was established), the call transparently retries
// once on a fresh dial; a failure on a fresh connection is reported
// as-is. The response is detached (wire.Own) from the connection's decode
// buffer, so callers may retain it freely; bulk transfers that want to
// avoid that copy use Stream instead.
func (p *Pool) Call(addr string, req wire.Message) (wire.Message, error) {
	for {
		mp, err := p.muxFor(addr)
		if err != nil {
			return nil, err
		}
		if mp == nil {
			return p.callOrdered(addr, req)
		}
		resp, err := mp.call(req)
		if errors.Is(err, errMuxDemoted) {
			continue // peer fell back to ordered mode mid-flight
		}
		return resp, err
	}
}

func (p *Pool) callOrdered(addr string, req wire.Message) (wire.Message, error) {
	for {
		pc, pooled, err := p.get(addr)
		if err != nil {
			return nil, err
		}
		resp, err := p.roundTrip(pc, req)
		if err != nil {
			pc.close()
			if pooled {
				p.reg.Counter("pool.stale.retries").Inc()
				continue // stale idle connection: retry on a fresh dial
			}
			return nil, fmt.Errorf("pfs: call %s %v: %w", addr, req.Type(), err)
		}
		wire.Own(resp) // detach before the conn (and its buffer) is shared
		p.put(addr, pc)
		if em, ok := resp.(*wire.ErrorMsg); ok {
			return nil, &RemoteError{Code: em.Code, Op: em.Op, Detail: em.Detail}
		}
		return resp, nil
	}
}

func (p *Pool) roundTrip(pc *poolConn, req wire.Message) (wire.Message, error) {
	if err := wire.WriteMessage(pc.c, req); err != nil {
		return nil, err
	}
	return pc.fr.Read()
}

func (p *Pool) get(addr string) (*poolConn, bool, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, false, transport.ErrClosed
		}
		ttl, probeAfter := p.idleTTL, p.probeAfter
		conns := p.idle[addr]
		n := len(conns)
		if n == 0 {
			p.mu.Unlock()
			break
		}
		ic := conns[n-1]
		p.idle[addr] = conns[:n-1]
		p.mu.Unlock()
		// Reap outside the lock: anything idle past the TTL is presumed
		// dead, anything idle a while is probed before reuse.
		age := time.Since(ic.since)
		if age > ttl || (age > probeAfter && !ic.pc.alive()) {
			p.reg.Counter("pool.idle.expired").Inc()
			ic.pc.close()
			continue
		}
		p.reg.Counter("pool.idle.reuse").Inc()
		return ic.pc, true, nil
	}
	c, err := p.Net.Dial(addr)
	if err != nil {
		return nil, false, err
	}
	p.reg.Counter("pool.dials").Inc()
	return &poolConn{c: c, fr: wire.NewFrameReader(c)}, false, nil
}

func (p *Pool) put(addr string, pc *poolConn) {
	p.mu.Lock()
	if !p.closed && len(p.idle[addr]) < maxIdlePerAddr {
		p.idle[addr] = append(p.idle[addr], idleConn{pc: pc, since: time.Now()})
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	pc.close()
}

// Close drops all idle ordered connections and every shared mux
// connection. In-flight ordered calls are unaffected; in-flight mux calls
// fail with a transport error.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	idle := p.idle
	peers := p.peers
	p.idle = make(map[string][]idleConn)
	p.peers = make(map[string]*muxPeer)
	p.mu.Unlock()
	for _, conns := range idle {
		for _, ic := range conns {
			ic.pc.close()
		}
	}
	for _, mp := range peers {
		mp.closeAll()
	}
}

// Stream is a pipelined exchange: the caller may Send several requests
// before Recving their responses, which arrive in request order. This is
// how the sliding-window data path keeps multiple chunks in flight per
// server. Over a mux connection the stream's requests share the wire with
// every other call to that peer (each request is its own mux stream;
// Recv restores request order from the demux); in ordered mode the stream
// owns one pooled connection, as before. A Stream is not safe for
// concurrent use.
type Stream struct {
	p      *Pool
	addr   string
	pooled bool // conn predates this stream (may be stale)
	sent   int  // responses still owed by the server
	broken bool

	// ordered mode
	pc *poolConn

	// mux mode
	mc      *muxConn
	pending []pendingCall
	prev    []byte // pooled buffer backing the last Recv'd message
}

// pendingCall is one in-flight mux request of a Stream.
type pendingCall struct {
	id uint32
	ch chan muxResult
}

// Stream opens a pipelined exchange with addr: over the peer's shared mux
// connection when it speaks mux, otherwise on an (ideally idle pooled)
// ordered connection. The caller must finish with Release.
func (p *Pool) Stream(addr string) (*Stream, error) {
	for {
		mp, err := p.muxFor(addr)
		if err != nil {
			return nil, err
		}
		if mp == nil {
			pc, pooled, err := p.get(addr)
			if err != nil {
				return nil, err
			}
			return &Stream{p: p, addr: addr, pc: pc, pooled: pooled}, nil
		}
		mc, fresh, err := mp.conn()
		if errors.Is(err, errMuxDemoted) {
			continue
		}
		if err != nil {
			return nil, err
		}
		return &Stream{p: p, addr: addr, mc: mc, pooled: !fresh}, nil
	}
}

// Pooled reports whether the stream rides a connection that predates it —
// callers use it to decide whether a transport failure warrants one retry
// on a fresh dial (the connection may simply have gone stale).
func (s *Stream) Pooled() bool { return s.pooled }

// Send writes one request frame without waiting for its response.
func (s *Stream) Send(req wire.Message) error {
	if s.mc != nil {
		id, ch, err := s.mc.send(req)
		if err != nil {
			s.broken = true
			return err
		}
		s.pending = append(s.pending, pendingCall{id: id, ch: ch})
		s.sent++
		return nil
	}
	if err := wire.WriteMessage(s.pc.c, req); err != nil {
		s.broken = true
		return err
	}
	s.sent++
	return nil
}

// Recv reads the next response in request order. A wire.ErrorMsg is
// converted to *RemoteError (the stream stays usable: the server keeps
// answering pipelined requests after an error response). The returned
// message may alias a pooled decode buffer and is valid only until the
// next Recv or Release; callers that retain it must wire.Own it.
func (s *Stream) Recv() (wire.Message, error) {
	if s.mc != nil {
		if len(s.pending) == 0 {
			return nil, errors.New("pfs: Recv with no pending Send")
		}
		if s.prev != nil {
			wire.PutBuf(s.prev)
			s.prev = nil
		}
		next := s.pending[0]
		s.pending = s.pending[1:]
		res := <-next.ch
		s.sent--
		if res.err != nil {
			s.broken = true
			return nil, res.err
		}
		if em, ok := res.msg.(*wire.ErrorMsg); ok {
			re := &RemoteError{Code: em.Code, Op: em.Op, Detail: em.Detail}
			wire.PutBuf(res.buf)
			return nil, re
		}
		s.prev = res.buf
		return res.msg, nil
	}
	resp, err := s.pc.fr.Read()
	if err != nil {
		s.broken = true
		return nil, err
	}
	s.sent--
	if em, ok := resp.(*wire.ErrorMsg); ok {
		return nil, &RemoteError{Code: em.Code, Op: em.Op, Detail: em.Detail}
	}
	return resp, nil
}

// Release finishes the stream. In mux mode there is nothing to pool —
// the connection is shared — so Release only recycles buffers and
// abandons still-pending responses (the demux drops them on arrival). In
// ordered mode a healthy, fully drained connection returns to the idle
// pool; anything else closes it, because the next user could not tell
// stale responses from its own.
func (s *Stream) Release() {
	if s.mc != nil {
		if s.prev != nil {
			wire.PutBuf(s.prev)
			s.prev = nil
		}
		for _, pc := range s.pending {
			s.mc.forget(pc.id)
			select {
			case res := <-pc.ch:
				// Response landed before the forget; recycle its buffer.
				wire.PutBuf(res.buf)
			default:
				// Not yet arrived (the demux will drop it), or arriving
				// right now — in that razor-thin window the buffer is
				// left for the GC, which is safe, just a pool miss.
			}
		}
		s.pending = nil
		return
	}
	if s.broken || s.sent != 0 {
		s.pc.close()
		return
	}
	s.p.put(s.addr, s.pc)
}

// Handler processes one request message and returns the response. Returning
// an error sends a wire.ErrorMsg built with ToErrorMsg.
type Handler interface {
	Handle(m wire.Message) (wire.Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m wire.Message) (wire.Message, error)

// Handle calls f(m).
func (f HandlerFunc) Handle(m wire.Message) (wire.Message, error) { return f(m) }

// PostWriter is implemented by handlers that need a callback after the
// response has been written to the connection. The data server uses it to
// keep a request counted as in flight for the full service time — handler
// plus response transfer — which is what the Contention Estimator's
// normal-I/O pressure signal must reflect on slow (shaped) links.
type PostWriter interface {
	PostWrite(req, resp wire.Message)
}

// ToErrorMsg converts err into the wire error response for operation op,
// preserving the code of a RemoteError being relayed.
func ToErrorMsg(op string, err error) *wire.ErrorMsg {
	var re *RemoteError
	if errors.As(err, &re) {
		return &wire.ErrorMsg{Code: re.Code, Op: op, Detail: re.Detail}
	}
	code := wire.StatusInternal
	switch {
	case errors.Is(err, ErrNotFound):
		code = wire.StatusNotFound
	case errors.Is(err, ErrExists):
		code = wire.StatusExists
	case errors.Is(err, ErrInvalid):
		code = wire.StatusInvalid
	case errors.Is(err, ErrUnsupported):
		code = wire.StatusUnsupported
	case errors.Is(err, ErrCancelled):
		code = wire.StatusCancelled
	}
	return &wire.ErrorMsg{Code: code, Op: op, Detail: err.Error()}
}

// Sentinel errors mapped onto wire status codes.
var (
	ErrNotFound    = errors.New("pfs: not found")
	ErrExists      = errors.New("pfs: already exists")
	ErrInvalid     = errors.New("pfs: invalid argument")
	ErrUnsupported = errors.New("pfs: unsupported operation")
	ErrCancelled   = errors.New("pfs: request cancelled")
)

// Server accepts connections on a listener and dispatches requests to a
// Handler. A connection starts in ordered mode (one request at a time,
// served serially); a client HelloReq may upgrade it to mux mode, where
// requests on the connection are handled concurrently under a bounded
// semaphore and responses complete out of order.
type Server struct {
	l       transport.Listener
	h       Handler
	noMux   bool
	stats   *wire.FrameStats
	plain   bool
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool
	done    chan struct{}
}

// NewServer returns a server ready to Run.
func NewServer(l transport.Listener, h Handler) *Server {
	return &Server{l: l, h: h, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
}

// SetMux enables or disables the mux upgrade (it is enabled by default;
// disabling makes the server decline every HelloReq, emulating an
// un-upgraded peer). Call before Start.
func (s *Server) SetMux(enabled bool) { s.noMux = !enabled }

// SetFrameStats shares st with every connection's framing writer, so
// sendfile/writev/copy accounting lands in one place (the data server's
// WireStats). Call before Start.
func (s *Server) SetFrameStats(st *wire.FrameStats) { s.stats = st }

// SetPlainWrites disables the by-reference frame fast paths on every
// connection: responses are materialized and written contiguously, as
// before the zero-copy path existed (A/B benchmarking). Call before
// Start.
func (s *Server) SetPlainWrites(on bool) { s.plain = on }

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.l.Addr() }

// Run accepts connections until Close is called. It always returns a
// non-nil error; after Close the error is transport.ErrClosed.
func (s *Server) Run() error {
	defer close(s.done)
	for {
		c, err := s.l.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return transport.ErrClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			c.Close()
			return transport.ErrClosed
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// Start runs the server in a new goroutine and returns immediately.
func (s *Server) Start() { go s.Run() } //nolint:errcheck // accept-loop errors surface via Close

// safeHandle dispatches one request, converting a handler panic into an
// error so a bad request cannot take down the connection (ordered mode)
// or the whole shared connection (mux mode).
func safeHandle(h Handler, req wire.Message) (resp wire.Message, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("handler panic: %v", r)
		}
	}()
	return h.Handle(req)
}

func (s *Server) serveConn(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	pw, _ := s.h.(PostWriter)
	fr := wire.NewFrameReader(c)
	defer fr.Close()
	for {
		// The request may alias fr's pooled buffer; that is safe because
		// every handler finishes with the request before returning, and the
		// next fr.Read happens only after the response is written.
		req, err := fr.Read()
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		if hello, ok := req.(*wire.HelloReq); ok {
			if s.noMux || hello.MaxVersion < wire.MuxVersion {
				if wire.WriteMessage(c, &wire.HelloResp{Version: 0}) != nil {
					return
				}
				continue // connection stays ordered
			}
			seg := clampSegment(hello.MaxSegment)
			resp := &wire.HelloResp{Version: wire.MuxVersion, MaxSegment: uint32(seg)}
			if wire.WriteMessage(c, resp) != nil {
				return
			}
			s.serveMux(c, seg, pw)
			return
		}
		var werr error
		resp, herr := safeHandle(s.h, req)
		if herr != nil {
			resp = ToErrorMsg(req.Type().String(), herr)
		}
		if resp != nil {
			werr = wire.WriteMessageOpts(c, resp, wire.WriteOptions{Stats: s.stats, Plain: s.plain})
		}
		if pw != nil {
			// Always fires once per handled request — even when the handler
			// returned nil or the write failed — so per-request accounting
			// (the data.inflight gauge, pooled read buffers) stays balanced.
			pw.PostWrite(req, resp)
		}
		if resp == nil || werr != nil {
			return
		}
	}
}

// clampSegment bounds a peer-proposed segment size to sane values.
func clampSegment(n uint32) int {
	if n < wire.MinMuxSegment {
		return wire.MinMuxSegment
	}
	if n > wire.DefaultMuxSegment {
		return wire.DefaultMuxSegment
	}
	return int(n)
}

// muxServerConcurrency bounds concurrently executing handlers per mux
// connection. The read loop acquires a slot before spawning, so a flood
// of requests backpressures onto the socket instead of goroutines.
const muxServerConcurrency = 32

// serveMux serves one upgraded connection: requests dispatch concurrently,
// each response is enqueued to the priority-aware writer under its
// request's stream ID. PostWrite accounting matches ordered mode — the
// callback fires after the response is on the wire (or has failed), once
// per request.
func (s *Server) serveMux(c net.Conn, segment int, pw PostWriter) {
	mw := wire.NewMuxWriter(c, segment)
	mw.Stats = s.stats
	mw.Plain = s.plain
	mr := wire.NewMuxReader(c)
	defer mr.Close()
	sem := make(chan struct{}, muxServerConcurrency)
	var wg sync.WaitGroup
	for {
		f, err := mr.Read()
		if err != nil {
			break // EOF or protocol error: stop reading, flush what's in flight
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(f wire.MuxFrame) {
			defer func() { <-sem; wg.Done() }()
			req := f.Msg
			resp, herr := safeHandle(s.h, req)
			if herr != nil {
				resp = ToErrorMsg(req.Type().String(), herr)
			}
			if resp == nil {
				// Ordered mode hangs up on nil responses; a mux conn is
				// shared with other callers, so answer with an error
				// instead of tearing everyone down.
				resp = &wire.ErrorMsg{Code: wire.StatusInternal,
					Op: req.Type().String(), Detail: "handler returned no response"}
			}
			buf := f.Buf
			mw.Enqueue(resp, f.Stream, func(error) { //nolint:errcheck // done callback handles failure
				// Runs after the response hit the wire or definitively
				// failed: either way the exchange is over, so PostWrite
				// fires exactly once and the request buffer (which req
				// aliases) is recycled.
				if pw != nil {
					pw.PostWrite(req, resp)
				}
				wire.PutBuf(buf)
			})
		}(f)
	}
	wg.Wait()
	mw.Close()
}

// Close stops accepting, closes all live connections, and waits for the
// accept loop to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closing = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.l.Close()
	<-s.done
}
