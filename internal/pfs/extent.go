package pfs

// ExtentStore: the disk backend behind the zero-copy read path. Each
// handle's stream is cut into fixed-size extents, one file per extent:
//
//	<dir>/extent.conf            extent size, pinned at first creation
//	<dir>/h<%016x>/e<%08x>.ext   extent files, sparse, ≤ extent size
//
// The layout is chosen for the serving path, not the write path: a bulk
// read maps to a handful of (file, offset, length) sections — exactly
// what wire.FilePayload wants for sendfile — while keeping every
// descriptor small enough that the capped fd cache covers a node's
// working set. Holes are represented twice over: an extent file missing
// entirely, or a file shorter than the data logically above it; both
// read as zeros.
//
// Stream size is not stored separately. Invariant: the highest-numbered
// extent file ends exactly where the stream does, so
//
//	size = lastIdx*extentSize + len(last extent file)
//
// WriteAt maintains it for free (pwrite extends the touched file);
// Truncate re-establishes it by deleting later extents and truncating
// the boundary extent to the exact local length (sparse-extending it
// when the truncate grows the stream, matching FileStore semantics).
// Reopening a directory after a crash or restart just rescans — there
// is no journal to replay and no metadata to trust.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"dosas/internal/wire"
)

// DefaultExtentSize is the extent size new stores are created with:
// large enough that a windowed 4 MiB chunk read usually stays within
// one extent (one sendfile call), small enough that sparse streams
// don't concentrate into jumbo files.
const DefaultExtentSize int64 = 16 << 20

// extentConfName pins the store's extent size across restarts — mixing
// sizes over one directory would silently shear every stream.
const extentConfName = "extent.conf"

// ExtentConfig configures an ExtentStore.
type ExtentConfig struct {
	// Dir roots the store; created if needed.
	Dir string
	// ExtentSize is used when creating a fresh directory (default
	// DefaultExtentSize). Reopening an existing store always uses the
	// size recorded in its extent.conf.
	ExtentSize int64
	// FDCacheSize caps open extent descriptors (default
	// DefaultFDCacheSize).
	FDCacheSize int
	// Sync fsyncs extent files after every write/truncate. Off by
	// default; see FileStoreConfig.Sync.
	Sync bool
}

// ExtentStore implements Store and RangeReader over a directory of
// extent files.
type ExtentStore struct {
	dir  string
	ext  int64
	sync bool
	fds  *fdCache

	mu    sync.Mutex
	sizes map[uint64]int64 // stream sizes; scanned on first touch
}

// NewExtentStore opens (creating if needed) an extent store per cfg.
func NewExtentStore(cfg ExtentConfig) (*ExtentStore, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("pfs: extentstore: %w", err)
	}
	ext := cfg.ExtentSize
	if ext <= 0 {
		ext = DefaultExtentSize
	}
	confPath := filepath.Join(cfg.Dir, extentConfName)
	if raw, err := os.ReadFile(confPath); err == nil {
		v, perr := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64)
		if perr != nil || v <= 0 {
			return nil, fmt.Errorf("pfs: extentstore: bad %s: %q", extentConfName, raw)
		}
		ext = v
	} else if os.IsNotExist(err) {
		if werr := os.WriteFile(confPath, []byte(strconv.FormatInt(ext, 10)+"\n"), 0o644); werr != nil {
			return nil, fmt.Errorf("pfs: extentstore: %w", werr)
		}
	} else {
		return nil, fmt.Errorf("pfs: extentstore: %w", err)
	}
	return &ExtentStore{
		dir: cfg.Dir, ext: ext, sync: cfg.Sync,
		fds:   newFDCache(cfg.FDCacheSize),
		sizes: make(map[uint64]int64),
	}, nil
}

// ExtentSize returns the store's extent size (tests, tools).
func (s *ExtentStore) ExtentSize() int64 { return s.ext }

func (s *ExtentStore) handleDir(handle uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("h%016x", handle))
}

func (s *ExtentStore) extentPath(handle uint64, idx int64) string {
	return filepath.Join(s.handleDir(handle), fmt.Sprintf("e%08x.ext", idx))
}

// extent acquires the cached descriptor for one extent file. The caller
// must release the entry.
func (s *ExtentStore) extent(handle uint64, idx int64, create bool) (*fdEntry, error) {
	return s.fds.acquire(fdKey{handle: handle, ext: uint32(idx)}, func() (*os.File, error) {
		flags := os.O_RDWR
		if create {
			flags |= os.O_CREATE
		}
		return os.OpenFile(s.extentPath(handle, idx), flags, 0o644)
	})
}

// parseExtentName returns the index encoded in an extent file name, or
// -1 for foreign files.
func parseExtentName(name string) int64 {
	hexa, ok := strings.CutPrefix(name, "e")
	if !ok {
		return -1
	}
	hexa, ok = strings.CutSuffix(hexa, ".ext")
	if !ok {
		return -1
	}
	v, err := strconv.ParseInt(hexa, 16, 64)
	if err != nil || v < 0 {
		return -1
	}
	return v
}

// scanSize derives handle's stream size from the directory: the end of
// the highest-numbered extent file (the layout invariant).
func (s *ExtentStore) scanSize(handle uint64) (int64, error) {
	ents, err := os.ReadDir(s.handleDir(handle))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	last := int64(-1)
	lastName := ""
	for _, ent := range ents {
		if idx := parseExtentName(ent.Name()); idx > last {
			last, lastName = idx, ent.Name()
		}
	}
	if last < 0 {
		return 0, nil
	}
	fi, err := os.Stat(filepath.Join(s.handleDir(handle), lastName))
	if err != nil {
		return 0, err
	}
	return last*s.ext + fi.Size(), nil
}

// sizeLoad returns handle's stream size, scanning the directory on the
// first touch and the size cache afterwards.
func (s *ExtentStore) sizeLoad(handle uint64) (int64, error) {
	s.mu.Lock()
	if sz, ok := s.sizes[handle]; ok {
		s.mu.Unlock()
		return sz, nil
	}
	s.mu.Unlock()
	sz, err := s.scanSize(handle)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	if cur, ok := s.sizes[handle]; ok && cur > sz {
		sz = cur // a write raced the scan and grew the stream
	}
	s.sizes[handle] = sz
	s.mu.Unlock()
	return sz, nil
}

// growSize raises the cached size to at least end.
func (s *ExtentStore) growSize(handle uint64, end int64) {
	s.mu.Lock()
	if end > s.sizes[handle] {
		s.sizes[handle] = end
	}
	s.mu.Unlock()
}

// ReadAt implements Store.
func (s *ExtentStore) ReadAt(handle uint64, p []byte, off uint64) (int, error) {
	size, err := s.sizeLoad(handle)
	if err != nil {
		return 0, err
	}
	if int64(off) >= size || len(p) == 0 {
		return 0, nil
	}
	n := int(min(int64(len(p)), size-int64(off)))
	done := 0
	for done < n {
		o := int64(off) + int64(done)
		idx, local := o/s.ext, o%s.ext
		k := int(min(s.ext-local, int64(n-done)))
		dst := p[done : done+k]
		e, err := s.extent(handle, idx, false)
		switch {
		case os.IsNotExist(err):
			clear(dst) // whole extent missing: hole
		case err != nil:
			return done, err
		default:
			m, rerr := e.f.ReadAt(dst, local)
			s.fds.release(e)
			if m < k {
				if rerr != nil && !errors.Is(rerr, io.EOF) {
					return done + m, rerr
				}
				clear(dst[m:]) // file shorter than the data above it: hole
			}
		}
		done += k
	}
	return n, nil
}

// WriteAt implements Store.
func (s *ExtentStore) WriteAt(handle uint64, p []byte, off uint64) (int, error) {
	if len(p) == 0 {
		return 0, nil // zero-length writes do not extend (POSIX pwrite)
	}
	if _, err := s.sizeLoad(handle); err != nil {
		return 0, err // prime the size cache before growSize below
	}
	if err := os.MkdirAll(s.handleDir(handle), 0o755); err != nil {
		return 0, err
	}
	written := 0
	for written < len(p) {
		o := int64(off) + int64(written)
		idx, local := o/s.ext, o%s.ext
		k := int(min(s.ext-local, int64(len(p)-written)))
		e, err := s.extent(handle, idx, true)
		if err != nil {
			return written, err
		}
		_, werr := e.f.WriteAt(p[written:written+k], local)
		if werr == nil && s.sync {
			werr = e.f.Sync()
		}
		s.fds.release(e)
		if werr != nil {
			return written, werr
		}
		written += k
	}
	s.growSize(handle, int64(off)+int64(len(p)))
	return written, nil
}

// Size implements Store.
func (s *ExtentStore) Size(handle uint64) uint64 {
	sz, err := s.sizeLoad(handle)
	if err != nil || sz < 0 {
		return 0
	}
	return uint64(sz)
}

// Truncate implements Store. Like FileStore it sets the exact stream
// size — shrinking discards, growing extends with a hole — and no-ops
// on a handle that has no stream.
func (s *ExtentStore) Truncate(handle uint64, size uint64) error {
	if _, err := os.Stat(s.handleDir(handle)); os.IsNotExist(err) {
		return nil
	} else if err != nil {
		return err
	}
	lastIdx := int64(0)
	local := int64(0)
	if size > 0 {
		lastIdx = int64(size-1) / s.ext
		local = int64(size) - lastIdx*s.ext
	}
	// Drop extents past the new boundary.
	ents, err := os.ReadDir(s.handleDir(handle))
	if err != nil {
		return err
	}
	for _, ent := range ents {
		idx := parseExtentName(ent.Name())
		if idx < 0 || (size > 0 && idx <= lastIdx) {
			continue // foreign file, or an extent that survives
		}
		s.fds.invalidate(fdKey{handle: handle, ext: uint32(idx)})
		if rerr := os.Remove(filepath.Join(s.handleDir(handle), ent.Name())); rerr != nil && !os.IsNotExist(rerr) {
			return rerr
		}
	}
	if size > 0 {
		// Pin the boundary extent to the exact local length, creating it
		// if the truncate grows the stream into untouched space.
		e, err := s.extent(handle, lastIdx, true)
		if err != nil {
			return err
		}
		terr := e.f.Truncate(local)
		if terr == nil && s.sync {
			terr = e.f.Sync()
		}
		s.fds.release(e)
		if terr != nil {
			return terr
		}
	}
	s.mu.Lock()
	s.sizes[handle] = int64(size)
	s.mu.Unlock()
	return nil
}

// Remove implements Store.
func (s *ExtentStore) Remove(handle uint64) error {
	s.fds.invalidateHandle(handle)
	s.mu.Lock()
	delete(s.sizes, handle)
	s.mu.Unlock()
	return os.RemoveAll(s.handleDir(handle))
}

// Close implements Store.
func (s *ExtentStore) Close() error { return s.fds.closeAll() }

// ReadRange implements RangeReader: the zero-copy read path. The
// returned payload references the extent files directly (missing
// extents become zero sections) and pins their fd-cache entries until
// Close.
func (s *ExtentStore) ReadRange(handle uint64, off, n uint64) (wire.Payload, error) {
	size, err := s.sizeLoad(handle)
	if err != nil {
		return nil, err
	}
	if int64(off)+int64(n) > size {
		return nil, fmt.Errorf("%w: range [%d,%d) past stream end %d", ErrInvalid, off, off+n, size)
	}
	secs := make([]wire.FileSection, 0, int64(n)/s.ext+2)
	held := make([]*fdEntry, 0, cap(secs))
	release := func() {
		for _, e := range held {
			s.fds.release(e)
		}
	}
	for rem := int64(n); rem > 0; {
		o := int64(off) + int64(n) - rem
		idx, local := o/s.ext, o%s.ext
		k := min(s.ext-local, rem)
		e, err := s.extent(handle, idx, false)
		switch {
		case os.IsNotExist(err):
			secs = append(secs, wire.FileSection{N: k}) // hole: zeros
		case err != nil:
			release()
			return nil, err
		default:
			held = append(held, e)
			secs = append(secs, wire.FileSection{F: e.f, Off: local, N: k})
		}
		rem -= k
	}
	return wire.NewFilePayload(secs, release), nil
}
