package pfs

// Admission QoS for the serving path. PR 8 attributed resource usage to
// tenants; this gate enforces it. Every data/metadata request passes
// through a QoSGate before touching the store: the gate holds a bounded
// number of service slots and admits queued requests in weighted
// deficit-round-robin order across tenants (internal/ioqueue), so an
// aggressor tenant's flood queues against its own token bucket instead
// of shoving a victim's requests arbitrarily deep into a FIFO. The gate
// is work-conserving — with one tenant queued it only bounds
// concurrency, exactly like the semaphore it replaces.

import (
	"sync/atomic"

	"dosas/internal/ioqueue"
	"dosas/internal/tenant"
)

// DefaultQoSSlots is how many admitted requests a gate lets run at once
// when QoSConfig.Slots is zero. It intentionally mirrors the mux
// framing's per-connection handler concurrency: the gate shapes order,
// the slots bound parallelism.
const DefaultQoSSlots = 16

// QoSConfig configures a server's admission gate.
type QoSConfig struct {
	// Slots bounds concurrently admitted requests (0 = DefaultQoSSlots).
	Slots int
	// Quantum is the per-round WDRR credit in bytes for a weight-1
	// tenant (0 = ioqueue.DefaultQuantum).
	Quantum int
	// Weights are the per-tenant scheduling weights; absent tenants get
	// weight 1. Nil means equal weights for everyone.
	Weights map[string]float64
}

// QoSGate admits requests through a weighted-fair queue into a bounded
// slot pool. All methods are nil-receiver safe: a nil gate admits
// everything immediately (QoS disabled).
type QoSGate struct {
	q     *ioqueue.Queue
	slots chan struct{}
	ids   atomic.Uint64
}

// NewQoSGate starts a gate and its dispatcher. Close it to release the
// dispatcher goroutine.
func NewQoSGate(cfg QoSConfig) *QoSGate {
	slots := cfg.Slots
	if slots <= 0 {
		slots = DefaultQoSSlots
	}
	g := &QoSGate{q: ioqueue.New(), slots: make(chan struct{}, slots)}
	if cfg.Quantum > 0 {
		g.q.SetQuantum(cfg.Quantum)
	}
	g.q.SetWeights(cfg.Weights)
	go g.dispatch()
	return g
}

// SetTenants attaches the node's tenant table so gate queue time lands
// in per-tenant Queued/QueueWaitNanos — the accounting behind the
// tenant.wait.share probe and the noisy-neighbor alert.
func (g *QoSGate) SetTenants(t *tenant.Table) {
	if g != nil {
		g.q.SetTenants(t)
	}
}

// Stats exposes the underlying queue's occupancy and QoS counters.
func (g *QoSGate) Stats() ioqueue.Stats {
	if g == nil {
		return ioqueue.Stats{}
	}
	return g.q.Stats()
}

// Close shuts the gate down. Queued tickets are still dispatched in
// order; new Enqueues are admitted immediately (fail open).
func (g *QoSGate) Close() {
	if g != nil {
		g.q.Close()
	}
}

// dispatch is the gate's single scheduler: it binds one free slot to the
// next item the weighted-fair queue elects, forever. Grant order is
// therefore exactly WDRR order even when many requests race.
func (g *QoSGate) dispatch() {
	for {
		g.slots <- struct{}{}
		it, err := g.q.Pop()
		if err != nil {
			<-g.slots
			return
		}
		t := it.Payload.(*Ticket)
		t.slot = true
		t.ch <- true
	}
}

// Ticket is one request's place in the gate. The caller must Wait for
// admission and — when Wait returned true — Release the slot when the
// request finishes serving.
type Ticket struct {
	id   uint64
	g    *QoSGate
	ch   chan bool
	slot bool // holds a gate slot; set by the dispatcher before granting
	done atomic.Bool
}

// Enqueue files a request with the gate and returns its ticket
// immediately, so the caller can register cancellation before blocking
// in Wait. A nil gate (or a closed one) returns an already-admitted
// ticket that holds no slot.
func (g *QoSGate) Enqueue(class ioqueue.Class, tenantID string, bytes uint64) *Ticket {
	t := &Ticket{g: g, ch: make(chan bool, 1)}
	if g == nil {
		t.ch <- true
		return t
	}
	t.id = g.ids.Add(1)
	if err := g.q.Push(ioqueue.Item{
		ID: t.id, Class: class, Tenant: tenantID, Bytes: bytes, Payload: t,
	}); err != nil {
		// Gate closed: fail open rather than wedge the serving path.
		t.ch <- true
	}
	return t
}

// Cancel withdraws a still-queued ticket: its Wait returns false and no
// slot is consumed. Returns false when the ticket already left the
// queue (granted, or previously cancelled) — in-flight cancellation is
// the response writer's job, not the gate's.
func (g *QoSGate) Cancel(t *Ticket) bool {
	if g == nil || t == nil || t.id == 0 {
		return false
	}
	if _, ok := g.q.Remove(t.id); ok {
		t.ch <- false
		return true
	}
	return false
}

// Wait blocks until the gate admits (true) or cancels (false) the
// ticket.
func (t *Ticket) Wait() bool { return <-t.ch }

// Release returns the ticket's slot to the gate. Idempotent; a no-op
// for tickets that never held a slot (cancelled, nil gate, fail-open).
func (t *Ticket) Release() {
	if t == nil || !t.done.CompareAndSwap(false, true) {
		return
	}
	if t.slot {
		<-t.g.slots
	}
}
