package pfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dosas/internal/ioqueue"
	"dosas/internal/transport"
	"dosas/internal/wire"
)

// TestQoSGateWeightedOrder pins the gate's admission order to WDRR: with
// the single slot held, queued tenants drain proportionally to their
// weights, not in arrival order.
func TestQoSGateWeightedOrder(t *testing.T) {
	g := NewQoSGate(QoSConfig{
		Slots:   1,
		Quantum: 4096,
		Weights: map[string]float64{"a": 2, "b": 1},
	})
	defer g.Close()

	// Occupy the only slot so everything below queues behind it.
	hold := g.Enqueue(ioqueue.Normal, "warm", 1)
	if !hold.Wait() {
		t.Fatal("warm ticket not admitted")
	}

	order := make(chan string, 8)
	var wg sync.WaitGroup
	enq := func(tenant string) {
		tk := g.Enqueue(ioqueue.Normal, tenant, 4096)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tk.Wait() {
				order <- tenant
				tk.Release()
			}
		}()
	}
	// Arrival order alternates so FIFO admission would yield a,b,a,b...
	for i := 0; i < 4; i++ {
		enq("a")
		enq("b")
	}
	hold.Release()
	wg.Wait()
	close(order)

	var got []string
	for tenant := range order {
		got = append(got, tenant)
	}
	if len(got) != 8 {
		t.Fatalf("granted %d tickets, want 8", len(got))
	}
	// First WDRR round: weight-2 "a" gets two grants per one of "b".
	firstA := 0
	for _, tenant := range got[:3] {
		if tenant == "a" {
			firstA++
		}
	}
	if firstA != 2 {
		t.Errorf("first round grants = %v, want 2×a + 1×b in the first 3", got[:3])
	}
}

// TestQoSGateCancelWhileQueued: a queued ticket withdrawn by Cancel must
// wake its waiter with false, consume no slot, and leave the gate
// serving later arrivals.
func TestQoSGateCancelWhileQueued(t *testing.T) {
	g := NewQoSGate(QoSConfig{Slots: 1})
	defer g.Close()

	hold := g.Enqueue(ioqueue.Normal, "warm", 1)
	if !hold.Wait() {
		t.Fatal("warm ticket not admitted")
	}
	victim := g.Enqueue(ioqueue.Normal, "a", 4096)
	if !g.Cancel(victim) {
		t.Fatal("Cancel of a queued ticket reported not found")
	}
	if victim.Wait() {
		t.Fatal("cancelled ticket was admitted")
	}
	victim.Release() // must be a harmless no-op without a slot

	// Cancelling again — or cancelling an already-granted ticket — is a
	// polite no-op.
	if g.Cancel(victim) {
		t.Error("second Cancel reported found")
	}
	if g.Cancel(hold) {
		t.Error("Cancel of a granted ticket reported found")
	}

	next := g.Enqueue(ioqueue.Normal, "b", 4096)
	hold.Release()
	if !next.Wait() {
		t.Fatal("ticket after a cancellation never admitted")
	}
	next.Release()
}

// A nil gate (QoS disabled) admits everything immediately and never
// panics — the serving path calls it unconditionally.
func TestQoSGateNilFailOpen(t *testing.T) {
	var g *QoSGate
	tk := g.Enqueue(ioqueue.Normal, "a", 1)
	if !tk.Wait() {
		t.Fatal("nil gate did not admit")
	}
	tk.Release()
	g.SetTenants(nil)
	g.Close()
	if st := g.Stats(); st.NormalLen != 0 {
		t.Errorf("nil gate stats = %+v", st)
	}
	if g.Cancel(tk) {
		t.Error("nil gate Cancel reported found")
	}
}

// TestCancelRegistryTombstone covers the mux dispatch race where the
// CancelReq overtakes its ReadReq: the unknown hedge-tagged id leaves a
// flagged tombstone, the late register picks it up, and expired
// tombstones are swept.
func TestCancelRegistryTombstone(t *testing.T) {
	var r cancelRegistry
	now := time.Unix(1000, 0)
	r.now = func() time.Time { return now }

	id := HedgeIDBit | 7
	if r.cancel(id) {
		t.Fatal("cancel of unknown id reported found")
	}
	cs := r.register(id)
	if !cs.flag.Load() {
		t.Fatal("register after cancel lost the tombstone flag")
	}
	r.unregister(id)

	// Non-hedge ids never tombstone: the active runtime owns that space.
	if r.cancel(42) {
		t.Fatal("cancel of unknown active id reported found")
	}
	if len(r.m) != 0 {
		t.Fatalf("active-id cancel left %d registry entries", len(r.m))
	}

	// A tombstone whose ReadReq never arrives is swept after the TTL.
	r.cancel(HedgeIDBit | 8)
	now = now.Add(tombstoneTTL + time.Second)
	r.cancel(HedgeIDBit | 9) // sweep happens on the next unknown cancel
	r.mu.Lock()
	_, stale := r.m[HedgeIDBit|8]
	r.mu.Unlock()
	if stale {
		t.Error("expired tombstone survived the sweep")
	}
}

// TestServerCancelBeforeRead drives the tombstone race end to end: a
// CancelReq arriving before its ReadReq must make the read answer
// StatusCancelled instead of serving withdrawn bytes.
func TestServerCancelBeforeRead(t *testing.T) {
	tc := startCluster(t, 1)
	pool := tc.client.Pool()

	id := HedgeIDBit | 99
	resp, err := pool.Call("data-0", &wire.CancelReq{RequestID: id})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*wire.CancelResp).Found {
		t.Fatal("cancel of a not-yet-arrived read reported found")
	}
	_, err = pool.Call("data-0", &wire.ReadReq{Handle: 1, Length: 4096, ReqID: id})
	if !IsCancelled(err) {
		t.Fatalf("read after cancel = %v, want cancelled", err)
	}
	if v := tc.datas[0].Metrics().Counter("data.read_cancelled").Value(); v != 1 {
		t.Errorf("data.read_cancelled = %d, want 1", v)
	}
}

// TestCancelInFlightReadZeroFills cancels a windowed read while chunk
// requests are pipelined against a slow store, in both framings. The
// server must stop serving real bytes for the chunks it had already
// accepted — zero-filling their committed frame space — and the
// in-flight accounting must drain back to zero. Over mux this exercises
// the concurrently-dispatched handlers racing the CancelReq; over the
// ordered framing, the cancel poll at frame-write time.
func TestCancelInFlightReadZeroFills(t *testing.T) {
	for _, mux := range []bool{true, false} {
		name := "ordered"
		if mux {
			name = "mux"
		}
		t.Run(name, func(t *testing.T) {
			net := transport.NewInproc()
			st := &slowStore{Store: NewMemStore()}
			st.delay.Store(int64(300 * time.Millisecond))
			ds, err := NewDataServer(DataConfig{Store: st})
			if err != nil {
				t.Fatal(err)
			}
			l, err := net.Listen("data-0")
			if err != nil {
				t.Fatal(err)
			}
			srv := NewServer(l, ds)
			srv.SetFrameStats(ds.WireStats())
			srv.Start()
			defer srv.Close()

			data := make([]byte, 1<<20)
			rand.New(rand.NewSource(7)).Read(data)
			if _, err := st.WriteAt(1, data, 0); err != nil {
				t.Fatal(err)
			}

			p := NewPool(net)
			if !mux {
				p.DisableMux()
			}
			defer p.Close()

			dst := make([]byte, len(data))
			ctl := p.NewReadControl("data-0")
			done := make(chan error, 1)
			go func() {
				_, err := p.ReadWindowedCtl("data-0", 1, dst, 0, 4, 256<<10, ctl)
				done <- err
			}()
			// All four chunk requests fit one window round, so by now every
			// one is registered at the server and stuck in the slow store —
			// the cancel lands squarely on in-flight reads.
			time.Sleep(100 * time.Millisecond)
			ctl.Cancel()

			select {
			case err := <-done:
				if !IsCancelled(err) {
					t.Fatalf("cancelled read returned %v, want cancelled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cancelled read never returned")
			}

			// The server observed the cancellation while frames were on the
			// wire: committed bytes were zero-filled, not served.
			waitFor(t, "cancelled bytes recorded", func() bool {
				return ds.WireStats().CancelledBytes.Load() > 0
			})
			// And the pressure gauge is conserved once everything drains.
			waitFor(t, "data.inflight back to 0", func() bool {
				return ds.Metrics().Gauge("data.inflight").Value() == 0
			})
		})
	}
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// slowStore delays reads only: writes replicate at full speed, so a
// straggling node is indistinguishable from a healthy one until it has
// to serve.
type slowStore struct {
	Store
	delay atomic.Int64 // nanoseconds per ReadAt
}

func (s *slowStore) ReadAt(handle uint64, p []byte, off uint64) (int, error) {
	if d := s.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return s.Store.ReadAt(handle, p, off)
}

// hedgeCluster is a 2-server cluster whose per-server read latency can
// be dialed up after layout placement is known.
type hedgeCluster struct {
	*testCluster
	stores []*slowStore
}

func startHedgeCluster(t *testing.T, hedgeAfter time.Duration) *hedgeCluster {
	t.Helper()
	const nData = 2
	net := transport.NewInproc()
	meta, err := NewMetaServer(MetaConfig{NumDataServers: nData})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := net.Listen("meta")
	if err != nil {
		t.Fatal(err)
	}
	ms := NewServer(ml, meta)
	ms.Start()
	t.Cleanup(ms.Close)

	hc := &hedgeCluster{testCluster: &testCluster{meta: meta}}
	var addrs []string
	for i := 0; i < nData; i++ {
		st := &slowStore{Store: NewMemStore()}
		ds, err := NewDataServer(DataConfig{Store: st})
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("data-%d", i)
		dl, err := net.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(dl, ds)
		srv.Start()
		t.Cleanup(srv.Close)
		addrs = append(addrs, addr)
		hc.stores = append(hc.stores, st)
		hc.datas = append(hc.datas, ds)
		hc.servers = append(hc.servers, srv)
	}
	c, err := NewClient(ClientConfig{
		Net: net, MetaAddr: "meta", DataAddrs: addrs, HedgeAfter: hedgeAfter,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	hc.client = c
	return hc
}

// writeReplicated creates a width-1, 2-replica file and returns it with
// its primary server index (layout placement decides which node that is).
func (hc *hedgeCluster) writeReplicated(t *testing.T, data []byte) (*File, int) {
	t.Helper()
	f, err := hc.client.CreateReplicated("hedge/f", 1<<20, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	return f, int(f.Layout().Servers[0])
}

// TestHedgedReadWinsOnSlowReplica: with the primary straggling well past
// the hedge delay, the duplicate read from the second replica must win
// and deliver correct bytes, with the race visible in the pool counters.
func TestHedgedReadWinsOnSlowReplica(t *testing.T) {
	hc := startHedgeCluster(t, 15*time.Millisecond)
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(11)).Read(data)
	f, prim := hc.writeReplicated(t, data)
	hc.stores[prim].delay.Store(int64(250 * time.Millisecond))

	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("hedged read corrupted data")
	}
	reg := hc.client.Pool().Metrics()
	if v := reg.Counter("pool.hedge.launched").Value(); v < 1 {
		t.Errorf("pool.hedge.launched = %d, want >= 1", v)
	}
	if v := reg.Counter("pool.hedge.wins").Value(); v < 1 {
		t.Errorf("pool.hedge.wins = %d, want >= 1", v)
	}
	if v := reg.Counter("pool.hedge.bytes").Value(); v < int64(len(data)) {
		t.Errorf("pool.hedge.bytes = %d, want >= %d (winning copy accounted)", v, len(data))
	}
}

// TestHedgeSurvivesPrimaryDeath kills the primary's server while the
// hedge is in flight: the hedge copy must complete the read.
func TestHedgeSurvivesPrimaryDeath(t *testing.T) {
	hc := startHedgeCluster(t, 10*time.Millisecond)
	data := make([]byte, 128<<10)
	rand.New(rand.NewSource(12)).Read(data)
	f, prim := hc.writeReplicated(t, data)
	hc.stores[prim].delay.Store(int64(2 * time.Second))
	hc.stores[1-prim].delay.Store(int64(80 * time.Millisecond))

	got := make([]byte, len(data))
	done := make(chan error, 1)
	go func() {
		_, err := f.ReadAt(got, 0)
		done <- err
	}()
	reg := hc.client.Pool().Metrics()
	waitFor(t, "hedge launch", func() bool {
		return reg.Counter("pool.hedge.launched").Value() >= 1
	})
	hc.servers[prim].Close() // primary node dies mid-read

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("read with dead primary = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("read never completed after primary death")
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover read corrupted data")
	}
	if v := reg.Counter("pool.hedge.wins").Value(); v < 1 {
		t.Errorf("pool.hedge.wins = %d, want >= 1", v)
	}
}

// TestPrimarySurvivesHedgeDeath is the mirror image: the hedge target
// dies while its duplicate read is in flight, and the straggling — but
// alive — primary must still finish the read.
func TestPrimarySurvivesHedgeDeath(t *testing.T) {
	hc := startHedgeCluster(t, 10*time.Millisecond)
	data := make([]byte, 128<<10)
	rand.New(rand.NewSource(13)).Read(data)
	f, prim := hc.writeReplicated(t, data)
	hc.stores[prim].delay.Store(int64(300 * time.Millisecond))
	hc.stores[1-prim].delay.Store(int64(300 * time.Millisecond))

	got := make([]byte, len(data))
	done := make(chan error, 1)
	go func() {
		_, err := f.ReadAt(got, 0)
		done <- err
	}()
	reg := hc.client.Pool().Metrics()
	waitFor(t, "hedge launch", func() bool {
		return reg.Counter("pool.hedge.launched").Value() >= 1
	})
	hc.servers[1-prim].Close() // hedge target dies mid-flight

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("read with dead hedge target = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("read never completed after hedge death")
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read corrupted data after hedge death")
	}
	if v := reg.Counter("pool.hedge.wins").Value(); v != 0 {
		t.Errorf("pool.hedge.wins = %d, want 0 (primary finished)", v)
	}
}

// TestReplicaOrderAvoidsStraggler: once the latency tracker has evidence
// that the primary is slow, plain (un-hedged) reads route to the faster
// replica without any failure having occurred.
func TestReplicaOrderAvoidsStraggler(t *testing.T) {
	hc := startHedgeCluster(t, 0) // hedging off: pure selection
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(14)).Read(data)
	f, prim := hc.writeReplicated(t, data)

	primAddr := fmt.Sprintf("data-%d", prim)
	lat := hc.client.Pool().Latency()
	for i := 0; i < 8; i++ {
		lat.Observe(primAddr, len(data), 50*time.Millisecond)
	}

	before := hc.datas[prim].Metrics().Counter("data.read").Value()
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("re-routed read corrupted data")
	}
	if after := hc.datas[prim].Metrics().Counter("data.read").Value(); after != before {
		t.Errorf("straggler served %d reads, want 0 (replica order should avoid it)", after-before)
	}
	if v := hc.datas[1-prim].Metrics().Counter("data.read").Value(); v < 1 {
		t.Errorf("fast replica served %d reads, want >= 1", v)
	}
}

// TestQoSGatedClusterEndToEnd smoke-tests the full serving path with
// admission gates on: reads and writes still round-trip, and the gate's
// stats register traffic.
func TestQoSGatedClusterEndToEnd(t *testing.T) {
	net := transport.NewInproc()
	qos := &QoSConfig{Slots: 2, Weights: map[string]float64{"app-a": 4}}
	meta, err := NewMetaServer(MetaConfig{NumDataServers: 1, QoS: qos})
	if err != nil {
		t.Fatal(err)
	}
	ml, _ := net.Listen("meta")
	ms := NewServer(ml, meta)
	ms.Start()
	t.Cleanup(ms.Close)

	ds, err := NewDataServer(DataConfig{Store: NewMemStore(), QoS: qos})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ds.Close)
	dl, _ := net.Listen("data-0")
	srv := NewServer(dl, ds)
	srv.Start()
	t.Cleanup(srv.Close)

	c, err := NewClient(ClientConfig{
		Net: net, MetaAddr: "meta", DataAddrs: []string{"data-0"}, Tenant: "app-a",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	f, err := c.Create("qos/x", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 32<<10)
	rand.New(rand.NewSource(15)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("gated round trip corrupted data")
	}
	if _, err := c.Stat("qos/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.List("qos/"); err != nil {
		t.Fatal(err)
	}
	if errors.Is(err, ErrCancelled) {
		t.Fatal("uncontended gated traffic must never cancel")
	}
}
