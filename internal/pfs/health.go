package pfs

import (
	"fmt"
	"time"

	"dosas/internal/telemetry"
	"dosas/internal/wire"
)

// healthChecker is how a data server discovers per-resource readiness
// from its attached active runtime without importing core (which imports
// pfs) — the same anonymous-assertion pattern as ModeName in stats.
type healthChecker interface {
	HealthChecks() []telemetry.Check
}

// encodeHealth builds a HealthResp from a report, summarising readiness
// from the checks.
func encodeHealth(report telemetry.HealthReport, started time.Time) (*wire.HealthResp, error) {
	report = report.Summarize()
	js, err := telemetry.EncodeChecks(report.Checks)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding health checks: %v", ErrInvalid, err)
	}
	var uptime int64
	if !started.IsZero() {
		uptime = time.Since(started).Nanoseconds()
	}
	return &wire.HealthResp{
		Node: report.Node, Role: report.Role, Ready: report.Ready,
		Checks: js, UptimeNano: uptime,
	}, nil
}

// serveSeries answers a SeriesFetchReq from a node's sampler. A nil
// sampler answers with an empty history rather than an error, so
// cluster-wide sweeps need no special case for nodes without telemetry.
func serveSeries(node string, s *telemetry.Sampler, req *wire.SeriesFetchReq) (*wire.SeriesFetchResp, error) {
	var series []telemetry.Series
	if s != nil {
		if len(req.Names) > 0 {
			for _, name := range req.Names {
				if ser, ok := s.Get(name, time.Duration(req.WindowNano)); ok {
					series = append(series, ser)
				}
			}
		} else {
			series = s.Snapshot(time.Duration(req.WindowNano))
		}
	}
	js, err := telemetry.EncodeSeries(series)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding series: %v", ErrInvalid, err)
	}
	return &wire.SeriesFetchResp{Node: node, Series: js, TickNano: int64(s.Interval())}, nil
}
