package pfs

import (
	"fmt"
	"time"

	"dosas/internal/eventlog"
	"dosas/internal/slo"
	"dosas/internal/telemetry"
	"dosas/internal/tsdb"
	"dosas/internal/wire"
)

// healthChecker is how a data server discovers per-resource readiness
// from its attached active runtime without importing core (which imports
// pfs) — the same anonymous-assertion pattern as ModeName in stats.
type healthChecker interface {
	HealthChecks() []telemetry.Check
}

// encodeHealth builds a HealthResp from a report, summarising readiness
// from the checks.
func encodeHealth(report telemetry.HealthReport, started time.Time) (*wire.HealthResp, error) {
	report = report.Summarize()
	js, err := telemetry.EncodeChecks(report.Checks)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding health checks: %v", ErrInvalid, err)
	}
	var uptime int64
	if !started.IsZero() {
		uptime = time.Since(started).Nanoseconds()
	}
	return &wire.HealthResp{
		Node: report.Node, Role: report.Role, Ready: report.Ready,
		Checks: js, UptimeNano: uptime,
	}, nil
}

// serveSeries answers a SeriesFetchReq from a node's sampler. A nil
// sampler answers with an empty history rather than an error, so
// cluster-wide sweeps need no special case for nodes without telemetry.
func serveSeries(node string, s *telemetry.Sampler, req *wire.SeriesFetchReq) (*wire.SeriesFetchResp, error) {
	var series []telemetry.Series
	if s != nil {
		if len(req.Names) > 0 {
			for _, name := range req.Names {
				if ser, ok := s.Get(name, time.Duration(req.WindowNano)); ok {
					series = append(series, ser)
				}
			}
		} else {
			series = s.Snapshot(time.Duration(req.WindowNano))
		}
	}
	js, err := telemetry.EncodeSeries(series)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding series: %v", ErrInvalid, err)
	}
	return &wire.SeriesFetchResp{
		Node: node, Series: js,
		TickNano: int64(s.Interval()), Dropped: s.Dropped(),
	}, nil
}

// serveEvents answers an EventFetchReq from a node's event log. A nil
// log answers with an empty tail, mirroring serveSeries.
func serveEvents(node string, l *eventlog.Log, req *wire.EventFetchReq) (*wire.EventFetchResp, error) {
	events := l.Snapshot(req.SinceSeq, eventlog.Level(req.MinLevel), int(req.Limit))
	js, err := eventlog.EncodeEvents(events)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding events: %v", ErrInvalid, err)
	}
	return &wire.EventFetchResp{
		Node: node, Events: js,
		NextSeq: l.NextSeq(), Dropped: l.Dropped(),
	}, nil
}

// serveRangeQuery answers a RangeQueryReq from a node's durable
// telemetry archive. A nil archive answers with an empty series and a
// zero retention horizon, so sweeps need no special case for nodes
// running without -archive-dir. A non-zero StepNano reduces the answer
// to per-step bucket means before it crosses the wire.
func serveRangeQuery(node string, a *tsdb.Archive, req *wire.RangeQueryReq) (*wire.RangeQueryResp, error) {
	points, err := a.Query(req.Name, req.FromNano, req.ToNano)
	if err != nil {
		return nil, fmt.Errorf("%w: archive query: %v", ErrInvalid, err)
	}
	points = telemetry.Downsample(points, req.StepNano)
	var series []telemetry.Series
	if len(points) > 0 {
		series = []telemetry.Series{{Name: req.Name, Points: points}}
	}
	js, err := telemetry.EncodeSeries(series)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding series: %v", ErrInvalid, err)
	}
	return &wire.RangeQueryResp{Node: node, Series: js, EarliestNano: a.Earliest()}, nil
}

// serveAlerts answers an AlertFetchReq from a node's SLO engine. A nil
// engine answers with an empty table.
func serveAlerts(node string, e *slo.Engine) (*wire.AlertFetchResp, error) {
	js, err := slo.EncodeAlerts(e.Alerts())
	if err != nil {
		return nil, fmt.Errorf("%w: encoding alerts: %v", ErrInvalid, err)
	}
	return &wire.AlertFetchResp{Node: node, Alerts: js}, nil
}
