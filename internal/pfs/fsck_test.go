package pfs

import (
	"bytes"
	"math/rand"
	"testing"
)

func writeReplicated(t *testing.T, tc *testCluster, name string, size int) (*File, []byte) {
	t.Helper()
	f, err := tc.client.CreateReplicated(name, 4096, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(42)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	return f, data
}

func TestVerifyCleanFile(t *testing.T) {
	tc := startCluster(t, 3)
	writeReplicated(t, tc, "fsck/clean", 9*4096)
	rep, err := tc.client.Verify("fsck/clean", true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean file reported issues: %v", rep.Issues)
	}
	if rep.BytesChecked == 0 {
		t.Error("deep verify checked no bytes")
	}
}

func TestVerifyDetectsTruncatedReplica(t *testing.T) {
	tc := startCluster(t, 3)
	f, _ := writeReplicated(t, tc, "fsck/trunc", 9*4096)
	// Chop 100 bytes off slot 1's replica-1 stream (lives on server
	// Servers[(1+1)%3]).
	victim := ReplicaServer(f.Layout(), 1, 1)
	h := ReplicaHandle(f.Handle(), 1)
	store := tc.datas[victim].Store()
	if err := store.Truncate(h, store.Size(h)-100); err != nil {
		t.Fatal(err)
	}
	rep, err := tc.client.Verify("fsck/trunc", false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("truncated replica not detected")
	}
	found := false
	for _, is := range rep.Issues {
		if is.Kind == "size" && is.Replica == 1 && is.Server == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("issues = %v", rep.Issues)
	}
}

func TestVerifyDeepDetectsSilentCorruption(t *testing.T) {
	tc := startCluster(t, 3)
	f, _ := writeReplicated(t, tc, "fsck/rot", 9*4096)
	// Flip one byte in a replica stream: same length, different content.
	victim := ReplicaServer(f.Layout(), 0, 1)
	h := ReplicaHandle(f.Handle(), 1)
	store := tc.datas[victim].Store()
	buf := make([]byte, 1)
	if _, err := store.ReadAt(h, buf, 500); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := store.WriteAt(h, buf, 500); err != nil {
		t.Fatal(err)
	}
	// Shallow verify misses it...
	shallow, err := tc.client.Verify("fsck/rot", false)
	if err != nil {
		t.Fatal(err)
	}
	if !shallow.OK() {
		t.Fatalf("shallow verify should pass on same-length corruption: %v", shallow.Issues)
	}
	// ...deep verify catches it.
	deep, err := tc.client.Verify("fsck/rot", true)
	if err != nil {
		t.Fatal(err)
	}
	if deep.OK() {
		t.Fatal("deep verify missed bit rot")
	}
	if deep.Issues[0].Kind != "content" {
		t.Fatalf("issue = %v", deep.Issues[0])
	}
}

func TestRepairRestoresReplicas(t *testing.T) {
	tc := startCluster(t, 3)
	f, data := writeReplicated(t, tc, "fsck/repair", 9*4096)
	// Damage two different replicas in two different ways.
	v1 := ReplicaServer(f.Layout(), 1, 1)
	h1 := ReplicaHandle(f.Handle(), 1)
	tc.datas[v1].Store().Truncate(h1, 10)
	v0 := ReplicaServer(f.Layout(), 2, 1)
	tc.datas[v0].Store().WriteAt(h1, []byte{1, 2, 3}, 64)

	rep, err := tc.client.Repair("fsck/repair")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("repair left issues: %v", rep.Issues)
	}
	// The repaired replica streams are byte-identical to their primaries
	// (re-verified deep above) and the file reads back exactly.
	got, err := f.ReadAll()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("file corrupted after repair")
	}
}

func TestRepairCleanFileIsNoop(t *testing.T) {
	tc := startCluster(t, 2)
	writeReplicated2 := func() {
		f, err := tc.client.CreateReplicated("fsck/noop", 4096, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(make([]byte, 8192), 0); err != nil {
			t.Fatal(err)
		}
	}
	writeReplicated2()
	rep, err := tc.client.Repair("fsck/noop")
	if err != nil || !rep.OK() {
		t.Fatalf("noop repair: %v, %v", rep, err)
	}
}

func TestVerifyUnreplicatedFile(t *testing.T) {
	tc := startCluster(t, 2)
	f, err := tc.client.Create("fsck/plain", 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 3*4096), 0); err != nil {
		t.Fatal(err)
	}
	rep, err := tc.client.Verify("fsck/plain", true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("plain file issues: %v", rep.Issues)
	}
	// Damage the single copy: verify reports it, repair cannot fix it.
	tc.datas[f.Layout().Servers[0]].Store().Truncate(f.Handle(), 1)
	rep, err = tc.client.Verify("fsck/plain", false)
	if err != nil || rep.OK() {
		t.Fatal("damage to sole copy not detected")
	}
	rep, err = tc.client.Repair("fsck/plain")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("unrepairable damage reported as repaired")
	}
}
