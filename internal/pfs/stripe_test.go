package pfs

import (
	"testing"
	"testing/quick"

	"dosas/internal/wire"
)

func layoutFor(stripe uint32, width int) wire.Layout {
	servers := make([]uint32, width)
	for i := range servers {
		servers[i] = uint32(i)
	}
	return wire.Layout{StripeSize: stripe, Servers: servers}
}

func TestSegmentsSimple(t *testing.T) {
	l := layoutFor(10, 3)
	segs := Segments(l, 0, 35)
	// Stripes: s0→srv0 local0, s1→srv1 local0, s2→srv2 local0,
	// s3→srv0 local10 (i.e. local stripe 1), 5 bytes of it.
	want := []Segment{
		{Slot: 0, Server: 0, FileOffset: 0, LocalOffset: 0, Length: 10},
		{Slot: 1, Server: 1, FileOffset: 10, LocalOffset: 0, Length: 10},
		{Slot: 2, Server: 2, FileOffset: 20, LocalOffset: 0, Length: 10},
		{Slot: 0, Server: 0, FileOffset: 30, LocalOffset: 10, Length: 5},
	}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments, want %d: %+v", len(segs), len(want), segs)
	}
	for i, w := range want {
		if segs[i] != w {
			t.Errorf("seg[%d] = %+v, want %+v", i, segs[i], w)
		}
	}
}

func TestSegmentsUnaligned(t *testing.T) {
	l := layoutFor(10, 2)
	segs := Segments(l, 15, 10)
	// Offset 15 is inside stripe 1 (srv1, local 0..10), 5 bytes left;
	// then stripe 2 (srv0, local stripe 1 → local 10..20), 5 bytes.
	want := []Segment{
		{Slot: 1, Server: 1, FileOffset: 15, LocalOffset: 5, Length: 5},
		{Slot: 0, Server: 0, FileOffset: 20, LocalOffset: 10, Length: 5},
	}
	for i, w := range want {
		if segs[i] != w {
			t.Errorf("seg[%d] = %+v, want %+v", i, segs[i], w)
		}
	}
}

func TestSegmentsWidthOneCoalesces(t *testing.T) {
	l := layoutFor(8, 1)
	segs := Segments(l, 3, 40)
	if len(segs) != 1 {
		t.Fatalf("width-1 range should coalesce to 1 segment, got %d: %+v", len(segs), segs)
	}
	s := segs[0]
	if s.LocalOffset != 3 || s.Length != 40 || s.FileOffset != 3 {
		t.Errorf("coalesced segment wrong: %+v", s)
	}
}

func TestSegmentsEmptyInputs(t *testing.T) {
	if Segments(layoutFor(10, 2), 5, 0) != nil {
		t.Error("zero length should return nil")
	}
	if Segments(wire.Layout{}, 0, 10) != nil {
		t.Error("empty layout should return nil")
	}
}

// Property: segments exactly partition the requested file range — in
// order, contiguous, and with correct per-server inverse mapping.
func TestSegmentsPartitionProperty(t *testing.T) {
	f := func(stripePow uint8, width8 uint8, off uint32, length uint16) bool {
		stripe := uint32(1) << (stripePow%10 + 1) // 2..1024
		width := int(width8%7) + 1
		l := layoutFor(stripe, width)
		segs := Segments(l, uint64(off), uint64(length))
		if length == 0 {
			return segs == nil
		}
		pos := uint64(off)
		for _, s := range segs {
			if s.FileOffset != pos || s.Length == 0 {
				return false
			}
			if s.Server != l.Servers[s.Slot] {
				return false
			}
			// Inverse mapping must agree with the forward mapping.
			if FileOffsetOf(l, s.Slot, s.LocalOffset) != s.FileOffset {
				return false
			}
			pos += s.Length
		}
		return pos == uint64(off)+uint64(length)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the per-server local sizes of a file sum to the file size.
func TestLocalSizeSumsProperty(t *testing.T) {
	f := func(stripePow uint8, width8 uint8, size uint32) bool {
		stripe := uint32(1) << (stripePow%10 + 1)
		width := int(width8%7) + 1
		l := layoutFor(stripe, width)
		var total uint64
		for slot := 0; slot < width; slot++ {
			total += LocalSize(l, uint64(size), slot)
		}
		return total == uint64(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: LocalSize agrees with the segment decomposition of the whole
// file.
func TestLocalSizeMatchesSegments(t *testing.T) {
	f := func(stripePow uint8, width8 uint8, size uint16) bool {
		stripe := uint32(1) << (stripePow%8 + 1)
		width := int(width8%5) + 1
		l := layoutFor(stripe, width)
		perSlot := make(map[int]uint64)
		for _, s := range Segments(l, 0, uint64(size)) {
			perSlot[s.Slot] += s.Length
		}
		for slot := 0; slot < width; slot++ {
			if LocalSize(l, uint64(size), slot) != perSlot[slot] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Mid-stripe starts: a range beginning inside a stripe must map the first
// segment's local offset into the stripe interior, and segment boundaries
// after it must stay stripe-aligned.
func TestSegmentsMidStripeStart(t *testing.T) {
	l := layoutFor(100, 4)
	segs := Segments(l, 237, 400) // starts 37 bytes into global stripe 2
	if len(segs) != 5 {
		t.Fatalf("got %d segments, want 5", len(segs))
	}
	first := segs[0]
	if first.Slot != 2 || first.LocalOffset != 37 || first.Length != 63 || first.FileOffset != 237 {
		t.Fatalf("first segment = %+v", first)
	}
	for i, seg := range segs[1:] {
		if seg.LocalOffset%100 != 0 {
			t.Errorf("segment %d not stripe-aligned: %+v", i+1, seg)
		}
	}
	var total uint64
	for _, seg := range segs {
		total += seg.Length
	}
	if total != 400 {
		t.Fatalf("segments cover %d bytes, want 400", total)
	}
}

// Single-byte tails: the last byte of a file whose size is 1 mod stripe
// lands alone on the next slot in rotation, as a 1-byte segment.
func TestSegmentsSingleByteTail(t *testing.T) {
	l := layoutFor(100, 3)
	segs := Segments(l, 0, 301)
	last := segs[len(segs)-1]
	if last.Length != 1 || last.Slot != 0 || last.LocalOffset != 100 || last.FileOffset != 300 {
		t.Fatalf("tail segment = %+v", last)
	}
	// Reading exactly that one byte produces exactly one 1-byte segment.
	one := Segments(l, 300, 1)
	if len(one) != 1 || one[0] != last {
		t.Fatalf("single-byte range = %+v, want %+v", one, last)
	}
	// LocalSize agrees: slot 0 holds the extra byte.
	if got := LocalSize(l, 301, 0); got != 101 {
		t.Fatalf("LocalSize slot 0 = %d, want 101", got)
	}
	if got := LocalSize(l, 301, 1); got != 100 {
		t.Fatalf("LocalSize slot 1 = %d, want 100", got)
	}
}

// Width-1 coalescing composes with odd starts: any range on a one-server
// layout is a single segment whose local offset equals the file offset.
func TestSegmentsWidthOneMidStripeCoalesces(t *testing.T) {
	l := layoutFor(64, 1)
	for _, tc := range []struct{ off, length uint64 }{
		{0, 1}, {63, 2}, {37, 1000}, {129, 64}, {1, 12345},
	} {
		segs := Segments(l, tc.off, tc.length)
		if len(segs) != 1 {
			t.Fatalf("[%d,%d): %d segments, want 1", tc.off, tc.off+tc.length, len(segs))
		}
		s := segs[0]
		if s.LocalOffset != tc.off || s.Length != tc.length || s.Slot != 0 {
			t.Fatalf("[%d,%d): segment = %+v", tc.off, tc.off+tc.length, s)
		}
	}
}

// Replica layouts: chained placement puts replica r of slot s on server
// (s+r) mod width, never colliding with a lower replica of the same slot
// while replicas <= width, and replica handles never collide with file
// handles or each other.
func TestReplicaPlacementAndHandles(t *testing.T) {
	l := layoutFor(100, 4)
	l.Replicas = 3
	for slot := 0; slot < 4; slot++ {
		seen := map[uint32]bool{}
		for r := 0; r < 3; r++ {
			server := ReplicaServer(l, slot, r)
			if server != uint32((slot+r)%4) {
				t.Fatalf("slot %d replica %d on server %d", slot, r, server)
			}
			if seen[server] {
				t.Fatalf("slot %d: replica collision on server %d", slot, server)
			}
			seen[server] = true
		}
	}
	handles := map[uint64]bool{}
	for _, h := range []uint64{1, 2, 1 << 40} {
		for r := 0; r < 3; r++ {
			rh := ReplicaHandle(h, r)
			if handles[rh] {
				t.Fatalf("handle collision at h=%d r=%d", h, r)
			}
			handles[rh] = true
			if r == 0 && rh != h {
				t.Fatalf("replica 0 handle changed: %d -> %d", h, rh)
			}
		}
	}
}
