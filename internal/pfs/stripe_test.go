package pfs

import (
	"testing"
	"testing/quick"

	"dosas/internal/wire"
)

func layoutFor(stripe uint32, width int) wire.Layout {
	servers := make([]uint32, width)
	for i := range servers {
		servers[i] = uint32(i)
	}
	return wire.Layout{StripeSize: stripe, Servers: servers}
}

func TestSegmentsSimple(t *testing.T) {
	l := layoutFor(10, 3)
	segs := Segments(l, 0, 35)
	// Stripes: s0→srv0 local0, s1→srv1 local0, s2→srv2 local0,
	// s3→srv0 local10 (i.e. local stripe 1), 5 bytes of it.
	want := []Segment{
		{Slot: 0, Server: 0, FileOffset: 0, LocalOffset: 0, Length: 10},
		{Slot: 1, Server: 1, FileOffset: 10, LocalOffset: 0, Length: 10},
		{Slot: 2, Server: 2, FileOffset: 20, LocalOffset: 0, Length: 10},
		{Slot: 0, Server: 0, FileOffset: 30, LocalOffset: 10, Length: 5},
	}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments, want %d: %+v", len(segs), len(want), segs)
	}
	for i, w := range want {
		if segs[i] != w {
			t.Errorf("seg[%d] = %+v, want %+v", i, segs[i], w)
		}
	}
}

func TestSegmentsUnaligned(t *testing.T) {
	l := layoutFor(10, 2)
	segs := Segments(l, 15, 10)
	// Offset 15 is inside stripe 1 (srv1, local 0..10), 5 bytes left;
	// then stripe 2 (srv0, local stripe 1 → local 10..20), 5 bytes.
	want := []Segment{
		{Slot: 1, Server: 1, FileOffset: 15, LocalOffset: 5, Length: 5},
		{Slot: 0, Server: 0, FileOffset: 20, LocalOffset: 10, Length: 5},
	}
	for i, w := range want {
		if segs[i] != w {
			t.Errorf("seg[%d] = %+v, want %+v", i, segs[i], w)
		}
	}
}

func TestSegmentsWidthOneCoalesces(t *testing.T) {
	l := layoutFor(8, 1)
	segs := Segments(l, 3, 40)
	if len(segs) != 1 {
		t.Fatalf("width-1 range should coalesce to 1 segment, got %d: %+v", len(segs), segs)
	}
	s := segs[0]
	if s.LocalOffset != 3 || s.Length != 40 || s.FileOffset != 3 {
		t.Errorf("coalesced segment wrong: %+v", s)
	}
}

func TestSegmentsEmptyInputs(t *testing.T) {
	if Segments(layoutFor(10, 2), 5, 0) != nil {
		t.Error("zero length should return nil")
	}
	if Segments(wire.Layout{}, 0, 10) != nil {
		t.Error("empty layout should return nil")
	}
}

// Property: segments exactly partition the requested file range — in
// order, contiguous, and with correct per-server inverse mapping.
func TestSegmentsPartitionProperty(t *testing.T) {
	f := func(stripePow uint8, width8 uint8, off uint32, length uint16) bool {
		stripe := uint32(1) << (stripePow%10 + 1) // 2..1024
		width := int(width8%7) + 1
		l := layoutFor(stripe, width)
		segs := Segments(l, uint64(off), uint64(length))
		if length == 0 {
			return segs == nil
		}
		pos := uint64(off)
		for _, s := range segs {
			if s.FileOffset != pos || s.Length == 0 {
				return false
			}
			if s.Server != l.Servers[s.Slot] {
				return false
			}
			// Inverse mapping must agree with the forward mapping.
			if FileOffsetOf(l, s.Slot, s.LocalOffset) != s.FileOffset {
				return false
			}
			pos += s.Length
		}
		return pos == uint64(off)+uint64(length)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the per-server local sizes of a file sum to the file size.
func TestLocalSizeSumsProperty(t *testing.T) {
	f := func(stripePow uint8, width8 uint8, size uint32) bool {
		stripe := uint32(1) << (stripePow%10 + 1)
		width := int(width8%7) + 1
		l := layoutFor(stripe, width)
		var total uint64
		for slot := 0; slot < width; slot++ {
			total += LocalSize(l, uint64(size), slot)
		}
		return total == uint64(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: LocalSize agrees with the segment decomposition of the whole
// file.
func TestLocalSizeMatchesSegments(t *testing.T) {
	f := func(stripePow uint8, width8 uint8, size uint16) bool {
		stripe := uint32(1) << (stripePow%8 + 1)
		width := int(width8%5) + 1
		l := layoutFor(stripe, width)
		perSlot := make(map[int]uint64)
		for _, s := range Segments(l, 0, uint64(size)) {
			perSlot[s.Slot] += s.Length
		}
		for slot := 0; slot < width; slot++ {
			if LocalSize(l, uint64(size), slot) != perSlot[slot] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
