package pfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"dosas/internal/wire"
)

// Journal entry opcodes. On-disk values; append only.
const (
	entryCreate uint8 = iota + 1
	entryRemove
	entrySetSize
)

// journal is the metadata server's write-ahead log. Each entry is
//
//	+---------+--------+-------+------------------+
//	| len u32 | crc u32| op u8 | payload (len-1) B |
//	+---------+--------+-------+------------------+
//
// where crc covers op+payload. Replay stops cleanly at the first torn or
// corrupt entry (a crash mid-append), truncating the tail, so a restart
// after power loss recovers every fully written mutation.
type journal struct {
	f *os.File
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pfs: journal open: %w", err)
	}
	return &journal{f: f}, nil
}

func (j *journal) close() error { return j.f.Close() }

// append encodes and durably writes one entry.
func (j *journal) append(op uint8, rec *FileRec) error {
	var e wire.Encoder
	e.PutU8(op)
	encodeFileRec(&e, rec)
	body := e.Bytes()
	if err := e.Err(); err != nil {
		return err
	}
	buf := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
	copy(buf[8:], body)
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("pfs: journal append: %w", err)
	}
	// The WAL contract: the mutation must be on stable storage before it
	// is acknowledged.
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("pfs: journal sync: %w", err)
	}
	return nil
}

// replay feeds every intact entry to apply, then truncates any torn tail.
func (j *journal) replay(apply func(op uint8, rec *FileRec) error) error {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var offset int64
	hdr := make([]byte, 8)
	for {
		if _, err := io.ReadFull(j.f, hdr); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			// Torn header: truncate and stop.
			if errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			return err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > 1<<20 {
			break // corrupt length: stop at last good entry
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(j.f, body); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(body) != want {
			break // corrupt payload
		}
		d := wire.NewDecoder(body)
		op := d.U8()
		rec, err := decodeFileRec(d)
		if err != nil {
			break
		}
		if err := apply(op, rec); err != nil {
			return err
		}
		offset += int64(8 + n)
	}
	// Drop anything after the last intact entry so future appends are
	// never interleaved with garbage.
	if err := j.f.Truncate(offset); err != nil {
		return err
	}
	_, err := j.f.Seek(offset, io.SeekStart)
	return err
}

// compact rewrites the journal as one create entry per live record (the
// current snapshot), dropping the history of removed files and superseded
// size updates. The rewrite goes through a temp file + rename so a crash
// mid-compaction leaves the old journal intact.
func (j *journal) compact(path string, records []*FileRec) error {
	tmp := path + ".compact"
	nj, err := openJournal(tmp)
	if err != nil {
		return err
	}
	for _, rec := range records {
		if err := nj.append(entryCreate, rec); err != nil {
			nj.close()
			os.Remove(tmp)
			return err
		}
	}
	if err := nj.close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Swap the live file descriptor to the new journal, positioned at
	// its end for subsequent appends.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	old := j.f
	j.f = f
	old.Close()
	return nil
}

func encodeFileRec(e *wire.Encoder, rec *FileRec) {
	e.PutU64(rec.Handle)
	e.PutString(rec.Name)
	e.PutU64(rec.Size)
	e.PutI64(rec.ModTime.UnixNano())
	e.PutU32(rec.Layout.StripeSize)
	e.PutU8(rec.Layout.Replicas)
	e.PutU32(uint32(len(rec.Layout.Servers)))
	for _, s := range rec.Layout.Servers {
		e.PutU32(s)
	}
}

func decodeFileRec(d *wire.Decoder) (*FileRec, error) {
	rec := &FileRec{}
	rec.Handle = d.U64()
	rec.Name = d.String()
	rec.Size = d.U64()
	rec.ModTime = time.Unix(0, d.I64())
	rec.Layout.StripeSize = d.U32()
	rec.Layout.Replicas = d.U8()
	n := int(d.U32())
	if n < 0 || n*4 > d.Remaining() {
		return nil, wire.ErrShortPayload
	}
	rec.Layout.Servers = make([]uint32, n)
	for i := range rec.Layout.Servers {
		rec.Layout.Servers[i] = d.U32()
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return rec, nil
}
