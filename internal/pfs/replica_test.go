package pfs

import (
	"bytes"
	"math/rand"
	"testing"

	"dosas/internal/wire"
)

func TestReplicaHandleTagging(t *testing.T) {
	h := uint64(12345)
	if ReplicaHandle(h, 0) != h {
		t.Error("replica 0 must be the raw handle")
	}
	if ReplicaHandle(h, 1) == h || ReplicaHandle(h, 2) == ReplicaHandle(h, 1) {
		t.Error("replica handles must be distinct")
	}
}

func TestReplicaServerChainedPlacement(t *testing.T) {
	l := wire.Layout{StripeSize: 4096, Servers: []uint32{5, 7, 9}, Replicas: 2}
	if ReplicaServer(l, 0, 0) != 5 || ReplicaServer(l, 0, 1) != 7 {
		t.Error("slot 0 replicas misplaced")
	}
	if ReplicaServer(l, 2, 1) != 5 { // wraps around
		t.Error("slot 2 replica 1 should wrap to server 5")
	}
	// Replicas of the same slot must land on distinct servers.
	for slot := 0; slot < 3; slot++ {
		if ReplicaServer(l, slot, 0) == ReplicaServer(l, slot, 1) {
			t.Errorf("slot %d replicas collide", slot)
		}
	}
}

func TestReplicatedWritePopulatesAllCopies(t *testing.T) {
	tc := startCluster(t, 3)
	f, err := tc.client.CreateReplicated("rep/x", 4096, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 6*4096)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Every server must hold both a primary stream and a replica stream,
	// each with the per-slot share of the file.
	for i, ds := range tc.datas {
		primary := ds.Store().Size(f.Handle())
		replica := ds.Store().Size(ReplicaHandle(f.Handle(), 1))
		if primary != 2*4096 || replica != 2*4096 {
			t.Errorf("server %d: primary=%d replica=%d, want %d each", i, primary, replica, 2*4096)
		}
	}
	// Replica streams hold the same bytes as their primaries (rotated).
	for slot := 0; slot < 3; slot++ {
		p := tc.datas[f.Layout().Servers[slot]].Store()
		r := tc.datas[ReplicaServer(f.Layout(), slot, 1)].Store()
		pb := make([]byte, 2*4096)
		rb := make([]byte, 2*4096)
		p.ReadAt(f.Handle(), pb, 0)
		r.ReadAt(ReplicaHandle(f.Handle(), 1), rb, 0)
		if !bytes.Equal(pb, rb) {
			t.Errorf("slot %d: replica bytes diverge from primary", slot)
		}
	}
}

func TestReplicatedReadFailsOverToSurvivor(t *testing.T) {
	tc := startCluster(t, 3)
	f, err := tc.client.CreateReplicated("rep/failover", 4096, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 9*4096)
	rand.New(rand.NewSource(2)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	// Kill data server 1; its stripes survive as replicas on server 2.
	tc.servers[1].Close()

	got, err := f.ReadAll()
	if err != nil {
		t.Fatalf("read after server death: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover read corrupted data")
	}
}

func TestUnreplicatedReadFailsWhenServerDies(t *testing.T) {
	tc := startCluster(t, 3)
	f, err := tc.client.Create("rep/none", 4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 9*4096)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	tc.servers[1].Close()
	if _, err := f.ReadAll(); err == nil {
		t.Fatal("read of unreplicated file succeeded after its server died")
	}
}

func TestReplicasExceedingWidthRejected(t *testing.T) {
	tc := startCluster(t, 2)
	if _, err := tc.client.CreateReplicated("rep/toowide", 0, 2, 3); err == nil {
		t.Fatal("3 replicas over width 2 accepted")
	}
}

func TestReplicatedRemoveSweepsAllCopies(t *testing.T) {
	tc := startCluster(t, 2)
	f, err := tc.client.CreateReplicated("rep/rm", 4096, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 4*4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := tc.client.Remove("rep/rm"); err != nil {
		t.Fatal(err)
	}
	for i, ds := range tc.datas {
		for r := 0; r < 2; r++ {
			if got := ds.Store().Size(ReplicaHandle(f.Handle(), r)); got != 0 {
				t.Errorf("server %d replica %d still holds %d bytes", i, r, got)
			}
		}
	}
}
