package pfs

// Client side of the mux upgrade (see internal/wire/mux.go for the wire
// format and Server.serveMux for the peer). Per mux-capable address the
// Pool keeps a small fixed set of shared connections; every Call and
// Stream to that address multiplexes onto one of them under a unique
// stream ID, so a 4 MB stripe transfer no longer blocks a Ping — the
// writer's control lane preempts bulk segments on the wire.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"dosas/internal/transport"
	"dosas/internal/wire"
)

// MuxConnsPerAddr is how many shared mux connections the pool keeps per
// mux-capable peer. Two is enough to keep one saturated with bulk while
// the other stays hot for a dial-free fallback; concurrency comes from
// multiplexing, not sockets.
const MuxConnsPerAddr = 2

// errMuxDemoted reports that the peer declined (or flunked) the mux
// handshake after the pool had assumed it was mux-capable; the caller
// re-resolves the address, which now routes to ordered mode.
var errMuxDemoted = errors.New("pfs: peer demoted to ordered mode")

// muxFor resolves addr to its mux peer, or nil when the address must use
// ordered mode (mux disabled, or the peer previously declined).
func (p *Pool) muxFor(addr string) (*muxPeer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, transport.ErrClosed
	}
	if p.noMux || p.plain[addr] {
		return nil, nil
	}
	mp := p.peers[addr]
	if mp == nil {
		mp = &muxPeer{p: p, addr: addr}
		p.peers[addr] = mp
	}
	return mp, nil
}

// demote records that addr does not speak mux. reusable, when non-nil, is
// the handshake connection the peer left in ordered mode — it goes to the
// idle pool rather than being wasted. Demotion is sticky for the pool's
// lifetime: a peer upgraded in place starts being multiplexed after the
// client process (or its Pool) restarts.
func (p *Pool) demote(addr string, reusable *poolConn) {
	p.mu.Lock()
	p.plain[addr] = true
	delete(p.peers, addr)
	p.mu.Unlock()
	p.reg.Counter("pool.mux.fallbacks").Inc()
	if reusable != nil {
		p.put(addr, reusable)
	}
}

// handshake dials addr and offers the mux upgrade. Exactly one of the
// returns is non-nil on success: a *muxConn when the peer accepted, a
// reusable ordered *poolConn when it declined with a HelloResp, and
// neither when it dropped the connection on the unknown frame type (a
// pre-handshake binary) — the caller demotes the address either way. A
// dial failure is a real error: the peer is down, not old.
func (p *Pool) handshake(addr string) (*muxConn, *poolConn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, nil, transport.ErrClosed
	}
	p.mu.Unlock()
	c, err := p.Net.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	p.reg.Counter("pool.dials").Inc()
	hello := &wire.HelloReq{MaxVersion: wire.MuxVersion, MaxSegment: wire.DefaultMuxSegment}
	if err := wire.WriteMessage(c, hello); err != nil {
		c.Close()
		return nil, nil, err
	}
	resp, err := wire.ReadMessage(c)
	if err != nil {
		// Servers that predate the handshake fail to decode the unknown
		// type and hang up; anything short of a HelloResp means ordered.
		c.Close()
		return nil, nil, nil
	}
	hr, ok := resp.(*wire.HelloResp)
	if !ok || hr.Version < wire.MuxVersion {
		return nil, &poolConn{c: c, fr: wire.NewFrameReader(c)}, nil
	}
	p.reg.Counter("pool.mux.handshakes").Inc()
	return newMuxConn(p, c, clampSegment(hr.MaxSegment)), nil, nil
}

// muxPeer manages the shared connections to one mux-capable address.
type muxPeer struct {
	p    *Pool
	addr string
	rr   uint32 // round-robin cursor over conns

	mu    sync.Mutex
	conns [MuxConnsPerAddr]*muxConn
}

// conn returns a live shared connection for the peer, dialing (and
// handshaking) lazily. fresh reports that the connection was established
// by this very call — a transport failure on it is real, not staleness.
func (mp *muxPeer) conn() (mc *muxConn, fresh bool, err error) {
	slot := int(atomic.AddUint32(&mp.rr, 1)) % MuxConnsPerAddr
	mp.mu.Lock()
	defer mp.mu.Unlock()
	if mc = mp.conns[slot]; mc != nil && !mc.dead() {
		return mc, false, nil
	}
	mc, plain, err := mp.p.handshake(mp.addr)
	if err != nil {
		return nil, false, err
	}
	if mc == nil {
		mp.p.demote(mp.addr, plain)
		return nil, false, errMuxDemoted
	}
	mp.conns[slot] = mc
	return mc, true, nil
}

// call runs one request/response exchange over a shared connection,
// retrying once on a fresh connection when an inherited one turns out to
// be stale (exactly the ordered pool's stale-idle-conn semantics).
func (mp *muxPeer) call(req wire.Message) (wire.Message, error) {
	p := mp.p
	for attempt := 0; ; attempt++ {
		mc, fresh, err := mp.conn()
		if err != nil {
			return nil, err
		}
		var res muxResult
		_, ch, err := mc.send(req)
		if err == nil {
			res = <-ch
			err = res.err
		}
		if err != nil {
			if !fresh && attempt == 0 {
				p.reg.Counter("pool.stale.retries").Inc()
				continue
			}
			return nil, fmt.Errorf("pfs: call %s %v: %w", mp.addr, req.Type(), err)
		}
		p.reg.Counter("pool.mux.calls").Inc()
		if em, ok := res.msg.(*wire.ErrorMsg); ok {
			re := &RemoteError{Code: em.Code, Op: em.Op, Detail: em.Detail}
			wire.PutBuf(res.buf)
			return nil, re
		}
		wire.Own(res.msg) // detach before the pooled frame buffer is recycled
		wire.PutBuf(res.buf)
		return res.msg, nil
	}
}

// closeAll tears down the peer's shared connections (Pool.Close).
func (mp *muxPeer) closeAll() {
	mp.mu.Lock()
	defer mp.mu.Unlock()
	for i, mc := range mp.conns {
		if mc != nil {
			mc.c.Close() // read loop notices and fails in-flight calls
			mp.conns[i] = nil
		}
	}
}

// muxResult is a completed exchange delivered to the caller's channel.
// buf is the pooled buffer msg may alias; the receiver recycles it.
type muxResult struct {
	msg wire.Message
	buf []byte
	err error
}

// muxConn is one shared multiplexed connection: a priority-aware writer,
// a demux read loop, and the table of in-flight calls keyed by stream ID.
// Exactly one of {read loop, write-failure callback, forget, fail} removes
// a call from the table and owns delivering its result.
type muxConn struct {
	p  *Pool
	c  net.Conn
	mw *wire.MuxWriter

	mu    sync.Mutex
	calls map[uint32]chan muxResult
	next  uint32
	err   error
}

func newMuxConn(p *Pool, c net.Conn, segment int) *muxConn {
	mc := &muxConn{p: p, c: c, calls: make(map[uint32]chan muxResult)}
	mw := wire.NewMuxWriter(c, segment)
	ctrl := p.reg.Gauge("pool.mux.queue.control")
	bulk := p.reg.Gauge("pool.mux.queue.bulk")
	mw.DepthHook = func(class uint8, delta int) {
		if class == wire.ClassControl {
			ctrl.Add(int64(delta))
		} else {
			bulk.Add(int64(delta))
		}
	}
	mw.OnError = func(error) {
		// A dead writer means a dead conn: closing it unblocks the read
		// loop, which fails every in-flight call.
		c.Close()
	}
	mc.mw = mw
	go mc.readLoop()
	return mc
}

func (mc *muxConn) dead() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.err != nil
}

// send registers a new stream and enqueues req on it. The response (or
// the transport failure) is delivered exactly once on the returned
// channel, which is buffered so no deliverer ever blocks.
func (mc *muxConn) send(req wire.Message) (uint32, chan muxResult, error) {
	ch := make(chan muxResult, 1)
	mc.mu.Lock()
	if mc.err != nil {
		err := mc.err
		mc.mu.Unlock()
		return 0, nil, err
	}
	mc.next++
	id := mc.next
	mc.calls[id] = ch
	mc.mu.Unlock()
	mc.p.reg.Gauge("pool.mux.streams").Add(1)
	mc.mw.Enqueue(req, id, func(err error) { //nolint:errcheck // failure delivered via ch
		if err != nil {
			mc.resolve(id, muxResult{err: err})
		}
	})
	return id, ch, nil
}

// resolve removes stream id from the table and, if it was still there,
// delivers res on its channel. Losing the race (someone else resolved or
// forgot the stream) is fine — exactly one delivery happens.
func (mc *muxConn) resolve(id uint32, res muxResult) {
	mc.mu.Lock()
	ch, ok := mc.calls[id]
	if ok {
		delete(mc.calls, id)
	}
	mc.mu.Unlock()
	if !ok {
		return
	}
	mc.p.reg.Gauge("pool.mux.streams").Add(-1)
	ch <- res
}

// forget abandons stream id (Stream.Release with responses still in
// flight): if the response has not arrived, the read loop will drop it.
func (mc *muxConn) forget(id uint32) {
	mc.mu.Lock()
	_, ok := mc.calls[id]
	if ok {
		delete(mc.calls, id)
	}
	mc.mu.Unlock()
	if ok {
		mc.p.reg.Gauge("pool.mux.streams").Add(-1)
	}
}

// readLoop demultiplexes responses to their callers until the connection
// dies, then fails everything still in flight.
func (mc *muxConn) readLoop() {
	mr := wire.NewMuxReader(mc.c)
	defer mr.Close()
	for {
		f, err := mr.Read()
		if err != nil {
			mc.fail(err)
			return
		}
		mc.mu.Lock()
		ch, ok := mc.calls[f.Stream]
		if ok {
			delete(mc.calls, f.Stream)
		}
		mc.mu.Unlock()
		if !ok {
			wire.PutBuf(f.Buf) // abandoned stream (Released before Recv)
			continue
		}
		mc.p.reg.Gauge("pool.mux.streams").Add(-1)
		ch <- muxResult{msg: f.Msg, buf: f.Buf}
	}
}

// fail marks the connection dead and delivers err to every in-flight
// call. Runs once, from the read loop.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.err == nil {
		mc.err = err
	}
	calls := mc.calls
	mc.calls = make(map[uint32]chan muxResult)
	mc.mu.Unlock()
	mc.c.Close()
	for _, ch := range calls {
		mc.p.reg.Gauge("pool.mux.streams").Add(-1)
		ch <- muxResult{err: err}
	}
	mc.mw.Close() //nolint:errcheck // conn already dead
}
