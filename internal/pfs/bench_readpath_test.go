package pfs

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dosas/internal/transport"
)

// benchCluster boots one meta plus nData data servers on net and returns
// a client configured with the given window depth and transfer chunk.
func benchCluster(b *testing.B, nData int, net transport.Network, depth, chunk int) *Client {
	b.Helper()
	meta, err := NewMetaServer(MetaConfig{NumDataServers: nData})
	if err != nil {
		b.Fatal(err)
	}
	ml, err := net.Listen("meta")
	if err != nil {
		b.Fatal(err)
	}
	ms := NewServer(ml, meta)
	ms.Start()
	b.Cleanup(ms.Close)
	for i := 0; i < nData; i++ {
		ds, err := NewDataServer(DataConfig{Store: NewMemStore()})
		if err != nil {
			b.Fatal(err)
		}
		dl, err := net.Listen(fmt.Sprintf("data-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		srv := NewServer(dl, ds)
		srv.Start()
		b.Cleanup(srv.Close)
	}
	addrs := make([]string, nData)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("data-%d", i)
	}
	c, err := NewClient(ClientConfig{
		Net: net, MetaAddr: "meta", DataAddrs: addrs,
		WindowDepth: depth, TransferChunk: chunk,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

func benchFile(b *testing.B, c *Client, size int, width int) *File {
	b.Helper()
	f, err := c.Create("bench/readpath.bin", 1<<20, width)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkReadPathLatency measures ReadAt on a latency-shaped transport
// (250µs one way, the regime of a cross-rack datacenter hop), window
// depth 1 (the serial loop) against the pipelined default. This is the
// benchmark behind the sliding window's existence: serial transfers pay
// two one-way delays per chunk; the window amortises them.
func BenchmarkReadPathLatency(b *testing.B) {
	const size = 8 << 20
	const chunk = 256 << 10
	for _, depth := range []int{1, 2, 4, 8} {
		for _, width := range []int{1, 4} {
			b.Run(fmt.Sprintf("depth=%d/width=%d", depth, width), func(b *testing.B) {
				net := transport.NewDelayed(transport.NewInproc(), 250*time.Microsecond)
				c := benchCluster(b, width, net, depth, chunk)
				f := benchFile(b, c, size, width)
				buf := make([]byte, size)
				b.SetBytes(size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := f.ReadAt(buf, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkReadPathInproc measures ReadAt on the raw in-process transport
// where latency is negligible: here the win is the pooled buffers — the
// bytes-allocated column should sit far below the ~3× payload the
// unpooled path allocated.
func BenchmarkReadPathInproc(b *testing.B) {
	const size = 32 << 20
	for _, width := range []int{1, 4} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			c := benchCluster(b, width, transport.NewInproc(), 0, 0)
			f := benchFile(b, c, size, width)
			buf := make([]byte, size)
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.ReadAt(buf, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWritePathInproc is the write-side counterpart: WriteMessage's
// pooled encode buffer and the server-side FrameReader are both on this
// path.
func BenchmarkWritePathInproc(b *testing.B) {
	const size = 32 << 20
	for _, width := range []int{1, 4} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			c := benchCluster(b, width, transport.NewInproc(), 0, 0)
			f := benchFile(b, c, size, width)
			data := make([]byte, size)
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.WriteAt(data, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
