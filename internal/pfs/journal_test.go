package pfs

import (
	"os"
	"path/filepath"
	"testing"

	"dosas/internal/wire"
)

func newMetaWithJournal(t *testing.T, path string) *MetaServer {
	t.Helper()
	m, err := NewMetaServer(MetaConfig{NumDataServers: 4, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestJournalReplayRestoresNamespace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.wal")
	m1 := newMetaWithJournal(t, path)

	resp, err := m1.Handle(&wire.CreateReq{Name: "alpha", StripeSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	h := resp.(*wire.CreateResp).Handle
	if _, err := m1.Handle(&wire.SetSizeReq{Handle: h, Size: 999}); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Handle(&wire.CreateReq{Name: "beta"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Handle(&wire.RemoveReq{Name: "beta"}); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2 := newMetaWithJournal(t, path)
	st, err := m2.Handle(&wire.StatReq{Name: "alpha"})
	if err != nil {
		t.Fatalf("alpha lost after replay: %v", err)
	}
	sr := st.(*wire.StatResp)
	if sr.Size != 999 || sr.Handle != h || sr.Layout.StripeSize != 1024 {
		t.Errorf("replayed record = %+v", sr)
	}
	if _, err := m2.Handle(&wire.OpenReq{Name: "beta"}); !IsNotFound(err) {
		t.Errorf("beta should stay removed, err = %v", err)
	}
	// Handle allocation must not reuse replayed handles.
	cr, err := m2.Handle(&wire.CreateReq{Name: "gamma"})
	if err != nil {
		t.Fatal(err)
	}
	if got := cr.(*wire.CreateResp).Handle; got <= h {
		t.Errorf("new handle %d not beyond replayed %d", got, h)
	}
}

func TestJournalTornTailIsDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	m1 := newMetaWithJournal(t, path)
	if _, err := m1.Handle(&wire.CreateReq{Name: "keep"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Handle(&wire.CreateReq{Name: "alsokeep"}); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	// Simulate a crash mid-append: chop bytes off the end.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newMetaWithJournal(t, path)
	if _, err := m2.Handle(&wire.OpenReq{Name: "keep"}); err != nil {
		t.Errorf("first entry lost: %v", err)
	}
	if _, err := m2.Handle(&wire.OpenReq{Name: "alsokeep"}); !IsNotFound(err) {
		t.Errorf("torn entry should be discarded, err = %v", err)
	}
	// The journal must keep working after truncation.
	if _, err := m2.Handle(&wire.CreateReq{Name: "after"}); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	m3 := newMetaWithJournal(t, path)
	if _, err := m3.Handle(&wire.OpenReq{Name: "after"}); err != nil {
		t.Errorf("post-recovery append lost: %v", err)
	}
}

func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.wal")
	m1 := newMetaWithJournal(t, path)
	// Generate history: creates, removals, repeated size growth.
	for i := 0; i < 20; i++ {
		name := "f" + string(rune('a'+i))
		resp, err := m1.Handle(&wire.CreateReq{Name: name})
		if err != nil {
			t.Fatal(err)
		}
		h := resp.(*wire.CreateResp).Handle
		for s := uint64(1); s <= 5; s++ {
			if _, err := m1.Handle(&wire.SetSizeReq{Handle: h, Size: s * 1000}); err != nil {
				t.Fatal(err)
			}
		}
		if i%2 == 1 {
			if _, err := m1.Handle(&wire.RemoveReq{Name: name}); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the journal: %d → %d", before.Size(), after.Size())
	}
	// The journal must keep accepting appends after compaction...
	if _, err := m1.Handle(&wire.CreateReq{Name: "post-compact"}); err != nil {
		t.Fatal(err)
	}
	m1.Close()
	// ...and a replay must reconstruct exactly the live namespace.
	m2 := newMetaWithJournal(t, path)
	files := m2.Files()
	if len(files) != 11 { // 10 surviving + post-compact
		t.Fatalf("replayed %d files, want 11", len(files))
	}
	for _, f := range files {
		if f.Name == "post-compact" {
			continue
		}
		if f.Size != 5000 {
			t.Errorf("file %s size = %d, want 5000", f.Name, f.Size)
		}
	}
	if _, err := m2.Handle(&wire.OpenReq{Name: "fb"}); !IsNotFound(err) {
		t.Error("removed file resurrected by compaction")
	}
}

func TestJournalCorruptEntryStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	m1 := newMetaWithJournal(t, path)
	if _, err := m1.Handle(&wire.CreateReq{Name: "good"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Handle(&wire.CreateReq{Name: "bad"}); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // flip a bit in the last entry's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newMetaWithJournal(t, path)
	if _, err := m2.Handle(&wire.OpenReq{Name: "good"}); err != nil {
		t.Errorf("intact entry lost: %v", err)
	}
	if _, err := m2.Handle(&wire.OpenReq{Name: "bad"}); !IsNotFound(err) {
		t.Errorf("corrupt entry should be discarded, err = %v", err)
	}
}
