package pfs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dosas/internal/eventlog"
	"dosas/internal/ioqueue"
	"dosas/internal/metrics"
	"dosas/internal/slo"
	"dosas/internal/telemetry"
	"dosas/internal/tenant"
	"dosas/internal/tsdb"
	"dosas/internal/wire"
)

// FileRec is the metadata server's record for one file.
type FileRec struct {
	Handle  uint64
	Name    string
	Size    uint64
	ModTime time.Time
	Layout  wire.Layout
}

// MetaConfig configures a metadata server.
type MetaConfig struct {
	// NumDataServers is the size of the cluster's data-server table;
	// layouts stripe over indices [0, NumDataServers).
	NumDataServers int
	// DefaultStripeSize is used when a create does not specify one.
	// Defaults to 64 KiB.
	DefaultStripeSize uint32
	// JournalPath, when non-empty, makes the namespace durable: every
	// mutation is appended to a write-ahead journal that is replayed on
	// startup.
	JournalPath string
	// Metrics receives operation counters; optional.
	Metrics *metrics.Registry
	// Telemetry is the node's time-series sampler, served to operators
	// via SeriesFetchReq. The metadata server registers its op-rate
	// probes on it, starts it, and owns it: Close stops it. Optional.
	Telemetry *telemetry.Sampler
	// Events is the node's structured event log, served to operators via
	// EventFetchReq. Startup and journal lifecycle are recorded on it.
	// Optional.
	Events *eventlog.Log
	// SLO is the node's alert engine, served via AlertFetchReq and
	// contributing readiness checks to HealthReq. Optional.
	SLO *slo.Engine
	// Archive is the node's durable telemetry archive, served via
	// RangeQueryReq. Owned by the daemon wiring; nil when the node runs
	// without -archive-dir.
	Archive *tsdb.Archive
	// QoS, when non-nil, admits namespace lookups (open/stat/list)
	// through a weighted-fair gate on the metadata class, so one
	// tenant's stat storm queues against its own credit instead of
	// starving everyone's path resolution.
	QoS *QoSConfig
	// Tenants receives gate queue-wait accounting; optional.
	Tenants *tenant.Table
}

// DefaultStripeSize is the stripe size used when callers pass zero.
const DefaultStripeSize = 64 << 10

// MetaServer implements the namespace half of the parallel file system:
// create/open/stat/remove/list plus size tracking, with round-robin layout
// assignment over the cluster's data servers.
type MetaServer struct {
	cfg  MetaConfig
	reg  *metrics.Registry
	gate *QoSGate // nil when QoS is disabled

	mu         sync.Mutex
	byName     map[string]*FileRec
	byHandle   map[uint64]*FileRec
	nextHandle uint64
	journal    *journal
	now        func() time.Time
	started    time.Time
}

// NewMetaServer builds a metadata server, replaying the journal when one is
// configured.
func NewMetaServer(cfg MetaConfig) (*MetaServer, error) {
	if cfg.NumDataServers <= 0 {
		return nil, fmt.Errorf("%w: metadata server needs at least one data server", ErrInvalid)
	}
	if cfg.DefaultStripeSize == 0 {
		cfg.DefaultStripeSize = DefaultStripeSize
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	m := &MetaServer{
		cfg:        cfg,
		reg:        cfg.Metrics,
		byName:     make(map[string]*FileRec),
		byHandle:   make(map[uint64]*FileRec),
		nextHandle: 1,
		now:        time.Now,
		started:    time.Now(),
	}
	if cfg.QoS != nil {
		m.gate = NewQoSGate(*cfg.QoS)
		m.gate.SetTenants(cfg.Tenants)
	}
	if cfg.JournalPath != "" {
		j, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		m.journal = j
		if err := j.replay(m.applyEntry); err != nil {
			return nil, err
		}
		cfg.Events.Info("meta", "journal replayed",
			"path", cfg.JournalPath, "files", fmt.Sprint(len(m.byName)))
	}
	m.registerProbes()
	cfg.Telemetry.Start()
	cfg.Events.Info("meta", "namespace server started",
		"data_servers", fmt.Sprint(cfg.NumDataServers))
	return m, nil
}

// registerProbes wires the namespace server's sampler probes: the op
// rate over all mutating and reading verbs, and the live file count.
func (m *MetaServer) registerProbes() {
	s := m.cfg.Telemetry
	if s == nil {
		return
	}
	ops := func() float64 {
		var total int64
		for _, n := range []string{"meta.create", "meta.open", "meta.stat", "meta.remove", "meta.list", "meta.setsize"} {
			total += m.reg.Counter(n).Value()
		}
		return float64(total)
	}
	s.Register("meta.ops_per_sec", telemetry.RateProbe(ops, s.Interval()))
	s.Register("meta.files", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.byName))
	})
	if m.gate != nil {
		s.Register("qos.throttled", telemetry.RateProbe(func() float64 {
			return float64(m.gate.Stats().Throttled)
		}, s.Interval()))
		s.Register("qos.deficit", func() float64 {
			return float64(m.gate.Stats().DeficitBytes)
		})
		s.Register("qos.queued", func() float64 {
			return float64(m.gate.Stats().MetaLen)
		})
	}
}

// admit passes one namespace lookup through the metadata QoS gate.
// Namespace ops are priced flat — one stat costs what one stat costs —
// so the WDRR credit divides lookup slots, not bytes.
func (m *MetaServer) admit(tenantID string) (*Ticket, error) {
	if m.gate == nil {
		return nil, nil
	}
	tk := m.gate.Enqueue(ioqueue.Meta, tenantID, 1)
	if !tk.Wait() {
		return nil, fmt.Errorf("%w: metadata lookup", ErrCancelled)
	}
	return tk, nil
}

// Metrics returns the server's metric registry.
func (m *MetaServer) Metrics() *metrics.Registry { return m.reg }

// Close stops the sampler, the QoS gate, and releases the journal.
func (m *MetaServer) Close() error {
	m.cfg.Telemetry.Close()
	m.gate.Close()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.journal != nil {
		return m.journal.close()
	}
	return nil
}

// Handle implements the Handler interface for wire messages.
func (m *MetaServer) Handle(msg wire.Message) (wire.Message, error) {
	switch req := msg.(type) {
	case *wire.Ping:
		return &wire.Pong{Seq: req.Seq}, nil
	case *wire.CreateReq:
		return m.create(req)
	case *wire.OpenReq:
		return m.open(req)
	case *wire.StatReq:
		return m.stat(req)
	case *wire.RemoveReq:
		return m.remove(req)
	case *wire.ListReq:
		return m.list(req)
	case *wire.SetSizeReq:
		return m.setSize(req)
	case *wire.StatsReq:
		return m.stats()
	case *wire.TraceFetchReq:
		// The metadata server keeps no per-request trace ring; answer
		// with an empty set so cluster-wide sweeps need no special case.
		return &wire.TraceFetchResp{Node: "meta", Events: []byte("[]")}, nil
	case *wire.HealthReq:
		return m.health()
	case *wire.SeriesFetchReq:
		return serveSeries("meta", m.cfg.Telemetry, req)
	case *wire.EventFetchReq:
		return serveEvents("meta", m.cfg.Events, req)
	case *wire.AlertFetchReq:
		return serveAlerts("meta", m.cfg.SLO)
	case *wire.RangeQueryReq:
		return serveRangeQuery("meta", m.cfg.Archive, req)
	default:
		return nil, fmt.Errorf("%w: metadata server got %v", ErrUnsupported, msg.Type())
	}
}

// health answers a HealthReq with namespace readiness: the in-memory
// tables are always live once construction succeeded, and the journal —
// when configured — must still be open for mutations to be durable.
func (m *MetaServer) health() (wire.Message, error) {
	m.mu.Lock()
	files := len(m.byName)
	journaled := m.journal != nil
	m.mu.Unlock()
	checks := []telemetry.Check{
		{Name: "namespace", OK: true, Detail: fmt.Sprintf("%d files", files)},
	}
	if m.cfg.JournalPath != "" {
		checks = append(checks, telemetry.Check{
			Name: "journal", OK: journaled,
			Detail: m.cfg.JournalPath,
		})
	} else {
		checks = append(checks, telemetry.Check{Name: "journal", OK: true, Detail: "volatile (no journal configured)"})
	}
	checks = append(checks, m.cfg.SLO.Checks()...)
	return encodeHealth(telemetry.HealthReport{Node: "meta", Role: "meta", Checks: checks}, m.started)
}

// stats answers a StatsReq with the namespace server's metric snapshot.
func (m *MetaServer) stats() (wire.Message, error) {
	js, err := json.Marshal(m.reg.Snapshot())
	if err != nil {
		return nil, fmt.Errorf("%w: encoding stats: %v", ErrInvalid, err)
	}
	return &wire.StatsResp{Node: "meta", Role: "meta", Stats: js}, nil
}

func (m *MetaServer) create(req *wire.CreateReq) (wire.Message, error) {
	m.reg.Counter("meta.create").Inc()
	if req.Name == "" {
		return nil, fmt.Errorf("%w: empty file name", ErrInvalid)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byName[req.Name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, req.Name)
	}
	ss := req.StripeSize
	if ss == 0 {
		ss = m.cfg.DefaultStripeSize
	}
	var servers []uint32
	if len(req.Placement) > 0 {
		// Explicit placement: validate and honour as-is.
		for _, idx := range req.Placement {
			if int(idx) >= m.cfg.NumDataServers {
				return nil, fmt.Errorf("%w: placement index %d out of range", ErrInvalid, idx)
			}
		}
		servers = append([]uint32(nil), req.Placement...)
	} else {
		width := int(req.Width)
		if width <= 0 || width > m.cfg.NumDataServers {
			width = m.cfg.NumDataServers
		}
		// Rotate the starting server with the handle so small files
		// spread across the cluster instead of hammering server 0.
		start := int(m.nextHandle) % m.cfg.NumDataServers
		servers = make([]uint32, width)
		for i := range servers {
			servers[i] = uint32((start + i) % m.cfg.NumDataServers)
		}
	}
	reps := int(req.Replicas)
	if reps < 1 {
		reps = 1
	}
	if reps > len(servers) {
		return nil, fmt.Errorf("%w: %d replicas exceed stripe width %d", ErrInvalid, reps, len(servers))
	}
	handle := m.nextHandle
	m.nextHandle++
	rec := &FileRec{
		Handle:  handle,
		Name:    req.Name,
		ModTime: m.now(),
		Layout:  wire.Layout{StripeSize: ss, Servers: servers, Replicas: uint8(reps)},
	}
	if err := m.logEntry(entryCreate, rec); err != nil {
		return nil, err
	}
	m.byName[rec.Name] = rec
	m.byHandle[rec.Handle] = rec
	return &wire.CreateResp{Handle: rec.Handle, Layout: rec.Layout}, nil
}

func (m *MetaServer) open(req *wire.OpenReq) (wire.Message, error) {
	m.reg.Counter("meta.open").Inc()
	tk, err := m.admit(req.Tenant)
	if err != nil {
		return nil, err
	}
	defer tk.Release()
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.byName[req.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, req.Name)
	}
	return &wire.OpenResp{Handle: rec.Handle, Size: rec.Size, Layout: rec.Layout}, nil
}

func (m *MetaServer) stat(req *wire.StatReq) (wire.Message, error) {
	m.reg.Counter("meta.stat").Inc()
	tk, err := m.admit(req.Tenant)
	if err != nil {
		return nil, err
	}
	defer tk.Release()
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.byName[req.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, req.Name)
	}
	return &wire.StatResp{
		Handle:   rec.Handle,
		Size:     rec.Size,
		ModUnixN: rec.ModTime.UnixNano(),
		Layout:   rec.Layout,
	}, nil
}

func (m *MetaServer) remove(req *wire.RemoveReq) (wire.Message, error) {
	m.reg.Counter("meta.remove").Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.byName[req.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, req.Name)
	}
	if err := m.logEntry(entryRemove, rec); err != nil {
		return nil, err
	}
	delete(m.byName, rec.Name)
	delete(m.byHandle, rec.Handle)
	return &wire.RemoveResp{Handle: rec.Handle}, nil
}

func (m *MetaServer) list(req *wire.ListReq) (wire.Message, error) {
	m.reg.Counter("meta.list").Inc()
	tk, err := m.admit(req.Tenant)
	if err != nil {
		return nil, err
	}
	defer tk.Release()
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for name := range m.byName {
		if strings.HasPrefix(name, req.Prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return &wire.ListResp{Names: names}, nil
}

func (m *MetaServer) setSize(req *wire.SetSizeReq) (wire.Message, error) {
	m.reg.Counter("meta.setsize").Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.byHandle[req.Handle]
	if !ok {
		return nil, fmt.Errorf("%w: handle %d", ErrNotFound, req.Handle)
	}
	// Max semantics: concurrent extending writers converge without
	// coordination, and a stale smaller update can never shrink the file.
	if req.Size > rec.Size {
		prev := rec.Size
		rec.Size = req.Size
		rec.ModTime = m.now()
		if err := m.logEntry(entrySetSize, rec); err != nil {
			rec.Size = prev
			return nil, err
		}
	}
	return &wire.SetSizeResp{Size: rec.Size}, nil
}

// logEntry appends a journal entry when a journal is configured. Called
// with m.mu held.
func (m *MetaServer) logEntry(op uint8, rec *FileRec) error {
	if m.journal == nil {
		return nil
	}
	return m.journal.append(op, rec)
}

// applyEntry rebuilds in-memory state from one replayed journal entry.
func (m *MetaServer) applyEntry(op uint8, rec *FileRec) error {
	switch op {
	case entryCreate:
		m.byName[rec.Name] = rec
		m.byHandle[rec.Handle] = rec
		if rec.Handle >= m.nextHandle {
			m.nextHandle = rec.Handle + 1
		}
	case entryRemove:
		delete(m.byName, rec.Name)
		delete(m.byHandle, rec.Handle)
	case entrySetSize:
		if cur, ok := m.byHandle[rec.Handle]; ok {
			cur.Size = rec.Size
			cur.ModTime = rec.ModTime
		}
	default:
		return fmt.Errorf("pfs: journal: unknown entry op %d", op)
	}
	return nil
}

// CompactJournal rewrites the write-ahead journal as a snapshot of the
// live namespace, reclaiming the space of removed files and superseded
// updates. No-op when the server runs without a journal.
func (m *MetaServer) CompactJournal() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.journal == nil {
		return nil
	}
	records := make([]*FileRec, 0, len(m.byName))
	for _, rec := range m.byName {
		records = append(records, rec)
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Handle < records[j].Handle })
	if err := m.journal.compact(m.cfg.JournalPath, records); err != nil {
		m.cfg.Events.Error("meta", "journal compaction failed", "err", err.Error())
		return err
	}
	m.cfg.Events.Info("meta", "journal compacted", "files", fmt.Sprint(len(records)))
	return nil
}

// Files returns a snapshot of all records, for inspection and tests.
func (m *MetaServer) Files() []FileRec {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]FileRec, 0, len(m.byName))
	for _, rec := range m.byName {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
