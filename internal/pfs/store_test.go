package pfs

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
)

// storeImpls builds one of each store implementation for shared tests.
func storeImpls(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "objs"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	// Small extents so multi-extent paths get exercised by ordinary ops.
	es, err := NewExtentStore(ExtentConfig{Dir: filepath.Join(t.TempDir(), "ext"), ExtentSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { es.Close() })
	return map[string]Store{
		"mem":    NewMemStore(),
		"file":   fs,
		"extent": es,
	}
}

func TestStoreBasics(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			const h = 42
			if got := s.Size(h); got != 0 {
				t.Fatalf("empty size = %d", got)
			}
			if _, err := s.WriteAt(h, []byte("hello"), 0); err != nil {
				t.Fatal(err)
			}
			if _, err := s.WriteAt(h, []byte("world"), 10); err != nil {
				t.Fatal(err)
			}
			if got := s.Size(h); got != 15 {
				t.Fatalf("size = %d, want 15", got)
			}
			buf := make([]byte, 15)
			n, err := s.ReadAt(h, buf, 0)
			if err != nil || n != 15 {
				t.Fatalf("read = %d, %v", n, err)
			}
			want := append([]byte("hello"), 0, 0, 0, 0, 0)
			want = append(want, []byte("world")...)
			if !bytes.Equal(buf, want) {
				t.Fatalf("read %q, want %q (holes read as zeros)", buf, want)
			}

			// Reads past the end are short, not errors.
			n, err = s.ReadAt(h, buf, 12)
			if err != nil || n != 3 {
				t.Fatalf("tail read = %d, %v; want 3, nil", n, err)
			}
			n, err = s.ReadAt(h, buf, 100)
			if err != nil || n != 0 {
				t.Fatalf("past-end read = %d, %v; want 0, nil", n, err)
			}

			if err := s.Truncate(h, 5); err != nil {
				t.Fatal(err)
			}
			if got := s.Size(h); got != 5 {
				t.Fatalf("after truncate size = %d", got)
			}
			if err := s.Remove(h); err != nil {
				t.Fatal(err)
			}
			if got := s.Size(h); got != 0 {
				t.Fatalf("after remove size = %d", got)
			}
			// Removing again is fine.
			if err := s.Remove(h); err != nil {
				t.Fatalf("double remove: %v", err)
			}
		})
	}
}

func TestStoreIsolationBetweenHandles(t *testing.T) {
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			s.WriteAt(1, []byte("one"), 0)
			s.WriteAt(2, []byte("twotwo"), 0)
			if s.Size(1) != 3 || s.Size(2) != 6 {
				t.Fatalf("sizes = %d, %d", s.Size(1), s.Size(2))
			}
			s.Remove(1)
			if s.Size(2) != 6 {
				t.Fatal("removing handle 1 disturbed handle 2")
			}
		})
	}
}

// Property: mem and file stores agree on any sequence of writes followed
// by reads.
func TestStoresAgreeProperty(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "agree"))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	ms := NewMemStore()
	var handle uint64
	f := func(ops []op, readOff uint16, readLen uint8) bool {
		handle++
		for _, o := range ops {
			if len(o.Data) > 512 {
				o.Data = o.Data[:512]
			}
			ms.WriteAt(handle, o.Data, uint64(o.Off))
			fs.WriteAt(handle, o.Data, uint64(o.Off))
		}
		if ms.Size(handle) != fs.Size(handle) {
			return false
		}
		a := make([]byte, readLen)
		b := make([]byte, readLen)
		na, _ := ms.ReadAt(handle, a, uint64(readOff))
		nb, _ := fs.ReadAt(handle, b, uint64(readOff))
		return na == nb && bytes.Equal(a[:na], b[:nb])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
