package pfs

import (
	"net"
	"sync"
	"testing"
	"time"

	"dosas/internal/transport"
	"dosas/internal/wire"
)

// pongHandler answers Pings; anything else is unsupported. block, when
// non-nil, is waited on before answering Pings with Seq >= 1000 —
// deterministic slow-request injection. panicSeq, when non-zero, panics.
type pongHandler struct {
	block    chan struct{}
	panicSeq uint64
}

func (h *pongHandler) Handle(m wire.Message) (wire.Message, error) {
	ping, ok := m.(*wire.Ping)
	if !ok {
		return nil, ErrUnsupported
	}
	if h.panicSeq != 0 && ping.Seq == h.panicSeq {
		panic("injected handler panic")
	}
	if h.block != nil && ping.Seq >= 1000 {
		<-h.block
	}
	return &wire.Pong{Seq: ping.Seq}, nil
}

// startPongServer runs a Server over Inproc and returns the network, the
// address, and the server (already started, cleaned up with the test).
func startPongServer(t *testing.T, h Handler, mux bool) (*transport.Inproc, string, *Server) {
	t.Helper()
	n := transport.NewInproc()
	l, err := n.Listen("peer")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, h)
	srv.SetMux(mux)
	srv.Start()
	t.Cleanup(srv.Close)
	return n, "peer", srv
}

func counter(t *testing.T, p *Pool, name string) int64 {
	t.Helper()
	return p.Metrics().Counter(name).Value()
}

// Concurrent calls to a mux-capable peer must multiplex over the shared
// connection set instead of dialing per call, and must complete out of
// order: with every shared connection saturated by blocked requests, a
// fast request still gets through.
func TestMuxCallsShareConnectionsAndCompleteOutOfOrder(t *testing.T) {
	h := &pongHandler{block: make(chan struct{})}
	n, addr, _ := startPongServer(t, h, true)
	p := NewPool(n)
	defer p.Close()

	const slow = 4
	var wg sync.WaitGroup
	for i := 0; i < slow; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := p.Call(addr, &wire.Ping{Seq: uint64(1000 + i)}); err != nil {
				t.Errorf("slow call %d: %v", i, err)
			}
		}(i)
	}
	// Wait until all slow requests are in flight server-side, so both
	// shared connections are carrying blocked requests.
	deadline := time.Now().Add(5 * time.Second)
	for p.Metrics().Gauge("pool.mux.streams").Value() < slow {
		if time.Now().After(deadline) {
			t.Fatalf("only %d slow calls in flight", p.Metrics().Gauge("pool.mux.streams").Value())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := p.Call(addr, &wire.Ping{Seq: 7})
	if err != nil {
		t.Fatalf("fast call while peers blocked: %v", err)
	}
	if resp.(*wire.Pong).Seq != 7 {
		t.Fatalf("fast call got %v", resp)
	}
	close(h.block)
	wg.Wait()

	if d := counter(t, p, "pool.dials"); d > MuxConnsPerAddr {
		t.Errorf("%d dials for %d concurrent calls, want <= %d shared conns", d, slow+1, MuxConnsPerAddr)
	}
	if c := counter(t, p, "pool.mux.calls"); c != slow+1 {
		t.Errorf("pool.mux.calls = %d, want %d", c, slow+1)
	}
	if s := p.Metrics().Gauge("pool.mux.streams").Value(); s != 0 {
		t.Errorf("pool.mux.streams = %d after all calls done, want 0", s)
	}
}

// A server with the upgrade disabled declines the handshake with a
// HelloResp v0; the client must fall back to ordered mode and reuse the
// handshake connection rather than wasting it.
func TestMuxFallsBackWhenServerDeclines(t *testing.T) {
	n, addr, _ := startPongServer(t, &pongHandler{}, false)
	p := NewPool(n)
	defer p.Close()

	for seq := uint64(1); seq <= 3; seq++ {
		resp, err := p.Call(addr, &wire.Ping{Seq: seq})
		if err != nil {
			t.Fatalf("call %d: %v", seq, err)
		}
		if resp.(*wire.Pong).Seq != seq {
			t.Fatalf("call %d got %v", seq, resp)
		}
	}
	if c := counter(t, p, "pool.mux.fallbacks"); c != 1 {
		t.Errorf("pool.mux.fallbacks = %d, want 1", c)
	}
	if c := counter(t, p, "pool.mux.handshakes"); c != 0 {
		t.Errorf("pool.mux.handshakes = %d, want 0", c)
	}
	if c := counter(t, p, "pool.dials"); c != 1 {
		t.Errorf("pool.dials = %d, want 1 (declined handshake conn must be reused)", c)
	}
}

// A pre-handshake binary does not know MsgHelloReq at all: it drops the
// connection on the undecodable frame. Emulated with a hand-rolled server
// that hangs up on anything but Ping.
func TestMuxFallsBackAgainstPreHandshakeServer(t *testing.T) {
	n := transport.NewInproc()
	l, err := n.Listen("old")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				fr := wire.NewFrameReader(c)
				defer fr.Close()
				for {
					m, err := fr.Read()
					if err != nil {
						return
					}
					ping, ok := m.(*wire.Ping)
					if !ok {
						return // old binary: unknown type, hang up
					}
					if wire.WriteMessage(c, &wire.Pong{Seq: ping.Seq}) != nil {
						return
					}
				}
			}(c)
		}
	}()

	p := NewPool(n)
	defer p.Close()
	resp, err := p.Call("old", &wire.Ping{Seq: 9})
	if err != nil {
		t.Fatalf("call against pre-handshake server: %v", err)
	}
	if resp.(*wire.Pong).Seq != 9 {
		t.Fatalf("got %v", resp)
	}
	if c := counter(t, p, "pool.mux.fallbacks"); c != 1 {
		t.Errorf("pool.mux.fallbacks = %d, want 1", c)
	}
	if _, err := p.Call("old", &wire.Ping{Seq: 10}); err != nil {
		t.Fatalf("second ordered call: %v", err)
	}
}

// An ordered-only client (DisableMux) against a mux-capable server must
// never attempt the handshake and must work as before.
func TestOrderedClientAgainstMuxServer(t *testing.T) {
	n, addr, _ := startPongServer(t, &pongHandler{}, true)
	p := NewPool(n)
	p.DisableMux()
	defer p.Close()

	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := p.Call(addr, &wire.Ping{Seq: seq}); err != nil {
			t.Fatalf("call %d: %v", seq, err)
		}
	}
	if c := counter(t, p, "pool.mux.handshakes"); c != 0 {
		t.Errorf("pool.mux.handshakes = %d, want 0", c)
	}
	if c := counter(t, p, "pool.idle.reuse"); c != 2 {
		t.Errorf("pool.idle.reuse = %d, want 2", c)
	}
}

// A panicking handler must produce a StatusInternal error response and
// leave the connection serving — in both modes. Before the recover was
// added, a panic killed the connection goroutine with no response.
func TestServerRecoversHandlerPanic(t *testing.T) {
	for _, mode := range []struct {
		name string
		mux  bool
	}{{"mux", true}, {"ordered", false}} {
		t.Run(mode.name, func(t *testing.T) {
			n, addr, _ := startPongServer(t, &pongHandler{panicSeq: 666}, mode.mux)
			p := NewPool(n)
			if !mode.mux {
				p.DisableMux()
			}
			defer p.Close()

			if _, err := p.Call(addr, &wire.Ping{Seq: 1}); err != nil {
				t.Fatalf("warmup call: %v", err)
			}
			_, err := p.Call(addr, &wire.Ping{Seq: 666})
			re, ok := err.(*RemoteError)
			if !ok || re.Code != wire.StatusInternal {
				t.Fatalf("panic call: err = %v, want StatusInternal RemoteError", err)
			}
			if _, err := p.Call(addr, &wire.Ping{Seq: 2}); err != nil {
				t.Fatalf("call after panic: %v", err)
			}
			// The connection must have survived the panic: no redial
			// beyond the lazily-dialed shared set (mux) or the one
			// idle conn (ordered).
			want := int64(MuxConnsPerAddr)
			if !mode.mux {
				want = 1
			}
			if d := counter(t, p, "pool.dials"); d > want {
				t.Errorf("pool.dials = %d, want <= %d (conn should survive the panic)", d, want)
			}
		})
	}
}

// Streams over mux keep the pipelined request-order contract, and
// Release with responses still pending must not poison the shared
// connection for subsequent callers.
func TestStreamOverMux(t *testing.T) {
	n, addr, _ := startPongServer(t, &pongHandler{}, true)
	p := NewPool(n)
	defer p.Close()

	s, err := p.Stream(addr)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.Send(&wire.Ping{Seq: seq}); err != nil {
			t.Fatalf("send %d: %v", seq, err)
		}
	}
	for seq := uint64(1); seq <= 3; seq++ {
		resp, err := s.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", seq, err)
		}
		if resp.(*wire.Pong).Seq != seq {
			t.Fatalf("recv %d got %v (order broken)", seq, resp)
		}
	}
	s.Release()

	// Abandon a stream mid-flight; the shared conn must stay healthy.
	s2, err := p.Stream(addr)
	if err != nil {
		t.Fatal(err)
	}
	s2.Send(&wire.Ping{Seq: 10}) //nolint:errcheck
	s2.Send(&wire.Ping{Seq: 11}) //nolint:errcheck
	s2.Release()

	if _, err := p.Call(addr, &wire.Ping{Seq: 12}); err != nil {
		t.Fatalf("call after abandoned stream: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Metrics().Gauge("pool.mux.streams").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool.mux.streams stuck at %d", p.Metrics().Gauge("pool.mux.streams").Value())
		}
		time.Sleep(time.Millisecond)
	}
}

// Mux calls must transparently retry once on a fresh connection when the
// shared connection went stale across a server restart.
func TestMuxSurvivesServerRestart(t *testing.T) {
	n := transport.NewInproc()
	l, err := n.Listen("restart")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, &pongHandler{})
	srv.Start()

	p := NewPool(n)
	defer p.Close()
	if _, err := p.Call("restart", &wire.Ping{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	l2, err := n.Listen("restart")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(l2, &pongHandler{})
	srv2.Start()
	defer srv2.Close()

	if _, err := p.Call("restart", &wire.Ping{Seq: 2}); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if c := counter(t, p, "pool.mux.handshakes"); c < 2 {
		t.Errorf("pool.mux.handshakes = %d, want >= 2 (re-handshake after restart)", c)
	}
}

// Idle ordered connections past the TTL are reaped instead of reused; a
// shorter idle age triggers a liveness probe that catches dead servers
// without burning a round trip on them.
func TestIdleConnReaping(t *testing.T) {
	t.Run("ttl", func(t *testing.T) {
		n, addr, _ := startPongServer(t, &pongHandler{}, false)
		p := NewPool(n)
		p.DisableMux()
		p.SetIdleTTL(time.Millisecond, time.Hour)
		defer p.Close()

		if _, err := p.Call(addr, &wire.Ping{Seq: 1}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		if _, err := p.Call(addr, &wire.Ping{Seq: 2}); err != nil {
			t.Fatal(err)
		}
		if c := counter(t, p, "pool.idle.expired"); c != 1 {
			t.Errorf("pool.idle.expired = %d, want 1", c)
		}
		if c := counter(t, p, "pool.dials"); c != 2 {
			t.Errorf("pool.dials = %d, want 2", c)
		}
	})
	t.Run("probe", func(t *testing.T) {
		n := transport.NewInproc()
		l, err := n.Listen("probe")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(l, &pongHandler{})
		srv.Start()

		p := NewPool(n)
		p.DisableMux()
		p.SetIdleTTL(time.Hour, 0) // probe every idle conn regardless of age
		defer p.Close()

		if _, err := p.Call("probe", &wire.Ping{Seq: 1}); err != nil {
			t.Fatal(err)
		}
		srv.Close() // the idle conn is now dead
		l2, err := n.Listen("probe")
		if err != nil {
			t.Fatal(err)
		}
		srv2 := NewServer(l2, &pongHandler{})
		srv2.Start()
		defer srv2.Close()

		if _, err := p.Call("probe", &wire.Ping{Seq: 2}); err != nil {
			t.Fatalf("call after restart: %v", err)
		}
		if c := counter(t, p, "pool.idle.expired"); c != 1 {
			t.Errorf("pool.idle.expired = %d, want 1 (probe should catch the dead conn)", c)
		}
		if c := counter(t, p, "pool.stale.retries"); c != 0 {
			t.Errorf("pool.stale.retries = %d, want 0 (probe should pre-empt the failed round trip)", c)
		}
	})
	t.Run("fresh conn reused untouched", func(t *testing.T) {
		n, addr, _ := startPongServer(t, &pongHandler{}, false)
		p := NewPool(n)
		p.DisableMux()
		defer p.Close()
		for seq := uint64(1); seq <= 5; seq++ {
			if _, err := p.Call(addr, &wire.Ping{Seq: seq}); err != nil {
				t.Fatal(err)
			}
		}
		if c := counter(t, p, "pool.dials"); c != 1 {
			t.Errorf("pool.dials = %d, want 1", c)
		}
		if c := counter(t, p, "pool.idle.reuse"); c != 4 {
			t.Errorf("pool.idle.reuse = %d, want 4", c)
		}
	})
}
