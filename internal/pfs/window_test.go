package pfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dosas/internal/metrics"
	"dosas/internal/transport"
	"dosas/internal/wire"
)

// dataNode is one standalone data server for exercising the windowed
// transfer paths directly against a single connection target.
type dataNode struct {
	net   transport.Network
	addr  string
	store Store
	reg   *metrics.Registry
	srv   *Server
	pool  *Pool
}

func startDataNode(t *testing.T, store Store) *dataNode {
	t.Helper()
	n := &dataNode{net: transport.NewInproc(), addr: "data-w", store: store, reg: metrics.NewRegistry()}
	n.start(t)
	p := NewPool(n.net)
	t.Cleanup(p.Close)
	n.pool = p
	return n
}

func (n *dataNode) start(t *testing.T) {
	t.Helper()
	ds, err := NewDataServer(DataConfig{Store: n.store, Metrics: n.reg})
	if err != nil {
		t.Fatal(err)
	}
	l, err := n.net.Listen(n.addr)
	if err != nil {
		t.Fatal(err)
	}
	n.srv = NewServer(l, ds)
	n.srv.Start()
	t.Cleanup(func() { n.srv.Close() })
}

// fill seeds handle with deterministic pseudo-random bytes.
func fill(t *testing.T, s Store, handle uint64, size int, seed int64) []byte {
	t.Helper()
	data := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(data)
	if _, err := s.WriteAt(handle, data, 0); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestReadWindowedMatchesStore(t *testing.T) {
	n := startDataNode(t, NewMemStore())
	want := fill(t, n.store, 1, 1<<20, 7)
	for _, depth := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{1024, 64 << 10, 1 << 20, 4 << 20} {
			got := make([]byte, len(want))
			k, err := n.pool.ReadWindowed(n.addr, 1, got, 0, depth, chunk)
			if err != nil {
				t.Fatalf("depth=%d chunk=%d: %v", depth, chunk, err)
			}
			if k != len(want) || !bytes.Equal(got, want) {
				t.Fatalf("depth=%d chunk=%d: data mismatch (%d bytes)", depth, chunk, k)
			}
		}
	}
	// Interior range with an odd offset.
	got := make([]byte, 123_457)
	if _, err := n.pool.ReadWindowed(n.addr, 1, got, 999, 4, 10_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[999:999+len(got)]) {
		t.Fatal("interior range mismatch")
	}
}

func TestWriteWindowedMatchesStore(t *testing.T) {
	n := startDataNode(t, NewMemStore())
	data := make([]byte, 3<<20+12345)
	rand.New(rand.NewSource(11)).Read(data)
	k, err := n.pool.WriteWindowed(n.addr, 2, data, 77, 4, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if k != len(data) {
		t.Fatalf("acked %d of %d bytes", k, len(data))
	}
	got := make([]byte, len(data))
	if _, err := n.store.ReadAt(2, got, 77); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("written bytes diverge")
	}
}

// shortStore serves at most cap bytes per ReadAt, forcing every windowed
// chunk response to come back short and exercising the drain-and-resync
// path continuously.
type shortStore struct {
	Store
	cap int
}

func (s *shortStore) ReadAt(handle uint64, p []byte, off uint64) (int, error) {
	if len(p) > s.cap {
		p = p[:s.cap]
	}
	return s.Store.ReadAt(handle, p, off)
}

func TestReadWindowedResyncsAfterShortReads(t *testing.T) {
	inner := NewMemStore()
	n := startDataNode(t, &shortStore{Store: inner, cap: 1000})
	want := fill(t, inner, 3, 64<<10, 13)
	got := make([]byte, len(want))
	k, err := n.pool.ReadWindowed(n.addr, 3, got, 0, 4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if k != len(want) || !bytes.Equal(got, want) {
		t.Fatal("short-read resync corrupted the transfer")
	}
	// Every response was short, so the client had to discard in-flight
	// requests and restart; the observed request count proves it retried
	// rather than mis-assembled.
	if reads := n.reg.Counter("data.read").Value(); reads < int64(len(want)/1000) {
		t.Fatalf("only %d read RPCs for a fully short-served stream", reads)
	}
}

func TestReadWindowedPastEndFailsAndPoolSurvives(t *testing.T) {
	n := startDataNode(t, NewMemStore())
	want := fill(t, n.store, 4, 10_000, 17)
	got := make([]byte, 64<<10) // far beyond the stream
	if _, err := n.pool.ReadWindowed(n.addr, 4, got, 0, 4, 4096); err == nil {
		t.Fatal("read past stream end succeeded")
	}
	// The failed window drained its in-flight responses, so the pooled
	// connection must still be usable for the next transfer.
	got = make([]byte, len(want))
	if _, err := n.pool.ReadWindowed(n.addr, 4, got, 0, 4, 4096); err != nil {
		t.Fatalf("pool poisoned after failed window: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-failure read mismatch")
	}
}

func TestWindowedRetriesStaleIdleConn(t *testing.T) {
	n := startDataNode(t, NewMemStore())
	want := fill(t, n.store, 5, 32<<10, 19)
	got := make([]byte, len(want))
	if _, err := n.pool.ReadWindowed(n.addr, 5, got, 0, 4, 4096); err != nil {
		t.Fatal(err)
	}
	// Restart the server: the pool's idle connection goes stale.
	n.srv.Close()
	n.start(t)
	if _, err := n.pool.ReadWindowed(n.addr, 5, got, 0, 4, 4096); err != nil {
		t.Fatalf("windowed read did not recover from stale idle conn: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-restart read mismatch")
	}
	if _, err := n.pool.WriteWindowed(n.addr, 6, want, 0, 4, 4096); err != nil {
		t.Fatalf("windowed write after restart: %v", err)
	}
}

// failStore rejects writes, producing error responses on the write path.
type failStore struct {
	Store
}

func (s *failStore) WriteAt(handle uint64, p []byte, off uint64) (int, error) {
	return 0, fmt.Errorf("%w: disk on fire", ErrInvalid)
}

// waitGauge polls until the gauge reaches want; PostWrite runs on the
// server goroutine after the response frame, so a freshly returned call
// may observe the decrement mid-flight.
func waitGauge(t *testing.T, g *metrics.Gauge, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for g.Value() != want {
		if time.Now().After(deadline) {
			t.Fatalf("gauge = %d, want %d", g.Value(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// Regression: the data.inflight gauge must return to zero when requests
// fail — the error response still passes through PostWrite.
func TestInflightGaugeBalancedOnErrors(t *testing.T) {
	mem := NewMemStore()
	n := startDataNode(t, &failStore{Store: mem})
	gauge := n.reg.Gauge("data.inflight")

	// Oversized read length: the handler errors after the gauge increment.
	_, err := n.pool.Call(n.addr, &wire.ReadReq{Handle: 1, Offset: 0, Length: wire.MaxFrameSize})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("oversized read: err = %v, want RemoteError", err)
	}
	waitGauge(t, gauge, 0)

	// Failing store write: error response, gauge still released.
	_, err = n.pool.Call(n.addr, &wire.WriteReq{Handle: 1, Offset: 0, Data: []byte("x")})
	if !errors.As(err, &re) {
		t.Fatalf("failing write: err = %v, want RemoteError", err)
	}
	waitGauge(t, gauge, 0)

	// And the healthy paths drain back to zero too.
	if _, err := mem.WriteAt(9, []byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.pool.Call(n.addr, &wire.ReadReq{Handle: 9, Length: 11}); err != nil {
		t.Fatal(err)
	}
	waitGauge(t, gauge, 0)
	if got := n.reg.Counter("data.read").Value(); got != 2 {
		t.Fatalf("data.read = %d, want 2", got)
	}
	if got := n.reg.Counter("data.write").Value(); got != 1 {
		t.Fatalf("data.write = %d, want 1", got)
	}
}

// ReadAll must ride the same parallel ReadAt + windowed machinery as any
// other read, including replica failover and multi-stripe assembly.
func TestReadAllUsesWindowedReadPath(t *testing.T) {
	tc := startCluster(t, 3)
	f, err := tc.client.Create("win/all.bin", 8<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 300_000) // ~37 stripes over 3 servers, ragged tail
	rand.New(rand.NewSource(23)).Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReadAll mismatch")
	}
	// A tiny file and an empty file behave too.
	tiny, err := tc.client.Create("win/tiny.bin", 8<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tiny.WriteAt([]byte{0xEE}, 0); err != nil {
		t.Fatal(err)
	}
	got, err = tiny.ReadAll()
	if err != nil || len(got) != 1 || got[0] != 0xEE {
		t.Fatalf("single-byte ReadAll = %x, %v", got, err)
	}
	empty, err := tc.client.Create("win/empty.bin", 8<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err = empty.ReadAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty ReadAll = %d bytes, %v", len(got), err)
	}
}

// End-to-end: files read and write identically across window depths, on
// plain and replicated layouts.
func TestFileRoundTripAcrossWindowDepths(t *testing.T) {
	for _, depth := range []int{1, 4} {
		for _, replicas := range []int{1, 2} {
			t.Run(fmt.Sprintf("depth=%d/replicas=%d", depth, replicas), func(t *testing.T) {
				tc := startCluster(t, 3)
				tc.client.cfg.WindowDepth = depth
				tc.client.cfg.TransferChunk = 16 << 10
				name := fmt.Sprintf("win/d%d-r%d.bin", depth, replicas)
				f, err := tc.client.CreateReplicated(name, 8<<10, 3, replicas)
				if err != nil {
					t.Fatal(err)
				}
				data := make([]byte, 200_000)
				rand.New(rand.NewSource(int64(depth*10 + replicas))).Read(data)
				if _, err := f.WriteAt(data, 0); err != nil {
					t.Fatal(err)
				}
				got := make([]byte, len(data))
				if _, err := f.ReadAt(got, 0); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatal("round trip mismatch")
				}
			})
		}
	}
}
