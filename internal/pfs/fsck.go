package pfs

import (
	"bytes"
	"fmt"

	"dosas/internal/wire"
)

// Issue is one inconsistency found by Verify: a (slot, replica) stream
// whose length or content disagrees with what the file's layout implies.
type Issue struct {
	Slot    int
	Replica int
	Server  uint32
	// Kind is "size" (stream length wrong) or "content" (replica bytes
	// diverge from the reference copy).
	Kind string
	Want uint64
	Got  uint64
}

// String renders the issue for operators.
func (i Issue) String() string {
	return fmt.Sprintf("slot %d replica %d on server %d: %s want=%d got=%d",
		i.Slot, i.Replica, i.Server, i.Kind, i.Want, i.Got)
}

// Report summarises a verification pass over one file.
type Report struct {
	Name         string
	BytesChecked uint64
	Issues       []Issue
}

// OK reports whether the file verified clean.
func (r *Report) OK() bool { return len(r.Issues) == 0 }

// Verify checks a file's on-cluster consistency: every (slot, replica)
// stream must have exactly the local length the layout implies for the
// file's size, and — with deep set — every replica stream must be
// byte-identical to its slot's reference copy. Unreachable servers are
// reported as size issues with Got = 0.
func (c *Client) Verify(name string, deep bool) (*Report, error) {
	st, err := c.Stat(name)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: name}
	layout := st.Layout
	for slot := range layout.Servers {
		want := LocalSize(layout, st.Size, slot)
		sizes := make([]uint64, layout.ReplicaCount())
		for r := 0; r < layout.ReplicaCount(); r++ {
			server := ReplicaServer(layout, slot, r)
			got, err := c.localSize(server, ReplicaHandle(st.Handle, r))
			if err != nil {
				got = 0
			}
			sizes[r] = got
			if got != want {
				rep.Issues = append(rep.Issues, Issue{
					Slot: slot, Replica: r, Server: server,
					Kind: "size", Want: want, Got: got,
				})
			}
		}
		if !deep || want == 0 {
			continue
		}
		// Deep pass: pick the first size-correct copy as reference and
		// compare the others byte-for-byte.
		ref := -1
		for r, got := range sizes {
			if got == want {
				ref = r
				break
			}
		}
		if ref < 0 {
			continue // nothing sound to compare against
		}
		refData, err := c.readLocalStream(ReplicaServer(layout, slot, ref),
			ReplicaHandle(st.Handle, ref), want)
		if err != nil {
			continue
		}
		rep.BytesChecked += want
		for r, got := range sizes {
			if r == ref || got != want {
				continue
			}
			data, err := c.readLocalStream(ReplicaServer(layout, slot, r),
				ReplicaHandle(st.Handle, r), want)
			if err != nil || !bytes.Equal(data, refData) {
				rep.Issues = append(rep.Issues, Issue{
					Slot: slot, Replica: r, Server: ReplicaServer(layout, slot, r),
					Kind: "content", Want: want, Got: got,
				})
			} else {
				rep.BytesChecked += want
			}
			wire.PutBuf(data)
		}
		wire.PutBuf(refData)
	}
	return rep, nil
}

// Repair restores diverged or missing replica streams from an intact copy
// of the same slot. It returns the post-repair verification report, which
// is clean unless a slot has no intact copy left (data loss) or a server
// is unreachable.
func (c *Client) Repair(name string) (*Report, error) {
	before, err := c.Verify(name, true)
	if err != nil {
		return nil, err
	}
	if before.OK() {
		return before, nil
	}
	st, err := c.Stat(name)
	if err != nil {
		return nil, err
	}
	layout := st.Layout
	broken := make(map[int]map[int]bool) // slot → replica → needs repair
	for _, is := range before.Issues {
		if broken[is.Slot] == nil {
			broken[is.Slot] = make(map[int]bool)
		}
		broken[is.Slot][is.Replica] = true
	}
	for slot, reps := range broken {
		want := LocalSize(layout, st.Size, slot)
		// Find an intact source copy for this slot.
		src := -1
		for r := 0; r < layout.ReplicaCount(); r++ {
			if !reps[r] {
				src = r
				break
			}
		}
		if src < 0 {
			continue // all copies damaged: unrepairable, surfaces in re-verify
		}
		data, err := c.readLocalStream(ReplicaServer(layout, slot, src),
			ReplicaHandle(st.Handle, src), want)
		if err != nil {
			continue
		}
		for r := range reps {
			server := ReplicaServer(layout, slot, r)
			handle := ReplicaHandle(st.Handle, r)
			if err := c.writeLocalStream(server, handle, data); err != nil {
				continue
			}
			// Cut any excess bytes beyond the correct length.
			addr, err := c.DataAddr(server)
			if err != nil {
				continue
			}
			c.pool.Call(addr, &wire.TruncReq{Handle: handle, Size: want}) //nolint:errcheck
		}
		wire.PutBuf(data)
	}
	return c.Verify(name, true)
}

// localSize queries one server's stream length.
func (c *Client) localSize(server uint32, handle uint64) (uint64, error) {
	addr, err := c.DataAddr(server)
	if err != nil {
		return 0, err
	}
	resp, err := c.pool.Call(addr, &wire.LocalSizeReq{Handle: handle})
	if err != nil {
		return 0, err
	}
	sr, ok := resp.(*wire.LocalSizeResp)
	if !ok {
		return 0, fmt.Errorf("pfs: localsize: unexpected response %v", resp.Type())
	}
	return sr.Size, nil
}

// readLocalStream fetches [0, length) of a server's local stream over
// the same sliding-window path the file data plane uses. The returned
// slice comes from the wire buffer pool; the caller must hand it back
// with wire.PutBuf once done comparing or copying.
func (c *Client) readLocalStream(server uint32, handle, length uint64) ([]byte, error) {
	addr, err := c.DataAddr(server)
	if err != nil {
		return nil, err
	}
	out := wire.GetBuf(int(length))
	if _, err := c.pool.ReadWindowed(addr, handle, out, 0,
		c.cfg.WindowDepth, c.cfg.TransferChunk); err != nil {
		wire.PutBuf(out)
		return nil, fmt.Errorf("pfs: fsck read: %w", err)
	}
	return out, nil
}

// writeLocalStream stores data at offset 0 of a server's local stream
// over the sliding-window path.
func (c *Client) writeLocalStream(server uint32, handle uint64, data []byte) error {
	addr, err := c.DataAddr(server)
	if err != nil {
		return err
	}
	if _, err := c.pool.WriteWindowed(addr, handle, data, 0,
		c.cfg.WindowDepth, c.cfg.TransferChunk); err != nil {
		return fmt.Errorf("pfs: fsck write: %w", err)
	}
	return nil
}
