package pfs

import (
	"strings"
	"testing"

	"dosas/internal/eventlog"
	"dosas/internal/slo"
	"dosas/internal/telemetry"
	"dosas/internal/wire"
)

// newDroppedSampler builds a sampler whose 2-point ring has already
// overwritten two samples.
func newDroppedSampler(t *testing.T) *telemetry.Sampler {
	t.Helper()
	s := telemetry.NewSampler(telemetry.Config{Capacity: 2})
	s.Register("x", func() float64 { return 1 })
	for i := 0; i < 4; i++ {
		s.Tick()
	}
	if s.Dropped() != 2 {
		t.Fatalf("sampler dropped = %d, want 2", s.Dropped())
	}
	return s
}

// TestSeriesFetchCarriesDropped checks a data server's series response
// reports how many ring samples were overwritten, alongside the tick.
func TestSeriesFetchCarriesDropped(t *testing.T) {
	tele := newDroppedSampler(t)
	ds, err := NewDataServer(DataConfig{Store: NewMemStore(), Node: "data-0", Telemetry: tele})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ds.Handle(&wire.SeriesFetchReq{})
	if err != nil {
		t.Fatal(err)
	}
	sf := resp.(*wire.SeriesFetchResp)
	if sf.Dropped != 2 {
		t.Fatalf("SeriesFetchResp.Dropped = %d, want 2", sf.Dropped)
	}
	if sf.TickNano != int64(tele.Interval()) {
		t.Fatalf("TickNano = %d, want %d", sf.TickNano, tele.Interval())
	}
	series, err := telemetry.DecodeSeries(sf.Series)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Name != "x" {
		t.Fatalf("series = %+v", series)
	}
}

// TestHealthSurfacesRingDrops checks the node's health report carries an
// informational telemetry check once the ring has overwritten samples —
// without degrading readiness.
func TestHealthSurfacesRingDrops(t *testing.T) {
	ds, err := NewDataServer(DataConfig{Store: NewMemStore(), Node: "data-0", Telemetry: newDroppedSampler(t)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ds.Handle(&wire.HealthReq{})
	if err != nil {
		t.Fatal(err)
	}
	hr := resp.(*wire.HealthResp)
	if !hr.Ready {
		t.Fatalf("ring drops degraded readiness: %+v", hr)
	}
	checks, err := telemetry.DecodeChecks(hr.Checks)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, chk := range checks {
		if chk.Name == "telemetry" {
			found = true
			if !chk.OK || !strings.Contains(chk.Detail, "2 ring samples overwritten") {
				t.Fatalf("telemetry check = %+v", chk)
			}
		}
	}
	if !found {
		t.Fatalf("no telemetry check in %+v", checks)
	}
}

// TestEventAndAlertFetch round-trips a data server's event tail and
// alert table over their wire messages, including the nil-engine and
// since-cursor edge cases sweeps depend on.
func TestEventAndAlertFetch(t *testing.T) {
	events, err := eventlog.New(eventlog.Config{Node: "data-0"})
	if err != nil {
		t.Fatal(err)
	}
	events.Info("test", "first")
	events.Warn("test", "second")

	tele := telemetry.NewSampler(telemetry.Config{})
	engine, err := slo.NewEngine(slo.Config{Rules: slo.DefaultRules(), Sampler: tele, Node: "data-0"})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataServer(DataConfig{
		Store: NewMemStore(), Node: "data-0",
		Telemetry: tele, Events: events, SLO: engine,
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := ds.Handle(&wire.EventFetchReq{})
	if err != nil {
		t.Fatal(err)
	}
	ef := resp.(*wire.EventFetchResp)
	got, err := eventlog.DecodeEvents(ef.Events)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Msg != "first" || got[1].Msg != "second" {
		t.Fatalf("events = %+v", got)
	}
	if ef.NextSeq != 3 {
		t.Fatalf("NextSeq = %d, want 3", ef.NextSeq)
	}

	// A cursor past the first event returns only what came later.
	resp, err = ds.Handle(&wire.EventFetchReq{SinceSeq: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err = eventlog.DecodeEvents(resp.(*wire.EventFetchResp).Events)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Msg != "second" {
		t.Fatalf("cursored events = %+v", got)
	}

	resp, err = ds.Handle(&wire.AlertFetchReq{})
	if err != nil {
		t.Fatal(err)
	}
	af := resp.(*wire.AlertFetchResp)
	alerts, err := slo.DecodeAlerts(af.Alerts)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != len(slo.DefaultRules()) {
		t.Fatalf("alerts = %d, want %d rules", len(alerts), len(slo.DefaultRules()))
	}
	for _, a := range alerts {
		if a.Node != "data-0" || a.State != slo.StateInactive {
			t.Fatalf("alert = %+v", a)
		}
	}

	// A server without an event log or engine answers empty, not erroring.
	bare, err := NewDataServer(DataConfig{Store: NewMemStore(), Node: "data-1"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = bare.Handle(&wire.EventFetchReq{})
	if err != nil {
		t.Fatal(err)
	}
	if ev := resp.(*wire.EventFetchResp); len(ev.Events) > 0 && string(ev.Events) != "null" && string(ev.Events) != "[]" {
		t.Fatalf("bare event fetch = %q", ev.Events)
	}
	resp, err = bare.Handle(&wire.AlertFetchReq{})
	if err != nil {
		t.Fatal(err)
	}
	if al, err := slo.DecodeAlerts(resp.(*wire.AlertFetchResp).Alerts); err != nil || len(al) != 0 {
		t.Fatalf("bare alert fetch = %v, %v", al, err)
	}
}
