package pfs

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"dosas/internal/audit"
	"dosas/internal/eventlog"
	"dosas/internal/ioqueue"
	"dosas/internal/metrics"
	"dosas/internal/slo"
	"dosas/internal/telemetry"
	"dosas/internal/tenant"
	"dosas/internal/trace"
	"dosas/internal/tsdb"
	"dosas/internal/wire"
)

// ActiveHandler is the extension point through which the core package
// plugs active-storage processing into a data server. A plain data server
// (no active runtime attached) rejects active requests with
// wire.StatusUnsupported, which clients treat as "always bounce" —
// degrading gracefully to traditional storage.
type ActiveHandler interface {
	// HandleActive services one active read; it may block for the full
	// duration of kernel execution.
	HandleActive(req *wire.ActiveReadReq) (*wire.ActiveReadResp, error)
	// HandleProbe reports current load for the Contention Estimator.
	HandleProbe() (*wire.ProbeResp, error)
	// HandleCancel withdraws a queued or running active request.
	HandleCancel(req *wire.CancelReq) (*wire.CancelResp, error)
	// HandleTransform runs a kernel over local data and writes the
	// output locally (active write-back).
	HandleTransform(req *wire.TransformReq) (*wire.TransformResp, error)
}

// DataConfig configures a data server.
type DataConfig struct {
	// Store backs the server's stripe streams; required.
	Store Store
	// Metrics receives operation counters; optional.
	Metrics *metrics.Registry
	// Node is this server's identity in stats and trace exports (e.g.
	// "data-0"). Optional.
	Node string
	// Trace is the node's lifecycle-event ring, served to operators via
	// TraceFetchReq. Usually shared with the attached active runtime.
	// Optional.
	Trace *trace.Recorder
	// Telemetry is the node's time-series sampler, served to operators
	// via SeriesFetchReq. Usually shared with (and owned by) the attached
	// active runtime. Optional.
	Telemetry *telemetry.Sampler
	// Audit is the node's scheduling-decision ring, served to operators
	// via DecisionLogReq. Usually shared with (and written by) the
	// attached active runtime. Optional.
	Audit *audit.Log
	// Events is the node's structured event log, served to operators via
	// EventFetchReq. Usually shared with the attached active runtime.
	// Optional.
	Events *eventlog.Log
	// SLO is the node's alert engine, served via AlertFetchReq and
	// contributing readiness checks to HealthReq. Optional.
	SLO *slo.Engine
	// Tenants is the node's per-tenant usage table, fed by the normal
	// I/O handlers and served via TenantStatsReq. Usually shared with the
	// attached active runtime. Optional: nil disables attribution.
	Tenants *tenant.Table
	// Archive is the node's durable telemetry archive, served via
	// RangeQueryReq. Owned by the daemon wiring (it hooks the sampler
	// and closes it); nil when the node runs without -archive-dir.
	Archive *tsdb.Archive
	// QoS, when non-nil, gates every read and write through a
	// weighted-fair admission queue (see QoSGate). Nil disables
	// enforcement: requests serve in arrival order, as before.
	QoS *QoSConfig
}

// DataServer is one storage node's I/O service: it stores the server-local
// byte streams of striped files and forwards active-storage requests to an
// attached ActiveHandler.
type DataServer struct {
	store   Store
	reg     *metrics.Registry
	node    string
	trace   *trace.Recorder
	tele    *telemetry.Sampler
	audit   *audit.Log
	events  *eventlog.Log
	slo     *slo.Engine
	tenants *tenant.Table
	archive *tsdb.Archive
	started time.Time
	// active is the attached runtime (an ActiveHandler), behind an
	// atomic: the telemetry sampler's qos.* probes read it from their
	// own goroutine, and cluster wiring attaches the runtime after the
	// sampler has already started ticking.
	active atomic.Value

	// Zero-copy read path state: ranger is the store's RangeReader side
	// (nil for MemStore), zeroCopy gates the fast path (on by default,
	// off for A/B benchmarking), wireStats is shared with every framing
	// writer of this server and mirrored into reg by stats().
	ranger    RangeReader
	zeroCopy  bool
	wireStats wire.FrameStats

	// QoS enforcement: gate admits reads/writes in weighted-fair order
	// (nil = disabled), cancels tracks in-flight normal reads by ReqID.
	gate    *QoSGate
	cancels cancelRegistry
}

// qosStatser lets the data server fold an attached runtime's queue QoS
// counters into the node's qos.* telemetry without importing core.
type qosStatser interface {
	QoSStats() ioqueue.Stats
}

// NewDataServer builds a data server over cfg.Store.
func NewDataServer(cfg DataConfig) (*DataServer, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("%w: data server needs a store", ErrInvalid)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	ds := &DataServer{
		store: cfg.Store, reg: cfg.Metrics, node: cfg.Node,
		trace: cfg.Trace, tele: cfg.Telemetry, audit: cfg.Audit,
		events: cfg.Events, slo: cfg.SLO, tenants: cfg.Tenants,
		archive: cfg.Archive, started: time.Now(),
	}
	ds.ranger, _ = cfg.Store.(RangeReader)
	ds.zeroCopy = true
	if cfg.QoS != nil {
		ds.gate = NewQoSGate(*cfg.QoS)
		ds.gate.SetTenants(cfg.Tenants)
	}
	if s := cfg.Telemetry; s != nil && ds.gate != nil {
		// Weighted-fair QoS activity, node-wide: the admission gate's
		// queue plus (when a runtime is attached) the active queue.
		// qos.throttled is heads-deferred-for-credit per second — the
		// shaping actually biting; qos.deficit is banked credit in bytes.
		s.Register("qos.throttled", telemetry.RateProbe(func() float64 {
			return float64(ds.qosStats().Throttled)
		}, s.Interval()))
		s.Register("qos.deficit", func() float64 {
			return float64(ds.qosStats().DeficitBytes)
		})
		s.Register("qos.queued", func() float64 {
			st := ds.gate.Stats()
			return float64(st.NormalLen + st.MetaLen + st.ActiveLen)
		})
	}
	if s := cfg.Telemetry; s != nil && ds.ranger != nil {
		// How a disk-backed node's read bytes leave it: kernel-moved
		// (sendfile) vs staged through user space (pooled copies,
		// inline encodes). Memory-backed nodes skip the series — they
		// have no zero-copy path to observe.
		s.Register("zerocopy.sendfile.bps", telemetry.RateProbe(func() float64 {
			return float64(ds.wireStats.SendfileBytes.Load())
		}, s.Interval()))
		s.Register("zerocopy.copied.bps", telemetry.RateProbe(func() float64 {
			return float64(ds.wireStats.CopiedBytes.Load() + ds.reg.Counter("data.bytes_copied").Value())
		}, s.Interval()))
	}
	return ds, nil
}

// qosStats sums the admission gate's queue counters with an attached
// runtime's, so one telemetry series covers the whole node.
func (ds *DataServer) qosStats() ioqueue.Stats {
	st := ds.gate.Stats()
	if qs, ok := ds.activeHandler().(qosStatser); ok {
		rt := qs.QoSStats()
		st.Throttled += rt.Throttled
		st.DeficitBytes += rt.DeficitBytes
	}
	return st
}

// Gate exposes the admission gate (nil when QoS is disabled) — tests
// and the bench harness inspect its stats.
func (ds *DataServer) Gate() *QoSGate { return ds.gate }

// Close releases the admission gate's dispatcher. The server remains
// usable — subsequent requests are admitted immediately (fail open).
func (ds *DataServer) Close() { ds.gate.Close() }

// WireStats exposes the server's frame-transport counters; the RPC
// server shares this struct across every connection's framing writer.
func (ds *DataServer) WireStats() *wire.FrameStats { return &ds.wireStats }

// SetZeroCopy gates the by-reference read path (on by default). With it
// off, bulk reads stage through pooled buffers as before — the bench
// harness uses this for sendbuf-vs-sendfile comparisons. Call before
// the server starts handling requests.
func (ds *DataServer) SetZeroCopy(on bool) { ds.zeroCopy = on }

// SetActiveHandler attaches the active-storage runtime. Must be called
// before the server starts handling requests.
func (ds *DataServer) SetActiveHandler(h ActiveHandler) { ds.active.Store(h) }

// activeHandler returns the attached runtime, or nil when none is.
func (ds *DataServer) activeHandler() ActiveHandler {
	h, _ := ds.active.Load().(ActiveHandler)
	return h
}

// Store exposes the backing store, for the active runtime to read stripes
// locally (the whole point of active storage: no network hop to the data).
func (ds *DataServer) Store() Store { return ds.store }

// Metrics returns the server's metric registry.
func (ds *DataServer) Metrics() *metrics.Registry { return ds.reg }

// Handle implements the Handler interface for wire messages.
func (ds *DataServer) Handle(msg wire.Message) (wire.Message, error) {
	switch req := msg.(type) {
	case *wire.Ping:
		return &wire.Pong{Seq: req.Seq}, nil
	case *wire.ReadReq:
		return ds.read(req)
	case *wire.WriteReq:
		return ds.write(req)
	case *wire.TruncReq:
		return ds.trunc(req)
	case *wire.ActiveReadReq:
		if h := ds.activeHandler(); h != nil {
			return h.HandleActive(req)
		}
		return nil, fmt.Errorf("%w: no active runtime attached", ErrUnsupported)
	case *wire.ProbeReq:
		if h := ds.activeHandler(); h != nil {
			return h.HandleProbe()
		}
		return &wire.ProbeResp{}, nil
	case *wire.CancelReq:
		return ds.cancel(req)
	case *wire.TransformReq:
		if h := ds.activeHandler(); h != nil {
			return h.HandleTransform(req)
		}
		return nil, fmt.Errorf("%w: no active runtime attached", ErrUnsupported)
	case *wire.LocalSizeReq:
		return &wire.LocalSizeResp{Size: ds.store.Size(req.Handle)}, nil
	case *wire.StatsReq:
		return ds.stats()
	case *wire.TraceFetchReq:
		return ds.traceFetch(req)
	case *wire.HealthReq:
		return ds.health()
	case *wire.SeriesFetchReq:
		return serveSeries(ds.node, ds.tele, req)
	case *wire.DecisionLogReq:
		return ds.decisionLog(req)
	case *wire.EventFetchReq:
		return serveEvents(ds.node, ds.events, req)
	case *wire.AlertFetchReq:
		return serveAlerts(ds.node, ds.slo)
	case *wire.TenantStatsReq:
		return ds.tenantStats()
	case *wire.RangeQueryReq:
		return serveRangeQuery(ds.node, ds.archive, req)
	default:
		return nil, fmt.Errorf("%w: data server got %v", ErrUnsupported, msg.Type())
	}
}

// health answers a HealthReq: the store is always checked, and an
// attached active runtime contributes its per-resource checks (queue
// saturation, estimator, memory). A plain data server — no runtime —
// stays Ready: it serves normal I/O fine and clients already degrade
// active requests to bounce.
func (ds *DataServer) health() (wire.Message, error) {
	checks := []telemetry.Check{{Name: "store", OK: true, Detail: "attached"}}
	if hc, ok := ds.activeHandler().(healthChecker); ok {
		checks = append(checks, hc.HealthChecks()...)
	} else {
		checks = append(checks, telemetry.Check{Name: "active", OK: true, Detail: "no runtime attached"})
	}
	// Firing alerts fail readiness: an operator looking at health sees
	// which rule is breaching, not just a red light.
	checks = append(checks, ds.slo.Checks()...)
	if dropped := ds.tele.Dropped(); dropped > 0 {
		checks = append(checks, telemetry.Check{
			Name: "telemetry", OK: true,
			Detail: fmt.Sprintf("%d ring samples overwritten", dropped),
		})
	}
	return encodeHealth(telemetry.HealthReport{Node: ds.node, Role: "data", Checks: checks}, ds.started)
}

// stats answers a StatsReq with the node's full metric snapshot. The
// scheduling mode is discovered from the active handler without importing
// core (which imports pfs): any handler naming its mode qualifies.
func (ds *DataServer) stats() (wire.Message, error) {
	ds.SyncWireStats()
	js, err := json.Marshal(ds.reg.Snapshot())
	if err != nil {
		return nil, fmt.Errorf("%w: encoding stats: %v", ErrInvalid, err)
	}
	mode := ""
	if m, ok := ds.activeHandler().(interface{ ModeName() string }); ok {
		mode = m.ModeName()
	}
	return &wire.StatsResp{Node: ds.node, Role: "data", Mode: mode, Stats: js}, nil
}

// traceFetch answers a TraceFetchReq with the node's retained trace
// events, optionally filtered to one request id or one distributed trace.
func (ds *DataServer) traceFetch(req *wire.TraceFetchReq) (wire.Message, error) {
	var evs []trace.Event
	switch {
	case ds.trace == nil:
		// No recorder attached: answer with an empty set rather than an
		// error, so operators can sweep a mixed cluster.
	case req.TraceID != 0:
		evs = ds.trace.HistoryTrace(req.TraceID)
	case req.ReqID != 0:
		evs = ds.trace.History(req.ReqID)
	default:
		evs = ds.trace.Snapshot()
	}
	js, err := trace.EncodeEvents(evs)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding trace: %v", ErrInvalid, err)
	}
	return &wire.TraceFetchResp{Node: ds.node, Events: js, Dropped: ds.trace.Dropped()}, nil
}

// tenantStats answers a TenantStatsReq with the node's per-tenant usage
// table. A node with no table attached answers with an empty set rather
// than an error, so operators can sweep a mixed cluster.
func (ds *DataServer) tenantStats() (wire.Message, error) {
	js, err := tenant.EncodeUsage(ds.tenants.Snapshot())
	if err != nil {
		return nil, fmt.Errorf("%w: encoding tenant stats: %v", ErrInvalid, err)
	}
	return &wire.TenantStatsResp{Node: ds.node, Evicted: ds.tenants.Evictions(), Usage: js}, nil
}

// decisionLog answers a DecisionLogReq with the node's retained
// scheduling decisions. A node with no audit ring attached (plain data
// server, static modes with recording disabled) answers with an empty
// set rather than an error, so operators can sweep a mixed cluster.
func (ds *DataServer) decisionLog(req *wire.DecisionLogReq) (wire.Message, error) {
	records := ds.audit.Snapshot()
	if req.TraceID != 0 {
		records = audit.FilterTrace(records, req.TraceID)
	}
	if req.Limit > 0 {
		records = audit.Last(records, int(req.Limit))
	}
	js, err := audit.EncodeRecords(records)
	if err != nil {
		return nil, fmt.Errorf("%w: encoding decision log: %v", ErrInvalid, err)
	}
	return &wire.DecisionLogResp{Node: ds.node, Records: js, Dropped: ds.audit.Dropped()}, nil
}

// SyncWireStats mirrors the frame-transport counters into the metrics
// registry (wire.sendfile_bytes, wire.writev_calls, wire.copied_bytes).
// The counters are atomics written on the framing hot path; mirroring
// happens only when a snapshot is taken, keeping the hot path free of
// registry lookups. The wire StatsReq handler calls it automatically;
// in-process snapshot consumers (Cluster.Stats) call it directly.
func (ds *DataServer) SyncWireStats() {
	set := func(name string, v int64) {
		c := ds.reg.Counter(name)
		if d := v - c.Value(); d > 0 {
			c.Add(d)
		}
	}
	set("wire.sendfile_bytes", ds.wireStats.SendfileBytes.Load())
	set("wire.writev_calls", ds.wireStats.WritevCalls.Load())
	set("wire.copied_bytes", ds.wireStats.CopiedBytes.Load())
}

// PostWrite implements the pfs.PostWriter hook: a read or write stays
// counted as in flight until its response has left the server, so the
// "data.inflight" pressure gauge covers the transfer time on slow links.
// It fires once per handled request, error responses included, keeping
// the gauge balanced with the increments in read and write. It is also
// where the read path's pooled buffer is recycled: the response frame is
// a copy of it, so once the frame has been written the buffer is free.
func (ds *DataServer) PostWrite(req, resp wire.Message) {
	switch r := req.(type) {
	case *wire.ReadReq:
		ds.reg.Gauge("data.inflight").Add(-1)
		if r.ReqID != 0 {
			ds.cancels.unregister(r.ReqID)
		}
	case *wire.WriteReq:
		ds.reg.Gauge("data.inflight").Add(-1)
	}
	if rr, ok := resp.(*wire.ReadResp); ok {
		if rr.PoolBuf != nil {
			wire.PutBuf(rr.PoolBuf)
			rr.PoolBuf = nil
		}
		if rr.Payload != nil {
			// Drops the payload's fd-cache references now that the frame
			// is on the wire (or has definitively failed).
			rr.Payload.Close() //nolint:errcheck // release-only
			rr.Payload = nil
		}
	}
}

// zeroCopyMin is the smallest read served by reference: below it the
// fixed cost of building a payload (fd-cache refs, extra writes for the
// frame head and tail) outweighs the saved copy.
const zeroCopyMin = 64 << 10

// cancel answers a CancelReq: normal-read registry first, then the
// active runtime. Hedge-tagged ids (HedgeIDBit) belong exclusively to
// the registry — an unknown one leaves a tombstone so the ReadReq it
// raced stops before serving (mux handlers dispatch concurrently, so
// the cancel can overtake its target).
func (ds *DataServer) cancel(req *wire.CancelReq) (wire.Message, error) {
	if ds.cancels.cancel(req.RequestID) {
		ds.reg.Counter("data.cancel").Inc()
		return &wire.CancelResp{Found: true}, nil
	}
	h := ds.activeHandler()
	if req.RequestID&HedgeIDBit != 0 || h == nil {
		return &wire.CancelResp{}, nil
	}
	return h.HandleCancel(req)
}

func (ds *DataServer) read(req *wire.ReadReq) (wire.Message, error) {
	ds.reg.Counter("data.read").Inc()
	ds.reg.Gauge("data.inflight").Add(1) // released by PostWrite
	var served uint64                    // bytes attributed to the caller's tenant
	defer func() {
		ds.tenants.Account(req.Tenant, func(s *tenant.Stats) { s.ReadOps++; s.BytesRead += served })
	}()
	// Cancellable read: register before the gate so a CancelReq can
	// withdraw the ticket while it queues. PostWrite unregisters.
	var cs *cancelState
	if req.ReqID != 0 {
		cs = ds.cancels.register(req.ReqID)
	}
	if ds.gate != nil {
		tk := ds.gate.Enqueue(ioqueue.Normal, req.Tenant, uint64(req.Length))
		if cs != nil {
			ds.cancels.attach(cs, tk, ds.gate)
		}
		if !tk.Wait() {
			ds.reg.Counter("data.read_cancelled").Inc()
			return nil, fmt.Errorf("read %d: %w", req.ReqID, ErrCancelled)
		}
		defer tk.Release()
	}
	if cs != nil && cs.flag.Load() {
		// Cancelled between admission and service: answer small.
		ds.reg.Counter("data.read_cancelled").Inc()
		return nil, fmt.Errorf("read %d: %w", req.ReqID, ErrCancelled)
	}
	if req.Length > wire.MaxFrameSize-64 {
		return nil, fmt.Errorf("%w: read of %d bytes exceeds frame budget", ErrInvalid, req.Length)
	}
	size := ds.store.Size(req.Handle)
	if ds.zeroCopy && ds.ranger != nil && req.Length >= zeroCopyMin && req.Offset < size {
		n := min(uint64(req.Length), size-req.Offset)
		p, err := ds.ranger.ReadRange(req.Handle, req.Offset, n)
		if err == nil {
			ds.reg.Counter("data.bytes_read").Add(int64(n))
			served = n
			// Closed in PostWrite once the frame has left the server.
			resp := &wire.ReadResp{Payload: p, EOF: req.Offset+n >= size}
			if cs != nil {
				resp.Cancelled = &cs.flag
			}
			return resp, nil
		}
		// Any failure (a Truncate/Remove race, fd exhaustion) falls back
		// to the copy path, which re-reads whatever is there now.
	}
	buf := wire.GetBuf(int(req.Length)) // returned to the pool in PostWrite
	n, err := ds.store.ReadAt(req.Handle, buf, req.Offset)
	if err != nil {
		wire.PutBuf(buf) // error response carries no data; recycle now
		return nil, err
	}
	ds.reg.Counter("data.bytes_read").Add(int64(n))
	served = uint64(n)
	// The store just staged n bytes into a user-space buffer; the wire
	// layer counts any further copies (wire.copied_bytes).
	ds.reg.Counter("data.bytes_copied").Add(int64(n))
	eof := req.Offset+uint64(n) >= size
	resp := &wire.ReadResp{Data: buf[:n], EOF: eof, PoolBuf: buf}
	if cs != nil {
		resp.Cancelled = &cs.flag
	}
	return resp, nil
}

func (ds *DataServer) write(req *wire.WriteReq) (wire.Message, error) {
	ds.reg.Counter("data.write").Inc()
	ds.reg.Gauge("data.inflight").Add(1) // released by PostWrite
	if ds.gate != nil {
		tk := ds.gate.Enqueue(ioqueue.Normal, req.Tenant, uint64(len(req.Data)))
		tk.Wait() // writes are not cancellable; Wait always grants
		defer tk.Release()
	}
	n, err := ds.store.WriteAt(req.Handle, req.Data, req.Offset)
	if err != nil {
		ds.tenants.Account(req.Tenant, func(s *tenant.Stats) { s.WriteOps++ })
		return nil, err
	}
	ds.reg.Counter("data.bytes_written").Add(int64(n))
	ds.tenants.Account(req.Tenant, func(s *tenant.Stats) { s.WriteOps++; s.BytesWritten += uint64(n) })
	return &wire.WriteResp{N: uint32(n)}, nil
}

func (ds *DataServer) trunc(req *wire.TruncReq) (wire.Message, error) {
	ds.reg.Counter("data.trunc").Inc()
	ds.tenants.Account(req.Tenant, func(s *tenant.Stats) { s.TruncOps++ })
	if req.Remove {
		if err := ds.store.Remove(req.Handle); err != nil {
			return nil, err
		}
		return &wire.TruncResp{}, nil
	}
	if err := ds.store.Truncate(req.Handle, req.Size); err != nil {
		return nil, err
	}
	return &wire.TruncResp{}, nil
}
