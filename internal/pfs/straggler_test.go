package pfs

import (
	"math"
	"testing"
	"time"
)

func TestSizeClassBuckets(t *testing.T) {
	if sizeClass(1) != sizeClass(4095) {
		t.Error("sub-4KiB probes must share a class")
	}
	if sizeClass(4096) != sizeClass(5000) {
		t.Error("same power-of-two bucket split")
	}
	if sizeClass(4<<10) == sizeClass(4<<20) {
		t.Error("a 4 KiB probe and a 4 MiB chunk must not share an estimate")
	}
	if sizeClass(0) != 0 || sizeClass(-1) != 0 {
		t.Error("degenerate sizes must map to class 0")
	}
}

func TestLatencyScoreDecays(t *testing.T) {
	lt := NewLatencyTracker()
	now := time.Unix(1000, 0)
	lt.now = func() time.Time { return now }

	const sz = 64 << 10
	lt.Observe("slow", sz, 10*time.Millisecond)
	fresh := lt.Score("slow", sz)
	if fresh != float64(10*time.Millisecond) {
		t.Fatalf("fresh score = %v, want 10ms in ns", fresh)
	}
	// Unknown servers are optimistic: they win traffic until measured.
	if s := lt.Score("unknown", sz); s != 0 {
		t.Errorf("unknown score = %v, want 0", s)
	}
	// Size classes are independent estimates.
	if s := lt.Score("slow", 4<<20); s != 0 {
		t.Errorf("other-class score = %v, want 0", s)
	}

	// One halflife later the estimate has halved; idle nodes earn their
	// way back instead of being exiled by history.
	now = now.Add(latHalflife)
	if s := lt.Score("slow", sz); math.Abs(s-fresh/2) > fresh/1000 {
		t.Errorf("score after one halflife = %v, want ~%v", s, fresh/2)
	}
	now = now.Add(3 * latHalflife)
	if s := lt.Score("slow", sz); s >= fresh/8 {
		t.Errorf("score after four halflives = %v, want < %v", s, fresh/8)
	}
}

func TestLatencyEWMAConverges(t *testing.T) {
	lt := NewLatencyTracker()
	lt.now = func() time.Time { return time.Unix(1000, 0) } // frozen: no decay
	const sz = 64 << 10
	for i := 0; i < 16; i++ {
		lt.Observe("n", sz, 10*time.Millisecond)
	}
	if s := lt.Score("n", sz); s != float64(10*time.Millisecond) {
		t.Errorf("steady-state score = %v, want exactly 10ms", s)
	}
	// A regime change pulls the mean toward the new level.
	for i := 0; i < 16; i++ {
		lt.Observe("n", sz, 40*time.Millisecond)
	}
	s := lt.Score("n", sz)
	if s < float64(35*time.Millisecond) || s > float64(40*time.Millisecond) {
		t.Errorf("post-shift score = %v, want near 40ms", s)
	}
}

func TestHedgeDelayQuantile(t *testing.T) {
	frozen := func() time.Time { return time.Unix(1000, 0) }
	lt := NewLatencyTracker()
	lt.now = frozen
	const sz = 64 << 10
	fallback := 25 * time.Millisecond

	// Below the sample floor the configured fallback rules.
	for i := 0; i < latMinSamples-1; i++ {
		lt.Observe("n", sz, 10*time.Millisecond)
	}
	if d := lt.HedgeDelay("n", sz, fallback); d != fallback {
		t.Fatalf("under-sampled delay = %v, want fallback %v", d, fallback)
	}
	// A tight distribution floors at 2× the mean: jitter alone must not
	// trigger duplicate reads.
	lt.Observe("n", sz, 10*time.Millisecond)
	if d := lt.HedgeDelay("n", sz, fallback); d != 20*time.Millisecond {
		t.Errorf("tight-distribution delay = %v, want 2×mean = 20ms", d)
	}
	// A nil tracker (no measurements anywhere) always falls back.
	var nilLT *LatencyTracker
	if d := nilLT.HedgeDelay("n", sz, fallback); d != fallback {
		t.Errorf("nil tracker delay = %v, want fallback", d)
	}

	// High variance pushes the trigger above the floor: hedge only past
	// the estimated p95.
	spread := NewLatencyTracker()
	spread.now = frozen
	for i := 0; i < 8; i++ {
		d := 5 * time.Millisecond
		if i%2 == 1 {
			d = 45 * time.Millisecond
		}
		spread.Observe("j", sz, d)
	}
	mean := time.Duration(spread.Score("j", sz))
	if d := spread.HedgeDelay("j", sz, fallback); d <= 2*mean {
		t.Errorf("jittery delay = %v, want above the 2×mean floor (mean %v)", d, mean)
	}
}
