package pfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dosas/internal/transport"
	"dosas/internal/wire"
)

// testCluster is an in-process PFS: one metadata server and n data servers.
type testCluster struct {
	client  *Client
	meta    *MetaServer
	datas   []*DataServer
	servers []*Server // data servers' RPC servers, for failure injection
}

func startCluster(t *testing.T, nData int) *testCluster {
	t.Helper()
	net := transport.NewInproc()
	meta, err := NewMetaServer(MetaConfig{NumDataServers: nData})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := net.Listen("meta")
	if err != nil {
		t.Fatal(err)
	}
	ms := NewServer(ml, meta)
	ms.Start()
	t.Cleanup(ms.Close)

	var dataAddrs []string
	var datas []*DataServer
	var servers []*Server
	for i := 0; i < nData; i++ {
		ds, err := NewDataServer(DataConfig{Store: NewMemStore()})
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("data-%d", i)
		dl, err := net.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(dl, ds)
		srv.Start()
		t.Cleanup(srv.Close)
		dataAddrs = append(dataAddrs, addr)
		datas = append(datas, ds)
		servers = append(servers, srv)
	}

	c, err := NewClient(ClientConfig{Net: net, MetaAddr: "meta", DataAddrs: dataAddrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return &testCluster{client: c, meta: meta, datas: datas, servers: servers}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	tc := startCluster(t, 4)
	f, err := tc.client.Create("exp/data.bin", 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 100_000)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if f.Size() != uint64(len(data)) {
		t.Fatalf("size = %d, want %d", f.Size(), len(data))
	}

	// Fresh open must see the same bytes.
	g, err := tc.client.Open("exp/data.bin")
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped round trip corrupted data")
	}

	// Unaligned interior read.
	buf := make([]byte, 12345)
	n, err := g.ReadAt(buf, 7777)
	if err != nil || n != len(buf) {
		t.Fatalf("interior read = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data[7777:7777+12345]) {
		t.Fatal("interior read corrupted")
	}

	// Short read at EOF.
	n, err = g.ReadAt(buf, uint64(len(data))-100)
	if err != nil || n != 100 {
		t.Fatalf("eof read = %d, %v; want 100", n, err)
	}
}

func TestDataSpreadsAcrossServers(t *testing.T) {
	tc := startCluster(t, 4)
	f, err := tc.client.Create("spread", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64*4096)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	for i, ds := range tc.datas {
		if got := ds.Store().Size(f.Handle()); got != 16*4096 {
			t.Errorf("server %d holds %d bytes, want %d", i, got, 16*4096)
		}
	}
}

func TestStatRemoveList(t *testing.T) {
	tc := startCluster(t, 2)
	for _, name := range []string{"a/1", "a/2", "b/1"} {
		f, err := tc.client.Create(name, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte(name), 0); err != nil {
			t.Fatal(err)
		}
	}
	names, err := tc.client.List("a/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a/1" || names[1] != "a/2" {
		t.Fatalf("List = %v", names)
	}
	st, err := tc.client.Stat("b/1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != 3 {
		t.Errorf("stat size = %d", st.Size)
	}
	if err := tc.client.Remove("b/1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Open("b/1"); !IsNotFound(err) {
		t.Errorf("open after remove: %v", err)
	}
	// The removed file's stripes must be gone from every data server.
	for i, ds := range tc.datas {
		if got := ds.Store().Size(st.Handle); got != 0 {
			t.Errorf("server %d still holds %d bytes after remove", i, got)
		}
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	tc := startCluster(t, 2)
	if _, err := tc.client.Create("dup", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.client.Create("dup", 0, 0); !IsExists(err) {
		t.Fatalf("duplicate create err = %v", err)
	}
}

func TestOpenMissingFails(t *testing.T) {
	tc := startCluster(t, 2)
	if _, err := tc.client.Open("ghost"); !IsNotFound(err) {
		t.Fatalf("err = %v, want not-found", err)
	}
}

func TestConcurrentClientsWrite(t *testing.T) {
	tc := startCluster(t, 4)
	const writers = 8
	const chunk = 32 << 10
	f, err := tc.client.Create("concurrent", 8192, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(w + 1)}, chunk)
			if _, err := f.WriteAt(data, uint64(w*chunk)); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*chunk {
		t.Fatalf("len = %d", len(got))
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < chunk; i += 997 {
			if got[w*chunk+i] != byte(w+1) {
				t.Fatalf("byte at writer %d offset %d = %d", w, i, got[w*chunk+i])
			}
		}
	}
}

func TestActiveReadWithoutRuntimeIsUnsupported(t *testing.T) {
	tc := startCluster(t, 1)
	f, err := tc.client.Create("noactive", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	addr, _ := tc.client.DataAddr(f.Layout().Servers[0])
	_, err = tc.client.Pool().Call(addr, &wire.ActiveReadReq{
		Handle: f.Handle(), Length: 4, Op: "sum8",
	})
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != wire.StatusUnsupported {
		t.Fatalf("err = %v, want unsupported", err)
	}
}

func TestPoolReusesConnections(t *testing.T) {
	tc := startCluster(t, 1)
	for i := 0; i < 50; i++ {
		if _, err := tc.client.Pool().Call("meta", &wire.Ping{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPoolSurvivesServerRestart(t *testing.T) {
	net := transport.NewInproc()
	meta, err := NewMetaServer(MetaConfig{NumDataServers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ml, _ := net.Listen("meta-restart")
	srv := NewServer(ml, meta)
	srv.Start()

	pool := NewPool(net)
	defer pool.Close()
	if _, err := pool.Call("meta-restart", &wire.Ping{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	// Restart the server: the pool now holds a stale idle connection.
	srv.Close()
	ml2, err := net.Listen("meta-restart")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(ml2, meta)
	srv2.Start()
	defer srv2.Close()

	// The next call must transparently retry on a fresh dial.
	if _, err := pool.Call("meta-restart", &wire.Ping{Seq: 2}); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
}

func TestPoolFreshDialFailureSurfaces(t *testing.T) {
	pool := NewPool(transport.NewInproc())
	defer pool.Close()
	if _, err := pool.Call("nobody-home", &wire.Ping{Seq: 1}); err == nil {
		t.Fatal("call to unbound address succeeded")
	}
}

func TestConcurrentCreatesGetUniqueHandles(t *testing.T) {
	tc := startCluster(t, 2)
	const n = 32
	handles := make(chan uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := tc.client.Create(fmt.Sprintf("uniq/%d", i), 0, 0)
			if err != nil {
				t.Error(err)
				return
			}
			handles <- f.Handle()
		}(i)
	}
	wg.Wait()
	close(handles)
	seen := make(map[uint64]bool)
	for h := range handles {
		if seen[h] {
			t.Fatalf("handle %d issued twice", h)
		}
		seen[h] = true
	}
	if len(seen) != n {
		t.Fatalf("created %d files, got %d handles", n, len(seen))
	}
	// Layout rotation must spread files over both servers.
	files := tc.meta.Files()
	starts := map[uint32]int{}
	for _, f := range files {
		starts[f.Layout.Servers[0]]++
	}
	if len(starts) < 2 {
		t.Errorf("all %d files start on one server: %v", len(files), starts)
	}
}
