package pfs

import (
	"fmt"
	"sync"

	"dosas/internal/transport"
	"dosas/internal/wire"
)

// DefaultTransferChunk bounds a single Read/Write RPC so bulk transfers stay well
// under the wire frame limit and interleave fairly on shared links.
const DefaultTransferChunk = 4 << 20

// ClientConfig tells a client where the cluster lives.
type ClientConfig struct {
	// Net is the transport to dial through.
	Net transport.Network
	// MetaAddr is the metadata server's address.
	MetaAddr string
	// DataAddrs maps data-server indices (as used in layouts) to
	// addresses. Order matters and must match the cluster configuration.
	DataAddrs []string
	// WindowDepth is how many chunk requests bulk transfers keep in
	// flight per server connection. 0 takes DefaultWindowDepth; 1 is the
	// serial request/response loop.
	WindowDepth int
	// TransferChunk bounds a single Read/Write RPC in bytes. 0 takes the
	// 4 MiB default; values are clamped under the wire frame limit.
	TransferChunk int
	// DisableMux pins the pool to the ordered one-exchange-per-connection
	// mode instead of negotiating multiplexed connections (debugging and
	// A/B benchmarks).
	DisableMux bool
	// Tenant identifies this client's workload on every data-path request
	// (reads, writes, trunc/remove), so storage nodes attribute bytes and
	// ops to it. Empty means the default tenant and keeps the wire format
	// byte-identical to pre-tenant clients.
	Tenant string
}

// Client is the file system client: it resolves names at the metadata
// server and moves stripe data directly to/from the data servers.
type Client struct {
	cfg  ClientConfig
	pool *Pool
}

// NewClient builds a client for the given cluster.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("%w: client needs a transport", ErrInvalid)
	}
	if cfg.MetaAddr == "" {
		return nil, fmt.Errorf("%w: client needs a metadata address", ErrInvalid)
	}
	if len(cfg.DataAddrs) == 0 {
		return nil, fmt.Errorf("%w: client needs data server addresses", ErrInvalid)
	}
	pool := NewPool(cfg.Net)
	if cfg.DisableMux {
		pool.DisableMux()
	}
	pool.SetTenant(cfg.Tenant)
	return &Client{cfg: cfg, pool: pool}, nil
}

// Close releases pooled connections.
func (c *Client) Close() { c.pool.Close() }

// Pool exposes the client's connection pool so higher layers (the active
// storage client) can issue their own RPCs over it.
func (c *Client) Pool() *Pool { return c.pool }

// MetaAddr returns the metadata server's address, for direct calls
// through Pool (health sweeps, series fetches).
func (c *Client) MetaAddr() string { return c.cfg.MetaAddr }

// DataAddr returns the address of data server idx.
func (c *Client) DataAddr(idx uint32) (string, error) {
	if int(idx) >= len(c.cfg.DataAddrs) {
		return "", fmt.Errorf("%w: data server index %d out of range", ErrInvalid, idx)
	}
	return c.cfg.DataAddrs[idx], nil
}

// NumDataServers returns the size of the configured data-server table.
func (c *Client) NumDataServers() int { return len(c.cfg.DataAddrs) }

// Create makes a new file. stripeSize and width of 0 take cluster defaults.
func (c *Client) Create(name string, stripeSize uint32, width int) (*File, error) {
	return c.create(&wire.CreateReq{Name: name, StripeSize: stripeSize, Width: uint32(width)})
}

// CreateReplicated makes a new file keeping `replicas` copies of every
// stripe on distinct servers (chained placement). Reads and active reads
// fail over to surviving replicas transparently; writes go to all copies.
func (c *Client) CreateReplicated(name string, stripeSize uint32, width, replicas int) (*File, error) {
	return c.create(&wire.CreateReq{
		Name: name, StripeSize: stripeSize, Width: uint32(width), Replicas: uint8(replicas),
	})
}

// CreatePlaced makes a new file striped over exactly the given data
// servers, in order — used to co-locate derived files with their source.
func (c *Client) CreatePlaced(name string, stripeSize uint32, servers []uint32) (*File, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("%w: empty placement", ErrInvalid)
	}
	return c.create(&wire.CreateReq{
		Name: name, StripeSize: stripeSize, Placement: append([]uint32(nil), servers...),
	})
}

func (c *Client) create(req *wire.CreateReq) (*File, error) {
	resp, err := c.pool.Call(c.cfg.MetaAddr, req)
	if err != nil {
		return nil, err
	}
	cr, ok := resp.(*wire.CreateResp)
	if !ok {
		return nil, fmt.Errorf("pfs: create: unexpected response %v", resp.Type())
	}
	return &File{c: c, name: req.Name, handle: cr.Handle, layout: cr.Layout}, nil
}

// SetSize records size at the metadata server (max semantics) and updates
// the local view. Used by layers that write server-local streams directly
// (active transforms) rather than through WriteAt.
func (f *File) SetSize(size uint64) error {
	resp, err := f.c.pool.Call(f.c.cfg.MetaAddr, &wire.SetSizeReq{Handle: f.handle, Size: size})
	if err != nil {
		return err
	}
	sr, ok := resp.(*wire.SetSizeResp)
	if !ok {
		return fmt.Errorf("pfs: setsize: unexpected response %v", resp.Type())
	}
	f.mu.Lock()
	if sr.Size > f.size {
		f.size = sr.Size
	}
	f.mu.Unlock()
	return nil
}

// Open looks an existing file up by name.
func (c *Client) Open(name string) (*File, error) {
	resp, err := c.pool.Call(c.cfg.MetaAddr, &wire.OpenReq{Name: name})
	if err != nil {
		return nil, err
	}
	or, ok := resp.(*wire.OpenResp)
	if !ok {
		return nil, fmt.Errorf("pfs: open: unexpected response %v", resp.Type())
	}
	return &File{c: c, name: name, handle: or.Handle, size: or.Size, layout: or.Layout}, nil
}

// Stat returns the metadata record for name.
func (c *Client) Stat(name string) (*wire.StatResp, error) {
	resp, err := c.pool.Call(c.cfg.MetaAddr, &wire.StatReq{Name: name})
	if err != nil {
		return nil, err
	}
	sr, ok := resp.(*wire.StatResp)
	if !ok {
		return nil, fmt.Errorf("pfs: stat: unexpected response %v", resp.Type())
	}
	return sr, nil
}

// Remove deletes a file: the name at the metadata server and the stripes
// at every data server in its layout.
func (c *Client) Remove(name string) error {
	st, err := c.Stat(name)
	if err != nil {
		return err
	}
	resp, err := c.pool.Call(c.cfg.MetaAddr, &wire.RemoveReq{Name: name})
	if err != nil {
		return err
	}
	if _, ok := resp.(*wire.RemoveResp); !ok {
		return fmt.Errorf("pfs: remove: unexpected response %v", resp.Type())
	}
	// Best-effort stripe cleanup (all replicas); the namespace entry is
	// already gone. Removing an absent stream is a no-op, so every
	// (server, replica) pair is simply swept.
	var wg sync.WaitGroup
	for _, idx := range st.Layout.Servers {
		addr, aerr := c.DataAddr(idx)
		if aerr != nil {
			continue
		}
		for r := 0; r < st.Layout.ReplicaCount(); r++ {
			wg.Add(1)
			go func(addr string, handle uint64) {
				defer wg.Done()
				c.pool.Call(addr, &wire.TruncReq{Handle: handle, Remove: true, Tenant: c.cfg.Tenant}) //nolint:errcheck
			}(addr, ReplicaHandle(st.Handle, r))
		}
	}
	wg.Wait()
	return nil
}

// List returns names with the given prefix in lexical order.
func (c *Client) List(prefix string) ([]string, error) {
	resp, err := c.pool.Call(c.cfg.MetaAddr, &wire.ListReq{Prefix: prefix})
	if err != nil {
		return nil, err
	}
	lr, ok := resp.(*wire.ListResp)
	if !ok {
		return nil, fmt.Errorf("pfs: list: unexpected response %v", resp.Type())
	}
	return lr.Names, nil
}

// File is an open striped file.
type File struct {
	c      *Client
	name   string
	handle uint64
	layout wire.Layout

	mu   sync.Mutex
	size uint64
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Handle returns the file's cluster-wide handle.
func (f *File) Handle() uint64 { return f.handle }

// Layout returns the file's stripe layout.
func (f *File) Layout() wire.Layout { return f.layout }

// Size returns the file size as known to this client (updated by writes
// through this File and by Open).
func (f *File) Size() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// ReadAt fills p from the file at off, fanning segments out to their data
// servers in parallel. It returns the number of bytes read; reading past
// the end returns a short count.
func (f *File) ReadAt(p []byte, off uint64) (int, error) {
	size := f.Size()
	if off >= size {
		return 0, nil
	}
	if max := size - off; uint64(len(p)) > max {
		p = p[:max]
	}
	segs := Segments(f.layout, off, uint64(len(p)))
	errs := make(chan error, len(segs))
	for _, seg := range segs {
		go func(seg Segment) {
			errs <- f.readSegment(p[seg.FileOffset-off:seg.FileOffset-off+seg.Length], seg)
		}(seg)
	}
	var first error
	for range segs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return 0, first
	}
	return len(p), nil
}

// readSegment pulls one server-local range, chunked under the frame
// limit, failing over to surviving replicas when a server is unreachable.
func (f *File) readSegment(dst []byte, seg Segment) error {
	var lastErr error
	for r := 0; r < f.layout.ReplicaCount(); r++ {
		if err := f.readSegmentReplica(dst, seg, r); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

// readSegmentReplica reads the segment from replica r through the
// sliding-window path, keeping WindowDepth chunks in flight. Chained
// placement guarantees the replica's local offsets equal the primary's.
func (f *File) readSegmentReplica(dst []byte, seg Segment, r int) error {
	addr, err := f.c.DataAddr(ReplicaServer(f.layout, seg.Slot, r))
	if err != nil {
		return err
	}
	handle := ReplicaHandle(f.handle, r)
	_, err = f.c.pool.ReadWindowed(addr, handle, dst, seg.LocalOffset,
		f.c.cfg.WindowDepth, f.c.cfg.TransferChunk)
	if err != nil {
		return fmt.Errorf("pfs: read replica %d: %w", r, err)
	}
	return nil
}

// WriteAt stores p at off, fanning segments out in parallel, then records
// any size extension at the metadata server.
func (f *File) WriteAt(p []byte, off uint64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	segs := Segments(f.layout, off, uint64(len(p)))
	errs := make(chan error, len(segs))
	for _, seg := range segs {
		go func(seg Segment) {
			errs <- f.writeSegment(p[seg.FileOffset-off:seg.FileOffset-off+seg.Length], seg)
		}(seg)
	}
	var first error
	for range segs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return 0, first
	}
	end := off + uint64(len(p))
	f.mu.Lock()
	grew := end > f.size
	if grew {
		f.size = end
	}
	f.mu.Unlock()
	if grew {
		resp, err := f.c.pool.Call(f.c.cfg.MetaAddr, &wire.SetSizeReq{Handle: f.handle, Size: end})
		if err != nil {
			return len(p), err
		}
		if sr, ok := resp.(*wire.SetSizeResp); ok {
			f.mu.Lock()
			if sr.Size > f.size {
				f.size = sr.Size
			}
			f.mu.Unlock()
		}
	}
	return len(p), nil
}

// writeSegment stores one segment on every replica. Writes require all
// replicas reachable; degraded writes would silently diverge the copies.
func (f *File) writeSegment(src []byte, seg Segment) error {
	reps := f.layout.ReplicaCount()
	errs := make(chan error, reps)
	for r := 0; r < reps; r++ {
		go func(r int) {
			errs <- f.writeSegmentReplica(src, seg, r)
		}(r)
	}
	var first error
	for r := 0; r < reps; r++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// writeSegmentReplica stores one segment on replica r through the
// sliding-window path.
func (f *File) writeSegmentReplica(src []byte, seg Segment, r int) error {
	addr, err := f.c.DataAddr(ReplicaServer(f.layout, seg.Slot, r))
	if err != nil {
		return err
	}
	handle := ReplicaHandle(f.handle, r)
	_, err = f.c.pool.WriteWindowed(addr, handle, src, seg.LocalOffset,
		f.c.cfg.WindowDepth, f.c.cfg.TransferChunk)
	if err != nil {
		return fmt.Errorf("pfs: write replica %d: %w", r, err)
	}
	return nil
}

// ReadAll reads the whole file.
func (f *File) ReadAll() ([]byte, error) {
	buf := make([]byte, f.Size())
	n, err := f.ReadAt(buf, 0)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}
