package pfs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dosas/internal/transport"
	"dosas/internal/wire"
)

// DefaultTransferChunk bounds a single Read/Write RPC so bulk transfers stay well
// under the wire frame limit and interleave fairly on shared links.
const DefaultTransferChunk = 4 << 20

// ClientConfig tells a client where the cluster lives.
type ClientConfig struct {
	// Net is the transport to dial through.
	Net transport.Network
	// MetaAddr is the metadata server's address.
	MetaAddr string
	// DataAddrs maps data-server indices (as used in layouts) to
	// addresses. Order matters and must match the cluster configuration.
	DataAddrs []string
	// WindowDepth is how many chunk requests bulk transfers keep in
	// flight per server connection. 0 takes DefaultWindowDepth; 1 is the
	// serial request/response loop.
	WindowDepth int
	// TransferChunk bounds a single Read/Write RPC in bytes. 0 takes the
	// 4 MiB default; values are clamped under the wire frame limit.
	TransferChunk int
	// DisableMux pins the pool to the ordered one-exchange-per-connection
	// mode instead of negotiating multiplexed connections (debugging and
	// A/B benchmarks).
	DisableMux bool
	// Tenant identifies this client's workload on every data-path request
	// (reads, writes, trunc/remove), so storage nodes attribute bytes and
	// ops to it. Empty means the default tenant and keeps the wire format
	// byte-identical to pre-tenant clients.
	Tenant string
	// HedgeAfter enables hedged reads on replicated files: when the
	// fastest replica has not finished a segment within the delay, the
	// read is duplicated to the next-best replica and the loser is
	// cancelled. The configured value is the fallback trigger, used until
	// the per-server latency tracker has enough samples to derive a
	// quantile-based one (≈p95 of observed chunk latency). Zero disables
	// hedging.
	HedgeAfter time.Duration
}

// Client is the file system client: it resolves names at the metadata
// server and moves stripe data directly to/from the data servers.
type Client struct {
	cfg  ClientConfig
	pool *Pool
}

// NewClient builds a client for the given cluster.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("%w: client needs a transport", ErrInvalid)
	}
	if cfg.MetaAddr == "" {
		return nil, fmt.Errorf("%w: client needs a metadata address", ErrInvalid)
	}
	if len(cfg.DataAddrs) == 0 {
		return nil, fmt.Errorf("%w: client needs data server addresses", ErrInvalid)
	}
	pool := NewPool(cfg.Net)
	if cfg.DisableMux {
		pool.DisableMux()
	}
	pool.SetTenant(cfg.Tenant)
	return &Client{cfg: cfg, pool: pool}, nil
}

// Close releases pooled connections.
func (c *Client) Close() { c.pool.Close() }

// Pool exposes the client's connection pool so higher layers (the active
// storage client) can issue their own RPCs over it.
func (c *Client) Pool() *Pool { return c.pool }

// MetaAddr returns the metadata server's address, for direct calls
// through Pool (health sweeps, series fetches).
func (c *Client) MetaAddr() string { return c.cfg.MetaAddr }

// DataAddr returns the address of data server idx.
func (c *Client) DataAddr(idx uint32) (string, error) {
	if int(idx) >= len(c.cfg.DataAddrs) {
		return "", fmt.Errorf("%w: data server index %d out of range", ErrInvalid, idx)
	}
	return c.cfg.DataAddrs[idx], nil
}

// NumDataServers returns the size of the configured data-server table.
func (c *Client) NumDataServers() int { return len(c.cfg.DataAddrs) }

// Create makes a new file. stripeSize and width of 0 take cluster defaults.
func (c *Client) Create(name string, stripeSize uint32, width int) (*File, error) {
	return c.create(&wire.CreateReq{Name: name, StripeSize: stripeSize, Width: uint32(width)})
}

// CreateReplicated makes a new file keeping `replicas` copies of every
// stripe on distinct servers (chained placement). Reads and active reads
// fail over to surviving replicas transparently; writes go to all copies.
func (c *Client) CreateReplicated(name string, stripeSize uint32, width, replicas int) (*File, error) {
	return c.create(&wire.CreateReq{
		Name: name, StripeSize: stripeSize, Width: uint32(width), Replicas: uint8(replicas),
	})
}

// CreatePlaced makes a new file striped over exactly the given data
// servers, in order — used to co-locate derived files with their source.
func (c *Client) CreatePlaced(name string, stripeSize uint32, servers []uint32) (*File, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("%w: empty placement", ErrInvalid)
	}
	return c.create(&wire.CreateReq{
		Name: name, StripeSize: stripeSize, Placement: append([]uint32(nil), servers...),
	})
}

func (c *Client) create(req *wire.CreateReq) (*File, error) {
	resp, err := c.pool.Call(c.cfg.MetaAddr, req)
	if err != nil {
		return nil, err
	}
	cr, ok := resp.(*wire.CreateResp)
	if !ok {
		return nil, fmt.Errorf("pfs: create: unexpected response %v", resp.Type())
	}
	return &File{c: c, name: req.Name, handle: cr.Handle, layout: cr.Layout}, nil
}

// SetSize records size at the metadata server (max semantics) and updates
// the local view. Used by layers that write server-local streams directly
// (active transforms) rather than through WriteAt.
func (f *File) SetSize(size uint64) error {
	resp, err := f.c.pool.Call(f.c.cfg.MetaAddr, &wire.SetSizeReq{Handle: f.handle, Size: size})
	if err != nil {
		return err
	}
	sr, ok := resp.(*wire.SetSizeResp)
	if !ok {
		return fmt.Errorf("pfs: setsize: unexpected response %v", resp.Type())
	}
	f.mu.Lock()
	if sr.Size > f.size {
		f.size = sr.Size
	}
	f.mu.Unlock()
	return nil
}

// Open looks an existing file up by name.
func (c *Client) Open(name string) (*File, error) {
	resp, err := c.pool.Call(c.cfg.MetaAddr, &wire.OpenReq{Name: name, Tenant: c.cfg.Tenant})
	if err != nil {
		return nil, err
	}
	or, ok := resp.(*wire.OpenResp)
	if !ok {
		return nil, fmt.Errorf("pfs: open: unexpected response %v", resp.Type())
	}
	return &File{c: c, name: name, handle: or.Handle, size: or.Size, layout: or.Layout}, nil
}

// Stat returns the metadata record for name.
func (c *Client) Stat(name string) (*wire.StatResp, error) {
	resp, err := c.pool.Call(c.cfg.MetaAddr, &wire.StatReq{Name: name, Tenant: c.cfg.Tenant})
	if err != nil {
		return nil, err
	}
	sr, ok := resp.(*wire.StatResp)
	if !ok {
		return nil, fmt.Errorf("pfs: stat: unexpected response %v", resp.Type())
	}
	return sr, nil
}

// Remove deletes a file: the name at the metadata server and the stripes
// at every data server in its layout.
func (c *Client) Remove(name string) error {
	st, err := c.Stat(name)
	if err != nil {
		return err
	}
	resp, err := c.pool.Call(c.cfg.MetaAddr, &wire.RemoveReq{Name: name})
	if err != nil {
		return err
	}
	if _, ok := resp.(*wire.RemoveResp); !ok {
		return fmt.Errorf("pfs: remove: unexpected response %v", resp.Type())
	}
	// Best-effort stripe cleanup (all replicas); the namespace entry is
	// already gone. Removing an absent stream is a no-op, so every
	// (server, replica) pair is simply swept.
	var wg sync.WaitGroup
	for _, idx := range st.Layout.Servers {
		addr, aerr := c.DataAddr(idx)
		if aerr != nil {
			continue
		}
		for r := 0; r < st.Layout.ReplicaCount(); r++ {
			wg.Add(1)
			go func(addr string, handle uint64) {
				defer wg.Done()
				c.pool.Call(addr, &wire.TruncReq{Handle: handle, Remove: true, Tenant: c.cfg.Tenant}) //nolint:errcheck
			}(addr, ReplicaHandle(st.Handle, r))
		}
	}
	wg.Wait()
	return nil
}

// List returns names with the given prefix in lexical order.
func (c *Client) List(prefix string) ([]string, error) {
	resp, err := c.pool.Call(c.cfg.MetaAddr, &wire.ListReq{Prefix: prefix, Tenant: c.cfg.Tenant})
	if err != nil {
		return nil, err
	}
	lr, ok := resp.(*wire.ListResp)
	if !ok {
		return nil, fmt.Errorf("pfs: list: unexpected response %v", resp.Type())
	}
	return lr.Names, nil
}

// File is an open striped file.
type File struct {
	c      *Client
	name   string
	handle uint64
	layout wire.Layout

	mu   sync.Mutex
	size uint64
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Handle returns the file's cluster-wide handle.
func (f *File) Handle() uint64 { return f.handle }

// Layout returns the file's stripe layout.
func (f *File) Layout() wire.Layout { return f.layout }

// Size returns the file size as known to this client (updated by writes
// through this File and by Open).
func (f *File) Size() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// ReadAt fills p from the file at off, fanning segments out to their data
// servers in parallel. It returns the number of bytes read; reading past
// the end returns a short count.
func (f *File) ReadAt(p []byte, off uint64) (int, error) {
	size := f.Size()
	if off >= size {
		return 0, nil
	}
	if max := size - off; uint64(len(p)) > max {
		p = p[:max]
	}
	segs := Segments(f.layout, off, uint64(len(p)))
	errs := make(chan error, len(segs))
	for _, seg := range segs {
		go func(seg Segment) {
			errs <- f.readSegment(p[seg.FileOffset-off:seg.FileOffset-off+seg.Length], seg)
		}(seg)
	}
	var first error
	for range segs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return 0, first
	}
	return len(p), nil
}

// readSegment pulls one server-local range, chunked under the frame
// limit. Replicas are tried in expected-latency order (straggler-aware:
// the pool's tracker scores each candidate server for this request size,
// unknown and long-idle servers scoring best), failing over to the next
// on error. With hedging enabled, the second-best replica is raced
// against a primary that blows through its latency budget.
func (f *File) readSegment(dst []byte, seg Segment) error {
	order := f.replicaOrder(seg, len(dst))
	if f.c.cfg.HedgeAfter > 0 && len(order) > 1 {
		return f.readSegmentHedged(dst, seg, order)
	}
	var lastErr error
	for _, r := range order {
		if err := f.readSegmentReplica(dst, seg, r, nil); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

// replicaOrder returns the segment's replica indices sorted by the
// latency tracker's score for this request size (ties keep layout order,
// so an unmeasured cluster behaves exactly as before).
func (f *File) replicaOrder(seg Segment, bytes int) []int {
	reps := f.layout.ReplicaCount()
	order := make([]int, reps)
	for i := range order {
		order[i] = i
	}
	if reps == 1 {
		return order
	}
	lat := f.c.pool.Latency()
	score := make([]float64, reps)
	for i := range score {
		addr, err := f.c.DataAddr(ReplicaServer(f.layout, seg.Slot, i))
		if err == nil {
			score[i] = lat.Score(addr, bytes)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return score[order[a]] < score[order[b]] })
	return order
}

// readSegmentReplica reads the segment from replica r through the
// sliding-window path, keeping WindowDepth chunks in flight. Chained
// placement guarantees the replica's local offsets equal the primary's.
// ctl, when non-nil, makes the read cancellable (hedging).
func (f *File) readSegmentReplica(dst []byte, seg Segment, r int, ctl *ReadControl) error {
	addr, err := f.c.DataAddr(ReplicaServer(f.layout, seg.Slot, r))
	if err != nil {
		return err
	}
	handle := ReplicaHandle(f.handle, r)
	_, err = f.c.pool.ReadWindowedCtl(addr, handle, dst, seg.LocalOffset,
		f.c.cfg.WindowDepth, f.c.cfg.TransferChunk, ctl)
	if err != nil {
		return fmt.Errorf("pfs: read replica %d: %w", r, err)
	}
	return nil
}

// readSegmentHedged reads the segment from the best-scored replica, and —
// if that replica has not delivered within the hedge delay — duplicates
// the read to the second-best into scratch space, cancelling whichever
// copy loses. dst is only ever written by the primary read and by the
// final scratch copy after the primary goroutine has exited, so a losing
// primary's zero-filled cancelled bytes can never clobber winning data.
func (f *File) readSegmentHedged(dst []byte, seg Segment, order []int) error {
	pool := f.c.pool
	prim, hedge := order[0], order[1]
	primAddr, err := f.c.DataAddr(ReplicaServer(f.layout, seg.Slot, prim))
	if err != nil {
		return err
	}
	primCtl := pool.NewReadControl(primAddr)
	primDone := make(chan error, 1)
	go func() { primDone <- f.readSegmentReplica(dst, seg, prim, primCtl) }()

	delay := pool.Latency().HedgeDelay(primAddr, len(dst), f.c.cfg.HedgeAfter)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case err := <-primDone:
		if err == nil {
			return nil
		}
		return f.readFailover(dst, seg, order[1:], err)
	case <-timer.C:
	}

	// Primary is straggling: race the hedge replica into scratch space.
	hedgeAddr, err := f.c.DataAddr(ReplicaServer(f.layout, seg.Slot, hedge))
	if err != nil {
		// Cannot hedge; fall back to waiting for the primary alone.
		if perr := <-primDone; perr != nil {
			return f.readFailover(dst, seg, order[1:], perr)
		}
		return nil
	}
	pool.reg.Counter("pool.hedge.launched").Inc()
	scratch := wire.GetBuf(len(dst))[:len(dst)]
	hedgeCtl := pool.NewReadControl(hedgeAddr)
	hedgeDone := make(chan error, 1)
	go func() {
		n, herr := pool.ReadWindowedCtl(hedgeAddr, ReplicaHandle(f.handle, hedge),
			scratch, seg.LocalOffset, f.c.cfg.WindowDepth, f.c.cfg.TransferChunk, hedgeCtl)
		pool.reg.Counter("pool.hedge.bytes").Add(int64(n))
		hedgeDone <- herr
	}()

	select {
	case perr := <-primDone:
		if perr == nil {
			// Primary won after all: reclaim the hedge's bandwidth and
			// recycle its scratch once its window loop has let go of it.
			pool.reg.Counter("pool.hedge.cancelled").Inc()
			hedgeCtl.Cancel()
			go func() {
				<-hedgeDone
				wire.PutBuf(scratch)
			}()
			return nil
		}
		// Primary failed outright; the hedge is now the only copy running.
		if herr := <-hedgeDone; herr == nil {
			copy(dst, scratch)
			wire.PutBuf(scratch)
			pool.reg.Counter("pool.hedge.wins").Inc()
			return nil
		}
		wire.PutBuf(scratch)
		return f.readFailover(dst, seg, order[2:], perr)
	case herr := <-hedgeDone:
		if herr == nil {
			// Hedge won: cancel the primary and wait for its goroutine to
			// stop touching dst before installing the winning bytes.
			primCtl.Cancel()
			<-primDone
			copy(dst, scratch)
			wire.PutBuf(scratch)
			pool.reg.Counter("pool.hedge.wins").Inc()
			return nil
		}
		// Hedge failed; primary keeps running.
		wire.PutBuf(scratch)
		if perr := <-primDone; perr != nil {
			return f.readFailover(dst, seg, order[2:], perr)
		}
		return nil
	}
}

// readFailover walks the remaining replicas in order after a failure.
func (f *File) readFailover(dst []byte, seg Segment, rest []int, lastErr error) error {
	for _, r := range rest {
		if err := f.readSegmentReplica(dst, seg, r, nil); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

// WriteAt stores p at off, fanning segments out in parallel, then records
// any size extension at the metadata server.
func (f *File) WriteAt(p []byte, off uint64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	segs := Segments(f.layout, off, uint64(len(p)))
	errs := make(chan error, len(segs))
	for _, seg := range segs {
		go func(seg Segment) {
			errs <- f.writeSegment(p[seg.FileOffset-off:seg.FileOffset-off+seg.Length], seg)
		}(seg)
	}
	var first error
	for range segs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return 0, first
	}
	end := off + uint64(len(p))
	f.mu.Lock()
	grew := end > f.size
	if grew {
		f.size = end
	}
	f.mu.Unlock()
	if grew {
		resp, err := f.c.pool.Call(f.c.cfg.MetaAddr, &wire.SetSizeReq{Handle: f.handle, Size: end})
		if err != nil {
			return len(p), err
		}
		if sr, ok := resp.(*wire.SetSizeResp); ok {
			f.mu.Lock()
			if sr.Size > f.size {
				f.size = sr.Size
			}
			f.mu.Unlock()
		}
	}
	return len(p), nil
}

// writeSegment stores one segment on every replica. Writes require all
// replicas reachable; degraded writes would silently diverge the copies.
func (f *File) writeSegment(src []byte, seg Segment) error {
	reps := f.layout.ReplicaCount()
	errs := make(chan error, reps)
	for r := 0; r < reps; r++ {
		go func(r int) {
			errs <- f.writeSegmentReplica(src, seg, r)
		}(r)
	}
	var first error
	for r := 0; r < reps; r++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// writeSegmentReplica stores one segment on replica r through the
// sliding-window path.
func (f *File) writeSegmentReplica(src []byte, seg Segment, r int) error {
	addr, err := f.c.DataAddr(ReplicaServer(f.layout, seg.Slot, r))
	if err != nil {
		return err
	}
	handle := ReplicaHandle(f.handle, r)
	_, err = f.c.pool.WriteWindowed(addr, handle, src, seg.LocalOffset,
		f.c.cfg.WindowDepth, f.c.cfg.TransferChunk)
	if err != nil {
		return fmt.Errorf("pfs: write replica %d: %w", r, err)
	}
	return nil
}

// ReadAll reads the whole file.
func (f *File) ReadAll() ([]byte, error) {
	buf := make([]byte, f.Size())
	n, err := f.ReadAt(buf, 0)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}
