package pfs

// Client-side straggler awareness. Replicated reads used to walk
// replicas in layout order, so a slow-but-alive node kept serving every
// request it nominally owned. The tracker keeps a latency EWMA (mean
// and variance) per (server, request-size-class), fed by the sliding
// window's per-chunk timings, and the striping client orders replicas
// by expected latency instead. Estimates decay toward optimism with
// age, so a node that recovered — or was never measured — wins traffic
// back instead of being exiled by its own history.

import (
	"math"
	"math/bits"
	"sync"
	"time"
)

const (
	// latAlpha is the EWMA smoothing factor per observation.
	latAlpha = 0.3
	// latHalflife is how fast an idle estimate decays toward the
	// optimistic zero score: a node unmeasured for one halflife looks
	// half as slow as its last estimate.
	latHalflife = 2 * time.Second
	// latMinSamples is how many observations a (node,class) needs before
	// its quantile estimate drives the hedge delay.
	latMinSamples = 8
)

// LatencyTracker aggregates per-chunk service times by server address
// and size class. Safe for concurrent use.
type LatencyTracker struct {
	mu  sync.Mutex
	m   map[latKey]*latEntry
	now func() time.Time
}

type latKey struct {
	addr  string
	class uint8
}

type latEntry struct {
	mean float64 // ns
	vari float64 // ns²
	n    uint64
	last time.Time
}

// NewLatencyTracker returns an empty tracker.
func NewLatencyTracker() *LatencyTracker {
	return &LatencyTracker{m: make(map[latKey]*latEntry), now: time.Now}
}

// sizeClass buckets request sizes by power of two above a 4 KiB
// granule, so a 4 MiB bulk chunk and a 1-byte probe never share an
// estimate.
func sizeClass(n int) uint8 {
	if n <= 0 {
		return 0
	}
	return uint8(bits.Len(uint(n) >> 12))
}

// Observe folds one measured service time into the (addr, size) EWMA.
func (lt *LatencyTracker) Observe(addr string, bytes int, d time.Duration) {
	if lt == nil || d < 0 {
		return
	}
	k := latKey{addr: addr, class: sizeClass(bytes)}
	x := float64(d)
	lt.mu.Lock()
	e := lt.m[k]
	if e == nil {
		e = &latEntry{mean: x}
		lt.m[k] = e
	} else {
		dev := x - e.mean
		e.mean += latAlpha * dev
		e.vari = (1 - latAlpha) * (e.vari + latAlpha*dev*dev)
	}
	e.n++
	e.last = lt.now()
	lt.mu.Unlock()
}

// Score returns the decayed expected latency (in nanoseconds) for a
// request of the given size against addr. Zero is the optimum: unknown
// servers score zero, and stale estimates halve per halflife, so both
// get retried rather than permanently shunned.
func (lt *LatencyTracker) Score(addr string, bytes int) float64 {
	if lt == nil {
		return 0
	}
	k := latKey{addr: addr, class: sizeClass(bytes)}
	lt.mu.Lock()
	defer lt.mu.Unlock()
	e := lt.m[k]
	if e == nil || e.n == 0 {
		return 0
	}
	age := lt.now().Sub(e.last)
	if age <= 0 {
		return e.mean
	}
	return e.mean * math.Exp2(-float64(age)/float64(latHalflife))
}

// HedgeDelay derives the hedged-read trigger for a request of the given
// size against addr: roughly the EWMA's p95 (mean + 1.65σ, floored at
// 2×mean so a tight distribution doesn't hedge on every jitter).
// fallback is returned until the estimate has latMinSamples
// observations — and always when the tracker is nil.
func (lt *LatencyTracker) HedgeDelay(addr string, bytes int, fallback time.Duration) time.Duration {
	if lt == nil {
		return fallback
	}
	k := latKey{addr: addr, class: sizeClass(bytes)}
	lt.mu.Lock()
	defer lt.mu.Unlock()
	e := lt.m[k]
	if e == nil || e.n < latMinSamples {
		return fallback
	}
	d := e.mean + 1.65*math.Sqrt(e.vari)
	if floor := 2 * e.mean; d < floor {
		d = floor
	}
	return time.Duration(d)
}
