package pfs

import (
	"errors"
	"fmt"

	"dosas/internal/wire"
)

// DefaultWindowDepth is how many chunk requests the windowed transfer
// paths keep in flight per connection when the caller does not choose a
// depth. Depth 1 degenerates to the serial request/response loop.
const DefaultWindowDepth = 4

// normWindow applies defaults and clamps the chunk under the frame budget
// the data server enforces on reads.
func normWindow(depth, chunk int) (int, int) {
	if depth <= 0 {
		depth = DefaultWindowDepth
	}
	if chunk <= 0 {
		chunk = DefaultTransferChunk
	}
	if chunk > wire.MaxFrameSize-64 {
		chunk = wire.MaxFrameSize - 64
	}
	return depth, chunk
}

// ReadWindowed fills dst from the server-local stream of handle at addr,
// starting at local offset off, keeping up to depth chunk requests of at
// most chunk bytes pipelined on one connection. It returns the number of
// bytes received. Like Call, it transparently retries once on a fresh
// dial when a pooled connection turns out to be stale before anything was
// received. Depth or chunk <= 0 take the defaults.
func (p *Pool) ReadWindowed(addr string, handle uint64, dst []byte, off uint64, depth, chunk int) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	depth, chunk = normWindow(depth, chunk)
	for {
		s, err := p.Stream(addr)
		if err != nil {
			return 0, err
		}
		n, err := readStream(s, handle, dst, off, depth, chunk, p.Tenant())
		s.Release()
		if err == nil {
			return n, nil
		}
		if n == 0 && s.Pooled() && !isRemote(err) {
			continue // stale idle connection: retry on a fresh dial
		}
		if isRemote(err) {
			return n, err
		}
		return n, fmt.Errorf("pfs: windowed read %s: %w", addr, err)
	}
}

// WriteWindowed stores src into the server-local stream of handle at
// addr, starting at local offset off, with the same pipelining and
// stale-connection retry as ReadWindowed. It returns the number of bytes
// the server acknowledged applying.
func (p *Pool) WriteWindowed(addr string, handle uint64, src []byte, off uint64, depth, chunk int) (int, error) {
	if len(src) == 0 {
		return 0, nil
	}
	depth, chunk = normWindow(depth, chunk)
	for {
		s, err := p.Stream(addr)
		if err != nil {
			return 0, err
		}
		n, err := writeStream(s, handle, src, off, depth, chunk, p.Tenant())
		s.Release()
		if err == nil {
			return n, nil
		}
		if n == 0 && s.Pooled() && !isRemote(err) {
			continue // stale idle connection: retry on a fresh dial
		}
		if isRemote(err) {
			return n, err
		}
		return n, fmt.Errorf("pfs: windowed write %s: %w", addr, err)
	}
}

// readStream runs the sliding read window over one stream. Responses are
// consumed inside the loop — each chunk is copied into dst before the
// next Recv reuses the decode buffer — so no Own copy is ever taken.
//
// A short-but-nonzero response means the stream held fewer bytes at that
// offset than requested, which invalidates the offsets of every request
// already in flight: those are drained and the window restarts from the
// bytes actually received (resync). Short responses always carry at least
// one byte, so the resync loop makes progress; an empty response is an
// error, as in the serial path.
func readStream(s *Stream, handle uint64, dst []byte, off uint64, depth, chunk int, tenant string) (int, error) {
	sent, recvd := 0, 0
	pending := make([]int, 0, depth)
	for recvd < len(dst) {
		for len(pending) < depth && sent < len(dst) {
			n := min(chunk, len(dst)-sent)
			req := &wire.ReadReq{Handle: handle, Offset: off + uint64(sent), Length: uint32(n), Tenant: tenant}
			if err := s.Send(req); err != nil {
				return recvd, err
			}
			pending = append(pending, n)
			sent += n
		}
		resp, err := s.Recv()
		if err != nil {
			if isRemote(err) {
				drainStream(s, len(pending)-1) //nolint:errcheck // conn health only
			}
			return recvd, err
		}
		expect := pending[0]
		pending = pending[1:]
		rr, ok := resp.(*wire.ReadResp)
		if !ok {
			return recvd, fmt.Errorf("read: unexpected response %v", resp.Type())
		}
		if len(rr.Data) == 0 {
			drainStream(s, len(pending)) //nolint:errcheck // conn health only
			return recvd, fmt.Errorf("read: no data at local offset %d", off+uint64(recvd))
		}
		if len(rr.Data) > expect {
			return recvd, fmt.Errorf("read: got %d bytes for a %d-byte request", len(rr.Data), expect)
		}
		k := copy(dst[recvd:], rr.Data)
		recvd += k
		if k < expect {
			if err := drainStream(s, len(pending)); err != nil {
				return recvd, err
			}
			pending = pending[:0]
			sent = recvd
		}
	}
	return recvd, nil
}

// writeStream runs the sliding write window over one stream. A short
// write acknowledgement is an error (as in the serial path: degraded
// partial writes would silently diverge replicas), but the remaining
// in-flight responses are drained first so the connection stays poolable.
func writeStream(s *Stream, handle uint64, src []byte, off uint64, depth, chunk int, tenant string) (int, error) {
	sent, acked := 0, 0
	pending := make([]int, 0, depth)
	for acked < len(src) {
		for len(pending) < depth && sent < len(src) {
			n := min(chunk, len(src)-sent)
			req := &wire.WriteReq{Handle: handle, Offset: off + uint64(sent), Data: src[sent : sent+n], Tenant: tenant}
			if err := s.Send(req); err != nil {
				return acked, err
			}
			pending = append(pending, n)
			sent += n
		}
		resp, err := s.Recv()
		if err != nil {
			if isRemote(err) {
				drainStream(s, len(pending)-1) //nolint:errcheck // conn health only
			}
			return acked, err
		}
		expect := pending[0]
		pending = pending[1:]
		wr, ok := resp.(*wire.WriteResp)
		if !ok {
			return acked, fmt.Errorf("write: unexpected response %v", resp.Type())
		}
		if int(wr.N) != expect {
			drainStream(s, len(pending)) //nolint:errcheck // conn health only
			return acked, fmt.Errorf("write: applied %d of %d bytes at local offset %d", wr.N, expect, off+uint64(acked))
		}
		acked += expect
	}
	return acked, nil
}

// drainStream reads and discards n outstanding responses so a stream that
// hit an application-level failure finishes its exchange balanced and the
// connection can return to the pool. Remote errors among the drained
// responses are ignored; a transport error is returned (the connection is
// unusable anyway).
func drainStream(s *Stream, n int) error {
	for i := 0; i < n; i++ {
		if _, err := s.Recv(); err != nil && !isRemote(err) {
			return err
		}
	}
	return nil
}

// isRemote reports whether err is an application-level failure reported
// by the peer (the connection itself is healthy).
func isRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}
