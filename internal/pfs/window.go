package pfs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dosas/internal/wire"
)

// DefaultWindowDepth is how many chunk requests the windowed transfer
// paths keep in flight per connection when the caller does not choose a
// depth. Depth 1 degenerates to the serial request/response loop.
const DefaultWindowDepth = 4

// normWindow applies defaults and clamps the chunk under the frame budget
// the data server enforces on reads.
func normWindow(depth, chunk int) (int, int) {
	if depth <= 0 {
		depth = DefaultWindowDepth
	}
	if chunk <= 0 {
		chunk = DefaultTransferChunk
	}
	if chunk > wire.MaxFrameSize-64 {
		chunk = wire.MaxFrameSize - 64
	}
	return depth, chunk
}

// ReadWindowed fills dst from the server-local stream of handle at addr,
// starting at local offset off, keeping up to depth chunk requests of at
// most chunk bytes pipelined on one connection. It returns the number of
// bytes received. Like Call, it transparently retries once on a fresh
// dial when a pooled connection turns out to be stale before anything was
// received. Depth or chunk <= 0 take the defaults.
func (p *Pool) ReadWindowed(addr string, handle uint64, dst []byte, off uint64, depth, chunk int) (int, error) {
	return p.ReadWindowedCtl(addr, handle, dst, off, depth, chunk, nil)
}

// ReadWindowedCtl is ReadWindowed with an attached cancellation control:
// when ctl is non-nil every chunk request carries a cluster-unique ReqID
// registered with ctl, and a concurrent ctl.Cancel() both stops issuing
// new chunks and asks the server to truncate the in-flight ones. Used by
// hedged reads to reclaim the losing replica's bandwidth.
func (p *Pool) ReadWindowedCtl(addr string, handle uint64, dst []byte, off uint64, depth, chunk int, ctl *ReadControl) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	depth, chunk = normWindow(depth, chunk)
	for {
		s, err := p.Stream(addr)
		if err != nil {
			return 0, err
		}
		n, err := p.readStream(s, addr, handle, dst, off, depth, chunk, ctl)
		s.Release()
		if err == nil {
			return n, nil
		}
		if n == 0 && s.Pooled() && !isRemote(err) && !errors.Is(err, ErrCancelled) {
			continue // stale idle connection: retry on a fresh dial
		}
		if isRemote(err) || errors.Is(err, ErrCancelled) {
			return n, err
		}
		return n, fmt.Errorf("pfs: windowed read %s: %w", addr, err)
	}
}

// ReadControl lets one windowed read be cancelled from another goroutine.
// It tracks the ReqIDs currently in flight on the wire; Cancel marks the
// control stopped (the window loop checks between chunks) and fires a
// CancelReq per in-flight id so the server stops moving bytes the caller
// has already decided to discard.
type ReadControl struct {
	p    *Pool
	addr string

	mu       sync.Mutex
	inflight map[uint64]struct{}
	stopped  bool
}

// NewReadControl returns a control for windowed reads against addr.
func (p *Pool) NewReadControl(addr string) *ReadControl {
	return &ReadControl{p: p, addr: addr, inflight: make(map[uint64]struct{})}
}

// add registers an in-flight ReqID. Reports false when the control is
// already stopped — the caller must not send the request.
func (rc *ReadControl) add(id uint64) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.stopped {
		return false
	}
	rc.inflight[id] = struct{}{}
	return true
}

// done removes a ReqID whose response has fully arrived.
func (rc *ReadControl) done(id uint64) {
	rc.mu.Lock()
	delete(rc.inflight, id)
	rc.mu.Unlock()
}

// aborted reports whether Cancel has been called.
func (rc *ReadControl) aborted() bool {
	if rc == nil {
		return false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.stopped
}

// Cancel stops the read: no further chunks are issued, and every chunk
// currently on the wire gets a best-effort CancelReq (asynchronous — the
// server zero-fills whatever it had not yet sent, and the reader discards
// the response). Idempotent.
func (rc *ReadControl) Cancel() {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	if rc.stopped {
		rc.mu.Unlock()
		return
	}
	rc.stopped = true
	ids := make([]uint64, 0, len(rc.inflight))
	for id := range rc.inflight {
		ids = append(ids, id)
	}
	rc.mu.Unlock()
	for _, id := range ids {
		go func(id uint64) {
			rc.p.Call(rc.addr, &wire.CancelReq{RequestID: id}) //nolint:errcheck // best effort
		}(id)
	}
}

// WriteWindowed stores src into the server-local stream of handle at
// addr, starting at local offset off, with the same pipelining and
// stale-connection retry as ReadWindowed. It returns the number of bytes
// the server acknowledged applying.
func (p *Pool) WriteWindowed(addr string, handle uint64, src []byte, off uint64, depth, chunk int) (int, error) {
	if len(src) == 0 {
		return 0, nil
	}
	depth, chunk = normWindow(depth, chunk)
	for {
		s, err := p.Stream(addr)
		if err != nil {
			return 0, err
		}
		n, err := writeStream(s, handle, src, off, depth, chunk, p.Tenant())
		s.Release()
		if err == nil {
			return n, nil
		}
		if n == 0 && s.Pooled() && !isRemote(err) {
			continue // stale idle connection: retry on a fresh dial
		}
		if isRemote(err) {
			return n, err
		}
		return n, fmt.Errorf("pfs: windowed write %s: %w", addr, err)
	}
}

// chunkReq is one in-flight request of the sliding read window.
type chunkReq struct {
	n      int
	id     uint64 // ReqID on the wire; 0 when no control is attached
	sentAt time.Time
}

// readStream runs the sliding read window over one stream. Responses are
// consumed inside the loop — each chunk is copied into dst before the
// next Recv reuses the decode buffer — so no Own copy is ever taken.
// Every chunk's send→recv time feeds the pool's latency tracker, which is
// what replica scoring and hedge delays are derived from.
//
// A short-but-nonzero response means the stream held fewer bytes at that
// offset than requested, which invalidates the offsets of every request
// already in flight: those are drained and the window restarts from the
// bytes actually received (resync). Short responses always carry at least
// one byte, so the resync loop makes progress; an empty response is an
// error, as in the serial path.
func (p *Pool) readStream(s *Stream, addr string, handle uint64, dst []byte, off uint64, depth, chunk int, ctl *ReadControl) (int, error) {
	tenant := p.Tenant()
	sent, recvd := 0, 0
	pending := make([]chunkReq, 0, depth)
	finish := func(id uint64) {
		if ctl != nil {
			ctl.done(id)
		}
	}
	abort := func() (int, error) {
		drainStream(s, len(pending)) //nolint:errcheck // result discarded anyway
		for _, cr := range pending {
			finish(cr.id)
		}
		return recvd, fmt.Errorf("read %s at local offset %d: %w", addr, off+uint64(recvd), ErrCancelled)
	}
	for recvd < len(dst) {
		for len(pending) < depth && sent < len(dst) {
			if ctl.aborted() {
				return abort()
			}
			n := min(chunk, len(dst)-sent)
			cr := chunkReq{n: n, sentAt: time.Now()}
			req := &wire.ReadReq{Handle: handle, Offset: off + uint64(sent), Length: uint32(n), Tenant: tenant}
			if ctl != nil {
				cr.id = p.nextReqID()
				req.ReqID = cr.id
				if !ctl.add(cr.id) {
					return abort()
				}
			}
			if err := s.Send(req); err != nil {
				finish(cr.id)
				return recvd, err
			}
			pending = append(pending, cr)
			sent += n
		}
		resp, err := s.Recv()
		if err != nil {
			if isRemote(err) {
				drainStream(s, len(pending)-1) //nolint:errcheck // conn health only
			}
			for _, cr := range pending {
				finish(cr.id)
			}
			if IsCancelled(err) {
				return recvd, fmt.Errorf("read %s: %w", addr, ErrCancelled)
			}
			return recvd, err
		}
		head := pending[0]
		pending = pending[1:]
		finish(head.id)
		expect := head.n
		rr, ok := resp.(*wire.ReadResp)
		if !ok {
			return recvd, fmt.Errorf("read: unexpected response %v", resp.Type())
		}
		p.lat.Observe(addr, expect, time.Since(head.sentAt))
		if len(rr.Data) == 0 {
			drainStream(s, len(pending)) //nolint:errcheck // conn health only
			for _, cr := range pending {
				finish(cr.id)
			}
			return recvd, fmt.Errorf("read: no data at local offset %d", off+uint64(recvd))
		}
		if len(rr.Data) > expect {
			return recvd, fmt.Errorf("read: got %d bytes for a %d-byte request", len(rr.Data), expect)
		}
		if ctl.aborted() {
			// Cancelled mid-window: the remaining responses may already be
			// server-side zero-filled, and the caller is discarding this
			// buffer. Do not copy possibly-poisoned bytes over real ones.
			return abort()
		}
		k := copy(dst[recvd:], rr.Data)
		recvd += k
		if k < expect {
			if err := drainStream(s, len(pending)); err != nil {
				return recvd, err
			}
			for _, cr := range pending {
				finish(cr.id)
			}
			pending = pending[:0]
			sent = recvd
		}
	}
	return recvd, nil
}

// writeStream runs the sliding write window over one stream. A short
// write acknowledgement is an error (as in the serial path: degraded
// partial writes would silently diverge replicas), but the remaining
// in-flight responses are drained first so the connection stays poolable.
func writeStream(s *Stream, handle uint64, src []byte, off uint64, depth, chunk int, tenant string) (int, error) {
	sent, acked := 0, 0
	pending := make([]int, 0, depth)
	for acked < len(src) {
		for len(pending) < depth && sent < len(src) {
			n := min(chunk, len(src)-sent)
			req := &wire.WriteReq{Handle: handle, Offset: off + uint64(sent), Data: src[sent : sent+n], Tenant: tenant}
			if err := s.Send(req); err != nil {
				return acked, err
			}
			pending = append(pending, n)
			sent += n
		}
		resp, err := s.Recv()
		if err != nil {
			if isRemote(err) {
				drainStream(s, len(pending)-1) //nolint:errcheck // conn health only
			}
			return acked, err
		}
		expect := pending[0]
		pending = pending[1:]
		wr, ok := resp.(*wire.WriteResp)
		if !ok {
			return acked, fmt.Errorf("write: unexpected response %v", resp.Type())
		}
		if int(wr.N) != expect {
			drainStream(s, len(pending)) //nolint:errcheck // conn health only
			return acked, fmt.Errorf("write: applied %d of %d bytes at local offset %d", wr.N, expect, off+uint64(acked))
		}
		acked += expect
	}
	return acked, nil
}

// drainStream reads and discards n outstanding responses so a stream that
// hit an application-level failure finishes its exchange balanced and the
// connection can return to the pool. Remote errors among the drained
// responses are ignored; a transport error is returned (the connection is
// unusable anyway).
func drainStream(s *Stream, n int) error {
	for i := 0; i < n; i++ {
		if _, err := s.Recv(); err != nil && !isRemote(err) {
			return err
		}
	}
	return nil
}

// isRemote reports whether err is an application-level failure reported
// by the peer (the connection itself is healthy).
func isRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}
