package pfs

import (
	"container/list"
	"os"
	"sync"
)

// DefaultFDCacheSize caps how many file descriptors a disk-backed store
// keeps open. 256 stays far under typical rlimits while covering the
// working set of a busy node (a few dozen hot streams × a few extents).
const DefaultFDCacheSize = 256

// fdKey identifies one cached descriptor: a handle's single backing file
// (FileStore, ext == 0) or one of its extents (ExtentStore).
type fdKey struct {
	handle uint64
	ext    uint32
}

// fdEntry is one cached descriptor with a reference count. The cache
// holds an implicit reference while the entry is live; payloads in
// flight hold explicit ones, so eviction can never close a descriptor
// out from under a sendfile in progress — a dead entry closes when its
// last reference drops.
type fdEntry struct {
	key  fdKey
	f    *os.File
	refs int
	dead bool // evicted or invalidated; close once refs == 0
	elem *list.Element
}

// fdCache is a capped, refcounted LRU of open descriptors, shared by the
// disk-backed stores. All operations are safe for concurrent use; opens
// run under the cache lock (serializing them, as the pre-cache FileStore
// did), which also makes open-or-create races impossible.
type fdCache struct {
	mu      sync.Mutex
	cap     int
	entries map[fdKey]*fdEntry
	lru     *list.List // front = most recently used; holds *fdEntry
	closed  bool
}

func newFDCache(capacity int) *fdCache {
	if capacity <= 0 {
		capacity = DefaultFDCacheSize
	}
	return &fdCache{cap: capacity, entries: make(map[fdKey]*fdEntry), lru: list.New()}
}

// acquire returns the cached descriptor for key, opening it with open on
// a miss, and takes a reference the caller must release. Opening past
// capacity evicts unreferenced LRU entries first; entries pinned by
// in-flight payloads are skipped (the cache may transiently exceed cap).
func (c *fdCache) acquire(key fdKey, open func() (*os.File, error)) (*fdEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, os.ErrClosed
	}
	if e, ok := c.entries[key]; ok {
		e.refs++
		c.lru.MoveToFront(e.elem)
		return e, nil
	}
	f, err := open()
	if err != nil {
		return nil, err
	}
	e := &fdEntry{key: key, f: f, refs: 1}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	for c.lru.Len() > c.cap {
		if !c.evictLRULocked() {
			break
		}
	}
	return e, nil
}

// evictLRULocked drops the least-recently-used unreferenced entry.
// Reports whether anything was evicted.
func (c *fdCache) evictLRULocked() bool {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*fdEntry)
		if e.refs > 0 {
			continue
		}
		c.removeLocked(e)
		e.f.Close()
		return true
	}
	return false
}

// removeLocked unlinks e from the map and LRU and marks it dead. The
// caller closes e.f if no references remain.
func (c *fdCache) removeLocked(e *fdEntry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	e.dead = true
}

// release drops one reference taken by acquire.
func (c *fdCache) release(e *fdEntry) {
	c.mu.Lock()
	e.refs--
	closeNow := e.dead && e.refs == 0
	c.mu.Unlock()
	if closeNow {
		e.f.Close()
	}
}

// invalidate removes key from the cache (Remove/Truncate of the backing
// file). The descriptor closes immediately if unreferenced, else when
// the last in-flight payload releases it.
func (c *fdCache) invalidate(key fdKey) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.removeLocked(e)
	}
	closeNow := ok && e.refs == 0
	c.mu.Unlock()
	if closeNow {
		e.f.Close()
	}
}

// invalidateHandle removes every cached descriptor of handle.
func (c *fdCache) invalidateHandle(handle uint64) {
	c.mu.Lock()
	var toClose []*fdEntry
	for key, e := range c.entries {
		if key.handle != handle {
			continue
		}
		c.removeLocked(e)
		if e.refs == 0 {
			toClose = append(toClose, e)
		}
	}
	c.mu.Unlock()
	for _, e := range toClose {
		e.f.Close()
	}
}

// len reports the number of live cached descriptors (tests).
func (c *fdCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// closeAll invalidates everything and shuts the cache. Pinned
// descriptors close as their references drop.
func (c *fdCache) closeAll() error {
	c.mu.Lock()
	c.closed = true
	var toClose []*fdEntry
	for _, e := range c.entries {
		e.dead = true
		if e.refs == 0 {
			toClose = append(toClose, e)
		}
	}
	c.entries = make(map[fdKey]*fdEntry)
	c.lru.Init()
	c.mu.Unlock()
	var first error
	for _, e := range toClose {
		if err := e.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
