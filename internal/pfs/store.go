package pfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Store is a data server's backing object store: one sparse byte stream per
// file handle (the concatenation of the stripes this server owns, in
// server-local order). Implementations must be safe for concurrent use.
type Store interface {
	// ReadAt fills p from the stream at off. Bytes beyond the stream end
	// are reported by a short count; holes read as zeros.
	ReadAt(handle uint64, p []byte, off uint64) (int, error)
	// WriteAt stores p at off, extending the stream as needed.
	WriteAt(handle uint64, p []byte, off uint64) (int, error)
	// Size returns the current stream length for handle (0 if absent).
	Size(handle uint64) uint64
	// Truncate cuts the stream to size bytes.
	Truncate(handle uint64, size uint64) error
	// Remove deletes the stream entirely.
	Remove(handle uint64) error
	// Close releases resources.
	Close() error
}

// MemStore keeps streams in memory. It is the default for tests, examples,
// and benchmarks where durability is irrelevant.
type MemStore struct {
	mu      sync.RWMutex
	streams map[uint64][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{streams: make(map[uint64][]byte)}
}

// ReadAt implements Store.
func (s *MemStore) ReadAt(handle uint64, p []byte, off uint64) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data := s.streams[handle]
	if off >= uint64(len(data)) {
		return 0, nil
	}
	return copy(p, data[off:]), nil
}

// WriteAt implements Store.
func (s *MemStore) WriteAt(handle uint64, p []byte, off uint64) (int, error) {
	if len(p) == 0 {
		return 0, nil // zero-length writes do not extend (POSIX pwrite)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data := s.streams[handle]
	end := off + uint64(len(p))
	if end > uint64(len(data)) {
		grown := make([]byte, end)
		copy(grown, data)
		data = grown
	}
	copy(data[off:], p)
	s.streams[handle] = data
	return len(p), nil
}

// Size implements Store.
func (s *MemStore) Size(handle uint64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(len(s.streams[handle]))
}

// Truncate implements Store.
func (s *MemStore) Truncate(handle uint64, size uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.streams[handle]
	if !ok {
		return nil
	}
	if size < uint64(len(data)) {
		s.streams[handle] = data[:size:size]
	}
	return nil
}

// Remove implements Store.
func (s *MemStore) Remove(handle uint64) error {
	s.mu.Lock()
	delete(s.streams, handle)
	s.mu.Unlock()
	return nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// FileStore keeps each handle's stream in one file under a directory,
// giving a data server durability across restarts.
type FileStore struct {
	dir string

	mu    sync.Mutex
	files map[uint64]*os.File
}

// NewFileStore opens (creating if needed) a store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pfs: filestore: %w", err)
	}
	return &FileStore{dir: dir, files: make(map[uint64]*os.File)}, nil
}

func (s *FileStore) path(handle uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("h%016x.dat", handle))
}

// file returns the open *os.File for handle, opening or creating it.
func (s *FileStore) file(handle uint64, create bool) (*os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[handle]; ok {
		return f, nil
	}
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE
	}
	f, err := os.OpenFile(s.path(handle), flags, 0o644)
	if err != nil {
		return nil, err
	}
	s.files[handle] = f
	return f, nil
}

// ReadAt implements Store.
func (s *FileStore) ReadAt(handle uint64, p []byte, off uint64) (int, error) {
	f, err := s.file(handle, false)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	n, err := f.ReadAt(p, int64(off))
	if errors.Is(err, io.EOF) {
		// Short read at end of stream is not an error at this layer.
		return n, nil
	}
	return n, err
}

// WriteAt implements Store.
func (s *FileStore) WriteAt(handle uint64, p []byte, off uint64) (int, error) {
	f, err := s.file(handle, true)
	if err != nil {
		return 0, err
	}
	return f.WriteAt(p, int64(off))
}

// Size implements Store.
func (s *FileStore) Size(handle uint64) uint64 {
	f, err := s.file(handle, false)
	if err != nil {
		return 0
	}
	fi, err := f.Stat()
	if err != nil {
		return 0
	}
	return uint64(fi.Size())
}

// Truncate implements Store.
func (s *FileStore) Truncate(handle uint64, size uint64) error {
	f, err := s.file(handle, false)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	return f.Truncate(int64(size))
}

// Remove implements Store.
func (s *FileStore) Remove(handle uint64) error {
	s.mu.Lock()
	if f, ok := s.files[handle]; ok {
		f.Close()
		delete(s.files, handle)
	}
	s.mu.Unlock()
	err := os.Remove(s.path(handle))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for h, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.files, h)
	}
	return first
}
