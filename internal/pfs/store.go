package pfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"dosas/internal/wire"
)

// Store is a data server's backing object store: one sparse byte stream per
// file handle (the concatenation of the stripes this server owns, in
// server-local order). Implementations must be safe for concurrent use.
//
// Disk-backed stores additionally implement RangeReader, the extension
// behind the zero-copy read path.
type Store interface {
	// ReadAt fills p from the stream at off. Bytes beyond the stream end
	// are reported by a short count; holes read as zeros.
	ReadAt(handle uint64, p []byte, off uint64) (int, error)
	// WriteAt stores p at off, extending the stream as needed.
	WriteAt(handle uint64, p []byte, off uint64) (int, error)
	// Size returns the current stream length for handle (0 if absent).
	Size(handle uint64) uint64
	// Truncate cuts the stream to size bytes.
	Truncate(handle uint64, size uint64) error
	// Remove deletes the stream entirely.
	Remove(handle uint64) error
	// Close releases resources.
	Close() error
}

// RangeReader is the optional Store extension for serving bulk reads by
// reference: instead of staging the bytes through a buffer, the store
// hands back a wire.Payload describing where they live (extent files,
// holes), which the framing layer then moves with sendfile/writev. A
// store without it — MemStore — keeps the pooled-buffer path.
type RangeReader interface {
	// ReadRange returns a payload serving exactly n bytes of handle's
	// stream at off; off+n must not exceed Size at call time (the
	// payload zero-fills if the stream shrinks afterwards, keeping its
	// announced length). The caller must Close the payload once the
	// frame is written — it pins fd-cache references until then.
	ReadRange(handle uint64, off, n uint64) (wire.Payload, error)
}

// MemStore keeps streams in memory. It is the default for tests, examples,
// and benchmarks where durability is irrelevant.
type MemStore struct {
	mu      sync.RWMutex
	streams map[uint64][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{streams: make(map[uint64][]byte)}
}

// ReadAt implements Store.
func (s *MemStore) ReadAt(handle uint64, p []byte, off uint64) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data := s.streams[handle]
	if off >= uint64(len(data)) {
		return 0, nil
	}
	return copy(p, data[off:]), nil
}

// WriteAt implements Store.
func (s *MemStore) WriteAt(handle uint64, p []byte, off uint64) (int, error) {
	if len(p) == 0 {
		return 0, nil // zero-length writes do not extend (POSIX pwrite)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data := s.streams[handle]
	end := off + uint64(len(p))
	if end > uint64(len(data)) {
		grown := make([]byte, end)
		copy(grown, data)
		data = grown
	}
	copy(data[off:], p)
	s.streams[handle] = data
	return len(p), nil
}

// Size implements Store.
func (s *MemStore) Size(handle uint64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(len(s.streams[handle]))
}

// Truncate implements Store.
func (s *MemStore) Truncate(handle uint64, size uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.streams[handle]
	if !ok {
		return nil
	}
	if size < uint64(len(data)) {
		s.streams[handle] = data[:size:size]
	}
	return nil
}

// Remove implements Store.
func (s *MemStore) Remove(handle uint64) error {
	s.mu.Lock()
	delete(s.streams, handle)
	s.mu.Unlock()
	return nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// FileStore keeps each handle's stream in one file under a directory,
// giving a data server durability across restarts. Open descriptors are
// held in a capped LRU (see fdCache), so a long-lived server touching
// many handles stays under its rlimit. ExtentStore is the preferred
// disk backend — it also serves zero-copy payloads — but FileStore's
// one-file-per-handle layout remains both as the v0 format and as the
// bench baseline the zero-copy path is measured against.
type FileStore struct {
	dir  string
	sync bool
	fds  *fdCache
}

// FileStoreConfig configures a FileStore.
type FileStoreConfig struct {
	// Dir roots the store; created if needed.
	Dir string
	// FDCacheSize caps lazily opened descriptors (default
	// DefaultFDCacheSize).
	FDCacheSize int
	// Sync fsyncs the backing file after every write. Off by default:
	// the page cache absorbs write bursts and the paper's workloads are
	// re-runnable; turn it on (-fsync) for durability-sensitive runs.
	Sync bool
}

// NewFileStore opens (creating if needed) a store rooted at dir with
// default options.
func NewFileStore(dir string) (*FileStore, error) {
	return NewFileStoreConfig(FileStoreConfig{Dir: dir})
}

// NewFileStoreConfig opens (creating if needed) a store per cfg.
func NewFileStoreConfig(cfg FileStoreConfig) (*FileStore, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("pfs: filestore: %w", err)
	}
	return &FileStore{dir: cfg.Dir, sync: cfg.Sync, fds: newFDCache(cfg.FDCacheSize)}, nil
}

func (s *FileStore) path(handle uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("h%016x.dat", handle))
}

// file acquires the cached descriptor for handle, opening or creating
// it. The caller must release the returned entry.
func (s *FileStore) file(handle uint64, create bool) (*fdEntry, error) {
	return s.fds.acquire(fdKey{handle: handle}, func() (*os.File, error) {
		flags := os.O_RDWR
		if create {
			flags |= os.O_CREATE
		}
		return os.OpenFile(s.path(handle), flags, 0o644)
	})
}

// ReadAt implements Store.
func (s *FileStore) ReadAt(handle uint64, p []byte, off uint64) (int, error) {
	e, err := s.file(handle, false)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer s.fds.release(e)
	n, err := e.f.ReadAt(p, int64(off))
	if errors.Is(err, io.EOF) {
		// Short read at end of stream is not an error at this layer.
		return n, nil
	}
	return n, err
}

// WriteAt implements Store.
func (s *FileStore) WriteAt(handle uint64, p []byte, off uint64) (int, error) {
	e, err := s.file(handle, true)
	if err != nil {
		return 0, err
	}
	defer s.fds.release(e)
	n, err := e.f.WriteAt(p, int64(off))
	if err == nil && s.sync {
		err = e.f.Sync()
	}
	return n, err
}

// Size implements Store.
func (s *FileStore) Size(handle uint64) uint64 {
	e, err := s.file(handle, false)
	if err != nil {
		return 0
	}
	defer s.fds.release(e)
	fi, err := e.f.Stat()
	if err != nil {
		return 0
	}
	return uint64(fi.Size())
}

// Truncate implements Store.
func (s *FileStore) Truncate(handle uint64, size uint64) error {
	e, err := s.file(handle, false)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer s.fds.release(e)
	if err := e.f.Truncate(int64(size)); err != nil {
		return err
	}
	if s.sync {
		return e.f.Sync()
	}
	return nil
}

// Remove implements Store.
func (s *FileStore) Remove(handle uint64) error {
	s.fds.invalidate(fdKey{handle: handle})
	err := os.Remove(s.path(handle))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Close implements Store.
func (s *FileStore) Close() error { return s.fds.closeAll() }
