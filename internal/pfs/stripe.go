package pfs

import (
	"dosas/internal/wire"
)

// Segment maps one contiguous piece of a file range onto a single data
// server's local byte stream. The striping client turns a (offset, length)
// file range into a list of segments and issues them in parallel.
type Segment struct {
	Slot        int    // index into Layout.Servers
	Server      uint32 // cluster data-server index (Layout.Servers[Slot])
	FileOffset  uint64 // where this piece starts in the file
	LocalOffset uint64 // where it starts in the server's local stream
	Length      uint64
}

// Segments maps the file range [off, off+length) onto per-server segments
// under the round-robin striping of layout. Segments are returned in file
// order; adjacent pieces that land contiguously on the same server (the
// width-1 case) are coalesced.
func Segments(layout wire.Layout, off, length uint64) []Segment {
	if length == 0 || len(layout.Servers) == 0 || layout.StripeSize == 0 {
		return nil
	}
	ss := uint64(layout.StripeSize)
	w := uint64(len(layout.Servers))
	segs := make([]Segment, 0, length/ss+2)
	for length > 0 {
		g := off / ss      // global stripe index
		slot := g % w      // which server owns it
		local := g / w     // server-local stripe index
		within := off % ss // offset inside the stripe
		n := ss - within   // bytes left in this stripe
		if n > length {
			n = length
		}
		seg := Segment{
			Slot:        int(slot),
			Server:      layout.Servers[slot],
			FileOffset:  off,
			LocalOffset: local*ss + within,
			Length:      n,
		}
		if k := len(segs); k > 0 &&
			segs[k-1].Slot == seg.Slot &&
			segs[k-1].LocalOffset+segs[k-1].Length == seg.LocalOffset &&
			segs[k-1].FileOffset+segs[k-1].Length == seg.FileOffset {
			segs[k-1].Length += n
		} else {
			segs = append(segs, seg)
		}
		off += n
		length -= n
	}
	return segs
}

// LocalSize returns how many bytes of a file of fileSize bytes live on the
// server occupying the given slot of layout.
func LocalSize(layout wire.Layout, fileSize uint64, slot int) uint64 {
	if len(layout.Servers) == 0 || layout.StripeSize == 0 {
		return 0
	}
	ss := uint64(layout.StripeSize)
	w := uint64(len(layout.Servers))
	full := fileSize / ss // number of complete stripes
	rem := fileSize % ss
	mine := full / w
	if full%w > uint64(slot) {
		mine++
	}
	n := mine * ss
	if full%w == uint64(slot) {
		n += rem
	}
	return n
}

// FileOffsetOf inverts the stripe mapping: given a server slot and a
// server-local offset, it returns the file offset the byte corresponds to.
func FileOffsetOf(layout wire.Layout, slot int, local uint64) uint64 {
	ss := uint64(layout.StripeSize)
	w := uint64(len(layout.Servers))
	localStripe := local / ss
	within := local % ss
	g := localStripe*w + uint64(slot)
	return g*ss + within
}

// replicaTagShift positions the replica index inside a stripe-stream
// handle. File handles stay below 2^56, so the tag never collides.
const replicaTagShift = 56

// ReplicaHandle returns the data-server stream handle for replica r of a
// file. Replica 0 is the file handle itself.
func ReplicaHandle(handle uint64, r int) uint64 {
	return handle | uint64(r)<<replicaTagShift
}

// ReplicaServer returns the cluster server index holding replica r of the
// stripes owned by slot. Chained placement: each successive replica lives
// one slot further around the layout's server ring, so the r-th copy of a
// slot's stripes occupies a contiguous local stream with exactly the same
// local offsets as the primary.
func ReplicaServer(layout wire.Layout, slot, r int) uint32 {
	w := len(layout.Servers)
	return layout.Servers[(slot+r)%w]
}
