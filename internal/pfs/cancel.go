package pfs

// Cancellation of normal (non-active) reads. The active runtime has
// always honored CancelReq via its own queue; plain chunk reads had no
// identity on the wire, so a hedged read's losing replica kept serving
// to the last byte. ReadReq.ReqID gives them one, and this registry is
// the server-side rendezvous: the read handler registers its id before
// gating, a CancelReq flips the registered flag (and withdraws the QoS
// ticket while still queued), and the framing writers poll the flag
// between segments of an already-started response.

import (
	"sync"
	"sync/atomic"
	"time"
)

// HedgeIDBit tags client-minted normal-read request ids, keeping them
// disjoint from the small sequential ids active reads use — a stray
// active cancel can never hit the normal-read registry, and vice versa.
const HedgeIDBit uint64 = 1 << 63

// tombstoneTTL bounds how long a cancel-before-register tombstone is
// kept waiting for its ReadReq to arrive.
const tombstoneTTL = 5 * time.Second

// cancelState is one registered read's cancellation rendezvous. flag is
// polled lock-free by the framing writers; everything else is guarded
// by the registry mutex.
type cancelState struct {
	flag   atomic.Bool
	ticket *Ticket
	gate   *QoSGate
	tomb   bool // cancel arrived before the ReadReq registered
	at     time.Time
}

// cancelRegistry indexes in-flight normal reads by ReqID.
type cancelRegistry struct {
	mu  sync.Mutex
	m   map[uint64]*cancelState
	now func() time.Time
}

// register files id and returns its state. If a CancelReq beat the
// ReadReq here (mux handlers dispatch concurrently), the returned
// state's flag is already true and the caller must not serve.
func (r *cancelRegistry) register(id uint64) *cancelState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[uint64]*cancelState)
	}
	if cs := r.m[id]; cs != nil && cs.tomb {
		cs.tomb = false
		return cs
	}
	cs := &cancelState{}
	r.m[id] = cs
	return cs
}

// attach binds the read's QoS ticket to its state. If the read was
// cancelled in the register→attach window, the ticket is withdrawn
// immediately so Wait returns false instead of ever holding a slot.
func (r *cancelRegistry) attach(cs *cancelState, tk *Ticket, g *QoSGate) {
	r.mu.Lock()
	cs.ticket, cs.gate = tk, g
	cancelled := cs.flag.Load()
	r.mu.Unlock()
	if cancelled {
		g.Cancel(tk)
	}
}

// cancel marks id cancelled, withdrawing its QoS ticket if still
// queued. Reports whether the id was registered. Unknown hedge-tagged
// ids leave a tombstone so a racing ReadReq arriving just behind the
// cancel is refused service.
func (r *cancelRegistry) cancel(id uint64) bool {
	r.mu.Lock()
	cs := r.m[id]
	if cs == nil {
		if id&HedgeIDBit == 0 {
			r.mu.Unlock()
			return false
		}
		if r.m == nil {
			r.m = make(map[uint64]*cancelState)
		}
		now := time.Now
		if r.now != nil {
			now = r.now
		}
		// Sweep expired tombstones while we are here: a lost ReadReq must
		// not pin its tombstone forever.
		cutoff := now().Add(-tombstoneTTL)
		for tid, ts := range r.m {
			if ts.tomb && ts.at.Before(cutoff) {
				delete(r.m, tid)
			}
		}
		cs = &cancelState{tomb: true, at: now()}
		cs.flag.Store(true)
		r.m[id] = cs
		r.mu.Unlock()
		return false
	}
	cs.flag.Store(true)
	tk, g := cs.ticket, cs.gate
	r.mu.Unlock()
	if tk != nil {
		g.Cancel(tk)
	}
	return true
}

// unregister drops id after its response has left the server.
func (r *cancelRegistry) unregister(id uint64) {
	r.mu.Lock()
	delete(r.m, id)
	r.mu.Unlock()
}
