package pfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dosas/internal/wire"
)

// TestExtentStoreCrossValidation drives random op sequences against an
// ExtentStore and a MemStore model in lockstep, including crash-reopens
// of the extent store (Close + NewExtentStore on the same directory).
// The one modelled divergence: Truncate past the end extends the extent
// store with zeros (POSIX ftruncate, matching FileStore) while MemStore
// only shrinks — the model emulates the extension with a zero write.
func TestExtentStoreCrossValidation(t *testing.T) {
	dir := t.TempDir()
	es, err := NewExtentStore(ExtentConfig{Dir: dir, ExtentSize: 512, FDCacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { es.Close() }()
	model := NewMemStore()

	modelTruncate := func(h, size uint64) {
		if size > model.Size(h) {
			if model.Size(h) == 0 {
				// Absent stream: extent store's Truncate is a no-op
				// there too only when the handle has never been
				// written; track that by only extending existing
				// streams, mirroring extent semantics.
				if es.Size(h) == 0 {
					return
				}
			}
			model.WriteAt(h, []byte{0}, size-1)
			return
		}
		model.Truncate(h, size)
	}

	rng := rand.New(rand.NewSource(42))
	handles := []uint64{1, 2, 3, 7, 1 << 40}
	const ops = 2000
	for i := 0; i < ops; i++ {
		h := handles[rng.Intn(len(handles))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // write
			n := rng.Intn(2000)
			off := uint64(rng.Intn(4000))
			data := make([]byte, n)
			rng.Read(data)
			wn, werr := es.WriteAt(h, data, off)
			mn, merr := model.WriteAt(h, data, off)
			if wn != mn || (werr == nil) != (merr == nil) {
				t.Fatalf("op %d: WriteAt(%d, %d bytes, %d) = (%d,%v) vs model (%d,%v)",
					i, h, n, off, wn, werr, mn, merr)
			}
		case 4, 5, 6: // read
			n := rng.Intn(3000)
			off := uint64(rng.Intn(5000))
			a := make([]byte, n)
			b := make([]byte, n)
			an, aerr := es.ReadAt(h, a, off)
			bn, berr := model.ReadAt(h, b, off)
			if aerr != nil || berr != nil {
				t.Fatalf("op %d: read errs %v, %v", i, aerr, berr)
			}
			// Stores may differ in short-read counts only past the end;
			// compare the overlap and require the same data visibility.
			if an != bn {
				t.Fatalf("op %d: ReadAt(%d, %d, %d) = %d vs model %d (size %d vs %d)",
					i, h, n, off, an, bn, es.Size(h), model.Size(h))
			}
			if !bytes.Equal(a[:an], b[:bn]) {
				t.Fatalf("op %d: ReadAt(%d, %d, %d) content mismatch", i, h, n, off)
			}
		case 7: // truncate
			size := uint64(rng.Intn(6000))
			if err := es.Truncate(h, size); err != nil {
				t.Fatalf("op %d: truncate: %v", i, err)
			}
			modelTruncate(h, size)
		case 8: // remove
			if err := es.Remove(h); err != nil {
				t.Fatalf("op %d: remove: %v", i, err)
			}
			model.Remove(h)
		case 9: // crash-reopen every so often
			if rng.Intn(4) != 0 {
				continue
			}
			if err := es.Close(); err != nil {
				t.Fatalf("op %d: close: %v", i, err)
			}
			es, err = NewExtentStore(ExtentConfig{Dir: dir, ExtentSize: 512, FDCacheSize: 8})
			if err != nil {
				t.Fatalf("op %d: reopen: %v", i, err)
			}
		}
		if got, want := es.Size(h), model.Size(h); got != want {
			t.Fatalf("op %d: Size(%d) = %d, model %d", i, h, got, want)
		}
	}

	// Full-content sweep at the end.
	for _, h := range handles {
		size := model.Size(h)
		a := make([]byte, size)
		b := make([]byte, size)
		es.ReadAt(h, a, 0)
		model.ReadAt(h, b, 0)
		if !bytes.Equal(a, b) {
			t.Fatalf("final sweep: handle %d content mismatch", h)
		}
	}
}

// TestExtentStoreRestartDurability writes across several extents, closes,
// reopens, and expects byte-identical content and sizes — no journal, the
// size comes back from the directory scan.
func TestExtentStoreRestartDurability(t *testing.T) {
	dir := t.TempDir()
	es, err := NewExtentStore(ExtentConfig{Dir: dir, ExtentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := es.WriteAt(5, data, 100); err != nil {
		t.Fatal(err)
	}
	// A sparse handle: write far past extent 0 so earlier extents are holes.
	if _, err := es.WriteAt(6, []byte("tail"), 9000); err != nil {
		t.Fatal(err)
	}
	if err := es.Close(); err != nil {
		t.Fatal(err)
	}

	es2, err := NewExtentStore(ExtentConfig{Dir: dir, ExtentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer es2.Close()
	if got := es2.Size(5); got != 10_100 {
		t.Fatalf("size(5) after reopen = %d, want 10100", got)
	}
	if got := es2.Size(6); got != 9004 {
		t.Fatalf("size(6) after reopen = %d, want 9004", got)
	}
	back := make([]byte, len(data))
	if _, err := es2.ReadAt(5, back, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("content changed across restart")
	}
	hole := make([]byte, 9000)
	if _, err := es2.ReadAt(6, hole, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hole, make([]byte, 9000)) {
		t.Fatal("sparse prefix not zeros after reopen")
	}
}

// TestExtentStorePinnedExtentSize: extent.conf pins the geometry; a
// reopen asking for a different size keeps the on-disk one.
func TestExtentStorePinnedExtentSize(t *testing.T) {
	dir := t.TempDir()
	es, err := NewExtentStore(ExtentConfig{Dir: dir, ExtentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	es.WriteAt(1, []byte("x"), 5000)
	es.Close()

	es2, err := NewExtentStore(ExtentConfig{Dir: dir, ExtentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer es2.Close()
	if got := es2.ExtentSize(); got != 2048 {
		t.Fatalf("reopen extent size = %d, want pinned 2048", got)
	}
	if got := es2.Size(1); got != 5001 {
		t.Fatalf("size = %d, want 5001", got)
	}
}

// TestExtentStoreReadRange: payloads serve exact ranges, represent holes
// without opening files, and keep working when the fd cache is tiny.
func TestExtentStoreReadRange(t *testing.T) {
	es, err := NewExtentStore(ExtentConfig{Dir: t.TempDir(), ExtentSize: 256, FDCacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()

	data := make([]byte, 4096)
	rand.New(rand.NewSource(2)).Read(data)
	es.WriteAt(9, data, 0)
	es.WriteAt(9, []byte{0xFF}, 8191) // extends with a hole in the middle

	full := append(append(append([]byte{}, data...), make([]byte, 8191-4096)...), 0xFF)
	for _, r := range [][2]uint64{{0, 100}, {200, 300}, {250, 12}, {0, 8192}, {4000, 1000}, {8000, 192}} {
		p, err := es.ReadRange(9, r[0], r[1])
		if err != nil {
			t.Fatalf("ReadRange%v: %v", r, err)
		}
		if p.Len() != int64(r[1]) {
			t.Fatalf("ReadRange%v: len %d", r, p.Len())
		}
		var buf bytes.Buffer
		if err := p.WriteRange(&buf, 0, int64(r[1]), nil); err != nil {
			t.Fatalf("ReadRange%v write: %v", r, err)
		}
		if !bytes.Equal(buf.Bytes(), full[r[0]:r[0]+r[1]]) {
			t.Fatalf("ReadRange%v: content mismatch", r)
		}
		p.Close()
	}

	// Past-end ranges are refused.
	if _, err := es.ReadRange(9, 8000, 1000); err == nil {
		t.Fatal("ReadRange past end accepted")
	}

	// A payload pins its descriptors: truncating the stream under a live
	// payload must not corrupt the frame — the missing bytes read as
	// zeros, keeping the announced length.
	p, err := es.ReadRange(9, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := es.Truncate(9, 10); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteRange(&buf, 0, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 4096 {
		t.Fatalf("post-truncate payload wrote %d bytes, want 4096", buf.Len())
	}
	if !bytes.Equal(buf.Bytes()[:10], data[:10]) {
		t.Fatal("surviving prefix corrupted")
	}
	p.Close()
}

// TestFDCacheEviction: the store keeps at most FDCacheSize descriptors
// open across many handles, and evicted handles still read correctly.
func TestFDCacheEviction(t *testing.T) {
	es, err := NewExtentStore(ExtentConfig{Dir: t.TempDir(), ExtentSize: 64, FDCacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()

	const handles = 32
	for h := uint64(0); h < handles; h++ {
		payload := []byte(fmt.Sprintf("handle-%d-content", h))
		if _, err := es.WriteAt(h, payload, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := es.fds.len(); got > 4 {
		t.Fatalf("fd cache holds %d entries, cap 4", got)
	}
	for h := uint64(0); h < handles; h++ {
		want := []byte(fmt.Sprintf("handle-%d-content", h))
		got := make([]byte, len(want))
		if _, err := es.ReadAt(h, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("handle %d read %q after eviction churn", h, got)
		}
	}
	if got := es.fds.len(); got > 4 {
		t.Fatalf("fd cache holds %d entries after reads, cap 4", got)
	}
}

// TestFileStoreFDCacheEviction: same bound for the one-file-per-handle
// layout.
func TestFileStoreFDCacheEviction(t *testing.T) {
	fs, err := NewFileStoreConfig(FileStoreConfig{Dir: t.TempDir(), FDCacheSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	for h := uint64(0); h < 20; h++ {
		if _, err := fs.WriteAt(h, []byte{byte(h)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.fds.len(); got > 3 {
		t.Fatalf("fd cache holds %d entries, cap 3", got)
	}
	for h := uint64(0); h < 20; h++ {
		b := make([]byte, 1)
		if _, err := fs.ReadAt(h, b, 0); err != nil || b[0] != byte(h) {
			t.Fatalf("handle %d: %v %v", h, b, err)
		}
	}
}

// TestExtentStoreWirePayloadThroughFraming: end-to-end at the wire layer —
// a ReadRange payload inside a ReadResp produces a frame whose decoded
// data matches the store content, under both framings.
func TestExtentStoreWirePayloadThroughFraming(t *testing.T) {
	es, err := NewExtentStore(ExtentConfig{Dir: t.TempDir(), ExtentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	data := make([]byte, 100_000)
	rand.New(rand.NewSource(3)).Read(data)
	es.WriteAt(1, data, 0)

	p, err := es.ReadRange(1, 0, uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var frame bytes.Buffer
	if err := wire.WriteMessageOpts(&frame, &wire.ReadResp{Payload: p, EOF: true}, wire.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	m, err := wire.ReadMessage(bytes.NewReader(frame.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rr := m.(*wire.ReadResp)
	if !bytes.Equal(rr.Data, data) || !rr.EOF {
		t.Fatal("decoded frame does not match store content")
	}
}

// TestExtentStoreRejectsCorruptConf: a mangled extent.conf fails loudly
// rather than silently picking a new geometry over existing extents.
func TestExtentStoreRejectsCorruptConf(t *testing.T) {
	dir := t.TempDir()
	es, err := NewExtentStore(ExtentConfig{Dir: dir, ExtentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	es.WriteAt(1, []byte("x"), 0)
	es.Close()
	if err := os.WriteFile(filepath.Join(dir, "extent.conf"), []byte("not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewExtentStore(ExtentConfig{Dir: dir, ExtentSize: 512}); err == nil {
		t.Fatal("corrupt extent.conf accepted")
	}
}
