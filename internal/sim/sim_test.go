package sim

import (
	"math"
	"testing"
	"testing/quick"

	"dosas/internal/core"
)

// runPoint is a test shorthand for the noise-free simulator.
func runPoint(t *testing.T, scheme core.Scheme, n int, bytes uint64, op string) Metrics {
	t.Helper()
	m, err := Run(Config{Scheme: scheme, Requests: n, BytesPerRequest: bytes, Op: op})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Figure 2/4: the Gaussian filter under AS beats TS below 4 requests per
// storage node and loses beyond.
func TestFig2GaussianCrossover(t *testing.T) {
	for _, n := range PaperScales {
		as := runPoint(t, core.SchemeAS, n, 128*MB, "gaussian2d").Makespan
		ts := runPoint(t, core.SchemeTS, n, 128*MB, "gaussian2d").Makespan
		switch {
		case n <= 2 && as >= ts:
			t.Errorf("n=%d: AS %.2fs should beat TS %.2fs", n, as, ts)
		case n >= 4 && ts >= as:
			t.Errorf("n=%d: TS %.2fs should beat AS %.2fs", n, ts, as)
		}
	}
}

// Figure 5: the crossover persists at 512 MB requests.
func TestFig5GaussianCrossoverAt512MB(t *testing.T) {
	as1 := runPoint(t, core.SchemeAS, 1, 512*MB, "gaussian2d").Makespan
	ts1 := runPoint(t, core.SchemeTS, 1, 512*MB, "gaussian2d").Makespan
	if as1 >= ts1 {
		t.Errorf("n=1: AS %.2f !< TS %.2f", as1, ts1)
	}
	as64 := runPoint(t, core.SchemeAS, 64, 512*MB, "gaussian2d").Makespan
	ts64 := runPoint(t, core.SchemeTS, 64, 512*MB, "gaussian2d").Makespan
	if ts64 >= as64 {
		t.Errorf("n=64: TS %.2f !< AS %.2f", ts64, as64)
	}
}

// Figure 6: SUM's compute rate dwarfs the network, so AS wins at every
// scale.
func TestFig6SumASAlwaysWins(t *testing.T) {
	for _, n := range PaperScales {
		as := runPoint(t, core.SchemeAS, n, 128*MB, "sum8").Makespan
		ts := runPoint(t, core.SchemeTS, n, 128*MB, "sum8").Makespan
		if as >= ts {
			t.Errorf("n=%d: AS %.2fs should always beat TS %.2fs for SUM", n, as, ts)
		}
	}
}

// Figures 7–10: DOSAS tracks the better of AS and TS at every scale and
// size (within a small tolerance for the admission transient).
func TestDOSASTracksTheWinner(t *testing.T) {
	for _, bytes := range PaperSizes {
		for _, n := range PaperScales {
			as := runPoint(t, core.SchemeAS, n, bytes, "gaussian2d").Makespan
			ts := runPoint(t, core.SchemeTS, n, bytes, "gaussian2d").Makespan
			do := runPoint(t, core.SchemeDOSAS, n, bytes, "gaussian2d").Makespan
			best := math.Min(as, ts)
			if do > best*1.10 {
				t.Errorf("size=%dMB n=%d: DOSAS %.2fs exceeds best %.2fs by >10%%",
					bytes/MB, n, do, best)
			}
		}
	}
}

// The paper's headline ratios: at small scale DOSAS ≈ AS gains roughly
// 40 % over TS; at large scale DOSAS ≈ TS gains roughly 20 % over AS.
func TestHeadlineImprovementRatios(t *testing.T) {
	ts1 := runPoint(t, core.SchemeTS, 1, 128*MB, "gaussian2d").Makespan
	do1 := runPoint(t, core.SchemeDOSAS, 1, 128*MB, "gaussian2d").Makespan
	gainSmall := (ts1 - do1) / ts1
	if gainSmall < 0.25 || gainSmall > 0.55 {
		t.Errorf("small-scale gain over TS = %.0f%%, paper reports ≈40%%", gainSmall*100)
	}
	as64 := runPoint(t, core.SchemeAS, 64, 128*MB, "gaussian2d").Makespan
	do64 := runPoint(t, core.SchemeDOSAS, 64, 128*MB, "gaussian2d").Makespan
	gainLarge := (as64 - do64) / as64
	if gainLarge < 0.10 || gainLarge > 0.45 {
		t.Errorf("large-scale gain over AS = %.0f%%, paper reports ≈21%%", gainLarge*100)
	}
}

// Figures 11–12: achieved bandwidth mirrors execution time — AS leads at
// small scale, TS at large scale, DOSAS best (or tied) nearly everywhere.
func TestBandwidthFigures(t *testing.T) {
	for _, bytes := range []uint64{256 * MB, 512 * MB} {
		for _, n := range PaperScales {
			as := runPoint(t, core.SchemeAS, n, bytes, "gaussian2d").Bandwidth
			ts := runPoint(t, core.SchemeTS, n, bytes, "gaussian2d").Bandwidth
			do := runPoint(t, core.SchemeDOSAS, n, bytes, "gaussian2d").Bandwidth
			best := math.Max(as, ts)
			if do < best*0.90 {
				t.Errorf("size=%dMB n=%d: DOSAS bandwidth %.1f MB/s below best %.1f MB/s",
					bytes/MB, n, do/1e6, best/1e6)
			}
		}
	}
}

// Table IV: the scheduling algorithm must judge ≥90 % of situations
// correctly, with every misjudgment at the Gaussian break-even boundary.
func TestTable4Accuracy(t *testing.T) {
	sits, err := ScheduleAccuracy(2012)
	if err != nil {
		t.Fatal(err)
	}
	if len(sits) != len(PaperScales)*len(PaperSizes)*2 {
		t.Fatalf("situations = %d", len(sits))
	}
	acc := AccuracyRate(sits)
	if acc < 0.90 {
		t.Errorf("accuracy = %.0f%%, paper reports 95%%", acc*100)
	}
	for _, s := range sits {
		if s.Correct {
			continue
		}
		if s.Op != "gaussian2d" {
			t.Errorf("misjudgment outside the Gaussian benchmark: %+v", s)
		}
		if s.Requests < 2 || s.Requests > 8 {
			t.Errorf("misjudgment far from the break-even boundary: %+v", s)
		}
	}
	// SUM must be judged perfectly (paper: "100% accuracy for SUM").
	for _, s := range sits {
		if s.Op == "sum8" && !s.Correct {
			t.Errorf("SUM misjudged: %+v", s)
		}
	}
}

func TestDOSASDispositionCounts(t *testing.T) {
	// Small scale: everything accepted.
	m := runPoint(t, core.SchemeDOSAS, 2, 128*MB, "gaussian2d")
	if m.Accepted != 2 || m.Bounced != 0 {
		t.Errorf("n=2: accepted=%d bounced=%d", m.Accepted, m.Bounced)
	}
	// Large scale: everything ends up normal (early admits migrate).
	m = runPoint(t, core.SchemeDOSAS, 16, 128*MB, "gaussian2d")
	if m.Accepted != 0 {
		t.Errorf("n=16: accepted=%d, want 0 (migration drains the active set)", m.Accepted)
	}
	if m.Migrated == 0 {
		t.Error("n=16: expected early admissions to migrate")
	}
}

func TestMigrationAblation(t *testing.T) {
	off := false
	noMig, err := Run(Config{Scheme: core.SchemeDOSAS, Requests: 16,
		BytesPerRequest: 128 * MB, Op: "gaussian2d", Migration: &off})
	if err != nil {
		t.Fatal(err)
	}
	if noMig.Accepted == 0 {
		t.Error("without migration, early admissions must stay active")
	}
	if noMig.Migrated != 0 {
		t.Error("migration count must be zero when disabled")
	}
}

// The AS scheme moves only results; TS moves all raw data.
func TestRawBytesMoved(t *testing.T) {
	as := runPoint(t, core.SchemeAS, 4, 128*MB, "sum8")
	if as.RawBytesMoved != 4*8 {
		t.Errorf("AS moved %d bytes, want 32", as.RawBytesMoved)
	}
	ts := runPoint(t, core.SchemeTS, 4, 128*MB, "sum8")
	if ts.RawBytesMoved != 4*128*MB {
		t.Errorf("TS moved %d bytes", ts.RawBytesMoved)
	}
}

// Noise-free AS and TS makespans must match the closed-form model.
func TestMakespanMatchesClosedForm(t *testing.T) {
	const n, d = 8, 128 * MB
	const s, c, bw = 80e6, 80e6, 118e6
	ts := runPoint(t, core.SchemeTS, n, d, "gaussian2d").Makespan
	wantTS := float64(n*d)/bw + float64(d)/c
	if math.Abs(ts-wantTS) > wantTS*0.02 {
		t.Errorf("TS makespan %.3f, closed form %.3f", ts, wantTS)
	}
	as := runPoint(t, core.SchemeAS, n, d, "gaussian2d").Makespan
	wantAS := float64(n*d) / s // result transfer is negligible
	if math.Abs(as-wantAS) > wantAS*0.02 {
		t.Errorf("AS makespan %.3f, closed form %.3f", as, wantAS)
	}
}

func TestSeriesShape(t *testing.T) {
	pts, err := Series("gaussian2d", 128*MB, PaperSchemes, Noise{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3*len(PaperScales) {
		t.Fatalf("points = %d", len(pts))
	}
	// Execution time must be monotonically non-decreasing in n for every
	// scheme.
	byScheme := map[core.Scheme][]Point{}
	for _, p := range pts {
		byScheme[p.Scheme] = append(byScheme[p.Scheme], p)
	}
	for scheme, series := range byScheme {
		for i := 1; i < len(series); i++ {
			if series[i].Seconds < series[i-1].Seconds*0.999 {
				t.Errorf("%v: time decreased from n=%d to n=%d", scheme,
					series[i-1].Requests, series[i].Requests)
			}
		}
	}
}

// Multi-node: balanced placement over k nodes behaves like a single node
// serving 1/k of the requests.
func TestMultiNodeBalancedEqualsScaledSingle(t *testing.T) {
	multi, err := Run(Config{Scheme: core.SchemeAS, Requests: 32,
		BytesPerRequest: 128 * MB, Op: "gaussian2d", StorageNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	single := runPoint(t, core.SchemeAS, 8, 128*MB, "gaussian2d")
	if math.Abs(multi.Makespan-single.Makespan) > single.Makespan*0.05 {
		t.Errorf("4-node/32-req makespan %.2f vs 1-node/8-req %.2f", multi.Makespan, single.Makespan)
	}
}

// Skew concentrates load on node 0: the hot node dominates the makespan,
// and DOSAS adapts per node where AS cannot.
func TestSkewHotSpot(t *testing.T) {
	balanced, err := Run(Config{Scheme: core.SchemeAS, Requests: 32,
		BytesPerRequest: 128 * MB, Op: "gaussian2d", StorageNodes: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Run(Config{Scheme: core.SchemeAS, Requests: 32,
		BytesPerRequest: 128 * MB, Op: "gaussian2d", StorageNodes: 4, Skew: 0.9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if hot.Makespan <= balanced.Makespan*1.5 {
		t.Errorf("hot-spot makespan %.2f should far exceed balanced %.2f", hot.Makespan, balanced.Makespan)
	}
	// DOSAS on the same skewed load must beat AS (it bounces the hot
	// node's overflow).
	do, err := Run(Config{Scheme: core.SchemeDOSAS, Requests: 32,
		BytesPerRequest: 128 * MB, Op: "gaussian2d", StorageNodes: 4, Skew: 0.9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if do.Makespan >= hot.Makespan {
		t.Errorf("DOSAS %.2f should beat AS %.2f under skew", do.Makespan, hot.Makespan)
	}
}

func TestSkewValidation(t *testing.T) {
	if _, err := Run(Config{Scheme: core.SchemeAS, Requests: 1,
		BytesPerRequest: 1, Op: "sum8", Skew: 1.5}); err == nil {
		t.Error("skew > 1 accepted")
	}
	if _, err := Run(Config{Scheme: core.SchemeAS, Requests: 1,
		BytesPerRequest: 1, Op: "sum8", Skew: -0.1}); err == nil {
		t.Error("negative skew accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Scheme: core.SchemeAS, Requests: 0, BytesPerRequest: 1}); err == nil {
		t.Error("zero requests accepted")
	}
	if _, err := Run(Config{Scheme: core.SchemeAS, Requests: 1, BytesPerRequest: 0}); err == nil {
		t.Error("zero bytes accepted")
	}
	if _, err := Run(Config{Scheme: core.SchemeAS, Requests: 1, BytesPerRequest: 1, Op: "bogus"}); err == nil {
		t.Error("unknown op accepted")
	}
}

// Property: the simulator is deterministic for a fixed seed and
// monotone-ish under noise (makespan stays within the jitter envelope of
// the noise-free run).
func TestSimDeterminismProperty(t *testing.T) {
	f := func(seed int64, n8 uint8, scheme8 uint8) bool {
		n := int(n8)%32 + 1
		scheme := PaperSchemes[int(scheme8)%3]
		cfg := Config{Scheme: scheme, Requests: n, BytesPerRequest: 64 * MB,
			Op: "gaussian2d", Noise: DiscfarmNoise(), Seed: seed}
		a, err1 := Run(cfg)
		b, err2 := Run(cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Makespan == b.Makespan && a.Accepted == b.Accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-request completion times never exceed the makespan and
// the makespan is achieved by some request.
func TestMakespanConsistencyProperty(t *testing.T) {
	f := func(seed int64, n8 uint8, scheme8 uint8) bool {
		n := int(n8)%64 + 1
		scheme := PaperSchemes[int(scheme8)%3]
		m, err := Run(Config{Scheme: scheme, Requests: n,
			BytesPerRequest: 32 * MB, Op: "sum8", Noise: DiscfarmNoise(), Seed: seed})
		if err != nil {
			return false
		}
		maxSeen := 0.0
		for _, d := range m.PerRequest {
			if d > m.Makespan {
				return false
			}
			if d > maxSeen {
				maxSeen = d
			}
		}
		return maxSeen == m.Makespan && m.Accepted+m.Bounced == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
